// Ablation study of the code-generation optimizations (paper §3.3–3.5,
// §5.1), measured on the real JIT-compiled kernels with google-benchmark:
//
//   * global CSE on/off
//   * loop-invariant hoisting of T(z,t)-dependent subexpressions on/off
//   * split (staggered precompute) vs full kernels
//   * approximate (fast) division/sqrt vs exact
//   * compile-time-folded vs runtime-symbolic model parameters
//   * explicit SIMD: scalar vs width 4 vs width 8 (+ streaming stores)
//
// Also reports the generation + external-compilation time (the paper quotes
// 30-60 s for a full recompilation; our models are smaller).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/app/tuning.hpp"

using namespace pfc;

namespace {

struct Variant {
  const char* name;
  app::CompileOptions compile;
};

app::Simulation* make_sim_opts(app::SimulationOptions o) {
  static app::GrandChemParams params = app::make_p1(2);
  static app::GrandChemModel model(params);
  o.cells = {96, 96, 1};
  auto* sim = new app::Simulation(model, o);
  sim->init_phi([&](long long x, long long, long long, int c) {
    const double s = app::interface_profile(double(x % 24) - 12.0, 10.0);
    if (c == 0) return 1.0 - s;
    return c == 1 + int(x / 24) % 3 ? s : 0.0;
  });
  sim->init_mu([](long long, long long, long long, int) { return 0.0; });
  return sim;
}

app::Simulation* make_sim(const app::CompileOptions& co) {
  app::SimulationOptions o;
  o.compile = co;
  return make_sim_opts(o);
}

void run_variant(benchmark::State& state, const app::CompileOptions& co) {
  std::unique_ptr<app::Simulation> sim(make_sim(co));
  for (auto _ : state) {
    sim->run(1);
  }
  state.counters["MLUP/s"] =
      benchmark::Counter(96.0 * 96.0 * double(state.iterations()) / 1e6,
                         benchmark::Counter::kIsRate);
}

app::CompileOptions base() { return {}; }
app::CompileOptions no_cse() {
  app::CompileOptions o;
  o.cse = false;
  return o;
}
app::CompileOptions no_hoist() {
  app::CompileOptions o;
  o.hoist_invariants = false;
  return o;
}
app::CompileOptions split() {
  app::CompileOptions o;
  o.split_phi = o.split_mu = true;
  return o;
}
app::CompileOptions fast() {
  app::CompileOptions o;
  o.fast_math = true;
  return o;
}
app::CompileOptions scheduled() {
  app::CompileOptions o;
  o.schedule = true;
  return o;
}
app::CompileOptions simd(int width, bool stream = false) {
  app::CompileOptions o;
  o.vector_width = width;
  o.streaming_stores = stream;
  return o;
}

void BM_P1_baseline(benchmark::State& s) { run_variant(s, base()); }
void BM_P1_no_cse(benchmark::State& s) { run_variant(s, no_cse()); }
void BM_P1_no_hoisting(benchmark::State& s) { run_variant(s, no_hoist()); }
void BM_P1_split_kernels(benchmark::State& s) { run_variant(s, split()); }
void BM_P1_fast_math(benchmark::State& s) { run_variant(s, fast()); }
void BM_P1_scheduled(benchmark::State& s) { run_variant(s, scheduled()); }
// SIMD ablation axis: the baseline auto-probes the native width; these pin
// it so the axis is comparable across hosts.
void BM_P1_simd_scalar(benchmark::State& s) { run_variant(s, simd(1)); }
void BM_P1_simd_w4(benchmark::State& s) { run_variant(s, simd(4)); }
void BM_P1_simd_w8(benchmark::State& s) { run_variant(s, simd(8)); }
void BM_P1_simd_w8_stream(benchmark::State& s) {
  run_variant(s, simd(8, true));
}

BENCHMARK(BM_P1_baseline)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_no_cse)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_no_hoisting)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_split_kernels)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_fast_math)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_scheduled)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_simd_scalar)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_simd_w4)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_simd_w8)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_P1_simd_w8_stream)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

/// Interpreter backend as reference for the "generic application without
/// code generation" comparison of §5.1 (expressions evaluated generically
/// instead of specialized compiled code).
void BM_P1_interpreter_backend(benchmark::State& s) {
  app::CompileOptions o;
  o.backend = app::Backend::Interpreter;
  run_variant(s, o);
}
BENCHMARK(BM_P1_interpreter_backend)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

/// Autotune axis: main() runs the measured search before the benchmarks
/// execute and stores the winning configuration here, so the tuned variant
/// lines up against the hand-picked ablation points above.
app::SimulationOptions g_tuned_opts;

void BM_P1_autotuned(benchmark::State& s) {
  app::SimulationOptions o = g_tuned_opts;
  o.compile.tune = app::TuneMode::Off;  // winner already applied
  std::unique_ptr<app::Simulation> sim(make_sim_opts(o));
  for (auto _ : s) {
    sim->run(1);
  }
  s.counters["MLUP/s"] =
      benchmark::Counter(96.0 * 96.0 * double(s.iterations()) / 1e6,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_P1_autotuned)->Unit(benchmark::kMillisecond)->MinTime(0.5);

/// Runs the measured autotune search on the P1 model and emits
/// BENCH_autotune.json: best-found vs. default-config MLUPS for the phi/mu
/// kernel chain plus the search cost (candidates enumerated, measured runs,
/// seconds spent). The tuner measures the baseline first and only replaces
/// it on a strictly better measurement, so tuned >= default by construction.
void run_autotune_axis() {
  app::GrandChemParams params = app::make_p1(2);
  app::GrandChemModel model(params);
  app::SimulationOptions o;
  o.cells = {96, 96, 1};
  o.compile.tune = app::TuneMode::Full;
  const obs::TuningStats stats = app::autotune_apply(model, o);
  g_tuned_opts = o;  // autotune_apply applied the winner in place

  std::printf("=== autotune (P1 phi/mu chain) ===\n");
  std::printf("default %.2f MLUP/s -> tuned %.2f MLUP/s [%s]\n",
              stats.baseline_mlups, stats.best_mlups,
              stats.best_config.c_str());
  std::printf("search: %d candidates, %d measured runs, %.2f s\n\n",
              stats.candidates, stats.measured_runs, stats.search_seconds);

  std::map<std::string, double> derived;
  derived["phi_default_mlups"] = stats.baseline_mlups;
  derived["phi_tuned_mlups"] = stats.best_mlups;
  derived["search_candidates"] = double(stats.candidates);
  derived["search_measured_runs"] = double(stats.measured_runs);
  derived["search_seconds"] = stats.search_seconds;
  bench::write_bench_report("autotune",
                            bench::bench_report_json("autotune", derived));
}

}  // namespace

int main(int argc, char** argv) {
  // recompilation-cost report (paper §5.1: "30 to 60 seconds")
  {
    app::GrandChemParams params = app::make_p1(2);
    app::GrandChemModel model(params);
    app::ModelCompiler mc;
    const auto compiled = mc.compile(model);
    const obs::CompileReport& cr = compiled.compile_report();
    std::printf("=== codegen cost (paper §5.1) ===\n");
    std::printf("symbolic pipeline: %.2f s, external compiler: %.2f s, "
                "generated source: %zu bytes\n",
                cr.generation_seconds(), cr.compile_seconds(),
                compiled.generated_source().size());
    std::printf("per-stage:");
    for (const auto& [stage, t] : cr.stage_timers) {
      std::printf(" %s %.3f s (x%llu)", stage.c_str(), t.seconds,
                  (unsigned long long)t.count);
    }
    std::printf("; ops/cell %lld -> %lld after CSE+hoisting, %.1f widened "
                "(vector width %d)\n\n",
                cr.ops_per_cell_pre, cr.ops_per_cell_post,
                cr.ops_per_cell_widened, cr.vector_width);
  }
  run_autotune_axis();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
