// Shared helpers for the benchmark harness: lowering single PDEs of the
// P1/P2 models to optimized IR kernels, and formatting.
#pragma once

#include <cstdio>
#include <optional>
#include <vector>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"

namespace pfc::bench {

enum class Which { PhiP1, MuP1, PhiP2, MuP2 };

inline const char* which_name(Which w) {
  switch (w) {
    case Which::PhiP1: return "P1 phi";
    case Which::MuP1: return "P1 mu";
    case Which::PhiP2: return "P2 phi";
    case Which::MuP2: return "P2 mu";
  }
  return "?";
}

/// Lowers one kernel family (full: 1 kernel; split: staggered + main).
inline std::vector<ir::Kernel> lower_kernels(Which w, bool split,
                                             int dims = 3) {
  const app::GrandChemParams params =
      (w == Which::PhiP1 || w == Which::MuP1) ? app::make_p1(dims)
                                              : app::make_p2(dims);
  app::GrandChemModel model(params);
  const bool is_phi = w == Which::PhiP1 || w == Which::PhiP2;

  fd::DiscretizeOptions d;
  d.dims = dims;
  d.dx = params.dx;
  d.dt = params.dt;
  d.split_staggered = split;
  d.clamp_unit_interval = is_phi;
  d.renormalize_simplex = is_phi;
  std::optional<FieldPtr> flux;
  return app::ModelCompiler::lower(
      is_phi ? model.phi_update() : model.mu_update(), d,
      app::CompileOptions{}, &flux);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace pfc::bench
