// Shared helpers for the benchmark harness: lowering single PDEs of the
// P1/P2 models to optimized IR kernels, formatting, and emitting the
// BENCH_<name>.json reports in the same pfc-obs-report-v2 schema the
// examples write (tools/report_check.cpp validates it).
#pragma once

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/obs/report.hpp"

namespace pfc::bench {

enum class Which { PhiP1, MuP1, PhiP2, MuP2 };

inline const char* which_name(Which w) {
  switch (w) {
    case Which::PhiP1: return "P1 phi";
    case Which::MuP1: return "P1 mu";
    case Which::PhiP2: return "P2 phi";
    case Which::MuP2: return "P2 mu";
  }
  return "?";
}

/// Lowers one kernel family (full: 1 kernel; split: staggered + main).
inline std::vector<ir::Kernel> lower_kernels(Which w, bool split,
                                             int dims = 3) {
  const app::GrandChemParams params =
      (w == Which::PhiP1 || w == Which::MuP1) ? app::make_p1(dims)
                                              : app::make_p2(dims);
  app::GrandChemModel model(params);
  const bool is_phi = w == Which::PhiP1 || w == Which::PhiP2;

  fd::DiscretizeOptions d;
  d.dims = dims;
  d.dx = params.dx;
  d.dt = params.dt;
  d.split_staggered = split;
  d.clamp_unit_interval = is_phi;
  d.renormalize_simplex = is_phi;
  std::optional<FieldPtr> flux;
  return app::ModelCompiler::lower(
      is_phi ? model.phi_update() : model.mu_update(), d,
      app::CompileOptions{}, &flux);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Builds a bench report in the shared schema from derived scalar results
/// (model predictions, measured rates) plus optional timers/counters.
inline obs::Json bench_report_json(
    const std::string& bench_name,
    const std::map<std::string, double>& derived,
    const std::map<std::string, obs::TimerStat>& timers = {},
    const std::map<std::string, std::uint64_t>& counters = {}) {
  return obs::make_report_json("bench", bench_name, timers, counters,
                               derived);
}

/// Writes BENCH_<name>.json to the working directory (the trajectory file
/// the bench drivers collect) and announces the path.
inline void write_bench_report(const std::string& bench_name,
                               const obs::Json& report) {
  const std::string path = "BENCH_" + bench_name + ".json";
  obs::write_json(path, report);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace pfc::bench
