// Regenerates paper Fig. 2 (left): ECM model prediction vs benchmark for
// the P1 µ-split and µ-full kernels, MLUP/s per core over the cores of one
// socket.
//
// The ECM curves cover the full modelled Skylake socket (24 cores); the
// measured curves run the JIT-compiled kernels on this host's cores (the
// environment substitutes for SuperMUC-NG — see DESIGN.md §2). The paper's
// qualitative result under test: µ-full scales flat (compute bound,
// saturation ~83 cores), µ-split decays per core (data bound, saturation
// ~32 cores), with a crossover that makes µ-split the right choice for
// full-socket runs.
#include "bench_common.hpp"

#include "pfc/app/simulation.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/support/thread_pool.hpp"

using namespace pfc;
using namespace pfc::bench;

namespace {

/// Measured MLUP/s of the mu kernels for a P1 simulation on `threads`.
double measure_mu(bool split, int threads, int steps,
                  const std::array<long long, 3>& cells,
                  int vector_width = 0) {
  app::GrandChemParams params = app::make_p1(3);
  app::GrandChemModel model(params);
  app::SimulationOptions o;
  o.cells = cells;
  o.threads = threads;
  o.compile.split_mu = split;
  o.compile.vector_width = vector_width;
  app::Simulation sim(model, o);
  sim.init_phi([](long long x, long long, long long, int c) {
    const double s = app::interface_profile(double(x % 16) - 8.0, 10.0);
    if (c == 0) return 1.0 - s;
    return c == 1 ? s : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  const obs::RunReport rep = sim.run(steps);
  double mu_seconds = 0;
  for (const auto& [name, t] : rep.kernel_timers) {
    if (name.rfind("mu", 0) == 0) mu_seconds += t.seconds;
  }
  const double cellcount =
      double(cells[0]) * double(cells[1]) * double(cells[2]);
  return obs::safe_rate(cellcount * steps, mu_seconds) / 1e6;
}

}  // namespace

int main() {
  const perf::MachineModel machine = perf::default_machine();
  const std::array<long long, 3> block{60, 60, 60};
  // ECM curves model the width the JIT actually compiles at on this host
  const int vw = backend::probe_native_vector_width();

  std::printf("=== Fig 2 (left): ECM model vs measurement, P1 mu kernels, "
              "60^3 blocks ===\n");
  std::printf("    machine %s, vector width %d\n\n", machine.name.c_str(),
              vw);

  // --- model curves over the full modelled socket ---
  auto full_kernels = lower_kernels(Which::MuP1, false);
  auto split_kernels = lower_kernels(Which::MuP1, true);
  const auto lc = perf::TrafficSource::LayerCondition;
  const auto full_ecm =
      perf::ecm_predict(full_kernels[0], block, machine, lc, vw);
  // split = staggered + consumer kernels; combine as harmonic throughput
  const auto stag_ecm =
      perf::ecm_predict(split_kernels[0], block, machine, lc, vw);
  const auto main_ecm =
      perf::ecm_predict(split_kernels[1], block, machine, lc, vw);
  const auto split_mlups = [&](int c) {
    const double a = stag_ecm.mlups(machine, c);
    const double b = main_ecm.mlups(machine, c);
    return 1.0 / (1.0 / a + 1.0 / b);
  };

  std::printf("%6s %22s %22s\n", "cores", "ECM mu-split [MLUP/s/core]",
              "ECM mu-full [MLUP/s/core]");
  for (int c : {1, 4, 8, 12, 16, 20, 24}) {
    std::printf("%6d %22.2f %22.2f\n", c, split_mlups(c) / c,
                full_ecm.mlups(machine, c) / c);
  }
  std::printf("\nECM saturation points: mu-split %d cores, mu-full %d cores "
              "(paper: 32 and 83)\n",
              std::min(main_ecm.saturation_cores(machine),
                       stag_ecm.saturation_cores(machine)),
              full_ecm.saturation_cores(machine));

  // --- measured curves on this host ---
  const int max_threads = ThreadPool::hardware_threads();
  const std::array<long long, 3> meas{48, 48, 48};
  std::printf("\n%6s %22s %22s   (measured, %lldx%lldx%lld block)\n",
              "cores", "Bench mu-split", "Bench mu-full", meas[0], meas[1],
              meas[2]);
  double meas_split = 0, meas_full = 0;
  for (int t = 1; t <= max_threads; ++t) {
    meas_split = measure_mu(true, t, 3, meas);
    meas_full = measure_mu(false, t, 3, meas);
    std::printf("%6d %22.2f %22.2f\n", t, meas_split / t, meas_full / t);
  }
  std::printf("\n[absolute numbers are host-dependent; the paper's shapes "
              "under test: decaying split vs flat full per-core rates]\n");

  // --- SIMD ablation: same kernel, scalar emission vs native width ---
  const double meas_full_scalar = measure_mu(false, max_threads, 3, meas, 1);
  const double vector_speedup = obs::safe_rate(meas_full, meas_full_scalar);
  std::printf("\nmu-full at width %d: %.2f MLUP/s vs scalar %.2f MLUP/s -> "
              "%.2fx\n",
              vw, meas_full, meas_full_scalar, vector_speedup);

  const int socket = machine.cores;
  write_bench_report(
      "fig2_ecm_mu",
      bench_report_json(
          "fig2_ecm_mu",
          {{"model_socket_mu_split_mlups", split_mlups(socket)},
           {"model_socket_mu_full_mlups", full_ecm.mlups(machine, socket)},
           {"model_saturation_cores_mu_split",
            double(std::min(main_ecm.saturation_cores(machine),
                            stag_ecm.saturation_cores(machine)))},
           {"model_saturation_cores_mu_full",
            double(full_ecm.saturation_cores(machine))},
           {"measured_mu_split_mlups", meas_split},
           {"measured_mu_full_mlups", meas_full},
           {"measured_mu_full_scalar_mlups", meas_full_scalar},
           {"measured_vector_speedup", vector_speedup},
           {"measured_threads", double(max_threads)}},
          /*timers=*/{},
          /*counters=*/{{"vector_width", std::uint64_t(vw)}}));
  return 0;
}
