// Regenerates paper Fig. 2 (middle): ECM model vs measurement for the
// φ-split and φ-full kernels under P1 and P2. The paper's result under
// test: the faster variant flips between configurations — P1 favours
// φ-full, P2 (anisotropic, much heavier compute) favours φ-split — and the
// model predicts the right choice in both cases.
#include "bench_common.hpp"

#include "pfc/app/simulation.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/support/thread_pool.hpp"

using namespace pfc;
using namespace pfc::bench;

namespace {

double model_mlups(Which w, bool split, int cores,
                   const perf::MachineModel& m,
                   const std::array<long long, 3>& block, int vector_width) {
  const auto kernels = lower_kernels(w, split);
  double inv = 0;
  for (const auto& k : kernels) {
    inv += 1.0 / perf::ecm_predict(k, block, m,
                                   perf::TrafficSource::LayerCondition,
                                   vector_width)
                     .mlups(m, cores);
  }
  return 1.0 / inv;
}

double measure_phi(Which w, bool split, int threads, int steps,
                   const std::array<long long, 3>& cells,
                   int vector_width = 0) {
  app::GrandChemParams params =
      w == Which::PhiP1 ? app::make_p1(3) : app::make_p2(3);
  app::GrandChemModel model(params);
  app::SimulationOptions o;
  o.cells = cells;
  o.threads = threads;
  o.compile.split_phi = split;
  o.compile.vector_width = vector_width;
  app::Simulation sim(model, o);
  sim.init_phi([](long long x, long long, long long, int c) {
    const double s = app::interface_profile(double(x % 16) - 8.0, 10.0);
    if (c == 0) return 1.0 - s;
    return c == 1 ? s : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  const obs::RunReport rep = sim.run(steps);
  double phi_seconds = 0;
  for (const auto& [name, t] : rep.kernel_timers) {
    if (name.rfind("phi", 0) == 0) phi_seconds += t.seconds;
  }
  return obs::safe_rate(
             double(cells[0]) * double(cells[1]) * double(cells[2]) * steps,
             phi_seconds) /
         1e6;
}

}  // namespace

int main() {
  const perf::MachineModel machine = perf::default_machine();
  const std::array<long long, 3> block{60, 60, 60};
  // ECM curves model the width the JIT actually compiles at on this host
  const int vw = backend::probe_native_vector_width();

  std::printf("=== Fig 2 (middle): ECM model vs measurement, phi kernels, "
              "P1 and P2 ===\n");
  std::printf("    machine %s, vector width %d\n\n", machine.name.c_str(),
              vw);
  std::printf("%6s %16s %16s %16s %16s   [ECM, MLUP/s per core]\n", "cores",
              "P1 phi-split", "P1 phi-full", "P2 phi-split", "P2 phi-full");
  for (int c : {1, 4, 8, 12, 16, 20, 24}) {
    std::printf("%6d %16.2f %16.2f %16.2f %16.2f\n", c,
                model_mlups(Which::PhiP1, true, c, machine, block, vw) / c,
                model_mlups(Which::PhiP1, false, c, machine, block, vw) / c,
                model_mlups(Which::PhiP2, true, c, machine, block, vw) / c,
                model_mlups(Which::PhiP2, false, c, machine, block, vw) / c);
  }
  const int socket = machine.cores;
  const double m_p1_split =
      model_mlups(Which::PhiP1, true, socket, machine, block, vw);
  const double m_p1_full =
      model_mlups(Which::PhiP1, false, socket, machine, block, vw);
  const double m_p2_split =
      model_mlups(Which::PhiP2, true, socket, machine, block, vw);
  const double m_p2_full =
      model_mlups(Which::PhiP2, false, socket, machine, block, vw);
  const bool p1_full_wins = m_p1_full > m_p1_split;
  const bool p2_split_wins = m_p2_split > m_p2_full;
  std::printf("\nfull-socket model choice: P1 -> %s (paper: full), "
              "P2 -> %s (paper: split)\n",
              p1_full_wins ? "phi-full" : "phi-split",
              p2_split_wins ? "phi-split" : "phi-full");

  const int max_threads = ThreadPool::hardware_threads();
  const std::array<long long, 3> meas{40, 40, 40};
  double b_p1_split = 0, b_p1_full = 0, b_p2_split = 0, b_p2_full = 0;
  std::printf("\n%6s %16s %16s %16s %16s   [measured]\n", "cores",
              "P1 phi-split", "P1 phi-full", "P2 phi-split", "P2 phi-full");
  for (int t = 1; t <= max_threads; ++t) {
    b_p1_split = measure_phi(Which::PhiP1, true, t, 3, meas);
    b_p1_full = measure_phi(Which::PhiP1, false, t, 3, meas);
    b_p2_split = measure_phi(Which::PhiP2, true, t, 2, meas);
    b_p2_full = measure_phi(Which::PhiP2, false, t, 2, meas);
    std::printf("%6d %16.2f %16.2f %16.2f %16.2f\n", t, b_p1_split / t,
                b_p1_full / t, b_p2_split / t, b_p2_full / t);
  }

  // --- SIMD ablation: same kernel, scalar emission vs native width ---
  const double b_p1_full_scalar =
      measure_phi(Which::PhiP1, false, max_threads, 3, meas, 1);
  const double vector_speedup = obs::safe_rate(b_p1_full, b_p1_full_scalar);
  std::printf("\nP1 phi-full at width %d: %.2f MLUP/s vs scalar %.2f "
              "MLUP/s -> %.2fx\n",
              vw, b_p1_full, b_p1_full_scalar, vector_speedup);

  write_bench_report(
      "fig2_ecm_phi",
      bench_report_json(
          "fig2_ecm_phi",
          {{"model_socket_p1_phi_split_mlups", m_p1_split},
           {"model_socket_p1_phi_full_mlups", m_p1_full},
           {"model_socket_p2_phi_split_mlups", m_p2_split},
           {"model_socket_p2_phi_full_mlups", m_p2_full},
           {"model_p1_chooses_full", p1_full_wins ? 1.0 : 0.0},
           {"model_p2_chooses_split", p2_split_wins ? 1.0 : 0.0},
           {"measured_p1_phi_split_mlups", b_p1_split},
           {"measured_p1_phi_full_mlups", b_p1_full},
           {"measured_p1_phi_full_scalar_mlups", b_p1_full_scalar},
           {"measured_vector_speedup", vector_speedup},
           {"measured_p2_phi_split_mlups", b_p2_split},
           {"measured_p2_phi_full_mlups", b_p2_full},
           {"measured_threads", double(max_threads)}},
          /*timers=*/{},
          /*counters=*/{{"vector_width", std::uint64_t(vw)}}));
  return 0;
}
