// Regenerates paper Fig. 2 (middle): ECM model vs measurement for the
// φ-split and φ-full kernels under P1 and P2. The paper's result under
// test: the faster variant flips between configurations — P1 favours
// φ-full, P2 (anisotropic, much heavier compute) favours φ-split — and the
// model predicts the right choice in both cases.
#include "bench_common.hpp"

#include "pfc/app/simulation.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/support/thread_pool.hpp"

using namespace pfc;
using namespace pfc::bench;

namespace {

double model_mlups(Which w, bool split, int cores,
                   const perf::MachineModel& m,
                   const std::array<long long, 3>& block, int vector_width) {
  const auto kernels = lower_kernels(w, split);
  double inv = 0;
  for (const auto& k : kernels) {
    inv += 1.0 / perf::ecm_predict(k, block, m,
                                   perf::TrafficSource::LayerCondition,
                                   vector_width)
                     .mlups(m, cores);
  }
  return 1.0 / inv;
}

obs::RunReport run_sim(Which w, bool split, int steps,
                       const std::array<long long, 3>& cells,
                       const app::SimulationOptions& base) {
  app::GrandChemParams params =
      w == Which::PhiP1 ? app::make_p1(3) : app::make_p2(3);
  app::GrandChemModel model(params);
  app::SimulationOptions o = base;
  o.cells = cells;
  o.compile.split_phi = split;
  app::Simulation sim(model, o);
  sim.init_phi([](long long x, long long, long long, int c) {
    const double s = app::interface_profile(double(x % 16) - 8.0, 10.0);
    if (c == 0) return 1.0 - s;
    return c == 1 ? s : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  return sim.run(steps);
}

double measure_phi(Which w, bool split, int threads, int steps,
                   const std::array<long long, 3>& cells,
                   int vector_width = 0) {
  app::SimulationOptions o;
  o.threads = threads;
  o.compile.vector_width = vector_width;
  const obs::RunReport rep = run_sim(w, split, steps, cells, o);
  double phi_seconds = 0;
  for (const auto& [name, t] : rep.kernel_timers) {
    if (name.rfind("phi", 0) == 0) phi_seconds += t.seconds;
  }
  return obs::safe_rate(
             double(cells[0]) * double(cells[1]) * double(cells[2]) * steps,
             phi_seconds) /
         1e6;
}

}  // namespace

int main() {
  const perf::MachineModel machine = perf::default_machine();
  const std::array<long long, 3> block{60, 60, 60};
  // ECM curves model the width the JIT actually compiles at on this host
  const int vw = backend::probe_native_vector_width();

  std::printf("=== Fig 2 (middle): ECM model vs measurement, phi kernels, "
              "P1 and P2 ===\n");
  std::printf("    machine %s, vector width %d\n\n", machine.name.c_str(),
              vw);
  std::printf("%6s %16s %16s %16s %16s   [ECM, MLUP/s per core]\n", "cores",
              "P1 phi-split", "P1 phi-full", "P2 phi-split", "P2 phi-full");
  for (int c : {1, 4, 8, 12, 16, 20, 24}) {
    std::printf("%6d %16.2f %16.2f %16.2f %16.2f\n", c,
                model_mlups(Which::PhiP1, true, c, machine, block, vw) / c,
                model_mlups(Which::PhiP1, false, c, machine, block, vw) / c,
                model_mlups(Which::PhiP2, true, c, machine, block, vw) / c,
                model_mlups(Which::PhiP2, false, c, machine, block, vw) / c);
  }
  const int socket = machine.cores;
  const double m_p1_split =
      model_mlups(Which::PhiP1, true, socket, machine, block, vw);
  const double m_p1_full =
      model_mlups(Which::PhiP1, false, socket, machine, block, vw);
  const double m_p2_split =
      model_mlups(Which::PhiP2, true, socket, machine, block, vw);
  const double m_p2_full =
      model_mlups(Which::PhiP2, false, socket, machine, block, vw);
  const bool p1_full_wins = m_p1_full > m_p1_split;
  const bool p2_split_wins = m_p2_split > m_p2_full;
  std::printf("\nfull-socket model choice: P1 -> %s (paper: full), "
              "P2 -> %s (paper: split)\n",
              p1_full_wins ? "phi-full" : "phi-split",
              p2_split_wins ? "phi-split" : "phi-full");

  const int max_threads = ThreadPool::hardware_threads();
  const std::array<long long, 3> meas{40, 40, 40};
  double b_p1_split = 0, b_p1_full = 0, b_p2_split = 0, b_p2_full = 0;
  std::printf("\n%6s %16s %16s %16s %16s   [measured]\n", "cores",
              "P1 phi-split", "P1 phi-full", "P2 phi-split", "P2 phi-full");
  for (int t = 1; t <= max_threads; ++t) {
    b_p1_split = measure_phi(Which::PhiP1, true, t, 3, meas);
    b_p1_full = measure_phi(Which::PhiP1, false, t, 3, meas);
    b_p2_split = measure_phi(Which::PhiP2, true, t, 2, meas);
    b_p2_full = measure_phi(Which::PhiP2, false, t, 2, meas);
    std::printf("%6d %16.2f %16.2f %16.2f %16.2f\n", t, b_p1_split / t,
                b_p1_full / t, b_p2_split / t, b_p2_full / t);
  }

  // --- SIMD ablation: same kernel, scalar emission vs native width ---
  const double b_p1_full_scalar =
      measure_phi(Which::PhiP1, false, max_threads, 3, meas, 1);
  const double vector_speedup = obs::safe_rate(b_p1_full, b_p1_full_scalar);
  std::printf("\nP1 phi-full at width %d: %.2f MLUP/s vs scalar %.2f "
              "MLUP/s -> %.2fx\n",
              vw, b_p1_full, b_p1_full_scalar, vector_speedup);

  std::map<std::string, double> derived{
      {"model_socket_p1_phi_split_mlups", m_p1_split},
      {"model_socket_p1_phi_full_mlups", m_p1_full},
      {"model_socket_p2_phi_split_mlups", m_p2_split},
      {"model_socket_p2_phi_full_mlups", m_p2_full},
      {"model_p1_chooses_full", p1_full_wins ? 1.0 : 0.0},
      {"model_p2_chooses_split", p2_split_wins ? 1.0 : 0.0},
      {"measured_p1_phi_split_mlups", b_p1_split},
      {"measured_p1_phi_full_mlups", b_p1_full},
      {"measured_p1_phi_full_scalar_mlups", b_p1_full_scalar},
      {"measured_vector_speedup", vector_speedup},
      {"measured_p2_phi_split_mlups", b_p2_split},
      {"measured_p2_phi_full_mlups", b_p2_full},
      {"measured_threads", double(max_threads)}};

  // --- thread-scaling axis: pinned workers, static slabs, first-touch ---
  // Explicit counts keep the axis deterministic on any container; counts
  // beyond the visible cores oversubscribe but still exercise the
  // machinery. The model curve gives the full-socket expectation next to
  // each measured point.
  std::printf("\n%8s %18s %18s   [threads axis: compact pin, static "
              "slabs, first-touch]\n",
              "threads", "measured MLUP/s", "model MLUP/s");
  for (int t : {1, 2, 4}) {
    app::SimulationOptions o;
    o.threads = t;
    o.pin = support::PinPolicy::Compact;
    o.dispatch = app::Dispatch::Static;
    o.first_touch = true;
    const obs::RunReport rep = run_sim(Which::PhiP1, false, 3, meas, o);
    const double measured = rep.mlups();
    const double modeled =
        model_mlups(Which::PhiP1, false, t, machine, block, vw);
    std::printf("%8d %18.2f %18.2f\n", t, measured, modeled);
    derived["measured_phi_full_t" + std::to_string(t) + "_mlups"] = measured;
    derived["model_phi_full_t" + std::to_string(t) + "_mlups"] = modeled;
  }

  // --- temporal-blocking axis: fused wavefront vs reference order ---
  // 3-D (the models here are dims=3) with enough outer-axis rows that both
  // workers' slabs clear the wavefront prologue; the tile height is forced
  // so the axis also runs on cache-less containers.
  {
    const std::array<long long, 3> c3d{40, 40, 24};
    app::SimulationOptions unfused;
    unfused.threads = 2;
    unfused.dispatch = app::Dispatch::Static;
    app::SimulationOptions fused = unfused;
    fused.blocking = app::BlockingMode::Fixed;
    fused.blocking_tile_rows = 4;
    const obs::RunReport r_ref = run_sim(Which::PhiP1, true, 4, c3d, unfused);
    const obs::RunReport r_wf = run_sim(Which::PhiP1, true, 4, c3d, fused);
    const double speedup = obs::safe_rate(r_wf.mlups(), r_ref.mlups());
    std::printf("\nblocking axis (3-D, tile 4): unfused %.2f MLUP/s, "
                "wavefront %.2f MLUP/s (%.2fx), fused substeps %lld\n",
                r_ref.mlups(), r_wf.mlups(), speedup,
                r_wf.threading.fused_substeps);
    derived["measured_blocking_unfused_mlups"] = r_ref.mlups();
    derived["measured_blocking_wavefront_mlups"] = r_wf.mlups();
    derived["measured_blocking_speedup"] = speedup;
    derived["blocking_fused_substeps"] = double(r_wf.threading.fused_substeps);
    derived["blocking_bytes_per_update_unfused"] =
        r_wf.threading.bytes_per_update_unfused;
    derived["blocking_bytes_per_update_fused"] =
        r_wf.threading.bytes_per_update_fused;
  }

  write_bench_report(
      "fig2_ecm_phi",
      bench_report_json("fig2_ecm_phi", derived,
                        /*timers=*/{},
                        /*counters=*/{{"vector_width", std::uint64_t(vw)}}));
  return 0;
}
