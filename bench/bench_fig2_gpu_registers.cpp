// Regenerates paper Fig. 2 (right): effectiveness of the GPU-specific
// register transformations on the P1 µ-full kernel — alive intermediates
// ("analysis"), modelled nvcc register allocation, and modelled runtime —
// for the sequences none / sched / dupl / fence / dupl+sched+fence.
// Executed on the analytic P100 model (DESIGN.md §2); the CUDA source
// itself is emitted by the pipeline and validated textually in the tests.
#include "bench_common.hpp"

#include "pfc/perf/evotune.hpp"
#include "pfc/perf/gpu_model.hpp"

using namespace pfc;
using namespace pfc::bench;

int main() {
  const perf::GpuModel gpu = perf::GpuModel::p100();
  const double cells = 400.0 * 400.0 * 400.0;
  auto kernels = lower_kernels(Which::MuP1, false);
  const ir::Kernel& mu_full = kernels[0];

  struct Config {
    const char* label;
    perf::GpuTransformConfig cfg;
  };
  const Config configs[] = {
      {"none", {}},
      {"sched", {.schedule = true}},
      {"dupl", {.remat = true}},
      {"fence", {.fences = true}},
      {"dupl+sched+fence",
       {.schedule = true, .remat = true, .fences = true}},
  };

  std::printf("=== Fig 2 (right): GPU register transformations, P1 mu-full "
              "kernel, 400^3 on P100 model ===\n\n");
  std::printf("%-18s %10s %10s %7s %10s %12s %8s %8s\n", "transform",
              "analysis", "nvcc regs", "spills", "occupancy", "runtime ms",
              "DP util", "BW util");
  print_rule(92);
  double none_runtime = 0;
  for (const auto& c : configs) {
    const auto st = perf::evaluate_gpu_kernel(mu_full, c.cfg, gpu, cells);
    if (std::string(c.label) == "none") none_runtime = st.runtime_ms;
    std::printf("%-18s %10d %10d %7s %9.1f%% %12.1f %7.0f%% %7.0f%%\n",
                c.label, st.analysis_registers, st.nvcc_registers,
                st.spills ? "yes" : "no", st.occupancy * 100, st.runtime_ms,
                st.dp_utilization * 100, st.mem_utilization * 100);
  }
  print_rule(92);

  const auto sched =
      perf::evaluate_gpu_kernel(mu_full, {.schedule = true}, gpu, cells);
  const auto all = perf::evaluate_gpu_kernel(
      mu_full, {.schedule = true, .remat = true, .fences = true}, gpu,
      cells);
  std::printf("\nsched eliminates spilling: %.0f%% speedup (paper: ~50%%)\n",
              (none_runtime / sched.runtime_ms - 1.0) * 100);
  std::printf("all three combined: %.1fx vs none (paper: ~2x via doubled "
              "occupancy)\n", none_runtime / all.runtime_ms);

  // beam-width sweep (paper: "some of that effect can already be seen for a
  // reordering search breadth of one ... no consistent improvement above 20")
  std::printf("\n%-12s %10s\n", "beam width", "analysis");
  for (std::size_t w : {std::size_t(1), std::size_t(5), std::size_t(20),
                        std::size_t(40)}) {
    perf::GpuTransformConfig cfg;
    cfg.schedule = true;
    cfg.beam_width = w;
    const auto st = perf::evaluate_gpu_kernel(mu_full, cfg, gpu, cells);
    std::printf("%-12zu %10d\n", w, st.analysis_registers);
  }

  // fast-math ablation (paper §6.2: 25-35 % on the mu kernels)
  perf::GpuTransformConfig base;
  base.schedule = true;
  perf::GpuTransformConfig fast = base;
  fast.fast_math = true;
  const auto b = perf::evaluate_gpu_kernel(mu_full, base, gpu, cells);
  const auto f = perf::evaluate_gpu_kernel(mu_full, fast, gpu, cells);
  std::printf("\napproximate div/sqrt speedup on mu-full: %.0f%% "
              "(paper: 25-35%%)\n",
              (b.runtime_ms / f.runtime_ms - 1.0) * 100);

  // evolutionary tuning of the whole transformation sequence (paper §3.5)
  perf::TuneOptions to;
  to.cells = cells;
  const auto tuned = perf::evolve_transform_sequence(mu_full, gpu, to);
  std::printf("\nevolutionary tuner (%d evaluations): best %.1f ms "
              "[sched=%d beam=%zu dupl=%d(cost<=%zu,uses<=%zu) fence=%d"
              "(stride %zu) fastmath=%d], %.1fx vs none\n",
              tuned.evaluations, tuned.best_stats.runtime_ms,
              int(tuned.best.schedule), tuned.best.beam_width,
              int(tuned.best.remat), tuned.best.remat_max_cost,
              tuned.best.remat_max_uses, int(tuned.best.fences),
              tuned.best.fence_stride, int(tuned.best.fast_math),
              none_runtime / tuned.best_stats.runtime_ms);
  return 0;
}
