// Regenerates paper Fig. 3: weak scaling on the CPU machine (60^3 per core,
// generated vs manually-optimized baseline), weak scaling on the GPU
// machine (400^3 per GPU), and strong scaling of a fixed 512x256x256 domain.
//
// Node-level rates come from the ECM/GPU models calibrated at the paper's
// operating points; multi-node behaviour comes from the network model
// (DESIGN.md §2). Shapes under test: flat weak scaling to the full machine,
// and strong scaling that keeps gaining total throughput while per-core
// efficiency drops as blocks shrink.
#include "bench_common.hpp"

#include <cmath>
#include <map>

#include "pfc/perf/ecm.hpp"
#include "pfc/perf/gpu_model.hpp"
#include "pfc/perf/netmodel.hpp"

using namespace pfc;
using namespace pfc::bench;

namespace {

/// Model-based per-core MLUP/s of the full P1 time step (phi-full +
/// mu-split, the paper's fastest combination) at the given block size.
double p1_core_mlups(const perf::MachineModel& m,
                     const std::array<long long, 3>& block) {
  double inv = 0;
  for (auto& k : lower_kernels(Which::PhiP1, false)) {
    inv += 1.0 / (perf::ecm_predict(k, block, m).mlups(m, m.cores) / m.cores);
  }
  for (auto& k : lower_kernels(Which::MuP1, true)) {
    inv += 1.0 / (perf::ecm_predict(k, block, m).mlups(m, m.cores) / m.cores);
  }
  return 1.0 / inv;
}

}  // namespace

int main() {
  const perf::MachineModel machine = perf::MachineModel::skylake_sp();
  const perf::NetworkModel net;
  const perf::CommConfig comm{true, false};  // CPU: overlap, no GPUDirect
  std::map<std::string, double> derived;  // accumulates the JSON report

  // ---------------- weak scaling, CPU (Fig 3 left) --------------------
  {
    const std::array<long long, 3> block{60, 60, 60};
    const double cells = 60.0 * 60 * 60;
    const double gen_rate = p1_core_mlups(machine, block);
    // the manual baseline of Bauer et al. 2015 was AVX2-tuned: the paper
    // measured the generated AVX-512 code ~20 % faster on SuperMUC-NG
    const double manual_rate = gen_rate / 1.2;
    const double bytes = perf::ghost_bytes_per_step(block, 4, 2);
    const int msgs = perf::messages_per_step(3);

    std::printf("=== Fig 3 (left): weak scaling SuperMUC-NG, 60^3 per core "
                "===\n\n");
    std::printf("%10s %18s %18s   [MLUP/s per core]\n", "cores",
                "P1 generated", "P1 manual");
    for (long cores : {16L, 128L, 1024L, 8192L, 65536L, 152064L, 304128L}) {
      const double g = perf::scaled_mlups_per_rank(
          cells, cells / (gen_rate * 1e6), bytes, msgs, int(cores), comm,
          net);
      const double man = perf::scaled_mlups_per_rank(
          cells, cells / (manual_rate * 1e6), bytes, msgs, int(cores), comm,
          net);
      std::printf("%10ld %18.2f %18.2f\n", cores, g, man);
      derived["weak_cpu/cores=" + std::to_string(cores) +
              "/mlups_per_core"] = g;
    }
    std::printf("\n[paper: ~6 MLUP/s per core flat to 152k cores; generated "
                "beats manual by ~20%%]\n\n");
  }

  // ---------------- weak scaling, GPU (Fig 3 middle) ------------------
  {
    const perf::GpuModel gpu = perf::GpuModel::p100();
    const std::array<long long, 3> block{400, 400, 400};
    const double cells = 400.0 * 400 * 400;
    perf::GpuTransformConfig cfg;
    cfg.schedule = cfg.remat = cfg.fences = true;
    std::vector<ir::Kernel> kernels;
    for (auto& k : lower_kernels(Which::PhiP1, false)) kernels.push_back(k);
    for (auto& k : lower_kernels(Which::MuP1, true)) kernels.push_back(k);
    const double rate = perf::gpu_step_mlups(kernels, cfg, gpu, block);
    const double bytes = perf::ghost_bytes_per_step(block, 4, 2);
    const int msgs = perf::messages_per_step(3);
    const perf::CommConfig gpu_comm{true, true};  // CUDA-aware + overlap

    std::printf("=== Fig 3 (middle): weak scaling Piz Daint, 400^3 per GPU "
                "===\n\n");
    std::printf("%10s %18s   [MLUP/s per GPU]\n", "GPUs", "P1 generated");
    for (long gpus : {1L, 4L, 16L, 64L, 128L, 512L, 2400L}) {
      const double g = perf::scaled_mlups_per_rank(
          cells, cells / (rate * 1e6), bytes, msgs, int(gpus), gpu_comm,
          net);
      std::printf("%10ld %18.0f\n", gpus, g);
      derived["weak_gpu/gpus=" + std::to_string(gpus) + "/mlups_per_gpu"] =
          g;
    }
    std::printf("\n[paper: ~440 MLUP/s per GPU flat to 2400 GPUs]\n\n");
  }

  // ---------------- strong scaling, CPU (Fig 3 right) -----------------
  {
    const double total = 512.0 * 256 * 256;
    std::printf("=== Fig 3 (right): strong scaling SuperMUC-NG, "
                "512x256x256 total ===\n\n");
    std::printf("%10s %14s %18s %16s\n", "cores", "block edge",
                "MLUP/s per core", "timesteps/s");
    const int msgs = perf::messages_per_step(3);
    for (long cores : {48L, 384L, 3072L, 24576L, 152064L}) {
      const double c = total / double(cores);
      const long long edge = std::max(2LL, (long long)std::cbrt(c));
      const std::array<long long, 3> block{edge, edge, edge};
      const double rate = p1_core_mlups(machine, block);
      const double bytes = perf::ghost_bytes_per_step(block, 4, 2);
      const double per_core = perf::scaled_mlups_per_rank(
          c, c / (rate * 1e6), bytes, msgs, int(cores), comm, net);
      const double steps_per_s = per_core * 1e6 * double(cores) / total;
      std::printf("%10ld %14lld %18.2f %16.1f\n", cores, edge, per_core,
                  steps_per_s);
      derived["strong_cpu/cores=" + std::to_string(cores) +
              "/timesteps_per_second"] = steps_per_s;
    }
    std::printf("\n[paper: 0.2 steps/s at 48 cores, 460 steps/s at 152064 "
                "cores]\n");
  }

  // Same schema as the examples' run reports (tools/report_check validates)
  write_bench_report("fig3_scaling",
                     bench_report_json("fig3_scaling", derived));
  return 0;
}
