// Regenerates paper Table 1: per-cell operation counts of the four kernels
// (µ/φ × full/split) under parameterizations P1 and P2, after constant
// folding, CSE and temperature hoisting. Paper reference values are printed
// alongside; absolute agreement is not expected (different parabolic fits,
// different CSE), the *shape* — split halving µ work, P2's φ explosion —
// is the result under test.
#include "bench_common.hpp"

#include "pfc/ir/opcount.hpp"

using namespace pfc;
using namespace pfc::bench;

namespace {

struct PaperRow {
  const char* label;
  int loads, stores, adds, muls, divs, sqrts, rsqrts, norm;
};

// Table 1 of the paper (split rows: staggered + final kernels summed)
const PaperRow kPaper[] = {
    {"P1 mu  full", 112, 2, 542, 788, 19, 42, 36, 2126},
    {"P1 mu  split", 106, 8, 331, 479, 17, 21, 18, 1328},
    {"P1 phi full", 30, 4, 334, 526, 9, 0, 0, 1004},
    {"P1 phi split", 70, 16, 268, 406, 9, 0, 0, 818},
    {"P2 mu  full", 79, 1, 293, 488, 18, 6, 24, 1177},
    {"P2 mu  split", 73, 4, 168, 294, 15, 3, 12, 756},
    {"P2 phi full", 58, 3, 1087, 2081, 50, 0, 0, 3968},
    {"P2 phi split", 88, 12, 732, 1349, 32, 0, 0, 2593},
};

}  // namespace

int main() {
  std::printf("=== Table 1: per-cell operation counts of generated kernels "
              "===\n");
  std::printf("(split rows: staggered-precompute kernel + consumer kernel)\n\n");
  std::printf("%-14s %6s %6s %6s %6s %6s %6s %7s %10s   %s\n", "kernel",
              "loads", "stores", "adds", "muls", "divs", "sqrts", "rsqrts",
              "normFLOPS", "paper normFLOPS");
  print_rule(110);

  int paper_idx = 0;
  for (Which w : {Which::MuP1, Which::PhiP1, Which::MuP2, Which::PhiP2}) {
    // order the rows like the paper: mu full, mu split, (next family...)
    for (bool split : {false, true}) {
      const auto kernels = lower_kernels(w, split);
      ir::OpCounts total;
      std::string detail;
      for (const auto& k : kernels) {
        const auto ops = ir::count_ops(k);
        if (!detail.empty()) detail += " + ";
        detail += std::to_string(ops.normalized_flops());
        total += ops;
      }
      const PaperRow* ref = nullptr;
      for (const auto& r : kPaper) {
        std::string lbl = std::string(which_name(w)) +
                          (split ? "  split" : "  full");
        // normalize spacing
        std::string rl = r.label;
        if (rl.substr(0, 5) == lbl.substr(0, 5) &&
            (rl.find("split") != std::string::npos) == split &&
            (rl.find("mu") != std::string::npos) ==
                (lbl.find("mu") != std::string::npos)) {
          ref = &r;
          break;
        }
      }
      std::printf("%-8s %-5s %6ld %6ld %6ld %6ld %6ld %6ld %7ld %10ld   %d\n",
                  which_name(w), split ? "split" : "full", total.loads,
                  total.stores, total.adds, total.muls, total.divs,
                  total.sqrts, total.rsqrts, total.normalized_flops(),
                  ref != nullptr ? ref->norm : -1);
      ++paper_idx;
    }
  }
  print_rule(110);

  // the paper's headline claims, checked mechanically:
  const auto norm = [&](Which w, bool split) {
    long n = 0;
    for (const auto& k : lower_kernels(w, split)) {
      n += ir::count_ops(k).normalized_flops();
    }
    return n;
  };
  const long mu_full = norm(Which::MuP1, false);
  const long mu_split_total = norm(Which::MuP1, true);
  std::printf("\nP1 mu-split (both kernels) vs mu-full: %ld vs %ld "
              "(paper: 1328 vs 2126 — 'almost only half')\n",
              mu_split_total, mu_full);
  std::printf("P2 phi-full vs P1 phi-full: %ld vs %ld (paper: 3968 vs 1004 "
              "— anisotropy explodes the phi kernel)\n",
              norm(Which::PhiP2, false), norm(Which::PhiP1, false));
  std::printf("\n[manually optimized baseline of Bauer et al. 2015: 1384 "
              "FLOPs for the mu kernel; the paper's pipeline reached 1328]\n");
  return 0;
}
