// Regenerates paper Table 2: communication options on Piz Daint with 128
// GPUs, setup P1 with 400^3 cells per GPU — MLUP/s per GPU for the four
// combinations of communication overlap and GPUDirect. Runs on the analytic
// GPU + network models (DESIGN.md §2); the paper's numbers are 395 / 403 /
// 422 / 440.
//
// A second, measured axis runs the runtime's actual interior/frontier
// overlap (OverlapMode::InteriorFrontier, DESIGN.md §8) against the
// synchronous step on this host: 4 in-process ranks, multi-block, both
// modes bitwise-identical. Exports BENCH_table2_comm.json with the
// analytic table plus the measured hidden fraction and speedup.
#include <cmath>

#include "bench_common.hpp"

#include "pfc/app/distributed.hpp"
#include "pfc/perf/gpu_model.hpp"
#include "pfc/perf/netmodel.hpp"
#include "pfc/support/timer.hpp"

using namespace pfc;
using namespace pfc::bench;

namespace {

struct MeasuredMode {
  double wall_s = 0.0;
  obs::RunReport report;
};

/// One 4-rank multi-block run of the P1-style two-phase model; returns
/// rank 0's report and the slowest rank's wall time (the step is
/// bulk-synchronous, so that is the step duration that matters).
MeasuredMode run_measured(app::OverlapMode mode, int steps) {
  app::GrandChemParams params = app::make_two_phase(2);
  app::GrandChemModel model(params);
  MeasuredMode out;
  mpi::run(4, [&](mpi::Comm& comm) {
    const auto opts = app::DistributedOptions{}
                          .with_cells(256, 256)
                          .with_blocks(4, 2)
                          .with_overlap(mode);
    app::DistributedSimulation sim(model, opts, &comm);
    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 128) * (x - 128) +
                                            (y - 128) * (y - 128))) -
                           70.0;
          const double s = app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? s : 1.0 - s;
        },
        [](long long, long long, long long, int) { return 0.0; });
    sim.run(2);  // warm the JIT'd code paths and message buffers
    comm.barrier();
    Timer t;
    const obs::RunReport rep = sim.run(steps);
    const double wall = comm.allreduce_max(t.seconds());
    if (comm.rank() == 0) {
      out.wall_s = wall;
      out.report = rep;
    }
  });
  return out;
}

}  // namespace

int main() {
  const perf::GpuModel gpu = perf::GpuModel::p100();
  const perf::NetworkModel net;
  const std::array<long long, 3> block{400, 400, 400};
  const double cells = 400.0 * 400.0 * 400.0;

  // per-step compute time: all four P1 kernels (phi-full + mu-split pair,
  // the paper's best combination) with full transformations
  perf::GpuTransformConfig cfg;
  cfg.schedule = cfg.remat = cfg.fences = true;
  std::vector<ir::Kernel> kernels;
  for (auto& k : lower_kernels(Which::PhiP1, false)) kernels.push_back(k);
  for (auto& k : lower_kernels(Which::MuP1, true)) kernels.push_back(k);
  const double compute_mlups = perf::gpu_step_mlups(kernels, cfg, gpu, block);
  const double compute_s = cells / (compute_mlups * 1e6);

  const double bytes = perf::ghost_bytes_per_step(block, 4, 2);
  const int msgs = perf::messages_per_step(3);

  std::printf("=== Table 2: communication options, P1, 400^3 per GPU, 128 "
              "GPUs ===\n\n");
  std::printf("kernel-only rate: %.0f MLUP/s per GPU; ghost volume %.1f MB "
              "per step\n\n", compute_mlups, bytes / 1e6);
  std::printf("%-9s %-10s %16s %14s\n", "overlap", "GPUDirect",
              "MLUP/s per GPU", "paper");
  print_rule(55);
  const int paper[4] = {395, 403, 422, 440};
  int i = 0;
  for (bool overlap : {false, true}) {
    for (bool gpudirect : {false, true}) {
      const double t =
          perf::step_time(compute_s, bytes, msgs, {overlap, gpudirect}, net);
      std::printf("%-9s %-10s %16.0f %14d\n", overlap ? "yes" : "no",
                  gpudirect ? "yes" : "no", cells / t / 1e6, paper[i++]);
    }
  }
  print_rule(55);
  std::printf("\n[structure under test: overlap > GPUDirect > neither, "
              "with ~5-12%% total spread]\n");

  // --- measured axis: the runtime's real overlap on this host ---
  const int steps = 40;
  const MeasuredMode off = run_measured(app::OverlapMode::Off, steps);
  const MeasuredMode on =
      run_measured(app::OverlapMode::InteriorFrontier, steps);
  const double speedup = off.wall_s > 0.0 ? off.wall_s / on.wall_s : 0.0;
  const obs::OverlapStats& ov = on.report.overlap;

  std::printf("\n=== measured: interior/frontier overlap, 4 ranks, "
              "4x2 blocks of 64x128, %d steps ===\n\n", steps);
  std::printf("%-22s %12s %12s\n", "mode", "wall [ms]", "exch [ms]");
  print_rule(50);
  std::printf("%-22s %12.1f %12.1f\n", "synchronous",
              1e3 * off.wall_s, 1e3 * off.report.exchange_seconds);
  std::printf("%-22s %12.1f %12.1f\n", "interior/frontier",
              1e3 * on.wall_s, 1e3 * on.report.exchange_seconds);
  print_rule(50);
  std::printf("\nhidden fraction %.2f (interior %.1f ms vs. predicted wire "
              "time), speedup %.2fx\n",
              ov.hidden_fraction, 1e3 * ov.interior_seconds, speedup);
  std::printf("[in-process simmpi has near-zero wire time, so the wall "
              "clock mostly shows the\n split-sweep overhead; the hidden "
              "fraction + the analytic rows above give the\n expected gain "
              "once real network latency/bandwidth is in the loop]\n");

  // the modelled step the drift layer compares against the phase timers
  const double model_step_s = perf::overlapped_step_time(
      ov.interior_seconds / steps, ov.frontier_seconds / steps,
      double(on.report.exchange_bytes) / steps, perf::messages_per_step(2),
      net);

  write_bench_report(
      "table2_comm",
      bench_report_json(
          "table2_comm",
          {
              {"analytic_mlups_no_overlap",
               cells / perf::step_time(compute_s, bytes, msgs,
                                       {false, false}, net) / 1e6},
              {"analytic_mlups_overlap",
               cells / perf::step_time(compute_s, bytes, msgs,
                                       {true, false}, net) / 1e6},
              {"measured_off_wall_seconds", off.wall_s},
              {"measured_overlap_wall_seconds", on.wall_s},
              {"measured_hidden_fraction", ov.hidden_fraction},
              {"measured_hidden_seconds", ov.hidden_seconds},
              {"measured_interior_seconds", ov.interior_seconds},
              {"measured_frontier_seconds", ov.frontier_seconds},
              {"measured_speedup", speedup},
              {"modelled_overlap_step_seconds", model_step_s},
          },
          {{"off.exchange", {off.report.exchange_seconds,
                             std::uint64_t(steps)}},
           {"overlap.exchange", {on.report.exchange_seconds,
                                 std::uint64_t(steps)}}},
          {{"steps", std::uint64_t(steps)},
           {"exchange_bytes", on.report.exchange_bytes}}));
  return 0;
}
