// Regenerates paper Table 2: communication options on Piz Daint with 128
// GPUs, setup P1 with 400^3 cells per GPU — MLUP/s per GPU for the four
// combinations of communication overlap and GPUDirect. Runs on the analytic
// GPU + network models (DESIGN.md §2); the paper's numbers are 395 / 403 /
// 422 / 440.
#include "bench_common.hpp"

#include "pfc/perf/gpu_model.hpp"
#include "pfc/perf/netmodel.hpp"

using namespace pfc;
using namespace pfc::bench;

int main() {
  const perf::GpuModel gpu = perf::GpuModel::p100();
  const perf::NetworkModel net;
  const std::array<long long, 3> block{400, 400, 400};
  const double cells = 400.0 * 400.0 * 400.0;

  // per-step compute time: all four P1 kernels (phi-full + mu-split pair,
  // the paper's best combination) with full transformations
  perf::GpuTransformConfig cfg;
  cfg.schedule = cfg.remat = cfg.fences = true;
  std::vector<ir::Kernel> kernels;
  for (auto& k : lower_kernels(Which::PhiP1, false)) kernels.push_back(k);
  for (auto& k : lower_kernels(Which::MuP1, true)) kernels.push_back(k);
  const double compute_mlups = perf::gpu_step_mlups(kernels, cfg, gpu, block);
  const double compute_s = cells / (compute_mlups * 1e6);

  const double bytes = perf::ghost_bytes_per_step(block, 4, 2);
  const int msgs = perf::messages_per_step(3);

  std::printf("=== Table 2: communication options, P1, 400^3 per GPU, 128 "
              "GPUs ===\n\n");
  std::printf("kernel-only rate: %.0f MLUP/s per GPU; ghost volume %.1f MB "
              "per step\n\n", compute_mlups, bytes / 1e6);
  std::printf("%-9s %-10s %16s %14s\n", "overlap", "GPUDirect",
              "MLUP/s per GPU", "paper");
  print_rule(55);
  const int paper[4] = {395, 403, 422, 440};
  int i = 0;
  for (bool overlap : {false, true}) {
    for (bool gpudirect : {false, true}) {
      const double t =
          perf::step_time(compute_s, bytes, msgs, {overlap, gpudirect}, net);
      std::printf("%-9s %-10s %16.0f %14d\n", overlap ? "yes" : "no",
                  gpudirect ? "yes" : "no", cells / t / 1e6, paper[i++]);
    }
  }
  print_rule(55);
  std::printf("\n[structure under test: overlap > GPUDirect > neither, "
              "with ~5-12%% total spread]\n");
  return 0;
}
