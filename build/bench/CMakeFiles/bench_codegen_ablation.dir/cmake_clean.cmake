file(REMOVE_RECURSE
  "CMakeFiles/bench_codegen_ablation.dir/bench_codegen_ablation.cpp.o"
  "CMakeFiles/bench_codegen_ablation.dir/bench_codegen_ablation.cpp.o.d"
  "bench_codegen_ablation"
  "bench_codegen_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codegen_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
