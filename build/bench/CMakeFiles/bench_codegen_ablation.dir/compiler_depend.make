# Empty compiler generated dependencies file for bench_codegen_ablation.
# This may be replaced when dependencies are built.
