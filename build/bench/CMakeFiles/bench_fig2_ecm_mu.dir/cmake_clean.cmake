file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ecm_mu.dir/bench_fig2_ecm_mu.cpp.o"
  "CMakeFiles/bench_fig2_ecm_mu.dir/bench_fig2_ecm_mu.cpp.o.d"
  "bench_fig2_ecm_mu"
  "bench_fig2_ecm_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ecm_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
