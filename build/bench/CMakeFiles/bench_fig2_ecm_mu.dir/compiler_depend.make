# Empty compiler generated dependencies file for bench_fig2_ecm_mu.
# This may be replaced when dependencies are built.
