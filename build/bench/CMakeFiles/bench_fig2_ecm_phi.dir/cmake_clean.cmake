file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ecm_phi.dir/bench_fig2_ecm_phi.cpp.o"
  "CMakeFiles/bench_fig2_ecm_phi.dir/bench_fig2_ecm_phi.cpp.o.d"
  "bench_fig2_ecm_phi"
  "bench_fig2_ecm_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ecm_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
