# Empty compiler generated dependencies file for bench_fig2_ecm_phi.
# This may be replaced when dependencies are built.
