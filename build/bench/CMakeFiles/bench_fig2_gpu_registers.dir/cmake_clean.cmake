file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_gpu_registers.dir/bench_fig2_gpu_registers.cpp.o"
  "CMakeFiles/bench_fig2_gpu_registers.dir/bench_fig2_gpu_registers.cpp.o.d"
  "bench_fig2_gpu_registers"
  "bench_fig2_gpu_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_gpu_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
