# Empty dependencies file for bench_fig2_gpu_registers.
# This may be replaced when dependencies are built.
