file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_opcounts.dir/bench_table1_opcounts.cpp.o"
  "CMakeFiles/bench_table1_opcounts.dir/bench_table1_opcounts.cpp.o.d"
  "bench_table1_opcounts"
  "bench_table1_opcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
