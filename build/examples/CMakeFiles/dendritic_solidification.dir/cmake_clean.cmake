file(REMOVE_RECURSE
  "CMakeFiles/dendritic_solidification.dir/dendritic_solidification.cpp.o"
  "CMakeFiles/dendritic_solidification.dir/dendritic_solidification.cpp.o.d"
  "dendritic_solidification"
  "dendritic_solidification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dendritic_solidification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
