# Empty compiler generated dependencies file for dendritic_solidification.
# This may be replaced when dependencies are built.
