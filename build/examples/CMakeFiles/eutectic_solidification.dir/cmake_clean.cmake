file(REMOVE_RECURSE
  "CMakeFiles/eutectic_solidification.dir/eutectic_solidification.cpp.o"
  "CMakeFiles/eutectic_solidification.dir/eutectic_solidification.cpp.o.d"
  "eutectic_solidification"
  "eutectic_solidification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eutectic_solidification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
