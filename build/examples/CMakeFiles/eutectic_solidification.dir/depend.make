# Empty dependencies file for eutectic_solidification.
# This may be replaced when dependencies are built.
