
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfc/app/analysis.cpp" "src/CMakeFiles/pfc.dir/pfc/app/analysis.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/app/analysis.cpp.o.d"
  "/root/repo/src/pfc/app/compiler.cpp" "src/CMakeFiles/pfc.dir/pfc/app/compiler.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/app/compiler.cpp.o.d"
  "/root/repo/src/pfc/app/distributed.cpp" "src/CMakeFiles/pfc.dir/pfc/app/distributed.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/app/distributed.cpp.o.d"
  "/root/repo/src/pfc/app/grandchem.cpp" "src/CMakeFiles/pfc.dir/pfc/app/grandchem.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/app/grandchem.cpp.o.d"
  "/root/repo/src/pfc/app/params.cpp" "src/CMakeFiles/pfc.dir/pfc/app/params.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/app/params.cpp.o.d"
  "/root/repo/src/pfc/app/simulation.cpp" "src/CMakeFiles/pfc.dir/pfc/app/simulation.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/app/simulation.cpp.o.d"
  "/root/repo/src/pfc/backend/c_emitter.cpp" "src/CMakeFiles/pfc.dir/pfc/backend/c_emitter.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/backend/c_emitter.cpp.o.d"
  "/root/repo/src/pfc/backend/codegen_common.cpp" "src/CMakeFiles/pfc.dir/pfc/backend/codegen_common.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/backend/codegen_common.cpp.o.d"
  "/root/repo/src/pfc/backend/cuda_emitter.cpp" "src/CMakeFiles/pfc.dir/pfc/backend/cuda_emitter.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/backend/cuda_emitter.cpp.o.d"
  "/root/repo/src/pfc/backend/interp.cpp" "src/CMakeFiles/pfc.dir/pfc/backend/interp.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/backend/interp.cpp.o.d"
  "/root/repo/src/pfc/backend/jit.cpp" "src/CMakeFiles/pfc.dir/pfc/backend/jit.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/backend/jit.cpp.o.d"
  "/root/repo/src/pfc/backend/kernel_runner.cpp" "src/CMakeFiles/pfc.dir/pfc/backend/kernel_runner.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/backend/kernel_runner.cpp.o.d"
  "/root/repo/src/pfc/continuum/functional.cpp" "src/CMakeFiles/pfc.dir/pfc/continuum/functional.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/continuum/functional.cpp.o.d"
  "/root/repo/src/pfc/continuum/varder.cpp" "src/CMakeFiles/pfc.dir/pfc/continuum/varder.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/continuum/varder.cpp.o.d"
  "/root/repo/src/pfc/fd/discretize.cpp" "src/CMakeFiles/pfc.dir/pfc/fd/discretize.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/fd/discretize.cpp.o.d"
  "/root/repo/src/pfc/field/array.cpp" "src/CMakeFiles/pfc.dir/pfc/field/array.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/field/array.cpp.o.d"
  "/root/repo/src/pfc/field/field.cpp" "src/CMakeFiles/pfc.dir/pfc/field/field.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/field/field.cpp.o.d"
  "/root/repo/src/pfc/grid/blockforest.cpp" "src/CMakeFiles/pfc.dir/pfc/grid/blockforest.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/grid/blockforest.cpp.o.d"
  "/root/repo/src/pfc/grid/boundary.cpp" "src/CMakeFiles/pfc.dir/pfc/grid/boundary.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/grid/boundary.cpp.o.d"
  "/root/repo/src/pfc/grid/ghost_exchange.cpp" "src/CMakeFiles/pfc.dir/pfc/grid/ghost_exchange.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/grid/ghost_exchange.cpp.o.d"
  "/root/repo/src/pfc/grid/vtk.cpp" "src/CMakeFiles/pfc.dir/pfc/grid/vtk.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/grid/vtk.cpp.o.d"
  "/root/repo/src/pfc/ir/kernel.cpp" "src/CMakeFiles/pfc.dir/pfc/ir/kernel.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/ir/kernel.cpp.o.d"
  "/root/repo/src/pfc/ir/opcount.cpp" "src/CMakeFiles/pfc.dir/pfc/ir/opcount.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/ir/opcount.cpp.o.d"
  "/root/repo/src/pfc/ir/passes.cpp" "src/CMakeFiles/pfc.dir/pfc/ir/passes.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/ir/passes.cpp.o.d"
  "/root/repo/src/pfc/ir/schedule.cpp" "src/CMakeFiles/pfc.dir/pfc/ir/schedule.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/ir/schedule.cpp.o.d"
  "/root/repo/src/pfc/mpi/simmpi.cpp" "src/CMakeFiles/pfc.dir/pfc/mpi/simmpi.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/mpi/simmpi.cpp.o.d"
  "/root/repo/src/pfc/obs/json.cpp" "src/CMakeFiles/pfc.dir/pfc/obs/json.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/obs/json.cpp.o.d"
  "/root/repo/src/pfc/obs/registry.cpp" "src/CMakeFiles/pfc.dir/pfc/obs/registry.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/obs/registry.cpp.o.d"
  "/root/repo/src/pfc/obs/report.cpp" "src/CMakeFiles/pfc.dir/pfc/obs/report.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/obs/report.cpp.o.d"
  "/root/repo/src/pfc/perf/cachesim.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/cachesim.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/cachesim.cpp.o.d"
  "/root/repo/src/pfc/perf/ecm.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/ecm.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/ecm.cpp.o.d"
  "/root/repo/src/pfc/perf/evotune.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/evotune.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/evotune.cpp.o.d"
  "/root/repo/src/pfc/perf/gpu_model.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/gpu_model.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/gpu_model.cpp.o.d"
  "/root/repo/src/pfc/perf/layer_condition.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/layer_condition.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/layer_condition.cpp.o.d"
  "/root/repo/src/pfc/perf/machine.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/machine.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/machine.cpp.o.d"
  "/root/repo/src/pfc/perf/netmodel.cpp" "src/CMakeFiles/pfc.dir/pfc/perf/netmodel.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/perf/netmodel.cpp.o.d"
  "/root/repo/src/pfc/support/thread_pool.cpp" "src/CMakeFiles/pfc.dir/pfc/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/support/thread_pool.cpp.o.d"
  "/root/repo/src/pfc/sym/cse.cpp" "src/CMakeFiles/pfc.dir/pfc/sym/cse.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/sym/cse.cpp.o.d"
  "/root/repo/src/pfc/sym/diff.cpp" "src/CMakeFiles/pfc.dir/pfc/sym/diff.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/sym/diff.cpp.o.d"
  "/root/repo/src/pfc/sym/expr.cpp" "src/CMakeFiles/pfc.dir/pfc/sym/expr.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/sym/expr.cpp.o.d"
  "/root/repo/src/pfc/sym/printer.cpp" "src/CMakeFiles/pfc.dir/pfc/sym/printer.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/sym/printer.cpp.o.d"
  "/root/repo/src/pfc/sym/simplify.cpp" "src/CMakeFiles/pfc.dir/pfc/sym/simplify.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/sym/simplify.cpp.o.d"
  "/root/repo/src/pfc/sym/subs.cpp" "src/CMakeFiles/pfc.dir/pfc/sym/subs.cpp.o" "gcc" "src/CMakeFiles/pfc.dir/pfc/sym/subs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
