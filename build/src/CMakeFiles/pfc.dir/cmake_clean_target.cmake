file(REMOVE_RECURSE
  "libpfc.a"
)
