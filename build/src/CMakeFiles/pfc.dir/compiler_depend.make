# Empty compiler generated dependencies file for pfc.
# This may be replaced when dependencies are built.
