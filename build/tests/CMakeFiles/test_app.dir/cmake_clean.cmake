file(REMOVE_RECURSE
  "CMakeFiles/test_app.dir/app/test_grandchem.cpp.o"
  "CMakeFiles/test_app.dir/app/test_grandchem.cpp.o.d"
  "CMakeFiles/test_app.dir/app/test_simulation.cpp.o"
  "CMakeFiles/test_app.dir/app/test_simulation.cpp.o.d"
  "CMakeFiles/test_app.dir/app/test_timeschemes.cpp.o"
  "CMakeFiles/test_app.dir/app/test_timeschemes.cpp.o.d"
  "test_app"
  "test_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
