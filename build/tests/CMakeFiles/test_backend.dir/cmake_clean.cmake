file(REMOVE_RECURSE
  "CMakeFiles/test_backend.dir/backend/test_backend.cpp.o"
  "CMakeFiles/test_backend.dir/backend/test_backend.cpp.o.d"
  "CMakeFiles/test_backend.dir/backend/test_philox.cpp.o"
  "CMakeFiles/test_backend.dir/backend/test_philox.cpp.o.d"
  "CMakeFiles/test_backend.dir/backend/test_roundtrip.cpp.o"
  "CMakeFiles/test_backend.dir/backend/test_roundtrip.cpp.o.d"
  "test_backend"
  "test_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
