file(REMOVE_RECURSE
  "CMakeFiles/test_continuum.dir/continuum/test_continuum.cpp.o"
  "CMakeFiles/test_continuum.dir/continuum/test_continuum.cpp.o.d"
  "test_continuum"
  "test_continuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_continuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
