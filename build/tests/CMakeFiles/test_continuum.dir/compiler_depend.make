# Empty compiler generated dependencies file for test_continuum.
# This may be replaced when dependencies are built.
