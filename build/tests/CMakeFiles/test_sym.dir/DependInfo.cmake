
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sym/test_cse.cpp" "tests/CMakeFiles/test_sym.dir/sym/test_cse.cpp.o" "gcc" "tests/CMakeFiles/test_sym.dir/sym/test_cse.cpp.o.d"
  "/root/repo/tests/sym/test_diff.cpp" "tests/CMakeFiles/test_sym.dir/sym/test_diff.cpp.o" "gcc" "tests/CMakeFiles/test_sym.dir/sym/test_diff.cpp.o.d"
  "/root/repo/tests/sym/test_expr.cpp" "tests/CMakeFiles/test_sym.dir/sym/test_expr.cpp.o" "gcc" "tests/CMakeFiles/test_sym.dir/sym/test_expr.cpp.o.d"
  "/root/repo/tests/sym/test_printer.cpp" "tests/CMakeFiles/test_sym.dir/sym/test_printer.cpp.o" "gcc" "tests/CMakeFiles/test_sym.dir/sym/test_printer.cpp.o.d"
  "/root/repo/tests/sym/test_simplify.cpp" "tests/CMakeFiles/test_sym.dir/sym/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/test_sym.dir/sym/test_simplify.cpp.o.d"
  "/root/repo/tests/sym/test_subs.cpp" "tests/CMakeFiles/test_sym.dir/sym/test_subs.cpp.o" "gcc" "tests/CMakeFiles/test_sym.dir/sym/test_subs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
