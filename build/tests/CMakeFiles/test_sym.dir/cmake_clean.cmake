file(REMOVE_RECURSE
  "CMakeFiles/test_sym.dir/sym/test_cse.cpp.o"
  "CMakeFiles/test_sym.dir/sym/test_cse.cpp.o.d"
  "CMakeFiles/test_sym.dir/sym/test_diff.cpp.o"
  "CMakeFiles/test_sym.dir/sym/test_diff.cpp.o.d"
  "CMakeFiles/test_sym.dir/sym/test_expr.cpp.o"
  "CMakeFiles/test_sym.dir/sym/test_expr.cpp.o.d"
  "CMakeFiles/test_sym.dir/sym/test_printer.cpp.o"
  "CMakeFiles/test_sym.dir/sym/test_printer.cpp.o.d"
  "CMakeFiles/test_sym.dir/sym/test_simplify.cpp.o"
  "CMakeFiles/test_sym.dir/sym/test_simplify.cpp.o.d"
  "CMakeFiles/test_sym.dir/sym/test_subs.cpp.o"
  "CMakeFiles/test_sym.dir/sym/test_subs.cpp.o.d"
  "test_sym"
  "test_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
