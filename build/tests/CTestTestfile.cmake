# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sym "/root/repo/build/tests/test_sym")
set_tests_properties(test_sym PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_field "/root/repo/build/tests/test_field")
set_tests_properties(test_field PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_continuum "/root/repo/build/tests/test_continuum")
set_tests_properties(test_continuum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fd "/root/repo/build/tests/test_fd")
set_tests_properties(test_fd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ir "/root/repo/build/tests/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_backend "/root/repo/build/tests/test_backend")
set_tests_properties(test_backend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_app "/root/repo/build/tests/test_app")
set_tests_properties(test_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;23;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_grid "/root/repo/build/tests/test_grid")
set_tests_properties(test_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;24;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_distributed "/root/repo/build/tests/test_distributed")
set_tests_properties(test_distributed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;25;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;26;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;28;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_obs "/root/repo/build/tests/test_obs")
set_tests_properties(test_obs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;29;pfc_add_test;/root/repo/tests/CMakeLists.txt;0;")
