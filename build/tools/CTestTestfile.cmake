# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(quickstart_emit_report "/root/repo/build/examples/quickstart" "/root/repo/build/tools/quickstart_obs.vtk" "/root/repo/build/tools/quickstart_obs.json" "2")
set_tests_properties(quickstart_emit_report PROPERTIES  FIXTURES_SETUP "quickstart_report" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(report_schema_valid "/root/repo/build/tools/report_check" "/root/repo/build/tools/quickstart_obs.json" "run")
set_tests_properties(report_schema_valid PROPERTIES  FIXTURES_REQUIRED "quickstart_report" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
