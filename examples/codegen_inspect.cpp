// Inspect the code-generation pipeline: dump the continuum PDEs, the
// generated C and CUDA sources, per-kernel operation counts and the ECM
// performance prediction for the P1 model — everything the paper's
// abstraction-layer diagram (Fig. 1) produces.
//
//   ./codegen_inspect [p1|p2] [--split] [--cuda] [--full-source]
//                     [--width=N] [--stream]
//
// --width=N (N in {1,2,4,8}) runs the vectorization pass and emits the
// explicit-SIMD C loop at that width; --stream adds non-temporal stores.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pfc/app/compiler.hpp"
#include "pfc/app/params.hpp"
#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/cuda_emitter.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/ir/vectorize.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/sym/printer.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  bool split = false, cuda = false, full_source = false, stream = false;
  int width = 1;
  std::string which = "p1";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--split")) split = true;
    else if (!std::strcmp(argv[i], "--cuda")) cuda = true;
    else if (!std::strcmp(argv[i], "--full-source")) full_source = true;
    else if (!std::strncmp(argv[i], "--width=", 8)) width = std::atoi(argv[i] + 8);
    else if (!std::strcmp(argv[i], "--stream")) stream = true;
    else which = argv[i];
  }
  if (!ir::vector_width_supported(width)) {
    std::fprintf(stderr, "--width must be 1, 2, 4 or 8\n");
    return 2;
  }

  app::GrandChemParams params =
      which == "p2" ? app::make_p2(3) : app::make_p1(3);
  app::GrandChemModel model(params);

  std::printf("=== model %s: %d phases, %d components, %dD ===\n\n",
              which.c_str(), params.phases, params.components, params.dims);
  std::printf("temperature: T = %s\n\n",
              sym::to_string(model.temperature()).c_str());

  // continuum layer: one variational derivative, abbreviated
  const std::string vd = sym::to_string(model.variational_derivative_phi(0));
  std::printf("deltaPsi/deltaPhi_0 (continuum, %zu chars):\n  %.300s...\n\n",
              vd.size(), vd.c_str());

  app::CompileOptions co;
  co.split_phi = split;
  co.split_mu = split;
  fd::DiscretizeOptions dopts;
  dopts.dims = params.dims;
  dopts.dx = params.dx;
  dopts.dt = params.dt;

  const perf::MachineModel machine = perf::default_machine();
  for (const auto& pde : {model.phi_update(), model.mu_update()}) {
    fd::DiscretizeOptions d = dopts;
    d.split_staggered = split;
    d.clamp_unit_interval = pde.name == "phi";
    d.renormalize_simplex = d.clamp_unit_interval;
    std::optional<FieldPtr> flux;
    for (const auto& k : app::ModelCompiler::lower(pde, d, co, &flux)) {
      const auto ops = ir::count_ops(k);
      std::printf("--- kernel %s ---\n", k.name.c_str());
      std::printf("  %s\n", ops.to_string().c_str());
      std::printf("  body statements: %zu (hoisted per-z: %zu)\n",
                  k.body.size(), k.at_level(ir::Level::PerZ).size());
      const auto ecm = perf::ecm_predict(
          k, {60, 60, 60}, machine, perf::TrafficSource::LayerCondition,
          width);
      std::printf(
          "  ECM: Tcomp %.0f cy/CL, Tmem %.1f cy/CL, saturation at %d "
          "cores, %.1f MLUP/s single core\n",
          ecm.t_comp, ecm.t_mem, ecm.saturation_cores(machine),
          ecm.mlups(machine, 1));
      if (width > 1) {
        const auto plan = ir::plan_vectorize(k, {width, stream});
        std::printf("  vector plan: width %d, %zu broadcasts, %zu streamed "
                    "fields, %lld lane-serial calls, %lld -> %.1f "
                    "flops/cell\n",
                    plan.width, plan.broadcasts.size(),
                    plan.streamed_fields.size(), plan.lane_serial_calls,
                    plan.flops_per_cell_scalar, plan.flops_per_cell_vector);
      }
      backend::CEmitOptions eo;
      eo.vector_width = width;
      eo.streaming_stores = stream;
      const std::string c_src = backend::emit_c(k, eo);
      std::printf("  generated C: %zu bytes\n", c_src.size());
      if (full_source) std::printf("%s\n", c_src.c_str());
      if (cuda) {
        const std::string cu = backend::emit_cuda(k);
        std::printf("  generated CUDA: %zu bytes\n", cu.size());
        if (full_source) std::printf("%s\n", cu.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
