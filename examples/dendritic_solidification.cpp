// Dendritic solidification with cubic anisotropy — the paper's P2 scenario
// (Fig. 4 right): two differently-oriented seeds grow dendritic arms into
// an undercooled binary melt; Philox fluctuations promote side branches.
//
//   ./dendritic_solidification [steps] [out.vtk]
#include <cmath>
#include <cstdio>

#include "pfc/app/analysis.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  const int total_steps = argc > 1 ? std::atoi(argv[1]) : 1500;
  const char* path = argc > 2 ? argv[2] : "dendrite.vtk";

  app::GrandChemParams params = app::make_p2(/*dims=*/2);
  params.dt = 0.004;
  params.noise_amplitude = 0.02;
  app::GrandChemModel model(params);

  app::SimulationOptions opts;
  opts.cells = {160, 160, 1};
  opts.boundary = grid::BoundaryKind::ZeroGradient;
  opts.threads = 4;
  app::Simulation sim(model, opts);

  // two seeds with different phase identity (modelling two orientations)
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d1 =
        std::sqrt(double((x - 50) * (x - 50) + (y - 40) * (y - 40))) - 7.0;
    const double d2 =
        std::sqrt(double((x - 115) * (x - 115) + (y - 30) * (y - 30))) - 7.0;
    const double s1 = app::interface_profile(d1, 2.5 * params.epsilon);
    const double s2 = app::interface_profile(d2, 2.5 * params.epsilon);
    if (c == 1) return s1;
    if (c == 2) return s2;
    return std::max(0.0, 1.0 - s1 - s2);
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });

  std::printf("%8s %10s %10s %12s\n", "step", "grain 1", "grain 2",
              "interface");
  obs::RunReport report;
  for (int b = 0; b <= 6; ++b) {
    const auto st = app::phase_statistics(sim.phi());
    std::printf("%8lld %10.4f %10.4f %12.4f\n", sim.step_count(),
                st.fractions[1], st.fractions[2],
                app::interface_measure(sim.phi(), params.dx, 2));
    if (b < 6) report = sim.run(total_steps / 6);
  }
  grid::write_vtk(path, {&sim.phi(), &sim.mu()});
  std::printf("kernel throughput: %.2f MLUP/s; wrote %s\n", report.mlups(),
              path);
  return 0;
}
