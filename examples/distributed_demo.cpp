// Distributed run: four in-process ranks share a 2x2 block decomposition of
// a two-phase curvature-flow problem and exchange ghost layers every step
// (the waLBerla-style runtime of paper §4).
//
//   ./distributed_demo [ranks] [steps]
#include <cmath>
#include <cstdio>

#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  app::GrandChemParams params = app::make_two_phase(2);
  app::GrandChemModel model(params);

  mpi::run(ranks, [&](mpi::Comm& comm) {
    const auto opts =
        app::DistributedOptions{}.with_cells(96, 96).with_blocks(2, 2);
    app::DistributedSimulation sim(model, opts, &comm);

    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 48) * (x - 48) +
                                            (y - 48) * (y - 48))) -
                           28.0;
          const double s = app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? s : 1.0 - s;
        },
        [](long long, long long, long long, int) { return 0.0; });

    for (int b = 0; b <= 4; ++b) {
      const double solid = comm.allreduce_sum(sim.local_phi_sum(1));
      const obs::RunReport rep = sim.report();
      if (comm.rank() == 0) {
        std::printf("rank 0 | step %4lld | global solid area %9.1f | "
                    "%d local blocks | %.2f MLUP/s | imbalance %.2f | "
                    "%llu B exchanged total\n",
                    sim.step_count(), solid, sim.num_local_blocks(),
                    rep.mlups(), rep.block_imbalance,
                    (unsigned long long)rep.exchange_bytes);
      }
      if (b < 4) sim.run(steps / 4);
    }
  });
  std::printf("done.\n");
  return 0;
}
