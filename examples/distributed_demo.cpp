// Distributed run: four in-process ranks share a 2x2 block decomposition of
// a two-phase curvature-flow problem and exchange ghost layers every step
// (the waLBerla-style runtime of paper §4).
//
//   ./distributed_demo [--health=ignore|warn|throw|recover] [--overlap]
//                      [--threads=N] [--report=report.json]
//                      [--jobspec=FILE] [ranks] [steps]
//
// --health enables per-step in-situ physics checks on every rank.
// --health=throw turns any NaN/phase-sum/conservation violation into a
// failing exit code, which is how ctest guards against silent physics
// regressions; --health=recover rolls back to the last good snapshot
// instead (all ranks agree on the decision via an allreduce).
// --overlap switches the step to interior/frontier communication hiding
// (DESIGN.md §8): bitwise-identical results, exchange hidden behind the
// interior sweep. --threads slab-splits that interior sweep per rank.
// --report writes rank 0's run report JSON (v4 schema, validated by the
// report_overlap_valid ctest). --jobspec runs a pfc-jobspec-v1 file
// (forced to distributed mode) through app::run_job instead.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pfc/app/distributed.hpp"
#include "pfc/app/jobspec.hpp"
#include "pfc/app/params.hpp"
#include "pfc/support/argparse.hpp"
#include "pfc/support/assert.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw pfc::Error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  obs::HealthOptions health;
  app::OverlapMode overlap = app::OverlapMode::Off;
  int threads = 1;
  std::string report_path;
  std::string jobspec_path;

  support::ArgParser args(
      "distributed_demo",
      "distributed_demo [--health=ignore|warn|throw|recover] [--overlap]\n"
      "                 [--threads=N] [--report=report.json] "
      "[--jobspec=FILE] [ranks] [steps]");
  args.on_value("health", [&](const std::string& v) {
    health.enable().with_policy(obs::parse_health_policy(v));
  });
  args.on_flag("overlap",
               [&] { overlap = app::OverlapMode::InteriorFrontier; });
  args.positive("threads", &threads);
  args.on_value("report", [&](const std::string& v) {
    if (v.empty()) throw Error("--report needs a file path");
    report_path = v;
  });
  args.value("jobspec", &jobspec_path);
  const std::vector<const char*> pos = args.parse(argc, argv);

  // --jobspec: run the spec through the serve engine, forced distributed
  // (serial multi-block), and print its result summary.
  if (!jobspec_path.empty()) {
    try {
      app::JobSpec spec = app::JobSpec::parse(read_file(jobspec_path));
      spec.mode = "distributed";
      const app::JobResult result = app::run_job(spec);
      if (!report_path.empty()) {
        obs::write_json(report_path, result.to_json());
      }
      std::printf("job \"%s\": %lld steps, %.2f MLUP/s, phi fnv1a64 "
                  "%016llx\n",
                  result.name.c_str(), result.steps, result.run.mlups(),
                  (unsigned long long)result.phi_checksum);
      return 0;
    } catch (const Error& e) {
      args.fail(e.what());
    }
  }

  const int ranks =
      pos.size() > 0 ? int(support::parse_count(pos[0], "ranks")) : 4;
  const int steps =
      pos.size() > 1 ? int(support::parse_count(pos[1], "steps")) : 200;

  app::GrandChemParams params = app::make_two_phase(2);
  app::GrandChemModel model(params);

  mpi::run(ranks, [&](mpi::Comm& comm) {
    const auto opts = app::DistributedOptions{}
                          .with_cells(96, 96)
                          .with_blocks(2, 2)
                          .with_health(health)
                          .with_overlap(overlap)
                          .with_threads(threads);
    app::DistributedSimulation sim(model, opts, &comm);

    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 48) * (x - 48) +
                                            (y - 48) * (y - 48))) -
                           28.0;
          const double s = app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? s : 1.0 - s;
        },
        [](long long, long long, long long, int) { return 0.0; });

    for (int b = 0; b <= 4; ++b) {
      const double solid = comm.allreduce_sum(sim.local_phi_sum(1));
      const obs::RunReport rep = sim.report();
      if (comm.rank() == 0) {
        std::printf("rank 0 | step %4lld | global solid area %9.1f | "
                    "%d local blocks | %.2f MLUP/s | imbalance %.2f | "
                    "%llu B exchanged total\n",
                    sim.step_count(), solid, sim.num_local_blocks(),
                    rep.mlups(), rep.block_imbalance,
                    (unsigned long long)rep.exchange_bytes);
      }
      if (b < 4) sim.run(steps / 4);
    }
    const obs::RunReport rep = sim.report();
    if (comm.rank() == 0 && overlap == app::OverlapMode::InteriorFrontier) {
      std::printf("rank 0 | overlap: interior %.3fs frontier %.3fs | "
                  "pack %.3fs wait %.3fs | hidden %.0f%% of exchange\n",
                  rep.overlap.interior_seconds, rep.overlap.frontier_seconds,
                  rep.overlap.pack_seconds, rep.overlap.wait_seconds,
                  100.0 * rep.overlap.hidden_fraction);
    }
    if (comm.rank() == 0 && health.enabled) {
      const obs::HealthStats& hs = sim.health().stats();
      std::printf("rank 0 | health: %lld scans, %llu violations "
                  "(policy %s)\n",
                  hs.checks, (unsigned long long)hs.total_violations(),
                  obs::health_policy_name(health.policy));
    }
    if (comm.rank() == 0 && !report_path.empty()) {
      obs::write_json(report_path, rep.to_json());
      std::printf("rank 0 | wrote %s\n", report_path.c_str());
    }
  });
  std::printf("done.\n");
  return 0;
}
