// Distributed run: four in-process ranks share a 2x2 block decomposition of
// a two-phase curvature-flow problem and exchange ghost layers every step
// (the waLBerla-style runtime of paper §4).
//
//   ./distributed_demo [--health=ignore|warn|throw|recover] [ranks] [steps]
//
// --health enables per-step in-situ physics checks on every rank.
// --health=throw turns any NaN/phase-sum/conservation violation into a
// failing exit code, which is how ctest guards against silent physics
// regressions; --health=recover rolls back to the last good snapshot
// instead (all ranks agree on the decision via an allreduce).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/support/assert.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  obs::HealthOptions health;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--health=", 9) == 0) {
      try {
        health.enable().with_policy(obs::parse_health_policy(argv[i] + 9));
      } catch (const Error& e) {
        std::fprintf(stderr, "distributed_demo: %s\n", e.what());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "distributed_demo: unknown flag \"%s\"\n"
                   "usage: distributed_demo "
                   "[--health=ignore|warn|throw|recover] [ranks] [steps]\n",
                   argv[i]);
      return 2;
    } else {
      pos.push_back(argv[i]);
    }
  }
  const int ranks = pos.size() > 0 ? std::atoi(pos[0]) : 4;
  const int steps = pos.size() > 1 ? std::atoi(pos[1]) : 200;

  app::GrandChemParams params = app::make_two_phase(2);
  app::GrandChemModel model(params);

  mpi::run(ranks, [&](mpi::Comm& comm) {
    const auto opts = app::DistributedOptions{}
                          .with_cells(96, 96)
                          .with_blocks(2, 2)
                          .with_health(health);
    app::DistributedSimulation sim(model, opts, &comm);

    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 48) * (x - 48) +
                                            (y - 48) * (y - 48))) -
                           28.0;
          const double s = app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? s : 1.0 - s;
        },
        [](long long, long long, long long, int) { return 0.0; });

    for (int b = 0; b <= 4; ++b) {
      const double solid = comm.allreduce_sum(sim.local_phi_sum(1));
      const obs::RunReport rep = sim.report();
      if (comm.rank() == 0) {
        std::printf("rank 0 | step %4lld | global solid area %9.1f | "
                    "%d local blocks | %.2f MLUP/s | imbalance %.2f | "
                    "%llu B exchanged total\n",
                    sim.step_count(), solid, sim.num_local_blocks(),
                    rep.mlups(), rep.block_imbalance,
                    (unsigned long long)rep.exchange_bytes);
      }
      if (b < 4) sim.run(steps / 4);
    }
    if (comm.rank() == 0 && health.enabled) {
      const obs::HealthStats& hs = sim.health().stats();
      std::printf("rank 0 | health: %lld scans, %llu violations "
                  "(policy %s)\n",
                  hs.checks, (unsigned long long)hs.total_violations(),
                  obs::health_policy_name(health.policy));
    }
  });
  std::printf("done.\n");
  return 0;
}
