// Distributed run: four in-process ranks share a 2x2 block decomposition of
// a two-phase curvature-flow problem and exchange ghost layers every step
// (the waLBerla-style runtime of paper §4).
//
//   ./distributed_demo [--health=ignore|warn|throw|recover] [--overlap]
//                      [--threads=N] [--report=report.json] [ranks] [steps]
//
// --health enables per-step in-situ physics checks on every rank.
// --health=throw turns any NaN/phase-sum/conservation violation into a
// failing exit code, which is how ctest guards against silent physics
// regressions; --health=recover rolls back to the last good snapshot
// instead (all ranks agree on the decision via an allreduce).
// --overlap switches the step to interior/frontier communication hiding
// (DESIGN.md §8): bitwise-identical results, exchange hidden behind the
// interior sweep. --threads slab-splits that interior sweep per rank.
// --report writes rank 0's run report JSON (v4 schema, validated by the
// report_overlap_valid ctest).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/support/assert.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "distributed_demo: %s\n"
               "usage: distributed_demo [--health=ignore|warn|throw|recover] "
               "[--overlap]\n"
               "                        [--threads=N] [--report=report.json] "
               "[ranks] [steps]\n",
               msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  obs::HealthOptions health;
  app::OverlapMode overlap = app::OverlapMode::Off;
  int threads = 1;
  std::string report_path;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--health=", 9) == 0) {
      try {
        health.enable().with_policy(obs::parse_health_policy(argv[i] + 9));
      } catch (const Error& e) {
        usage_error(e.what());
      }
    } else if (std::strcmp(argv[i], "--overlap") == 0) {
      overlap = app::OverlapMode::InteriorFrontier;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      char* end = nullptr;
      threads = int(std::strtol(argv[i] + 10, &end, 10));
      if (end == argv[i] + 10 || *end != '\0' || threads < 1) {
        usage_error(std::string("invalid value \"") + (argv[i] + 10) +
                    "\" for --threads (expected a positive integer)");
      }
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
      if (report_path.empty()) {
        usage_error("--report needs a file path");
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      usage_error(std::string("unknown flag \"") + argv[i] + '"');
    } else {
      pos.push_back(argv[i]);
    }
  }
  const int ranks = pos.size() > 0 ? std::atoi(pos[0]) : 4;
  const int steps = pos.size() > 1 ? std::atoi(pos[1]) : 200;

  app::GrandChemParams params = app::make_two_phase(2);
  app::GrandChemModel model(params);

  mpi::run(ranks, [&](mpi::Comm& comm) {
    const auto opts = app::DistributedOptions{}
                          .with_cells(96, 96)
                          .with_blocks(2, 2)
                          .with_health(health)
                          .with_overlap(overlap)
                          .with_threads(threads);
    app::DistributedSimulation sim(model, opts, &comm);

    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 48) * (x - 48) +
                                            (y - 48) * (y - 48))) -
                           28.0;
          const double s = app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? s : 1.0 - s;
        },
        [](long long, long long, long long, int) { return 0.0; });

    for (int b = 0; b <= 4; ++b) {
      const double solid = comm.allreduce_sum(sim.local_phi_sum(1));
      const obs::RunReport rep = sim.report();
      if (comm.rank() == 0) {
        std::printf("rank 0 | step %4lld | global solid area %9.1f | "
                    "%d local blocks | %.2f MLUP/s | imbalance %.2f | "
                    "%llu B exchanged total\n",
                    sim.step_count(), solid, sim.num_local_blocks(),
                    rep.mlups(), rep.block_imbalance,
                    (unsigned long long)rep.exchange_bytes);
      }
      if (b < 4) sim.run(steps / 4);
    }
    const obs::RunReport rep = sim.report();
    if (comm.rank() == 0 && overlap == app::OverlapMode::InteriorFrontier) {
      std::printf("rank 0 | overlap: interior %.3fs frontier %.3fs | "
                  "pack %.3fs wait %.3fs | hidden %.0f%% of exchange\n",
                  rep.overlap.interior_seconds, rep.overlap.frontier_seconds,
                  rep.overlap.pack_seconds, rep.overlap.wait_seconds,
                  100.0 * rep.overlap.hidden_fraction);
    }
    if (comm.rank() == 0 && health.enabled) {
      const obs::HealthStats& hs = sim.health().stats();
      std::printf("rank 0 | health: %lld scans, %llu violations "
                  "(policy %s)\n",
                  hs.checks, (unsigned long long)hs.total_violations(),
                  obs::health_policy_name(health.policy));
    }
    if (comm.rank() == 0 && !report_path.empty()) {
      obs::write_json(report_path, rep.to_json());
      std::printf("rank 0 | wrote %s\n", report_path.c_str());
    }
  });
  std::printf("done.\n");
  return 0;
}
