// Ternary eutectic directional solidification — the paper's P1 scenario
// (Fig. 4 left): three solid phases grow as lamellae from the bottom into
// an undercooled ternary melt, pulled by an analytic temperature gradient.
//
//   ./eutectic_solidification [steps] [out_prefix]
#include <cmath>
#include <cstdio>
#include <string>

#include "pfc/app/analysis.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  const int total_steps = argc > 1 ? std::atoi(argv[1]) : 1200;
  const std::string prefix = argc > 2 ? argv[2] : "eutectic";

  app::GrandChemParams params = app::make_p1(/*dims=*/2);
  params.dt = 0.005;
  app::GrandChemModel model(params);

  app::SimulationOptions opts;
  opts.cells = {96, 192, 1};
  opts.boundary = grid::BoundaryKind::ZeroGradient;
  opts.threads = 4;
  app::Simulation sim(model, opts);

  // six alternating lamellae seeds along the bottom
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double front =
        app::interface_profile(double(y) - 14.0, 2.5 * params.epsilon);
    if (c == 0) return 1.0 - front;
    const int lamella = 1 + int((x * 6) / 96) % 3;
    return c == lamella ? front : 0.0;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });

  std::printf("%8s %8s %10s %10s %10s %10s\n", "step", "front", "liquid",
              "alpha", "beta", "gamma");
  const int bursts = 8;
  obs::RunReport report;
  for (int b = 0; b <= bursts; ++b) {
    const auto st = app::phase_statistics(sim.phi());
    std::printf("%8lld %8lld %10.4f %10.4f %10.4f %10.4f\n",
                sim.step_count(), app::front_position(sim.phi(), 0, 1),
                st.fractions[0], st.fractions[1], st.fractions[2],
                st.fractions[3]);
    grid::append_csv(prefix + "_front.csv",
                     {"step", "front", "liquid", "alpha", "beta", "gamma"},
                     {double(sim.step_count()),
                      double(app::front_position(sim.phi(), 0, 1)),
                      st.fractions[0], st.fractions[1], st.fractions[2],
                      st.fractions[3]});
    if (b < bursts) report = sim.run(total_steps / bursts);
  }
  grid::write_vtk(prefix + ".vtk", {&sim.phi(), &sim.mu()});
  std::printf("kernel throughput: %.2f MLUP/s; wrote %s.vtk and %s_front.csv\n",
              report.mlups(), prefix.c_str(), prefix.c_str());
  return 0;
}
