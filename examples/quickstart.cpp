// Quickstart: define a minimal two-phase model, let the pipeline generate
// and JIT-compile its kernels, run mean-curvature flow of a shrinking disk,
// write VTK output and a machine-readable observability report.
//
//   ./quickstart [--trace[=trace.json]] [output.vtk] [report.json] [bursts]
//
// --trace records a chrome://tracing span timeline (per-kernel, per-slab
// and boundary-fill spans) — open the file in chrome://tracing or Perfetto.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pfc/app/analysis.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"

int main(int argc, char** argv) {
  using namespace pfc;
  bool trace = false;
  std::string trace_path = "trace.json";
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace", 7) == 0) {
      trace = true;
      if (argv[i][7] == '=') trace_path = argv[i] + 8;
    } else {
      pos.push_back(argv[i]);
    }
  }
  const char* vtk_path = pos.size() > 0 ? pos[0] : "quickstart.vtk";
  const char* report_path = pos.size() > 1 ? pos[1]
                                           : "quickstart_report.json";
  const int bursts = pos.size() > 2 ? std::atoi(pos[2]) : 10;

  // 1. model: two phases, curvature-driven (no chemical driving force)
  app::GrandChemParams params = app::make_two_phase(/*dims=*/2);
  app::GrandChemModel model(params);

  // 2. compile: energy functional -> PDEs -> stencils -> optimized C -> JIT
  auto opts = app::SimulationOptions{}.with_cells(128, 128)
                  .with_threads(4)
                  .with_health(obs::HealthOptions{}.enable().every(100));
  if (trace) {
    opts.with_trace(obs::TraceOptions{}.enable().with_path(trace_path));
  }
  app::Simulation sim(model, opts);
  const obs::CompileReport& cr = sim.compiled().compile_report();
  std::printf("generated %zu bytes of C in %.3f s (%lld -> %lld ops/cell), "
              "external compiler %.2f s\n",
              sim.compiled().generated_source().size(),
              cr.generation_seconds(), cr.ops_per_cell_pre,
              cr.ops_per_cell_post, cr.compile_seconds());

  // 3. initial condition: a solid disk in melt
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d = std::sqrt(double((x - 64) * (x - 64) +
                                      (y - 64) * (y - 64))) -
                     40.0;
    const double solid = app::interface_profile(d, 2.5 * params.epsilon);
    return c == 1 ? solid : 1.0 - solid;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });

  // 4. time loop: the disk shrinks at a rate independent of its radius
  std::printf("%8s %12s %12s\n", "step", "solid area", "interface");
  obs::RunReport report;
  for (int burst = 0; burst < bursts; ++burst) {
    const auto st = app::phase_statistics(sim.phi());
    std::printf("%8lld %12.1f %12.4f\n", sim.step_count(),
                st.fractions[1] * 128 * 128, st.interface_fraction);
    report = sim.run(100);
  }
  std::printf("kernel throughput: %.2f MLUP/s over %lld steps\n",
              report.mlups(), report.steps);

  grid::write_vtk(vtk_path, {&sim.phi()});

  // 5. one JSON schema for examples and benches (validated by ctest)
  obs::Json j = report.to_json();
  j.set("compile", cr.to_json());
  obs::write_json(report_path, j);
  std::printf("wrote %s and %s\n", vtk_path, report_path);
  if (trace) {
    std::printf("wrote %s (%llu spans) - open in chrome://tracing\n",
                trace_path.c_str(),
                (unsigned long long)sim.tracer().events_recorded());
  }
  return 0;
}
