// Quickstart: define a minimal two-phase model, let the pipeline generate
// and JIT-compile its kernels, run mean-curvature flow of a shrinking disk,
// write VTK output and a machine-readable observability report.
//
//   ./quickstart [--trace[=trace.json]] [--health=<policy>] [--overlap]
//                [--checkpoint-every=N] [--checkpoint-dir=DIR]
//                [--restart[=DIR]] [output.vtk] [report.json] [bursts]
//
// --trace records a chrome://tracing span timeline (per-kernel, per-slab
// and boundary-fill spans) — open the file in chrome://tracing or Perfetto.
// --health picks the in-situ check policy (ignore|warn|throw|recover).
// --checkpoint-every writes an on-disk checkpoint every N steps;
// --restart resumes bitwise-identically from the last one.
// --overlap runs the same problem through the multi-block distributed
// runtime with interior/frontier communication hiding (DESIGN.md §8) —
// bitwise-identical physics, and the report gains an "overlap" section.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pfc/app/analysis.hpp"
#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"
#include "pfc/support/assert.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "quickstart: %s\n"
               "usage: quickstart [--trace[=trace.json]] "
               "[--health=ignore|warn|throw|recover] [--overlap]\n"
               "                  [--checkpoint-every=N] "
               "[--checkpoint-dir=DIR] [--restart[=DIR]]\n"
               "                  [output.vtk] [report.json] [bursts]\n",
               msg.c_str());
  std::exit(2);
}

long long parse_count(const char* text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) {
    usage_error(std::string("invalid value \"") + text + "\" for " + flag +
                " (expected a non-negative integer)");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  bool trace = false;
  bool overlap = false;
  std::string trace_path = "trace.json";
  auto health = obs::HealthOptions{}.enable().every(100);
  std::string ckpt_dir = "quickstart_ckpt";
  long long ckpt_every = 0;
  bool restart = false;
  std::string restart_dir;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace", 7) == 0 &&
        (argv[i][7] == '\0' || argv[i][7] == '=')) {
      trace = true;
      if (argv[i][7] == '=') trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--health=", 9) == 0) {
      try {
        health.with_policy(obs::parse_health_policy(argv[i] + 9));
      } catch (const Error& e) {
        usage_error(e.what());
      }
    } else if (std::strncmp(argv[i], "--checkpoint-every=", 19) == 0) {
      ckpt_every = parse_count(argv[i] + 19, "--checkpoint-every");
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      ckpt_dir = argv[i] + 17;
    } else if (std::strcmp(argv[i], "--overlap") == 0) {
      overlap = true;
    } else if (std::strcmp(argv[i], "--restart") == 0) {
      restart = true;
    } else if (std::strncmp(argv[i], "--restart=", 10) == 0) {
      restart = true;
      restart_dir = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      usage_error(std::string("unknown flag \"") + argv[i] + '"');
    } else {
      pos.push_back(argv[i]);
    }
  }
  const char* vtk_path = pos.size() > 0 ? pos[0] : "quickstart.vtk";
  const char* report_path = pos.size() > 1 ? pos[1]
                                           : "quickstart_report.json";
  const int bursts = pos.size() > 2 ? std::atoi(pos[2]) : 10;

  // 1. model: two phases, curvature-driven (no chemical driving force)
  app::GrandChemParams params = app::make_two_phase(/*dims=*/2);
  app::GrandChemModel model(params);

  // --overlap: same disk, but through the multi-block distributed runtime
  // with interior/frontier communication hiding (serial, 2x2 blocks).
  if (overlap) {
    if (ckpt_every > 0 || restart) {
      usage_error("--overlap cannot be combined with checkpointing; use "
                  "distributed_demo for resilient distributed runs");
    }
    auto dopts = app::DistributedOptions{}
                     .with_cells(128, 128)
                     .with_blocks(2, 2)
                     .with_overlap(app::OverlapMode::InteriorFrontier)
                     .with_threads(4)
                     .with_health(health);
    if (trace) {
      dopts.with_trace(obs::TraceOptions{}.enable().with_path(trace_path));
    }
    app::DistributedSimulation sim(model, dopts, nullptr);
    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 64) * (x - 64) +
                                            (y - 64) * (y - 64))) -
                           40.0;
          const double solid =
              app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? solid : 1.0 - solid;
        },
        [](long long, long long, long long, int) { return 0.0; });

    // gathered global phi as a plain Array for stats and VTK output
    Array phi(model.phi_src(), {128, 128, 1}, 0);
    const auto gather = [&] {
      const std::vector<double> flat = sim.gather_phi();
      for (int c = 0; c < phi.components(); ++c) {
        for (long long y = 0; y < 128; ++y) {
          for (long long x = 0; x < 128; ++x) {
            phi.at(x, y, 0, c) =
                flat[std::size_t(x + 128 * y) + std::size_t(128 * 128) *
                                                    std::size_t(c)];
          }
        }
      }
    };
    std::printf("%8s %12s %12s\n", "step", "solid area", "interface");
    obs::RunReport report;
    for (int burst = 0; burst < bursts; ++burst) {
      gather();
      const auto st = app::phase_statistics(phi);
      std::printf("%8lld %12.1f %12.4f\n", sim.step_count(),
                  st.fractions[1] * 128 * 128, st.interface_fraction);
      report = sim.run(100);
    }
    std::printf("kernel throughput: %.2f MLUP/s over %lld steps | "
                "overlap hid %.0f%% of exchange\n",
                report.mlups(), report.steps,
                100.0 * report.overlap.hidden_fraction);
    gather();
    grid::write_vtk(vtk_path, {&phi});
    obs::write_json(report_path, report.to_json());
    std::printf("wrote %s and %s\n", vtk_path, report_path);
    return 0;
  }

  // 2. compile: energy functional -> PDEs -> stencils -> optimized C -> JIT
  auto opts = app::SimulationOptions{}.with_cells(128, 128)
                  .with_threads(4)
                  .with_health(health);
  if (trace) {
    opts.with_trace(obs::TraceOptions{}.enable().with_path(trace_path));
  }
  if (ckpt_every > 0 || restart) {
    auto res = resilience::ResilienceOptions{}
                   .every(int(ckpt_every))
                   .with_directory(ckpt_dir);
    if (restart) {
      res.with_restart(restart_dir.empty() ? ckpt_dir : restart_dir);
    }
    opts.with_resilience(res);
  }
  app::Simulation sim(model, opts);
  const obs::CompileReport& cr = sim.compiled().compile_report();
  std::printf("generated %zu bytes of C in %.3f s (%lld -> %lld ops/cell), "
              "external compiler %.2f s\n",
              sim.compiled().generated_source().size(),
              cr.generation_seconds(), cr.ops_per_cell_pre,
              cr.ops_per_cell_post, cr.compile_seconds());

  // 3. initial condition: a solid disk in melt (a restart restores the
  // saved state instead, so re-seeding would throw the run away)
  if (restart) {
    std::printf("restarted from %s at step %lld\n",
                (restart_dir.empty() ? ckpt_dir : restart_dir).c_str(),
                sim.step_count());
  } else {
    sim.init_phi([&](long long x, long long y, long long, int c) {
      const double d = std::sqrt(double((x - 64) * (x - 64) +
                                        (y - 64) * (y - 64))) -
                       40.0;
      const double solid = app::interface_profile(d, 2.5 * params.epsilon);
      return c == 1 ? solid : 1.0 - solid;
    });
    sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  }

  // 4. time loop: the disk shrinks at a rate independent of its radius
  std::printf("%8s %12s %12s\n", "step", "solid area", "interface");
  obs::RunReport report;
  for (int burst = 0; burst < bursts; ++burst) {
    const auto st = app::phase_statistics(sim.phi());
    std::printf("%8lld %12.1f %12.4f\n", sim.step_count(),
                st.fractions[1] * 128 * 128, st.interface_fraction);
    report = sim.run(100);
  }
  std::printf("kernel throughput: %.2f MLUP/s over %lld steps\n",
              report.mlups(), report.steps);

  grid::write_vtk(vtk_path, {&sim.phi()});

  // 5. one JSON schema for examples and benches (validated by ctest)
  obs::Json j = report.to_json();
  j.set("compile", cr.to_json());
  obs::write_json(report_path, j);
  std::printf("wrote %s and %s\n", vtk_path, report_path);
  if (ckpt_every > 0) {
    std::printf("checkpoints: %llu written to %s (last at step %lld)\n",
                (unsigned long long)sim.resilience_stats().checkpoint_files,
                ckpt_dir.c_str(),
                sim.resilience_stats().last_checkpoint_step);
  }
  if (trace) {
    std::printf("wrote %s (%llu spans) - open in chrome://tracing\n",
                trace_path.c_str(),
                (unsigned long long)sim.tracer().events_recorded());
  }
  return 0;
}
