// Quickstart: define a minimal two-phase model, let the pipeline generate
// and JIT-compile its kernels, run mean-curvature flow of a shrinking disk,
// write VTK output and a machine-readable observability report.
//
//   ./quickstart [--trace[=trace.json]] [--health=<policy>] [--overlap]
//                [--checkpoint-every=N] [--checkpoint-dir=DIR]
//                [--restart[=DIR]] [--jobspec=FILE]
//                [--threads=N] [--pin=none|compact|scatter]
//                [--blocking=off|auto|N]
//                [output.vtk] [report.json] [bursts]
//
// --trace records a chrome://tracing span timeline (per-kernel, per-slab
// and boundary-fill spans) — open the file in chrome://tracing or Perfetto.
// --health picks the in-situ check policy (ignore|warn|throw|recover).
// --checkpoint-every writes an on-disk checkpoint every N steps;
// --restart resumes bitwise-identically from the last one.
// --overlap runs the same problem through the multi-block distributed
// runtime with interior/frontier communication hiding (DESIGN.md §8) —
// bitwise-identical physics, and the report gains an "overlap" section.
// --jobspec runs a pfc-jobspec-v1 file through the same engine the serve
// daemon uses (app::run_job) and writes its result JSON instead.
// --threads sets the worker-pool width (default 4); --pin binds workers to
// CPUs (compact fills a package first, scatter round-robins NUMA nodes);
// --blocking fuses the φ/µ sweeps over wavefront tiles — "auto" sizes the
// tile from the layer-condition model, a number forces that tile height.
// See "Running on a full socket" in the README.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pfc/app/analysis.hpp"
#include "pfc/app/distributed.hpp"
#include "pfc/app/jobspec.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"
#include "pfc/support/argparse.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/support/topology.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw pfc::Error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfc;
  bool trace = false;
  bool overlap = false;
  std::string trace_path = "trace.json";
  auto health = obs::HealthOptions{}.enable().every(100);
  std::string ckpt_dir = "quickstart_ckpt";
  long long ckpt_every = 0;
  bool restart = false;
  std::string restart_dir;
  std::string jobspec_path;
  long long threads = 4;
  support::PinPolicy pin = support::PinPolicy::None;
  app::BlockingMode blocking = app::BlockingMode::Off;
  long long blocking_tile = 0;

  support::ArgParser args(
      "quickstart",
      "quickstart [--trace[=trace.json]] "
      "[--health=ignore|warn|throw|recover] [--overlap]\n"
      "           [--checkpoint-every=N] [--checkpoint-dir=DIR] "
      "[--restart[=DIR]]\n"
      "           [--jobspec=FILE] [--threads=N] "
      "[--pin=none|compact|scatter]\n"
      "           [--blocking=off|auto|N] "
      "[output.vtk] [report.json] [bursts]");
  args.on_optional_value("trace", [&](const std::string* v) {
    trace = true;
    if (v != nullptr) trace_path = *v;
  });
  args.on_value("health", [&](const std::string& v) {
    health.with_policy(obs::parse_health_policy(v));
  });
  args.count("checkpoint-every", &ckpt_every);
  args.value("checkpoint-dir", &ckpt_dir);
  args.flag("overlap", &overlap);
  args.on_optional_value("restart", [&](const std::string* v) {
    restart = true;
    if (v != nullptr) restart_dir = *v;
  });
  args.value("jobspec", &jobspec_path);
  args.count("threads", &threads);
  args.on_value("pin", [&](const std::string& v) {
    pin = support::parse_pin_policy(v);
  });
  args.on_value("blocking", [&](const std::string& v) {
    if (v == "off") {
      blocking = app::BlockingMode::Off;
    } else if (v == "auto") {
      blocking = app::BlockingMode::Auto;
    } else {
      blocking = app::BlockingMode::Fixed;
      blocking_tile = support::parse_count(v.c_str(), "blocking");
    }
  });
  const std::vector<const char*> pos = args.parse(argc, argv);
  if (threads < 1) args.fail("--threads must be >= 1");

  const char* vtk_path = pos.size() > 0 ? pos[0] : "quickstart.vtk";
  const char* report_path = pos.size() > 1 ? pos[1]
                                           : "quickstart_report.json";
  const int bursts =
      pos.size() > 2
          ? int(support::parse_count(pos[2], "bursts"))
          : 10;

  // --jobspec: bypass the built-in scenario and run the spec through the
  // same engine the serve daemon uses; the report path gets the JobResult.
  if (!jobspec_path.empty()) {
    try {
      const app::JobSpec spec = app::JobSpec::parse(read_file(jobspec_path));
      const app::JobResult result = app::run_job(spec);
      const char* out = pos.size() > 1 ? pos[1] : "quickstart_job.json";
      obs::write_json(out, result.to_json());
      std::printf("job \"%s\": %lld steps, %.2f MLUP/s, phi fnv1a64 %016llx"
                  " — wrote %s\n",
                  result.name.c_str(), result.steps, result.run.mlups(),
                  (unsigned long long)result.phi_checksum, out);
      return 0;
    } catch (const Error& e) {
      args.fail(e.what());
    }
  }

  // 1. model: two phases, curvature-driven (no chemical driving force)
  app::GrandChemParams params = app::make_two_phase(/*dims=*/2);
  app::GrandChemModel model(params);

  // --overlap: same disk, but through the multi-block distributed runtime
  // with interior/frontier communication hiding (serial, 2x2 blocks).
  if (overlap) {
    if (ckpt_every > 0 || restart) {
      args.fail("--overlap cannot be combined with checkpointing; use "
                "distributed_demo for resilient distributed runs");
    }
    auto dopts = app::DistributedOptions{}
                     .with_cells(128, 128)
                     .with_blocks(2, 2)
                     .with_overlap(app::OverlapMode::InteriorFrontier)
                     .with_threads(4)
                     .with_health(health);
    if (trace) {
      dopts.with_trace(obs::TraceOptions{}.enable().with_path(trace_path));
    }
    app::DistributedSimulation sim(model, dopts, nullptr);
    sim.init(
        [&](long long x, long long y, long long, int c) {
          const double d = std::sqrt(double((x - 64) * (x - 64) +
                                            (y - 64) * (y - 64))) -
                           40.0;
          const double solid =
              app::interface_profile(d, 2.5 * params.epsilon);
          return c == 1 ? solid : 1.0 - solid;
        },
        [](long long, long long, long long, int) { return 0.0; });

    // gathered global phi as a plain Array for stats and VTK output
    Array phi(model.phi_src(), {128, 128, 1}, 0);
    const auto gather = [&] {
      const std::vector<double> flat = sim.gather_phi();
      for (int c = 0; c < phi.components(); ++c) {
        for (long long y = 0; y < 128; ++y) {
          for (long long x = 0; x < 128; ++x) {
            phi.at(x, y, 0, c) =
                flat[std::size_t(x + 128 * y) + std::size_t(128 * 128) *
                                                    std::size_t(c)];
          }
        }
      }
    };
    std::printf("%8s %12s %12s\n", "step", "solid area", "interface");
    obs::RunReport report;
    for (int burst = 0; burst < bursts; ++burst) {
      gather();
      const auto st = app::phase_statistics(phi);
      std::printf("%8lld %12.1f %12.4f\n", sim.step_count(),
                  st.fractions[1] * 128 * 128, st.interface_fraction);
      report = sim.run(100);
    }
    std::printf("kernel throughput: %.2f MLUP/s over %lld steps | "
                "overlap hid %.0f%% of exchange\n",
                report.mlups(), report.steps,
                100.0 * report.overlap.hidden_fraction);
    gather();
    grid::write_vtk(vtk_path, {&phi});
    obs::write_json(report_path, report.to_json());
    std::printf("wrote %s and %s\n", vtk_path, report_path);
    return 0;
  }

  // 2. compile: energy functional -> PDEs -> stencils -> optimized C -> JIT
  auto opts = app::SimulationOptions{}.with_cells(128, 128)
                  .with_threads(int(threads))
                  .with_pin(pin)
                  .with_blocking(blocking, blocking_tile)
                  .with_health(health);
  if (trace) {
    opts.with_trace(obs::TraceOptions{}.enable().with_path(trace_path));
  }
  if (ckpt_every > 0 || restart) {
    auto res = resilience::ResilienceOptions{}
                   .every(int(ckpt_every))
                   .with_directory(ckpt_dir);
    if (restart) {
      res.with_restart(restart_dir.empty() ? ckpt_dir : restart_dir);
    }
    opts.with_resilience(res);
  }
  app::Simulation sim(model, opts);
  const obs::CompileReport& cr = sim.compiled().compile_report();
  std::printf("generated %zu bytes of C in %.3f s (%lld -> %lld ops/cell), "
              "external compiler %.2f s\n",
              sim.compiled().generated_source().size(),
              cr.generation_seconds(), cr.ops_per_cell_pre,
              cr.ops_per_cell_post, cr.compile_seconds());

  // 3. initial condition: a solid disk in melt (a restart restores the
  // saved state instead, so re-seeding would throw the run away)
  if (restart) {
    std::printf("restarted from %s at step %lld\n",
                (restart_dir.empty() ? ckpt_dir : restart_dir).c_str(),
                sim.step_count());
  } else {
    sim.init_phi([&](long long x, long long y, long long, int c) {
      const double d = std::sqrt(double((x - 64) * (x - 64) +
                                        (y - 64) * (y - 64))) -
                       40.0;
      const double solid = app::interface_profile(d, 2.5 * params.epsilon);
      return c == 1 ? solid : 1.0 - solid;
    });
    sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  }

  // 4. time loop: the disk shrinks at a rate independent of its radius
  std::printf("%8s %12s %12s\n", "step", "solid area", "interface");
  obs::RunReport report;
  for (int burst = 0; burst < bursts; ++burst) {
    const auto st = app::phase_statistics(sim.phi());
    std::printf("%8lld %12.1f %12.4f\n", sim.step_count(),
                st.fractions[1] * 128 * 128, st.interface_fraction);
    report = sim.run(100);
  }
  std::printf("kernel throughput: %.2f MLUP/s over %lld steps\n",
              report.mlups(), report.steps);
  std::printf("threads: %lld (pin %s) | blocking: %s — %s\n", threads,
              support::pin_policy_name(pin),
              sim.blocking_active() ? "wavefront" : "off",
              sim.blocking_plan().reason.c_str());

  grid::write_vtk(vtk_path, {&sim.phi()});

  // 5. one JSON schema for examples and benches (validated by ctest)
  obs::Json j = report.to_json();
  j.set("compile", cr.to_json());
  obs::write_json(report_path, j);
  std::printf("wrote %s and %s\n", vtk_path, report_path);
  if (ckpt_every > 0) {
    std::printf("checkpoints: %llu written to %s (last at step %lld)\n",
                (unsigned long long)sim.resilience_stats().checkpoint_files,
                ckpt_dir.c_str(),
                sim.resilience_stats().last_checkpoint_step);
  }
  if (trace) {
    std::printf("wrote %s (%llu spans) - open in chrome://tracing\n",
                trace_path.c_str(),
                (unsigned long long)sim.tracer().events_recorded());
  }
  return 0;
}
