// Quickstart: define a minimal two-phase model, let the pipeline generate
// and JIT-compile its kernels, run mean-curvature flow of a shrinking disk,
// and write VTK output.
//
//   ./quickstart [output.vtk]
#include <cmath>
#include <cstdio>

#include "pfc/app/analysis.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/grid/vtk.hpp"

int main(int argc, char** argv) {
  using namespace pfc;

  // 1. model: two phases, curvature-driven (no chemical driving force)
  app::GrandChemParams params = app::make_two_phase(/*dims=*/2);
  app::GrandChemModel model(params);

  // 2. compile: energy functional -> PDEs -> stencils -> optimized C -> JIT
  app::SimulationOptions opts;
  opts.cells = {128, 128, 1};
  opts.threads = 4;
  app::Simulation sim(model, opts);
  std::printf("generated %zu bytes of C, compiled in %.2f s\n",
              sim.compiled().generated_source().size(),
              sim.compiled().compile_seconds);

  // 3. initial condition: a solid disk in melt
  sim.init_phi([&](long long x, long long y, long long, int c) {
    const double d = std::sqrt(double((x - 64) * (x - 64) +
                                      (y - 64) * (y - 64))) -
                     40.0;
    const double solid = app::interface_profile(d, 2.5 * params.epsilon);
    return c == 1 ? solid : 1.0 - solid;
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });

  // 4. time loop: the disk shrinks at a rate independent of its radius
  std::printf("%8s %12s %12s\n", "step", "solid area", "interface");
  for (int burst = 0; burst < 10; ++burst) {
    const auto st = app::phase_statistics(sim.phi());
    std::printf("%8lld %12.1f %12.4f\n", sim.step_count(),
                st.fractions[1] * 128 * 128, st.interface_fraction);
    sim.run(100);
  }
  std::printf("kernel throughput: %.2f MLUP/s\n", sim.mlups());

  const char* path = argc > 1 ? argv[1] : "quickstart.vtk";
  grid::write_vtk(path, {&sim.phi()});
  std::printf("wrote %s\n", path);
  return 0;
}
