#include "pfc/app/analysis.hpp"

#include <cmath>

#include "pfc/sym/simplify.hpp"

namespace pfc::app {

PhaseStats phase_statistics(const Array& phi) {
  PhaseStats s;
  const auto& n = phi.size();
  const double cells = double(n[0]) * double(n[1]) * double(n[2]);
  s.fractions.assign(std::size_t(phi.components()), 0.0);
  long long interface_cells = 0;
  for (std::int64_t z = 0; z < n[2]; ++z) {
    for (std::int64_t y = 0; y < n[1]; ++y) {
      for (std::int64_t x = 0; x < n[0]; ++x) {
        double sum = 0.0;
        bool diffuse = false;
        for (int c = 0; c < phi.components(); ++c) {
          const double v = phi.at(x, y, z, c);
          s.fractions[std::size_t(c)] += v;
          sum += v;
          diffuse = diffuse || (v > 0.01 && v < 0.99);
        }
        if (diffuse) ++interface_cells;
        s.simplex_violation =
            std::max(s.simplex_violation, std::abs(sum - 1.0));
      }
    }
  }
  for (auto& f : s.fractions) f /= cells;
  s.interface_fraction = double(interface_cells) / cells;
  return s;
}

long long front_position(const Array& phi, int liquid_phase, int axis) {
  const auto& n = phi.size();
  long long front = -1;
  for (std::int64_t z = 0; z < n[2]; ++z) {
    for (std::int64_t y = 0; y < n[1]; ++y) {
      for (std::int64_t x = 0; x < n[0]; ++x) {
        if (phi.at(x, y, z, liquid_phase) < 0.5) {
          const std::int64_t pos = axis == 0 ? x : axis == 1 ? y : z;
          front = std::max(front, (long long)pos);
        }
      }
    }
  }
  return front;
}

double interface_measure(const Array& phi, double dx, int dims) {
  const auto& n = phi.size();
  double total = 0.0;
  for (int c = 0; c < phi.components(); ++c) {
    for (std::int64_t z = 0; z < n[2]; ++z) {
      for (std::int64_t y = 0; y < n[1]; ++y) {
        for (std::int64_t x = 0; x < n[0]; ++x) {
          double g2 = 0.0;
          const auto cd = [&](int d) {
            const std::int64_t xs = d == 0, ys = d == 1, zs = d == 2;
            // one-sided at the boundary, central inside
            const std::int64_t xm = std::max<std::int64_t>(x - xs, 0);
            const std::int64_t ym = std::max<std::int64_t>(y - ys, 0);
            const std::int64_t zm = std::max<std::int64_t>(z - zs, 0);
            const std::int64_t xp = std::min(x + xs, n[0] - 1);
            const std::int64_t yp = std::min(y + ys, n[1] - 1);
            const std::int64_t zp = std::min(z + zs, n[2] - 1);
            const double span = double((xp - xm) + (yp - ym) + (zp - zm));
            if (span == 0) return 0.0;
            return (phi.at(xp, yp, zp, c) - phi.at(xm, ym, zm, c)) /
                   (span * dx);
          };
          for (int d = 0; d < dims; ++d) {
            const double gd = cd(d);
            g2 += gd * gd;
          }
          total += std::sqrt(g2);
        }
      }
    }
  }
  double cell_volume = 1.0;
  for (int d = 0; d < dims; ++d) cell_volume *= dx;
  return total * cell_volume;
}

std::vector<double> total_concentration(const GrandChemModel& model,
                                        const Array& phi, const Array& mu,
                                        double t) {
  const auto& p = model.params();
  const int nmu = p.num_mu();
  // extract numeric fit coefficients once
  struct NumFit {
    std::vector<std::vector<double>> a0, a1;
    std::vector<double> b0, b1;
  };
  sym::EvalContext empty;
  std::vector<NumFit> fits;
  for (const auto& f : p.fits) {
    NumFit nf;
    nf.a0.resize(std::size_t(nmu));
    nf.a1.resize(std::size_t(nmu));
    for (int i = 0; i < nmu; ++i) {
      for (int j = 0; j < nmu; ++j) {
        nf.a0[std::size_t(i)].push_back(
            sym::evaluate(f.a0[std::size_t(i)][std::size_t(j)], empty));
        nf.a1[std::size_t(i)].push_back(
            sym::evaluate(f.a1[std::size_t(i)][std::size_t(j)], empty));
      }
      nf.b0.push_back(sym::evaluate(f.b0[std::size_t(i)], empty));
      nf.b1.push_back(sym::evaluate(f.b1[std::size_t(i)], empty));
    }
    fits.push_back(std::move(nf));
  }

  const auto& n = phi.size();
  const int grad_dim = p.dims - 1;
  std::vector<double> total(std::size_t(nmu), 0.0);
  for (std::int64_t z = 0; z < n[2]; ++z) {
    for (std::int64_t y = 0; y < n[1]; ++y) {
      for (std::int64_t x = 0; x < n[0]; ++x) {
        const double coord =
            double(grad_dim == 0 ? x : grad_dim == 1 ? y : z);
        const double T = p.temp0 + p.temp_gradient *
                                       (coord * p.dx - p.pull_velocity * t);
        for (int a = 0; a < p.phases; ++a) {
          const double pa = phi.at(x, y, z, a);
          const double h = pa * pa * (3.0 - 2.0 * pa);
          const auto& nf = fits[std::size_t(a)];
          for (int i = 0; i < nmu; ++i) {
            double ci = nf.b0[std::size_t(i)] + T * nf.b1[std::size_t(i)];
            for (int j = 0; j < nmu; ++j) {
              ci += 2.0 *
                    (nf.a0[std::size_t(i)][std::size_t(j)] +
                     T * nf.a1[std::size_t(i)][std::size_t(j)]) *
                    mu.at(x, y, z, j);
            }
            total[std::size_t(i)] += ci * h;
          }
        }
      }
    }
  }
  return total;
}

}  // namespace pfc::app
