// Post-processing / in-situ analysis of simulation state: phase fractions,
// interface measures, solidification front tracking and conserved-quantity
// checks (the role of waLBerla's evaluation infrastructure in the paper).
#pragma once

#include <vector>

#include "pfc/app/grandchem.hpp"
#include "pfc/field/array.hpp"

namespace pfc::app {

struct PhaseStats {
  std::vector<double> fractions;   ///< mean of each φ_α over the interior
  double interface_fraction = 0;   ///< cells with any φ in (0.01, 0.99)
  double simplex_violation = 0;    ///< max |Σ_α φ_α − 1|
};

PhaseStats phase_statistics(const Array& phi);

/// Position of the solidification front along `axis`: the largest index
/// where the liquid fraction drops below 1/2 (−1 if fully liquid).
long long front_position(const Array& phi, int liquid_phase, int axis);

/// Interface area estimate: Σ |∇φ_α| dx^d over all phases (a standard
/// diffuse-interface surface measure), for the first `axis`-many dims.
double interface_measure(const Array& phi, double dx, int dims);

/// Total conserved concentration ∫ c(φ,µ,T) dV per component, evaluated
/// numerically from the model's parabolic fits (requires numeric fits).
std::vector<double> total_concentration(const GrandChemModel& model,
                                        const Array& phi, const Array& mu,
                                        double t);

}  // namespace pfc::app
