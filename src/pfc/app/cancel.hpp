// Cooperative cancellation of running simulations. A CancelToken is owned
// by whoever supervises a job (the serve daemon's per-job control record)
// and handed to the driver through ProgressOptions; Simulation::run and
// DistributedSimulation::run check it once per step, so a cancelled or
// expired job stops within one step cadence, writes a final checkpoint
// when the spec configured a checkpoint directory, and surfaces as a
// JobCancelled exception carrying why it stopped.
//
// request() is thread-safe and idempotent: the first caller's kind/reason
// win (a client cancel racing a deadline keeps whichever landed first),
// and requested() is a relaxed atomic load cheap enough for a step loop.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "pfc/support/assert.hpp"

namespace pfc::app {

/// Why a job was asked to stop — drives the terminal event the serve
/// daemon emits ("cancelled" vs "deadline_exceeded" vs a watchdog "error").
enum class CancelKind {
  Client,    ///< explicit {"op":"cancel"} from a client
  Deadline,  ///< jobspec deadline_seconds elapsed
  Watchdog,  ///< no progress heartbeat for the configured window
  Shutdown,  ///< daemon draining on SIGTERM/SIGINT
};

inline const char* cancel_kind_name(CancelKind k) {
  switch (k) {
    case CancelKind::Client: return "client";
    case CancelKind::Deadline: return "deadline";
    case CancelKind::Watchdog: return "watchdog";
    case CancelKind::Shutdown: return "shutdown";
  }
  return "?";
}

class CancelToken {
 public:
  /// First request wins; later requests are ignored. Safe from any thread.
  void request(CancelKind kind, std::string reason) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (requested_.load(std::memory_order_relaxed)) return;
    kind_ = kind;
    reason_ = std::move(reason);
    requested_.store(true, std::memory_order_release);
  }

  bool requested() const {
    return requested_.load(std::memory_order_acquire);
  }

  /// Only meaningful once requested() is true.
  CancelKind kind() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return kind_;
  }
  std::string reason() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return reason_;
  }

 private:
  std::atomic<bool> requested_{false};
  mutable std::mutex mutex_;
  CancelKind kind_ = CancelKind::Client;
  std::string reason_;
};

/// Thrown by the drivers when a CancelToken fires mid-run. Not a failure:
/// callers that supervise jobs catch it to emit the matching terminal
/// state; everyone else sees a descriptive pfc::Error.
class JobCancelled : public Error {
 public:
  JobCancelled(CancelKind kind, const std::string& reason)
      : Error(std::string("job cancelled (") + cancel_kind_name(kind) +
              ")" + (reason.empty() ? "" : ": " + reason)),
        kind_(kind),
        reason_(reason) {}

  CancelKind kind() const { return kind_; }
  const std::string& cancel_reason() const { return reason_; }

 private:
  CancelKind kind_;
  std::string reason_;
};

}  // namespace pfc::app
