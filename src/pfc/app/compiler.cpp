#include "pfc/app/compiler.hpp"

#include <cstdio>

#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/ir/schedule.hpp"
#include "pfc/ir/vectorize.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::app {

namespace {
// Compiler diagnostics span many lines; the report keeps only the headline.
std::string first_line(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}
}  // namespace

void CompiledKernel::run(const backend::Binding& b,
                         const std::array<long long, 3>& n, double t,
                         long long t_step, ThreadPool* pool,
                         obs::TraceRecorder* tracer,
                         const backend::CellRange* range,
                         const SlabPlan* plan) const {
  if (fn_ != nullptr) {
    backend::run_compiled(ir, fn_, b, n, t, t_step, pool, tracer,
                          vector_width_, range, plan);
  } else {
    PFC_ASSERT(interp_ != nullptr, "CompiledKernel has no backend");
    // Interpreter slabs carry no per-thread spans; the driver's kernel span
    // still covers the launch.
    interp_->run(b, n, t, t_step, pool, range);
  }
}

std::vector<ir::Kernel> ModelCompiler::lower(
    const fd::PdeUpdate& pde, const fd::DiscretizeOptions& dopts,
    const CompileOptions& opts, std::optional<FieldPtr>* flux_field,
    obs::CompileReport* report) {
  Timer stage;
  fd::DiscretizeResult dres = fd::discretize(pde, dopts);
  if (flux_field != nullptr) *flux_field = dres.flux_field;
  if (report != nullptr) {
    report->add_stage("discretize", stage.seconds());
    for (const auto& sk : dres.kernels) {
      ir::OpCounts pre;
      for (const auto& a : sk.assignments) pre += ir::count_ops(a.rhs);
      report->ops_per_cell_pre += pre.normalized_flops();
    }
  }

  ir::BuildOptions bo;
  bo.cse = opts.cse;
  bo.hoist_invariants = opts.hoist_invariants;
  bo.dims = dopts.dims;

  std::vector<ir::Kernel> kernels;
  kernels.reserve(dres.kernels.size());
  for (const auto& sk : dres.kernels) {
    stage.reset();
    ir::Kernel k = ir::build_kernel(sk, bo);
    if (report != nullptr) report->add_stage("ir_build", stage.seconds());
    if (opts.schedule) {
      stage.reset();
      ir::ScheduleOptions so;
      so.beam_width = opts.schedule_beam_width;
      ir::schedule_min_register(k, so);
      if (report != nullptr) report->add_stage("schedule", stage.seconds());
    }
    if (report != nullptr) {
      report->ops_per_cell_post += ir::count_ops(k).normalized_flops();
      report->kernel_names.push_back(k.name);
    }
    kernels.push_back(std::move(k));
  }
  return kernels;
}

CompiledModel ModelCompiler::compile_updates(
    const std::vector<fd::PdeUpdate>& pdes,
    const fd::DiscretizeOptions& dopts) const {
  PFC_REQUIRE(pdes.size() >= 1 && pdes.size() <= 2,
              "compile_updates expects [phi] or [phi, mu] updates");
  CompiledModel out;

  std::vector<std::vector<ir::Kernel>> groups;
  for (std::size_t i = 0; i < pdes.size(); ++i) {
    fd::DiscretizeOptions d = dopts;
    d.split_staggered = i == 0 ? opts_.split_phi : opts_.split_mu;
    d.clamp_unit_interval = i == 0 && opts_.clamp_phi;
    d.renormalize_simplex = d.clamp_unit_interval;
    std::optional<FieldPtr> flux;
    groups.push_back(lower(pdes[i], d, opts_, &flux, &out.report_));
    (i == 0 ? out.phi_flux_field : out.mu_flux_field) = flux;
  }

  const auto attach = [&](const std::vector<ir::Kernel>& ks,
                          std::vector<CompiledKernel>& dst) {
    for (const auto& k : ks) {
      CompiledKernel ck;
      ck.ir = k;
      dst.push_back(std::move(ck));
    }
  };
  attach(groups[0], out.phi_kernels);
  if (groups.size() > 1) attach(groups[1], out.mu_kernels);

  if (opts_.backend == Backend::Interpreter) {
    // The interpreter evaluates the IR cell by cell; width stays 1.
    out.report_.ops_per_cell_widened = double(out.report_.ops_per_cell_post);
    for (auto* group : {&out.phi_kernels, &out.mu_kernels}) {
      for (auto& ck : *group) {
        ck.interp_ = std::make_shared<backend::InterpreterKernel>(ck.ir);
      }
    }
    return out;
  }

  // Resolve the SIMD width: 0 = probe the JIT target once per process.
  int width = opts_.vector_width;
  if (width <= 0) width = backend::probe_native_vector_width();
  PFC_REQUIRE(ir::vector_width_supported(width),
              "unsupported vector_width " + std::to_string(width) +
                  " (use 0=auto, 1, 2, 4 or 8)");

  // Degradation chain: a JIT failure at the requested width retries scalar
  // C, and a scalar failure falls back to the interpreter, instead of
  // aborting the run. The surviving tier and the first failure are recorded
  // in the compile report.
  std::vector<int> attempt_widths{width};
  if (width > 1) attempt_widths.push_back(1);
  int forced_failures = opts_.fail_jit_attempts;

  for (const int w : attempt_widths) {
    // Emit all kernels into one translation unit at this width and JIT it.
    Timer stage;
    backend::CEmitOptions eo;
    eo.fast_math = opts_.fast_math;
    eo.vector_width = w;
    eo.streaming_stores = opts_.streaming_stores;
    out.report_.ops_per_cell_widened = 0.0;
    std::string source;
    bool first = true;
    for (auto* group : {&out.phi_kernels, &out.mu_kernels}) {
      for (auto& ck : *group) {
        eo.include_preamble = first;
        first = false;
        const ir::VectorPlan plan =
            ir::plan_vectorize(ck.ir, {w, opts_.streaming_stores});
        out.report_.ops_per_cell_widened +=
            plan.enabled() ? plan.flops_per_cell_vector
                           : double(plan.flops_per_cell_scalar);
        ck.vector_width_ = plan.enabled() ? plan.width : 1;
        source += backend::emit_c(ck.ir, eo);
        source += "\n";
      }
    }
    out.source_ = source;
    out.report_.add_stage("emit", stage.seconds());

    backend::JitLibrary::Options jo;
    jo.extra_flags = opts_.jit_extra_flags;
    const bool forced = forced_failures > 0;
    if (forced) jo.compiler = "false";  // always exits 1: injected failure

    // Content-addressed kernel cache: options configure it explicitly, the
    // PFC_KERNEL_CACHE_DIR env enables it for unmodified binaries.
    // Injected-fault attempts bypass the cache — they must exercise the
    // external-compiler failure path, not be absorbed by an earlier hit.
    backend::KernelCacheConfig cache;
    if (!opts_.cache_dir.empty()) {
      cache.directory = opts_.cache_dir;
      cache.max_bytes = opts_.cache_max_bytes;
    } else {
      cache = backend::kernel_cache_config_from_env();
    }
    const bool use_cache = !forced && !cache.directory.empty();

    stage.reset();
    double jit_seconds = 0.0;
    try {
      if (use_cache) {
        backend::KernelCacheResult cached =
            backend::KernelCache::shared().acquire(source, jo, cache);
        out.library_ = std::move(cached.library);
        jit_seconds = cached.compile_seconds;
        out.report_.cache_used = true;
        out.report_.cache_hit = cached.hit;
        out.report_.cache_key = cached.key;
        const backend::KernelCacheStats cs =
            backend::KernelCache::shared().stats();
        out.report_.cache_hits = cs.hits;
        out.report_.cache_misses = cs.misses;
        out.report_.cache_evictions = cs.evictions;
        out.report_.cache_bytes = cs.bytes;
      } else {
        out.library_ = std::make_shared<backend::JitLibrary>(
            backend::JitLibrary::compile(source, jo));
        jit_seconds = out.library_->compile_seconds();
      }
    } catch (const Error& e) {
      out.report_.add_stage("jit", stage.seconds());
      ++out.report_.fallback_attempts;
      if (forced) --forced_failures;
      if (out.report_.fallback_reason.empty()) {
        out.report_.fallback_reason =
            forced ? "injected jit fault" : first_line(e.what());
      }
      std::fprintf(stderr,
                   "pfc jit: width-%d compile failed (%s), degrading\n", w,
                   forced ? "injected fault" : first_line(e.what()).c_str());
      continue;
    }
    out.report_.add_stage("jit", jit_seconds);
    out.report_.vector_width = w;
    out.report_.backend_tier = w > 1 ? "vector" : "scalar";
    for (auto* group : {&out.phi_kernels, &out.mu_kernels}) {
      for (auto& ck : *group) {
        ck.fn_ = out.library_->get(backend::entry_name(ck.ir));
      }
    }
    return out;
  }

  // Every JIT rung failed: degrade to the interpreter so the run survives
  // (slow but correct — the IR is the same the C backend would compile).
  out.report_.vector_width = 1;
  out.report_.backend_tier = "interpreter";
  out.report_.ops_per_cell_widened = double(out.report_.ops_per_cell_post);
  for (auto* group : {&out.phi_kernels, &out.mu_kernels}) {
    for (auto& ck : *group) {
      ck.vector_width_ = 1;
      ck.interp_ = std::make_shared<backend::InterpreterKernel>(ck.ir);
    }
  }
  return out;
}

CompiledModel ModelCompiler::compile(const GrandChemModel& model) const {
  fd::DiscretizeOptions dopts;
  dopts.dims = model.params().dims;
  dopts.dx = model.params().dx;
  dopts.dt = model.params().dt;
  dopts.rng_seed = model.params().rng_seed;
  return compile_updates({model.phi_update(), model.mu_update()}, dopts);
}

}  // namespace pfc::app
