#include "pfc/app/compiler.hpp"

#include <cstdio>

#include "pfc/backend/kernel_cache.hpp"
#include "pfc/backend/registry.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/ir/schedule.hpp"
#include "pfc/ir/vectorize.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::app {

namespace {
// Compiler diagnostics span many lines; the report keeps only the headline.
std::string first_line(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}
}  // namespace

void CompiledKernel::run(const backend::Binding& b,
                         const std::array<long long, 3>& n, double t,
                         long long t_step, ThreadPool* pool,
                         obs::TraceRecorder* tracer,
                         const backend::CellRange* range,
                         const SlabPlan* plan) const {
  if (fn_ != nullptr) {
    backend::run_compiled(ir, fn_, b, n, t, t_step, pool, tracer,
                          vector_width_, range, plan);
  } else {
    PFC_ASSERT(interp_ != nullptr, "CompiledKernel has no backend");
    // Interpreter slabs carry no per-thread spans; the driver's kernel span
    // still covers the launch.
    interp_->run(b, n, t, t_step, pool, range);
  }
}

std::vector<ir::Kernel> ModelCompiler::lower(
    const fd::PdeUpdate& pde, const fd::DiscretizeOptions& dopts,
    const CompileOptions& opts, std::optional<FieldPtr>* flux_field,
    obs::CompileReport* report) {
  Timer stage;
  fd::DiscretizeResult dres = fd::discretize(pde, dopts);
  if (flux_field != nullptr) *flux_field = dres.flux_field;
  if (report != nullptr) {
    report->add_stage("discretize", stage.seconds());
    for (const auto& sk : dres.kernels) {
      ir::OpCounts pre;
      for (const auto& a : sk.assignments) pre += ir::count_ops(a.rhs);
      report->ops_per_cell_pre += pre.normalized_flops();
    }
  }

  ir::BuildOptions bo;
  bo.cse = opts.cse;
  bo.hoist_invariants = opts.hoist_invariants;
  bo.dims = dopts.dims;

  std::vector<ir::Kernel> kernels;
  kernels.reserve(dres.kernels.size());
  for (const auto& sk : dres.kernels) {
    stage.reset();
    ir::Kernel k = ir::build_kernel(sk, bo);
    if (report != nullptr) report->add_stage("ir_build", stage.seconds());
    if (opts.schedule) {
      stage.reset();
      ir::ScheduleOptions so;
      so.beam_width = opts.schedule_beam_width;
      ir::schedule_min_register(k, so);
      if (report != nullptr) report->add_stage("schedule", stage.seconds());
    }
    if (report != nullptr) {
      report->ops_per_cell_post += ir::count_ops(k).normalized_flops();
      report->kernel_names.push_back(k.name);
    }
    kernels.push_back(std::move(k));
  }
  return kernels;
}

CompiledModel ModelCompiler::compile_updates(
    const std::vector<fd::PdeUpdate>& pdes,
    const fd::DiscretizeOptions& dopts) const {
  PFC_REQUIRE(pdes.size() >= 1 && pdes.size() <= 2,
              "compile_updates expects [phi] or [phi, mu] updates");
  CompiledModel out;

  std::vector<std::vector<ir::Kernel>> groups;
  for (std::size_t i = 0; i < pdes.size(); ++i) {
    fd::DiscretizeOptions d = dopts;
    d.split_staggered = i == 0 ? opts_.split_phi : opts_.split_mu;
    d.clamp_unit_interval = i == 0 && opts_.clamp_phi;
    d.renormalize_simplex = d.clamp_unit_interval;
    std::optional<FieldPtr> flux;
    groups.push_back(lower(pdes[i], d, opts_, &flux, &out.report_));
    (i == 0 ? out.phi_flux_field : out.mu_flux_field) = flux;
  }

  const auto attach = [&](const std::vector<ir::Kernel>& ks,
                          std::vector<CompiledKernel>& dst) {
    for (const auto& k : ks) {
      CompiledKernel ck;
      ck.ir = k;
      dst.push_back(std::move(ck));
    }
  };
  attach(groups[0], out.phi_kernels);
  if (groups.size() > 1) attach(groups[1], out.mu_kernels);

  // Flatten the kernels in execution order (φ group, then µ group) — the
  // shape every registry backend compiles against.
  std::vector<const ir::Kernel*> kernel_ptrs;
  std::vector<CompiledKernel*> flat;
  for (auto* group : {&out.phi_kernels, &out.mu_kernels}) {
    for (auto& ck : *group) {
      kernel_ptrs.push_back(&ck.ir);
      flat.push_back(&ck);
    }
  }

  // Resolve the SIMD width: 0 = probe the JIT target once per process. An
  // interpreter request stays scalar and never probes.
  int width = 1;
  if (opts_.backend != Backend::Interpreter) {
    width = opts_.vector_width;
    if (width <= 0) width = backend::probe_native_vector_width();
    PFC_REQUIRE(ir::vector_width_supported(width),
                "unsupported vector_width " + std::to_string(width) +
                    " (use 0=auto, 1, 2, 4 or 8)");
  }

  // Select through the backend registry: the degradation chain is every
  // registered backend whose probe accepts the request, priority-descending
  // (vector → scalar → interpreter for the built-ins). A JIT failure at one
  // rung retries the next instead of aborting the run; the surviving tier
  // and the first failure are recorded in the compile report. An explicit
  // interpreter request pins the chain to that single tier.
  std::vector<backend::ChainEntry> chain;
  if (opts_.backend == Backend::Interpreter) {
    const backend::Backend* interp =
        backend::BackendRegistry::instance().find("interpreter");
    PFC_ASSERT(interp != nullptr, "interpreter backend not registered");
    chain.push_back(backend::ChainEntry{interp, 1});
  } else {
    chain = backend::BackendRegistry::instance().chain(width);
  }

  int forced_failures = opts_.fail_jit_attempts;
  for (const backend::ChainEntry& entry : chain) {
    const backend::Backend& b = *entry.backend;
    const bool is_jit = b.capabilities().jit;

    backend::TierOptions to;
    to.vector_width = entry.width;
    to.fast_math = opts_.fast_math;
    to.streaming_stores = opts_.streaming_stores;
    to.extra_flags = opts_.jit_extra_flags;
    const bool forced = is_jit && forced_failures > 0;
    if (forced) to.compiler_override = "false";  // always exits 1: injected

    // Content-addressed kernel cache: options configure it explicitly, the
    // PFC_KERNEL_CACHE_DIR env enables it for unmodified binaries.
    // Injected-fault attempts bypass the cache — they must exercise the
    // external-compiler failure path, not be absorbed by an earlier hit.
    if (!opts_.cache_dir.empty()) {
      to.cache.directory = opts_.cache_dir;
      to.cache.max_bytes = opts_.cache_max_bytes;
    } else {
      to.cache = backend::kernel_cache_config_from_env();
    }
    to.use_cache = !forced && !to.cache.directory.empty();

    backend::TierArtifact art;
    Timer attempt;
    try {
      b.compile(kernel_ptrs, to, art);
    } catch (const Error& e) {
      // The artifact keeps the generated source and emit timing of the
      // failed attempt — the report still shows what was tried.
      if (!art.source.empty()) out.source_ = art.source;
      if (art.emit_seconds > 0.0) {
        out.report_.add_stage("emit", art.emit_seconds);
      }
      out.report_.add_stage(
          "jit", std::max(0.0, attempt.seconds() - art.emit_seconds));
      ++out.report_.fallback_attempts;
      if (forced) --forced_failures;
      if (out.report_.fallback_reason.empty()) {
        out.report_.fallback_reason =
            forced ? "injected jit fault" : first_line(e.what());
      }
      std::fprintf(stderr,
                   "pfc jit: width-%d compile failed (%s), degrading\n",
                   entry.width,
                   forced ? "injected fault" : first_line(e.what()).c_str());
      continue;
    }

    if (is_jit) {
      out.source_ = art.source;
      out.report_.add_stage("emit", art.emit_seconds);
      out.report_.add_stage("jit", art.jit_seconds);
    }
    out.report_.ops_per_cell_widened = art.ops_per_cell_widened;
    out.report_.vector_width = art.emit_width;
    out.report_.backend_tier = b.tier();
    if (art.cache_used) {
      out.report_.cache_used = true;
      out.report_.cache_hit = art.cache_hit;
      out.report_.cache_key = art.cache_key;
      out.report_.cache_hits = art.cache_stats.hits;
      out.report_.cache_misses = art.cache_stats.misses;
      out.report_.cache_evictions = art.cache_stats.evictions;
      out.report_.cache_bytes = art.cache_stats.bytes;
    }
    out.library_ = art.library;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      flat[i]->vector_width_ = art.widths[i];
      if (!art.fns.empty()) {
        flat[i]->fn_ = art.fns[i];
      } else {
        flat[i]->interp_ = art.interps[i];
      }
    }
    return out;
  }

  PFC_ASSERT(false, "backend chain exhausted (interpreter tier missing?)");
  return out;
}

CompiledModel ModelCompiler::compile(const GrandChemModel& model) const {
  fd::DiscretizeOptions dopts;
  dopts.dims = model.params().dims;
  dopts.dx = model.params().dx;
  dopts.dt = model.params().dt;
  dopts.rng_seed = model.params().rng_seed;
  return compile_updates({model.phi_update(), model.mu_update()}, dopts);
}

}  // namespace pfc::app
