// ModelCompiler: drives the complete code-generation pipeline for one model
// instance (paper Fig. 1): continuum PDEs → discretization (full or split
// staggered kernels) → IR build (CSE, hoisting) → backend (C source + JIT,
// or interpreter) — and exposes every knob the paper's evaluation varies.
#pragma once

#include <cstdint>
#include <memory>

#include "pfc/app/grandchem.hpp"
#include "pfc/backend/interp.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/ir/kernel.hpp"
#include "pfc/obs/report.hpp"

namespace pfc::app {

enum class Backend { Jit, Interpreter };

/// Autotuning policy of a run (perf::autotune + app/tuning.hpp):
///   Off    — use the options exactly as given (the seed behaviour).
///   Cached — apply the persisted per-(model, machine) winner when the
///            tuning cache has one; run a full measured search (and persist
///            it) only on a miss.
///   Full   — always run the measured search and persist the winner.
enum class TuneMode { Off, Cached, Full };

struct CompileOptions {
  Backend backend = Backend::Jit;
  /// Split staggered-flux precompute kernels ("φ-split"/"µ-split") instead
  /// of recompute-on-both-sides ("φ-full"/"µ-full").
  bool split_phi = false;
  bool split_mu = false;
  bool fast_math = false;   ///< approximate div/sqrt/rsqrt (paper §3.5)
  bool cse = true;
  bool hoist_invariants = true;
  bool clamp_phi = true;    ///< project φ updates back into [0,1]
  /// Register-minimizing statement scheduling (GPU transformation; also
  /// valid for CPU code).
  bool schedule = false;
  std::size_t schedule_beam_width = 20;
  /// Explicit SIMD width (doubles) of the generated C innermost loop:
  /// 0 = auto (probe the JIT target's ISA; PFC_VECTOR_WIDTH env overrides),
  /// 1 = scalar, 2/4/8 = fixed. The interpreter backend is always scalar.
  int vector_width = 0;
  /// Non-temporal (streaming) stores for write-only destination fields of
  /// the vectorized loop — bypasses the write-allocate read of the store
  /// stream (paper §3.5's memory-bandwidth discussion).
  bool streaming_stores = false;
  /// Extra flags appended to the JIT compile line (e.g. "-ffp-contract=off"
  /// for bitwise-reproducible equivalence tests).
  std::string jit_extra_flags;
  /// Fault injection: force the first N JIT attempts to fail (the external
  /// compiler is replaced by `false`), driving the vector → scalar →
  /// interpreter degradation chain deterministically. Drivers populate this
  /// from resilience::FaultPlan::fail_jit_attempts.
  int fail_jit_attempts = 0;
  /// Content-addressed kernel cache directory: identical (source, flags)
  /// compiles dlopen one shared .so instead of re-running the external
  /// compiler (backend::KernelCache). Empty = the PFC_KERNEL_CACHE_DIR env
  /// decides (unset env = no caching).
  std::string cache_dir;
  /// LRU byte budget of the cache directory (0 = unlimited). Ignored when
  /// caching is off; overridden by PFC_KERNEL_CACHE_MB only when cache_dir
  /// itself came from the environment.
  std::uint64_t cache_max_bytes = 256ull << 20;
  /// Measured-autotuning policy (see TuneMode). The tuning cache lives next
  /// to the kernel cache (cache_dir / PFC_KERNEL_CACHE_DIR); with neither
  /// configured a search still runs but its winner cannot persist.
  TuneMode tune = TuneMode::Off;
};

/// One executable kernel: the optimized IR plus a backend handle.
class CompiledKernel {
 public:
  ir::Kernel ir;

  /// `range` restricts the sweep to a sub-box (nullptr = full box); the
  /// distributed driver uses it for interior/frontier overlap execution.
  /// `plan` selects static slab ownership (see backend::run_compiled);
  /// the interpreter backend ignores it (fallback path, dynamic split).
  void run(const backend::Binding& b, const std::array<long long, 3>& n,
           double t, long long t_step, ThreadPool* pool = nullptr,
           obs::TraceRecorder* tracer = nullptr,
           const backend::CellRange* range = nullptr,
           const SlabPlan* plan = nullptr) const;

  /// SIMD width the kernel's code was emitted with (1 = scalar).
  int vector_width() const { return vector_width_; }

 private:
  friend class ModelCompiler;
  backend::KernelFn fn_ = nullptr;  // JIT entry (library owned by model)
  std::shared_ptr<backend::InterpreterKernel> interp_;
  int vector_width_ = 1;
};

/// The compiled model: kernels in execution order per PDE.
class CompiledModel {
 public:
  std::vector<CompiledKernel> phi_kernels;  ///< staggered first if split
  std::vector<CompiledKernel> mu_kernels;
  std::optional<FieldPtr> phi_flux_field;
  std::optional<FieldPtr> mu_flux_field;

  /// Per-stage timings and pre/post-optimization op counts — including the
  /// kernel-cache provenance (cache_hit, content key, counters) when a
  /// cache directory was configured.
  const obs::CompileReport& compile_report() const { return report_; }

  /// The generated C translation unit (empty for interpreter backend).
  const std::string& generated_source() const { return source_; }

 private:
  friend class ModelCompiler;
  std::string source_;
  std::shared_ptr<backend::JitLibrary> library_;
  obs::CompileReport report_;
};

class ModelCompiler {
 public:
  explicit ModelCompiler(CompileOptions opts = {}) : opts_(opts) {}

  /// Runs the full pipeline on a model instance.
  CompiledModel compile(const GrandChemModel& model) const;

  /// Lower-level entry: compiles arbitrary PDE updates (used by tests and
  /// by the benchmark harness for single-kernel studies).
  CompiledModel compile_updates(const std::vector<fd::PdeUpdate>& pdes,
                                const fd::DiscretizeOptions& dopts) const;

  /// Pipeline front half only: PDE update -> optimized IR kernels. When
  /// `report` is given, per-stage timings and pre/post-optimization op
  /// counts accumulate into it.
  static std::vector<ir::Kernel> lower(const fd::PdeUpdate& pde,
                                       const fd::DiscretizeOptions& dopts,
                                       const CompileOptions& opts,
                                       std::optional<FieldPtr>* flux_field,
                                       obs::CompileReport* report = nullptr);

 private:
  CompileOptions opts_;
};

}  // namespace pfc::app
