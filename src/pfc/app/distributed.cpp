#include "pfc/app/distributed.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "pfc/perf/drift.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::app {

namespace {

std::array<std::int64_t, 3> flux_size(const std::array<long long, 3>& n,
                                      int dims) {
  std::array<std::int64_t, 3> s{1, 1, 1};
  for (int d = 0; d < dims; ++d) s[std::size_t(d)] = n[std::size_t(d)] + 1;
  return s;
}

// JIT fault injection must reach the ctor's compile (member-init list).
CompileOptions compile_opts_with_faults(const DistributedOptions& o) {
  CompileOptions c = o.compile;
  c.fail_jit_attempts =
      resilience::effective_faults(o.resilience).fail_jit_attempts;
  return c;
}

/// Peels the `width`-thick shell off `full`, outermost dim first, into
/// disjoint slabs (≤ 2·dims of them); returns the remaining inset box.
/// Degenerate boxes (2·width ≥ extent) leave an empty interior with the
/// whole box covered by slabs — still correct, just nothing to overlap.
backend::CellRange peel_frontier(const backend::CellRange& full,
                                 const std::array<long long, 3>& width,
                                 int dims,
                                 std::vector<backend::CellRange>& slabs) {
  backend::CellRange inner = full;
  for (int d = dims - 1; d >= 0; --d) {
    const auto dd = std::size_t(d);
    if (width[dd] <= 0) continue;
    backend::CellRange lo = inner, hi = inner;
    lo.hi[dd] = std::min(inner.hi[dd], inner.lo[dd] + width[dd]);
    hi.lo[dd] = std::max(lo.hi[dd], inner.hi[dd] - width[dd]);
    if (lo.cells() > 0) slabs.push_back(lo);
    if (hi.cells() > 0) slabs.push_back(hi);
    inner.lo[dd] = lo.hi[dd];
    inner.hi[dd] = hi.lo[dd];
  }
  return inner;
}

/// Frontier width per kernel of one execution group, back to front: every
/// kernel writing the exchanged field needs a `ghost`-wide shell (the
/// exchange packs those edge cells), and an upstream kernel j feeding a
/// downstream kernel l must widen l's shell by l's read offsets into j's
/// output (plus the iteration-extent difference on the high side).
std::vector<std::array<long long, 3>> frontier_widths(
    const std::vector<CompiledKernel>& kernels, std::uint64_t exchanged_id,
    int dims, int ghost) {
  std::vector<std::array<long long, 3>> w(kernels.size(), {0, 0, 0});
  for (std::size_t j = kernels.size(); j-- > 0;) {
    for (const auto& wr : kernels[j].ir.writes) {
      if (wr->id() == exchanged_id) {
        for (int d = 0; d < dims; ++d) {
          w[j][std::size_t(d)] =
              std::max(w[j][std::size_t(d)], (long long)ghost);
        }
      }
    }
    for (std::size_t l = j + 1; l < kernels.size(); ++l) {
      const auto reads = backend::read_offset_ranges(kernels[l].ir);
      for (const auto& wr : kernels[j].ir.writes) {
        const auto it = reads.find(wr->id());
        if (it == reads.end()) continue;
        for (int d = 0; d < dims; ++d) {
          const auto dd = std::size_t(d);
          const long long extent_diff = kernels[j].ir.extent_plus[dd] -
                                        kernels[l].ir.extent_plus[dd];
          w[j][dd] = std::max(
              {w[j][dd], w[l][dd] + it->second.hi[dd],
               w[l][dd] + extent_diff - it->second.lo[dd]});
        }
      }
    }
  }
  return w;
}

}  // namespace

DistributedSimulation::DistributedSimulation(const GrandChemModel& model,
                                             const DistributedOptions& opts,
                                             mpi::Comm* comm)
    : model_(model),
      opts_(opts),
      forest_(opts.cells, opts.blocks_per_dim,
              comm != nullptr ? comm->size() : 1, model.params().dims,
              opts.boundary),
      comm_(comm),
      compiled_(ModelCompiler(compile_opts_with_faults(opts)).compile(model)),
      exchange_(forest_, comm,
                std::max(model.phi_src()->components(),
                         model.mu_src()->components())),
      health_(opts.health, &reg_) {
  const int my_rank = comm != nullptr ? comm->rank() : 0;
  const int dims = model.params().dims;
  for (const grid::Block* b : forest_.blocks_of_rank(my_rank)) {
    auto lb = std::make_unique<LocalBlock>(LocalBlock{
        b,
        Array(model.phi_src(), {b->size[0], b->size[1], b->size[2]}, 1),
        Array(model.phi_dst(), {b->size[0], b->size[1], b->size[2]}, 1),
        Array(model.mu_src(), {b->size[0], b->size[1], b->size[2]}, 1),
        Array(model.mu_dst(), {b->size[0], b->size[1], b->size[2]}, 1),
        std::nullopt, std::nullopt});
    if (compiled_.phi_flux_field) {
      lb->phi_flux.emplace(*compiled_.phi_flux_field,
                           flux_size(b->size, dims), 0);
    }
    if (compiled_.mu_flux_field) {
      lb->mu_flux.emplace(*compiled_.mu_flux_field, flux_size(b->size, dims),
                          0);
    }
    locals_.push_back(std::move(lb));
  }

  tracer_.configure(opts.trace, /*pid=*/my_rank);
  if (tracer_.enabled()) {
    for (const auto& [stage, t] : compiled_.compile_report().stage_timers) {
      tracer_.instant(tracer_.intern("compile/" + stage), "compile", -1,
                      t.seconds);
    }
  }
  if (!locals_.empty()) {
    const auto& bs = locals_.front()->block->size;
    cells_per_launch_ = bs[0] * bs[1] * bs[2];
    std::vector<const ir::Kernel*> kernels;
    for (const auto& ck : compiled_.phi_kernels) kernels.push_back(&ck.ir);
    for (const auto& ck : compiled_.mu_kernels) kernels.push_back(&ck.ir);
    // per-block launches are serial: one core per launch
    predicted_mlups_ = perf::predicted_mlups_by_kernel(
        kernels, bs, opts.machine, /*cores=*/1,
        compiled_.compile_report().vector_width);
  }

  if (opts_.overlap == OverlapMode::InteriorFrontier && opts_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
  compute_overlap_regions();

  dt_current_ = model_.params().dt;
  faults_ = resilience::effective_faults(opts.resilience);
  if (!opts.resilience.restart_from.empty()) restore_from_disk();
}

void DistributedSimulation::compute_overlap_regions() {
  phi_regions_.clear();
  mu_regions_.clear();
  overlap_interior_cells_ = 0;
  overlap_frontier_cells_ = 0;
  if (opts_.overlap != OverlapMode::InteriorFrontier || locals_.empty()) {
    return;
  }
  const int dims = model_.params().dims;
  const std::array<long long, 3> n = locals_.front()->block->size;

  const auto build = [&](const std::vector<CompiledKernel>& kernels,
                         std::uint64_t exchanged_id,
                         int ghost) -> std::vector<KernelRegions> {
    const auto widths = frontier_widths(kernels, exchanged_id, dims, ghost);
    std::vector<KernelRegions> regions(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const backend::CellRange full = backend::full_range(kernels[i].ir, n);
      regions[i].interior =
          peel_frontier(full, widths[i], dims, regions[i].frontier);
    }
    return regions;
  };
  phi_regions_ = build(compiled_.phi_kernels, model_.phi_dst()->id(),
                       locals_.front()->phi_dst.ghost_layers());
  mu_regions_ = build(compiled_.mu_kernels, model_.mu_dst()->id(),
                      locals_.front()->mu_dst.ghost_layers());

  // Per-step cell accounting on the dst-kernel lattice (extent_plus = 0,
  // so interior + frontier = block cells, summed over local blocks).
  PFC_ASSERT(!phi_regions_.empty());
  const long long block_cells = n[0] * n[1] * n[2];
  const long long interior = phi_regions_.back().interior.cells();
  overlap_interior_cells_ = interior * (long long)locals_.size();
  overlap_frontier_cells_ =
      (block_cells - interior) * (long long)locals_.size();
}

backend::Binding DistributedSimulation::bind(const ir::Kernel& k,
                                             LocalBlock& lb) const {
  backend::Binding b;
  b.block_offset = {lb.block->offset[0], lb.block->offset[1],
                    lb.block->offset[2]};
  for (const auto& f : k.fields) {
    Array* a = nullptr;
    if (f->id() == model_.phi_src()->id()) a = &lb.phi_src;
    else if (f->id() == model_.phi_dst()->id()) a = &lb.phi_dst;
    else if (f->id() == model_.mu_src()->id()) a = &lb.mu_src;
    else if (f->id() == model_.mu_dst()->id()) a = &lb.mu_dst;
    else if (compiled_.phi_flux_field &&
             f->id() == (*compiled_.phi_flux_field)->id()) {
      a = &*lb.phi_flux;
    } else if (compiled_.mu_flux_field &&
               f->id() == (*compiled_.mu_flux_field)->id()) {
      a = &*lb.mu_flux;
    }
    PFC_REQUIRE(a != nullptr, "distributed: unknown field " + f->name());
    b.arrays.push_back(a);
  }
  return b;
}

std::vector<grid::LocalBlockField> DistributedSimulation::field_view(
    Array LocalBlock::* member) {
  std::vector<grid::LocalBlockField> v;
  v.reserve(locals_.size());
  for (auto& lb : locals_) {
    v.push_back({lb->block, &((*lb).*member)});
  }
  return v;
}

void DistributedSimulation::init(
    const std::function<double(long long, long long, long long, int)>& phi_f,
    const std::function<double(long long, long long, long long, int)>& mu_f) {
  for (auto& lb : locals_) {
    const auto& off = lb->block->offset;
    const auto& n = lb->block->size;
    for (int c = 0; c < lb->phi_src.components(); ++c) {
      for (long long z = 0; z < n[2]; ++z) {
        for (long long y = 0; y < n[1]; ++y) {
          for (long long x = 0; x < n[0]; ++x) {
            lb->phi_src.at(x, y, z, c) =
                phi_f(x + off[0], y + off[1], z + off[2], c);
          }
        }
      }
    }
    for (int c = 0; c < lb->mu_src.components(); ++c) {
      for (long long z = 0; z < n[2]; ++z) {
        for (long long y = 0; y < n[1]; ++y) {
          for (long long x = 0; x < n[0]; ++x) {
            lb->mu_src.at(x, y, z, c) =
                mu_f(x + off[0], y + off[1], z + off[2], c);
          }
        }
      }
    }
  }
  auto phi_view = field_view(&LocalBlock::phi_src);
  exchange_.exchange(phi_view, /*field_tag=*/0);
  auto mu_view = field_view(&LocalBlock::mu_src);
  exchange_.exchange(mu_view, /*field_tag=*/1);
}

obs::RunReport DistributedSimulation::run(int steps) {
  long long local_cells = 0;
  for (const auto& lb : locals_) {
    local_cells +=
        lb->block->size[0] * lb->block->size[1] * lb->block->size[2];
  }
  obs::Counter& updates = reg_.counter("cell_updates");
  obs::Counter& xbytes = reg_.counter("exchange_bytes");
  const auto& res = opts_.resilience;
  const bool recovery =
      health_.enabled() && opts_.health.policy == obs::HealthPolicy::Recover;
  if ((recovery || res.checkpoint_every > 0) && !snapshot_.valid()) {
    capture_checkpoint(/*to_disk=*/false);
  }
  // Net-step semantics as in Simulation::run: rollbacks rewind step_ and
  // the loop keeps going until the target step is reached.
  const long long target = step_ + steps;
  while (step_ < target) {
    // Cooperative cancellation at step granularity (see Simulation::run).
    // All ranks share one in-process token, so they agree without a
    // reduction; a real-MPI transport would broadcast the flag instead.
    if (progress_.cancel != nullptr && progress_.cancel->requested()) {
      if (!res.directory.empty()) capture_checkpoint(/*to_disk=*/true);
      throw JobCancelled(progress_.cancel->kind(),
                         progress_.cancel->reason());
    }
    const double t = time_;
    Timer step_wall;
    trace_this_step_ = tracer_.sampled(step_);
    obs::TraceRecorder* tr = trace_this_step_ ? &tracer_ : nullptr;
    const double step_ts = tr != nullptr ? tr->now_us() : 0.0;
    double step_kernel_seconds = 0.0;
    double step_exchange_seconds = 0.0;
    std::uint64_t step_exchange_bytes = 0;

    const auto run_group = [&](const std::vector<CompiledKernel>& kernels) {
      for (std::size_t i = 0; i < locals_.size(); ++i) {
        LocalBlock& lb = *locals_[i];
        const std::array<long long, 3> n = lb.block->size;
        const int block_id = lb.block->linear_id;
        Timer block_timer;
        for (const auto& ck : kernels) {
          Timer timer;
          const double ts = tr != nullptr ? tr->now_us() : 0.0;
          ck.run(bind(ck.ir, lb), n, t, step_, nullptr, tr);
          const double s = timer.seconds();
          if (tr != nullptr) {
            tr->complete(ck.ir.name.c_str(), "kernel", ts, s * 1e6, step_,
                         block_id);
          }
          reg_.add_time("kernel/" + ck.ir.name, s);
        }
        reg_.add_time("block/" + std::to_string(block_id),
                      block_timer.seconds());
        step_kernel_seconds += block_timer.seconds();
      }
    };
    const auto timed_exchange = [&](std::vector<grid::LocalBlockField>& view,
                                    int tag) {
      Timer timer;
      const double ts = tr != nullptr ? tr->now_us() : 0.0;
      exchange_.exchange(view, tag);
      const double s = timer.seconds();
      if (tr != nullptr) {
        tr->complete("exchange", "ghost", ts, s * 1e6, step_, -1);
      }
      reg_.add_time("exchange", s);
      step_exchange_seconds += s;
      const std::uint64_t b = exchange_.last_bytes_sent();
      xbytes.add(b);
      step_exchange_bytes += b;
    };

    // Communication-hiding step (OverlapMode::InteriorFrontier): compute
    // the frontier shell first (the cells the exchange packs), post the
    // exchange nonblocking, run the interior while messages fly, then
    // complete the exchange. Kernel/block timer counts stay identical to
    // the synchronous path (one add per block/kernel/step) so the drift
    // model's launches × cells_per_launch accounting stays honest.
    const auto run_group_overlap =
        [&](const std::vector<CompiledKernel>& kernels,
            const std::vector<KernelRegions>& regions,
            std::vector<grid::LocalBlockField>& view, int tag) {
          std::vector<double> acc(locals_.size() * kernels.size(), 0.0);
          const auto sweep = [&](bool frontier, ThreadPool* pool) {
            for (std::size_t i = 0; i < locals_.size(); ++i) {
              LocalBlock& lb = *locals_[i];
              const std::array<long long, 3> n = lb.block->size;
              for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
                const CompiledKernel& ck = kernels[ki];
                Timer timer;
                if (frontier) {
                  for (const auto& slab : regions[ki].frontier) {
                    ck.run(bind(ck.ir, lb), n, t, step_, nullptr, nullptr,
                           &slab);
                  }
                } else if (regions[ki].interior.cells() > 0) {
                  ck.run(bind(ck.ir, lb), n, t, step_, pool, tr,
                         &regions[ki].interior);
                }
                acc[i * kernels.size() + ki] += timer.seconds();
              }
            }
          };
          const auto phase = [&](const char* name, const char* cat,
                                 const auto& fn) {
            Timer timer;
            const double ts = tr != nullptr ? tr->now_us() : 0.0;
            fn();
            const double s = timer.seconds();
            if (tr != nullptr) {
              tr->complete(name, cat, ts, s * 1e6, step_, -1);
            }
            reg_.add_time(name, s);
            return s;
          };

          phase("kernel.frontier", "kernel",
                [&] { sweep(/*frontier=*/true, nullptr); });
          const double pack_s = phase("exchange.pack", "ghost",
                                      [&] { exchange_.begin(view, tag); });
          const std::uint64_t b = exchange_.last_bytes_sent();
          xbytes.add(b);
          step_exchange_bytes += b;
          phase("kernel.interior", "kernel",
                [&] { sweep(/*frontier=*/false, pool_.get()); });
          const double wait_s =
              phase("exchange.wait", "ghost", [&] { exchange_.finish(); });

          // Only pack + wait are exposed exchange time in this mode.
          reg_.add_time("exchange", pack_s + wait_s);
          step_exchange_seconds += pack_s + wait_s;

          for (std::size_t i = 0; i < locals_.size(); ++i) {
            double block_s = 0.0;
            for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
              const double s = acc[i * kernels.size() + ki];
              reg_.add_time("kernel/" + kernels[ki].ir.name, s);
              block_s += s;
            }
            reg_.add_time(
                "block/" + std::to_string(locals_[i]->block->linear_id),
                block_s);
            step_kernel_seconds += block_s;
          }
        };

    auto phi_view = field_view(&LocalBlock::phi_dst);
    auto mu_view = field_view(&LocalBlock::mu_dst);
    if (opts_.overlap == OverlapMode::InteriorFrontier) {
      run_group_overlap(compiled_.phi_kernels, phi_regions_, phi_view,
                        /*field_tag=*/2);
      run_group_overlap(compiled_.mu_kernels, mu_regions_, mu_view,
                        /*field_tag=*/3);
    } else {
      run_group(compiled_.phi_kernels);
      timed_exchange(phi_view, /*field_tag=*/2);
      run_group(compiled_.mu_kernels);
      timed_exchange(mu_view, /*field_tag=*/3);
    }

    for (auto& lb : locals_) {
      lb->phi_src.swap_data(lb->phi_dst);
      lb->mu_src.swap_data(lb->mu_dst);
    }
    ++step_;
    time_ += dt_current_;
    updates.add(std::uint64_t(local_cells));
    reg_.push_step({step_, step_kernel_seconds, step_exchange_seconds,
                    step_exchange_bytes, std::uint64_t(local_cells)});
    if (tr != nullptr) {
      tr->complete("step", "step", step_ts, tr->now_us() - step_ts,
                   step_ - 1, -1);
    }
    maybe_inject_nan();
    const bool cp_due =
        res.checkpoint_every > 0 && step_ % res.checkpoint_every == 0;
    std::uint64_t found = 0;
    if (health_.due(step_) || (cp_due && health_.enabled())) {
      for (const auto& lb : locals_) {
        health_.scan_block(lb->phi_src, &lb->mu_src);
      }
      found = health_.finish_scan(step_);  // throws under Throw
    }
    // Ranks must agree on rollback vs. checkpoint: each rank only scans
    // its own blocks, so reduce the finding over the communicator.
    double global_found = double(found);
    if (comm_ != nullptr && (recovery || cp_due) && health_.enabled()) {
      global_found = comm_->allreduce_sum(global_found);
    }
    if (global_found > 0 && recovery) {
      if (retries_ >= res.max_retries) {
        throw Error("pfc resilience: violation at step " +
                    std::to_string(step_) + " persists after " +
                    std::to_string(retries_) + " rollbacks, giving up");
      }
      ++retries_;
      last_violation_step_ = std::max(last_violation_step_, step_);
      rollback();
      continue;
    }
    if (step_ > last_violation_step_) retries_ = 0;
    if (cp_due && global_found == 0) {
      capture_checkpoint(!res.directory.empty());
    }
    record_progress(step_wall.seconds());
  }
  if (tracer_.enabled()) {
    const bool multi_rank = comm_ != nullptr && comm_->size() > 1;
    const int rank = comm_ != nullptr ? comm_->rank() : 0;
    tracer_.write(multi_rank ? obs::rank_trace_path(opts_.trace.path, rank)
                             : opts_.trace.path);
  }
  return report();
}

void DistributedSimulation::record_progress(double step_wall_seconds) {
  step_seconds_ewma_ =
      step_seconds_ewma_ <= 0.0
          ? step_wall_seconds
          : kProgressEwmaAlpha * step_wall_seconds +
                (1.0 - kProgressEwmaAlpha) * step_seconds_ewma_;
  if (!progress_.sink || progress_.every <= 0) return;
  if (step_ % progress_.every != 0 || step_ <= last_progress_step_) return;
  last_progress_step_ = step_;
  long long local_cells = 0;
  for (const auto& lb : locals_) {
    local_cells += lb->block->size[0] * lb->block->size[1] * lb->block->size[2];
  }
  ProgressUpdate u;
  u.step = step_;
  u.steps_total = progress_.steps_total;
  u.fraction = progress_.steps_total > 0
                   ? double(step_) / double(progress_.steps_total)
                   : 0.0;
  u.step_seconds_ewma = step_seconds_ewma_;
  u.mlups = obs::safe_rate(double(local_cells), step_seconds_ewma_) / 1e6;
  u.eta_seconds =
      progress_.steps_total > 0 && progress_.steps_total > step_
          ? double(progress_.steps_total - step_) * step_seconds_ewma_
          : 0.0;
  u.health_violations = health_.stats().total_violations();
  progress_.sink(u);
}

obs::RunReport DistributedSimulation::report() const {
  obs::RunReport r;
  r.name = "distributed";
  r.steps = step_;
  r.cell_updates = reg_.counter_value("cell_updates");
  r.num_blocks = static_cast<int>(locals_.size());
  for (const auto& lb : locals_) {
    r.cells_per_step +=
        lb->block->size[0] * lb->block->size[1] * lb->block->size[2];
  }
  double block_max = 0.0, block_sum = 0.0;
  int block_n = 0;
  for (const auto& [path, t] : reg_.timers()) {
    if (path.rfind("kernel/", 0) == 0) {
      r.kernel_timers[path.substr(7)] = t;
      r.kernel_seconds_total += t.seconds;
    } else if (path == "exchange") {
      r.exchange_seconds = t.seconds;
    } else if (path == "exchange.pack") {
      r.overlap.pack_seconds = t.seconds;
    } else if (path == "exchange.wait") {
      r.overlap.wait_seconds = t.seconds;
    } else if (path == "kernel.interior") {
      r.overlap.interior_seconds = t.seconds;
    } else if (path == "kernel.frontier") {
      r.overlap.frontier_seconds = t.seconds;
    } else if (path.rfind("block/", 0) == 0) {
      block_max = std::max(block_max, t.seconds);
      block_sum += t.seconds;
      ++block_n;
    }
  }
  r.exchange_bytes = reg_.counter_value("exchange_bytes");
  r.block_imbalance =
      obs::safe_rate(block_max, block_sum / std::max(block_n, 1));
  r.recent_steps = reg_.recent_steps();
  r.health = health_.stats();
  r.health_policy = opts_.health.policy;
  r.resilience = res_stats_;
  r.resilience.dt_current = dt_current_;
  r.overlap.enabled = opts_.overlap == OverlapMode::InteriorFrontier;
  r.overlap.interior_cells = overlap_interior_cells_;
  r.overlap.frontier_cells = overlap_frontier_cells_;
  // fill_model_accuracy derives hidden_seconds/hidden_fraction from the
  // overlap phase timers and the netmodel comm prediction.
  perf::fill_model_accuracy(r, predicted_mlups_, cells_per_launch_,
                            model_.params().dims);
  return r;
}

std::string DistributedSimulation::layout_signature() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, ";phases=%d;mu=%d", model_.params().phases,
                model_.params().num_mu());
  return forest_.layout_signature() + buf;
}

int DistributedSimulation::file_rank() const {
  return comm_ != nullptr ? comm_->rank() : -1;
}

void DistributedSimulation::refresh_src_ghosts() {
  auto phi_view = field_view(&LocalBlock::phi_src);
  exchange_.exchange(phi_view, /*field_tag=*/0);
  auto mu_view = field_view(&LocalBlock::mu_src);
  exchange_.exchange(mu_view, /*field_tag=*/1);
}

void DistributedSimulation::capture_checkpoint(bool to_disk) {
  std::vector<const Array*> snap;
  for (const auto& lb : locals_) {
    snap.push_back(&lb->phi_src);
    snap.push_back(&lb->mu_src);
  }
  snapshot_.capture({step_, time_, dt_current_}, snap);
  ++res_stats_.checkpoints;
  res_stats_.last_checkpoint_step = step_;
  if (!to_disk) return;
  resilience::CheckpointMeta meta;
  meta.step = step_;
  meta.time = time_;
  meta.dt = dt_current_;
  meta.rng_seed = model_.params().rng_seed;
  meta.layout = layout_signature();
  meta.health = health_.stats();
  meta.counters["cell_updates"] = reg_.counter_value("cell_updates");
  meta.counters["exchange_bytes"] = reg_.counter_value("exchange_bytes");
  std::vector<resilience::CheckpointArray> arrays;
  for (const auto& lb : locals_) {
    const std::string id = std::to_string(lb->block->linear_id);
    arrays.push_back({"phi/block" + id, &lb->phi_src});
    arrays.push_back({"mu/block" + id, &lb->mu_src});
  }
  resilience::write_checkpoint(opts_.resilience.directory, meta, arrays,
                               file_rank(), faults_.truncate_checkpoint);
  if (faults_.truncate_checkpoint) ++res_stats_.faults_injected;
  ++res_stats_.checkpoint_files;
}

void DistributedSimulation::rollback() {
  PFC_REQUIRE(snapshot_.valid(), "resilience: no snapshot to roll back to");
  std::vector<Array*> snap;
  for (auto& lb : locals_) {
    snap.push_back(&lb->phi_src);
    snap.push_back(&lb->mu_src);
  }
  snapshot_.restore(snap);
  refresh_src_ghosts();
  step_ = snapshot_.meta().step;
  time_ = snapshot_.meta().time;
  ++res_stats_.rollbacks;
  const double shrink = opts_.resilience.dt_shrink;
  if (shrink > 0.0 && shrink < 1.0) {
    rebuild_with_dt(dt_current_ * shrink);
    ++res_stats_.dt_shrinks;
  }
  if (comm_ == nullptr || comm_->rank() == 0) {
    std::fprintf(stderr,
                 "pfc resilience: rolled back to step %lld (retry %d/%d, "
                 "dt=%g)\n",
                 step_, retries_, opts_.resilience.max_retries, dt_current_);
  }
}

void DistributedSimulation::rebuild_with_dt(double new_dt) {
  model_ = model_.with_dt(new_dt);
  dt_current_ = new_dt;
  compiled_ = ModelCompiler(opts_.compile).compile(model_);
  const int dims = model_.params().dims;
  for (auto& lb : locals_) {
    lb->phi_flux.reset();
    lb->mu_flux.reset();
    if (compiled_.phi_flux_field) {
      lb->phi_flux.emplace(*compiled_.phi_flux_field,
                           flux_size(lb->block->size, dims), 0);
    }
    if (compiled_.mu_flux_field) {
      lb->mu_flux.emplace(*compiled_.mu_flux_field,
                          flux_size(lb->block->size, dims), 0);
    }
  }
  compute_overlap_regions();
}

void DistributedSimulation::maybe_inject_nan() {
  if (fault_nan_fired_ || faults_.nan_step < 0 || step_ != faults_.nan_step) {
    return;
  }
  fault_nan_fired_ = true;
  // Global cell coordinates: only the owning rank's block gets the NaN.
  std::array<long long, 3> c = faults_.nan_cell;
  const auto& g = forest_.global_cells();
  for (int d = 0; d < 3; ++d) {
    c[std::size_t(d)] = std::clamp(c[std::size_t(d)], 0LL,
                                   g[std::size_t(d)] - 1);
  }
  for (auto& lb : locals_) {
    const auto& off = lb->block->offset;
    const auto& n = lb->block->size;
    bool inside = true;
    for (int d = 0; d < 3; ++d) {
      const auto ld = c[std::size_t(d)] - off[std::size_t(d)];
      if (ld < 0 || ld >= n[std::size_t(d)]) inside = false;
    }
    if (!inside) continue;
    lb->phi_src.at(c[0] - off[0], c[1] - off[1], c[2] - off[2], 0) =
        std::numeric_limits<double>::quiet_NaN();
    ++res_stats_.faults_injected;
    std::fprintf(stderr,
                 "pfc fault: injected NaN into phi at step %lld, global "
                 "cell (%lld,%lld,%lld)\n",
                 step_, c[0], c[1], c[2]);
    break;
  }
}

void DistributedSimulation::restore_from_disk() {
  std::vector<resilience::RestoreArray> arrays;
  for (auto& lb : locals_) {
    const std::string id = std::to_string(lb->block->linear_id);
    arrays.push_back({"phi/block" + id, &lb->phi_src});
    arrays.push_back({"mu/block" + id, &lb->mu_src});
  }
  const resilience::CheckpointMeta meta = resilience::read_checkpoint(
      opts_.resilience.restart_from, arrays, layout_signature(), file_rank());
  PFC_REQUIRE(meta.rng_seed == model_.params().rng_seed,
              "resilience: checkpoint rng_seed differs from the model's — "
              "restart would change the noise stream");
  refresh_src_ghosts();
  step_ = meta.step;
  time_ = meta.time;
  health_.restore_stats(meta.health);
  if (meta.dt != dt_current_) rebuild_with_dt(meta.dt);
  res_stats_.restarted = true;
  res_stats_.restart_step = meta.step;
}

double DistributedSimulation::local_phi_sum(int c) const {
  double s = 0.0;
  for (const auto& lb : locals_) s += lb->phi_src.interior_sum(c);
  return s;
}

std::vector<double> DistributedSimulation::gather_phi() const {
  const auto& g = forest_.global_cells();
  const int comps = model_.phi_src()->components();
  const std::size_t plane = std::size_t(g[0] * g[1] * g[2]);
  std::vector<double> out(plane * std::size_t(comps), 0.0);

  const auto put_block = [&](const grid::Block& b,
                             const std::vector<double>& data) {
    std::size_t i = 0;
    for (int c = 0; c < comps; ++c) {
      for (long long z = 0; z < b.size[2]; ++z) {
        for (long long y = 0; y < b.size[1]; ++y) {
          for (long long x = 0; x < b.size[0]; ++x) {
            const std::size_t gi =
                std::size_t((x + b.offset[0]) +
                            g[0] * ((y + b.offset[1]) +
                                    g[1] * (z + b.offset[2])));
            out[gi + plane * std::size_t(c)] = data[i++];
          }
        }
      }
    }
  };
  const auto block_data = [&](const LocalBlock& lb) {
    std::vector<double> d;
    d.reserve(std::size_t(lb.block->size[0] * lb.block->size[1] *
                          lb.block->size[2] * comps));
    for (int c = 0; c < comps; ++c) {
      for (long long z = 0; z < lb.block->size[2]; ++z) {
        for (long long y = 0; y < lb.block->size[1]; ++y) {
          for (long long x = 0; x < lb.block->size[0]; ++x) {
            d.push_back(lb.phi_src.at(x, y, z, c));
          }
        }
      }
    }
    return d;
  };

  for (const auto& lb : locals_) put_block(*lb->block, block_data(*lb));
  if (comm_ == nullptr) return out;

  constexpr int kGatherTag = 7000000;
  if (comm_->rank() == 0) {
    for (const auto& b : forest_.blocks()) {
      if (b.owner == 0) continue;
      std::vector<double> data(
          std::size_t(b.size[0] * b.size[1] * b.size[2] * comps));
      comm_->recv_vec(b.owner, kGatherTag + b.linear_id, data);
      put_block(b, data);
    }
    for (int r = 1; r < comm_->size(); ++r) {
      comm_->send_vec(r, kGatherTag - 1, out);
    }
  } else {
    for (const auto& lb : locals_) {
      comm_->send_vec(0, kGatherTag + lb->block->linear_id,
                      block_data(*lb));
    }
    comm_->recv_vec(0, kGatherTag - 1, out);
  }
  return out;
}

}  // namespace pfc::app
