// Distributed multi-block time stepping: Algorithm 1 with the boundary
// handling replaced by block-forest ghost exchange (paper §4). Each rank
// owns the blocks assigned by the Morton curve; the model is generated and
// JIT-compiled once per rank and shared across its blocks.
#pragma once

#include "pfc/app/simulation.hpp"
#include "pfc/grid/ghost_exchange.hpp"

namespace pfc::app {

/// How the distributed step schedules ghost exchange against compute.
enum class OverlapMode {
  /// Synchronous: sweep all cells, then exchange (the seed behaviour).
  Off,
  /// Communication hiding: compute the frontier shell first, post the
  /// exchange nonblocking, compute the interior while messages fly, then
  /// complete the exchange. Bitwise-identical results to Off.
  InteriorFrontier,
};

struct DistributedOptions : DomainOptions {
  /// `cells` (from DomainOptions) is the *global* domain, decomposed into
  /// `blocks_per_dim` equal blocks per dimension.
  std::array<int, 3> blocks_per_dim{2, 2, 1};
  /// Exchange/compute scheduling of the step (see OverlapMode).
  OverlapMode overlap = OverlapMode::Off;
  /// Thread-pool size for slab-splitting the interior sweep while the
  /// exchange is in flight (1 = interior runs on the rank's own thread).
  int threads = 1;

  DistributedOptions& with_cells(long long nx, long long ny,
                                 long long nz = 1) {
    DomainOptions::with_cells(nx, ny, nz);
    return *this;
  }
  DistributedOptions& with_boundary(grid::BoundaryKind b) {
    DomainOptions::with_boundary(b);
    return *this;
  }
  DistributedOptions& with_compile(const CompileOptions& c) {
    DomainOptions::with_compile(c);
    return *this;
  }
  DistributedOptions& with_trace(const obs::TraceOptions& t) {
    DomainOptions::with_trace(t);
    return *this;
  }
  DistributedOptions& with_health(const obs::HealthOptions& h) {
    DomainOptions::with_health(h);
    return *this;
  }
  DistributedOptions& with_resilience(const resilience::ResilienceOptions& r) {
    DomainOptions::with_resilience(r);
    return *this;
  }
  DistributedOptions& with_blocks(int bx, int by, int bz = 1) {
    blocks_per_dim = {bx, by, bz};
    return *this;
  }
  DistributedOptions& with_overlap(OverlapMode m) {
    overlap = m;
    return *this;
  }
  DistributedOptions& with_threads(int t) {
    threads = t;
    return *this;
  }
};

/// One rank's part of a distributed run. Construct inside an mpi::run
/// callback (or with comm == nullptr for serial multi-block execution).
class DistributedSimulation {
 public:
  /// With `opts.resilience.restart_from` set, every rank restores its own
  /// blocks from the per-rank checkpoint files; skip init() in that case.
  DistributedSimulation(const GrandChemModel& model,
                        const DistributedOptions& opts, mpi::Comm* comm);

  const grid::BlockForest& forest() const { return forest_; }
  int num_local_blocks() const { return static_cast<int>(locals_.size()); }
  /// The rank-wide compiled model (kernels are shared across local blocks).
  const CompiledModel& compiled() const { return compiled_; }

  /// Initializes phi/mu from *global* cell coordinates.
  void init(const std::function<double(long long, long long, long long,
                                       int)>& phi_f,
            const std::function<double(long long, long long, long long,
                                       int)>& mu_f);

  /// Advances `steps` time steps; returns the cumulative run report of
  /// this rank (kernel timers, exchange bytes/seconds, block imbalance).
  obs::RunReport run(int steps);

  long long step_count() const { return step_; }

  /// Cumulative report without advancing time.
  obs::RunReport report() const;
  const obs::Registry& registry() const { return reg_; }
  /// The span recorder (pid = rank; multi-rank runs write per-rank files
  /// via obs::rank_trace_path).
  const obs::TraceRecorder& tracer() const { return tracer_; }
  /// The in-situ health monitor of this rank's blocks.
  const obs::HealthMonitor& health() const { return health_; }
  /// Checkpoint/rollback accounting of this rank.
  const obs::ResilienceStats& resilience_stats() const { return res_stats_; }

  /// Enables periodic progress sampling of this rank's step loop (see
  /// progress.hpp; the serve daemon sets this on single-process runs).
  void set_progress(ProgressOptions p) { progress_ = std::move(p); }

  /// Sum over local blocks of component c of phi (for cross-validation).
  double local_phi_sum(int c) const;

  /// Gathers the full global phi field onto every rank (test utility; the
  /// production path writes per-block VTK instead).
  /// Entry (x + gx*(y + gy*z), c).
  std::vector<double> gather_phi() const;

 private:
  struct LocalBlock {
    const grid::Block* block;
    Array phi_src, phi_dst, mu_src, mu_dst;
    std::optional<Array> phi_flux, mu_flux;
  };

  /// Interior box + disjoint frontier slabs of one kernel's iteration
  /// space. The frontier covers every cell whose value the exchange round
  /// reads (directly or through a downstream kernel of the same group);
  /// the interior touches no ghost-dependent data, so it can run while the
  /// exchange is in flight. Widths are derived from the read-offset ranges
  /// marshal() computes, so split staggered pipelines get correct shells.
  struct KernelRegions {
    backend::CellRange interior;
    std::vector<backend::CellRange> frontier;
  };

  backend::Binding bind(const ir::Kernel& k, LocalBlock& lb) const;
  std::vector<grid::LocalBlockField> field_view(
      Array LocalBlock::* src) ;

  /// (Re)derives phi_regions_/mu_regions_ and the per-step interior/
  /// frontier cell counts from the compiled kernels (called at
  /// construction and after a dt-shrink recompile).
  void compute_overlap_regions();

  // --- resilience (mirrors Simulation; rollback is rank-coordinated) ---
  std::string layout_signature() const;
  int file_rank() const;  ///< rank suffix for checkpoint files (−1 serial)
  void capture_checkpoint(bool to_disk);
  void rollback();
  void rebuild_with_dt(double new_dt);
  void maybe_inject_nan();
  void restore_from_disk();
  /// Re-exchanges ghosts of both src fields (after restore/rollback).
  void refresh_src_ghosts();
  /// Updates the step-time EWMA and emits a progress sample when due.
  void record_progress(double step_wall_seconds);

  /// Owned copy (shares the caller's Field handles) so a dt shrink can
  /// regenerate kernels without mutating the caller's model.
  GrandChemModel model_;
  DistributedOptions opts_;
  grid::BlockForest forest_;
  mpi::Comm* comm_;
  CompiledModel compiled_;
  std::vector<std::unique_ptr<LocalBlock>> locals_;
  grid::GhostExchange exchange_;
  /// Slab-split pool for interior sweeps (overlap mode, threads > 1).
  std::unique_ptr<ThreadPool> pool_;
  /// Per-kernel interior/frontier decomposition, parallel to
  /// compiled_.phi_kernels / mu_kernels (empty when overlap is Off).
  std::vector<KernelRegions> phi_regions_, mu_regions_;
  /// Per-step local cell counts of the decomposition (dst-kernel lattice).
  long long overlap_interior_cells_ = 0;
  long long overlap_frontier_cells_ = 0;
  long long step_ = 0;
  double time_ = 0.0;
  double dt_current_ = 0.0;
  resilience::FaultPlan faults_;
  bool fault_nan_fired_ = false;
  resilience::Snapshot snapshot_;
  obs::ResilienceStats res_stats_;
  int retries_ = 0;
  long long last_violation_step_ = -1;
  obs::Registry reg_;
  obs::TraceRecorder tracer_;
  obs::HealthMonitor health_;
  /// ECM-predicted MLUP/s per kernel at the local block size (serial
  /// per-block launches, so cores = 1); feeds model_accuracy.
  std::map<std::string, double> predicted_mlups_;
  /// Interior cells of one block launch (all blocks are equal-sized).
  long long cells_per_launch_ = 0;
  bool trace_this_step_ = false;
  ProgressOptions progress_;
  double step_seconds_ewma_ = 0.0;
  long long last_progress_step_ = -1;
};

}  // namespace pfc::app
