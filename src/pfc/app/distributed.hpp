// Distributed multi-block time stepping: Algorithm 1 with the boundary
// handling replaced by block-forest ghost exchange (paper §4). Each rank
// owns the blocks assigned by the Morton curve; the model is generated and
// JIT-compiled once per rank and shared across its blocks.
#pragma once

#include "pfc/app/simulation.hpp"
#include "pfc/grid/ghost_exchange.hpp"

namespace pfc::app {

struct DistributedOptions {
  std::array<long long, 3> global_cells{64, 64, 1};
  std::array<int, 3> blocks_per_dim{2, 2, 1};
  grid::BoundaryKind boundary = grid::BoundaryKind::Periodic;
  CompileOptions compile;
};

/// One rank's part of a distributed run. Construct inside an mpi::run
/// callback (or with comm == nullptr for serial multi-block execution).
class DistributedSimulation {
 public:
  DistributedSimulation(const GrandChemModel& model,
                        const DistributedOptions& opts, mpi::Comm* comm);

  const grid::BlockForest& forest() const { return forest_; }
  int num_local_blocks() const { return static_cast<int>(locals_.size()); }

  /// Initializes phi/mu from *global* cell coordinates.
  void init(const std::function<double(long long, long long, long long,
                                       int)>& phi_f,
            const std::function<double(long long, long long, long long,
                                       int)>& mu_f);

  void run(int steps);

  long long step_count() const { return step_; }

  /// Sum over local blocks of component c of phi (for cross-validation).
  double local_phi_sum(int c) const;

  /// Gathers the full global phi field onto every rank (test utility; the
  /// production path writes per-block VTK instead).
  /// Entry (x + gx*(y + gy*z), c).
  std::vector<double> gather_phi() const;

  /// Bytes sent by this rank in the last exchange round.
  std::size_t last_exchange_bytes() const;

 private:
  struct LocalBlock {
    const grid::Block* block;
    Array phi_src, phi_dst, mu_src, mu_dst;
    std::optional<Array> phi_flux, mu_flux;
  };

  backend::Binding bind(const ir::Kernel& k, LocalBlock& lb) const;
  std::vector<grid::LocalBlockField> field_view(
      Array LocalBlock::* src) ;

  const GrandChemModel& model_;
  DistributedOptions opts_;
  grid::BlockForest forest_;
  mpi::Comm* comm_;
  CompiledModel compiled_;
  std::vector<std::unique_ptr<LocalBlock>> locals_;
  grid::GhostExchange exchange_;
  long long step_ = 0;
};

}  // namespace pfc::app
