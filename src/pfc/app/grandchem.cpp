#include "pfc/app/grandchem.hpp"

#include <cmath>

#include "pfc/continuum/varder.hpp"
#include "pfc/support/assert.hpp"

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

namespace pfc::app {

using continuum::Matrix;
using continuum::Vec;
using sym::Expr;
using sym::num;

void GrandChemParams::validate() const {
  PFC_REQUIRE(phases >= 2, "grandchem needs at least 2 phases");
  PFC_REQUIRE(components >= 2 && components <= 4,
              "grandchem supports 2..4 components (µ dimension 1..3)");
  PFC_REQUIRE(dims >= 1 && dims <= 3, "dims must be 1..3");
  PFC_REQUIRE(liquid_phase >= 0 && liquid_phase < phases,
              "liquid_phase out of range");
  PFC_REQUIRE(gamma.has_value() && gamma->phases() == phases,
              "gamma PairTable missing or wrong size");
  PFC_REQUIRE(tau.has_value() && tau->phases() == phases,
              "tau PairTable missing or wrong size");
  PFC_REQUIRE(static_cast<int>(fits.size()) == phases,
              "need one ParabolicFit per phase");
  for (const auto& f : fits) {
    PFC_REQUIRE(f.num_mu() == components - 1,
                "ParabolicFit dimension must equal components-1");
  }
  PFC_REQUIRE(static_cast<int>(diffusivity.size()) == phases,
              "need one diffusivity per phase");
  PFC_REQUIRE(anisotropy.empty() ||
                  static_cast<int>(anisotropy.size()) ==
                      phases * (phases - 1) / 2,
              "anisotropy list must be empty or one entry per pair");
  PFC_REQUIRE(dt > 0 && dx > 0 && epsilon > 0, "dx, dt, epsilon must be > 0");
}

GrandChemModel::GrandChemModel(GrandChemParams params)
    : params_(std::move(params)) {
  params_.validate();
  phi_src_ = Field::create("phi_src", params_.dims, params_.phases);
  phi_dst_ = Field::create("phi_dst", params_.dims, params_.phases);
  mu_src_ = Field::create("mu_src", params_.dims, params_.num_mu());
  mu_dst_ = Field::create("mu_dst", params_.dims, params_.num_mu());
}

Expr GrandChemModel::temperature() const {
  const int grad_dim = params_.dims - 1;
  return num(params_.temp0) +
         params_.temp_gradient *
             (sym::coord(grad_dim) * params_.dx -
              params_.pull_velocity * sym::time());
}

Expr GrandChemModel::energy_density() const {
  const auto& p = params_;
  std::vector<Anisotropy> aniso = p.anisotropy;
  if (aniso.empty()) {
    aniso.assign(std::size_t(p.phases * (p.phases - 1) / 2), Anisotropy{});
  }
  const Expr a =
      continuum::gradient_energy(phi_src_, p.dims, *p.gamma, aniso);
  const Expr w =
      continuum::obstacle_potential(phi_src_, *p.gamma, p.gamma_triple);

  Vec mu;
  for (int k = 0; k < p.num_mu(); ++k) mu.push_back(sym::at(mu_src_, k));
  const Expr psi =
      continuum::driving_force(phi_src_, p.fits, mu, temperature());

  return num(p.epsilon) * a + w / p.epsilon + psi;
}

Expr GrandChemModel::variational_derivative_phi(int alpha) const {
  return continuum::variational_derivative(energy_density(), phi_src_, alpha,
                                           params_.dims);
}

Expr GrandChemModel::interp_tau() const {
  // τ_ip = (Σ τ_αβ φ_α φ_β + ε τ̄) / (Σ φ_α φ_β + ε): the ε-regularization
  // makes the interpolation limit to the mean kinetic coefficient in bulk
  // cells where every pairwise product vanishes exactly (after clamping),
  // instead of 0/0.
  const auto& p = params_;
  std::vector<Expr> numer, denom, taus;
  for (int a = 0; a < p.phases; ++a) {
    for (int b = a + 1; b < p.phases; ++b) {
      const Expr pab = sym::at(phi_src_, a) * sym::at(phi_src_, b);
      numer.push_back((*p.tau)(a, b) * pab);
      denom.push_back(pab);
      taus.push_back((*p.tau)(a, b));
    }
  }
  const double num_pairs = double(taus.size());
  const Expr tau_mean = sym::add(std::move(taus)) / num_pairs;
  return (sym::add(std::move(numer)) + p.guard_eps * tau_mean) /
         (sym::add(std::move(denom)) + p.guard_eps);
}

fd::PdeUpdate GrandChemModel::phi_update() const {
  const auto& p = params_;
  std::vector<Expr> var_ders;
  var_ders.reserve(std::size_t(p.phases));
  for (int a = 0; a < p.phases; ++a) {
    var_ders.push_back(variational_derivative_phi(a));
  }
  // Lagrange multiplier keeps the sum of phase fields conserved
  Expr lambda = sym::add(var_ders) / double(p.phases);

  const Expr tau_eps = interp_tau() * p.epsilon;
  fd::PdeUpdate pde;
  pde.name = "phi";
  pde.src = phi_src_;
  pde.dst = phi_dst_;
  for (int a = 0; a < p.phases; ++a) {
    Expr rhs = (lambda - var_ders[std::size_t(a)]) / tau_eps;
    if (p.noise_amplitude != 0.0) {
      const Expr pa = sym::at(phi_src_, a);
      rhs = rhs + p.noise_amplitude * pa * (num(1.0) - pa) *
                      sym::random_uniform(a);
    }
    pde.rhs.push_back(rhs);
  }
  return pde;
}

Vec GrandChemModel::dphi_dt() const {
  Vec v;
  for (int a = 0; a < params_.phases; ++a) {
    v.push_back((sym::at(phi_dst_, a) - sym::at(phi_src_, a)) / params_.dt);
  }
  return v;
}

Vec GrandChemModel::concentration() const {
  const auto& p = params_;
  Vec mu;
  for (int k = 0; k < p.num_mu(); ++k) mu.push_back(sym::at(mu_src_, k));
  const Expr T = temperature();
  Vec c(std::size_t(p.num_mu()), num(0.0));
  for (int a = 0; a < p.phases; ++a) {
    const Expr h = continuum::interpolation_h(sym::at(phi_src_, a));
    const Vec ca = p.fits[std::size_t(a)].concentration(mu, T);
    for (int k = 0; k < p.num_mu(); ++k) {
      c[std::size_t(k)] = c[std::size_t(k)] + ca[std::size_t(k)] * h;
    }
  }
  return c;
}

fd::PdeUpdate GrandChemModel::mu_update() const {
  const auto& p = params_;
  const int nmu = p.num_mu();
  const Expr T = temperature();

  Vec mu;
  for (int k = 0; k < nmu; ++k) mu.push_back(sym::at(mu_src_, k));

  // susceptibility chi = dc/dµ = sum_a 2 A_a(T) h(phi_a)
  Matrix chi(std::size_t(nmu), std::vector<Expr>(std::size_t(nmu), num(0.0)));
  // mobility M = sum_a D_a (2 A_a(T)) g_a(phi), g_a = phi_a (paper: simpler
  // interpolation than h_a)
  Matrix mob = chi;
  // per-phase concentrations and their h-interpolated T-derivative
  std::vector<Vec> c_of_phase;
  Vec dc_dT(std::size_t(nmu), num(0.0));
  for (int a = 0; a < p.phases; ++a) {
    const auto& fit = p.fits[std::size_t(a)];
    const Expr h = continuum::interpolation_h(sym::at(phi_src_, a));
    const Matrix dca = fit.dc_dmu(T);  // 2 A_a(T)
    const Vec dct = fit.dc_dT(mu);
    for (int i = 0; i < nmu; ++i) {
      for (int j = 0; j < nmu; ++j) {
        chi[std::size_t(i)][std::size_t(j)] =
            chi[std::size_t(i)][std::size_t(j)] +
            dca[std::size_t(i)][std::size_t(j)] * h;
        mob[std::size_t(i)][std::size_t(j)] =
            mob[std::size_t(i)][std::size_t(j)] +
            p.diffusivity[std::size_t(a)] *
                dca[std::size_t(i)][std::size_t(j)] *
                sym::at(phi_src_, a);
      }
      dc_dT[std::size_t(i)] = dc_dT[std::size_t(i)] + dct[std::size_t(i)] * h;
    }
    c_of_phase.push_back(fit.concentration(mu, T));
  }

  // flux F_k = sum_j M_kj grad(mu_j) - Jat_k  (per spatial dim)
  const auto grad_mu = [&](int j) {
    return continuum::grad(mu_src_, j, p.dims);
  };
  std::vector<Vec> flux(std::size_t(nmu),
                        Vec(std::size_t(p.dims), num(0.0)));
  for (int k = 0; k < nmu; ++k) {
    for (int j = 0; j < nmu; ++j) {
      const Vec gj = grad_mu(j);
      for (int d = 0; d < p.dims; ++d) {
        flux[std::size_t(k)][std::size_t(d)] =
            flux[std::size_t(k)][std::size_t(d)] +
            mob[std::size_t(k)][std::size_t(j)] * gj[std::size_t(d)];
      }
    }
  }

  // anti-trapping current (Eq. 10): only solid phases alpha != liquid
  const int l = p.liquid_phase;
  const Vec dphidt = dphi_dt();
  const Vec grad_phi_l = continuum::grad(phi_src_, l, p.dims);
  const Expr norm_l =
      sym::rsqrt(sym::max_(continuum::norm_sq(grad_phi_l), num(p.guard_eps)));
  for (int a = 0; a < p.phases; ++a) {
    if (a == l) continue;
    const Vec grad_phi_a = continuum::grad(phi_src_, a, p.dims);
    const Expr norm_a = sym::rsqrt(
        sym::max_(continuum::norm_sq(grad_phi_a), num(p.guard_eps)));
    // n_a · n_l projection
    const Expr proj =
        continuum::dot(grad_phi_a, grad_phi_l) * norm_a * norm_l;
    const Expr indicator = sym::sqrt_(sym::max_(
        sym::at(phi_src_, a) * sym::at(phi_src_, l), num(0.0)));
    const Expr pref = num(M_PI * p.epsilon / 4.0) * indicator *
                      dphidt[std::size_t(a)] * proj;
    for (int k = 0; k < nmu; ++k) {
      const Expr dc = c_of_phase[std::size_t(l)][std::size_t(k)] -
                      c_of_phase[std::size_t(a)][std::size_t(k)];
      for (int d = 0; d < p.dims; ++d) {
        // F -= J_at
        flux[std::size_t(k)][std::size_t(d)] =
            flux[std::size_t(k)][std::size_t(d)] -
            pref * dc * grad_phi_a[std::size_t(d)] * norm_a;
      }
    }
  }

  // rhs_k = [chi^-1 ( div(F) - sum_a c_a dh/dt - dc/dT dT/dt )]_k
  Vec bracket(std::size_t(nmu), num(0.0));
  for (int k = 0; k < nmu; ++k) {
    bracket[std::size_t(k)] = continuum::div(flux[std::size_t(k)]);
  }
  for (int a = 0; a < p.phases; ++a) {
    const Expr hprime =
        continuum::interpolation_h_prime(sym::at(phi_src_, a));
    for (int k = 0; k < nmu; ++k) {
      bracket[std::size_t(k)] =
          bracket[std::size_t(k)] - c_of_phase[std::size_t(a)][std::size_t(k)] *
                                        hprime * dphidt[std::size_t(a)];
    }
  }
  const double dT_dt = -p.temp_gradient * p.pull_velocity;
  if (dT_dt != 0.0) {
    for (int k = 0; k < nmu; ++k) {
      bracket[std::size_t(k)] =
          bracket[std::size_t(k)] - dc_dT[std::size_t(k)] * dT_dt;
    }
  }

  const Matrix chi_inv = continuum::inverse(chi);
  fd::PdeUpdate pde;
  pde.name = "mu";
  pde.src = mu_src_;
  pde.dst = mu_dst_;
  for (int k = 0; k < nmu; ++k) {
    Expr rhs = num(0.0);
    for (int j = 0; j < nmu; ++j) {
      rhs = rhs +
            chi_inv[std::size_t(k)][std::size_t(j)] * bracket[std::size_t(j)];
    }
    pde.rhs.push_back(rhs);
  }
  return pde;
}

}  // namespace pfc::app
