// The grand-potential (grand-chemical) multi-phase-field model — the
// paper's application (Eqs. 3–10, following Choudhury & Nestler and Hötzer
// et al.):
//
//   * N phase fields φ_α on the Gibbs simplex, evolving by Allen–Cahn
//     dynamics from the variational derivative of
//     Ψ = ∫ ε a(φ,∇φ) + ω(φ)/ε + ψ(φ,µ,T) dV, corrected by a Lagrange
//     multiplier and an optional Philox fluctuation;
//   * K−1 chemical potentials µ evolving non-variationally (Eq. 8) with
//     mobility M(φ,µ,T) (Eq. 9) and anti-trapping current J_at (Eq. 10);
//   * analytic temperature T(z, t) = T0 + G (z·dx − v t) — the "frozen
//     temperature" approximation whose special functional form the code
//     generator exploits by loop-invariant hoisting.
//
// Everything below is *symbolic*: the class produces continuum PDEs
// (fd::PdeUpdate) for the pipeline. Numeric parameters fold at generation
// time (the paper's compile-time parametrization); any parameter may be
// left symbolic to stay a runtime kernel argument (§5.1 ablation).
#pragma once

#include <optional>

#include "pfc/continuum/functional.hpp"
#include "pfc/fd/discretize.hpp"

namespace pfc::app {

using continuum::Anisotropy;
using continuum::PairTable;
using continuum::ParabolicFit;

/// Full parametrization of a grand-chemical model instance.
struct GrandChemParams {
  int phases = 2;       ///< N
  int components = 2;   ///< K (µ and c have K−1 entries)
  int dims = 3;
  int liquid_phase = 0;  ///< index l of the melt phase (anti-trapping)

  double dx = 1.0;
  double dt = 0.01;
  double epsilon = 4.0;  ///< interface width parameter ε (in units of dx)

  /// Pairwise interfacial energies γ_αβ and kinetic coefficients τ_αβ.
  std::optional<PairTable> gamma;
  std::optional<PairTable> tau;
  sym::Expr gamma_triple = sym::num(0.0);

  /// Per-pair gradient-energy anisotropy (empty = all isotropic).
  std::vector<Anisotropy> anisotropy;

  /// Per-phase parabolic grand-potential fits (Eq. 6).
  std::vector<ParabolicFit> fits;
  /// Per-phase diffusion coefficients D_α.
  std::vector<sym::Expr> diffusivity;

  /// Analytic temperature T(z,t) = T0 + G (z dx − v t); gradient along the
  /// last spatial dimension.
  double temp0 = 1.0;
  double temp_gradient = 0.0;  ///< G
  double pull_velocity = 0.0;  ///< v

  /// Fluctuation amplitude (0 disables noise; noise acts inside interfaces
  /// as amp · φ_α(1−φ_α) · ξ with ξ ~ Philox U(−1,1)).
  double noise_amplitude = 0.0;
  std::uint64_t rng_seed = 42;

  /// Numerical guard for divisions by interface indicators.
  double guard_eps = 1e-9;

  int num_mu() const { return components - 1; }
  void validate() const;
};

/// Symbolic model assembly: fields plus continuum PDE right-hand sides.
class GrandChemModel {
 public:
  explicit GrandChemModel(GrandChemParams params);

  const GrandChemParams& params() const { return params_; }

  /// Copy of this model with a different time step. The copy shares this
  /// model's Field handles, so kernels recompiled from it bind to the same
  /// arrays — this is how the resilience layer shrinks dt after a rollback
  /// even though dt folds into the generated code.
  GrandChemModel with_dt(double new_dt) const {
    GrandChemModel m = *this;
    m.params_.dt = new_dt;
    return m;
  }

  const FieldPtr& phi_src() const { return phi_src_; }
  const FieldPtr& phi_dst() const { return phi_dst_; }
  const FieldPtr& mu_src() const { return mu_src_; }
  const FieldPtr& mu_dst() const { return mu_dst_; }

  /// T(z, t) as a symbolic expression (z in cells).
  sym::Expr temperature() const;

  /// The total energy density integrand ε a + ω/ε + ψ.
  sym::Expr energy_density() const;

  /// δΨ/δφ_α (continuum form, contains Diff divergences).
  sym::Expr variational_derivative_phi(int alpha) const;

  /// The Allen–Cahn update (Eq. 7) for all phases: dφ_α/dt = ...
  fd::PdeUpdate phi_update() const;

  /// The chemical-potential update (Eq. 8) for all µ components, with the
  /// anti-trapping current (Eq. 10). The dφ/dt appearing on the rhs is the
  /// already-computed (φ_dst − φ_src)/dt, matching Algorithm 1's data flow
  /// (µ kernel reads both φ_src and φ_dst).
  fd::PdeUpdate mu_update() const;

  /// c(φ,µ,T): the conserved concentration vector (for analysis/tests).
  continuum::Vec concentration() const;

 private:
  sym::Expr interp_tau() const;
  continuum::Vec dphi_dt() const;  ///< (φ_dst − φ_src)/dt per phase

  GrandChemParams params_;
  FieldPtr phi_src_, phi_dst_, mu_src_, mu_dst_;
};

}  // namespace pfc::app
