#include "pfc/app/jobspec.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pfc/app/distributed.hpp"
#include "pfc/app/params.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/app/tuning.hpp"
#include "pfc/resilience/checkpoint.hpp"

namespace pfc::app {

using obs::Json;

namespace {

[[noreturn]] void bad(const std::string& where, const std::string& msg) {
  throw Error("jobspec: " + where + ": " + msg);
}

void require_object(const Json& j, const std::string& where) {
  if (!j.is_object()) bad(where, "expected an object");
}

void check_keys(const Json& j, std::initializer_list<const char*> allowed,
                const std::string& where) {
  for (const auto& [key, v] : j.items()) {
    (void)v;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) bad(where + "." + key, "unknown key");
  }
}

double read_num(const Json& j, const char* key, double def,
                const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_number()) bad(where + "." + key, "expected a number");
  return v->number();
}

long long read_int(const Json& j, const char* key, long long def,
                   const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_number() || v->number() != std::floor(v->number())) {
    bad(where + "." + key, "expected an integer");
  }
  return (long long)(v->number());
}

std::string read_str(const Json& j, const char* key, const std::string& def,
                     const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_string()) bad(where + "." + key, "expected a string");
  return v->str();
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[std::size_t(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

// --- spec codec --------------------------------------------------------------

Json JobSpec::to_json() const {
  Json overrides = Json::object();
  if (model.dt) overrides.set("dt", Json(*model.dt));
  if (model.epsilon) overrides.set("epsilon", Json(*model.epsilon));
  if (model.noise_amplitude) {
    overrides.set("noise_amplitude", Json(*model.noise_amplitude));
  }
  if (model.rng_seed) overrides.set("rng_seed", Json(*model.rng_seed));

  return Json::object()
      .set("schema", Json(kJobSpecSchema))
      .set("name", Json(name))
      .set("model", Json::object()
                        .set("preset", Json(model.preset))
                        .set("dims", Json(model.dims))
                        .set("overrides", std::move(overrides)))
      .set("initial",
           Json::object()
               .set("kind", Json(initial.kind))
               .set("radius_fraction", Json(initial.radius_fraction))
               .set("interface_width_eps", Json(initial.interface_width_eps))
               .set("solid_phase", Json(initial.solid_phase)))
      .set("steps", Json(steps))
      .set("mode", Json(mode))
      .set("progress_every", Json(progress_every))
      .set("tenant", Json(tenant))
      .set("deadline_seconds", Json(deadline_seconds))
      .set("simulation", simulation_options_to_json(simulation))
      .set("distributed", distributed_options_to_json(distributed));
}

JobSpec JobSpec::from_json(const Json& j, const std::string& where) {
  require_object(j, where);
  check_keys(j,
             {"schema", "name", "model", "initial", "steps", "mode",
              "progress_every", "tenant", "deadline_seconds", "simulation",
              "distributed"},
             where);
  const std::string schema = read_str(j, "schema", "", where);
  if (schema != kJobSpecSchema) {
    bad(where + ".schema", schema.empty()
                               ? std::string("missing (expected \"") +
                                     kJobSpecSchema + "\")"
                               : "\"" + schema + "\" is not \"" +
                                     kJobSpecSchema + "\"");
  }

  JobSpec s;
  s.name = read_str(j, "name", s.name, where);

  if (const Json* m = j.find("model")) {
    const std::string mw = where + ".model";
    require_object(*m, mw);
    check_keys(*m, {"preset", "dims", "overrides"}, mw);
    s.model.preset = read_str(*m, "preset", s.model.preset, mw);
    s.model.dims = int(read_int(*m, "dims", s.model.dims, mw));
    if (const Json* o = m->find("overrides")) {
      const std::string ow = mw + ".overrides";
      require_object(*o, ow);
      check_keys(*o, {"dt", "epsilon", "noise_amplitude", "rng_seed"}, ow);
      if (o->find("dt")) s.model.dt = read_num(*o, "dt", 0, ow);
      if (o->find("epsilon")) s.model.epsilon = read_num(*o, "epsilon", 0, ow);
      if (o->find("noise_amplitude")) {
        s.model.noise_amplitude = read_num(*o, "noise_amplitude", 0, ow);
      }
      if (o->find("rng_seed")) {
        s.model.rng_seed = std::uint64_t(read_int(*o, "rng_seed", 0, ow));
      }
    }
  }

  if (const Json* i = j.find("initial")) {
    const std::string iw = where + ".initial";
    require_object(*i, iw);
    check_keys(*i,
               {"kind", "radius_fraction", "interface_width_eps",
                "solid_phase"},
               iw);
    s.initial.kind = read_str(*i, "kind", s.initial.kind, iw);
    s.initial.radius_fraction =
        read_num(*i, "radius_fraction", s.initial.radius_fraction, iw);
    s.initial.interface_width_eps = read_num(
        *i, "interface_width_eps", s.initial.interface_width_eps, iw);
    s.initial.solid_phase =
        int(read_int(*i, "solid_phase", s.initial.solid_phase, iw));
  }

  s.steps = read_int(j, "steps", s.steps, where);
  s.mode = read_str(j, "mode", s.mode, where);
  s.progress_every = read_int(j, "progress_every", s.progress_every, where);
  s.tenant = read_str(j, "tenant", s.tenant, where);
  s.deadline_seconds =
      read_num(j, "deadline_seconds", s.deadline_seconds, where);
  if (const Json* v = j.find("simulation")) {
    s.simulation = simulation_options_from_json(*v, where + ".simulation");
  }
  if (const Json* v = j.find("distributed")) {
    s.distributed = distributed_options_from_json(*v, where + ".distributed");
  }
  return s;
}

JobSpec JobSpec::parse(const std::string& text) {
  std::string err;
  const Json j = Json::parse(text, &err);
  if (!err.empty()) throw Error("jobspec: JSON parse error: " + err);
  JobSpec s = from_json(j);
  s.validate();
  return s;
}

void JobSpec::validate() const {
  if (model.preset != "two_phase" && model.preset != "p1" &&
      model.preset != "p2") {
    bad("model.preset", "unknown preset \"" + model.preset +
                            "\" (valid: two_phase, p1, p2)");
  }
  if (model.dims < 1 || model.dims > 3) bad("model.dims", "must be 1..3");
  if (model.dt && *model.dt <= 0.0) bad("model.overrides.dt", "must be > 0");
  if (model.epsilon && *model.epsilon <= 0.0) {
    bad("model.overrides.epsilon", "must be > 0");
  }
  if (model.noise_amplitude && *model.noise_amplitude < 0.0) {
    bad("model.overrides.noise_amplitude", "must be >= 0");
  }
  if (initial.kind != "disk" && initial.kind != "uniform") {
    bad("initial.kind", "unknown kind \"" + initial.kind +
                            "\" (valid: disk, uniform)");
  }
  if (initial.radius_fraction <= 0.0 || initial.radius_fraction > 0.5) {
    bad("initial.radius_fraction", "must be in (0, 0.5]");
  }
  if (initial.interface_width_eps <= 0.0) {
    bad("initial.interface_width_eps", "must be > 0");
  }
  if (initial.solid_phase < 0) bad("initial.solid_phase", "must be >= 0");
  if (steps < 0) bad("steps", "must be >= 0");
  if (progress_every < 0) bad("progress_every", "must be >= 0");
  if (tenant.empty()) bad("tenant", "must not be empty");
  if (tenant.size() > 64) bad("tenant", "must be <= 64 characters");
  if (deadline_seconds < 0.0) bad("deadline_seconds", "must be >= 0");
  if (mode != "single" && mode != "distributed") {
    bad("mode", "unknown mode \"" + mode +
                    "\" (valid: single, distributed)");
  }
}

GrandChemParams JobSpec::make_params() const {
  GrandChemParams p;
  if (model.preset == "p1") {
    p = make_p1(model.dims);
  } else if (model.preset == "p2") {
    p = make_p2(model.dims);
  } else {
    p = make_two_phase(model.dims);
  }
  if (model.dt) p.dt = *model.dt;
  if (model.epsilon) p.epsilon = *model.epsilon;
  if (model.noise_amplitude) p.noise_amplitude = *model.noise_amplitude;
  if (model.rng_seed) p.rng_seed = *model.rng_seed;
  if (initial.solid_phase >= p.phases) {
    bad("initial.solid_phase",
        "preset \"" + model.preset + "\" has only " +
            std::to_string(p.phases) + " phases");
  }
  return p;
}

// --- execution ---------------------------------------------------------------

std::uint64_t interior_checksum(const Array& a) {
  const auto& n = a.size();
  std::vector<double> buf;
  buf.reserve(std::size_t(n[0] * n[1] * n[2]) * std::size_t(a.components()));
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = 0; z < n[2]; ++z) {
      for (std::int64_t y = 0; y < n[1]; ++y) {
        for (std::int64_t x = 0; x < n[0]; ++x) {
          buf.push_back(a.at(x, y, z, c));
        }
      }
    }
  }
  return resilience::fnv1a64(buf.data(), buf.size() * sizeof(double));
}

Json JobResult::to_json() const {
  return Json::object()
      .set("name", Json(name))
      .set("steps", Json(steps))
      .set("phi_fnv1a64", Json(hex64(phi_checksum)))
      .set("mu_fnv1a64", Json(hex64(mu_checksum)))
      .set("run", run.to_json())
      .set("compile", compile.to_json());
}

namespace {

/// The initial-condition callbacks shared by both execution modes;
/// coordinates are global interior cells.
struct InitialCondition {
  const JobSpec& spec;
  const GrandChemParams& params;
  std::array<long long, 3> cells;

  double phi(long long x, long long y, long long z, int c) const {
    if (spec.initial.kind == "uniform") {
      return c == spec.initial.solid_phase ? 1.0 : 0.0;
    }
    // disk: distance over the model's spatial dims only
    const std::array<long long, 3> pos{x, y, z};
    double d2 = 0.0;
    long long min_extent = cells[0];
    for (int dim = 0; dim < params.dims; ++dim) {
      const double delta = double(pos[std::size_t(dim)]) -
                           0.5 * double(cells[std::size_t(dim)]);
      d2 += delta * delta;
      min_extent = std::min(min_extent, cells[std::size_t(dim)]);
    }
    const double radius = spec.initial.radius_fraction * double(min_extent);
    const double d = std::sqrt(d2) - radius;
    const double solid = interface_profile(
        d, spec.initial.interface_width_eps * params.epsilon);
    if (c == spec.initial.solid_phase) return solid;
    if (c == params.liquid_phase) return 1.0 - solid;
    return 0.0;
  }
};

}  // namespace

JobResult run_job(const JobSpec& spec, const ProgressSink& progress,
                  const CancelToken* cancel) {
  spec.validate();
  // A token that fired while the job sat in a queue stops it before any
  // compile work; the run loops re-check once per step after that.
  if (cancel != nullptr && cancel->requested()) {
    throw JobCancelled(cancel->kind(), cancel->reason());
  }
  const GrandChemParams params = spec.make_params();
  GrandChemModel model(params);

  // ~8 samples per job unless the spec pins a cadence explicitly.
  const long long every =
      spec.progress_every > 0 ? spec.progress_every
                              : std::max<long long>(1, spec.steps / 8);

  JobResult result;
  result.name = spec.name;
  result.steps = spec.steps;

  if (spec.mode == "distributed") {
    DistributedSimulation sim(model, spec.distributed, nullptr);
    if ((progress && spec.steps > 0) || cancel != nullptr) {
      sim.set_progress({progress, every, spec.steps, cancel});
    }
    const InitialCondition ic{spec, params, spec.distributed.cells};
    sim.init(
        [&](long long x, long long y, long long z, int c) {
          return ic.phi(x, y, z, c);
        },
        [](long long, long long, long long, int) { return 0.0; });
    result.run = sim.run(int(spec.steps));
    result.compile = sim.compiled().compile_report();
    const std::vector<double> phi = sim.gather_phi();
    result.phi_checksum =
        resilience::fnv1a64(phi.data(), phi.size() * sizeof(double));
    result.mu_checksum = 0;  // µ has no gather path
    return result;
  }

  // Measured autotuning (tune != "off"): resolve the winning knob
  // configuration — from the per-machine tuning cache when warm, via a
  // budgeted measured search otherwise — before the real Simulation is
  // built, so the job itself compiles the winner directly. Distributed
  // jobs skip tuning (the knob space is per-block; see DESIGN.md §13).
  SimulationOptions sim_opts = spec.simulation;
  const obs::TuningStats tuning = autotune_apply(model, sim_opts);

  Simulation sim(model, sim_opts);
  if ((progress && spec.steps > 0) || cancel != nullptr) {
    sim.set_progress({progress, every, spec.steps, cancel});
  }
  const InitialCondition ic{spec, params, spec.simulation.cells};
  sim.init_phi([&](long long x, long long y, long long z, int c) {
    return ic.phi(x, y, z, c);
  });
  sim.init_mu([](long long, long long, long long, int) { return 0.0; });
  result.run = sim.run(int(spec.steps));
  if (tuning.enabled) result.run.tuning = tuning;
  result.compile = sim.compiled().compile_report();
  result.phi_checksum = interior_checksum(sim.phi());
  result.mu_checksum = interior_checksum(sim.mu());
  return result;
}

}  // namespace pfc::app
