// pfc-jobspec-v1: the canonical, validated description of one simulation
// job — what the serve daemon accepts over the wire, what the examples'
// --jobspec flag loads, and what tools/report_check --jobspec validates.
//
// A spec names a model *preset* (the symbolic GrandChemParams cannot round-
// trip through JSON — PairTable/Anisotropy carry expression trees) plus a
// small set of scalar overrides, an initial condition, a step count, and
// the full driver options (app/options_json.hpp, lossless). Parsing is
// strict: unknown keys and type mismatches throw a pfc::Error naming the
// JSON path, so a typo fails at submit time rather than silently running
// defaults.
//
//   {
//     "schema": "pfc-jobspec-v1",
//     "name": "shrinking-disk",
//     "model": { "preset": "two_phase", "dims": 2,
//                "overrides": { "dt": 0.01 } },
//     "initial": { "kind": "disk", "radius_fraction": 0.3125 },
//     "steps": 100,
//     "mode": "single",
//     "simulation": { "cells": [64, 64, 1], "threads": 2, ... },
//     "distributed": { ... }
//   }
#pragma once

#include <optional>

#include "pfc/app/options_json.hpp"
#include "pfc/app/progress.hpp"
#include "pfc/obs/report.hpp"

namespace pfc::app {

inline constexpr const char* kJobSpecSchema = "pfc-jobspec-v1";

/// Model selection: a named preset (app/params.hpp) plus scalar overrides.
struct JobModelSpec {
  std::string preset = "two_phase";  ///< "two_phase" | "p1" | "p2"
  int dims = 2;
  std::optional<double> dt;
  std::optional<double> epsilon;
  std::optional<double> noise_amplitude;
  std::optional<std::uint64_t> rng_seed;
};

/// Initial condition. "disk": phase `solid_phase` fills a centered disk of
/// radius radius_fraction * min(cells), smooth interface_profile ramp of
/// width interface_width_eps * epsilon; the liquid phase gets the
/// complement, other phases 0. "uniform": every cell is pure `solid_phase`.
/// µ starts at 0 either way.
struct JobInitialSpec {
  std::string kind = "disk";  ///< "disk" | "uniform"
  double radius_fraction = 0.3125;
  double interface_width_eps = 2.5;
  int solid_phase = 1;
};

struct JobSpec {
  std::string name = "job";
  JobModelSpec model;
  JobInitialSpec initial;
  long long steps = 100;
  std::string mode = "single";  ///< "single" | "distributed"
  /// Steps between progress samples when a sink is attached (run_job's
  /// `progress` argument). 0 = caller default (the daemon picks ~steps/8).
  long long progress_every = 0;
  /// Accounting/quota identity of the submitter. The serve daemon keys
  /// its per-tenant admission limits and the pfc_tenant_inflight gauge on
  /// this; a spec that doesn't care inherits "default".
  std::string tenant = "default";
  /// Wall-clock budget measured from submit. 0 = none. A job past its
  /// deadline (queued or running) terminates with a "deadline_exceeded"
  /// event — running jobs stop cooperatively within one step cadence.
  double deadline_seconds = 0.0;
  SimulationOptions simulation;
  DistributedOptions distributed;

  /// Strict decode; throws pfc::Error naming the failing path.
  static JobSpec from_json(const obs::Json& j,
                           const std::string& where = "jobspec");
  /// Parses JSON text, decodes and validate()s.
  static JobSpec parse(const std::string& text);
  /// Writes every field (the canonical form two specs are diffed by).
  obs::Json to_json() const;
  /// Cross-field checks beyond per-key decoding (preset/mode/steps/...).
  void validate() const;

  /// Resolves the preset and applies the overrides.
  GrandChemParams make_params() const;
};

/// What one completed job reports back: the run + compile reports and
/// FNV-1a checksums of the interior φ/µ fields, so two runs of the same
/// spec can be compared bitwise without shipping field data. For
/// distributed jobs the φ checksum covers the gathered global field and
/// the µ checksum is 0 (µ has no gather path).
struct JobResult {
  std::string name;
  long long steps = 0;
  obs::RunReport run;
  obs::CompileReport compile;
  std::uint64_t phi_checksum = 0;
  std::uint64_t mu_checksum = 0;

  obs::Json to_json() const;
};

/// Runs one job start-to-finish in the calling thread (the serve workers
/// and the --jobspec example path both land here). When `progress` is
/// non-null the driver samples its step loop every
/// `spec.progress_every > 0 ? spec.progress_every : max(1, steps / 8)`
/// steps and invokes the sink on the stepping thread (see progress.hpp).
/// When `cancel` is non-null the run stops cooperatively (one step
/// cadence) once the token fires, raising JobCancelled (cancel.hpp).
JobResult run_job(const JobSpec& spec, const ProgressSink& progress = nullptr,
                  const CancelToken* cancel = nullptr);

/// FNV-1a over the interior cells of `a`, component-major (test utility;
/// what JobResult's checksums are computed with).
std::uint64_t interior_checksum(const Array& a);

}  // namespace pfc::app
