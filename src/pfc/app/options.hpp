// Shared driver configuration: the domain-level knobs every driver needs
// (cell extents, boundary handling, code-generation options), factored out
// of SimulationOptions / DistributedOptions. Plain aggregate — member
// assignment and brace-init both keep working — with named-setter chaining
// for call sites that prefer fluent construction:
//
//   auto opts = app::SimulationOptions{}.with_cells(128, 128).with_threads(4);
#pragma once

#include <array>

#include "pfc/app/compiler.hpp"
#include "pfc/grid/boundary.hpp"
#include "pfc/obs/health.hpp"
#include "pfc/obs/trace.hpp"
#include "pfc/perf/machine.hpp"
#include "pfc/resilience/resilience.hpp"

namespace pfc::app {

struct DomainOptions {
  /// Interior cells. For distributed runs this is the *global* domain; the
  /// block forest decomposes it.
  std::array<long long, 3> cells{64, 64, 1};
  grid::BoundaryKind boundary = grid::BoundaryKind::Periodic;
  CompileOptions compile;
  /// Span-timeline recording (chrome://tracing JSON); off by default.
  obs::TraceOptions trace;
  /// In-situ physics health monitoring; off by default.
  obs::HealthOptions health;
  /// Machine the ECM/drift layer models this run against. Defaults to the
  /// PFC_MACHINE env preset (perf::default_machine()), else Skylake-SP.
  perf::MachineModel machine = perf::default_machine();
  /// Checkpoint/restart and health-driven recovery; off by default.
  resilience::ResilienceOptions resilience;

  DomainOptions& with_cells(long long nx, long long ny, long long nz = 1) {
    cells = {nx, ny, nz};
    return *this;
  }
  DomainOptions& with_boundary(grid::BoundaryKind b) {
    boundary = b;
    return *this;
  }
  DomainOptions& with_compile(const CompileOptions& c) {
    compile = c;
    return *this;
  }
  DomainOptions& with_trace(const obs::TraceOptions& t) {
    trace = t;
    return *this;
  }
  DomainOptions& with_health(const obs::HealthOptions& h) {
    health = h;
    return *this;
  }
  DomainOptions& with_machine(const perf::MachineModel& m) {
    machine = m;
    return *this;
  }
  DomainOptions& with_resilience(const resilience::ResilienceOptions& r) {
    resilience = r;
    return *this;
  }
};

}  // namespace pfc::app
