#include "pfc/app/options_json.hpp"

#include <cmath>

#include "pfc/support/assert.hpp"

namespace pfc::app {

using obs::Json;

namespace {

// --- strict readers ----------------------------------------------------------
// from_json tolerates absent keys (they keep the default) but rejects
// unknown keys and type mismatches, naming the full path in the error.

[[noreturn]] void bad(const std::string& where, const std::string& msg) {
  throw Error("jobspec: " + where + ": " + msg);
}

void require_object(const Json& j, const std::string& where) {
  if (!j.is_object()) bad(where, "expected an object");
}

void check_keys(const Json& j, std::initializer_list<const char*> allowed,
                const std::string& where) {
  for (const auto& [key, v] : j.items()) {
    (void)v;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) bad(where + "." + key, "unknown key");
  }
}

double read_num(const Json& j, const char* key, double def,
                const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_number()) bad(where + "." + key, "expected a number");
  return v->number();
}

long long read_int(const Json& j, const char* key, long long def,
                   const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_number()) bad(where + "." + key, "expected a number");
  const double x = v->number();
  if (x != std::floor(x)) bad(where + "." + key, "expected an integer");
  return (long long)(x);
}

bool read_bool(const Json& j, const char* key, bool def,
               const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (v->kind() != Json::Kind::Bool) bad(where + "." + key, "expected a bool");
  return v->boolean();
}

std::string read_str(const Json& j, const char* key, const std::string& def,
                     const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_string()) bad(where + "." + key, "expected a string");
  return v->str();
}

template <typename T, std::size_t N>
std::array<T, N> read_array(const Json& j, const char* key,
                            const std::array<T, N>& def,
                            const std::string& where) {
  const Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_array() || v->elements().size() != N) {
    bad(where + "." + key,
        "expected an array of " + std::to_string(N) + " numbers");
  }
  std::array<T, N> out{};
  for (std::size_t i = 0; i < N; ++i) {
    const Json& e = v->elements()[i];
    if (!e.is_number()) {
      bad(where + "." + key + "[" + std::to_string(i) + "]",
          "expected a number");
    }
    out[i] = T(e.number());
  }
  return out;
}

template <typename T, std::size_t N>
Json array_json(const std::array<T, N>& a) {
  Json out = Json::array();
  for (const T& v : a) out.push(Json(double(v)));
  return out;
}

}  // namespace

// --- enum spellings ----------------------------------------------------------

const char* backend_name(Backend b) {
  return b == Backend::Jit ? "jit" : "interpreter";
}
Backend parse_backend(const std::string& name) {
  if (name == "jit") return Backend::Jit;
  if (name == "interpreter") return Backend::Interpreter;
  throw Error("unknown backend \"" + name + "\" (valid: jit, interpreter)");
}

const char* boundary_name(grid::BoundaryKind b) {
  return b == grid::BoundaryKind::Periodic ? "periodic" : "zero_gradient";
}
grid::BoundaryKind parse_boundary(const std::string& name) {
  if (name == "periodic") return grid::BoundaryKind::Periodic;
  if (name == "zero_gradient") return grid::BoundaryKind::ZeroGradient;
  throw Error("unknown boundary \"" + name +
              "\" (valid: periodic, zero_gradient)");
}

const char* time_scheme_name(TimeScheme s) {
  return s == TimeScheme::Euler ? "euler" : "heun";
}
TimeScheme parse_time_scheme(const std::string& name) {
  if (name == "euler") return TimeScheme::Euler;
  if (name == "heun") return TimeScheme::Heun;
  throw Error("unknown time_scheme \"" + name + "\" (valid: euler, heun)");
}

const char* overlap_mode_name(OverlapMode m) {
  return m == OverlapMode::Off ? "off" : "interior_frontier";
}
OverlapMode parse_overlap_mode(const std::string& name) {
  if (name == "off") return OverlapMode::Off;
  if (name == "interior_frontier") return OverlapMode::InteriorFrontier;
  throw Error("unknown overlap mode \"" + name +
              "\" (valid: off, interior_frontier)");
}

const char* dispatch_name(Dispatch d) {
  return d == Dispatch::Static ? "static" : "dynamic";
}
Dispatch parse_dispatch(const std::string& name) {
  if (name == "static") return Dispatch::Static;
  if (name == "dynamic") return Dispatch::Dynamic;
  throw Error("unknown dispatch \"" + name + "\" (valid: dynamic, static)");
}

const char* tune_mode_name(TuneMode m) {
  switch (m) {
    case TuneMode::Cached: return "cached";
    case TuneMode::Full: return "full";
    default: return "off";
  }
}
TuneMode parse_tune_mode(const std::string& name) {
  if (name == "off") return TuneMode::Off;
  if (name == "cached") return TuneMode::Cached;
  if (name == "full") return TuneMode::Full;
  throw Error("unknown tune mode \"" + name + "\" (valid: off, cached, full)");
}

const char* blocking_mode_name(BlockingMode m) {
  switch (m) {
    case BlockingMode::Auto: return "auto";
    case BlockingMode::Fixed: return "fixed";
    default: return "off";
  }
}
BlockingMode parse_blocking_mode(const std::string& name) {
  if (name == "off") return BlockingMode::Off;
  if (name == "auto") return BlockingMode::Auto;
  if (name == "fixed") return BlockingMode::Fixed;
  throw Error("unknown blocking mode \"" + name +
              "\" (valid: off, auto, fixed)");
}

// --- compile -----------------------------------------------------------------

Json compile_options_to_json(const CompileOptions& o) {
  return Json::object()
      .set("backend", Json(backend_name(o.backend)))
      .set("split_phi", Json(o.split_phi))
      .set("split_mu", Json(o.split_mu))
      .set("fast_math", Json(o.fast_math))
      .set("cse", Json(o.cse))
      .set("hoist_invariants", Json(o.hoist_invariants))
      .set("clamp_phi", Json(o.clamp_phi))
      .set("schedule", Json(o.schedule))
      .set("schedule_beam_width", Json(std::uint64_t(o.schedule_beam_width)))
      .set("vector_width", Json(o.vector_width))
      .set("streaming_stores", Json(o.streaming_stores))
      .set("jit_extra_flags", Json(o.jit_extra_flags))
      .set("fail_jit_attempts", Json(o.fail_jit_attempts))
      .set("cache_dir", Json(o.cache_dir))
      .set("cache_max_bytes", Json(o.cache_max_bytes))
      .set("tune", Json(tune_mode_name(o.tune)));
}

CompileOptions compile_options_from_json(const Json& j,
                                         const std::string& where) {
  require_object(j, where);
  check_keys(j,
             {"backend", "split_phi", "split_mu", "fast_math", "cse",
              "hoist_invariants", "clamp_phi", "schedule",
              "schedule_beam_width", "vector_width", "streaming_stores",
              "jit_extra_flags", "fail_jit_attempts", "cache_dir",
              "cache_max_bytes", "tune"},
             where);
  CompileOptions o;
  o.backend = parse_backend(read_str(j, "backend", backend_name(o.backend), where));
  o.split_phi = read_bool(j, "split_phi", o.split_phi, where);
  o.split_mu = read_bool(j, "split_mu", o.split_mu, where);
  o.fast_math = read_bool(j, "fast_math", o.fast_math, where);
  o.cse = read_bool(j, "cse", o.cse, where);
  o.hoist_invariants = read_bool(j, "hoist_invariants", o.hoist_invariants, where);
  o.clamp_phi = read_bool(j, "clamp_phi", o.clamp_phi, where);
  o.schedule = read_bool(j, "schedule", o.schedule, where);
  o.schedule_beam_width = std::size_t(
      read_int(j, "schedule_beam_width", (long long)(o.schedule_beam_width), where));
  o.vector_width = int(read_int(j, "vector_width", o.vector_width, where));
  if (o.vector_width != 0 && o.vector_width != 1 && o.vector_width != 2 &&
      o.vector_width != 4 && o.vector_width != 8) {
    bad(where + ".vector_width", "must be 0 (auto), 1, 2, 4 or 8");
  }
  o.streaming_stores = read_bool(j, "streaming_stores", o.streaming_stores, where);
  o.jit_extra_flags = read_str(j, "jit_extra_flags", o.jit_extra_flags, where);
  o.fail_jit_attempts =
      int(read_int(j, "fail_jit_attempts", o.fail_jit_attempts, where));
  o.cache_dir = read_str(j, "cache_dir", o.cache_dir, where);
  o.cache_max_bytes = std::uint64_t(
      read_int(j, "cache_max_bytes", (long long)(o.cache_max_bytes), where));
  o.tune = parse_tune_mode(read_str(j, "tune", tune_mode_name(o.tune), where));
  return o;
}

// --- trace -------------------------------------------------------------------

Json trace_options_to_json(const obs::TraceOptions& o) {
  return Json::object()
      .set("enabled", Json(o.enabled))
      .set("sample_every", Json(o.sample_every))
      .set("max_events", Json(std::uint64_t(o.max_events)))
      .set("path", Json(o.path));
}

obs::TraceOptions trace_options_from_json(const Json& j,
                                          const std::string& where) {
  require_object(j, where);
  check_keys(j, {"enabled", "sample_every", "max_events", "path"}, where);
  obs::TraceOptions o;
  o.enabled = read_bool(j, "enabled", o.enabled, where);
  o.sample_every = int(read_int(j, "sample_every", o.sample_every, where));
  o.max_events =
      std::size_t(read_int(j, "max_events", (long long)(o.max_events), where));
  o.path = read_str(j, "path", o.path, where);
  return o;
}

// --- health ------------------------------------------------------------------

Json health_options_to_json(const obs::HealthOptions& o) {
  return Json::object()
      .set("enabled", Json(o.enabled))
      .set("every_n_steps", Json(o.every_n_steps))
      .set("policy", Json(obs::health_policy_name(o.policy)))
      .set("phase_sum_tol", Json(o.phase_sum_tol))
      .set("simplex_tol", Json(o.simplex_tol))
      .set("mu_limit", Json(o.mu_limit));
}

obs::HealthOptions health_options_from_json(const Json& j,
                                            const std::string& where) {
  require_object(j, where);
  check_keys(j,
             {"enabled", "every_n_steps", "policy", "phase_sum_tol",
              "simplex_tol", "mu_limit"},
             where);
  obs::HealthOptions o;
  o.enabled = read_bool(j, "enabled", o.enabled, where);
  o.every_n_steps = int(read_int(j, "every_n_steps", o.every_n_steps, where));
  o.policy = obs::parse_health_policy(
      read_str(j, "policy", obs::health_policy_name(o.policy), where));
  o.phase_sum_tol = read_num(j, "phase_sum_tol", o.phase_sum_tol, where);
  o.simplex_tol = read_num(j, "simplex_tol", o.simplex_tol, where);
  o.mu_limit = read_num(j, "mu_limit", o.mu_limit, where);
  return o;
}

// --- resilience --------------------------------------------------------------

Json resilience_options_to_json(const resilience::ResilienceOptions& o) {
  const Json faults =
      Json::object()
          .set("nan_step", Json(double(o.faults.nan_step)))
          .set("nan_cell", array_json(o.faults.nan_cell))
          .set("fail_jit_attempts", Json(o.faults.fail_jit_attempts))
          .set("truncate_checkpoint", Json(o.faults.truncate_checkpoint));
  return Json::object()
      .set("checkpoint_every", Json(o.checkpoint_every))
      .set("directory", Json(o.directory))
      .set("restart_from", Json(o.restart_from))
      .set("max_retries", Json(o.max_retries))
      .set("dt_shrink", Json(o.dt_shrink))
      .set("faults", faults);
}

resilience::ResilienceOptions resilience_options_from_json(
    const Json& j, const std::string& where) {
  require_object(j, where);
  check_keys(j,
             {"checkpoint_every", "directory", "restart_from", "max_retries",
              "dt_shrink", "faults"},
             where);
  resilience::ResilienceOptions o;
  o.checkpoint_every =
      int(read_int(j, "checkpoint_every", o.checkpoint_every, where));
  o.directory = read_str(j, "directory", o.directory, where);
  o.restart_from = read_str(j, "restart_from", o.restart_from, where);
  o.max_retries = int(read_int(j, "max_retries", o.max_retries, where));
  o.dt_shrink = read_num(j, "dt_shrink", o.dt_shrink, where);
  if (const Json* f = j.find("faults")) {
    const std::string fw = where + ".faults";
    require_object(*f, fw);
    check_keys(*f,
               {"nan_step", "nan_cell", "fail_jit_attempts",
                "truncate_checkpoint"},
               fw);
    o.faults.nan_step = read_int(*f, "nan_step", o.faults.nan_step, fw);
    o.faults.nan_cell = read_array(*f, "nan_cell", o.faults.nan_cell, fw);
    o.faults.fail_jit_attempts =
        int(read_int(*f, "fail_jit_attempts", o.faults.fail_jit_attempts, fw));
    o.faults.truncate_checkpoint = read_bool(
        *f, "truncate_checkpoint", o.faults.truncate_checkpoint, fw);
  }
  return o;
}

// --- machine -----------------------------------------------------------------

Json machine_model_to_json(const perf::MachineModel& m) {
  Json caches = Json::array();
  for (const perf::CacheLevel& c : m.caches) {
    caches.push(Json::object()
                    .set("name", Json(c.name))
                    .set("size_bytes", Json(double(c.size_bytes)))
                    .set("cycles_per_line", Json(c.cycles_per_line)));
  }
  return Json::object()
      .set("name", Json(m.name))
      .set("freq_ghz", Json(m.freq_ghz))
      .set("cores", Json(m.cores))
      .set("simd_doubles", Json(m.simd_doubles))
      .set("line_bytes", Json(double(m.line_bytes)))
      .set("add_rtp", Json(m.add_rtp))
      .set("mul_rtp", Json(m.mul_rtp))
      .set("div_rtp", Json(m.div_rtp))
      .set("sqrt_rtp", Json(m.sqrt_rtp))
      .set("rsqrt_rtp", Json(m.rsqrt_rtp))
      .set("blend_rtp", Json(m.blend_rtp))
      .set("load_rtp", Json(m.load_rtp))
      .set("store_rtp", Json(m.store_rtp))
      .set("caches", caches)
      .set("mem_bw_gbytes", Json(m.mem_bw_gbytes));
}

perf::MachineModel machine_model_from_json(const Json& j,
                                           const std::string& where) {
  // Two accepted shapes: a preset string ("skylake_sp", "zen2", ...) or the
  // full field set (the lossless round-trip of a customized model).
  if (j.is_string()) return perf::MachineModel::by_name(j.str());
  require_object(j, where);
  check_keys(j,
             {"name", "freq_ghz", "cores", "simd_doubles", "line_bytes",
              "add_rtp", "mul_rtp", "div_rtp", "sqrt_rtp", "rsqrt_rtp",
              "blend_rtp", "load_rtp", "store_rtp", "caches",
              "mem_bw_gbytes"},
             where);
  perf::MachineModel m;
  m.name = read_str(j, "name", m.name, where);
  m.freq_ghz = read_num(j, "freq_ghz", m.freq_ghz, where);
  m.cores = int(read_int(j, "cores", m.cores, where));
  m.simd_doubles = int(read_int(j, "simd_doubles", m.simd_doubles, where));
  m.line_bytes = long(read_int(j, "line_bytes", m.line_bytes, where));
  m.add_rtp = read_num(j, "add_rtp", m.add_rtp, where);
  m.mul_rtp = read_num(j, "mul_rtp", m.mul_rtp, where);
  m.div_rtp = read_num(j, "div_rtp", m.div_rtp, where);
  m.sqrt_rtp = read_num(j, "sqrt_rtp", m.sqrt_rtp, where);
  m.rsqrt_rtp = read_num(j, "rsqrt_rtp", m.rsqrt_rtp, where);
  m.blend_rtp = read_num(j, "blend_rtp", m.blend_rtp, where);
  m.load_rtp = read_num(j, "load_rtp", m.load_rtp, where);
  m.store_rtp = read_num(j, "store_rtp", m.store_rtp, where);
  m.mem_bw_gbytes = read_num(j, "mem_bw_gbytes", m.mem_bw_gbytes, where);
  if (const Json* caches = j.find("caches")) {
    const std::string cw = where + ".caches";
    if (!caches->is_array()) bad(cw, "expected an array");
    m.caches.clear();
    for (std::size_t i = 0; i < caches->elements().size(); ++i) {
      const Json& e = caches->elements()[i];
      const std::string ew = cw + "[" + std::to_string(i) + "]";
      require_object(e, ew);
      check_keys(e, {"name", "size_bytes", "cycles_per_line"}, ew);
      perf::CacheLevel c;
      c.name = read_str(e, "name", c.name, ew);
      c.size_bytes = long(read_int(e, "size_bytes", c.size_bytes, ew));
      c.cycles_per_line =
          read_num(e, "cycles_per_line", c.cycles_per_line, ew);
      m.caches.push_back(std::move(c));
    }
  }
  return m;
}

// --- domain base + driver aggregates -----------------------------------------

namespace {

Json domain_to_json(const DomainOptions& o) {
  return Json::object()
      .set("cells", array_json(o.cells))
      .set("boundary", Json(boundary_name(o.boundary)))
      .set("compile", compile_options_to_json(o.compile))
      .set("trace", trace_options_to_json(o.trace))
      .set("health", health_options_to_json(o.health))
      .set("machine", machine_model_to_json(o.machine))
      .set("resilience", resilience_options_to_json(o.resilience));
}

void domain_from_json(const Json& j, DomainOptions& o,
                      const std::string& where) {
  o.cells = read_array(j, "cells", o.cells, where);
  if (o.cells[0] < 1 || o.cells[1] < 1 || o.cells[2] < 1) {
    bad(where + ".cells", "extents must be >= 1");
  }
  o.boundary =
      parse_boundary(read_str(j, "boundary", boundary_name(o.boundary), where));
  if (const Json* v = j.find("compile")) {
    o.compile = compile_options_from_json(*v, where + ".compile");
  }
  if (const Json* v = j.find("trace")) {
    o.trace = trace_options_from_json(*v, where + ".trace");
  }
  if (const Json* v = j.find("health")) {
    o.health = health_options_from_json(*v, where + ".health");
  }
  if (const Json* v = j.find("machine")) {
    o.machine = machine_model_from_json(*v, where + ".machine");
  }
  if (const Json* v = j.find("resilience")) {
    o.resilience = resilience_options_from_json(*v, where + ".resilience");
  }
}

constexpr std::initializer_list<const char*> kDomainKeys = {
    "cells", "boundary", "compile", "trace", "health", "machine",
    "resilience"};

}  // namespace

Json simulation_options_to_json(const SimulationOptions& o) {
  return domain_to_json(o)
      .set("threads", Json(o.threads))
      .set("time_scheme", Json(time_scheme_name(o.time_scheme)))
      .set("block_offset", array_json(o.block_offset))
      .set("pin", Json(support::pin_policy_name(o.pin)))
      .set("first_touch", Json(o.first_touch))
      .set("dispatch", Json(dispatch_name(o.dispatch)))
      .set("blocking", Json(blocking_mode_name(o.blocking)))
      .set("blocking_tile_rows", Json(double(o.blocking_tile_rows)));
}

SimulationOptions simulation_options_from_json(const Json& j,
                                               const std::string& where) {
  require_object(j, where);
  std::vector<const char*> allowed(kDomainKeys);
  allowed.insert(allowed.end(),
                 {"threads", "time_scheme", "block_offset", "pin",
                  "first_touch", "dispatch", "blocking",
                  "blocking_tile_rows"});
  for (const auto& [key, v] : j.items()) {
    (void)v;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) bad(where + "." + key, "unknown key");
  }
  SimulationOptions o;
  domain_from_json(j, o, where);
  o.threads = int(read_int(j, "threads", o.threads, where));
  if (o.threads < 1) bad(where + ".threads", "must be >= 1");
  o.time_scheme = parse_time_scheme(
      read_str(j, "time_scheme", time_scheme_name(o.time_scheme), where));
  o.block_offset = read_array(j, "block_offset", o.block_offset, where);
  o.pin = support::parse_pin_policy(
      read_str(j, "pin", support::pin_policy_name(o.pin), where));
  o.first_touch = read_bool(j, "first_touch", o.first_touch, where);
  o.dispatch = parse_dispatch(
      read_str(j, "dispatch", dispatch_name(o.dispatch), where));
  o.blocking = parse_blocking_mode(
      read_str(j, "blocking", blocking_mode_name(o.blocking), where));
  o.blocking_tile_rows = read_int(j, "blocking_tile_rows",
                                  o.blocking_tile_rows, where);
  if (o.blocking_tile_rows < 0) {
    bad(where + ".blocking_tile_rows", "must be >= 0");
  }
  return o;
}

Json distributed_options_to_json(const DistributedOptions& o) {
  return domain_to_json(o)
      .set("blocks_per_dim", array_json(o.blocks_per_dim))
      .set("overlap", Json(overlap_mode_name(o.overlap)))
      .set("threads", Json(o.threads));
}

DistributedOptions distributed_options_from_json(const Json& j,
                                                 const std::string& where) {
  require_object(j, where);
  std::vector<const char*> allowed(kDomainKeys);
  allowed.insert(allowed.end(), {"blocks_per_dim", "overlap", "threads"});
  for (const auto& [key, v] : j.items()) {
    (void)v;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) bad(where + "." + key, "unknown key");
  }
  DistributedOptions o;
  domain_from_json(j, o, where);
  o.blocks_per_dim = read_array(j, "blocks_per_dim", o.blocks_per_dim, where);
  if (o.blocks_per_dim[0] < 1 || o.blocks_per_dim[1] < 1 ||
      o.blocks_per_dim[2] < 1) {
    bad(where + ".blocks_per_dim", "block counts must be >= 1");
  }
  o.overlap = parse_overlap_mode(
      read_str(j, "overlap", overlap_mode_name(o.overlap), where));
  o.threads = int(read_int(j, "threads", o.threads, where));
  if (o.threads < 1) bad(where + ".threads", "must be >= 1");
  return o;
}

}  // namespace pfc::app
