// Lossless JSON round-trips for every driver-facing options aggregate —
// the canonical representation the pfc-jobspec-v1 schema (app/jobspec.hpp),
// the examples' --jobspec flags, the serve daemon and the tests all
// consume. One rule everywhere:
//
//   * to_json writes every field, so two specs are comparable as plain
//     JSON and the serialization doubles as documentation of the knob set;
//   * from_json fills missing keys with the field's default but rejects
//     unknown keys and type mismatches with a pfc::Error naming the path
//     ("compile.vector_width: expected a number") — a typo in a job spec
//     fails fast at submit time instead of silently running the default.
//
// The invariant the options_roundtrip ctest pins:
//   from_json(to_json(opts)) == opts, field for field.
#pragma once

#include "pfc/app/distributed.hpp"
#include "pfc/app/simulation.hpp"
#include "pfc/obs/json.hpp"

namespace pfc::app {

// --- leaf option blocks ------------------------------------------------------
obs::Json compile_options_to_json(const CompileOptions& o);
CompileOptions compile_options_from_json(const obs::Json& j,
                                         const std::string& where = "compile");

obs::Json trace_options_to_json(const obs::TraceOptions& o);
obs::TraceOptions trace_options_from_json(const obs::Json& j,
                                          const std::string& where = "trace");

obs::Json health_options_to_json(const obs::HealthOptions& o);
obs::HealthOptions health_options_from_json(
    const obs::Json& j, const std::string& where = "health");

obs::Json resilience_options_to_json(const resilience::ResilienceOptions& o);
resilience::ResilienceOptions resilience_options_from_json(
    const obs::Json& j, const std::string& where = "resilience");

obs::Json machine_model_to_json(const perf::MachineModel& m);
perf::MachineModel machine_model_from_json(
    const obs::Json& j, const std::string& where = "machine");

// --- driver aggregates (include the DomainOptions base) ----------------------
obs::Json simulation_options_to_json(const SimulationOptions& o);
SimulationOptions simulation_options_from_json(
    const obs::Json& j, const std::string& where = "simulation");

obs::Json distributed_options_to_json(const DistributedOptions& o);
DistributedOptions distributed_options_from_json(
    const obs::Json& j, const std::string& where = "distributed");

// --- enum spellings (shared with the jobspec and the CLI flags) --------------
const char* backend_name(Backend b);
Backend parse_backend(const std::string& name);
const char* boundary_name(grid::BoundaryKind b);
grid::BoundaryKind parse_boundary(const std::string& name);
const char* time_scheme_name(TimeScheme s);
TimeScheme parse_time_scheme(const std::string& name);
const char* overlap_mode_name(OverlapMode m);
OverlapMode parse_overlap_mode(const std::string& name);
const char* dispatch_name(Dispatch d);
Dispatch parse_dispatch(const std::string& name);
const char* tune_mode_name(TuneMode m);
TuneMode parse_tune_mode(const std::string& name);
const char* blocking_mode_name(BlockingMode m);
BlockingMode parse_blocking_mode(const std::string& name);

}  // namespace pfc::app
