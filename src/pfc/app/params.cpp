#include "pfc/app/params.hpp"

namespace pfc::app {

using continuum::Matrix;
using continuum::Vec;
using sym::num;

namespace {

/// Diagonal matrix of size n.
Matrix diag(int n, double v, double off = 0.0) {
  Matrix m;
  m.assign(std::size_t(n), std::vector<sym::Expr>(std::size_t(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      m[std::size_t(i)][std::size_t(j)] = num(i == j ? v : off);
    }
  }
  return m;
}

Vec vec(std::initializer_list<double> vals) {
  Vec v;
  for (double x : vals) v.push_back(num(x));
  return v;
}

}  // namespace

GrandChemParams make_p1(int dims) {
  GrandChemParams p;
  p.phases = 4;       // liquid + three solid phases (ternary eutectic)
  p.components = 3;   // ternary alloy: two independent chemical potentials
  p.dims = dims;
  p.liquid_phase = 0;
  p.dx = 1.0;
  p.dt = 0.01;
  p.epsilon = 4.0;

  p.gamma.emplace(4, num(1.0));
  // slightly asymmetric solid-solid interfacial energies
  p.gamma->set(1, 2, num(0.9));
  p.gamma->set(1, 3, num(1.1));
  p.gamma->set(2, 3, num(0.95));
  p.gamma_triple = num(12.0);  // suppress spurious third phases

  p.tau.emplace(4, num(1.0));
  p.tau->set(0, 1, num(0.8));
  p.tau->set(0, 2, num(0.85));
  p.tau->set(0, 3, num(0.9));

  // parabolic grand-potential fits: psi_a = mu^T A(T) mu + B(T)·mu + C(T)
  // liquid has shallower curvature and a temperature-sensitive offset so
  // that undercooling drives solidification.
  const double curv[4] = {0.8, 1.0, 1.0, 1.0};
  const double b0_0[4] = {0.00, -0.35, 0.25, 0.10};
  const double b0_1[4] = {0.00, 0.20, -0.30, 0.10};
  // dC/dT: larger for solids, so undercooling (T < 0) favors them
  const double c1[4] = {0.50, 1.20, 1.20, 1.20};
  for (int a = 0; a < 4; ++a) {
    ParabolicFit fit;
    fit.a0 = diag(2, curv[a], 0.1);
    fit.a1 = diag(2, 0.02);
    fit.b0 = vec({b0_0[a], b0_1[a]});
    fit.b1 = vec({0.01, -0.01});
    fit.c0 = num(0.0);
    fit.c1 = num(c1[a]);
    p.fits.push_back(fit);
  }
  p.diffusivity = {num(1.0), num(0.05), num(0.05), num(0.05)};

  // analytic temperature: frozen gradient pulled with velocity v
  p.temp0 = -0.2;
  p.temp_gradient = 0.005;
  p.pull_velocity = 0.5;

  p.noise_amplitude = 0.0;
  return p;
}

GrandChemParams make_p2(int dims) {
  GrandChemParams p;
  p.phases = 3;      // liquid + two solid orientations
  p.components = 2;  // binary alloy (Al-Cu like): one chemical potential
  p.dims = dims;
  p.liquid_phase = 0;
  p.dx = 1.0;
  p.dt = 0.01;
  p.epsilon = 4.0;

  p.gamma.emplace(3, num(1.0));
  p.gamma->set(1, 2, num(1.2));  // grain boundary stiffer
  p.gamma_triple = num(10.0);

  p.tau.emplace(3, num(1.0));
  p.tau->set(0, 1, num(0.7));
  p.tau->set(0, 2, num(0.7));

  // cubic anisotropy on the solid-liquid pairs drives dendrites
  p.anisotropy.assign(3, Anisotropy{});
  // pair order for N=3: (0,1), (0,2), (1,2)
  p.anisotropy[0] = {Anisotropy::Type::Cubic, num(0.3)};
  p.anisotropy[1] = {Anisotropy::Type::Cubic, num(0.3)};
  p.anisotropy[2] = {};  // solid-solid boundary isotropic

  const double curv[3] = {0.8, 1.0, 1.0};
  const double b0[3] = {0.0, -0.4, -0.4};
  const double c1[3] = {0.5, 1.5, 1.5};  // strong melt entropy gap
  for (int a = 0; a < 3; ++a) {
    ParabolicFit fit;
    fit.a0 = diag(1, curv[a]);
    fit.a1 = diag(1, 0.02);
    fit.b0 = vec({b0[a]});
    fit.b1 = vec({0.01});
    fit.c0 = num(0.0);
    fit.c1 = num(c1[a]);
    p.fits.push_back(fit);
  }
  p.diffusivity = {num(1.0), num(0.05), num(0.05)};

  p.temp0 = -0.3;
  p.temp_gradient = 0.004;
  p.pull_velocity = 0.4;

  p.noise_amplitude = 0.02;  // side-branching noise (paper §3.2)
  return p;
}

GrandChemParams make_two_phase(int dims) {
  GrandChemParams p;
  p.phases = 2;
  p.components = 2;
  p.dims = dims;
  p.liquid_phase = 0;
  p.dx = 1.0;
  p.dt = 0.02;
  p.epsilon = 4.0;

  p.gamma.emplace(2, num(1.0));
  p.tau.emplace(2, num(1.0));
  p.gamma_triple = num(0.0);

  // identical fits for both phases: zero chemical driving force, so the
  // interface moves by curvature only
  for (int a = 0; a < 2; ++a) {
    ParabolicFit fit;
    fit.a0 = diag(1, 1.0);
    fit.a1 = diag(1, 0.0);
    fit.b0 = vec({0.0});
    fit.b1 = vec({0.0});
    p.fits.push_back(fit);
  }
  p.diffusivity = {num(1.0), num(1.0)};
  p.temp0 = 0.0;
  p.temp_gradient = 0.0;
  p.pull_velocity = 0.0;
  return p;
}

}  // namespace pfc::app
