// Reference parameterizations of the grand-chemical model (paper §5.1):
//
//   P1 — 4 phases, 3 components, isotropic gradient energy (A_αβ = 1),
//        analytic temperature gradient along the last axis depending on
//        time and one spatial coordinate: the ternary eutectic directional
//        solidification setup of Bauer et al. 2015 (the manually-optimized
//        baseline the paper reproduces and beats).
//   P2 — 3 phases, 2 components, *anisotropic* (cubic) gradient energy:
//        binary-alloy dendritic solidification (Al-Cu-like).
//
// Values are dimensionless, chosen for numerical stability of the explicit
// scheme at dx = 1, not fitted to a CALPHAD database (the paper itself
// replaces CALPHAD calls by these parabolic fits, Eq. 6).
#pragma once

#include "pfc/app/grandchem.hpp"

namespace pfc::app {

/// Ternary eutectic directional solidification (paper setup P1).
GrandChemParams make_p1(int dims = 3);

/// Dendritic solidification with cubic anisotropy (paper setup P2).
GrandChemParams make_p2(int dims = 3);

/// Minimal two-phase model (no chemistry-driven asymmetry, flat driving
/// force): interface motion is pure mean-curvature flow — the standard
/// verification problem (shrinking-circle law).
GrandChemParams make_two_phase(int dims = 2);

}  // namespace pfc::app
