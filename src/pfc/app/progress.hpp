// In-flight progress reporting of a running simulation: the drivers
// (Simulation / DistributedSimulation) sample their own step loop every
// `every` steps and hand the sample to a caller-provided ProgressSink.
// The serve daemon threads a sink through app::run_job so each job streams
// periodic "progress" events (step, fraction, live MLUPS, ETA from a
// step-time EWMA, health findings) to its submitter while it runs.
//
// The sink is invoked on the stepping thread — keep it cheap (the daemon's
// sink writes one line to a socket and updates two gauges). Samples are
// only emitted for strictly increasing steps, so a health-driven rollback
// never produces a backwards progress stream.
#pragma once

#include <cstdint>
#include <functional>

#include "pfc/app/cancel.hpp"

namespace pfc::app {

/// One periodic sample of a running simulation.
struct ProgressUpdate {
  long long step = 0;         ///< absolute step index just completed
  long long steps_total = 0;  ///< target step count (0 = unknown)
  double fraction = 0.0;      ///< step / steps_total, 0 when unknown
  /// Live throughput: cells_per_step / EWMA step wall time, in MLUP/s.
  double mlups = 0.0;
  double step_seconds_ewma = 0.0;  ///< smoothed wall time of one step
  /// Remaining steps x EWMA step time (0 when steps_total is unknown).
  double eta_seconds = 0.0;
  std::uint64_t health_violations = 0;  ///< cumulative monitor findings
};

using ProgressSink = std::function<void(const ProgressUpdate&)>;

/// Driver-side configuration (Simulation::set_progress /
/// DistributedSimulation::set_progress).
struct ProgressOptions {
  ProgressSink sink;          ///< null = progress reporting off
  long long every = 0;        ///< steps between samples (<= 0 = off)
  long long steps_total = 0;  ///< fraction/ETA denominator (0 = unknown)
  /// Cooperative cancellation (cancel.hpp): the run loop checks the token
  /// once per step and raises JobCancelled when it fires — after writing
  /// a final checkpoint if the run configured a checkpoint directory.
  /// Null = not cancellable. Checked even when `sink` is null.
  const CancelToken* cancel = nullptr;
};

/// EWMA smoothing factor for the per-step wall time (weight of the newest
/// step). 0.2 settles in ~10 steps without jittering on one slow step.
inline constexpr double kProgressEwmaAlpha = 0.2;

}  // namespace pfc::app
