#include "pfc/app/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "pfc/perf/drift.hpp"
#include "pfc/support/timer.hpp"

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

namespace pfc::app {

namespace {

std::array<std::int64_t, 3> flux_size(const std::array<long long, 3>& n,
                                      int dims) {
  std::array<std::int64_t, 3> s{1, 1, 1};
  for (int d = 0; d < dims; ++d) s[std::size_t(d)] = n[std::size_t(d)] + 1;
  return s;
}

// JIT fault injection must reach the ctor's compile, which runs in the
// member-init list — fold the plan into the compile options up front.
CompileOptions compile_opts_with_faults(const SimulationOptions& o) {
  CompileOptions c = o.compile;
  c.fail_jit_attempts =
      resilience::effective_faults(o.resilience).fail_jit_attempts;
  return c;
}

}  // namespace

double interface_profile(double signed_distance, double width) {
  if (signed_distance <= -width / 2) return 1.0;
  if (signed_distance >= width / 2) return 0.0;
  return 0.5 - 0.5 * std::sin(M_PI * signed_distance / width);
}

Simulation::Simulation(GrandChemModel model, const SimulationOptions& opts)
    : model_(std::move(model)),
      opts_(opts),
      compiled_(ModelCompiler(compile_opts_with_faults(opts)).compile(model_)),
      pool_(opts.threads > 1
                ? std::make_unique<ThreadPool>(
                      ThreadPoolOptions{opts.threads, opts.pin})
                : nullptr),
      phi_src_arr_(model_.phi_src(),
                   {opts.cells[0], opts.cells[1], opts.cells[2]}, 1,
                   first_touch_pool()),
      phi_dst_arr_(model_.phi_dst(),
                   {opts.cells[0], opts.cells[1], opts.cells[2]}, 1,
                   first_touch_pool()),
      mu_src_arr_(model_.mu_src(),
                  {opts.cells[0], opts.cells[1], opts.cells[2]}, 1,
                  first_touch_pool()),
      mu_dst_arr_(model_.mu_dst(),
                  {opts.cells[0], opts.cells[1], opts.cells[2]}, 1,
                  first_touch_pool()),
      health_(opts.health, &reg_) {
  const int dims = model_.params().dims;
  if (compiled_.phi_flux_field) {
    phi_flux_arr_.emplace(*compiled_.phi_flux_field,
                          flux_size(opts.cells, dims), 0,
                          first_touch_pool());
  }
  if (compiled_.mu_flux_field) {
    mu_flux_arr_.emplace(*compiled_.mu_flux_field,
                         flux_size(opts.cells, dims), 0,
                         first_touch_pool());
  }
  setup_schedule();

  tracer_.configure(opts.trace, /*pid=*/0);
  if (tracer_.enabled()) {
    // compile stages as instant events at the timeline origin, carrying
    // their duration as args.seconds (the stages ran before the epoch)
    for (const auto& [stage, t] : compiled_.compile_report().stage_timers) {
      tracer_.instant(tracer_.intern("compile/" + stage), "compile", -1,
                      t.seconds);
    }
  }
  // cache ECM predictions once: block geometry/threads are fixed from here
  std::vector<const ir::Kernel*> kernels;
  for (const auto& ck : compiled_.phi_kernels) kernels.push_back(&ck.ir);
  for (const auto& ck : compiled_.mu_kernels) kernels.push_back(&ck.ir);
  predicted_mlups_ = perf::predicted_mlups_by_kernel(
      kernels, opts.cells, opts.machine, opts.threads,
      compiled_.compile_report().vector_width);

  if (opts.time_scheme == TimeScheme::Heun) {
    phi_0_.emplace(model_.phi_src(),
                   std::array<std::int64_t, 3>{opts.cells[0], opts.cells[1],
                                               opts.cells[2]},
                   1, first_touch_pool());
    mu_0_.emplace(model_.mu_src(),
                  std::array<std::int64_t, 3>{opts.cells[0], opts.cells[1],
                                              opts.cells[2]},
                  1, first_touch_pool());
  }

  dt_current_ = model_.params().dt;
  faults_ = resilience::effective_faults(opts.resilience);
  if (!opts.resilience.restart_from.empty()) restore_from_disk();
}

backend::Binding Simulation::bind(const ir::Kernel& k,
                                  bool for_flux_of_mu) const {
  backend::Binding b;
  b.block_offset = opts_.block_offset;
  auto* self = const_cast<Simulation*>(this);
  for (const auto& f : k.fields) {
    Array* a = nullptr;
    if (f->id() == model_.phi_src()->id()) a = &self->phi_src_arr_;
    else if (f->id() == model_.phi_dst()->id()) a = &self->phi_dst_arr_;
    else if (f->id() == model_.mu_src()->id()) a = &self->mu_src_arr_;
    else if (f->id() == model_.mu_dst()->id()) a = &self->mu_dst_arr_;
    else if (compiled_.phi_flux_field &&
             f->id() == (*compiled_.phi_flux_field)->id()) {
      a = &*self->phi_flux_arr_;
    } else if (compiled_.mu_flux_field &&
               f->id() == (*compiled_.mu_flux_field)->id()) {
      a = &*self->mu_flux_arr_;
    }
    PFC_REQUIRE(a != nullptr, "simulation: kernel needs unknown field " +
                                  f->name());
    b.arrays.push_back(a);
  }
  (void)for_flux_of_mu;
  return b;
}

void Simulation::init_phi(
    const std::function<double(long long, long long, long long, int)>& f) {
  const auto& n = opts_.cells;
  for (int c = 0; c < phi_src_arr_.components(); ++c) {
    for (long long z = 0; z < n[2]; ++z) {
      for (long long y = 0; y < n[1]; ++y) {
        for (long long x = 0; x < n[0]; ++x) {
          phi_src_arr_.at(x, y, z, c) = f(x, y, z, c);
        }
      }
    }
  }
  fill_all_ghosts(phi_src_arr_);
}

void Simulation::init_mu(
    const std::function<double(long long, long long, long long, int)>& f) {
  const auto& n = opts_.cells;
  for (int c = 0; c < mu_src_arr_.components(); ++c) {
    for (long long z = 0; z < n[2]; ++z) {
      for (long long y = 0; y < n[1]; ++y) {
        for (long long x = 0; x < n[0]; ++x) {
          mu_src_arr_.at(x, y, z, c) = f(x, y, z, c);
        }
      }
    }
  }
  fill_all_ghosts(mu_src_arr_);
}

double Simulation::euler_substep(double t) {
  const std::array<long long, 3> cells = opts_.cells;
  obs::TraceRecorder* tr = trace_this_step_ ? &tracer_ : nullptr;
  double substep_seconds = 0.0;
  const SlabPlan* plan = opts_.dispatch == Dispatch::Static && pool_ != nullptr
                             ? &slab_plan_
                             : nullptr;
  const auto timed_run = [&](const CompiledKernel& ck) {
    Timer timer;
    const double ts = tr != nullptr ? tr->now_us() : 0.0;
    ck.run(bind(ck.ir, false), cells, t, step_, pool_.get(), tr, nullptr,
           plan);
    const double s = timer.seconds();
    if (tr != nullptr) {
      tr->complete(ck.ir.name.c_str(), "kernel", ts, s * 1e6, step_, 0);
    }
    reg_.add_time("kernel/" + ck.ir.name, s);
    substep_seconds += s;
  };
  const auto traced_fill = [&](Array& a) {
    obs::TraceSpan span(tr, "boundary", "ghost", step_, 0);
    fill_all_ghosts(a);
  };
  for (const auto& ck : compiled_.phi_kernels) timed_run(ck);
  traced_fill(phi_dst_arr_);
  for (const auto& ck : compiled_.mu_kernels) timed_run(ck);
  traced_fill(mu_dst_arr_);
  phi_src_arr_.swap_data(phi_dst_arr_);
  mu_src_arr_.swap_data(mu_dst_arr_);
  return substep_seconds;
}

double Simulation::fused_substep(double t) {
  obs::TraceRecorder* tr = trace_this_step_ ? &tracer_ : nullptr;
  WavefrontRun wr;
  wr.schedule = &wavefront_;
  for (const auto& st : wavefront_.stages) {
    wr.bindings.push_back(bind(st.kernel->ir, false));
  }
  wr.cells = opts_.cells;
  wr.t = t;
  wr.t_step = step_;
  wr.pool = pool_.get();
  wr.plan = &slab_plan_;
  wr.boundary = opts_.boundary;
  wr.tile_rows = blocking_.tile_rows;
  const double ts = tr != nullptr ? tr->now_us() : 0.0;
  Timer timer;
  const std::vector<double> stage_seconds = run_wavefront(wr);
  if (tr != nullptr) {
    tr->complete("wavefront", "kernel", ts, timer.seconds() * 1e6, step_, 0);
  }
  double substep_seconds = 0.0;
  for (std::size_t j = 0; j < wavefront_.stages.size(); ++j) {
    reg_.add_time("kernel/" + wavefront_.stages[j].kernel->ir.name,
                  stage_seconds[j]);
    substep_seconds += stage_seconds[j];
  }
  ++fused_substeps_;
  // φ_dst ghosts were completed inside the schedule (transverse per row
  // band, outer axis at the barrier); only µ_dst still needs its fill.
  {
    obs::TraceSpan span(tr, "boundary", "ghost", step_, 0);
    fill_all_ghosts(mu_dst_arr_);
  }
  phi_src_arr_.swap_data(phi_dst_arr_);
  mu_src_arr_.swap_data(mu_dst_arr_);
  return substep_seconds;
}

void Simulation::setup_schedule() {
  const int dims = model_.params().dims;
  const long long n_outer = opts_.cells[std::size_t(dims - 1)];
  const int nt = pool_ != nullptr ? pool_->num_threads() : 1;
  // In 1-D the slab axis is the vectorized axis: keep boundaries aligned
  // so the static launches match parallel_for's chunk rounding bitwise.
  const int align =
      dims == 1 ? std::max(1, compiled_.compile_report().vector_width) : 1;
  slab_plan_ = SlabPlan::make(0, n_outer, nt, align);

  std::vector<const CompiledKernel*> chain;
  std::vector<const ir::Kernel*> irs;
  for (const auto& ck : compiled_.phi_kernels) chain.push_back(&ck);
  for (const auto& ck : compiled_.mu_kernels) chain.push_back(&ck);
  for (const CompiledKernel* ck : chain) irs.push_back(&ck->ir);

  const auto array_of = [&](std::uint64_t id) -> Array* {
    if (id == model_.phi_src()->id()) return &phi_src_arr_;
    if (id == model_.phi_dst()->id()) return &phi_dst_arr_;
    if (id == model_.mu_src()->id()) return &mu_src_arr_;
    if (id == model_.mu_dst()->id()) return &mu_dst_arr_;
    if (compiled_.phi_flux_field &&
        id == (*compiled_.phi_flux_field)->id()) {
      return &*phi_flux_arr_;
    }
    if (compiled_.mu_flux_field && id == (*compiled_.mu_flux_field)->id()) {
      return &*mu_flux_arr_;
    }
    return nullptr;
  };

  wavefront_ = WavefrontSchedule{};
  blocking_ = perf::BlockingPlan{};
  if (opts_.blocking == BlockingMode::Off) {
    blocking_.reason = "temporal blocking not requested";
    return;
  }
  WavefrontSchedule ws =
      build_wavefront(chain, dims, /*ghost=*/1, array_of);
  if (!ws.valid()) {
    blocking_.reason =
        "no fusable wavefront schedule (1-D chain, or a domain-edge "
        "prologue stage reads a mid-chain ghosted field)";
    return;
  }
  blocking_ =
      perf::blocking_plan(irs, opts_.cells, opts_.machine, nt, ws.span,
                          /*ghost=*/1);
  if (opts_.blocking == BlockingMode::Fixed) {
    blocking_.enabled = opts_.blocking_tile_rows > 0;
    blocking_.tile_rows = opts_.blocking_tile_rows;
    blocking_.reason = blocking_.enabled
                           ? "fixed tile height requested"
                           : "BlockingMode::Fixed needs tile_rows > 0";
  }
  if (!blocking_.enabled) return;
  // Prologue strips of adjacent workers must not overlap — decline fusion
  // (rather than racing) when a slab is too thin.
  for (int w = 0; w < nt; ++w) {
    const auto [lo, hi] = slab_plan_.slab(w, 0, n_outer);
    if (hi - lo < ws.min_slab_rows) {
      blocking_.enabled = false;
      blocking_.reason = "worker slab of " + std::to_string(hi - lo) +
                         " rows is thinner than the " +
                         std::to_string(ws.min_slab_rows) +
                         " the wavefront prologue needs";
      return;
    }
  }
  wavefront_ = std::move(ws);
}

obs::RunReport Simulation::run(int n) {
  const long long cells = cells_per_step();
  obs::Counter& updates = reg_.counter("cell_updates");
  const auto& res = opts_.resilience;
  const bool recovery =
      health_.enabled() && opts_.health.policy == obs::HealthPolicy::Recover;
  // Baseline rollback target: without one, a violation before the first
  // periodic checkpoint would be unrecoverable.
  if ((recovery || res.checkpoint_every > 0) && !snapshot_.valid()) {
    capture_checkpoint(/*to_disk=*/false);
  }
  // run(n) advances n *net* steps: a rollback rewinds step_, and the loop
  // keeps going until the target is reached (bounded by max_retries).
  const long long target = step_ + n;
  while (step_ < target) {
    // Cooperative cancellation at step granularity: a cancelled/expired
    // job stops within one step, checkpoints when configured (so a client
    // cancel is resumable), then surfaces as JobCancelled.
    if (progress_.cancel != nullptr && progress_.cancel->requested()) {
      if (!res.directory.empty()) capture_checkpoint(/*to_disk=*/true);
      throw JobCancelled(progress_.cancel->kind(),
                         progress_.cancel->reason());
    }
    const double dt = dt_current_;
    Timer step_wall;
    trace_this_step_ = tracer_.sampled(step_);
    const double step_ts = trace_this_step_ ? tracer_.now_us() : 0.0;
    double step_seconds = 0.0;
    const auto substep = [&](double t) {
      return blocking_active() ? fused_substep(t) : euler_substep(t);
    };
    if (opts_.time_scheme == TimeScheme::Euler) {
      step_seconds = substep(time_);
    } else {
      // Heun: u1 = u0 + dt f(u0); u2 = u1 + dt f(u1); u_new = (u0 + u2) / 2
      // Staging copy and trapezoidal average are memory-bound; both split
      // across the pool (ghosts are refreshed from the interior below, so
      // blending them too is harmless).
      phi_0_->copy_from(phi_src_arr_, pool_.get());
      mu_0_->copy_from(mu_src_arr_, pool_.get());
      step_seconds += substep(time_);       // src now holds u1
      step_seconds += substep(time_ + dt);  // src now holds u2
      phi_src_arr_.average_with(*phi_0_, pool_.get());
      mu_src_arr_.average_with(*mu_0_, pool_.get());
      fill_all_ghosts(phi_src_arr_);
      fill_all_ghosts(mu_src_arr_);
    }
    ++step_;
    time_ += dt;
    // One lattice update per step, whatever the scheme — Heun's two
    // substeps advance time once. Rolled-back steps stay counted: the
    // counter measures work actually performed.
    updates.add(std::uint64_t(cells));
    reg_.push_step({step_, step_seconds, 0.0, 0, std::uint64_t(cells)});
    if (trace_this_step_) {
      tracer_.complete("step", "step", step_ts, tracer_.now_us() - step_ts,
                       step_ - 1, 0);
    }
    maybe_inject_nan();
    const bool cp_due =
        res.checkpoint_every > 0 && step_ % res.checkpoint_every == 0;
    std::uint64_t found = 0;
    // A checkpoint-due step always scans (when monitoring is on), so a
    // capture never preserves unverified state.
    if (health_.due(step_) || (cp_due && health_.enabled())) {
      health_.scan_block(phi_src_arr_, &mu_src_arr_);
      found = health_.finish_scan(step_);  // throws under Throw
    }
    if (found > 0 && recovery) {
      if (retries_ >= res.max_retries) {
        throw Error("pfc resilience: violation at step " +
                    std::to_string(step_) + " persists after " +
                    std::to_string(retries_) + " rollbacks, giving up");
      }
      ++retries_;
      last_violation_step_ = std::max(last_violation_step_, step_);
      rollback();
      continue;
    }
    // Progress beyond the troubled step means the recovery worked.
    if (step_ > last_violation_step_) retries_ = 0;
    if (cp_due && found == 0) capture_checkpoint(!res.directory.empty());
    record_progress(step_wall.seconds());
  }
  if (tracer_.enabled()) tracer_.write(opts_.trace.path);
  return report();
}

std::string Simulation::layout_signature() const {
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "cells=%lldx%lldx%lld;dims=%d;phases=%d;mu=%d;boundary=%s;blocks=1",
      opts_.cells[0], opts_.cells[1], opts_.cells[2], model_.params().dims,
      model_.params().phases, model_.params().num_mu(),
      opts_.boundary == grid::BoundaryKind::Periodic ? "periodic"
                                                     : "zerogradient");
  return buf;
}

void Simulation::capture_checkpoint(bool to_disk) {
  snapshot_.capture({step_, time_, dt_current_},
                    {&phi_src_arr_, &mu_src_arr_});
  ++res_stats_.checkpoints;
  res_stats_.last_checkpoint_step = step_;
  if (!to_disk) return;
  resilience::CheckpointMeta meta;
  meta.step = step_;
  meta.time = time_;
  meta.dt = dt_current_;
  meta.rng_seed = model_.params().rng_seed;
  meta.layout = layout_signature();
  meta.health = health_.stats();
  meta.counters["cell_updates"] = reg_.counter_value("cell_updates");
  resilience::write_checkpoint(
      opts_.resilience.directory, meta,
      {{"phi", &phi_src_arr_}, {"mu", &mu_src_arr_}}, /*rank=*/-1,
      faults_.truncate_checkpoint);
  if (faults_.truncate_checkpoint) ++res_stats_.faults_injected;
  ++res_stats_.checkpoint_files;
}

void Simulation::rollback() {
  PFC_REQUIRE(snapshot_.valid(), "resilience: no snapshot to roll back to");
  snapshot_.restore({&phi_src_arr_, &mu_src_arr_});
  fill_all_ghosts(phi_src_arr_);
  fill_all_ghosts(mu_src_arr_);
  step_ = snapshot_.meta().step;
  time_ = snapshot_.meta().time;
  ++res_stats_.rollbacks;
  const double shrink = opts_.resilience.dt_shrink;
  if (shrink > 0.0 && shrink < 1.0) {
    rebuild_with_dt(dt_current_ * shrink);
    ++res_stats_.dt_shrinks;
  }
  std::fprintf(stderr,
               "pfc resilience: rolled back to step %lld (retry %d/%d, "
               "dt=%g)\n",
               step_, retries_, opts_.resilience.max_retries, dt_current_);
}

void Simulation::rebuild_with_dt(double new_dt) {
  // with_dt() shares the model's Field handles, so the recompiled kernels
  // bind to the existing φ/µ arrays; only the flux scratch fields are new.
  model_ = model_.with_dt(new_dt);
  dt_current_ = new_dt;
  compiled_ = ModelCompiler(opts_.compile).compile(model_);
  const int dims = model_.params().dims;
  phi_flux_arr_.reset();
  mu_flux_arr_.reset();
  if (compiled_.phi_flux_field) {
    phi_flux_arr_.emplace(*compiled_.phi_flux_field,
                          flux_size(opts_.cells, dims), 0,
                          first_touch_pool());
  }
  if (compiled_.mu_flux_field) {
    mu_flux_arr_.emplace(*compiled_.mu_flux_field,
                         flux_size(opts_.cells, dims), 0,
                         first_touch_pool());
  }
  // The schedule holds CompiledKernel/Array pointers into the old compiled
  // model — rebuild it against the fresh one.
  setup_schedule();
}

void Simulation::maybe_inject_nan() {
  if (fault_nan_fired_ || faults_.nan_step < 0 || step_ != faults_.nan_step) {
    return;
  }
  fault_nan_fired_ = true;
  ++res_stats_.faults_injected;
  std::array<long long, 3> c = faults_.nan_cell;
  for (int d = 0; d < 3; ++d) {
    c[std::size_t(d)] =
        std::clamp(c[std::size_t(d)], 0LL, opts_.cells[std::size_t(d)] - 1);
  }
  phi_src_arr_.at(c[0], c[1], c[2], 0) =
      std::numeric_limits<double>::quiet_NaN();
  std::fprintf(stderr,
               "pfc fault: injected NaN into phi at step %lld, cell "
               "(%lld,%lld,%lld)\n",
               step_, c[0], c[1], c[2]);
}

void Simulation::record_progress(double step_wall_seconds) {
  step_seconds_ewma_ =
      step_seconds_ewma_ <= 0.0
          ? step_wall_seconds
          : kProgressEwmaAlpha * step_wall_seconds +
                (1.0 - kProgressEwmaAlpha) * step_seconds_ewma_;
  if (!progress_.sink || progress_.every <= 0) return;
  if (step_ % progress_.every != 0 || step_ <= last_progress_step_) return;
  last_progress_step_ = step_;
  ProgressUpdate u;
  u.step = step_;
  u.steps_total = progress_.steps_total;
  u.fraction = progress_.steps_total > 0
                   ? double(step_) / double(progress_.steps_total)
                   : 0.0;
  u.step_seconds_ewma = step_seconds_ewma_;
  u.mlups =
      obs::safe_rate(double(cells_per_step()), step_seconds_ewma_) / 1e6;
  u.eta_seconds =
      progress_.steps_total > 0 && progress_.steps_total > step_
          ? double(progress_.steps_total - step_) * step_seconds_ewma_
          : 0.0;
  u.health_violations = health_.stats().total_violations();
  progress_.sink(u);
}

void Simulation::restore_from_disk() {
  std::vector<resilience::RestoreArray> arrays{{"phi", &phi_src_arr_},
                                               {"mu", &mu_src_arr_}};
  const resilience::CheckpointMeta meta = resilience::read_checkpoint(
      opts_.resilience.restart_from, arrays, layout_signature());
  PFC_REQUIRE(meta.rng_seed == model_.params().rng_seed,
              "resilience: checkpoint rng_seed " +
                  std::to_string(meta.rng_seed) +
                  " differs from the model's " +
                  std::to_string(model_.params().rng_seed) +
                  " — restart would change the noise stream");
  fill_all_ghosts(phi_src_arr_);
  fill_all_ghosts(mu_src_arr_);
  step_ = meta.step;
  time_ = meta.time;
  health_.restore_stats(meta.health);
  if (meta.dt != dt_current_) rebuild_with_dt(meta.dt);
  res_stats_.restarted = true;
  res_stats_.restart_step = meta.step;
}

obs::RunReport Simulation::report() const {
  obs::RunReport r;
  r.name = "simulation";
  r.steps = step_;
  r.cells_per_step = cells_per_step();
  r.cell_updates = reg_.counter_value("cell_updates");
  for (const auto& [path, t] : reg_.timers()) {
    if (path.rfind("kernel/", 0) == 0) {
      r.kernel_timers[path.substr(7)] = t;
      r.kernel_seconds_total += t.seconds;
    }
  }
  r.recent_steps = reg_.recent_steps();
  r.block_imbalance = step_ > 0 ? 1.0 : 0.0;  // single block
  r.health = health_.stats();
  r.health_policy = opts_.health.policy;
  r.resilience = res_stats_;
  r.resilience.dt_current = dt_current_;
  r.threading.threads = opts_.threads;
  r.threading.pin_policy = support::pin_policy_name(opts_.pin);
  r.threading.dispatch =
      opts_.dispatch == Dispatch::Static ? "static" : "dynamic";
  r.threading.first_touch = opts_.first_touch && pool_ != nullptr;
  const support::Topology topo = support::Topology::detect();
  r.threading.cpus = int(topo.cpus.size());
  r.threading.cores = topo.cores;
  r.threading.packages = topo.packages;
  r.threading.numa_nodes = topo.nodes;
  r.threading.blocking_enabled = blocking_active();
  r.threading.blocking_tile_rows = blocking_.tile_rows;
  r.threading.blocking_lookahead = blocking_.lookahead;
  r.threading.fused_stages = int(wavefront_.stages.size());
  r.threading.fused_substeps = fused_substeps_;
  r.threading.blocking_reason = blocking_.reason;
  r.threading.bytes_per_update_unfused = blocking_.bytes_per_update_unfused;
  r.threading.bytes_per_update_fused = blocking_.bytes_per_update_fused;
  perf::fill_model_accuracy(r, predicted_mlups_, cells_per_step(),
                            model_.params().dims);
  return r;
}

}  // namespace pfc::app
