#include "pfc/app/simulation.hpp"

#include <cmath>

#include "pfc/perf/drift.hpp"
#include "pfc/support/timer.hpp"

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

namespace pfc::app {

namespace {

std::array<std::int64_t, 3> flux_size(const std::array<long long, 3>& n,
                                      int dims) {
  std::array<std::int64_t, 3> s{1, 1, 1};
  for (int d = 0; d < dims; ++d) s[std::size_t(d)] = n[std::size_t(d)] + 1;
  return s;
}

}  // namespace

double interface_profile(double signed_distance, double width) {
  if (signed_distance <= -width / 2) return 1.0;
  if (signed_distance >= width / 2) return 0.0;
  return 0.5 - 0.5 * std::sin(M_PI * signed_distance / width);
}

Simulation::Simulation(GrandChemModel model, const SimulationOptions& opts)
    : model_(std::move(model)),
      opts_(opts),
      compiled_(ModelCompiler(opts.compile).compile(model_)),
      phi_src_arr_(model_.phi_src(),
                   {opts.cells[0], opts.cells[1], opts.cells[2]}, 1),
      phi_dst_arr_(model_.phi_dst(),
                   {opts.cells[0], opts.cells[1], opts.cells[2]}, 1),
      mu_src_arr_(model_.mu_src(),
                  {opts.cells[0], opts.cells[1], opts.cells[2]}, 1),
      mu_dst_arr_(model_.mu_dst(),
                  {opts.cells[0], opts.cells[1], opts.cells[2]}, 1),
      health_(opts.health, &reg_) {
  const int dims = model_.params().dims;
  if (compiled_.phi_flux_field) {
    phi_flux_arr_.emplace(*compiled_.phi_flux_field,
                          flux_size(opts.cells, dims), 0);
  }
  if (compiled_.mu_flux_field) {
    mu_flux_arr_.emplace(*compiled_.mu_flux_field,
                         flux_size(opts.cells, dims), 0);
  }
  if (opts.threads > 1) pool_ = std::make_unique<ThreadPool>(opts.threads);

  tracer_.configure(opts.trace, /*pid=*/0);
  if (tracer_.enabled()) {
    // compile stages as instant events at the timeline origin, carrying
    // their duration as args.seconds (the stages ran before the epoch)
    for (const auto& [stage, t] : compiled_.compile_report().stage_timers) {
      tracer_.instant(tracer_.intern("compile/" + stage), "compile", -1,
                      t.seconds);
    }
  }
  // cache ECM predictions once: block geometry/threads are fixed from here
  std::vector<const ir::Kernel*> kernels;
  for (const auto& ck : compiled_.phi_kernels) kernels.push_back(&ck.ir);
  for (const auto& ck : compiled_.mu_kernels) kernels.push_back(&ck.ir);
  predicted_mlups_ = perf::predicted_mlups_by_kernel(
      kernels, opts.cells, opts.machine, opts.threads,
      compiled_.compile_report().vector_width);

  if (opts.time_scheme == TimeScheme::Heun) {
    phi_0_.emplace(model_.phi_src(),
                   std::array<std::int64_t, 3>{opts.cells[0], opts.cells[1],
                                               opts.cells[2]},
                   1);
    mu_0_.emplace(model_.mu_src(),
                  std::array<std::int64_t, 3>{opts.cells[0], opts.cells[1],
                                              opts.cells[2]},
                  1);
  }
}

backend::Binding Simulation::bind(const ir::Kernel& k,
                                  bool for_flux_of_mu) const {
  backend::Binding b;
  b.block_offset = opts_.block_offset;
  auto* self = const_cast<Simulation*>(this);
  for (const auto& f : k.fields) {
    Array* a = nullptr;
    if (f->id() == model_.phi_src()->id()) a = &self->phi_src_arr_;
    else if (f->id() == model_.phi_dst()->id()) a = &self->phi_dst_arr_;
    else if (f->id() == model_.mu_src()->id()) a = &self->mu_src_arr_;
    else if (f->id() == model_.mu_dst()->id()) a = &self->mu_dst_arr_;
    else if (compiled_.phi_flux_field &&
             f->id() == (*compiled_.phi_flux_field)->id()) {
      a = &*self->phi_flux_arr_;
    } else if (compiled_.mu_flux_field &&
               f->id() == (*compiled_.mu_flux_field)->id()) {
      a = &*self->mu_flux_arr_;
    }
    PFC_REQUIRE(a != nullptr, "simulation: kernel needs unknown field " +
                                  f->name());
    b.arrays.push_back(a);
  }
  (void)for_flux_of_mu;
  return b;
}

void Simulation::init_phi(
    const std::function<double(long long, long long, long long, int)>& f) {
  const auto& n = opts_.cells;
  for (int c = 0; c < phi_src_arr_.components(); ++c) {
    for (long long z = 0; z < n[2]; ++z) {
      for (long long y = 0; y < n[1]; ++y) {
        for (long long x = 0; x < n[0]; ++x) {
          phi_src_arr_.at(x, y, z, c) = f(x, y, z, c);
        }
      }
    }
  }
  fill_all_ghosts(phi_src_arr_);
}

void Simulation::init_mu(
    const std::function<double(long long, long long, long long, int)>& f) {
  const auto& n = opts_.cells;
  for (int c = 0; c < mu_src_arr_.components(); ++c) {
    for (long long z = 0; z < n[2]; ++z) {
      for (long long y = 0; y < n[1]; ++y) {
        for (long long x = 0; x < n[0]; ++x) {
          mu_src_arr_.at(x, y, z, c) = f(x, y, z, c);
        }
      }
    }
  }
  fill_all_ghosts(mu_src_arr_);
}

double Simulation::euler_substep(double t) {
  const std::array<long long, 3> cells = opts_.cells;
  obs::TraceRecorder* tr = trace_this_step_ ? &tracer_ : nullptr;
  double substep_seconds = 0.0;
  const auto timed_run = [&](const CompiledKernel& ck) {
    Timer timer;
    const double ts = tr != nullptr ? tr->now_us() : 0.0;
    ck.run(bind(ck.ir, false), cells, t, step_, pool_.get(), tr);
    const double s = timer.seconds();
    if (tr != nullptr) {
      tr->complete(ck.ir.name.c_str(), "kernel", ts, s * 1e6, step_, 0);
    }
    reg_.add_time("kernel/" + ck.ir.name, s);
    substep_seconds += s;
  };
  const auto traced_fill = [&](Array& a) {
    obs::TraceSpan span(tr, "boundary", "ghost", step_, 0);
    fill_all_ghosts(a);
  };
  for (const auto& ck : compiled_.phi_kernels) timed_run(ck);
  traced_fill(phi_dst_arr_);
  for (const auto& ck : compiled_.mu_kernels) timed_run(ck);
  traced_fill(mu_dst_arr_);
  phi_src_arr_.swap_data(phi_dst_arr_);
  mu_src_arr_.swap_data(mu_dst_arr_);
  return substep_seconds;
}

obs::RunReport Simulation::run(int n) {
  const double dt = model_.params().dt;
  const long long cells = cells_per_step();
  obs::Counter& updates = reg_.counter("cell_updates");
  for (int it = 0; it < n; ++it) {
    trace_this_step_ = tracer_.sampled(step_);
    const double step_ts = trace_this_step_ ? tracer_.now_us() : 0.0;
    double step_seconds = 0.0;
    if (opts_.time_scheme == TimeScheme::Euler) {
      step_seconds = euler_substep(time());
    } else {
      // Heun: u1 = u0 + dt f(u0); u2 = u1 + dt f(u1); u_new = (u0 + u2) / 2
      // Staging copy and trapezoidal average are memory-bound; both split
      // across the pool (ghosts are refreshed from the interior below, so
      // blending them too is harmless).
      phi_0_->copy_from(phi_src_arr_, pool_.get());
      mu_0_->copy_from(mu_src_arr_, pool_.get());
      step_seconds += euler_substep(time());       // src now holds u1
      step_seconds += euler_substep(time() + dt);  // src now holds u2
      phi_src_arr_.average_with(*phi_0_, pool_.get());
      mu_src_arr_.average_with(*mu_0_, pool_.get());
      fill_all_ghosts(phi_src_arr_);
      fill_all_ghosts(mu_src_arr_);
    }
    ++step_;
    // One lattice update per step, whatever the scheme — Heun's two
    // substeps advance time once.
    updates.add(std::uint64_t(cells));
    reg_.push_step({step_, step_seconds, 0.0, 0, std::uint64_t(cells)});
    if (trace_this_step_) {
      tracer_.complete("step", "step", step_ts, tracer_.now_us() - step_ts,
                       step_ - 1, 0);
    }
    if (health_.due(step_)) {
      health_.scan_block(phi_src_arr_, &mu_src_arr_);
      health_.finish_scan(step_);  // may throw under HealthPolicy::Throw
    }
  }
  if (tracer_.enabled()) tracer_.write(opts_.trace.path);
  return report();
}

obs::RunReport Simulation::report() const {
  obs::RunReport r;
  r.name = "simulation";
  r.steps = step_;
  r.cells_per_step = cells_per_step();
  r.cell_updates = reg_.counter_value("cell_updates");
  for (const auto& [path, t] : reg_.timers()) {
    if (path.rfind("kernel/", 0) == 0) {
      r.kernel_timers[path.substr(7)] = t;
      r.kernel_seconds_total += t.seconds;
    }
  }
  r.recent_steps = reg_.recent_steps();
  r.block_imbalance = step_ > 0 ? 1.0 : 0.0;  // single block
  r.health = health_.stats();
  r.health_policy = opts_.health.policy;
  perf::fill_model_accuracy(r, predicted_mlups_, cells_per_step(),
                            model_.params().dims);
  return r;
}

const std::map<std::string, double>& Simulation::kernel_seconds() const {
  kernel_seconds_shim_.clear();
  for (const auto& [path, t] : reg_.timers()) {
    if (path.rfind("kernel/", 0) == 0) {
      kernel_seconds_shim_[path.substr(7)] = t.seconds;
    }
  }
  return kernel_seconds_shim_;
}

double Simulation::mlups() const { return report().mlups(); }

}  // namespace pfc::app
