// Single-block time-stepping driver implementing the paper's Algorithm 1:
//
//   1. φ_dst ← φ-kernel(φ_src^D..C.., µ_src)           ("φ-full"/"φ-split")
//   2. φ_dst boundary handling
//   3. µ_dst ← µ-kernel(µ_src, φ_src, φ_dst)           ("µ-full"/"µ-split")
//   4. µ_dst boundary handling
//   5. swap φ_src ↔ φ_dst and µ_src ↔ µ_dst
//
// Distributed multi-block runs replace step 2/4's boundary fill by ghost
// exchange (pfc/grid/ghost_exchange.hpp); this class covers the node-level
// scenario used by examples, physics tests and kernel benchmarks.
#pragma once

#include <functional>
#include <map>

#include "pfc/app/options.hpp"
#include "pfc/app/progress.hpp"
#include "pfc/app/wavefront.hpp"
#include "pfc/obs/report.hpp"
#include "pfc/perf/blocking.hpp"
#include "pfc/resilience/checkpoint.hpp"
#include "pfc/support/topology.hpp"

namespace pfc::app {

/// Explicit time integrator. Heun (RK2) reuses the generated Euler-update
/// kernels: predictor step, corrector step, then averaging — the paper's
/// "further temporal discretization options" extension, realized purely at
/// the driver level.
enum class TimeScheme { Euler, Heun };

/// How kernel launches split the outer loop across the pool.
enum class Dispatch {
  /// parallel_for chunks re-enqueued per launch (the seed behaviour).
  Dynamic,
  /// Static slab ownership: worker w runs the same rows for every launch
  /// of every step — the rows first-touch placed on w's NUMA node.
  Static,
};

/// Temporal-blocking (wavefront) schedule of the fused φ/µ substep.
enum class BlockingMode {
  Off,   ///< reference order: φ sweep, fill, µ sweep, fill
  Auto,  ///< fuse with perf::blocking_plan-sized tiles when profitable
  Fixed, ///< fuse with a caller-chosen tile height (blocking_tile_rows)
};

struct SimulationOptions : DomainOptions {
  int threads = 1;
  TimeScheme time_scheme = TimeScheme::Euler;
  /// Global offset of this block (distributed runs).
  std::array<long long, 3> block_offset{0, 0, 0};
  /// Worker→CPU binding policy of the pool (threads > 1).
  support::PinPolicy pin = support::PinPolicy::None;
  /// First-touch the field arrays through the pool so each worker's slab
  /// is resident on its local NUMA node. On by default: with the static
  /// dispatch below it is free, and harmless on single-node-memory boxes.
  bool first_touch = true;
  Dispatch dispatch = Dispatch::Static;
  BlockingMode blocking = BlockingMode::Off;
  /// Tile height for BlockingMode::Fixed (rows along the outer axis).
  long long blocking_tile_rows = 0;

  SimulationOptions& with_cells(long long nx, long long ny,
                                long long nz = 1) {
    DomainOptions::with_cells(nx, ny, nz);
    return *this;
  }
  SimulationOptions& with_boundary(grid::BoundaryKind b) {
    DomainOptions::with_boundary(b);
    return *this;
  }
  SimulationOptions& with_compile(const CompileOptions& c) {
    DomainOptions::with_compile(c);
    return *this;
  }
  SimulationOptions& with_trace(const obs::TraceOptions& t) {
    DomainOptions::with_trace(t);
    return *this;
  }
  SimulationOptions& with_health(const obs::HealthOptions& h) {
    DomainOptions::with_health(h);
    return *this;
  }
  SimulationOptions& with_resilience(const resilience::ResilienceOptions& r) {
    DomainOptions::with_resilience(r);
    return *this;
  }
  SimulationOptions& with_threads(int t) {
    threads = t;
    return *this;
  }
  SimulationOptions& with_time_scheme(TimeScheme s) {
    time_scheme = s;
    return *this;
  }
  SimulationOptions& with_pin(support::PinPolicy p) {
    pin = p;
    return *this;
  }
  SimulationOptions& with_first_touch(bool on) {
    first_touch = on;
    return *this;
  }
  SimulationOptions& with_dispatch(Dispatch d) {
    dispatch = d;
    return *this;
  }
  SimulationOptions& with_blocking(BlockingMode m, long long tile_rows = 0) {
    blocking = m;
    blocking_tile_rows = tile_rows;
    return *this;
  }
};

class Simulation {
 public:
  /// When `opts.resilience.restart_from` names a checkpoint directory, the
  /// simulation restores φ/µ/step/time (and dt, recompiling if a shrink had
  /// been applied) from it; skip init_*() in that case.
  Simulation(GrandChemModel model, const SimulationOptions& opts);

  const GrandChemModel& model() const { return model_; }
  const CompiledModel& compiled() const { return compiled_; }

  /// Current state (reads after the most recent completed step).
  Array& phi() { return phi_src_arr_; }
  Array& mu() { return mu_src_arr_; }
  const Array& phi() const { return phi_src_arr_; }
  const Array& mu() const { return mu_src_arr_; }

  /// Sets φ/µ via a callback over interior cells, then fills ghosts.
  /// The callback returns the value for (x, y, z, component).
  void init_phi(const std::function<double(long long, long long, long long,
                                           int)>& f);
  void init_mu(const std::function<double(long long, long long, long long,
                                          int)>& f);

  /// Advances `n` time steps and returns the cumulative run report (all
  /// steps since construction, so repeated bursts keep one consistent
  /// accounting).
  obs::RunReport run(int n);

  long long step_count() const { return step_; }
  /// Accumulated simulation time. Summed step by step (not step_ * dt): dt
  /// may shrink after a rollback, and a checkpointed time restores bitwise
  /// because the manifest stores the accumulated double exactly.
  double time() const { return time_; }
  /// Current time-step size (params().dt until a rollback shrank it).
  double dt() const { return dt_current_; }

  /// Cumulative report without advancing time (equals the last run()'s
  /// return value).
  obs::RunReport report() const;
  /// The raw timer/counter registry behind the report.
  const obs::Registry& registry() const { return reg_; }
  /// The span recorder behind TraceOptions (disabled unless configured).
  const obs::TraceRecorder& tracer() const { return tracer_; }
  /// The in-situ health monitor (no-op unless HealthOptions::enabled).
  const obs::HealthMonitor& health() const { return health_; }
  /// Checkpoint/rollback accounting (mirrors report().resilience).
  const obs::ResilienceStats& resilience_stats() const { return res_stats_; }

  /// The temporal-blocking decision (sized tile / why disabled).
  const perf::BlockingPlan& blocking_plan() const { return blocking_; }
  /// True when steps run the fused wavefront schedule.
  bool blocking_active() const {
    return blocking_.enabled && wavefront_.valid();
  }
  /// The pool (null when threads == 1) — exposed for placement inspection.
  const ThreadPool* pool() const { return pool_.get(); }

  /// Enables periodic progress sampling: run() invokes p.sink every
  /// p.every completed steps (on the stepping thread; see progress.hpp).
  void set_progress(ProgressOptions p) { progress_ = std::move(p); }

 private:
  backend::Binding bind(const ir::Kernel& k, bool for_flux_of_mu) const;
  void fill_all_ghosts(Array& a) { grid::fill_ghosts(a, opts_.boundary); }

  /// Returns kernel seconds spent in this substep.
  double euler_substep(double t);
  /// Fused (wavefront) variant of the substep body; same contract.
  double fused_substep(double t);
  /// (Re)derives the slab plan, wavefront schedule and blocking decision
  /// from the compiled kernels (ctor and rebuild_with_dt).
  void setup_schedule();
  ThreadPool* first_touch_pool() const {
    return opts_.first_touch ? pool_.get() : nullptr;
  }
  long long cells_per_step() const {
    return opts_.cells[0] * opts_.cells[1] * opts_.cells[2];
  }

  // --- resilience (checkpoint/rollback/recovery) ---
  std::string layout_signature() const;
  /// Captures the in-memory rollback snapshot; also writes the on-disk
  /// checkpoint when `to_disk`.
  void capture_checkpoint(bool to_disk);
  /// Restores the last snapshot (state, step, time) and applies the
  /// configured dt shrink.
  void rollback();
  /// Regenerates + recompiles the kernels with a new dt (dt folds into the
  /// generated code) and rebinds the flux scratch arrays.
  void rebuild_with_dt(double new_dt);
  /// Fires FaultPlan::nan_step once when due (right after `step_` advanced).
  void maybe_inject_nan();
  /// Updates the step-time EWMA and emits a progress sample when due.
  void record_progress(double step_wall_seconds);
  /// Restores state from opts_.resilience.restart_from (ctor helper).
  void restore_from_disk();

  GrandChemModel model_;
  SimulationOptions opts_;
  CompiledModel compiled_;
  /// Declared before the arrays: first-touch initialization runs on the
  /// (pinned) pool during array construction.
  std::unique_ptr<ThreadPool> pool_;
  Array phi_src_arr_, phi_dst_arr_, mu_src_arr_, mu_dst_arr_;
  std::optional<Array> phi_flux_arr_, mu_flux_arr_;
  /// Heun predictor storage for the state at the step start.
  std::optional<Array> phi_0_, mu_0_;
  /// Static outer-axis slab ownership shared by first-touch, every kernel
  /// launch (Dispatch::Static) and the wavefront schedule.
  SlabPlan slab_plan_;
  WavefrontSchedule wavefront_;
  perf::BlockingPlan blocking_;
  long long fused_substeps_ = 0;
  long long step_ = 0;
  double time_ = 0.0;
  /// Live dt: starts at params().dt, shrunk by rollbacks (kernels are
  /// recompiled to match — dt is folded into the generated code).
  double dt_current_ = 0.0;
  resilience::FaultPlan faults_;
  bool fault_nan_fired_ = false;
  resilience::Snapshot snapshot_;
  obs::ResilienceStats res_stats_;
  int retries_ = 0;
  long long last_violation_step_ = -1;
  obs::Registry reg_;
  obs::TraceRecorder tracer_;
  obs::HealthMonitor health_;
  /// ECM-predicted MLUP/s per kernel (cached; feeds model_accuracy).
  std::map<std::string, double> predicted_mlups_;
  /// True while the current step is on the trace sampling grid.
  bool trace_this_step_ = false;
  ProgressOptions progress_;
  double step_seconds_ewma_ = 0.0;
  long long last_progress_step_ = -1;
};

// --- initial-condition helpers ----------------------------------------------

/// Smooth interface profile: 1 inside (d < 0), 0 outside, sinusoidal ramp
/// of width `w` (the obstacle potential's equilibrium profile).
double interface_profile(double signed_distance, double width);

}  // namespace pfc::app
