#include "pfc/app/tuning.hpp"

#include <algorithm>

#include "pfc/backend/c_emitter.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/backend/registry.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/support/sha256.hpp"

namespace pfc::app {

namespace {

/// Fixed search budget (measured runs, baseline included) — part of the
/// determinism contract, so it is a constant rather than an option.
constexpr int kTuneBudget = 8;
/// Measurement geometry: the job's own cells capped per axis, stepped a
/// handful of times. Small enough that a full search costs seconds, large
/// enough that the vector/blocking knobs still move the needle.
constexpr long long kMeasureCellCap = 48;
constexpr int kMeasureSteps = 4;

/// Lowers the model to optimized IR at one split setting (both PDEs, the
/// same path ModelCompiler::compile_updates takes).
std::vector<ir::Kernel> lower_model(const GrandChemModel& model,
                                    const CompileOptions& copts, bool split) {
  CompileOptions c = copts;
  c.split_phi = split;
  c.split_mu = split;
  fd::DiscretizeOptions dopts;
  dopts.dims = model.params().dims;
  dopts.dx = model.params().dx;
  dopts.dt = model.params().dt;
  dopts.rng_seed = model.params().rng_seed;
  const std::vector<fd::PdeUpdate> updates{model.phi_update(),
                                           model.mu_update()};
  std::vector<ir::Kernel> out;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    fd::DiscretizeOptions d = dopts;
    d.split_staggered = split;
    d.clamp_unit_interval = i == 0 && c.clamp_phi;
    d.renormalize_simplex = d.clamp_unit_interval;
    std::optional<FieldPtr> flux;
    std::vector<ir::Kernel> ks = ModelCompiler::lower(updates[i], d, c, &flux);
    for (auto& k : ks) out.push_back(std::move(k));
  }
  return out;
}

/// ECM-predicted MLUPS of the whole kernel chain: per-update times add, so
/// the chain rate is the harmonic combination of the per-kernel rates.
double chain_mlups(const std::vector<ir::Kernel>& kernels,
                   const std::array<long long, 3>& block,
                   const perf::MachineModel& m, int cores, int width) {
  double seconds_per_update = 0.0;
  for (const ir::Kernel& k : kernels) {
    const double mlups =
        perf::ecm_predict(k, block, m, perf::TrafficSource::LayerCondition,
                          width)
            .mlups(m, cores);
    if (mlups <= 0.0) return 0.0;
    seconds_per_update += 1.0 / mlups;
  }
  return seconds_per_update > 0.0 ? 1.0 / seconds_per_update : 0.0;
}

}  // namespace

std::string tuning_cache_dir(const CompileOptions& c) {
  if (!c.cache_dir.empty()) return c.cache_dir;
  return backend::kernel_cache_config_from_env().directory;
}

std::string tuning_model_hash(const GrandChemModel& model,
                              const SimulationOptions& opts) {
  // Canonical form: full kernels emitted as scalar C — independent of every
  // knob the tuner searches, sensitive to everything that changes the
  // numerics (model, dt, dx, CSE/hoisting/fast-math, clamp).
  CompileOptions canonical = opts.compile;
  canonical.vector_width = 1;
  canonical.streaming_stores = false;
  const std::vector<ir::Kernel> kernels =
      lower_model(model, canonical, /*split=*/false);
  backend::CEmitOptions eo;
  eo.fast_math = canonical.fast_math;
  eo.vector_width = 1;
  std::string text;
  bool first = true;
  for (const ir::Kernel& k : kernels) {
    eo.include_preamble = first;
    first = false;
    text += backend::emit_c(k, eo);
  }
  text += "\ncells=" + std::to_string(opts.cells[0]) + "x" +
          std::to_string(opts.cells[1]) + "x" + std::to_string(opts.cells[2]);
  text += "\nthreads=" + std::to_string(opts.threads);
  return support::sha256_hex(text);
}

void apply_tune_candidate(const perf::TuneCandidate& c,
                          SimulationOptions& opts) {
  opts.compile.split_phi = c.split;
  opts.compile.split_mu = c.split;
  opts.compile.vector_width = c.vector_width;
  opts.compile.streaming_stores = c.streaming_stores;
  opts.dispatch =
      c.dispatch == "dynamic" ? Dispatch::Dynamic : Dispatch::Static;
  if (c.blocking == "off") {
    opts.blocking = BlockingMode::Off;
    opts.blocking_tile_rows = 0;
  } else if (c.blocking == "auto") {
    opts.blocking = BlockingMode::Auto;
    opts.blocking_tile_rows = 0;
  } else {
    opts.blocking = BlockingMode::Fixed;
    opts.blocking_tile_rows = c.blocking_tile_rows;
  }
  opts.pin = support::parse_pin_policy(c.pin);
}

perf::TuneCandidate candidate_from_options(const SimulationOptions& opts) {
  perf::TuneCandidate c;
  c.split = opts.compile.split_phi && opts.compile.split_mu;
  if (opts.compile.backend == Backend::Interpreter) {
    c.vector_width = 1;
  } else if (opts.compile.vector_width > 0) {
    c.vector_width = opts.compile.vector_width;
  } else {
    c.vector_width = backend::probe_native_vector_width();
  }
  c.streaming_stores = opts.compile.streaming_stores && c.vector_width > 1;
  c.dispatch = opts.dispatch == Dispatch::Dynamic ? "dynamic" : "static";
  switch (opts.blocking) {
    case BlockingMode::Off: c.blocking = "off"; break;
    case BlockingMode::Auto: c.blocking = "auto"; break;
    case BlockingMode::Fixed: c.blocking = "fixed"; break;
  }
  c.blocking_tile_rows =
      opts.blocking == BlockingMode::Fixed ? opts.blocking_tile_rows : 0;
  c.pin = support::pin_policy_name(opts.pin);
  return c;
}

obs::TuningStats autotune_apply(const GrandChemModel& model,
                                SimulationOptions& opts) {
  obs::TuningStats stats;
  if (opts.compile.tune == TuneMode::Off) return stats;
  stats.enabled = true;
  stats.mode = opts.compile.tune == TuneMode::Cached ? "cached" : "full";

  const support::Topology topo = support::Topology::detect();
  stats.machine = perf::machine_signature(topo, opts.machine);
  const std::string key =
      perf::tune_cache_key(tuning_model_hash(model, opts), stats.machine);
  stats.cache_key = key;
  const std::string dir = tuning_cache_dir(opts.compile);

  if (opts.compile.tune == TuneMode::Cached) {
    if (const auto hit = perf::load_tuned(dir, key)) {
      // Warm cache: the persisted winner applies with zero measured runs.
      stats.cache_hit = true;
      stats.best_config = hit->best.label();
      stats.best_mlups = hit->best_mlups;
      stats.baseline_mlups = hit->baseline_mlups;
      apply_tune_candidate(hit->best, opts);
      return stats;
    }
  }

  perf::TuneOptions to;
  to.budget = kTuneBudget;
  to.multi_threaded = opts.threads > 1;
  to.baseline = candidate_from_options(opts);
  if (opts.compile.backend == Backend::Interpreter) {
    to.max_vector_width = 1;  // the interpreter tier is scalar
  } else {
    const backend::Backend* vec =
        backend::BackendRegistry::instance().find("jit-vector");
    const int tier_cap =
        vec != nullptr ? vec->capabilities().max_vector_width : 1;
    to.max_vector_width =
        std::min(tier_cap, backend::probe_native_vector_width());
  }

  // ECM prior: the per-split kernel sets are lowered once; driver placement
  // knobs (dispatch/pin/blocking) are invisible to the analytic model, so
  // candidates differing only there tie and keep enumeration order.
  const std::vector<ir::Kernel> full_kernels =
      lower_model(model, opts.compile, /*split=*/false);
  const std::vector<ir::Kernel> split_kernels =
      lower_model(model, opts.compile, /*split=*/true);
  const int cores = std::max(1, std::min(opts.threads, opts.machine.cores));
  const perf::PriorFn prior = [&](const perf::TuneCandidate& c) {
    return chain_mlups(c.split ? split_kernels : full_kernels, opts.cells,
                       opts.machine, cores, c.vector_width);
  };

  // Ground truth: a short Simulation on a capped version of the job's own
  // domain, scored by the paper's MLUPS metric over kernel time. A
  // candidate that fails to build scores 0 and simply loses.
  const perf::MeasureFn measure = [&](const perf::TuneCandidate& c) {
    SimulationOptions mo = opts;
    mo.compile.tune = TuneMode::Off;
    mo.trace = {};
    mo.health = {};
    mo.resilience = {};
    for (std::size_t d = 0; d < 3; ++d) {
      mo.cells[d] = std::min(mo.cells[d], kMeasureCellCap);
    }
    apply_tune_candidate(c, mo);
    try {
      Simulation sim(model, mo);
      sim.init_phi([](long long, long long, long long, int comp) {
        return comp == 0 ? 1.0 : 0.0;
      });
      sim.init_mu([](long long, long long, long long, int) { return 0.0; });
      return sim.run(kMeasureSteps).mlups();
    } catch (const Error&) {
      return 0.0;
    }
  };

  const perf::TuneResult r = perf::tune(to, prior, measure);
  stats.candidates = r.candidates;
  stats.measured_runs = r.measured_runs;
  stats.search_seconds = r.search_seconds;
  stats.baseline_mlups = r.baseline_mlups;
  stats.best_mlups = r.best_mlups;
  stats.best_config = r.best.label();
  for (const perf::TuneMeasurement& m : r.ranking) {
    if (!m.measured) continue;
    stats.ranking.push_back(obs::TuningRankEntry{
        m.config.label(), m.predicted_mlups, m.measured_mlups});
  }
  apply_tune_candidate(r.best, opts);
  if (!dir.empty()) {
    perf::store_tuned(dir, key,
                      perf::TuneCacheEntry{r.best, r.best_mlups,
                                           r.baseline_mlups, r.measured_runs,
                                           r.search_seconds});
  }
  return stats;
}

}  // namespace pfc::app
