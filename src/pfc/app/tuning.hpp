// Driver-level glue for the measured autotuner (perf/autotune.hpp): maps
// TuneCandidate onto SimulationOptions, derives the (model hash, machine
// signature) cache identity, injects the ECM prior and the short-run
// measurement, and applies CompileOptions::tune to a job's options before
// the real Simulation is constructed (run_job calls autotune_apply).
#pragma once

#include "pfc/app/simulation.hpp"
#include "pfc/perf/autotune.hpp"

namespace pfc::app {

/// Directory the tuning cache lives in — the same resolution as the kernel
/// cache: compile.cache_dir when set, else PFC_KERNEL_CACHE_DIR, else ""
/// (no persistence; a search still runs but its winner is not kept).
std::string tuning_cache_dir(const CompileOptions& c);

/// Content hash identifying the *tuning problem*: SHA-256 over the
/// canonical (full-kernel, scalar) generated C source of the model plus
/// the domain extents and thread count. Knobs the tuner itself searches
/// (split, width, streaming stores, driver placement) are deliberately
/// excluded so every candidate of one problem shares one key.
std::string tuning_model_hash(const GrandChemModel& model,
                              const SimulationOptions& opts);

/// Writes a candidate's knobs into the options (compile: split/width/
/// streaming stores; driver: dispatch/blocking/pin).
void apply_tune_candidate(const perf::TuneCandidate& c,
                          SimulationOptions& opts);

/// The reverse map: the options' current knob settings as a candidate (the
/// search baseline). vector_width 0 resolves to the probed native width.
perf::TuneCandidate candidate_from_options(const SimulationOptions& opts);

/// Applies opts.compile.tune in place:
///   Off    — no-op, returns a disabled TuningStats.
///   Cached — a warm tuning cache applies the persisted winner with zero
///            measured runs; a miss behaves like Full.
///   Full   — budgeted measured search (ECM prior ordering, baseline first),
///            winner applied to `opts` and persisted when a cache directory
///            is configured.
/// The returned stats land in the run report's v7 "tuning" section.
obs::TuningStats autotune_apply(const GrandChemModel& model,
                                SimulationOptions& opts);

}  // namespace pfc::app
