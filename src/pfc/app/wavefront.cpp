#include "pfc/app/wavefront.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "pfc/backend/kernel_runner.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::app {

WavefrontSchedule build_wavefront(
    const std::vector<const CompiledKernel*>& chain, int dims, int ghost,
    const std::function<Array*(std::uint64_t)>& array_of) {
  WavefrontSchedule s;
  if (chain.empty() || dims < 2) return s;
  s.outer = dims - 1;
  const std::size_t nstages = chain.size();

  // Per-stage read-offset ranges along the outer axis (the analysis
  // marshal() uses for ghost validation) and written-field sets.
  std::vector<std::unordered_map<std::uint64_t, backend::OffsetRange>> reads;
  std::vector<std::vector<std::uint64_t>> writes;
  for (const CompiledKernel* ck : chain) {
    PFC_ASSERT(ck->ir.dims == dims, "wavefront: mixed-dims kernel chain");
    reads.push_back(backend::read_offset_ranges(ck->ir));
    std::vector<std::uint64_t> w;
    for (const auto& f : ck->ir.writes) w.push_back(f->id());
    writes.push_back(std::move(w));
  }

  s.stages.resize(nstages);
  std::set<std::uint64_t> barrier_fields;
  for (std::size_t j = 0; j < nstages; ++j) {
    s.stages[j].kernel = chain[j];
    // Attach the in-schedule ghost fill to stages whose ghosted output a
    // later stage reads (φ_dst between the φ and µ sweeps).
    for (std::uint64_t f : writes[j]) {
      bool read_later = false;
      for (std::size_t l = j + 1; l < nstages && !read_later; ++l) {
        read_later = reads[l].count(f) != 0;
      }
      if (!read_later) continue;
      Array* a = array_of(f);
      if (a != nullptr && a->ghost_layers() > 0) {
        PFC_ASSERT(s.stages[j].ghost_fill == nullptr,
                   "wavefront: stage writes two ghosted chain fields");
        s.stages[j].ghost_fill = a;
        barrier_fields.insert(f);
      }
    }
  }

  const auto outer_ep = [&](std::size_t j) {
    return static_cast<long long>(
        chain[j]->ir.extent_plus[std::size_t(s.outer)]);
  };

  // Run-ahead intervals: back-propagate consumer needs along the outer
  // axis (the frontier-width recurrence of the distributed overlap driver,
  // kept as a signed interval instead of a symmetric width).
  for (std::size_t jj = nstages; jj-- > 0;) {
    auto& st = s.stages[jj];
    for (std::size_t l = jj + 1; l < nstages; ++l) {
      for (std::uint64_t f : writes[jj]) {
        const auto it = reads[l].find(f);
        if (it == reads[l].end()) continue;
        const long long rlo = it->second.lo[std::size_t(s.outer)];
        const long long rhi = it->second.hi[std::size_t(s.outer)];
        st.ext_lo = std::min(st.ext_lo, s.stages[l].ext_lo + rlo);
        st.ext_hi = std::max(st.ext_hi, s.stages[l].ext_hi + rhi);
      }
    }
    s.span = std::max(s.span, st.ext_hi - st.ext_lo);
  }

  // Domain-edge prologue strips: rows the barrier ghost fill needs as copy
  // sources (seeded `ghost` on the ghost-filled stages) plus, recursively,
  // the producer rows those strips consume.
  for (std::size_t j = 0; j < nstages; ++j) {
    if (s.stages[j].ghost_fill != nullptr) {
      s.stages[j].edge_lo = ghost;
      s.stages[j].edge_hi = ghost;
    }
  }
  for (std::size_t jj = nstages; jj-- > 0;) {
    auto& st = s.stages[jj];
    for (std::size_t l = jj + 1; l < nstages; ++l) {
      for (std::uint64_t f : writes[jj]) {
        const auto it = reads[l].find(f);
        if (it == reads[l].end()) continue;
        const long long rlo = it->second.lo[std::size_t(s.outer)];
        const long long rhi = it->second.hi[std::size_t(s.outer)];
        if (s.stages[l].edge_lo > 0) {
          st.edge_lo = std::max(st.edge_lo, s.stages[l].edge_lo + rhi);
        }
        if (s.stages[l].edge_hi > 0) {
          st.edge_hi = std::max(
              st.edge_hi, s.stages[l].edge_hi +
                              (outer_ep(jj) - outer_ep(l)) - rlo);
        }
      }
    }
  }

  // A domain-edge prologue stage must not read a barrier-filled field: its
  // strips run at the domain boundary before the barrier, where that
  // field's outer-axis ghosts are still stale. Pure run-ahead (ext) strips
  // are safe — they only touch interior rows their producers' strips have
  // already computed and transverse-filled (the back-propagation above plus
  // the min_slab_rows guard keep them away from the domain edge). Holds
  // for the GrandChem chains (only µ stages read φ_dst and none of them is
  // edge-seeded); decline the schedule if a model ever violates it.
  for (std::size_t j = 0; j < nstages; ++j) {
    const auto& st = s.stages[j];
    if (st.edge_lo <= 0 && st.edge_hi <= 0) continue;
    for (std::uint64_t f : barrier_fields) {
      if (reads[std::size_t(j)].count(f) != 0) {
        s.stages.clear();  // invalid: caller falls back to unfused
        return s;
      }
    }
  }

  long long need = 0;
  for (const auto& st : s.stages) {
    need = std::max(need,
                    std::max(st.edge_lo, st.edge_hi) +
                        std::max(st.ext_hi, -st.ext_lo));
  }
  s.min_slab_rows = 2 * std::max<long long>(need, ghost) + 2;
  return s;
}

namespace {

struct StageBox {
  long long hi = 0;  ///< outer iteration extent (n + extent_plus)
};

}  // namespace

std::vector<double> run_wavefront(const WavefrontRun& r) {
  const WavefrontSchedule& s = *r.schedule;
  PFC_ASSERT(s.valid(), "run_wavefront: invalid schedule");
  PFC_ASSERT(r.plan != nullptr, "run_wavefront: needs a slab plan");
  const int outer = s.outer;
  const long long n = r.cells[std::size_t(outer)];
  const int nt = r.pool != nullptr ? r.pool->num_threads() : 1;
  PFC_ASSERT(r.plan->workers == nt, "run_wavefront: plan/pool mismatch");
  const std::size_t nstages = s.stages.size();
  const long long tile = std::max<long long>(1, r.tile_rows);

  std::vector<StageBox> boxes(nstages);
  for (std::size_t j = 0; j < nstages; ++j) {
    boxes[j].hi =
        n + s.stages[j].kernel->ir.extent_plus[std::size_t(outer)];
  }

  std::vector<std::vector<double>> secs(
      std::size_t(nt), std::vector<double>(nstages, 0.0));

  const auto run_rows = [&](int w, std::size_t j, long long lo,
                            long long hi) {
    lo = std::max<long long>(lo, 0);
    hi = std::min(hi, boxes[j].hi);
    if (lo >= hi) return;
    Timer timer;
    const auto& st = s.stages[j];
    backend::CellRange range = backend::full_range(st.kernel->ir, r.cells);
    range.lo[std::size_t(outer)] = lo;
    range.hi[std::size_t(outer)] = hi;
    st.kernel->run(r.bindings[j], r.cells, r.t, r.t_step, nullptr, nullptr,
                   &range);
    if (st.ghost_fill != nullptr) {
      grid::fill_ghosts_transverse_rows(*st.ghost_fill, r.boundary, outer,
                                        lo, hi);
    }
    secs[std::size_t(w)][j] += timer.seconds();
  };

  const auto on_all = [&](const std::function<void(int)>& fn) {
    if (r.pool != nullptr) {
      r.pool->run_on_all(fn);
    } else {
      fn(0);
    }
  };

  // Phase 1 (parallel): boundary strips. Each worker computes, in chain
  // order, the rows its neighbours' wavefronts will read across the slab
  // boundary, plus — on the domain-edge workers — the rows the barrier
  // ghost fill copies from. Strips are disjoint across workers
  // (min_slab_rows guard) and each worker only reads its own strips, so
  // the phase is race-free.
  on_all([&](int w) {
    const auto [lo, hi] = r.plan->slab(w, 0, n);
    if (lo >= hi) return;
    const bool first = lo == 0;
    const bool last = hi == n;
    for (std::size_t j = 0; j < nstages; ++j) {
      const auto& st = s.stages[j];
      if (!first) run_rows(w, j, lo + st.ext_lo, lo + st.ext_hi);
      if (first && st.edge_lo > 0) run_rows(w, j, 0, st.edge_lo);
      if (last && st.edge_hi > 0) {
        run_rows(w, j, boxes[j].hi - st.edge_hi, boxes[j].hi);
      }
    }
  });

  // Barrier: outer-axis ghost faces of the mid-chain ghosted fields. The
  // copy sources (edge strips, transverse ghosts included) are complete,
  // so this single serial sweep reproduces the reference fill bitwise.
  {
    std::set<Array*> filled;
    for (const auto& st : s.stages) {
      if (st.ghost_fill != nullptr && filled.insert(st.ghost_fill).second) {
        grid::fill_ghosts_axis(*st.ghost_fill, outer, r.boundary);
      }
    }
  }

  // Phase 2 (parallel): the wavefront proper. Each worker advances
  // per-stage watermarks tile by tile; stage j leads the front by ext_hi
  // rows and stops at its ownership end, where the neighbour's phase-1
  // strip already holds the remaining rows. Every row of every stage is
  // computed exactly once across the two phases (the last worker may
  // recompute its own edge-strip rows — same worker, same inputs, same
  // bits), and no worker ever reads rows another worker writes after the
  // barrier.
  on_all([&](int w) {
    const auto [lo, hi] = r.plan->slab(w, 0, n);
    if (lo >= hi) return;
    const bool first = lo == 0;
    const bool last = hi == n;
    std::vector<long long> wm(nstages), own_hi(nstages);
    for (std::size_t j = 0; j < nstages; ++j) {
      const auto& st = s.stages[j];
      own_hi[j] = last ? boxes[j].hi : hi + st.ext_lo;
      wm[j] = first ? st.edge_lo : lo + st.ext_hi;
      wm[j] = std::min(wm[j], own_hi[j]);
    }
    for (long long a = lo; a < hi; a += tile) {
      const long long b = std::min<long long>(hi, a + tile);
      for (std::size_t j = 0; j < nstages; ++j) {
        const auto& st = s.stages[j];
        const long long target =
            b == hi ? own_hi[j] : std::min(b + st.ext_hi, own_hi[j]);
        if (wm[j] < target) {
          run_rows(w, j, wm[j], target);
          wm[j] = target;
        }
      }
    }
  });

  std::vector<double> stage_seconds(nstages, 0.0);
  for (std::size_t j = 0; j < nstages; ++j) {
    for (int w = 0; w < nt; ++w) {
      stage_seconds[j] =
          std::max(stage_seconds[j], secs[std::size_t(w)][j]);
    }
  }
  return stage_seconds;
}

}  // namespace pfc::app
