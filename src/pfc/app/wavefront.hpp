// Temporal-blocking wavefront schedule (DESIGN.md §11): fuses the φ and µ
// sweeps of one Euler substep over outer-axis tiles so intermediate fields
// (staggered fluxes, φ_dst) are consumed while still cache-resident.
//
// The schedule is derived from the same read-offset analysis marshal()
// validates ghosts with (backend::read_offset_ranges), generalizing the
// frontier-width back-propagation of the distributed overlap driver to
// per-stage run-ahead intervals along the outer axis. Execution is
// race-free by construction — each worker owns a fixed row slab, cross-
// worker dependencies are precomputed in a parallel prologue and sealed by
// one barrier — and bitwise identical to the unfused reference order at
// every vector width (each stage still executes the identical sub-range
// launches the unfused path could have issued).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pfc/app/compiler.hpp"
#include "pfc/grid/boundary.hpp"

namespace pfc::app {

/// One fused kernel launch position with its dependency geometry along the
/// outer axis. All row quantities are in that stage's iteration
/// coordinates (0 .. n + extent_plus).
struct WavefrontStage {
  const CompiledKernel* kernel = nullptr;
  /// Run-ahead interval relative to the front: when the final stage has
  /// completed rows [., b), this stage must have completed [., b + ext_hi)
  /// and owns rows shifted by ext_lo at slab boundaries.
  long long ext_lo = 0;
  long long ext_hi = 0;
  /// Domain-edge prologue strip widths: worker 0 precomputes rows
  /// [0, edge_lo), the last worker [box_hi - edge_hi, box_hi) — the rows
  /// the barrier ghost fill and the wrap-around reads need.
  long long edge_lo = 0;
  long long edge_hi = 0;
  /// Ghosted array this stage writes that later stages read (φ_dst):
  /// transverse ghosts are filled right after each row band is computed;
  /// outer-axis ghosts at the barrier. Null for flux/terminal stages.
  Array* ghost_fill = nullptr;
};

struct WavefrontSchedule {
  std::vector<WavefrontStage> stages;
  int outer = 2;       ///< outer axis index (dims - 1)
  long long span = 0;  ///< max (ext_hi - ext_lo): the blocking lookahead
  /// Minimum slab rows a worker needs for disjoint prologue strips; fused
  /// execution must be declined when a slab is thinner.
  long long min_slab_rows = 0;
  bool valid() const { return !stages.empty(); }
};

/// Builds the schedule for `chain` (φ kernels then µ kernels, execution
/// order). `ghost` is the ghost-layer count of the ghosted arrays;
/// `array_of` resolves a written field id to its runtime array (used to
/// attach in-schedule ghost fills). Returns an invalid schedule for 1-D
/// chains.
WavefrontSchedule build_wavefront(
    const std::vector<const CompiledKernel*>& chain, int dims, int ghost,
    const std::function<Array*(std::uint64_t)>& array_of);

/// Everything one fused substep needs.
struct WavefrontRun {
  const WavefrontSchedule* schedule = nullptr;
  /// Bindings parallel to schedule->stages.
  std::vector<backend::Binding> bindings;
  std::array<long long, 3> cells{1, 1, 1};
  double t = 0.0;
  long long t_step = 0;
  ThreadPool* pool = nullptr;  ///< null = single worker
  const SlabPlan* plan = nullptr;  ///< static ownership (required with pool)
  grid::BoundaryKind boundary = grid::BoundaryKind::Periodic;
  long long tile_rows = 1;
};

/// Executes one fused substep. Returns wall seconds per stage (max over
/// workers — the critical-path attribution the kernel timers record).
/// The caller still performs the end-of-substep full ghost fills of the
/// destination arrays and the src/dst swap.
std::vector<double> run_wavefront(const WavefrontRun& r);

}  // namespace pfc::app
