#include "pfc/backend/c_emitter.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "pfc/backend/codegen_common.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/ir/vectorize.hpp"
#include "pfc/sym/printer.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::backend {

using sym::Expr;
using sym::Kind;

namespace {

const char* kCoordName[3] = {"_xg", "_yg", "_zg"};  // global coords (double)
// vector mirrors of the scalar coordinates / time arguments
const char* kCoordVecName[3] = {"_xgv", "_ygv", "_zgv"};
const char* kLoopVar[3] = {"x", "y", "z"};

struct NameTables {
  // field id -> sanitized local base name
  std::unordered_map<std::uint64_t, std::string> field_name;
  // scalar param symbol (by identity hash+name) -> rendered name
  std::vector<std::pair<Expr, std::string>> params;

  std::string param_name(const Expr& s) const {
    for (const auto& [p, n] : params) {
      if (sym::equals(p, s)) return n;
    }
    return sanitize_identifier(s->name());  // a CSE temp
  }
};

/// The index expression inside `base[...]` for one FieldRef.
std::string field_index_expr(const ir::Kernel& k, const NameTables& names,
                             const Expr& fr) {
  const auto& base = names.field_name.at(fr->field()->id());
  std::ostringstream os;
  const auto idx_term = [&](int d, const char* var) {
    const int off = fr->offset()[std::size_t(d)];
    std::string s = var;
    if (off > 0) s += " + " + std::to_string(off);
    if (off < 0) s += " - " + std::to_string(-off);
    return s;
  };
  os << idx_term(0, kLoopVar[0]);
  if (k.dims >= 2) os << " + " << base << "_sy*(" << idx_term(1, kLoopVar[1]) << ')';
  if (k.dims >= 3) os << " + " << base << "_sz*(" << idx_term(2, kLoopVar[2]) << ')';
  if (fr->component() != 0) {
    os << " + " << base << "_sc*" << fr->component();
  }
  return os.str();
}

sym::PrintOptions make_print_options(const ir::Kernel& k,
                                     const NameTables& names,
                                     const CEmitOptions& opts) {
  sym::PrintOptions po;
  po.dialect = sym::Dialect::C;
  po.fast_math = opts.fast_math;
  po.symbol_printer = [&k, &names](const Expr& s) -> std::string {
    switch (s->builtin()) {
      case sym::Builtin::Coord0: return kCoordName[0];
      case sym::Builtin::Coord1: return kCoordName[1];
      case sym::Builtin::Coord2: return kCoordName[2];
      case sym::Builtin::Time: return "t";
      case sym::Builtin::TimeStep: return "(double)t_step";
      case sym::Builtin::None: return names.param_name(s);
    }
    return s->name();
  };
  po.field_printer = [&k, &names](const Expr& fr) -> std::string {
    const auto& base = names.field_name.at(fr->field()->id());
    return base + "[" + field_index_expr(k, names, fr) + "]";
  };
  return po;
}

/// Print options for the vector body: every scalar that lives outside the
/// body reads through its `_v` broadcast mirror, field reads become vector
/// loads.
sym::PrintOptions make_vector_print_options(
    const ir::Kernel& k, const NameTables& names, const CEmitOptions& opts,
    const std::unordered_set<std::string>& body_temps) {
  sym::PrintOptions po;
  po.dialect = sym::Dialect::CVec;
  po.fast_math = opts.fast_math;
  po.symbol_printer = [&k, &names, &body_temps](const Expr& s) -> std::string {
    switch (s->builtin()) {
      case sym::Builtin::Coord0: return kCoordVecName[0];
      case sym::Builtin::Coord1: return kCoordVecName[1];
      case sym::Builtin::Coord2: return kCoordVecName[2];
      case sym::Builtin::Time: return "_tv";
      case sym::Builtin::TimeStep: return "_tsv";
      case sym::Builtin::None: break;
    }
    const std::string n = names.param_name(s);
    return body_temps.count(n) != 0 ? n : n + "_v";
  };
  po.field_printer = [&k, &names](const Expr& fr) -> std::string {
    const auto& base = names.field_name.at(fr->field()->id());
    return "pfc_vd_loadu(&" + base + "[" + field_index_expr(k, names, fr) +
           "])";
  };
  return po;
}

}  // namespace

std::string entry_name(const ir::Kernel& k) {
  return sanitize_identifier(k.name);
}

std::string emit_c(const ir::Kernel& k, const CEmitOptions& opts) {
  PFC_REQUIRE(k.dims >= 1 && k.dims <= 3, "emit_c: dims out of range");
  std::ostringstream os;

  ir::VectorizeOptions vo;
  vo.width = opts.vector_width < 1 ? 1 : opts.vector_width;
  vo.streaming_stores = opts.streaming_stores;
  const ir::VectorPlan plan = ir::plan_vectorize(k, vo);
  const bool streams =
      plan.enabled() && plan.is_streamed(plan.primary_write);

  NameTables names;
  for (const auto& f : k.fields) {
    std::string base = "f_" + sanitize_identifier(f->name());
    // disambiguate clashes after sanitation
    for (const auto& [id, n] : names.field_name) {
      (void)id;
      if (n == base) {
        base += "_" + std::to_string(f->id());
        break;
      }
    }
    names.field_name.emplace(f->id(), base);
  }
  for (std::size_t i = 0; i < k.scalar_params.size(); ++i) {
    names.params.emplace_back(k.scalar_params[i],
                              "p_" + sanitize_identifier(
                                         k.scalar_params[i]->name()));
  }
  std::unordered_set<std::string> body_temps;
  for (const auto& sa : k.body) {
    if (sa.level == ir::Level::Body &&
        sa.assign.lhs->kind() == Kind::Symbol) {
      body_temps.insert(sanitize_identifier(sa.assign.lhs->name()));
    }
  }

  const sym::PrintOptions po = make_print_options(k, names, opts);
  const sym::PrintOptions vpo =
      make_vector_print_options(k, names, opts, body_temps);
  const auto render = [&](const Expr& e) { return sym::to_string(e, po); };
  const auto vrender = [&](const Expr& e) { return sym::to_string(e, vpo); };

  const ir::OpCounts ops = ir::count_ops(k);
  os << "// generated by pfc (C backend) — kernel \"" << k.name << "\"\n";
  os << "// per-cell: " << ops.to_string() << "\n";
  if (plan.enabled()) {
    os << "// vectorized: width " << plan.width
       << (streams ? ", streaming stores" : "") << ", "
       << plan.broadcasts.size() << " hoisted broadcast(s), "
       << plan.lane_serial_calls << " lane-serial call(s)/cell\n";
  }
  os << "#include <math.h>\n\n";
  if (opts.include_preamble) {
    os << runtime_preamble() << "\n";
    if (plan.enabled()) os << vector_preamble(plan.width) << "\n";
  }

  os << "extern \"C\" void " << entry_name(k)
     << "(double* const* fields, const long long* strides,\n"
        "    const long long* n, const long long* block_off,\n"
        "    const long long* lo, const long long* hi,\n"
        "    double t, long long t_step, const double* params) {\n";
  os << "  (void)n; (void)block_off; (void)t; (void)t_step; (void)params;\n";

  // field bases and strides
  for (std::size_t i = 0; i < k.fields.size(); ++i) {
    const auto& f = k.fields[i];
    const auto& base = names.field_name.at(f->id());
    bool written = false;
    for (const auto& w : k.writes) written = written || w->id() == f->id();
    if (written) {
      os << "  double* __restrict " << base << " = fields[" << i << "];\n";
    } else {
      os << "  const double* __restrict " << base << " = fields[" << i
         << "];\n";
    }
    if (k.dims >= 2) {
      os << "  const long long " << base << "_sy = strides[" << (4 * i + 1)
         << "];\n";
    }
    if (k.dims >= 3) {
      os << "  const long long " << base << "_sz = strides[" << (4 * i + 2)
         << "];\n";
    }
    if (f->components() > 1) {
      os << "  const long long " << base << "_sc = strides[" << (4 * i + 3)
         << "];\n";
    }
  }
  for (std::size_t i = 0; i < names.params.size(); ++i) {
    os << "  const double " << names.params[i].second << " = params[" << i
       << "];\n";
  }

  // Alignment contract of the vector path: the peel aligns the primary
  // write's component-0 row, so stores to further components (and the
  // streaming fast path) need vector-multiple strides. pfc::Array pads
  // every line to 8 doubles, which satisfies all of these for width <= 8.
  if (plan.enabled()) {
    const auto& pbase =
        names.field_name.at(k.fields[plan.primary_write]->id());
    std::vector<std::string> checked;
    if (k.fields[plan.primary_write]->components() > 1) {
      checked.push_back(pbase + "_sc");
    }
    if (streams) {
      if (k.dims >= 2) checked.push_back(pbase + "_sy");
      if (k.dims >= 3) checked.push_back(pbase + "_sz");
    }
    for (const auto& s : checked) {
      os << "  if ((" << s << " % PFC_VW) != 0) __builtin_trap();\n";
    }
  }
  os << "\n";

  const auto emit_level = [&](ir::Level lvl, const char* indent,
                              bool vector) {
    for (const auto* sa : k.at_level(lvl)) {
      PFC_ASSERT(sa->assign.lhs->kind() == Kind::Symbol ||
                 lvl == ir::Level::Body);
      if (sa->assign.lhs->kind() == Kind::Symbol) {
        os << indent << "const " << (vector ? "pfc_vd " : "double ")
           << sanitize_identifier(sa->assign.lhs->name()) << " = "
           << (vector ? vrender(sa->assign.rhs) : render(sa->assign.rhs))
           << ";\n";
      } else if (!vector) {
        os << indent << render(sa->assign.lhs) << " = "
           << render(sa->assign.rhs) << ";\n";
      } else {
        const Expr& lhs = sa->assign.lhs;
        std::size_t fidx = std::size_t(-1);
        for (std::size_t i = 0; i < k.fields.size(); ++i) {
          if (k.fields[i]->id() == lhs->field()->id()) {
            fidx = i;
            break;
          }
        }
        const auto& off = lhs->offset();
        const bool aligned = fidx == plan.primary_write && off[0] == 0 &&
                             off[1] == 0 && off[2] == 0;
        const char* store = "pfc_vd_storeu";
        if (aligned) {
          store = plan.is_streamed(fidx) ? "pfc_vd_stream" : "pfc_vd_storea";
        }
        const auto& base = names.field_name.at(lhs->field()->id());
        os << indent << store << "(&" << base << "["
           << field_index_expr(k, names, lhs) << "], "
           << vrender(sa->assign.rhs) << ");\n";
      }
    }
  };

  // stride-0 broadcast hoists: one set1 per non-body scalar, emitted right
  // after its scalar definition at the same loop level
  const auto emit_broadcasts = [&](ir::Level lvl, const char* indent) {
    if (!plan.enabled()) return;
    for (const auto& [s, l] : plan.broadcasts) {
      if (l != lvl) continue;
      const std::string sn = names.param_name(s);
      os << indent << "const pfc_vd " << sn << "_v = pfc_vd_set1(" << sn
         << ");\n";
    }
  };

  // coordinates of unused spatial dims are constant (local index 0)
  for (int d = k.dims; d < 3; ++d) {
    if (!k.uses_coord[std::size_t(d)]) continue;
    os << "  const double " << kCoordName[d] << " = (double)(block_off[" << d
       << "]);\n";
    if (plan.body_uses_coord[std::size_t(d)]) {
      os << "  const pfc_vd " << kCoordVecName[d] << " = pfc_vd_set1("
         << kCoordName[d] << ");\n";
    }
  }
  if (plan.body_uses_time) {
    os << "  const pfc_vd _tv = pfc_vd_set1(t);\n";
  }
  if (plan.body_uses_timestep) {
    os << "  const pfc_vd _tsv = pfc_vd_set1((double)t_step);\n";
  }

  // kernel-invariant temporaries, then their broadcasts (params broadcast
  // here too: they are invariant by definition)
  emit_level(ir::Level::Invariant, "  ", false);
  emit_broadcasts(ir::Level::Invariant, "  ");

  std::string indent = "  ";
  if (k.dims == 3) {
    os << indent << "for (long long z = lo[2]; z < hi[2]; ++z) {\n";
    indent += "  ";
    if (k.uses_coord[2]) {
      os << indent << "const double " << kCoordName[2]
         << " = (double)(z + block_off[2]);\n";
      if (plan.body_uses_coord[2]) {
        os << indent << "const pfc_vd " << kCoordVecName[2]
           << " = pfc_vd_set1(" << kCoordName[2] << ");\n";
      }
    }
    emit_level(ir::Level::PerZ, indent.c_str(), false);
    emit_broadcasts(ir::Level::PerZ, indent.c_str());
  }
  if (k.dims >= 2) {
    os << indent << "for (long long y = lo[1]; y < hi[1]; ++y) {\n";
    indent += "  ";
    if (k.uses_coord[1]) {
      os << indent << "const double " << kCoordName[1]
         << " = (double)(y + block_off[1]);\n";
      if (plan.body_uses_coord[1]) {
        os << indent << "const pfc_vd " << kCoordVecName[1]
           << " = pfc_vd_set1(" << kCoordName[1] << ");\n";
      }
    }
    emit_level(ir::Level::PerY, indent.c_str(), false);
    emit_broadcasts(ir::Level::PerY, indent.c_str());
  }

  const auto emit_body_scalar = [&](const std::string& ind) {
    if (k.uses_coord[0]) {
      os << ind << "const double " << kCoordName[0]
         << " = (double)(x + block_off[0]);\n";
    }
    emit_level(ir::Level::Body, ind.c_str(), false);
  };
  const auto emit_body_vector = [&](const std::string& ind) {
    if (plan.body_uses_coord[0]) {
      os << ind << "const pfc_vd " << kCoordVecName[0]
         << " = pfc_vd_iota((double)(x + block_off[0]));\n";
    }
    emit_level(ir::Level::Body, ind.c_str(), true);
  };

  // x-loop bounds come from the sub-range box like every other dim; the
  // host passes the full box for a monolithic sweep, a sub-box for
  // interior/frontier or thread-slab execution.
  const std::string xlo = "lo[0]";
  const std::string xhi = "hi[0]";

  if (!plan.enabled()) {
    if (opts.simd_hint) os << indent << "#pragma GCC ivdep\n";
    os << indent << "for (long long x = " << xlo << "; x < " << xhi
       << "; ++x) {\n";
    emit_body_scalar(indent + "  ");
    os << indent << "}\n";
  } else {
    const auto& pbase =
        names.field_name.at(k.fields[plan.primary_write]->id());
    os << indent << "{\n";
    const std::string ind = indent + "  ";
    const std::string bind = indent + "    ";
    // scalar peel until the primary destination row is vector-aligned,
    // aligned vector main loop, scalar remainder
    os << ind << "const long long _xlo = " << xlo << ";\n";
    os << ind << "const long long _xhi = " << xhi << ";\n";
    os << ind << "double* _vrow = " << pbase << " + _xlo";
    if (k.dims >= 2) os << " + " << pbase << "_sy*y";
    if (k.dims >= 3) os << " + " << pbase << "_sz*z";
    os << ";\n";
    os << ind
       << "long long _xpeel = (long long)(((__UINTPTR_TYPE__)PFC_VW - "
          "(((__UINTPTR_TYPE__)_vrow / sizeof(double)) % "
          "(__UINTPTR_TYPE__)PFC_VW)) % (__UINTPTR_TYPE__)PFC_VW);\n";
    os << ind << "if (_xpeel > _xhi - _xlo) _xpeel = _xhi - _xlo;\n";
    os << ind << "const long long _xv0 = _xlo + _xpeel;\n";
    os << ind
       << "const long long _xv1 = _xv0 + ((_xhi - _xv0) / PFC_VW) * "
          "PFC_VW;\n";
    os << ind << "for (long long x = _xlo; x < _xv0; ++x) {\n";
    emit_body_scalar(bind);
    os << ind << "}\n";
    os << ind << "for (long long x = _xv0; x < _xv1; x += PFC_VW) {\n";
    emit_body_vector(bind);
    os << ind << "}\n";
    os << ind << "for (long long x = _xv1; x < _xhi; ++x) {\n";
    emit_body_scalar(bind);
    os << ind << "}\n";
    os << indent << "}\n";
  }

  // close the outer loops
  for (int d = 1; d < k.dims; ++d) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
  if (streams) os << "  pfc_vd_stream_fence();\n";
  os << "}\n";
  return os.str();
}

}  // namespace pfc::backend
