// C backend (paper §3.5): renders an IR kernel into a self-contained C++
// translation unit. The generated loop nest is ordered z, y, x to match the
// fzyx layout (unit stride innermost); hoisted temporaries are emitted at
// their loop level, which is how the analytic-temperature optimization
// materializes in code. Shared-memory parallelism is slab-based: the host
// passes [outer_begin, outer_end) so a thread pool can split the outermost
// loop (the role OpenMP plays in the paper's generated code).
#pragma once

#include <string>

#include "pfc/ir/kernel.hpp"

namespace pfc::backend {

struct CEmitOptions {
  /// Use approximate fast-math forms for div/sqrt/rsqrt (paper §3.5).
  bool fast_math = false;
  /// Include the runtime preamble (Philox etc.). Disable when several
  /// kernels are emitted into one translation unit.
  bool include_preamble = true;
  /// Emit `#pragma omp simd`-style ivdep hints on the inner loop.
  bool simd_hint = true;
};

/// Returns the generated source. The entry point is named
/// `sanitize_identifier(kernel.name)` with the KernelFn signature declared
/// in codegen_common.hpp.
std::string emit_c(const ir::Kernel& k, const CEmitOptions& opts = {});

/// The sanitized entry-point name for a kernel.
std::string entry_name(const ir::Kernel& k);

}  // namespace pfc::backend
