// C backend (paper §3.5): renders an IR kernel into a self-contained C++
// translation unit. The generated loop nest is ordered z, y, x to match the
// fzyx layout (unit stride innermost); hoisted temporaries are emitted at
// their loop level, which is how the analytic-temperature optimization
// materializes in code. Every loop dim d runs over the caller's
// [lo[d], hi[d]) sub-box: a thread pool splits the outermost loop into
// slabs (the role OpenMP plays in the paper's generated code), and the
// distributed driver runs disjoint interior/frontier boxes to hide ghost
// exchange behind interior compute.
//
// With vector_width > 1 the emitter consumes an ir::VectorPlan and renders
// the paper's "C + OpenMP + SIMD" form explicitly: the x loop splits into a
// scalar alignment peel, an aligned vector main loop stepping `width` cells
// through GCC/Clang vector extensions, and a scalar remainder. Hoisted
// scalars get one broadcast at their definition level, contiguous field
// accesses become vector loads, and write-only destinations can use
// non-temporal streaming stores (fenced before the slab returns).
#pragma once

#include <string>

#include "pfc/ir/kernel.hpp"

namespace pfc::backend {

struct CEmitOptions {
  /// Use approximate fast-math forms for div/sqrt/rsqrt (paper §3.5).
  bool fast_math = false;
  /// Include the runtime preamble (Philox etc.). Disable when several
  /// kernels are emitted into one translation unit.
  bool include_preamble = true;
  /// Emit `#pragma omp simd`-style ivdep hints on the inner loop (scalar
  /// code only; explicit vectorization needs no hint).
  bool simd_hint = true;
  /// Doubles per vector lane group: 1 emits the scalar loop, 2/4/8 emit the
  /// explicit-SIMD split loop. All kernels of one translation unit must use
  /// the same width (the vector preamble is emitted once).
  int vector_width = 1;
  /// Non-temporal stores for write-only destination fields.
  bool streaming_stores = false;
};

/// Returns the generated source. The entry point is named
/// `sanitize_identifier(kernel.name)` with the KernelFn signature declared
/// in codegen_common.hpp.
std::string emit_c(const ir::Kernel& k, const CEmitOptions& opts = {});

/// The sanitized entry-point name for a kernel.
std::string entry_name(const ir::Kernel& k);

}  // namespace pfc::backend
