#include "pfc/backend/codegen_common.hpp"

#include <cctype>

namespace pfc::backend {

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

const char* runtime_preamble() {
  // Keep in sync with pfc/rng/philox.hpp — bit-identical by construction.
  return R"PFC(
typedef unsigned long long pfc_u64;
typedef unsigned int pfc_u32;

static inline void pfc_mulhilo32(pfc_u32 a, pfc_u32 b, pfc_u32* hi,
                                 pfc_u32* lo) {
  pfc_u64 p = (pfc_u64)a * (pfc_u64)b;
  *hi = (pfc_u32)(p >> 32);
  *lo = (pfc_u32)p;
}

static inline double pfc_philox_uniform(pfc_u64 x, pfc_u64 y, pfc_u64 z,
                                        pfc_u64 t_step, pfc_u64 seed,
                                        pfc_u64 stream) {
  pfc_u32 c0 = (pfc_u32)x, c1 = (pfc_u32)y, c2 = (pfc_u32)z,
          c3 = (pfc_u32)t_step;
  pfc_u32 k0 = (pfc_u32)(seed ^ (stream * 0x9E3779B9u));
  pfc_u32 k1 = (pfc_u32)((seed >> 32) + stream);
  for (int r = 0; r < 10; ++r) {
    pfc_u32 hi0, lo0, hi1, lo1;
    pfc_mulhilo32(0xD2511F53u, c0, &hi0, &lo0);
    pfc_mulhilo32(0xCD9E8D57u, c2, &hi1, &lo1);
    pfc_u32 n0 = hi1 ^ c1 ^ k0;
    pfc_u32 n1 = lo1;
    pfc_u32 n2 = hi0 ^ c3 ^ k1;
    pfc_u32 n3 = lo0;
    c0 = n0; c1 = n1; c2 = n2; c3 = n3;
    k0 += 0x9E3779B9u;
    k1 += 0xBB67AE85u;
  }
  pfc_u64 bits = ((pfc_u64)c0 << 32) | c1;
  return (double)bits * (2.0 / 18446744073709551616.0) - 1.0;
}

static inline double pfc_rsqrt_fast(double v) {
  /* single-precision refinement step; ~1e-7 relative accuracy, modelling
     the AVX512 rsqrt14 + Newton iteration of the paper */
  float x = (float)v;
  float r = 1.0f / sqrtf(x);
  return (double)(r * (1.5f - 0.5f * x * r * r));
}
)PFC";
}

std::string vector_preamble(int width) {
  // One vector width per translation unit; the guard makes concatenated
  // emit_c outputs (one TU for all kernels of a model) idempotent.
  std::string out = "#ifndef PFC_VW\n#define PFC_VW " +
                    std::to_string(width) + "\n";
  out += R"PFC(
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

typedef double pfc_vd __attribute__((vector_size(sizeof(double) * PFC_VW)));
/* same lanes, 8-byte alignment: the type behind unaligned loads/stores */
typedef double pfc_vd_unaligned
    __attribute__((vector_size(sizeof(double) * PFC_VW), aligned(8)));

static inline pfc_vd pfc_vd_set1(double s) {
  pfc_vd v;
  for (int i = 0; i < PFC_VW; ++i) v[i] = s;
  return v;
}

/* {x0, x0+1, ...} — the per-lane x coordinate of a vector iteration */
static inline pfc_vd pfc_vd_iota(double x0) {
  pfc_vd v;
  for (int i = 0; i < PFC_VW; ++i) v[i] = x0 + (double)i;
  return v;
}

static inline pfc_vd pfc_vd_loadu(const double* p) {
  return *(const pfc_vd_unaligned*)p;
}

static inline void pfc_vd_storeu(double* p, pfc_vd v) {
  *(pfc_vd_unaligned*)p = v;
}

static inline void pfc_vd_storea(double* p, pfc_vd v) { *(pfc_vd*)p = v; }

/* Non-temporal store: bypasses the cache hierarchy for write-only
   destinations. Requires a full-vector-aligned address (the emitter's
   alignment peel guarantees this for the primary write field). */
static inline void pfc_vd_stream(double* p, pfc_vd v) {
#if defined(__clang__)
  __builtin_nontemporal_store(v, (pfc_vd*)p);
#elif defined(__AVX512F__) && PFC_VW == 8
  __m512d w;
  __builtin_memcpy(&w, &v, sizeof w);
  _mm512_stream_pd(p, w);
#elif defined(__AVX__) && PFC_VW == 4
  __m256d w;
  __builtin_memcpy(&w, &v, sizeof w);
  _mm256_stream_pd(p, w);
#elif defined(__SSE2__) && PFC_VW == 2
  __m128d w;
  __builtin_memcpy(&w, &v, sizeof w);
  _mm_stream_pd(p, w);
#else
  *(pfc_vd*)p = v; /* no non-temporal form on this target */
#endif
}

/* Drain the write-combining buffers of non-temporal stores. The thread
   pool's mutex release orders normal stores but NOT movnt, so every kernel
   that streamed must fence before returning its slab. */
static inline void pfc_vd_stream_fence(void) {
#if defined(__x86_64__) || defined(__i386__)
  _mm_sfence();
#else
  __sync_synchronize();
#endif
}

/* IEEE-exact vector sqrt: packed hardware form when available, else a lane
   loop (identical results either way). */
static inline pfc_vd pfc_vd_sqrt(pfc_vd a) {
#if defined(__AVX512F__) && PFC_VW == 8
  __m512d w;
  __builtin_memcpy(&w, &a, sizeof w);
  w = _mm512_sqrt_pd(w);
  pfc_vd r;
  __builtin_memcpy(&r, &w, sizeof r);
  return r;
#elif defined(__AVX__) && PFC_VW == 4
  __m256d w;
  __builtin_memcpy(&w, &a, sizeof w);
  w = _mm256_sqrt_pd(w);
  pfc_vd r;
  __builtin_memcpy(&r, &w, sizeof r);
  return r;
#elif defined(__SSE2__) && PFC_VW == 2
  __m128d w;
  __builtin_memcpy(&w, &a, sizeof w);
  w = _mm_sqrt_pd(w);
  pfc_vd r;
  __builtin_memcpy(&r, &w, sizeof r);
  return r;
#else
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = sqrt(a[i]);
  return r;
#endif
}

static inline pfc_vd pfc_vd_rsqrt(pfc_vd a) {
  /* matches the scalar dialect's (1.0 / sqrt(x)) bit for bit */
  return pfc_vd_set1(1.0) / pfc_vd_sqrt(a);
}

static inline pfc_vd pfc_vd_sqrt_fast(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = (double)sqrtf((float)a[i]);
  return r;
}

static inline pfc_vd pfc_vd_rsqrt_fast(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = pfc_rsqrt_fast(a[i]);
  return r;
}

/* lane-wise min/max/abs: vectorized by the compiler (no errno concerns) */
static inline pfc_vd pfc_vd_fmin(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];
  return r;
}

static inline pfc_vd pfc_vd_fmax(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
  return r;
}

static inline pfc_vd pfc_vd_fabs(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = fabs(a[i]);
  return r;
}

/* comparisons as 0.0/1.0 masks, matching the scalar dialect's ternaries */
static inline pfc_vd pfc_vd_lt(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = a[i] < b[i] ? 1.0 : 0.0;
  return r;
}

static inline pfc_vd pfc_vd_gt(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = a[i] > b[i] ? 1.0 : 0.0;
  return r;
}

static inline pfc_vd pfc_vd_le(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = a[i] <= b[i] ? 1.0 : 0.0;
  return r;
}

static inline pfc_vd pfc_vd_ge(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = a[i] >= b[i] ? 1.0 : 0.0;
  return r;
}

/* Select(c, a, b): per-lane blend, c != 0 picks a */
static inline pfc_vd pfc_vd_sel(pfc_vd c, pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = c[i] != 0.0 ? a[i] : b[i];
  return r;
}

/* lane-serial libm calls: no packed form, one scalar call per lane */
static inline pfc_vd pfc_vd_exp(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = exp(a[i]);
  return r;
}

static inline pfc_vd pfc_vd_log(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = log(a[i]);
  return r;
}

static inline pfc_vd pfc_vd_sin(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = sin(a[i]);
  return r;
}

static inline pfc_vd pfc_vd_cos(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = cos(a[i]);
  return r;
}

static inline pfc_vd pfc_vd_tanh(pfc_vd a) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = tanh(a[i]);
  return r;
}

static inline pfc_vd pfc_vd_pow(pfc_vd a, pfc_vd b) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) r[i] = pow(a[i], b[i]);
  return r;
}

/* lane-serial Philox: same casts as the scalar dialect, bit-identical */
static inline pfc_vd pfc_vd_philox(pfc_vd x, pfc_vd y, pfc_vd z, pfc_vd t,
                                   pfc_vd seed, pfc_vd stream) {
  pfc_vd r;
  for (int i = 0; i < PFC_VW; ++i) {
    r[i] = pfc_philox_uniform((pfc_u64)x[i], (pfc_u64)y[i], (pfc_u64)z[i],
                              (pfc_u64)t[i], (pfc_u64)seed[i],
                              (pfc_u64)stream[i]);
  }
  return r;
}
)PFC";
  out += "#endif /* PFC_VW */\n";
  return out;
}

}  // namespace pfc::backend
