#include "pfc/backend/codegen_common.hpp"

#include <cctype>

namespace pfc::backend {

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

const char* runtime_preamble() {
  // Keep in sync with pfc/rng/philox.hpp — bit-identical by construction.
  return R"PFC(
typedef unsigned long long pfc_u64;
typedef unsigned int pfc_u32;

static inline void pfc_mulhilo32(pfc_u32 a, pfc_u32 b, pfc_u32* hi,
                                 pfc_u32* lo) {
  pfc_u64 p = (pfc_u64)a * (pfc_u64)b;
  *hi = (pfc_u32)(p >> 32);
  *lo = (pfc_u32)p;
}

static inline double pfc_philox_uniform(pfc_u64 x, pfc_u64 y, pfc_u64 z,
                                        pfc_u64 t_step, pfc_u64 seed,
                                        pfc_u64 stream) {
  pfc_u32 c0 = (pfc_u32)x, c1 = (pfc_u32)y, c2 = (pfc_u32)z,
          c3 = (pfc_u32)t_step;
  pfc_u32 k0 = (pfc_u32)(seed ^ (stream * 0x9E3779B9u));
  pfc_u32 k1 = (pfc_u32)((seed >> 32) + stream);
  for (int r = 0; r < 10; ++r) {
    pfc_u32 hi0, lo0, hi1, lo1;
    pfc_mulhilo32(0xD2511F53u, c0, &hi0, &lo0);
    pfc_mulhilo32(0xCD9E8D57u, c2, &hi1, &lo1);
    pfc_u32 n0 = hi1 ^ c1 ^ k0;
    pfc_u32 n1 = lo1;
    pfc_u32 n2 = hi0 ^ c3 ^ k1;
    pfc_u32 n3 = lo0;
    c0 = n0; c1 = n1; c2 = n2; c3 = n3;
    k0 += 0x9E3779B9u;
    k1 += 0xBB67AE85u;
  }
  pfc_u64 bits = ((pfc_u64)c0 << 32) | c1;
  return (double)bits * (2.0 / 18446744073709551616.0) - 1.0;
}

static inline double pfc_rsqrt_fast(double v) {
  /* single-precision refinement step; ~1e-7 relative accuracy, modelling
     the AVX512 rsqrt14 + Newton iteration of the paper */
  float x = (float)v;
  float r = 1.0f / sqrtf(x);
  return (double)(r * (1.5f - 0.5f * x * r * r));
}
)PFC";
}

}  // namespace pfc::backend
