// Shared pieces of the C and CUDA backends: identifier sanitation, the
// runtime-support preamble (Philox, fast rsqrt) embedded into generated
// translation units, and the kernel calling convention.
#pragma once

#include <string>

#include "pfc/ir/kernel.hpp"

namespace pfc::backend {

/// Turns an arbitrary kernel/field name into a valid C identifier.
std::string sanitize_identifier(const std::string& name);

/// C source of pfc_philox_uniform(...) and pfc_rsqrt_fast(...), textually
/// mirroring pfc::rng::philox_uniform (bit-identical results).
const char* runtime_preamble();

/// C source of the SIMD runtime for one translation unit: the pfc_vd vector
/// type (`width` doubles, GCC/Clang vector extensions), broadcast/iota
/// constructors, unaligned/aligned/non-temporal load-store helpers, and
/// lane-wise fallbacks for the operations without packed hardware forms
/// (libm transcendentals, Philox). Each TU has exactly one width; the text
/// is `#ifndef`-guarded so concatenating kernels stays safe. Must follow
/// runtime_preamble() in the TU (the Philox helper calls into it).
std::string vector_preamble(int width);

/// The generated entry point signature, documented once:
///
///   extern "C" void NAME(double* const* fields,
///                        const long long* strides,   // 4 per field: x,y,z,c
///                        const long long* n,         // interior cells
///                        const long long* block_off, // global cell offset
///                        const long long* lo,        // 3: iteration box lo
///                        const long long* hi,        // 3: iteration box hi
///                        double t, long long t_step,
///                        const double* params);
///
/// `fields[i]` points at the interior origin of component 0 of
/// kernel.fields[i]. Loop dim d runs over [lo[d], hi[d]) — the full sweep
/// is lo = 0, hi[d] = n[d] + extent_plus[d]. The host uses sub-boxes both
/// to split slabs across threads (outer dim only) and to run the
/// interior/frontier decomposition of the communication-hiding distributed
/// step (any dim). The vector backend re-anchors its alignment peel to the
/// actual row pointer at lo[0], so sub-range execution stays bitwise
/// identical to the monolithic sweep at any SIMD width.
/// `block_off` makes loop coordinates global (analytic T(z), Philox
/// counters) when a block is part of a larger distributed domain.
using KernelFn = void (*)(double* const*, const long long*, const long long*,
                          const long long*, const long long*,
                          const long long*, double, long long, const double*);

}  // namespace pfc::backend
