// CUDA backend (paper §3.5): strips the loop nest, maps loop counters to
// thread/block indices via an exchangeable thread-to-cell mapping strategy,
// and optionally uses approximate device intrinsics (fdividef, __frsqrt_rn)
// for operations the user marked as approximate.
//
// In this reproduction the emitted CUDA is validated textually and fed to
// the GPU performance model (no CUDA toolchain in the environment — see
// DESIGN.md §2); the emission pipeline itself is identical to the C path.
#pragma once

#include <string>

#include "pfc/ir/kernel.hpp"

namespace pfc::backend {

/// Thread-to-cell mapping strategies (paper: "several strategies are
/// implemented ... can be exchanged easily").
enum class ThreadMapping {
  Linear3D,   ///< 3D grid of 3D blocks, one thread per cell
  SliceXY,    ///< 2D grid over x/y, each thread loops over z
};

struct CudaEmitOptions {
  ThreadMapping mapping = ThreadMapping::Linear3D;
  bool fast_math = false;          ///< fdividef / __frsqrt_rn intrinsics
  std::array<int, 3> block_dim{64, 4, 2};
  /// Emit __threadfence() at the kernel's recorded fence positions.
  bool emit_fences = true;
};

/// Returns the generated .cu source. Entry: __global__ void <name>_cuda(...).
std::string emit_cuda(const ir::Kernel& k, const CudaEmitOptions& opts = {});

/// The launch-bounds comment/occupancy hint block dim as a dim3 initializer.
std::string launch_config(const ir::Kernel& k, const CudaEmitOptions& opts,
                          const std::array<long long, 3>& n);

}  // namespace pfc::backend
