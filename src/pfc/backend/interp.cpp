#include "pfc/backend/interp.hpp"

#include <cmath>
#include <unordered_map>

#include "pfc/rng/philox.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::backend {

using sym::Expr;
using sym::Kind;

struct InterpreterKernel::CompileCtx {
  std::unordered_map<std::string, int> temp_reg;  // temp symbol -> register
  std::unordered_map<std::string, int> param_index;
};

namespace {

int seg_of(ir::Level l) {
  switch (l) {
    case ir::Level::Invariant: return 0;
    case ir::Level::PerZ: return 1;
    case ir::Level::PerY: return 2;
    case ir::Level::Body: return 3;
  }
  return 3;
}

}  // namespace

InterpreterKernel::InterpreterKernel(const ir::Kernel& k) : kernel_(k) {
  CompileCtx ctx;
  for (std::size_t i = 0; i < k.scalar_params.size(); ++i) {
    ctx.param_index[k.scalar_params[i]->name()] = static_cast<int>(i);
  }
  for (const auto& sa : kernel_.body) {
    auto& seg = segs_[std::size_t(seg_of(sa.level))];
    const int r = compile_expr(sa.assign.rhs, seg, ctx);
    if (sa.assign.lhs->kind() == Kind::Symbol) {
      ctx.temp_reg[sa.assign.lhs->name()] = r;
    } else {
      PFC_ASSERT(sa.assign.lhs->kind() == Kind::FieldRef);
      Instr st;
      st.op = Op::Store;
      st.a = r;
      const auto& fr = sa.assign.lhs;
      st.field = -1;
      for (std::size_t i = 0; i < kernel_.fields.size(); ++i) {
        if (kernel_.fields[i]->id() == fr->field()->id()) {
          st.field = static_cast<int>(i);
          break;
        }
      }
      PFC_ASSERT(st.field >= 0);
      st.off = fr->offset();
      st.component = fr->component();
      seg.push_back(st);
    }
  }
}

int InterpreterKernel::compile_expr(const Expr& e, std::vector<Instr>& seg,
                                    CompileCtx& ctx) {
  const auto fresh = [&] { return num_regs_++; };
  const auto emit = [&](Instr in) {
    seg.push_back(in);
    return in.dst;
  };

  switch (e->kind()) {
    case Kind::Number: {
      Instr in;
      in.op = Op::Const;
      in.dst = fresh();
      in.imm = e->number();
      return emit(in);
    }
    case Kind::Symbol: {
      switch (e->builtin()) {
        case sym::Builtin::Coord0:
        case sym::Builtin::Coord1:
        case sym::Builtin::Coord2: {
          Instr in;
          in.op = Op::Coord;
          in.dst = fresh();
          in.pow_n = e->builtin() == sym::Builtin::Coord0   ? 0
                     : e->builtin() == sym::Builtin::Coord1 ? 1
                                                            : 2;
          return emit(in);
        }
        case sym::Builtin::Time: {
          Instr in;
          in.op = Op::Time;
          in.dst = fresh();
          return emit(in);
        }
        case sym::Builtin::TimeStep: {
          Instr in;
          in.op = Op::TimeStep;
          in.dst = fresh();
          return emit(in);
        }
        case sym::Builtin::None: break;
      }
      auto t = ctx.temp_reg.find(e->name());
      if (t != ctx.temp_reg.end()) return t->second;
      auto p = ctx.param_index.find(e->name());
      PFC_REQUIRE(p != ctx.param_index.end(),
                  "interpreter: unbound symbol " + e->name());
      Instr in;
      in.op = Op::Param;
      in.dst = fresh();
      in.pow_n = p->second;
      return emit(in);
    }
    case Kind::FieldRef: {
      Instr in;
      in.op = Op::Load;
      in.dst = fresh();
      in.field = -1;
      for (std::size_t i = 0; i < kernel_.fields.size(); ++i) {
        if (kernel_.fields[i]->id() == e->field()->id()) {
          in.field = static_cast<int>(i);
          break;
        }
      }
      PFC_REQUIRE(in.field >= 0, "interpreter: unknown field " +
                                     e->field()->name());
      in.off = e->offset();
      in.component = e->component();
      return emit(in);
    }
    case Kind::Random:
      PFC_REQUIRE(false, "interpreter: Random must be lowered to Philox");
    case Kind::Add: {
      int acc = compile_expr(e->arg(0), seg, ctx);
      for (std::size_t i = 1; i < e->arity(); ++i) {
        Instr in;
        in.op = Op::Add;
        in.a = acc;
        in.b = compile_expr(e->arg(i), seg, ctx);
        in.dst = fresh();
        acc = emit(in);
      }
      return acc;
    }
    case Kind::Mul: {
      int acc = compile_expr(e->arg(0), seg, ctx);
      for (std::size_t i = 1; i < e->arity(); ++i) {
        Instr in;
        in.op = Op::Mul;
        in.a = acc;
        in.b = compile_expr(e->arg(i), seg, ctx);
        in.dst = fresh();
        acc = emit(in);
      }
      return acc;
    }
    case Kind::Pow: {
      const int base = compile_expr(e->arg(0), seg, ctx);
      long n = 0;
      Instr in;
      in.a = base;
      in.dst = fresh();
      if (e->arg(1)->integer_value(&n)) {
        in.op = Op::PowInt;
        in.pow_n = n;
        return emit(in);
      }
      if (e->arg(1)->is_number(0.5)) {
        in.op = Op::Sqrt;
        return emit(in);
      }
      if (e->arg(1)->is_number(-0.5)) {
        in.op = Op::RSqrt;
        return emit(in);
      }
      in.op = Op::PowGen;
      in.b = compile_expr(e->arg(1), seg, ctx);
      return emit(in);
    }
    case Kind::Call: {
      Instr in;
      in.dst = fresh();
      switch (e->func()) {
        case sym::Func::Sqrt: in.op = Op::Sqrt; break;
        case sym::Func::RSqrt: in.op = Op::RSqrt; break;
        case sym::Func::Exp: in.op = Op::Exp; break;
        case sym::Func::Log: in.op = Op::Log; break;
        case sym::Func::Sin: in.op = Op::Sin; break;
        case sym::Func::Cos: in.op = Op::Cos; break;
        case sym::Func::Tanh: in.op = Op::Tanh; break;
        case sym::Func::Abs: in.op = Op::Abs; break;
        case sym::Func::Min: in.op = Op::Min; break;
        case sym::Func::Max: in.op = Op::Max; break;
        case sym::Func::Select: in.op = Op::Select; break;
        case sym::Func::Less: in.op = Op::Less; break;
        case sym::Func::Greater: in.op = Op::Greater; break;
        case sym::Func::LessEq: in.op = Op::LessEq; break;
        case sym::Func::GreaterEq: in.op = Op::GreaterEq; break;
        case sym::Func::PhiloxUniform: {
          in.op = Op::Philox;
          for (std::size_t i = 0; i < 6; ++i) {
            in.rng_args[i] = compile_expr(e->arg(i), seg, ctx);
          }
          return emit(in);
        }
      }
      in.a = compile_expr(e->arg(0), seg, ctx);
      if (e->arity() >= 2) in.b = compile_expr(e->arg(1), seg, ctx);
      if (e->arity() >= 3) in.c = compile_expr(e->arg(2), seg, ctx);
      return emit(in);
    }
    case Kind::Diff:
    case Kind::Dt:
      PFC_REQUIRE(false, "interpreter: undiscretized Diff/Dt node");
  }
  PFC_ASSERT(false, "unreachable");
}

namespace {

double powi(double b, long n) {
  if (n < 0) return 1.0 / powi(b, -n);
  double r = 1.0;
  while (n-- > 0) r *= b;  // matches the emitted repeated multiplication
  return r;
}

}  // namespace

void InterpreterKernel::run(const Binding& b,
                            const std::array<long long, 3>& n, double t,
                            long long t_step, ThreadPool* pool,
                            const CellRange* range) const {
  const RawArgs raw = marshal(kernel_, b, n);
  const CellRange box = range != nullptr ? *range : full_range(kernel_, n);
  if (box.cells() == 0) return;
  const int dims = kernel_.dims;
  const int outer = dims - 1;

  // resolve per-load pointer deltas for this launch
  struct Resolved {
    double* ptr;
    long long sy, sz;
  };
  std::vector<Resolved> res(kernel_.fields.size());
  for (std::size_t i = 0; i < kernel_.fields.size(); ++i) {
    res[i].ptr = raw.fields[i];
    res[i].sy = raw.strides[4 * i + 1];
    res[i].sz = raw.strides[4 * i + 2];
  }
  const auto delta = [&](const Instr& in) {
    const auto f = std::size_t(in.field);
    return in.off[0] + in.off[1] * res[f].sy + in.off[2] * res[f].sz +
           in.component * raw.strides[4 * f + 3];
  };

  const auto body = [&](long long lo, long long hi) {
    std::vector<double> regs(std::size_t(num_regs_), 0.0);
    long long cx = 0, cy = 0, cz = 0;

    const auto exec = [&](const std::vector<Instr>& seg) {
      for (const auto& in : seg) {
        double* r = regs.data();
        switch (in.op) {
          case Op::Const: r[in.dst] = in.imm; break;
          case Op::Param: r[in.dst] = b.params[std::size_t(in.pow_n)]; break;
          case Op::Coord: {
            const long long local = in.pow_n == 0 ? cx : in.pow_n == 1 ? cy : cz;
            r[in.dst] = double(local + raw.block_off[std::size_t(in.pow_n)]);
            break;
          }
          case Op::Time: r[in.dst] = t; break;
          case Op::TimeStep: r[in.dst] = double(t_step); break;
          case Op::Load: {
            const auto& f = res[std::size_t(in.field)];
            r[in.dst] = f.ptr[cx + cy * f.sy + cz * f.sz + delta(in)];
            break;
          }
          case Op::Store: {
            const auto& f = res[std::size_t(in.field)];
            f.ptr[cx + cy * f.sy + cz * f.sz + delta(in)] = r[in.a];
            break;
          }
          case Op::Add: r[in.dst] = r[in.a] + r[in.b]; break;
          case Op::Mul: r[in.dst] = r[in.a] * r[in.b]; break;
          case Op::Div: r[in.dst] = r[in.a] / r[in.b]; break;
          case Op::Neg: r[in.dst] = -r[in.a]; break;
          case Op::PowInt: r[in.dst] = powi(r[in.a], in.pow_n); break;
          case Op::PowGen: r[in.dst] = std::pow(r[in.a], r[in.b]); break;
          case Op::Sqrt: r[in.dst] = std::sqrt(r[in.a]); break;
          case Op::RSqrt: r[in.dst] = 1.0 / std::sqrt(r[in.a]); break;
          case Op::Exp: r[in.dst] = std::exp(r[in.a]); break;
          case Op::Log: r[in.dst] = std::log(r[in.a]); break;
          case Op::Sin: r[in.dst] = std::sin(r[in.a]); break;
          case Op::Cos: r[in.dst] = std::cos(r[in.a]); break;
          case Op::Tanh: r[in.dst] = std::tanh(r[in.a]); break;
          case Op::Abs: r[in.dst] = std::abs(r[in.a]); break;
          case Op::Min: r[in.dst] = std::fmin(r[in.a], r[in.b]); break;
          case Op::Max: r[in.dst] = std::fmax(r[in.a], r[in.b]); break;
          case Op::Select:
            r[in.dst] = r[in.a] != 0.0 ? r[in.b] : r[in.c];
            break;
          case Op::Less: r[in.dst] = r[in.a] < r[in.b] ? 1.0 : 0.0; break;
          case Op::Greater: r[in.dst] = r[in.a] > r[in.b] ? 1.0 : 0.0; break;
          case Op::LessEq: r[in.dst] = r[in.a] <= r[in.b] ? 1.0 : 0.0; break;
          case Op::GreaterEq:
            r[in.dst] = r[in.a] >= r[in.b] ? 1.0 : 0.0;
            break;
          case Op::Philox: {
            const auto v = [&](int i) {
              return (unsigned long long)(r[in.rng_args[std::size_t(i)]]);
            };
            r[in.dst] = rng::philox_uniform(v(0), v(1), v(2), v(3), v(4), v(5));
            break;
          }
          case Op::CopyReg: r[in.dst] = r[in.a]; break;
        }
      }
    };

    exec(segs_[0]);  // invariant (recomputed per thread: same values)
    const long long ylo = box.lo[1], yhi = box.hi[1];
    const long long xlo = box.lo[0], xhi = box.hi[0];
    if (dims == 3) {
      for (cz = lo; cz < hi; ++cz) {
        exec(segs_[1]);
        for (cy = ylo; cy < yhi; ++cy) {
          exec(segs_[2]);
          for (cx = xlo; cx < xhi; ++cx) exec(segs_[3]);
        }
      }
    } else if (dims == 2) {
      cz = 0;
      exec(segs_[1]);
      for (cy = lo; cy < hi; ++cy) {
        exec(segs_[2]);
        for (cx = xlo; cx < xhi; ++cx) exec(segs_[3]);
      }
    } else {
      cz = cy = 0;
      exec(segs_[1]);
      exec(segs_[2]);
      for (cx = lo; cx < hi; ++cx) exec(segs_[3]);
    }
  };

  const long long outer_lo = box.lo[std::size_t(outer)];
  const long long outer_hi = box.hi[std::size_t(outer)];
  if (pool == nullptr || pool->num_threads() == 1 ||
      outer_hi - outer_lo < 2) {
    body(outer_lo, outer_hi);
    return;
  }
  pool->parallel_for(outer_lo, outer_hi, body);
}

}  // namespace pfc::backend
