// Portable interpreter backend: compiles the IR into a flat register
// bytecode and evaluates it per cell. Slower than the JIT but has no
// external toolchain dependency; its primary role is differential testing
// (JIT vs interpreter must agree to machine precision) and running on hosts
// without a compiler.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pfc/backend/kernel_runner.hpp"
#include "pfc/ir/kernel.hpp"

namespace pfc::backend {

class InterpreterKernel {
 public:
  explicit InterpreterKernel(const ir::Kernel& k);

  const ir::Kernel& kernel() const { return kernel_; }

  /// Executes the kernel over the block (same semantics as run_compiled,
  /// including optional sub-box `range` execution).
  void run(const Binding& b, const std::array<long long, 3>& n, double t,
           long long t_step, ThreadPool* pool = nullptr,
           const CellRange* range = nullptr) const;

  /// Virtual registers used (a crude complexity metric for tests).
  int num_registers() const { return num_regs_; }

 private:
  enum class Op : std::uint8_t {
    Const, Param, Coord, Time, TimeStep,
    Load, Store,
    Add, Mul, Div, Neg, PowInt, PowGen,
    Sqrt, RSqrt, Exp, Log, Sin, Cos, Tanh, Abs,
    Min, Max, Select, Less, Greater, LessEq, GreaterEq,
    Philox, CopyReg,
  };

  struct Instr {
    Op op;
    int dst = -1;
    int a = -1, b = -1, c = -1;
    double imm = 0.0;
    int field = -1;                 ///< Load/Store: index into kernel.fields
    std::array<int, 3> off{0, 0, 0};
    int component = 0;
    long pow_n = 0;                 ///< PowInt exponent / Coord dim / Param i
    std::array<int, 6> rng_args{};  ///< Philox operand registers
  };

  struct CompileCtx;

  int compile_expr(const sym::Expr& e, std::vector<Instr>& seg,
                   CompileCtx& ctx);

  ir::Kernel kernel_;
  // segments: 0 = invariant, 1 = per-z, 2 = per-y, 3 = body
  std::array<std::vector<Instr>, 4> segs_;
  int num_regs_ = 0;
};

}  // namespace pfc::backend
