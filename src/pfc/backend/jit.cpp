#include "pfc/backend/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pfc/support/assert.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::backend {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void remove_tree(const std::string& dir) {
  // scratch dirs contain only our three files; no recursion needed
  for (const char* f : {"kernel.cpp", "kernel.so", "cc.log"}) {
    std::remove((dir + "/" + f).c_str());
  }
  ::rmdir(dir.c_str());
}

}  // namespace

int probe_native_vector_width() {
  static const int cached = [] {
    if (const char* env = std::getenv("PFC_VECTOR_WIDTH")) {
      const int w = std::atoi(env);
      if (w == 1 || w == 2 || w == 4 || w == 8) return w;
    }
    const char* env_cxx = std::getenv("CXX");
    const std::string compiler =
        (env_cxx != nullptr && *env_cxx != '\0') ? env_cxx : "c++";
    char tmpl[] = "/tmp/pfc_probe_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd < 0) return 4;
    ::close(fd);
    const std::string cmd = compiler +
                            " -O3 -march=native -dM -E -x c++ /dev/null > " +
                            tmpl + " 2>/dev/null";
    const int rc = std::system(cmd.c_str());
    const std::string macros = rc == 0 ? read_file(tmpl) : std::string{};
    std::remove(tmpl);
    if (macros.find("__AVX512F__") != std::string::npos) return 8;
    if (macros.find("__AVX__") != std::string::npos) return 4;
    if (macros.find("__SSE2__") != std::string::npos) return 2;
    if (macros.find("__ARM_NEON") != std::string::npos) return 2;
    return 4;
  }();
  return cached;
}

JitLibrary JitLibrary::compile(const std::string& source,
                               const Options& opts) {
  char tmpl[] = "/tmp/pfc_jit_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  PFC_REQUIRE(dir != nullptr, "mkdtemp failed for JIT scratch space");

  JitLibrary lib;
  lib.dir_ = dir;
  lib.keep_ = opts.keep_sources;

  const std::string src_path = lib.dir_ + "/kernel.cpp";
  {
    std::ofstream out(src_path);
    PFC_REQUIRE(out.good(), "cannot write JIT source file");
    out << source;
  }

  std::string compiler = opts.compiler;
  if (compiler.empty()) {
    const char* env = std::getenv("CXX");
    compiler = (env != nullptr && *env != '\0') ? env : "c++";
  }

  std::ostringstream cmd;
  cmd << compiler << " " << opts.optimization
      << " -shared -fPIC -o " << lib.dir_ << "/kernel.so " << src_path
      << " " << opts.extra_flags << " -lm > " << lib.dir_ << "/cc.log 2>&1";

  Timer timer;
  const int rc = std::system(cmd.str().c_str());
  lib.compile_seconds_ = timer.seconds();
  if (rc != 0) {
    const std::string log = read_file(lib.dir_ + "/cc.log");
    if (!opts.keep_sources) remove_tree(lib.dir_);
    throw Error("pfc JIT compilation failed:\n" + log);
  }

  lib.handle_ = ::dlopen((lib.dir_ + "/kernel.so").c_str(),
                         RTLD_NOW | RTLD_LOCAL);
  if (lib.handle_ == nullptr) {
    const std::string err = ::dlerror();
    if (!opts.keep_sources) remove_tree(lib.dir_);
    throw Error("pfc JIT dlopen failed: " + err);
  }
  return lib;
}

JitLibrary::JitLibrary(JitLibrary&& other) noexcept
    : handle_(other.handle_),
      dir_(std::move(other.dir_)),
      keep_(other.keep_),
      compile_seconds_(other.compile_seconds_) {
  other.handle_ = nullptr;
  other.dir_.clear();
}

JitLibrary& JitLibrary::operator=(JitLibrary&& other) noexcept {
  if (this != &other) {
    this->~JitLibrary();
    new (this) JitLibrary(std::move(other));
  }
  return *this;
}

JitLibrary::~JitLibrary() {
  if (handle_ != nullptr) ::dlclose(handle_);
  if (!dir_.empty() && !keep_) remove_tree(dir_);
}

KernelFn JitLibrary::get(const std::string& name) const {
  PFC_REQUIRE(handle_ != nullptr, "JitLibrary is empty (moved from?)");
  void* sym = ::dlsym(handle_, name.c_str());
  PFC_REQUIRE(sym != nullptr, "JIT symbol not found: " + name);
  return reinterpret_cast<KernelFn>(sym);
}

}  // namespace pfc::backend
