#include "pfc/backend/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "pfc/support/assert.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::backend {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void remove_tree(const std::string& dir) {
  // Besides our own kernel.cpp/kernel.so/cc.log the external compiler may
  // leave temp objects behind on a failed compile or link (LTO scratch,
  // -save-temps passed via extra flags); remove whatever is there so a
  // failure never leaks scratch space.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Scratch root for JIT build directories; PFC_JIT_TMPDIR overrides /tmp
// (tests point it at a private directory to assert nothing leaks).
std::string scratch_root() {
  if (const char* env = std::getenv("PFC_JIT_TMPDIR")) {
    if (*env != '\0') {
      std::error_code ec;
      std::filesystem::create_directories(env, ec);
      return env;
    }
  }
  return "/tmp";
}

}  // namespace

int probe_native_vector_width() {
  // The env override is re-read on every call (not cached) so a bad value
  // always fails fast and tests can flip it; only the ISA probe is cached.
  if (const char* env = std::getenv("PFC_VECTOR_WIDTH")) {
    if (*env != '\0') {
      char* end = nullptr;
      const long w = std::strtol(env, &end, 10);
      const bool valid =
          end != env && *end == '\0' && (w == 1 || w == 2 || w == 4 || w == 8);
      if (!valid) {
        throw Error(std::string("pfc: invalid PFC_VECTOR_WIDTH \"") + env +
                    "\" (accepted values: 1, 2, 4, 8)");
      }
      return int(w);
    }
  }
  static const int cached = [] {
    const char* env_cxx = std::getenv("CXX");
    const std::string compiler =
        (env_cxx != nullptr && *env_cxx != '\0') ? env_cxx : "c++";
    // Same scratch convention as the per-compile build dirs: honor
    // PFC_JIT_TMPDIR so sandboxed runs never touch the real /tmp.
    std::string tmpl_str = scratch_root() + "/pfc_probe_XXXXXX";
    char* tmpl = tmpl_str.data();
    const int fd = ::mkstemp(tmpl);
    if (fd < 0) return 4;
    ::close(fd);
    const std::string cmd = compiler +
                            " -O3 -march=native -dM -E -x c++ /dev/null > " +
                            tmpl + " 2>/dev/null";
    const int rc = std::system(cmd.c_str());
    const std::string macros = rc == 0 ? read_file(tmpl) : std::string{};
    std::remove(tmpl);
    if (macros.find("__AVX512F__") != std::string::npos) return 8;
    if (macros.find("__AVX__") != std::string::npos) return 4;
    if (macros.find("__SSE2__") != std::string::npos) return 2;
    if (macros.find("__ARM_NEON") != std::string::npos) return 2;
    return 4;
  }();
  return cached;
}

JitLibrary JitLibrary::load(const std::string& so_path) {
  JitLibrary lib;
  lib.so_path_ = so_path;
  lib.handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (lib.handle_ == nullptr) {
    const std::string err = ::dlerror();
    throw Error("pfc JIT dlopen failed for " + so_path + ": " + err);
  }
  return lib;
}

JitLibrary JitLibrary::compile(const std::string& source,
                               const Options& opts) {
  // pid + atomic counter make the scratch name unique before mkdtemp even
  // runs: two threads compiling concurrently (the job server does this all
  // day) and two processes sharing PFC_JIT_TMPDIR each get their own
  // subdirectory, and a leftover directory from a crashed run can never be
  // picked up by a later compile.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmpl_str = scratch_root() + "/pfc_jit_p" +
                               std::to_string(::getpid()) + "_c" +
                               std::to_string(counter.fetch_add(1)) +
                               "_XXXXXX";
  std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
  tmpl.push_back('\0');
  const char* dir = ::mkdtemp(tmpl.data());
  PFC_REQUIRE(dir != nullptr, "mkdtemp failed for JIT scratch space");

  JitLibrary lib;
  lib.dir_ = dir;
  lib.keep_ = opts.keep_sources;

  const std::string src_path = lib.dir_ + "/kernel.cpp";
  {
    std::ofstream out(src_path);
    if (!out.good()) {
      remove_tree(lib.dir_);
      lib.dir_.clear();
      throw Error("cannot write JIT source file " + src_path);
    }
    out << source;
  }

  std::string compiler = opts.compiler;
  if (compiler.empty()) {
    const char* env = std::getenv("CXX");
    compiler = (env != nullptr && *env != '\0') ? env : "c++";
  }

  std::ostringstream cmd;
  cmd << compiler << " " << opts.optimization
      << " -shared -fPIC -o " << lib.dir_ << "/kernel.so " << src_path
      << " " << opts.extra_flags << " -lm > " << lib.dir_ << "/cc.log 2>&1";

  Timer timer;
  const int rc = std::system(cmd.str().c_str());
  lib.compile_seconds_ = timer.seconds();
  if (rc != 0) {
    const std::string log = read_file(lib.dir_ + "/cc.log");
    if (!opts.keep_sources) remove_tree(lib.dir_);
    throw Error("pfc JIT compilation failed:\n" + log);
  }

  lib.so_path_ = lib.dir_ + "/kernel.so";
  lib.handle_ = ::dlopen(lib.so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (lib.handle_ == nullptr) {
    const std::string err = ::dlerror();
    if (!opts.keep_sources) remove_tree(lib.dir_);
    throw Error("pfc JIT dlopen failed: " + err);
  }
  return lib;
}

JitLibrary::JitLibrary(JitLibrary&& other) noexcept
    : handle_(other.handle_),
      dir_(std::move(other.dir_)),
      so_path_(std::move(other.so_path_)),
      keep_(other.keep_),
      compile_seconds_(other.compile_seconds_) {
  other.handle_ = nullptr;
  other.dir_.clear();
  other.so_path_.clear();
}

JitLibrary& JitLibrary::operator=(JitLibrary&& other) noexcept {
  if (this != &other) {
    this->~JitLibrary();
    new (this) JitLibrary(std::move(other));
  }
  return *this;
}

JitLibrary::~JitLibrary() {
  if (handle_ != nullptr) ::dlclose(handle_);
  if (!dir_.empty() && !keep_) remove_tree(dir_);
}

KernelFn JitLibrary::get(const std::string& name) const {
  PFC_REQUIRE(handle_ != nullptr, "JitLibrary is empty (moved from?)");
  void* sym = ::dlsym(handle_, name.c_str());
  PFC_REQUIRE(sym != nullptr, "JIT symbol not found: " + name);
  return reinterpret_cast<KernelFn>(sym);
}

}  // namespace pfc::backend
