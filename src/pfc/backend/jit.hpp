// JIT execution of generated kernels: the generated C++ source is compiled
// with the system compiler into a shared object and loaded with dlopen.
// This mirrors the paper's production path (generate → vendor compiler →
// link into the application); see DESIGN.md §2 for the substitution note.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pfc/backend/codegen_common.hpp"

namespace pfc::backend {

/// Widest double-vector (in lanes) the JIT's target supports, probed once
/// by preprocessing an empty file with the JIT compiler's own flags
/// (-march=native) and inspecting the ISA macros: AVX-512 → 8, AVX → 4,
/// SSE2/NEON → 2. The env var PFC_VECTOR_WIDTH (1/2/4/8) overrides the
/// probe and is checked strictly: any other value throws pfc::Error listing
/// the accepted ones. An unusable compiler falls back to 4 (GCC/Clang
/// vector extensions lower any width to whatever the target has). The ISA
/// probe is cached after the first call; the env override is not.
int probe_native_vector_width();

/// A compiled shared object holding one or more kernel entry points.
/// Move-only RAII: unloads the library and removes the scratch directory.
/// Scratch directories live under /tmp (or PFC_JIT_TMPDIR when set); each
/// compile gets its own "pfc_jit_p<pid>_c<counter>_XXXXXX" subdirectory
/// (pid + a process-wide atomic counter), so concurrent compiles in one
/// process — or several server processes sharing one PFC_JIT_TMPDIR — can
/// never collide. Scratch space is fully removed — including any stray
/// compiler artifacts — on failure too.
class JitLibrary {
 public:
  struct Options {
    std::string compiler;             ///< default: $CXX or "c++"
    std::string extra_flags;          ///< appended to the command line
    bool keep_sources = false;        ///< keep scratch dir for inspection
    std::string optimization = "-O3 -march=native";
  };

  /// Compiles `source`; throws pfc::Error with the compiler diagnostics on
  /// failure.
  static JitLibrary compile(const std::string& source, const Options& opts);
  static JitLibrary compile(const std::string& source) {
    return compile(source, Options{});
  }

  /// dlopens an already-compiled shared object (a kernel-cache hit). The
  /// file is owned by the caller (the cache): no scratch directory is
  /// created and nothing is removed on destruction. Throws pfc::Error when
  /// the file is missing or not loadable (a corrupted cache entry).
  static JitLibrary load(const std::string& so_path);

  JitLibrary(JitLibrary&& other) noexcept;
  JitLibrary& operator=(JitLibrary&& other) noexcept;
  ~JitLibrary();

  /// Resolves an entry point; throws if missing.
  KernelFn get(const std::string& name) const;

  /// Scratch directory (useful with keep_sources; empty for load()ed
  /// libraries).
  const std::string& directory() const { return dir_; }

  /// Path of the loaded shared object (inside the scratch directory for
  /// compiled libraries, the cache path for load()ed ones).
  const std::string& shared_object_path() const { return so_path_; }

  /// Wall-clock seconds the external compiler took (paper §5.1 discusses
  /// recompilation cost); 0.0 for load()ed libraries.
  double compile_seconds() const { return compile_seconds_; }

 private:
  JitLibrary() = default;

  void* handle_ = nullptr;
  std::string dir_;
  std::string so_path_;
  bool keep_ = false;
  double compile_seconds_ = 0.0;
};

}  // namespace pfc::backend
