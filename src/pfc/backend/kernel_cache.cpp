#include "pfc/backend/kernel_cache.hpp"

#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "pfc/obs/metrics.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/support/sha256.hpp"

namespace pfc::backend {

namespace fs = std::filesystem;

namespace {

/// Shared-registry mirrors of the cache accounting (what the serve
/// daemon's "metrics" request exposes; Impl's own counters stay the
/// source of truth for stats()).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& bytes;
  obs::Gauge& entries;
};

CacheMetrics& cache_metrics() {
  auto& m = obs::MetricsRegistry::shared();
  static CacheMetrics cm{
      m.counter("pfc_kernel_cache_hits_total",
                "Kernel-cache lookups served from the index"),
      m.counter("pfc_kernel_cache_misses_total",
                "Kernel-cache lookups that compiled"),
      m.counter("pfc_kernel_cache_evictions_total",
                "Cached kernels unlinked by the LRU budget"),
      m.gauge("pfc_kernel_cache_bytes", "Bytes of cached shared objects"),
      m.gauge("pfc_kernel_cache_entries", "Cached shared objects"),
  };
  return cm;
}

}  // namespace

struct KernelCache::Impl {
  struct Entry {
    std::shared_ptr<JitLibrary> library;  ///< null until first load
    std::string path;
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;  ///< LRU clock (monotonic sequence)
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::string, Entry> entries;   ///< key -> entry
  std::set<std::string> in_flight;        ///< keys currently compiling
  std::set<std::string> scanned_dirs;     ///< directories already indexed
  std::uint64_t clock = 0;
  std::uint64_t hits = 0, misses = 0, evictions = 0;

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& [k, e] : entries) sum += e.bytes;
    return sum;
  }

  /// Indexes pre-existing *.so files of `dir` once (cross-process reuse:
  /// a restarted server rediscovers what earlier processes compiled).
  /// Called under the lock.
  void scan_dir(const std::string& dir) {
    if (!scanned_dirs.insert(dir).second) return;
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(dir, ec)) {
      const fs::path p = de.path();
      if (p.extension() != ".so") continue;
      const std::string key = p.stem().string();
      if (key.size() != 64 || entries.count(key) != 0) continue;
      Entry e;
      e.path = p.string();
      e.bytes = std::uint64_t(fs::file_size(p, ec));
      e.last_use = clock++;
      entries.emplace(key, std::move(e));
    }
  }

  /// Unlinks least-recently-used entries until the budget holds, never
  /// touching `keep` (the entry just inserted) so a single oversized
  /// kernel still caches. Called under the lock.
  void evict_to_budget(std::uint64_t max_bytes, const std::string& keep) {
    if (max_bytes == 0) return;
    while (entries.size() > 1 && total_bytes() > max_bytes) {
      auto victim = entries.end();
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->first == keep) continue;
        if (victim == entries.end() ||
            it->second.last_use < victim->second.last_use) {
          victim = it;
        }
      }
      if (victim == entries.end()) return;
      std::error_code ec;
      fs::remove(victim->second.path, ec);
      entries.erase(victim);
      ++evictions;
      cache_metrics().evictions.add(1);
    }
  }

  /// Refreshes the shared-registry level gauges. Called under the lock.
  void publish_levels() const {
    cache_metrics().bytes.set(double(total_bytes()));
    cache_metrics().entries.set(double(entries.size()));
  }
};

std::shared_ptr<KernelCache::Impl> KernelCache::make_impl() {
  return std::make_shared<Impl>();
}

KernelCache& KernelCache::shared() {
  static KernelCache instance;
  return instance;
}

std::string KernelCache::key_of(const std::string& source,
                                const JitLibrary::Options& opts) {
  std::string compiler = opts.compiler;
  if (compiler.empty()) {
    const char* env = std::getenv("CXX");
    compiler = (env != nullptr && *env != '\0') ? env : "c++";
  }
  support::Sha256 h;
  h.update(source);
  // NUL separators keep (flags, source) framing unambiguous.
  const char sep = '\0';
  h.update(&sep, 1);
  h.update(compiler);
  h.update(&sep, 1);
  h.update(opts.optimization);
  h.update(&sep, 1);
  h.update(opts.extra_flags);
  const auto d = h.digest();
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xf]);
  }
  return out;
}

KernelCacheResult KernelCache::acquire(const std::string& source,
                                       const JitLibrary::Options& opts,
                                       const KernelCacheConfig& config) {
  PFC_REQUIRE(!config.directory.empty(),
              "KernelCache::acquire needs a cache directory");
  std::shared_ptr<Impl> impl = impl_;

  KernelCacheResult result;
  result.key = key_of(source, opts);
  const std::string cache_path =
      config.directory + "/" + result.key + ".so";

  std::error_code ec;
  fs::create_directories(config.directory, ec);

  std::unique_lock<std::mutex> lock(impl->mutex);
  impl->scan_dir(config.directory);

  for (;;) {
    auto it = impl->entries.find(result.key);
    if (it != impl->entries.end()) {
      Impl::Entry& e = it->second;
      if (e.library == nullptr) {
        // Disk entry from a previous process (or an eviction survivor):
        // map it now. A corrupted file is removed and falls through to a
        // fresh compile instead of failing the job.
        try {
          e.library =
              std::make_shared<JitLibrary>(JitLibrary::load(e.path));
        } catch (const Error&) {
          fs::remove(e.path, ec);
          impl->entries.erase(it);
          break;  // recompile below
        }
      }
      e.last_use = impl->clock++;
      ++impl->hits;
      cache_metrics().hits.add(1);
      impl->publish_levels();
      result.library = e.library;
      result.hit = true;
      return result;
    }
    if (impl->in_flight.count(result.key) == 0) break;
    // Another thread is compiling this exact kernel: wait for it, then
    // re-check the index (one compile serves every concurrent requester).
    impl->cv.wait(lock);
  }

  impl->in_flight.insert(result.key);
  lock.unlock();

  std::shared_ptr<JitLibrary> library;
  std::uint64_t so_bytes = 0;
  try {
    JitLibrary compiled = JitLibrary::compile(source, opts);
    result.compile_seconds = compiled.compile_seconds();
    // Publish atomically: copy into the cache under a unique tmp name,
    // then rename. Readers only ever see complete files.
    const std::string tmp =
        cache_path + ".tmp." + std::to_string(::getpid());
    fs::copy_file(compiled.shared_object_path(), tmp,
                  fs::copy_options::overwrite_existing, ec);
    if (!ec) fs::rename(tmp, cache_path, ec);
    if (ec) {
      // Cache directory unusable (full disk, bad permissions): serve the
      // scratch-compiled library uncached rather than failing the job.
      fs::remove(tmp, ec);
      library = std::make_shared<JitLibrary>(std::move(compiled));
    } else {
      so_bytes = std::uint64_t(fs::file_size(cache_path, ec));
      // Drop the scratch copy and map the published file, so the resident
      // mapping and the index agree on one path.
      library = std::make_shared<JitLibrary>(JitLibrary::load(cache_path));
    }
  } catch (...) {
    lock.lock();
    impl->in_flight.erase(result.key);
    ++impl->misses;
    cache_metrics().misses.add(1);
    impl->cv.notify_all();
    throw;
  }

  lock.lock();
  impl->in_flight.erase(result.key);
  ++impl->misses;
  cache_metrics().misses.add(1);
  if (so_bytes > 0) {
    Impl::Entry e;
    e.library = library;
    e.path = cache_path;
    e.bytes = so_bytes;
    e.last_use = impl->clock++;
    impl->entries[result.key] = std::move(e);
    impl->evict_to_budget(config.max_bytes, result.key);
  }
  impl->publish_levels();
  impl->cv.notify_all();

  result.library = std::move(library);
  result.hit = false;
  return result;
}

KernelCacheStats KernelCache::stats() const {
  std::shared_ptr<Impl> impl = impl_;
  std::lock_guard<std::mutex> lock(impl->mutex);
  KernelCacheStats s;
  s.hits = impl->hits;
  s.misses = impl->misses;
  s.evictions = impl->evictions;
  s.bytes = impl->total_bytes();
  s.entries = impl->entries.size();
  return s;
}

void KernelCache::reset() {
  std::shared_ptr<Impl> impl = impl_;
  std::lock_guard<std::mutex> lock(impl->mutex);
  impl->entries.clear();
  impl->scanned_dirs.clear();
  impl->hits = impl->misses = impl->evictions = 0;
  impl->clock = 0;
  impl->publish_levels();
}

KernelCacheConfig kernel_cache_config_from_env() {
  KernelCacheConfig config;
  config.directory.clear();
  if (const char* dir = std::getenv("PFC_KERNEL_CACHE_DIR")) {
    if (*dir != '\0') config.directory = dir;
  }
  if (const char* mb = std::getenv("PFC_KERNEL_CACHE_MB")) {
    if (*mb != '\0') {
      char* end = nullptr;
      const long long v = std::strtoll(mb, &end, 10);
      if (end == mb || *end != '\0' || v < 0) {
        throw Error(std::string("pfc: invalid PFC_KERNEL_CACHE_MB \"") + mb +
                    "\" (expected a non-negative integer, 0 = unlimited)");
      }
      config.max_bytes = std::uint64_t(v) << 20;
    }
  }
  return config;
}

}  // namespace pfc::backend
