// Content-addressed kernel cache (ROADMAP item 1): the expensive artifact
// of this whole pipeline is the JIT-compiled shared object, so it is shared
// by content — SHA-256 of the generated C source plus every flag that
// changes the binary (compiler, optimization level, extra flags) — rather
// than by job identity. The thousandth job of a given model+params+dt+width
// combination pays a dlopen, not a compiler run.
//
// Two layers back one index:
//   * on disk, "<dir>/<key>.so" published atomically (tmp + rename), so
//     entries survive process restarts and several server processes can
//     share one directory;
//   * in memory, the dlopened library handle per key, so concurrent jobs in
//     one process share a single mapping, and requests for a key that is
//     already compiling wait for that compile instead of duplicating it.
//
// Eviction is LRU by total shared-object bytes. Evicting an entry unlinks
// the file and drops the index entry; libraries already handed out stay
// valid (the mapping outlives the unlink). A cache file that fails to
// dlopen — truncated, corrupted, wrong architecture — is removed and the
// request falls back to a fresh compile; corruption can cost time, never
// correctness. Hit/miss/eviction counters surface in CompileReport's
// "cache" section (report schema v5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pfc/backend/jit.hpp"

namespace pfc::backend {

/// Per-request cache knobs (populated from app::CompileOptions or the
/// PFC_KERNEL_CACHE_DIR / PFC_KERNEL_CACHE_MB environment).
struct KernelCacheConfig {
  std::string directory;  ///< empty = caching disabled
  /// LRU byte budget over the cached shared objects (0 = unlimited).
  std::uint64_t max_bytes = 256ull << 20;
};

/// Process-wide cache counters (cumulative since start/reset).
struct KernelCacheStats {
  std::uint64_t hits = 0;    ///< memory or disk hits
  std::uint64_t misses = 0;  ///< compiles actually run
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;   ///< current resident shared-object bytes
  std::uint64_t entries = 0;
};

/// What acquire() hands back: the library plus the provenance the compile
/// report records.
struct KernelCacheResult {
  std::shared_ptr<JitLibrary> library;
  std::string key;      ///< SHA-256 content address (64 hex chars)
  bool hit = false;     ///< served without running the external compiler
  double compile_seconds = 0.0;  ///< external-compiler wall time (0 on hit)
};

class KernelCache {
 public:
  /// The process-wide instance every compile funnels through (one index =
  /// one dedup domain for concurrent jobs).
  static KernelCache& shared();

  /// Content address of (source, opts): SHA-256 over the source text and
  /// the compiler/optimization/extra-flags triple. keep_sources is
  /// deliberately excluded — it changes scratch handling, not the binary.
  static std::string key_of(const std::string& source,
                            const JitLibrary::Options& opts);

  /// Returns the library for (source, opts), compiling at most once per
  /// key across all concurrent callers. Throws pfc::Error only when a
  /// fresh compile fails (a corrupted cache entry recompiles instead).
  KernelCacheResult acquire(const std::string& source,
                            const JitLibrary::Options& opts,
                            const KernelCacheConfig& config);

  KernelCacheStats stats() const;

  /// Test hook: drops the in-memory index and zeroes the counters. Cache
  /// files on disk are left alone (they are rediscovered as disk hits).
  void reset();

  KernelCache() = default;
  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_ = make_impl();
  static std::shared_ptr<Impl> make_impl();
};

/// The cache configuration the environment selects when the options carry
/// none: PFC_KERNEL_CACHE_DIR enables caching, PFC_KERNEL_CACHE_MB caps it
/// (default 256 MB). Returns a disabled config when the env is unset.
KernelCacheConfig kernel_cache_config_from_env();

}  // namespace pfc::backend
