#include "pfc/backend/kernel_runner.hpp"

#include <algorithm>
#include <unordered_map>

#include "pfc/support/assert.hpp"

namespace pfc::backend {

std::unordered_map<std::uint64_t, OffsetRange> read_offset_ranges(
    const ir::Kernel& k) {
  std::unordered_map<std::uint64_t, OffsetRange> ranges;
  for (const auto& sa : k.body) {
    for (const auto& fr : sym::field_refs(sa.assign.rhs)) {
      auto& r = ranges[fr->field()->id()];
      for (int d = 0; d < 3; ++d) {
        r.lo[std::size_t(d)] =
            std::min(r.lo[std::size_t(d)], fr->offset()[std::size_t(d)]);
        r.hi[std::size_t(d)] =
            std::max(r.hi[std::size_t(d)], fr->offset()[std::size_t(d)]);
      }
    }
  }
  return ranges;
}

CellRange full_range(const ir::Kernel& k, const std::array<long long, 3>& n) {
  CellRange r;
  for (int d = 0; d < k.dims; ++d) {
    r.lo[std::size_t(d)] = 0;
    r.hi[std::size_t(d)] =
        n[std::size_t(d)] + k.extent_plus[std::size_t(d)];
  }
  return r;
}

RawArgs marshal(const ir::Kernel& k, const Binding& b,
                const std::array<long long, 3>& n) {
  PFC_REQUIRE(b.arrays.size() == k.fields.size(),
              "binding has wrong number of arrays for kernel " + k.name);
  PFC_REQUIRE(b.params.size() == k.scalar_params.size(),
              "binding has wrong number of scalar params for " + k.name);

  // exact per-field, per-dim signed offset ranges of all reads
  const auto ranges = read_offset_ranges(k);
  RawArgs raw;
  raw.n = n;
  raw.block_off = b.block_offset;
  raw.fields.reserve(k.fields.size());
  raw.strides.reserve(4 * k.fields.size());

  for (std::size_t i = 0; i < k.fields.size(); ++i) {
    Array* a = b.arrays[i];
    PFC_REQUIRE(a != nullptr, "null array bound to kernel " + k.name);
    PFC_REQUIRE(a->field()->id() == k.fields[i]->id(),
                "array/field mismatch at position " + std::to_string(i) +
                    " of kernel " + k.name + ": expected " +
                    k.fields[i]->name() + ", got " + a->field()->name());
    bool written = false;
    for (const auto& w : k.writes) {
      written = written || w->id() == a->field()->id();
    }
    const auto range_it = ranges.find(a->field()->id());
    for (int d = 0; d < k.dims; ++d) {
      const long long iter = n[std::size_t(d)] +
                             k.extent_plus[std::size_t(d)];
      if (written) {
        // stores land at offset 0 of every iteration cell
        PFC_REQUIRE(a->size()[std::size_t(d)] >= iter,
                    "array " + a->field()->name() +
                        " too small for kernel " + k.name);
      }
      if (range_it != ranges.end()) {
        // reads must be covered by interior + ghosts of the iteration box
        const auto& r = range_it->second;
        PFC_REQUIRE(a->ghost_layers() >= -r.lo[std::size_t(d)],
                    "array " + a->field()->name() +
                        " lacks ghost layers for kernel " + k.name);
        PFC_REQUIRE(a->size()[std::size_t(d)] + a->ghost_layers() >=
                        iter + r.hi[std::size_t(d)],
                    "array " + a->field()->name() +
                        " does not cover the iteration box of " + k.name);
      }
    }
    raw.fields.push_back(a->origin(0));
    raw.strides.push_back(a->stride(0));
    raw.strides.push_back(a->stride(1));
    raw.strides.push_back(a->stride(2));
    raw.strides.push_back(a->component_stride());
  }
  return raw;
}

void run_compiled(const ir::Kernel& k, KernelFn fn, const Binding& b,
                  const std::array<long long, 3>& n, double t,
                  long long t_step, ThreadPool* pool,
                  obs::TraceRecorder* tracer, int vector_width,
                  const CellRange* range, const SlabPlan* plan) {
  const RawArgs raw = marshal(k, b, n);
  const CellRange box = range != nullptr ? *range : full_range(k, n);
  if (box.cells() == 0) return;
  const int outer = k.dims - 1;

  const auto launch = [&](long long lo, long long hi) {
    obs::TraceSpan span(tracer, k.name.c_str(), "slab", t_step, 0);
    std::array<long long, 3> slab_lo = box.lo;
    std::array<long long, 3> slab_hi = box.hi;
    slab_lo[std::size_t(outer)] = lo;
    slab_hi[std::size_t(outer)] = hi;
    fn(raw.fields.data(), raw.strides.data(), raw.n.data(),
       raw.block_off.data(), slab_lo.data(), slab_hi.data(), t, t_step,
       b.params.data());
  };

  const long long outer_lo = box.lo[std::size_t(outer)];
  const long long outer_hi = box.hi[std::size_t(outer)];
  if (pool == nullptr || pool->num_threads() == 1 ||
      outer_hi - outer_lo < 2) {
    launch(outer_lo, outer_hi);
    return;
  }
  if (plan != nullptr) {
    pool->run_on_all([&](int w) {
      const auto [lo, hi] = plan->slab(w, outer_lo, outer_hi);
      if (lo < hi) launch(lo, hi);
    });
    return;
  }
  const long long align =
      (k.dims == 1 && vector_width > 1) ? vector_width : 1;
  pool->parallel_for(outer_lo, outer_hi, launch, align);
}

}  // namespace pfc::backend
