// Binding of runtime arrays to kernel arguments, validation, and threaded
// slab dispatch — shared by the JIT and interpreter backends.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pfc/backend/codegen_common.hpp"
#include "pfc/field/array.hpp"
#include "pfc/obs/trace.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc::backend {

/// Runtime arguments of one kernel launch. `arrays` must match
/// kernel.fields order; `params` must match kernel.scalar_params order.
struct Binding {
  std::vector<Array*> arrays;
  std::vector<double> params;
  /// Global cell offset of this block (coordinates/RNG counters become
  /// global when blocks tile a distributed domain).
  std::array<long long, 3> block_offset{0, 0, 0};
};

/// Marshalled raw arguments in the generated-code ABI.
struct RawArgs {
  std::vector<double*> fields;
  std::vector<long long> strides;  // 4 per field
  std::array<long long, 3> n{1, 1, 1};
  std::array<long long, 3> block_off{0, 0, 0};
};

/// Validates shapes/ghost layers against the kernel's needs and marshals.
/// `n` is the block interior size in cells (the cell lattice; staggered
/// arrays must be allocated with interior n + extent_plus).
RawArgs marshal(const ir::Kernel& k, const Binding& b,
                const std::array<long long, 3>& n);

/// Half-open iteration sub-box [lo, hi) in kernel loop coordinates (same
/// coordinates as the generated loop nest: 0..n+extent_plus per used dim,
/// [0, 1) on unused dims). Used by the distributed driver to run the
/// interior/frontier decomposition that hides ghost exchange.
struct CellRange {
  std::array<long long, 3> lo{0, 0, 0};
  std::array<long long, 3> hi{1, 1, 1};
  long long cells() const {
    long long c = 1;
    for (int d = 0; d < 3; ++d) {
      const long long e = hi[std::size_t(d)] - lo[std::size_t(d)];
      if (e <= 0) return 0;
      c *= e;
    }
    return c;
  }
};

/// The full iteration box of `k` over a block interior of size `n`.
CellRange full_range(const ir::Kernel& k, const std::array<long long, 3>& n);

/// Per-dim signed offset range over all reads of one field.
struct OffsetRange {
  std::array<int, 3> lo{0, 0, 0}, hi{0, 0, 0};
};

/// Exact per-field read-offset ranges of a kernel, keyed by field id. The
/// same analysis marshal() uses for ghost validation; the distributed
/// driver derives frontier-shell widths from it.
std::unordered_map<std::uint64_t, OffsetRange> read_offset_ranges(
    const ir::Kernel& k);

/// Runs a compiled kernel over the block, splitting the outermost used loop
/// across `pool` (nullptr = serial). When `tracer` is non-null each slab
/// launch records a span from its executing thread (category "slab"), so
/// the timeline shows the per-thread work distribution under the driver's
/// kernel span. `vector_width` is the SIMD width the kernel was emitted
/// with; for 1-D kernels (where x itself is the slab-split loop) slab
/// boundaries are rounded to multiples of it so each slab keeps one
/// aligned main loop instead of re-peeling mid-row. `range` restricts the
/// sweep to a sub-box (nullptr = full box); the emitted peel re-anchors to
/// the sub-box so results are bitwise identical to the monolithic sweep.
///
/// `plan` switches the outer-loop split from dynamic parallel_for chunks to
/// static ownership: worker w always executes the slab plan->slab(w, ...)
/// of the box, the same rows for every kernel launch of a step and the same
/// rows Array::first_touch_fill placed on w's NUMA node. Slab boundaries
/// and therefore results are bitwise identical either way (the plan uses
/// parallel_for's chunk math); static ownership only fixes *which worker*
/// runs each slab. Ignored when pool is null.
void run_compiled(const ir::Kernel& k, KernelFn fn, const Binding& b,
                  const std::array<long long, 3>& n, double t,
                  long long t_step, ThreadPool* pool = nullptr,
                  obs::TraceRecorder* tracer = nullptr,
                  int vector_width = 1, const CellRange* range = nullptr,
                  const SlabPlan* plan = nullptr);

}  // namespace pfc::backend
