#include "pfc/backend/registry.hpp"

#include <algorithm>
#include <cstring>

#include "pfc/backend/c_emitter.hpp"
#include "pfc/ir/opcount.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/ir/vectorize.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::backend {

BackendRegistry& BackendRegistry::instance() {
  // Meyers singleton: construction is thread-safe and works during the
  // static initialization of the RegisterBackend objects below.
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(std::unique_ptr<Backend> b, int priority) {
  PFC_REQUIRE(b != nullptr, "BackendRegistry::add: null backend");
  const std::string name = b->name();
  for (Entry& e : entries_) {
    if (name == e.backend->name()) {
      e.backend = std::move(b);
      e.priority = priority;
      return;
    }
  }
  entries_.push_back(Entry{std::move(b), priority});
}

const Backend* BackendRegistry::find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (name == e.backend->name()) return e.backend.get();
  }
  return nullptr;
}

std::vector<const Backend*> BackendRegistry::all() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return std::strcmp(a->backend->name(), b->backend->name()) < 0;
  });
  std::vector<const Backend*> out;
  out.reserve(sorted.size());
  for (const Entry* e : sorted) out.push_back(e->backend.get());
  return out;
}

std::vector<ChainEntry> BackendRegistry::chain(int requested_width) const {
  std::vector<ChainEntry> out;
  for (const Backend* b : all()) {
    const int w = b->probe(requested_width);
    if (w > 0) out.push_back(ChainEntry{b, w});
  }
  return out;
}

namespace {

/// Shared body of the two JIT tiers: emit all kernels into one translation
/// unit at the resolved width, run the external compiler (through the
/// content-addressed cache when configured), resolve the entry points.
void compile_jit_tier(const std::vector<const ir::Kernel*>& kernels,
                      const TierOptions& o, int width, TierArtifact& art) {
  Timer stage;
  CEmitOptions eo;
  eo.fast_math = o.fast_math;
  eo.vector_width = width;
  eo.streaming_stores = o.streaming_stores;
  art.emit_width = width;
  bool first = true;
  for (const ir::Kernel* k : kernels) {
    eo.include_preamble = first;
    first = false;
    const ir::VectorPlan plan =
        ir::plan_vectorize(*k, {width, o.streaming_stores});
    art.ops_per_cell_widened += plan.enabled()
                                    ? plan.flops_per_cell_vector
                                    : double(plan.flops_per_cell_scalar);
    art.widths.push_back(plan.enabled() ? plan.width : 1);
    art.source += emit_c(*k, eo);
    art.source += "\n";
  }
  art.emit_seconds = stage.seconds();

  JitLibrary::Options jo;
  jo.extra_flags = o.extra_flags;
  if (!o.compiler_override.empty()) jo.compiler = o.compiler_override;

  if (o.use_cache && !o.cache.directory.empty()) {
    KernelCacheResult cached =
        KernelCache::shared().acquire(art.source, jo, o.cache);
    art.library = std::move(cached.library);
    art.jit_seconds = cached.compile_seconds;
    art.cache_used = true;
    art.cache_hit = cached.hit;
    art.cache_key = cached.key;
    art.cache_stats = KernelCache::shared().stats();
  } else {
    art.library =
        std::make_shared<JitLibrary>(JitLibrary::compile(art.source, jo));
    art.jit_seconds = art.library->compile_seconds();
  }
  for (const ir::Kernel* k : kernels) {
    art.fns.push_back(art.library->get(entry_name(*k)));
  }
}

class JitVectorBackend final : public Backend {
 public:
  const char* name() const override { return "jit-vector"; }
  const char* tier() const override { return "vector"; }
  BackendCapabilities capabilities() const override {
    return BackendCapabilities{true, 8, true};
  }
  int probe(int requested_width) const override {
    // Serves only genuinely vector requests; a scalar request goes straight
    // to the jit-scalar tier.
    return requested_width > 1 ? requested_width : 0;
  }
  void compile(const std::vector<const ir::Kernel*>& kernels,
               const TierOptions& o, TierArtifact& art) const override {
    compile_jit_tier(kernels, o, o.vector_width, art);
  }
};

class JitScalarBackend final : public Backend {
 public:
  const char* name() const override { return "jit-scalar"; }
  const char* tier() const override { return "scalar"; }
  BackendCapabilities capabilities() const override {
    return BackendCapabilities{true, 1, false};
  }
  int probe(int) const override { return 1; }  // serves any request at width 1
  void compile(const std::vector<const ir::Kernel*>& kernels,
               const TierOptions& o, TierArtifact& art) const override {
    compile_jit_tier(kernels, o, 1, art);
  }
};

class InterpreterBackend final : public Backend {
 public:
  const char* name() const override { return "interpreter"; }
  const char* tier() const override { return "interpreter"; }
  BackendCapabilities capabilities() const override {
    return BackendCapabilities{false, 1, false};
  }
  int probe(int) const override { return 1; }  // always available
  void compile(const std::vector<const ir::Kernel*>& kernels,
               const TierOptions&, TierArtifact& art) const override {
    // The interpreter evaluates the IR cell by cell; width stays 1 and the
    // per-cell cost equals the post-optimization scalar op count.
    art.emit_width = 1;
    for (const ir::Kernel* k : kernels) {
      art.interps.push_back(std::make_shared<InterpreterKernel>(*k));
      art.widths.push_back(1);
      art.ops_per_cell_widened +=
          double(ir::count_ops(*k).normalized_flops());
    }
  }
};

// Static-init registration of the built-in tiers, in degradation-chain
// order by priority. These live in the registry's own translation unit so
// the static library always links them alongside instance().
const RegisterBackend<JitVectorBackend> kRegisterJitVector{200};
const RegisterBackend<JitScalarBackend> kRegisterJitScalar{100};
const RegisterBackend<InterpreterBackend> kRegisterInterpreter{0};

}  // namespace

}  // namespace pfc::backend
