// Self-registering backend registry (ROADMAP item 3): the three execution
// tiers of the code-generation pipeline — JIT-C vector, JIT-C scalar and the
// IR interpreter — are plugins behind one `Backend` interface instead of
// branches of an enum. Each backend registers itself at static-init time
// (the torch::jit::backend<T> registration idiom), so adding a tier is one
// new translation unit, not an edit of every selection site:
//
//   namespace { const RegisterBackend<MyBackend> reg{priority}; }
//
// `ModelCompiler` and the resilience degradation chain ask the registry for
// the ordered chain serving a width request; `run_job`, the serve tier and
// the autotuner inherit that selection transparently. Priorities order the
// chain (higher = tried first); the interpreter registers at priority 0 and
// probes successfully for every request, so a chain always terminates in a
// tier that cannot fail.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pfc/backend/interp.hpp"
#include "pfc/backend/jit.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/ir/kernel.hpp"

namespace pfc::backend {

/// What a backend can do — consumed by the autotuner (to prune the knob
/// space) and by diagnostics (codegen_inspect-style listings).
struct BackendCapabilities {
  bool jit = false;               ///< runs generated C through the external compiler
  int max_vector_width = 1;       ///< widest SIMD width the tier can emit
  bool streaming_stores = false;  ///< honors CEmitOptions::streaming_stores
};

/// The knobs one tier attempt consumes. ModelCompiler maps the relevant
/// subset of app::CompileOptions down to this (the backend layer cannot see
/// app types — the dependency points the other way).
struct TierOptions {
  int vector_width = 1;        ///< resolved width for this attempt (>= 1)
  bool fast_math = false;
  bool streaming_stores = false;
  std::string extra_flags;     ///< appended to the JIT compile line
  /// Non-empty replaces the external compiler binary (fault injection uses
  /// "false" to force a deterministic compile failure).
  std::string compiler_override;
  /// Content-addressed kernel cache; an empty directory disables it.
  KernelCacheConfig cache;
  bool use_cache = false;
};

/// What one tier compile produces for a kernel set. compile() fills the
/// artifact in place so a throwing JIT attempt still leaves the generated
/// source and emit timing behind for the compile report.
struct TierArtifact {
  std::string source;                   ///< generated TU ("" for interpreter)
  std::shared_ptr<JitLibrary> library;  ///< null for the interpreter
  std::vector<KernelFn> fns;            ///< per input kernel (JIT tiers)
  std::vector<std::shared_ptr<InterpreterKernel>> interps;  ///< interpreter
  std::vector<int> widths;              ///< per-kernel emitted width
  int emit_width = 1;                   ///< width the TU was emitted at
  double ops_per_cell_widened = 0.0;
  double emit_seconds = 0.0;
  double jit_seconds = 0.0;
  /// Kernel-cache provenance (JIT tiers with use_cache).
  bool cache_used = false;
  bool cache_hit = false;
  std::string cache_key;
  KernelCacheStats cache_stats;
};

/// One execution tier. Implementations are stateless and registered once
/// per process; all per-compile state travels through TierOptions/
/// TierArtifact.
class Backend {
 public:
  virtual ~Backend() = default;
  /// Registry name ("jit-vector", "jit-scalar", "interpreter").
  virtual const char* name() const = 0;
  /// Report spelling of the tier ("vector", "scalar", "interpreter").
  virtual const char* tier() const = 0;
  virtual BackendCapabilities capabilities() const = 0;
  /// Cheap availability probe: the width this backend would emit at for a
  /// resolved request of `requested_width`; 0 when it cannot serve the
  /// request (e.g. the vector tier for a scalar request).
  virtual int probe(int requested_width) const = 0;
  /// Compiles `kernels` into one executable artifact. Throws pfc::Error on
  /// JIT failure; `art` keeps whatever was produced before the throw.
  virtual void compile(const std::vector<const ir::Kernel*>& kernels,
                       const TierOptions& opts, TierArtifact& art) const = 0;
};

/// An entry of the degradation chain: the backend plus the width its probe
/// resolved for the request.
struct ChainEntry {
  const Backend* backend = nullptr;
  int width = 1;
};

class BackendRegistry {
 public:
  /// The process-wide instance all registrations and lookups funnel
  /// through (constructed on first use; safe during static init).
  static BackendRegistry& instance();

  /// Registers a backend (normally via RegisterBackend below). Higher
  /// priority = earlier in the degradation chain. A re-registration under
  /// an existing name replaces the previous entry (latest wins).
  void add(std::unique_ptr<Backend> b, int priority);

  /// Lookup by registry name; nullptr when absent.
  const Backend* find(const std::string& name) const;

  /// Every registered backend, priority-descending (name-ascending on
  /// ties) — a deterministic order independent of registration order.
  std::vector<const Backend*> all() const;

  /// The degradation chain for a resolved width request: every backend
  /// whose probe() accepts the request, priority-descending. With the
  /// built-in tiers and width w > 1 this is jit-vector → jit-scalar →
  /// interpreter; width 1 skips the vector tier.
  std::vector<ChainEntry> chain(int requested_width) const;

  BackendRegistry(const BackendRegistry&) = delete;
  BackendRegistry& operator=(const BackendRegistry&) = delete;

 private:
  BackendRegistry() = default;
  struct Entry {
    std::unique_ptr<Backend> backend;
    int priority = 0;
  };
  std::vector<Entry> entries_;
};

/// Static-init self-registration helper:
///   namespace { const RegisterBackend<MyBackend> reg{priority}; }
template <typename T>
struct RegisterBackend {
  explicit RegisterBackend(int priority) {
    BackendRegistry::instance().add(std::make_unique<T>(), priority);
  }
};

}  // namespace pfc::backend
