#include "pfc/continuum/functional.hpp"

#include <cmath>

namespace pfc::continuum {

using sym::Expr;
using sym::num;

Expr determinant(const Matrix& m) {
  const std::size_t n = m.size();
  PFC_REQUIRE(n >= 1 && n <= 3, "determinant: size must be 1..3");
  for (const auto& row : m) PFC_REQUIRE(row.size() == n, "non-square matrix");
  if (n == 1) return m[0][0];
  if (n == 2) return m[0][0] * m[1][1] - m[0][1] * m[1][0];
  return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
         m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
         m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

Matrix inverse(const Matrix& m) {
  const std::size_t n = m.size();
  const Expr inv_det = sym::pow(determinant(m), -1);
  if (n == 1) return {{inv_det}};
  if (n == 2) {
    return {{m[1][1] * inv_det, sym::neg(m[0][1]) * inv_det},
            {sym::neg(m[1][0]) * inv_det, m[0][0] * inv_det}};
  }
  // 3x3 adjugate
  Matrix r(3, std::vector<Expr>(3, num(0.0)));
  const auto cof = [&](int i, int j) {
    const int i1 = (i + 1) % 3, i2 = (i + 2) % 3;
    const int j1 = (j + 1) % 3, j2 = (j + 2) % 3;
    const auto& mm = m;
    return mm[std::size_t(i1)][std::size_t(j1)] *
               mm[std::size_t(i2)][std::size_t(j2)] -
           mm[std::size_t(i1)][std::size_t(j2)] *
               mm[std::size_t(i2)][std::size_t(j1)];
  };
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      // adjugate transposes the cofactor matrix
      r[std::size_t(i)][std::size_t(j)] = cof(j, i) * inv_det;
    }
  }
  return r;
}

Expr gradient_energy(const FieldPtr& phi, int dims, const PairTable& gamma,
                     const std::vector<Anisotropy>& aniso_per_pair) {
  const int n = gamma.phases();
  PFC_REQUIRE(phi->components() >= n, "phi has too few components");
  PFC_REQUIRE(static_cast<int>(aniso_per_pair.size()) == n * (n - 1) / 2,
              "need one Anisotropy per phase pair");

  std::vector<Expr> terms;
  std::size_t pair = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b, ++pair) {
      // q_ab = phi_a grad(phi_b) - phi_b grad(phi_a)
      const Expr pa = sym::at(phi, a);
      const Expr pb = sym::at(phi, b);
      const Vec q = vsub(scale(pa, grad(phi, b, dims)),
                         scale(pb, grad(phi, a, dims)));
      const Expr q2 = norm_sq(q);

      Expr a_factor = num(1.0);
      const Anisotropy& an = aniso_per_pair[pair];
      if (an.type == Anisotropy::Type::Cubic) {
        // A(q) = 1 - delta (3 - 4 Σ q_i^4 / |q|^4); |q|^4 guarded against 0
        std::vector<Expr> q4;
        q4.reserve(q.size());
        for (const auto& qi : q) q4.push_back(sym::pow(qi, 4));
        const Expr sum_q4 = sym::add(std::move(q4));
        const Expr q4norm = sym::max_(sym::pow(q2, 2), num(1e-30));
        a_factor = num(1.0) -
                   an.delta * (num(3.0) - 4.0 * sum_q4 / q4norm);
      }
      terms.push_back(gamma(a, b) * sym::pow(a_factor, 2) * q2);
    }
  }
  return sym::add(std::move(terms));
}

Expr gradient_energy_isotropic(const FieldPtr& phi, int dims,
                               const PairTable& gamma) {
  const int n = gamma.phases();
  return gradient_energy(phi, dims, gamma,
                         std::vector<Anisotropy>(std::size_t(n * (n - 1) / 2)));
}

Expr obstacle_potential(const FieldPtr& phi, const PairTable& gamma,
                        const Expr& gamma_triple) {
  const int n = gamma.phases();
  const double pref = 16.0 / (M_PI * M_PI);
  std::vector<Expr> terms;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      terms.push_back(num(pref) * gamma(a, b) * sym::at(phi, a) *
                      sym::at(phi, b));
    }
  }
  if (!gamma_triple->is_zero()) {
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        for (int d = b + 1; d < n; ++d) {
          terms.push_back(gamma_triple * sym::at(phi, a) * sym::at(phi, b) *
                          sym::at(phi, d));
        }
      }
    }
  }
  return sym::add(std::move(terms));
}

Expr interpolation_h(const Expr& x) {
  return sym::pow(x, 2) * (num(3.0) - 2.0 * x);
}

Expr interpolation_h_prime(const Expr& x) {
  return 6.0 * x * (num(1.0) - x);
}

Matrix ParabolicFit::a_of(const Expr& T) const {
  return madd(a0, mscale(T, a1));
}

Vec ParabolicFit::b_of(const Expr& T) const {
  return vadd(b0, scale(T, b1));
}

Expr ParabolicFit::c_of(const Expr& T) const { return c0 + T * c1; }

Expr ParabolicFit::psi(const Vec& mu, const Expr& T) const {
  PFC_REQUIRE(static_cast<int>(mu.size()) == num_mu(),
              "mu dimension mismatch");
  return dot(mu, matvec(a_of(T), mu)) + dot(b_of(T), mu) + c_of(T);
}

Vec ParabolicFit::concentration(const Vec& mu, const Expr& T) const {
  return vadd(matvec(mscale(num(2.0), a_of(T)), mu), b_of(T));
}

Matrix ParabolicFit::dc_dmu(const Expr& T) const {
  return mscale(num(2.0), a_of(T));
}

Vec ParabolicFit::dc_dT(const Vec& mu) const {
  return vadd(matvec(mscale(num(2.0), a1), mu), b1);
}

Expr driving_force(const FieldPtr& phi, const std::vector<ParabolicFit>& fits,
                   const Vec& mu, const Expr& T) {
  std::vector<Expr> terms;
  terms.reserve(fits.size());
  for (std::size_t a = 0; a < fits.size(); ++a) {
    terms.push_back(fits[a].psi(mu, T) *
                    interpolation_h(sym::at(phi, static_cast<int>(a))));
  }
  return sym::add(std::move(terms));
}

}  // namespace pfc::continuum
