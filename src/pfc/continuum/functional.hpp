// Energy-functional layer (paper §3.1, Eqs. 3–6).
//
// Builders for the three contributions to the grand-potential functional
//   Ψ(φ, µ, T) = ∫ ε a(φ,∇φ) + ω(φ)/ε + ψ(φ,µ,T) dV
// expressed as symbolic integrands over one cell. Model parameters enter as
// expressions, so they can be folded numeric constants (the paper's
// compile-time parametrization) or stay symbolic runtime arguments.
#pragma once

#include <vector>

#include "pfc/continuum/ops.hpp"

namespace pfc::continuum {

/// Symmetric pairwise coefficient table (γ_αβ, τ_αβ, ...); only α<β entries
/// are stored.
class PairTable {
 public:
  explicit PairTable(int n, const Expr& init) : n_(n) {
    PFC_REQUIRE(n >= 2, "PairTable needs >= 2 phases");
    vals_.assign(std::size_t(n * (n - 1) / 2), init);
  }

  int phases() const { return n_; }
  const Expr& operator()(int a, int b) const { return vals_[idx(a, b)]; }
  void set(int a, int b, const Expr& v) { vals_[idx(a, b)] = v; }

 private:
  std::size_t idx(int a, int b) const {
    PFC_REQUIRE(a != b && a >= 0 && b >= 0 && a < n_ && b < n_,
                "PairTable index out of range");
    if (a > b) std::swap(a, b);
    // offset of pair (a,b), a<b, in row-major upper triangle
    return std::size_t(a * (2 * n_ - a - 1) / 2 + (b - a - 1));
  }

  int n_;
  std::vector<Expr> vals_;
};

/// Anisotropy of a phase pair's gradient energy.
struct Anisotropy {
  enum class Type { Isotropic, Cubic } type = Type::Isotropic;
  /// strength δ of the cubic anisotropy A(q) = 1 - δ(3 - 4 Σq_i^4 / |q|^4)
  Expr delta = sym::num(0.0);
};

/// Gradient energy density a(φ,∇φ) = Σ_{α<β} γ_αβ A_αβ(q_αβ)² |q_αβ|² with
/// the generalized gradient q_αβ = φ_α ∇φ_β − φ_β ∇φ_α  (Eq. 4).
Expr gradient_energy(const FieldPtr& phi, int dims, const PairTable& gamma,
                     const std::vector<Anisotropy>& aniso_per_pair);

/// Convenience: isotropic everywhere.
Expr gradient_energy_isotropic(const FieldPtr& phi, int dims,
                               const PairTable& gamma);

/// Multi-obstacle potential (Eq. 5):
///   ω(φ) = 16/π² Σ_{α<β} γ_αβ φ_α φ_β + Σ_{α<β<δ} γ_αβδ φ_α φ_β φ_δ
/// The triple-phase suppression terms use one coefficient for all triples.
Expr obstacle_potential(const FieldPtr& phi, const PairTable& gamma,
                        const Expr& gamma_triple);

/// Interpolation function h(x) = x²(3 − 2x): h(0)=0, h(1)=1, h'(0)=h'(1)=0.
Expr interpolation_h(const Expr& x);
/// h'(x) = 6x(1 − x).
Expr interpolation_h_prime(const Expr& x);

/// Parabolic grand-potential fit of one phase (Eq. 6), affine-linear in T:
///   ψ_α(µ,T) = µᵀ A(T) µ + B(T)·µ + C(T),  X(T) = X0 + T·X1.
/// Dimensions: A is (K−1)×(K−1) symmetric, B has K−1 entries.
struct ParabolicFit {
  Matrix a0, a1;
  Vec b0, b1;
  Expr c0 = sym::num(0.0), c1 = sym::num(0.0);

  int num_mu() const { return static_cast<int>(b0.size()); }

  Matrix a_of(const Expr& T) const;   ///< A(T) = A0 + T A1
  Vec b_of(const Expr& T) const;      ///< B(T)
  Expr c_of(const Expr& T) const;     ///< C(T)

  /// ψ_α(µ, T)
  Expr psi(const Vec& mu, const Expr& T) const;
  /// c_α(µ, T) = ∂ψ_α/∂µ = 2 A(T) µ + B(T)
  Vec concentration(const Vec& mu, const Expr& T) const;
  /// ∂c_α/∂µ = 2 A(T)
  Matrix dc_dmu(const Expr& T) const;
  /// ∂c_α/∂T = 2 A1 µ + B1
  Vec dc_dT(const Vec& mu) const;
};

/// Grand-potential driving-force density ψ(φ,µ,T) = Σ_α ψ_α(µ,T) h_α(φ)
/// with h_α(φ) = h(φ_α).
Expr driving_force(const FieldPtr& phi, const std::vector<ParabolicFit>& fits,
                   const Vec& mu, const Expr& T);

}  // namespace pfc::continuum
