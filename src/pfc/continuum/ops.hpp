// Continuous vector-calculus helpers on symbolic expressions (the PDE
// layer's vocabulary): gradients are vectors of Diff nodes, divergences sum
// Diff nodes over components. Everything stays symbolic; pfc::fd turns the
// Diff/Dt operators into stencils.
#pragma once

#include <vector>

#include "pfc/sym/expr.hpp"

namespace pfc::continuum {

using sym::Expr;

/// A small spatial vector of expressions (length = spatial dims).
using Vec = std::vector<Expr>;

/// A small dense matrix of expressions.
using Matrix = std::vector<std::vector<Expr>>;

/// ∇(center value of component `comp` of f), as continuous Diff nodes.
inline Vec grad(const FieldPtr& f, int comp, int dims) {
  Vec g;
  g.reserve(std::size_t(dims));
  for (int d = 0; d < dims; ++d) g.push_back(sym::diff_op(sym::at(f, comp), d));
  return g;
}

/// ∇ of an arbitrary expression.
inline Vec grad(const Expr& e, int dims) {
  Vec g;
  g.reserve(std::size_t(dims));
  for (int d = 0; d < dims; ++d) g.push_back(sym::diff_op(e, d));
  return g;
}

/// ∇·v  =  Σ_d Diff_d(v_d)
inline Expr div(const Vec& v) {
  std::vector<Expr> terms;
  terms.reserve(v.size());
  for (int d = 0; d < static_cast<int>(v.size()); ++d) {
    terms.push_back(sym::diff_op(v[std::size_t(d)], d));
  }
  return sym::add(std::move(terms));
}

inline Expr dot(const Vec& a, const Vec& b) {
  PFC_ASSERT(a.size() == b.size());
  std::vector<Expr> terms;
  terms.reserve(a.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    terms.push_back(sym::mul({a[d], b[d]}));
  }
  return sym::add(std::move(terms));
}

inline Expr norm_sq(const Vec& a) { return dot(a, a); }

inline Vec axpy(const Expr& alpha, const Vec& x, const Vec& y) {
  PFC_ASSERT(x.size() == y.size());
  Vec r;
  r.reserve(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    r.push_back(sym::add({sym::mul({alpha, x[d]}), y[d]}));
  }
  return r;
}

inline Vec scale(const Expr& alpha, const Vec& x) {
  Vec r;
  r.reserve(x.size());
  for (const auto& e : x) r.push_back(sym::mul({alpha, e}));
  return r;
}

inline Vec vsub(const Vec& a, const Vec& b) {
  PFC_ASSERT(a.size() == b.size());
  Vec r;
  r.reserve(a.size());
  for (std::size_t d = 0; d < a.size(); ++d) r.push_back(sym::sub(a[d], b[d]));
  return r;
}

inline Vec vadd(const Vec& a, const Vec& b) {
  PFC_ASSERT(a.size() == b.size());
  Vec r;
  r.reserve(a.size());
  for (std::size_t d = 0; d < a.size(); ++d) r.push_back(a[d] + b[d]);
  return r;
}

/// Matrix * vector.
inline Vec matvec(const Matrix& m, const Vec& v) {
  Vec r;
  r.reserve(m.size());
  for (const auto& row : m) {
    PFC_ASSERT(row.size() == v.size());
    std::vector<Expr> terms;
    terms.reserve(row.size());
    for (std::size_t j = 0; j < v.size(); ++j) {
      terms.push_back(sym::mul({row[j], v[j]}));
    }
    r.push_back(sym::add(std::move(terms)));
  }
  return r;
}

inline Matrix madd(const Matrix& a, const Matrix& b) {
  PFC_ASSERT(a.size() == b.size());
  Matrix r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    PFC_ASSERT(a[i].size() == b[i].size());
    r[i].reserve(a[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      r[i].push_back(a[i][j] + b[i][j]);
    }
  }
  return r;
}

inline Matrix mscale(const Expr& alpha, const Matrix& a) {
  Matrix r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    r[i].reserve(a[i].size());
    for (const auto& e : a[i]) r[i].push_back(sym::mul({alpha, e}));
  }
  return r;
}

/// Symbolic inverse of a 1x1, 2x2 or 3x3 matrix (adjugate / determinant).
Matrix inverse(const Matrix& m);

/// Symbolic determinant for sizes 1..3.
Expr determinant(const Matrix& m);

}  // namespace pfc::continuum
