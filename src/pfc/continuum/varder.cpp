#include "pfc/continuum/varder.hpp"

#include "pfc/sym/diff.hpp"

namespace pfc::continuum {

Expr variational_derivative(const Expr& integrand, const FieldPtr& f,
                            int comp, int dims) {
  const Expr center = sym::at(f, comp);
  // ∂I/∂φ
  Expr result = sym::diff(integrand, center);
  // − Σ_d D_d( ∂I/∂(D_d φ) )
  for (int d = 0; d < dims; ++d) {
    const Expr gd = sym::diff_op(center, d);
    const Expr dI_dgd = sym::diff(integrand, gd);
    if (!dI_dgd->is_zero()) {
      result = result - sym::diff_op(dI_dgd, d);
    }
  }
  return result;
}

}  // namespace pfc::continuum
