// Variational (functional) derivatives — the paper's core "the systematic,
// but tedious derivation of the resulting partial differential equations is
// performed automatically" step (§3.2).
//
// For an integrand I(φ, ∇φ) the Euler–Lagrange form is
//   δΨ/δφ = ∂I/∂φ − Σ_d ∂/∂x_d ( ∂I/∂(∂φ/∂x_d) )
// which our expression system supports directly: the center FieldRef and the
// continuous Diff nodes act as independent variables of I.
#pragma once

#include "pfc/continuum/ops.hpp"

namespace pfc::continuum {

/// δ/δ(component `comp` of field `f`) of ∫ integrand dV, over `dims`
/// spatial dimensions. The result still contains continuous Diff nodes (a
/// divergence of fluxes) to be discretized by pfc::fd.
Expr variational_derivative(const Expr& integrand, const FieldPtr& f,
                            int comp, int dims);

}  // namespace pfc::continuum
