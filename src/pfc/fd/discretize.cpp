#include "pfc/fd/discretize.hpp"

#include <algorithm>

#include "pfc/sym/subs.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::fd {

using sym::Expr;
using sym::Kind;
using sym::num;

namespace {

bool has_diff(const Expr& e) {
  if (e->kind() == Kind::Diff) return true;
  for (const auto& a : e->args()) {
    if (has_diff(a)) return true;
  }
  return false;
}

/// Shifts an expression by `amount` whole cells along `dim`: every FieldRef
/// offset moves, and the loop-coordinate symbol of that dim becomes
/// coord + amount (this is what lets analytic T(z, t) participate in
/// differencing).
Expr shift_expr(const Expr& e, int dim, int amount) {
  switch (e->kind()) {
    case Kind::FieldRef: return sym::shifted(e, dim, amount);
    case Kind::Symbol: {
      const auto b = e->builtin();
      if ((dim == 0 && b == sym::Builtin::Coord0) ||
          (dim == 1 && b == sym::Builtin::Coord1) ||
          (dim == 2 && b == sym::Builtin::Coord2)) {
        return e + double(amount);
      }
      return e;
    }
    case Kind::Number:
    case Kind::Random: return e;
    default: {
      std::vector<Expr> args;
      args.reserve(e->arity());
      bool changed = false;
      for (const auto& a : e->args()) {
        Expr s = shift_expr(a, dim, amount);
        changed = changed || s.get() != a.get();
        args.push_back(std::move(s));
      }
      return changed ? sym::with_args(e, std::move(args)) : e;
    }
  }
}

class Discretizer {
 public:
  Discretizer(const DiscretizeOptions& opts, bool collect_fluxes)
      : opts_(opts), collect_fluxes_(collect_fluxes) {}

  /// Registered staggered-flux expressions: (dim, continuous flux).
  struct FluxSlot {
    int dim;
    Expr flux;
  };

  const std::vector<FluxSlot>& flux_slots() const { return flux_slots_; }

  void bind_flux_field(FieldPtr f) { flux_field_ = std::move(f); }

  Expr discretize(const Expr& e) {
    switch (e->kind()) {
      case Kind::Dt:
        throw Error(
            "pfc: Dt on the right-hand side must be substituted by a "
            "(dst - src)/dt expression before discretization");
      case Kind::Diff: {
        const Expr& u = e->arg(0);
        const int d = e->diff_dim();
        PFC_REQUIRE(d < opts_.dims,
                    "derivative along unused spatial dimension");
        if (has_diff(u)) {
          // divergence of a flux: staggered evaluation
          if (flux_field_ != nullptr || collect_fluxes_) {
            const int slot = flux_slot(d, u);
            if (flux_field_ != nullptr) {
              const Expr left = sym::at(flux_field_, slot);
              const Expr right = sym::shifted(left, d, 1);
              return (right - left) / opts_.dx;
            }
            // collection pass: still emit the recomputed form so the pass
            // produces a valid expression (it is discarded).
          }
          const Expr right = eval_staggered(u, d, +1);
          const Expr left = eval_staggered(u, d, -1);
          return (right - left) / opts_.dx;
        }
        // plain first derivative: central difference
        return central_diff(u, d);
      }
      case Kind::Random: return lower_random(e);
      case Kind::Number:
      case Kind::Symbol:
      case Kind::FieldRef: return e;
      default: {
        std::vector<Expr> args;
        args.reserve(e->arity());
        for (const auto& a : e->args()) args.push_back(discretize(a));
        return sym::with_args(e, std::move(args));
      }
    }
  }

  /// Flux value at the face between cells (j-1) and j along `d` when
  /// side == -1, or between j and (j+1) when side == +1.
  Expr eval_staggered(const Expr& e, int d, int side) {
    PFC_ASSERT(side == 1 || side == -1);
    switch (e->kind()) {
      case Kind::Number: return e;
      case Kind::Random: return lower_random(e);
      case Kind::Symbol: {
        const auto b = e->builtin();
        if ((d == 0 && b == sym::Builtin::Coord0) ||
            (d == 1 && b == sym::Builtin::Coord1) ||
            (d == 2 && b == sym::Builtin::Coord2)) {
          return e + 0.5 * double(side);
        }
        return e;
      }
      case Kind::FieldRef:
        // linear interpolation onto the face
        return 0.5 * (e + sym::shifted(e, d, side));
      case Kind::Dt:
        throw Error(
            "pfc: Dt inside a flux must be substituted before "
            "discretization");
      case Kind::Diff: {
        const Expr& v = e->arg(0);
        const int d2 = e->diff_dim();
        PFC_REQUIRE(!has_diff(v),
                    "derivatives nested deeper than divergence-of-fluxes "
                    "are not supported by the 2nd-order scheme");
        PFC_REQUIRE(d2 < opts_.dims,
                    "derivative along unused spatial dimension");
        if (d2 == d) {
          // exact two-point difference across the face
          if (side > 0) return (shift_expr(v, d, 1) - v) / opts_.dx;
          return (v - shift_expr(v, d, -1)) / opts_.dx;
        }
        // transverse derivative at the face: average of the central
        // differences of the two adjacent cells (Eq. 11)
        const Expr cd0 = central_diff(v, d2);
        const Expr cd1 = central_diff(shift_expr(v, d, side), d2);
        return 0.5 * (cd0 + cd1);
      }
      default: {
        std::vector<Expr> args;
        args.reserve(e->arity());
        for (const auto& a : e->args()) {
          args.push_back(eval_staggered(a, d, side));
        }
        return sym::with_args(e, std::move(args));
      }
    }
  }

  Expr central_diff(const Expr& v, int d) {
    if (opts_.order >= 4) {
      // (-f(+2) + 8 f(+1) - 8 f(-1) + f(-2)) / (12 dx)
      return (sym::neg(shift_expr(v, d, 2)) + 8.0 * shift_expr(v, d, 1) -
              8.0 * shift_expr(v, d, -1) + shift_expr(v, d, -2)) /
             (12.0 * opts_.dx);
    }
    return (shift_expr(v, d, 1) - shift_expr(v, d, -1)) / (2.0 * opts_.dx);
  }

  Expr lower_random(const Expr& e) {
    PFC_ASSERT(e->kind() == Kind::Random);
    return sym::call(sym::Func::PhiloxUniform,
                     {sym::coord(0), sym::coord(1), sym::coord(2),
                      sym::time_step(), num(double(opts_.rng_seed)),
                      num(double(e->random_stream()))});
  }

 private:
  int flux_slot(int d, const Expr& u) {
    for (std::size_t i = 0; i < flux_slots_.size(); ++i) {
      if (flux_slots_[i].dim == d && sym::equals(flux_slots_[i].flux, u)) {
        return static_cast<int>(i);
      }
    }
    flux_slots_.push_back({d, u});
    return static_cast<int>(flux_slots_.size()) - 1;
  }

  const DiscretizeOptions& opts_;
  bool collect_fluxes_;
  FieldPtr flux_field_;
  std::vector<FluxSlot> flux_slots_;
};

Expr clamp_unit(const Expr& e) {
  return sym::min_(sym::max_(e, num(0.0)), num(1.0));
}

/// Emits the stores for one update vector, optionally clamped to [0,1] and
/// renormalized onto the Gibbs simplex (via intermediate temporaries).
void emit_stores(StencilKernel& k, const FieldPtr& dst,
                 std::vector<Expr> updates, const DiscretizeOptions& opts) {
  if (opts.clamp_unit_interval) {
    for (auto& u : updates) u = clamp_unit(u);
  }
  if (opts.renormalize_simplex && updates.size() > 1) {
    PFC_REQUIRE(opts.clamp_unit_interval,
                "renormalize_simplex requires clamp_unit_interval");
    std::vector<Expr> temps;
    for (std::size_t c = 0; c < updates.size(); ++c) {
      Expr t = sym::symbol(dst->name() + "_upd" + std::to_string(c));
      k.assignments.push_back({t, updates[c]});
      temps.push_back(std::move(t));
    }
    const Expr inv_sum =
        sym::pow(sym::max_(sym::add(temps), num(1e-12)), -1);
    for (std::size_t c = 0; c < updates.size(); ++c) {
      k.assignments.push_back(
          {sym::at(dst, static_cast<int>(c)), temps[c] * inv_sum});
    }
    return;
  }
  for (std::size_t c = 0; c < updates.size(); ++c) {
    k.assignments.push_back(
        {sym::at(dst, static_cast<int>(c)), updates[c]});
  }
}

}  // namespace

void recompute_field_lists(StencilKernel& k) {
  k.reads.clear();
  k.writes.clear();
  const auto push_unique = [](std::vector<FieldPtr>& v, const FieldPtr& f) {
    for (const auto& x : v) {
      if (x->id() == f->id()) return;
    }
    v.push_back(f);
  };
  for (const auto& a : k.assignments) {
    if (a.lhs->kind() == sym::Kind::FieldRef) {
      push_unique(k.writes, a.lhs->field());
    }
    for (const auto& fr : sym::field_refs(a.rhs)) {
      push_unique(k.reads, fr->field());
    }
  }
}

std::array<int, 3> access_radius(const StencilKernel& k) {
  std::array<int, 3> r{0, 0, 0};
  for (const auto& a : k.assignments) {
    for (const auto& fr : sym::field_refs(a.rhs)) {
      for (int d = 0; d < 3; ++d) {
        r[std::size_t(d)] = std::max(r[std::size_t(d)],
                                     std::abs(fr->offset()[std::size_t(d)]));
      }
    }
  }
  return r;
}

AccessCounts count_accesses(const StencilKernel& k) {
  AccessCounts c;
  std::vector<sym::Expr> distinct;
  for (const auto& a : k.assignments) {
    if (a.lhs->kind() == sym::Kind::FieldRef) ++c.stores;
    for (const auto& fr : sym::field_refs(a.rhs)) {
      bool seen = false;
      for (const auto& x : distinct) {
        if (sym::equals(x, fr)) {
          seen = true;
          break;
        }
      }
      if (!seen) distinct.push_back(fr);
    }
  }
  c.loads = static_cast<int>(distinct.size());
  return c;
}

Expr discretize_expression(const Expr& e, const DiscretizeOptions& opts) {
  Discretizer disc(opts, /*collect_fluxes=*/false);
  return disc.discretize(e);
}

DiscretizeResult discretize(const PdeUpdate& pde,
                            const DiscretizeOptions& opts) {
  PFC_REQUIRE(pde.src != nullptr && pde.dst != nullptr, "null field in pde");
  PFC_REQUIRE(static_cast<int>(pde.rhs.size()) == pde.dst->components(),
              "need one rhs per destination component");

  DiscretizeResult result;

  if (!opts.split_staggered) {
    Discretizer disc(opts, /*collect_fluxes=*/false);
    StencilKernel k;
    k.name = pde.name + "-full";
    std::vector<Expr> updates;
    for (int c = 0; c < pde.dst->components(); ++c) {
      Expr rhs = disc.discretize(pde.rhs[std::size_t(c)]);
      updates.push_back(sym::at(pde.src, c) + opts.dt * rhs);
    }
    emit_stores(k, pde.dst, std::move(updates), opts);
    recompute_field_lists(k);
    result.kernels.push_back(std::move(k));
    return result;
  }

  // Split mode. Pass 1: collect the distinct staggered fluxes.
  Discretizer collector(opts, /*collect_fluxes=*/true);
  for (const auto& r : pde.rhs) (void)collector.discretize(r);
  const auto& slots = collector.flux_slots();

  if (slots.empty()) {
    // nothing to cache — fall back to the single kernel
    DiscretizeOptions full = opts;
    full.split_staggered = false;
    auto r = discretize(pde, full);
    r.kernels[0].name = pde.name + "-split";
    return r;
  }

  auto flux_field = Field::create(pde.name + "_flux", opts.dims,
                                  static_cast<int>(slots.size()));
  result.flux_field = flux_field;

  // Staggered precompute kernels: slot i at cell j holds the flux through
  // the lower face of cell j along the slot's dim. One sweep per axis, each
  // extended by one cell only along its own axis — transverse stencil reads
  // then stay within the single ghost layer (the differing loop bounds the
  // paper handles with isl-derived iteration patterns, §3.4).
  for (int d = 0; d < opts.dims; ++d) {
    Discretizer disc(opts, /*collect_fluxes=*/false);
    StencilKernel k;
    k.name = pde.name + "-split-stag" + std::to_string(d);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].dim != d) continue;
      Expr val = disc.eval_staggered(slots[i].flux, slots[i].dim, -1);
      k.assignments.push_back(
          {sym::at(flux_field, static_cast<int>(i)), std::move(val)});
    }
    if (k.assignments.empty()) continue;
    k.extent_plus[std::size_t(d)] = 1;
    recompute_field_lists(k);
    result.kernels.push_back(std::move(k));
  }

  // Consumer kernel: divergences read the cached staggered values.
  {
    Discretizer disc(opts, /*collect_fluxes=*/false);
    disc.bind_flux_field(flux_field);
    StencilKernel k;
    k.name = pde.name + "-split-main";
    std::vector<Expr> updates;
    for (int c = 0; c < pde.dst->components(); ++c) {
      Expr rhs = disc.discretize(pde.rhs[std::size_t(c)]);
      updates.push_back(sym::at(pde.src, c) + opts.dt * rhs);
    }
    emit_stores(k, pde.dst, std::move(updates), opts);
    recompute_field_lists(k);
    result.kernels.push_back(std::move(k));
  }
  return result;
}

}  // namespace pfc::fd
