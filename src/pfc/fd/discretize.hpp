// Discretization layer (paper §3.3): transforms PDEs containing continuous
// Diff/Dt operators into explicit-Euler stencil kernels using second-order
// finite differences.
//
// The key application-specific strategy is reproduced faithfully:
//   * first derivatives of Diff-free expressions -> central differences;
//   * divergences of fluxes (Diff applied to an expression that itself
//     contains Diff nodes) -> flux evaluation at *staggered* positions,
//     with quantities not available there interpolated (Eq. 11);
//   * optionally, staggered flux values are precomputed into temporary
//     staggered fields by a separate kernel pass ("split" kernels), instead
//     of being recomputed by both adjacent cells ("full" kernels);
//   * fluctuation placeholders are lowered to Philox counter-based RNG
//     calls keyed on cell index and time step (no state, no data deps).
#pragma once

#include <optional>

#include "pfc/fd/stencil.hpp"

namespace pfc::fd {

struct DiscretizeOptions {
  double dx = 1.0;   ///< lattice spacing (isotropic)
  double dt = 1.0;   ///< explicit Euler time-step size
  int dims = 3;      ///< spatial dimensionality
  /// Order of the central differences used for *plain* first derivatives
  /// (2 or 4). Divergence-of-fluxes always uses the 2nd-order staggered
  /// scheme (the application field's best practice, §3.3); the 4th-order
  /// option is the paper's "further spatial discretization" extension.
  int order = 2;
  /// Generate a staggered precompute kernel + a consumer kernel instead of
  /// one kernel that recomputes flux values on both sides.
  bool split_staggered = false;
  /// Clamp updated values to [0, 1] (numerical projection step required by
  /// the multi-obstacle potential).
  bool clamp_unit_interval = false;
  /// After clamping, rescale the component vector so it sums to one — the
  /// projection back onto the Gibbs simplex (only meaningful for phase
  /// fields; requires clamp_unit_interval).
  bool renormalize_simplex = false;
  /// Seed for the Philox fluctuation streams.
  std::uint64_t rng_seed = 42;
};

/// One coupled explicit update: d(dst_c)/dt = rhs[c], evaluated from src
/// (two-array scheme; caller swaps after the step).
struct PdeUpdate {
  std::string name;            ///< kernel base name, e.g. "phi" or "mu"
  FieldPtr src;
  FieldPtr dst;
  std::vector<sym::Expr> rhs;  ///< one entry per component of dst
};

struct DiscretizeResult {
  /// Kernels in execution order (staggered precompute first if split).
  std::vector<StencilKernel> kernels;
  /// Temporary staggered-flux field, if split mode created one.
  std::optional<FieldPtr> flux_field;
};

/// Discretizes one PDE update. Throws pfc::Error if the rhs contains Dt
/// nodes (time derivatives on the rhs — e.g. the anti-trapping current's
/// dphi/dt — must be substituted by (dst-src)/dt expressions beforehand) or
/// derivatives nested deeper than divergence-of-first-derivative fluxes.
DiscretizeResult discretize(const PdeUpdate& pde,
                            const DiscretizeOptions& opts);

/// Discretizes a standalone expression at cell centers (for tests and
/// simple non-time-stepped kernels).
sym::Expr discretize_expression(const sym::Expr& e,
                                const DiscretizeOptions& opts);

}  // namespace pfc::fd
