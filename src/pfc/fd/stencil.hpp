// The stencil representation: what the discretization layer produces and the
// intermediate-representation layer consumes (paper Fig. 1, middle layers).
#pragma once

#include <string>
#include <vector>

#include "pfc/sym/expr.hpp"

namespace pfc::fd {

/// One assignment of the stencil program. `lhs` is either a FieldRef (a
/// store to the destination lattice) or a Symbol (a temporary, SSA-style).
/// `rhs` contains only pointwise algebra over FieldRefs/Symbols — no
/// continuous Diff/Dt nodes survive discretization.
struct Assignment {
  sym::Expr lhs;
  sym::Expr rhs;
};

/// A discretized compute kernel: a list of per-cell assignments plus the
/// iteration region it runs over.
struct StencilKernel {
  std::string name;
  std::vector<Assignment> assignments;
  /// Iteration bounds are the block interior extended by `extent_plus[d]`
  /// extra cells at the upper end of dim d (staggered precompute kernels use
  /// +1: one more face than cells).
  std::array<int, 3> extent_plus{0, 0, 0};
  /// Fields read / written (deduplicated, deterministic order).
  std::vector<FieldPtr> reads;
  std::vector<FieldPtr> writes;
};

/// Recomputes the reads/writes lists from the assignments.
void recompute_field_lists(StencilKernel& k);

/// Largest absolute FieldRef offset used along each dim — the ghost-layer
/// requirement of the kernel.
std::array<int, 3> access_radius(const StencilKernel& k);

/// Counts distinct FieldRef reads (paper Table 1 "loads") and writes
/// ("stores") per cell update.
struct AccessCounts {
  int loads = 0;
  int stores = 0;
};
AccessCounts count_accesses(const StencilKernel& k);

}  // namespace pfc::fd
