#include "pfc/field/array.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "pfc/support/thread_pool.hpp"

namespace pfc {

namespace {
constexpr std::int64_t kLinePad = 8;  // doubles per AVX-512 vector
}

Array::Array(FieldPtr field, std::array<std::int64_t, 3> interior_size,
             int ghost_layers)
    : Array(std::move(field), interior_size, ghost_layers, nullptr) {}

Array::Array(FieldPtr field, std::array<std::int64_t, 3> interior_size,
             int ghost_layers, ThreadPool* first_touch_pool)
    : field_(std::move(field)), size_(interior_size), ghosts_(ghost_layers) {
  PFC_REQUIRE(ghost_layers >= 0, "negative ghost layers");
  for (int d = 0; d < 3; ++d) {
    PFC_REQUIRE(size_[std::size_t(d)] >= 1, "array size must be >= 1");
    const bool used = d < field_->spatial_dims();
    PFC_REQUIRE(used || size_[std::size_t(d)] == 1,
                "unused spatial dim of " + field_->name() + " must be 1");
    ghosts_per_dim_[std::size_t(d)] = used ? ghost_layers : 0;
  }

  const std::int64_t nx = size_[0] + 2 * ghosts_per_dim_[0];
  const std::int64_t ny = size_[1] + 2 * ghosts_per_dim_[1];
  const std::int64_t nz = size_[2] + 2 * ghosts_per_dim_[2];
  const std::int64_t line = std::int64_t(round_up(std::size_t(nx), kLinePad));
  strides_ = {1, line, line * ny};
  comp_stride_ = line * ny * nz;
  origin_offset_ = ghosts_per_dim_[0] * strides_[0] +
                   ghosts_per_dim_[1] * strides_[1] +
                   ghosts_per_dim_[2] * strides_[2];
  alloc_ = comp_stride_ * field_->components();
  data_ = make_aligned<double>(std::size_t(alloc_));
  first_touch_fill(first_touch_pool, 0.0);
}

void Array::first_touch_fill(ThreadPool* pool, double v) {
  if (pool == nullptr || pool->num_threads() == 1 ||
      field_->spatial_dims() < 2) {
    fill(v);
    return;
  }
  // Partition raw outer-axis rows exactly like the static kernel dispatch:
  // interior rows chunked by SlabPlan, worker 0 extended down over the
  // lower ghost rows, the last worker up over the upper ones. Rows along
  // the outer axis are contiguous within a component in fzyx layout, so
  // each worker touches one contiguous region per component.
  const int outer = field_->spatial_dims() - 1;
  const std::int64_t n = size_[std::size_t(outer)];
  const std::int64_t g = ghosts_per_dim_[std::size_t(outer)];
  const std::int64_t row_stride = strides_[std::size_t(outer)];
  const SlabPlan plan = SlabPlan::make(0, n, pool->num_threads());
  double* base = data_.get();
  const int comps = field_->components();
  const std::int64_t comp_stride = comp_stride_;
  pool->run_on_all([&](int w) {
    const auto [lo, hi] = plan.slab(w, -g, n + g);
    if (lo >= hi) return;
    for (int c = 0; c < comps; ++c) {
      double* p = base + c * comp_stride + (lo + g) * row_stride;
      std::fill_n(p, std::size_t((hi - lo) * row_stride), v);
    }
  });
}

std::int64_t Array::index(std::int64_t x, std::int64_t y, std::int64_t z,
                          int c) const {
  PFC_ASSERT(x >= -ghosts_per_dim_[0] && x < size_[0] + ghosts_per_dim_[0]);
  PFC_ASSERT(y >= -ghosts_per_dim_[1] && y < size_[1] + ghosts_per_dim_[1]);
  PFC_ASSERT(z >= -ghosts_per_dim_[2] && z < size_[2] + ghosts_per_dim_[2]);
  PFC_ASSERT(c >= 0 && c < field_->components());
  return origin_offset_ + x * strides_[0] + y * strides_[1] +
         z * strides_[2] + c * comp_stride_;
}

void Array::fill(double v) {
  std::fill_n(data_.get(), std::size_t(alloc_), v);
}

void Array::fill_component(int c, double v) {
  std::fill_n(data_.get() + c * comp_stride_, std::size_t(comp_stride_), v);
}

void Array::copy_from(const Array& other) {
  PFC_REQUIRE(alloc_ == other.alloc_ && size_ == other.size_,
              "copy_from: shape mismatch");
  std::memcpy(data_.get(), other.data_.get(),
              std::size_t(alloc_) * sizeof(double));
}

void Array::copy_from(const Array& other, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() == 1) {
    copy_from(other);
    return;
  }
  PFC_REQUIRE(alloc_ == other.alloc_ && size_ == other.size_,
              "copy_from: shape mismatch");
  double* dst = data_.get();
  const double* src = other.data_.get();
  pool->parallel_for(
      0, alloc_,
      [dst, src](std::int64_t lo, std::int64_t hi) {
        std::memcpy(dst + lo, src + lo,
                    std::size_t(hi - lo) * sizeof(double));
      },
      /*chunk_align=*/8);
}

void Array::average_with(const Array& u0, ThreadPool* pool) {
  PFC_REQUIRE(alloc_ == u0.alloc_ && size_ == u0.size_,
              "average_with: shape mismatch");
  double* dst = data_.get();
  const double* src = u0.data_.get();
  const auto blend = [dst, src](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      dst[i] = 0.5 * (dst[i] + src[i]);
    }
  };
  if (pool == nullptr || pool->num_threads() == 1) {
    blend(0, alloc_);
    return;
  }
  pool->parallel_for(0, alloc_, blend, /*chunk_align=*/8);
}

void Array::swap(Array& other) noexcept {
  std::swap(field_, other.field_);
  std::swap(size_, other.size_);
  std::swap(strides_, other.strides_);
  std::swap(ghosts_per_dim_, other.ghosts_per_dim_);
  std::swap(comp_stride_, other.comp_stride_);
  std::swap(origin_offset_, other.origin_offset_);
  std::swap(alloc_, other.alloc_);
  std::swap(ghosts_, other.ghosts_);
  std::swap(data_, other.data_);
}

void Array::swap_data(Array& other) {
  PFC_REQUIRE(alloc_ == other.alloc_ && size_ == other.size_ &&
                  field_->components() == other.field_->components(),
              "swap_data: shape mismatch");
  std::swap(data_, other.data_);
}

void Array::copy_interior_out(double* dst) const {
  for (int c = 0; c < field_->components(); ++c) {
    for (std::int64_t z = 0; z < size_[2]; ++z) {
      for (std::int64_t y = 0; y < size_[1]; ++y) {
        const double* line = &data_[std::size_t(index(0, y, z, c))];
        std::memcpy(dst, line, std::size_t(size_[0]) * sizeof(double));
        dst += size_[0];
      }
    }
  }
}

void Array::copy_interior_in(const double* src) {
  for (int c = 0; c < field_->components(); ++c) {
    for (std::int64_t z = 0; z < size_[2]; ++z) {
      for (std::int64_t y = 0; y < size_[1]; ++y) {
        double* line = &data_[std::size_t(index(0, y, z, c))];
        std::memcpy(line, src, std::size_t(size_[0]) * sizeof(double));
        src += size_[0];
      }
    }
  }
}

double Array::max_abs_diff(const Array& a, const Array& b) {
  PFC_REQUIRE(a.size_ == b.size_ &&
                  a.field_->components() == b.field_->components(),
              "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (int c = 0; c < a.field_->components(); ++c) {
    for (std::int64_t z = 0; z < a.size_[2]; ++z) {
      for (std::int64_t y = 0; y < a.size_[1]; ++y) {
        for (std::int64_t x = 0; x < a.size_[0]; ++x) {
          m = std::max(m, std::abs(a.at(x, y, z, c) - b.at(x, y, z, c)));
        }
      }
    }
  }
  return m;
}

double Array::interior_sum(int c) const {
  double s = 0.0;
  for (std::int64_t z = 0; z < size_[2]; ++z) {
    for (std::int64_t y = 0; y < size_[1]; ++y) {
      for (std::int64_t x = 0; x < size_[0]; ++x) {
        s += at(x, y, z, c);
      }
    }
  }
  return s;
}

}  // namespace pfc
