// Runtime lattice storage bound to a symbolic Field.
//
// Layout is waLBerla's "fzyx": the component index is the outermost (slowest)
// dimension, i.e. a structure-of-arrays layout, and each x-line is padded so
// that line starts are SIMD/cache-line aligned (paper §3.5: "arrays are
// allocated and padded such that the beginning of each line is sufficiently
// aligned").
//
// Coordinates are *interior* coordinates: (0,0,0) is the first non-ghost
// cell; ghost cells live at -g .. -1 and n .. n+g-1.
#pragma once

#include <array>
#include <cstdint>

#include "pfc/field/field.hpp"
#include "pfc/support/aligned.hpp"

namespace pfc {

class ThreadPool;

class Array {
 public:
  /// Creates storage for `field` with the given interior size (cells per
  /// spatial dim; unused dims must be 1) and `ghost_layers` ghost cells on
  /// every used spatial boundary. Values are zero-initialized.
  Array(FieldPtr field, std::array<std::int64_t, 3> interior_size,
        int ghost_layers);

  /// As above, but the zero fill is executed by `first_touch_pool` with the
  /// same static outer-axis slab partition the kernel dispatch uses, so on
  /// NUMA systems each worker's slab is first-touched — and therefore
  /// page-resident — on that worker's local node (DESIGN.md §11). A null
  /// pool falls back to the serial fill.
  Array(FieldPtr field, std::array<std::int64_t, 3> interior_size,
        int ghost_layers, ThreadPool* first_touch_pool);

  Array(Array&&) noexcept = default;
  Array& operator=(Array&&) noexcept = default;

  const FieldPtr& field() const { return field_; }
  const std::array<std::int64_t, 3>& size() const { return size_; }
  int ghost_layers() const { return ghosts_; }
  int components() const { return field_->components(); }

  /// Stride (in doubles) along spatial dim d; stride(0) == 1 by layout.
  std::int64_t stride(int d) const { return strides_[std::size_t(d)]; }
  std::int64_t component_stride() const { return comp_stride_; }

  /// Total allocated doubles.
  std::int64_t allocated() const { return alloc_; }

  /// Pointer to interior origin (0,0,0) of component c.
  double* origin(int c) {
    return data_.get() + origin_offset_ + c * comp_stride_;
  }
  const double* origin(int c) const {
    return data_.get() + origin_offset_ + c * comp_stride_;
  }

  double& at(std::int64_t x, std::int64_t y, std::int64_t z, int c = 0) {
    return data_[std::size_t(index(x, y, z, c))];
  }
  double at(std::int64_t x, std::int64_t y, std::int64_t z, int c = 0) const {
    return data_[std::size_t(index(x, y, z, c))];
  }

  /// Linear offset from the buffer start for interior coordinates.
  std::int64_t index(std::int64_t x, std::int64_t y, std::int64_t z,
                     int c) const;

  void fill(double v);
  void fill_component(int c, double v);

  /// Parallel fill partitioned like the kernel dispatch slabs (outer used
  /// axis, worker 0 taking the lower ghost rows, the last worker the upper
  /// ones). Establishes NUMA page placement on first touch; also safe to
  /// call later (values only). Serial when pool is null or single-threaded.
  void first_touch_fill(ThreadPool* pool, double v = 0.0);

  /// Copies interior + ghosts from another array of identical shape. With a
  /// pool the copy splits into per-thread memcpy chunks (the Heun staging
  /// copy is memory-bound and scales with threads).
  void copy_from(const Array& other);
  void copy_from(const Array& other, ThreadPool* pool);

  /// In-place blend `this = 0.5 * (this + u0)` over the whole buffer —
  /// interior, ghosts and padding alike (padding is zero in both operands).
  /// Shapes must match; splits across `pool` when given. This is Heun's
  /// trapezoidal average u_new = (u0 + u2) / 2.
  void average_with(const Array& u0, ThreadPool* pool = nullptr);

  /// Swaps buffers with another array of identical shape (the src/dst swap
  /// at the end of every time step).
  void swap(Array& other) noexcept;

  /// Swaps only the data buffers, keeping each array bound to its own
  /// symbolic field — the src/dst pointer swap of Algorithm 1. Shapes and
  /// component counts must match.
  void swap_data(Array& other);

  /// Interior doubles across all components (checkpoint payload size).
  std::int64_t interior_count() const {
    return size_[0] * size_[1] * size_[2] * components();
  }

  /// Serializes the interior (no ghosts, no padding) into `dst` in
  /// (c, z, y, x) order, x fastest — the checkpoint wire layout, identical
  /// whatever the padded in-memory strides are.
  void copy_interior_out(double* dst) const;
  /// Inverse of copy_interior_out; ghost layers are left untouched (the
  /// caller refreshes them via boundary fill / ghost exchange).
  void copy_interior_in(const double* src);

  /// Max |a - b| over the interior (all components). Shapes must match.
  static double max_abs_diff(const Array& a, const Array& b);

  /// Sum over the interior of component c.
  double interior_sum(int c = 0) const;

 private:
  FieldPtr field_;
  std::array<std::int64_t, 3> size_{};
  std::array<std::int64_t, 3> strides_{};
  std::array<int, 3> ghosts_per_dim_{};
  std::int64_t comp_stride_ = 0;
  std::int64_t origin_offset_ = 0;
  std::int64_t alloc_ = 0;
  int ghosts_ = 0;
  AlignedPtr<double> data_;
};

}  // namespace pfc
