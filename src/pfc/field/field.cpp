#include "pfc/field/field.hpp"

#include <atomic>

namespace pfc {

std::uint64_t Field::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pfc
