// Symbolic field metadata.
//
// A Field describes a discrete lattice quantity (phase-field vector phi,
// chemical potential mu, staggered flux buffers, ...) at the *symbolic* level:
// name, spatial dimensionality and number of components. Expressions refer to
// fields through FieldRef nodes carrying integer cell offsets; the runtime
// counterpart (pfc::Array) binds to a Field by identity when a kernel is run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pfc/support/assert.hpp"

namespace pfc {

/// Where a field's values live relative to the cell lattice.
enum class FieldKind : std::uint8_t {
  Cell,       ///< cell-centered value (default)
  StaggeredX, ///< value on the face between cell (i-1) and i along x
  StaggeredY,
  StaggeredZ,
};

class Field;
using FieldPtr = std::shared_ptr<const Field>;

/// Immutable description of a lattice field.
class Field {
 public:
  static FieldPtr create(std::string name, int spatial_dims, int components,
                         FieldKind kind = FieldKind::Cell) {
    PFC_REQUIRE(spatial_dims >= 1 && spatial_dims <= 3,
                "field spatial_dims must be in [1,3]");
    PFC_REQUIRE(components >= 1, "field needs at least one component");
    return FieldPtr(
        new Field(std::move(name), spatial_dims, components, kind));
  }

  const std::string& name() const { return name_; }
  int spatial_dims() const { return spatial_dims_; }
  int components() const { return components_; }
  FieldKind kind() const { return kind_; }
  std::uint64_t id() const { return id_; }

  /// For staggered fields: the axis the stagger is along, else -1.
  int staggered_axis() const {
    switch (kind_) {
      case FieldKind::StaggeredX: return 0;
      case FieldKind::StaggeredY: return 1;
      case FieldKind::StaggeredZ: return 2;
      default: return -1;
    }
  }

  static FieldKind staggered_kind(int axis) {
    PFC_ASSERT(axis >= 0 && axis < 3);
    return axis == 0   ? FieldKind::StaggeredX
           : axis == 1 ? FieldKind::StaggeredY
                       : FieldKind::StaggeredZ;
  }

 private:
  Field(std::string name, int spatial_dims, int components, FieldKind kind)
      : name_(std::move(name)),
        spatial_dims_(spatial_dims),
        components_(components),
        kind_(kind),
        id_(next_id()) {}

  static std::uint64_t next_id();

  std::string name_;
  int spatial_dims_;
  int components_;
  FieldKind kind_;
  std::uint64_t id_;
};

}  // namespace pfc
