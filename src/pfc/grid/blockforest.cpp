#include "pfc/grid/blockforest.hpp"

#include <algorithm>
#include <cstdio>

#include "pfc/support/assert.hpp"

namespace pfc::grid {

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z) {
  const auto spread = [](std::uint64_t v) {
    v &= 0x1fffff;  // 21 bits
    v = (v | v << 32) & 0x1f00000000ffffull;
    v = (v | v << 16) & 0x1f0000ff0000ffull;
    v = (v | v << 8) & 0x100f00f00f00f00full;
    v = (v | v << 4) & 0x10c30c30c30c30c3ull;
    v = (v | v << 2) & 0x1249249249249249ull;
    return v;
  };
  return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

BlockForest::BlockForest(std::array<long long, 3> global_cells,
                         std::array<int, 3> blocks_per_dim, int num_ranks,
                         int dims, BoundaryKind boundary)
    : global_cells_(global_cells),
      blocks_per_dim_(blocks_per_dim),
      num_ranks_(num_ranks),
      dims_(dims),
      boundary_(boundary) {
  PFC_REQUIRE(num_ranks >= 1, "need at least one rank");
  PFC_REQUIRE(dims >= 1 && dims <= 3, "dims must be 1..3");
  std::array<long long, 3> bsize{1, 1, 1};
  for (int d = 0; d < 3; ++d) {
    if (d >= dims) {
      PFC_REQUIRE(blocks_per_dim[std::size_t(d)] == 1 &&
                      global_cells[std::size_t(d)] == 1,
                  "unused dims must have 1 block of 1 cell");
    }
    PFC_REQUIRE(blocks_per_dim[std::size_t(d)] >= 1, "bad block count");
    PFC_REQUIRE(
        global_cells[std::size_t(d)] % blocks_per_dim[std::size_t(d)] == 0,
        "global cells must divide evenly into blocks");
    bsize[std::size_t(d)] =
        global_cells[std::size_t(d)] / blocks_per_dim[std::size_t(d)];
  }

  for (int bz = 0; bz < blocks_per_dim[2]; ++bz) {
    for (int by = 0; by < blocks_per_dim[1]; ++by) {
      for (int bx = 0; bx < blocks_per_dim[0]; ++bx) {
        Block b;
        b.index = {bx, by, bz};
        b.size = bsize;
        b.offset = {bx * bsize[0], by * bsize[1], bz * bsize[2]};
        b.morton = morton_encode(std::uint32_t(bx), std::uint32_t(by),
                                 std::uint32_t(bz));
        blocks_.push_back(b);
      }
    }
  }

  // sort along the Morton curve, then cut into near-equal contiguous chunks
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Block& a, const Block& b) { return a.morton < b.morton; });
  const std::size_t nb = blocks_.size();
  for (std::size_t i = 0; i < nb; ++i) {
    blocks_[i].linear_id = static_cast<int>(i);
    blocks_[i].owner = static_cast<int>(i * std::size_t(num_ranks) / nb);
  }

  by_index_.assign(nb, -1);
  for (std::size_t i = 0; i < nb; ++i) {
    const auto& ix = blocks_[i].index;
    const std::size_t flat =
        std::size_t(ix[0]) +
        std::size_t(blocks_per_dim[0]) *
            (std::size_t(ix[1]) +
             std::size_t(blocks_per_dim[1]) * std::size_t(ix[2]));
    by_index_[flat] = static_cast<int>(i);
  }
}

std::vector<const Block*> BlockForest::blocks_of_rank(int rank) const {
  std::vector<const Block*> out;
  for (const auto& b : blocks_) {
    if (b.owner == rank) out.push_back(&b);
  }
  return out;
}

const Block& BlockForest::block_at(std::array<int, 3> index) const {
  for (int d = 0; d < 3; ++d) {
    PFC_REQUIRE(index[std::size_t(d)] >= 0 &&
                    index[std::size_t(d)] < blocks_per_dim_[std::size_t(d)],
                "block index out of range");
  }
  const std::size_t flat =
      std::size_t(index[0]) +
      std::size_t(blocks_per_dim_[0]) *
          (std::size_t(index[1]) +
           std::size_t(blocks_per_dim_[1]) * std::size_t(index[2]));
  return blocks_[std::size_t(by_index_[flat])];
}

const Block* BlockForest::neighbor(const Block& b, int axis, int side) const {
  PFC_REQUIRE(axis >= 0 && axis < dims_, "neighbor axis out of range");
  PFC_REQUIRE(side == 1 || side == -1, "side must be +-1");
  std::array<int, 3> ix = b.index;
  ix[std::size_t(axis)] += side;
  const int n = blocks_per_dim_[std::size_t(axis)];
  if (ix[std::size_t(axis)] < 0 || ix[std::size_t(axis)] >= n) {
    if (boundary_ != BoundaryKind::Periodic) return nullptr;
    ix[std::size_t(axis)] = (ix[std::size_t(axis)] + n) % n;
  }
  return &block_at(ix);
}

std::pair<int, int> BlockForest::rank_load_extremes() const {
  std::vector<int> counts(std::size_t(num_ranks_), 0);
  for (const auto& b : blocks_) ++counts[std::size_t(b.owner)];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  return {*mx, *mn};
}

std::string BlockForest::layout_signature() const {
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "cells=%lldx%lldx%lld;blocks=%dx%dx%d;ranks=%d;dims=%d;boundary=%s",
      global_cells_[0], global_cells_[1], global_cells_[2],
      blocks_per_dim_[0], blocks_per_dim_[1], blocks_per_dim_[2], num_ranks_,
      dims_, boundary_ == BoundaryKind::Periodic ? "periodic"
                                                 : "zerogradient");
  return buf;
}

}  // namespace pfc::grid
