// Block-structured domain partitioning (the waLBerla substrate, paper §4.1):
// a uniform grid of equally sized blocks, distributed over ranks along a
// Morton space-filling curve (waLBerla's SFC-based static load balancing).
// All queries are local computations — the structure is fully replicated,
// but O(#blocks), so "the memory consumption of one process does not
// increase with the total number of processes" holds for the per-cell data.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pfc/grid/boundary.hpp"

namespace pfc::grid {

struct Block {
  std::array<int, 3> index{0, 0, 0};         ///< block coordinates
  std::array<long long, 3> offset{0, 0, 0};  ///< global cell offset
  std::array<long long, 3> size{1, 1, 1};    ///< cells per dim
  int owner = 0;                             ///< owning rank
  std::uint64_t morton = 0;
  int linear_id = 0;  ///< dense id, stable across ranks
};

/// Interleaves the lower 21 bits of x, y, z (Morton / Z-order code).
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z);

class BlockForest {
 public:
  /// Decomposes `global_cells` into `blocks_per_dim` equal blocks per dim
  /// (sizes must divide evenly) and assigns contiguous Morton-curve chunks
  /// to `num_ranks` ranks.
  BlockForest(std::array<long long, 3> global_cells,
              std::array<int, 3> blocks_per_dim, int num_ranks, int dims,
              BoundaryKind boundary = BoundaryKind::Periodic);

  int dims() const { return dims_; }
  int num_ranks() const { return num_ranks_; }
  BoundaryKind boundary() const { return boundary_; }
  const std::array<long long, 3>& global_cells() const {
    return global_cells_;
  }

  const std::vector<Block>& blocks() const { return blocks_; }
  std::vector<const Block*> blocks_of_rank(int rank) const;

  const Block& block_at(std::array<int, 3> index) const;

  /// Neighbour along axis/side (+1 upper, -1 lower); nullptr at a
  /// non-periodic domain boundary.
  const Block* neighbor(const Block& b, int axis, int side) const;

  /// Max/min number of blocks per rank (load balance quality).
  std::pair<int, int> rank_load_extremes() const;

  /// Compact description of the decomposition geometry (global cells,
  /// blocks per dim, rank count, dims, boundary). Checkpoint manifests
  /// embed it so a restart into a different layout fails fast instead of
  /// scattering data to the wrong blocks.
  std::string layout_signature() const;

 private:
  std::array<long long, 3> global_cells_;
  std::array<int, 3> blocks_per_dim_;
  int num_ranks_;
  int dims_;
  BoundaryKind boundary_;
  std::vector<Block> blocks_;                 // by linear_id
  std::vector<int> by_index_;                 // index-order -> linear_id
};

}  // namespace pfc::grid
