#include "pfc/grid/boundary.hpp"

namespace pfc::grid {

namespace {

/// Iterates the array range extended by ghosts in axes < `axis` (already
/// filled by earlier sweeps) and interior in axes > `axis`.
struct Range {
  std::int64_t lo[3], hi[3];
};

Range sweep_range(const Array& a, int axis) {
  Range r;
  const int g = a.ghost_layers();
  for (int d = 0; d < 3; ++d) {
    const bool used = d < a.field()->spatial_dims();
    const int gd = used ? g : 0;
    if (d < axis) {
      r.lo[d] = -gd;
      r.hi[d] = a.size()[std::size_t(d)] + gd;
    } else {
      r.lo[d] = 0;
      r.hi[d] = a.size()[std::size_t(d)];
    }
  }
  return r;
}

}  // namespace

void fill_ghosts_axis(Array& a, int axis, BoundaryKind kind, bool lower,
                      bool upper) {
  const int g = a.ghost_layers();
  if (g == 0 || axis >= a.field()->spatial_dims()) return;
  const std::int64_t n = a.size()[std::size_t(axis)];
  const Range r = sweep_range(a, axis);

  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t u = r.lo[(axis + 1) % 3]; u < r.hi[(axis + 1) % 3];
         ++u) {
      for (std::int64_t v = r.lo[(axis + 2) % 3]; v < r.hi[(axis + 2) % 3];
           ++v) {
        const auto cell = [&](std::int64_t w) -> double& {
          std::int64_t xyz[3];
          xyz[axis] = w;
          xyz[(axis + 1) % 3] = u;
          xyz[(axis + 2) % 3] = v;
          return a.at(xyz[0], xyz[1], xyz[2], c);
        };
        for (int gi = 1; gi <= g; ++gi) {
          if (kind == BoundaryKind::Periodic) {
            if (lower) cell(-gi) = cell(n - gi);
            if (upper) cell(n - 1 + gi) = cell(gi - 1);
          } else {
            if (lower) cell(-gi) = cell(0);
            if (upper) cell(n - 1 + gi) = cell(n - 1);
          }
        }
      }
    }
  }
}

void fill_ghosts(Array& a, BoundaryKind kind) {
  for (int axis = 0; axis < a.field()->spatial_dims(); ++axis) {
    fill_ghosts_axis(a, axis, kind);
  }
}

}  // namespace pfc::grid
