#include "pfc/grid/boundary.hpp"

#include <algorithm>

#include "pfc/support/assert.hpp"

namespace pfc::grid {

namespace {

/// Iterates the array range extended by ghosts in axes < `axis` (already
/// filled by earlier sweeps) and interior in axes > `axis`.
struct Range {
  std::int64_t lo[3], hi[3];
};

Range sweep_range(const Array& a, int axis) {
  Range r;
  const int g = a.ghost_layers();
  for (int d = 0; d < 3; ++d) {
    const bool used = d < a.field()->spatial_dims();
    const int gd = used ? g : 0;
    if (d < axis) {
      r.lo[d] = -gd;
      r.hi[d] = a.size()[std::size_t(d)] + gd;
    } else {
      r.lo[d] = 0;
      r.hi[d] = a.size()[std::size_t(d)];
    }
  }
  return r;
}

void fill_axis_over(Array& a, int axis, BoundaryKind kind, bool lower,
                    bool upper, const Range& r) {
  const int g = a.ghost_layers();
  const std::int64_t n = a.size()[std::size_t(axis)];

  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t u = r.lo[(axis + 1) % 3]; u < r.hi[(axis + 1) % 3];
         ++u) {
      for (std::int64_t v = r.lo[(axis + 2) % 3]; v < r.hi[(axis + 2) % 3];
           ++v) {
        const auto cell = [&](std::int64_t w) -> double& {
          std::int64_t xyz[3];
          xyz[axis] = w;
          xyz[(axis + 1) % 3] = u;
          xyz[(axis + 2) % 3] = v;
          return a.at(xyz[0], xyz[1], xyz[2], c);
        };
        for (int gi = 1; gi <= g; ++gi) {
          if (kind == BoundaryKind::Periodic) {
            if (lower) cell(-gi) = cell(n - gi);
            if (upper) cell(n - 1 + gi) = cell(gi - 1);
          } else {
            if (lower) cell(-gi) = cell(0);
            if (upper) cell(n - 1 + gi) = cell(n - 1);
          }
        }
      }
    }
  }
}

}  // namespace

void fill_ghosts_axis(Array& a, int axis, BoundaryKind kind, bool lower,
                      bool upper) {
  if (a.ghost_layers() == 0 || axis >= a.field()->spatial_dims()) return;
  fill_axis_over(a, axis, kind, lower, upper, sweep_range(a, axis));
}

void fill_ghosts_axis_rows(Array& a, int axis, BoundaryKind kind,
                           int restrict_axis, std::int64_t row_lo,
                           std::int64_t row_hi) {
  if (a.ghost_layers() == 0 || axis >= a.field()->spatial_dims()) return;
  PFC_ASSERT(restrict_axis > axis,
             "row restriction must be on a later (interior-range) axis");
  Range r = sweep_range(a, axis);
  r.lo[restrict_axis] = std::max(r.lo[restrict_axis], row_lo);
  r.hi[restrict_axis] = std::min(r.hi[restrict_axis], row_hi);
  if (r.lo[restrict_axis] >= r.hi[restrict_axis]) return;
  fill_axis_over(a, axis, kind, true, true, r);
}

void fill_ghosts_transverse_rows(Array& a, BoundaryKind kind, int outer_axis,
                                 std::int64_t row_lo, std::int64_t row_hi) {
  for (int axis = 0; axis < outer_axis && axis < a.field()->spatial_dims();
       ++axis) {
    fill_ghosts_axis_rows(a, axis, kind, outer_axis, row_lo, row_hi);
  }
}

void fill_ghosts(Array& a, BoundaryKind kind) {
  for (int axis = 0; axis < a.field()->spatial_dims(); ++axis) {
    fill_ghosts_axis(a, axis, kind);
  }
}

}  // namespace pfc::grid
