// Single-block boundary handling: fills ghost layers either periodically or
// with zero-gradient (Neumann) copies of the boundary cells. Distributed
// runs use ghost_exchange for inter-block faces and these fills only at
// true domain boundaries.
#pragma once

#include "pfc/field/array.hpp"

namespace pfc::grid {

enum class BoundaryKind { Periodic, ZeroGradient };

/// Fills all ghost layers of `a` along every used spatial dimension.
/// Axis-sequential sweeps (x, then y, then z) over the already-extended
/// range fill edge and corner ghosts without diagonal copies.
void fill_ghosts(Array& a, BoundaryKind kind);

/// Fills ghosts along a single axis (used by the distributed runtime for
/// non-periodic domain boundaries on boundary blocks).
void fill_ghosts_axis(Array& a, int axis, BoundaryKind kind,
                      bool lower = true, bool upper = true);

/// Fills ghosts along `axis` only where the coordinate along
/// `restrict_axis` (> `axis`, interior coordinates) lies in
/// [row_lo, row_hi). Writes exactly the values the full fill would for
/// those rows, so incremental row-by-row filling — the wavefront schedule
/// fills the transverse ghosts of each freshly computed row band — is
/// bitwise identical to one full sweep.
void fill_ghosts_axis_rows(Array& a, int axis, BoundaryKind kind,
                           int restrict_axis, std::int64_t row_lo,
                           std::int64_t row_hi);

/// All transverse fills of the wavefront: axes < `outer_axis` in the same
/// order fill_ghosts uses, restricted to outer rows [row_lo, row_hi).
void fill_ghosts_transverse_rows(Array& a, BoundaryKind kind, int outer_axis,
                                 std::int64_t row_lo, std::int64_t row_hi);

}  // namespace pfc::grid
