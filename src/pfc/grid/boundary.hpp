// Single-block boundary handling: fills ghost layers either periodically or
// with zero-gradient (Neumann) copies of the boundary cells. Distributed
// runs use ghost_exchange for inter-block faces and these fills only at
// true domain boundaries.
#pragma once

#include "pfc/field/array.hpp"

namespace pfc::grid {

enum class BoundaryKind { Periodic, ZeroGradient };

/// Fills all ghost layers of `a` along every used spatial dimension.
/// Axis-sequential sweeps (x, then y, then z) over the already-extended
/// range fill edge and corner ghosts without diagonal copies.
void fill_ghosts(Array& a, BoundaryKind kind);

/// Fills ghosts along a single axis (used by the distributed runtime for
/// non-periodic domain boundaries on boundary blocks).
void fill_ghosts_axis(Array& a, int axis, BoundaryKind kind,
                      bool lower = true, bool upper = true);

}  // namespace pfc::grid
