#include "pfc/grid/ghost_exchange.hpp"

#include "pfc/support/assert.hpp"

namespace pfc::grid {

namespace {

/// Iteration box of one ghost/interior slab along `axis`; other axes span
/// interior plus the ghosts of already-exchanged axes (< axis).
struct SlabBox {
  std::int64_t lo[3], hi[3];
};

SlabBox slab_box(const Array& a, int axis, std::int64_t a_lo,
                 std::int64_t a_hi) {
  SlabBox box;
  const int g = a.ghost_layers();
  for (int d = 0; d < 3; ++d) {
    const bool used = d < a.field()->spatial_dims();
    const int gd = used ? g : 0;
    if (d == axis) {
      box.lo[d] = a_lo;
      box.hi[d] = a_hi;
    } else if (d < axis) {
      box.lo[d] = -gd;
      box.hi[d] = a.size()[std::size_t(d)] + gd;
    } else {
      box.lo[d] = 0;
      box.hi[d] = a.size()[std::size_t(d)];
    }
  }
  return box;
}

std::size_t box_cells(const SlabBox& b) {
  std::size_t n = 1;
  for (int d = 0; d < 3; ++d) n *= std::size_t(b.hi[d] - b.lo[d]);
  return n;
}

/// Doubles in one remote message of `a` along `axis` (send and recv slabs
/// have the same volume: g layers thick).
std::size_t slab_doubles(const Array& a, int axis) {
  const SlabBox b = slab_box(a, axis, 0, a.ghost_layers());
  return box_cells(b) * std::size_t(a.components());
}

void pack(const Array& a, const SlabBox& b, std::vector<double>& buf) {
  buf.clear();
  buf.reserve(box_cells(b) * std::size_t(a.components()));
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = b.lo[2]; z < b.hi[2]; ++z) {
      for (std::int64_t y = b.lo[1]; y < b.hi[1]; ++y) {
        for (std::int64_t x = b.lo[0]; x < b.hi[0]; ++x) {
          buf.push_back(a.at(x, y, z, c));
        }
      }
    }
  }
}

void unpack(Array& a, const SlabBox& b, const std::vector<double>& buf) {
  PFC_ASSERT(buf.size() == box_cells(b) * std::size_t(a.components()));
  std::size_t i = 0;
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = b.lo[2]; z < b.hi[2]; ++z) {
      for (std::int64_t y = b.lo[1]; y < b.hi[1]; ++y) {
        for (std::int64_t x = b.lo[0]; x < b.hi[0]; ++x) {
          a.at(x, y, z, c) = buf[i++];
        }
      }
    }
  }
}

/// Copies neighbour interior into my ghosts directly (both local).
/// `buf` is the caller's staging storage (reused across copies).
void copy_local(Array& dst, const Array& src, int axis, int side, int g,
                std::vector<double>& buf) {
  const std::int64_t n_dst = dst.size()[std::size_t(axis)];
  const std::int64_t n_src = src.size()[std::size_t(axis)];
  // my ghosts on `side` <- neighbour interior at the opposite edge
  const SlabBox gbox = slab_box(dst, axis, side > 0 ? n_dst : -g,
                                side > 0 ? n_dst + g : 0);
  const SlabBox sbox = slab_box(src, axis, side > 0 ? 0 : n_src - g,
                                side > 0 ? g : n_src);
  pack(src, sbox, buf);
  unpack(dst, gbox, buf);
}

int message_tag(int field_tag, int axis, int recv_side,
                int recv_block_id) {
  return ((field_tag * 3 + axis) * 2 + (recv_side > 0 ? 1 : 0)) * 65536 +
         recv_block_id;
}

}  // namespace

GhostExchange::GhostExchange(const BlockForest& forest, mpi::Comm* comm,
                             int max_components, int max_ghost_layers)
    : forest_(forest), comm_(comm) {
  const int my_rank = comm != nullptr ? comm->rank() : 0;
  num_slots_ = static_cast<int>(forest.blocks_of_rank(my_rank).size());
  bufs_.resize(std::size_t(num_slots_) * 3 * 2 * 2);
  if (num_slots_ == 0) return;

  // All blocks are equal-sized; pre-size every (slot, axis, side) buffer
  // pair to its slab volume so steady-state rounds never allocate.
  const auto& s = forest.blocks().front().size;
  const int g = max_ghost_layers;
  std::size_t scratch = 0;
  for (int axis = 0; axis < 3; ++axis) {
    std::size_t cells = 1;
    for (int d = 0; d < forest.dims(); ++d) {
      if (d == axis) cells *= std::size_t(g);
      else if (d < axis) cells *= std::size_t(s[std::size_t(d)] + 2 * g);
      else cells *= std::size_t(s[std::size_t(d)]);
    }
    const std::size_t cap = cells * std::size_t(max_components);
    scratch = std::max(scratch, cap);
    for (int slot = 0; slot < num_slots_; ++slot) {
      for (int side_idx = 0; side_idx < 2; ++side_idx) {
        for (int dir = 0; dir < 2; ++dir) {
          const std::size_t i =
              ((std::size_t(slot) * 3 + std::size_t(axis)) * 2 +
               std::size_t(side_idx)) * 2 + std::size_t(dir);
          bufs_[i].reserve(cap);
        }
      }
    }
  }
  scratch_.reserve(scratch);
  pending_local_.reserve(std::size_t(num_slots_));
  pending_.reserve(std::size_t(num_slots_) * 2);
  pending_reqs_.reserve(std::size_t(num_slots_) * 2);
}

std::vector<double>& GhostExchange::buffer(int slot, int axis, int side,
                                           bool send,
                                           std::size_t needed_doubles) {
  const std::size_t i =
      ((std::size_t(slot) * 3 + std::size_t(axis)) * 2 +
       std::size_t(side > 0 ? 1 : 0)) * 2 + std::size_t(send ? 0 : 1);
  std::vector<double>& b = bufs_[i];
  // The first round may grow past the constructor's sizing hints (larger
  // component count / ghost depth); after that, capacity is frozen.
  PFC_ASSERT(rounds_ == 0 || needed_doubles <= b.capacity(),
             "ghost exchange: steady-state buffer growth");
  return b;
}

void GhostExchange::exchange_axis(const std::vector<LocalBlockField>& local,
                                  int axis, int field_tag, bool post_only,
                                  bool count_bytes) {
  const int my_rank = comm_ != nullptr ? comm_->rank() : 0;

  const auto find_local = [&](const Block* b) -> Array* {
    for (const auto& lf : local) {
      if (lf.block->linear_id == b->linear_id) return lf.array;
    }
    PFC_ASSERT(false, "neighbor block marked local but not bound");
  };

  std::vector<Pending> sync_pending;
  std::vector<mpi::Comm::Request> sync_reqs;
  std::vector<Pending>& pend = post_only ? pending_ : sync_pending;
  std::vector<mpi::Comm::Request>& reqs =
      post_only ? pending_reqs_ : sync_reqs;

  // 1. post all remote sends (buffered, cannot deadlock), register recvs
  for (std::size_t slot = 0; slot < local.size(); ++slot) {
    const LocalBlockField& lf = local[slot];
    Array& a = *lf.array;
    const int g = a.ghost_layers();
    const std::int64_t n = a.size()[std::size_t(axis)];
    for (int side : {-1, +1}) {
      const Block* nb = forest_.neighbor(*lf.block, axis, side);
      if (nb == nullptr) {
        fill_ghosts_axis(a, axis, BoundaryKind::ZeroGradient,
                         /*lower=*/side < 0, /*upper=*/side > 0);
        continue;
      }
      if (nb->owner == my_rank) continue;  // handled in the local pass
      PFC_REQUIRE(comm_ != nullptr,
                  "remote neighbor block but no communicator");
      const std::size_t doubles = slab_doubles(a, axis);
      // send my edge interior for the neighbour's ghosts
      const SlabBox sbox =
          slab_box(a, axis, side > 0 ? n - g : 0, side > 0 ? n : g);
      std::vector<double>& sbuf =
          buffer(int(slot), axis, side, /*send=*/true, doubles);
      pack(a, sbox, sbuf);
      const int stag = message_tag(field_tag, axis, -side, nb->linear_id);
      comm_->send_vec(nb->owner, stag, sbuf);
      if (count_bytes) bytes_sent_ += sbuf.size() * sizeof(double);

      // register the matching receive into my ghosts
      std::vector<double>& rbuf =
          buffer(int(slot), axis, side, /*send=*/false, doubles);
      rbuf.resize(doubles);
      const int rtag = message_tag(field_tag, axis, side, lf.block->linear_id);
      reqs.push_back(comm_->irecv(nb->owner, rtag, rbuf.data(),
                                  rbuf.size() * sizeof(double)));
      pend.push_back({int(slot), axis, side});
    }
  }

  // 2. local neighbour copies
  for (const auto& lf : local) {
    Array& a = *lf.array;
    const int g = a.ghost_layers();
    for (int side : {-1, +1}) {
      const Block* nb = forest_.neighbor(*lf.block, axis, side);
      if (nb == nullptr || nb->owner != my_rank) continue;
      copy_local(a, *find_local(nb), axis, side, g, scratch_);
    }
  }

  if (post_only) return;

  // 3. complete receives
  if (!sync_reqs.empty()) comm_->wait_all(sync_reqs);
  for (const Pending& p : sync_pending) {
    Array& a = *local[std::size_t(p.slot)].array;
    const int g = a.ghost_layers();
    const std::int64_t n = a.size()[std::size_t(p.axis)];
    const SlabBox gbox = slab_box(a, p.axis, p.side > 0 ? n : -g,
                                  p.side > 0 ? n + g : 0);
    unpack(a, gbox,
           buffer(p.slot, p.axis, p.side, /*send=*/false,
                  slab_doubles(a, p.axis)));
  }
}

void GhostExchange::exchange(const std::vector<LocalBlockField>& local,
                             int field_tag) {
  PFC_REQUIRE(!in_flight_, "ghost exchange: exchange() during begin/finish");
  bytes_sent_ = 0;
  for (int axis = 0; axis < forest_.dims(); ++axis) {
    exchange_axis(local, axis, field_tag, /*post_only=*/false,
                  /*count_bytes=*/true);
    // axis sweeps must complete globally before the next axis reads the
    // freshly filled ghosts
    if (comm_ != nullptr) comm_->barrier();
  }
  total_bytes_sent_ += bytes_sent_;
  ++rounds_;
}

void GhostExchange::begin(const std::vector<LocalBlockField>& local,
                          int field_tag) {
  PFC_REQUIRE(!in_flight_, "ghost exchange: begin() while in flight");
  bytes_sent_ = 0;
  exchange_axis(local, /*axis=*/0, field_tag, /*post_only=*/true,
                /*count_bytes=*/true);

  // Credit the later axes' remote volume now: the slab geometry is fixed by
  // topology, so the round's full byte count is known before finish().
  const int my_rank = comm_ != nullptr ? comm_->rank() : 0;
  for (int axis = 1; axis < forest_.dims(); ++axis) {
    for (const auto& lf : local) {
      for (int side : {-1, +1}) {
        const Block* nb = forest_.neighbor(*lf.block, axis, side);
        if (nb != nullptr && nb->owner != my_rank) {
          bytes_sent_ += slab_doubles(*lf.array, axis) * sizeof(double);
        }
      }
    }
  }
  total_bytes_sent_ += bytes_sent_;

  pending_local_ = local;
  pending_tag_ = field_tag;
  in_flight_ = true;
}

void GhostExchange::finish() {
  PFC_REQUIRE(in_flight_, "ghost exchange: finish() without begin()");

  // Complete axis 0: wait for the in-flight receives and unpack. No global
  // barrier is needed — tags are unique per (field, axis, side, block) and
  // matching is FIFO per (source, tag), so a neighbour that is still
  // computing simply delays its own message, not ours.
  if (comm_ != nullptr && !pending_reqs_.empty()) {
    comm_->wait_all(pending_reqs_);
  }
  for (const Pending& p : pending_) {
    Array& a = *pending_local_[std::size_t(p.slot)].array;
    const int g = a.ghost_layers();
    const std::int64_t n = a.size()[std::size_t(p.axis)];
    const SlabBox gbox = slab_box(a, p.axis, p.side > 0 ? n : -g,
                                  p.side > 0 ? n + g : 0);
    unpack(a, gbox,
           buffer(p.slot, p.axis, p.side, /*send=*/false,
                  slab_doubles(a, p.axis)));
  }
  pending_.clear();
  pending_reqs_.clear();

  // Later axes run synchronously: their slabs read the axis-0 ghosts just
  // unpacked, preserving the corner-propagation order of exchange().
  for (int axis = 1; axis < forest_.dims(); ++axis) {
    exchange_axis(pending_local_, axis, pending_tag_, /*post_only=*/false,
                  /*count_bytes=*/false);
  }
  pending_local_.clear();
  in_flight_ = false;
  ++rounds_;
}

}  // namespace pfc::grid
