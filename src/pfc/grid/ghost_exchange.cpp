#include "pfc/grid/ghost_exchange.hpp"

#include "pfc/support/assert.hpp"

namespace pfc::grid {

namespace {

/// Iteration box of one ghost/interior slab along `axis`; other axes span
/// interior plus the ghosts of already-exchanged axes (< axis).
struct SlabBox {
  std::int64_t lo[3], hi[3];
};

SlabBox slab_box(const Array& a, int axis, std::int64_t a_lo,
                 std::int64_t a_hi) {
  SlabBox box;
  const int g = a.ghost_layers();
  for (int d = 0; d < 3; ++d) {
    const bool used = d < a.field()->spatial_dims();
    const int gd = used ? g : 0;
    if (d == axis) {
      box.lo[d] = a_lo;
      box.hi[d] = a_hi;
    } else if (d < axis) {
      box.lo[d] = -gd;
      box.hi[d] = a.size()[std::size_t(d)] + gd;
    } else {
      box.lo[d] = 0;
      box.hi[d] = a.size()[std::size_t(d)];
    }
  }
  return box;
}

std::size_t box_cells(const SlabBox& b) {
  std::size_t n = 1;
  for (int d = 0; d < 3; ++d) n *= std::size_t(b.hi[d] - b.lo[d]);
  return n;
}

void pack(const Array& a, const SlabBox& b, std::vector<double>& buf) {
  buf.clear();
  buf.reserve(box_cells(b) * std::size_t(a.components()));
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = b.lo[2]; z < b.hi[2]; ++z) {
      for (std::int64_t y = b.lo[1]; y < b.hi[1]; ++y) {
        for (std::int64_t x = b.lo[0]; x < b.hi[0]; ++x) {
          buf.push_back(a.at(x, y, z, c));
        }
      }
    }
  }
}

void unpack(Array& a, const SlabBox& b, const std::vector<double>& buf) {
  PFC_ASSERT(buf.size() == box_cells(b) * std::size_t(a.components()));
  std::size_t i = 0;
  for (int c = 0; c < a.components(); ++c) {
    for (std::int64_t z = b.lo[2]; z < b.hi[2]; ++z) {
      for (std::int64_t y = b.lo[1]; y < b.hi[1]; ++y) {
        for (std::int64_t x = b.lo[0]; x < b.hi[0]; ++x) {
          a.at(x, y, z, c) = buf[i++];
        }
      }
    }
  }
}

/// Copies neighbour interior into my ghosts directly (both local).
void copy_local(Array& dst, const Array& src, int axis, int side, int g) {
  const std::int64_t n_dst = dst.size()[std::size_t(axis)];
  const std::int64_t n_src = src.size()[std::size_t(axis)];
  // my ghosts on `side` <- neighbour interior at the opposite edge
  const SlabBox gbox = slab_box(dst, axis, side > 0 ? n_dst : -g,
                                side > 0 ? n_dst + g : 0);
  const SlabBox sbox = slab_box(src, axis, side > 0 ? 0 : n_src - g,
                                side > 0 ? g : n_src);
  std::vector<double> buf;
  pack(src, sbox, buf);
  unpack(dst, gbox, buf);
}

int message_tag(int field_tag, int axis, int recv_side,
                int recv_block_id) {
  return ((field_tag * 3 + axis) * 2 + (recv_side > 0 ? 1 : 0)) * 65536 +
         recv_block_id;
}

}  // namespace

void GhostExchange::exchange_axis(const std::vector<LocalBlockField>& local,
                                  int axis, int field_tag) {
  const int my_rank = comm_ != nullptr ? comm_->rank() : 0;

  const auto find_local = [&](const Block* b) -> Array* {
    for (const auto& lf : local) {
      if (lf.block->linear_id == b->linear_id) return lf.array;
    }
    PFC_ASSERT(false, "neighbor block marked local but not bound");
  };

  struct PendingRecv {
    Array* array;
    SlabBox box;
    std::vector<double> buf;
    int source_rank;
    int tag;
  };
  std::vector<PendingRecv> recvs;
  std::vector<std::vector<double>> send_buffers;  // keep alive until done

  // 1. post all remote sends (buffered, cannot deadlock), register recvs
  for (const auto& lf : local) {
    Array& a = *lf.array;
    const int g = a.ghost_layers();
    const std::int64_t n = a.size()[std::size_t(axis)];
    for (int side : {-1, +1}) {
      const Block* nb = forest_.neighbor(*lf.block, axis, side);
      if (nb == nullptr) {
        fill_ghosts_axis(a, axis, BoundaryKind::ZeroGradient,
                         /*lower=*/side < 0, /*upper=*/side > 0);
        continue;
      }
      if (nb->owner == my_rank) continue;  // handled in the local pass
      PFC_REQUIRE(comm_ != nullptr,
                  "remote neighbor block but no communicator");
      // send my edge interior for the neighbour's ghosts
      const SlabBox sbox =
          slab_box(a, axis, side > 0 ? n - g : 0, side > 0 ? n : g);
      send_buffers.emplace_back();
      pack(a, sbox, send_buffers.back());
      const int stag = message_tag(field_tag, axis, -side, nb->linear_id);
      comm_->send_vec(nb->owner, stag, send_buffers.back());
      bytes_sent_ += send_buffers.back().size() * sizeof(double);

      // register the matching receive into my ghosts
      PendingRecv pr;
      pr.array = &a;
      pr.box = slab_box(a, axis, side > 0 ? n : -g, side > 0 ? n + g : 0);
      pr.buf.resize(box_cells(pr.box) * std::size_t(a.components()));
      pr.source_rank = nb->owner;
      pr.tag = message_tag(field_tag, axis, side, lf.block->linear_id);
      recvs.push_back(std::move(pr));
    }
  }

  // 2. local neighbour copies
  for (const auto& lf : local) {
    Array& a = *lf.array;
    const int g = a.ghost_layers();
    for (int side : {-1, +1}) {
      const Block* nb = forest_.neighbor(*lf.block, axis, side);
      if (nb == nullptr || nb->owner != my_rank) continue;
      copy_local(a, *find_local(nb), axis, side, g);
    }
  }

  // 3. complete receives
  for (auto& pr : recvs) {
    comm_->recv_vec(pr.source_rank, pr.tag, pr.buf);
    unpack(*pr.array, pr.box, pr.buf);
  }
}

void GhostExchange::exchange(const std::vector<LocalBlockField>& local,
                             int field_tag) {
  bytes_sent_ = 0;
  for (int axis = 0; axis < forest_.dims(); ++axis) {
    exchange_axis(local, axis, field_tag);
    // axis sweeps must complete globally before the next axis reads the
    // freshly filled ghosts
    if (comm_ != nullptr) comm_->barrier();
  }
  total_bytes_sent_ += bytes_sent_;
  ++rounds_;
}

}  // namespace pfc::grid
