// Ghost-layer synchronization across blocks (paper §4.3).
//
// The exchange is axis-sequential (x, then y, then z); each sweep includes
// the ghost cells already filled by earlier sweeps, so edge and corner
// ghosts propagate without diagonal messages — the standard trick also used
// by waLBerla. Local neighbour pairs are copied directly; remote pairs are
// packed into contiguous buffers and sent via pfc::mpi (the paper's pack →
// single asynchronous message design).
#pragma once

#include "pfc/grid/blockforest.hpp"
#include "pfc/mpi/simmpi.hpp"

namespace pfc::grid {

/// One rank's view: its blocks and their storage for one field.
struct LocalBlockField {
  const Block* block = nullptr;
  Array* array = nullptr;
};

class GhostExchange {
 public:
  /// `comm` may be nullptr for single-rank (serial multi-block) operation.
  GhostExchange(const BlockForest& forest, mpi::Comm* comm)
      : forest_(forest), comm_(comm) {}

  /// Synchronizes all ghost layers of the given local arrays (one entry per
  /// local block). `field_tag` disambiguates concurrent exchanges of
  /// different fields. Non-periodic domain boundaries are filled with
  /// zero-gradient values.
  void exchange(const std::vector<LocalBlockField>& local, int field_tag);

  /// Bytes sent to remote ranks during the last exchange (communication
  /// volume accounting for the network model).
  std::size_t last_bytes_sent() const { return bytes_sent_; }

  /// Cumulative remote bytes / exchange rounds since construction (feeds
  /// the observability registry of the distributed driver).
  std::size_t total_bytes_sent() const { return total_bytes_sent_; }
  std::size_t rounds() const { return rounds_; }

 private:
  void exchange_axis(const std::vector<LocalBlockField>& local, int axis,
                     int field_tag);

  const BlockForest& forest_;
  mpi::Comm* comm_;
  std::size_t bytes_sent_ = 0;
  std::size_t total_bytes_sent_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace pfc::grid
