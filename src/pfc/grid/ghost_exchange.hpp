// Ghost-layer synchronization across blocks (paper §4.3).
//
// The exchange is axis-sequential (x, then y, then z); each sweep includes
// the ghost cells already filled by earlier sweeps, so edge and corner
// ghosts propagate without diagonal messages — the standard trick also used
// by waLBerla. Local neighbour pairs are copied directly; remote pairs are
// packed into contiguous buffers and sent via pfc::mpi (the paper's pack →
// single asynchronous message design).
//
// Two entry points share the same sweeps:
//   - exchange(): the fully synchronous round (pack, send, recv, unpack per
//     axis with a barrier between axes — the seed behaviour).
//   - begin()/finish(): the communication-hiding split. begin() packs and
//     posts the axis-0 messages (nonblocking) and returns immediately so
//     the caller can run interior compute; finish() completes the axis-0
//     receives and runs the remaining axes in corner-propagating order.
// Pack buffers are pre-sized from the forest topology in the constructor
// and reused across rounds: steady-state rounds perform no allocation.
#pragma once

#include "pfc/grid/blockforest.hpp"
#include "pfc/mpi/simmpi.hpp"

namespace pfc::grid {

/// One rank's view: its blocks and their storage for one field.
struct LocalBlockField {
  const Block* block = nullptr;
  Array* array = nullptr;
};

class GhostExchange {
 public:
  /// `comm` may be nullptr for single-rank (serial multi-block) operation.
  /// Buffers are pre-sized for fields of up to `max_components` components
  /// with up to `max_ghost_layers` ghost layers; a first round with larger
  /// fields still works (one-time growth), after which capacity is frozen
  /// and asserted.
  GhostExchange(const BlockForest& forest, mpi::Comm* comm,
                int max_components = 1, int max_ghost_layers = 1);

  /// Synchronizes all ghost layers of the given local arrays (one entry per
  /// local block). `field_tag` disambiguates concurrent exchanges of
  /// different fields. Non-periodic domain boundaries are filled with
  /// zero-gradient values.
  void exchange(const std::vector<LocalBlockField>& local, int field_tag);

  /// Overlap half 1: packs and posts the axis-0 sends (buffered, so the
  /// pack buffers are immediately reusable), registers the matching
  /// nonblocking receives, performs the axis-0 local copies and physical
  /// boundary fills, then returns. The caller may compute any cells whose
  /// stencils do not read ghost layers while the messages are in flight.
  /// The whole round's remote byte volume is credited here (slab volumes
  /// are known from topology), so last_bytes_sent() is correct mid-overlap.
  /// Exactly one exchange per GhostExchange may be in flight.
  void begin(const std::vector<LocalBlockField>& local, int field_tag);

  /// Overlap half 2: waits for the axis-0 receives, unpacks them, then runs
  /// the remaining axes (whose slabs include the freshly filled axis-0
  /// ghosts — the corner-propagation order of exchange()).
  void finish();

  bool in_flight() const { return in_flight_; }

  /// Bytes sent to remote ranks during the last exchange (communication
  /// volume accounting for the network model).
  std::size_t last_bytes_sent() const { return bytes_sent_; }

  /// Cumulative remote bytes / exchange rounds since construction (feeds
  /// the observability registry of the distributed driver).
  std::size_t total_bytes_sent() const { return total_bytes_sent_; }
  std::size_t rounds() const { return rounds_; }

 private:
  /// One posted receive, completed in finish(): the ghost slab of
  /// `local[slot]` on `side` of `axis`.
  struct Pending {
    int slot = 0;
    int axis = 0;
    int side = 0;
  };

  /// Runs one axis sweep. With `post_only` the remote receives are only
  /// registered (into pending_/pending_reqs_), not completed; everything
  /// else (sends, local copies, boundary fills) happens eagerly either way.
  /// `count_bytes` credits packed send volume to bytes_sent_.
  void exchange_axis(const std::vector<LocalBlockField>& local, int axis,
                     int field_tag, bool post_only, bool count_bytes);

  /// The persistent buffer for (local slot, axis, side, send|recv), checked
  /// against the frozen capacity.
  std::vector<double>& buffer(int slot, int axis, int side, bool send,
                              std::size_t needed_doubles);

  const BlockForest& forest_;
  mpi::Comm* comm_;
  int num_slots_ = 0;
  std::vector<std::vector<double>> bufs_;  // (slot,axis,side,dir) flattened
  std::vector<double> scratch_;            // local-copy staging

  // in-flight round state (begin .. finish)
  std::vector<LocalBlockField> pending_local_;
  std::vector<Pending> pending_;
  std::vector<mpi::Comm::Request> pending_reqs_;
  int pending_tag_ = 0;
  bool in_flight_ = false;

  std::size_t bytes_sent_ = 0;
  std::size_t total_bytes_sent_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace pfc::grid
