#include "pfc/grid/vtk.hpp"

#include <fstream>
#include <sys/stat.h>

#include "pfc/support/assert.hpp"

namespace pfc::grid {

void write_vtk(const std::string& path,
               const std::vector<const Array*>& arrays, double dx) {
  PFC_REQUIRE(!arrays.empty(), "write_vtk: no arrays");
  const auto n = arrays[0]->size();
  for (const auto* a : arrays) {
    PFC_REQUIRE(a != nullptr && a->size() == n,
                "write_vtk: arrays must share one interior size");
  }

  std::ofstream out(path);
  PFC_REQUIRE(out.good(), "write_vtk: cannot open " + path);
  out << "# vtk DataFile Version 3.0\n";
  out << "pfc phase-field output\n";
  out << "ASCII\n";
  out << "DATASET STRUCTURED_POINTS\n";
  out << "DIMENSIONS " << n[0] << ' ' << n[1] << ' ' << n[2] << '\n';
  out << "ORIGIN 0 0 0\n";
  out << "SPACING " << dx << ' ' << dx << ' ' << dx << '\n';
  out << "POINT_DATA " << n[0] * n[1] * n[2] << '\n';

  for (const auto* a : arrays) {
    for (int c = 0; c < a->components(); ++c) {
      out << "SCALARS " << a->field()->name() << '_' << c << " double 1\n";
      out << "LOOKUP_TABLE default\n";
      for (std::int64_t z = 0; z < n[2]; ++z) {
        for (std::int64_t y = 0; y < n[1]; ++y) {
          for (std::int64_t x = 0; x < n[0]; ++x) {
            out << a->at(x, y, z, c) << '\n';
          }
        }
      }
    }
  }
}

void append_csv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<double>& row) {
  PFC_REQUIRE(header.size() == row.size(), "append_csv: size mismatch");
  struct stat st {};
  const bool exists = ::stat(path.c_str(), &st) == 0;
  std::ofstream out(path, std::ios::app);
  PFC_REQUIRE(out.good(), "append_csv: cannot open " + path);
  if (!exists) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      out << (i ? "," : "") << header[i];
    }
    out << '\n';
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    out << (i ? "," : "") << row[i];
  }
  out << '\n';
}

}  // namespace pfc::grid
