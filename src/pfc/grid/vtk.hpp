// Legacy-VTK structured-points output (ASCII) plus a simple CSV series
// writer — the I/O role waLBerla plays in the paper, sized for single-node
// visualization of example runs.
#pragma once

#include <string>
#include <vector>

#include "pfc/field/array.hpp"

namespace pfc::grid {

/// Writes the interior of every array (all components, named
/// "<field>_<c>") into one legacy VTK file. All arrays must share one
/// interior size.
void write_vtk(const std::string& path,
               const std::vector<const Array*>& arrays, double dx = 1.0);

/// Appends one row of comma-separated values (writes the header first if
/// the file does not exist yet).
void append_csv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<double>& row);

}  // namespace pfc::grid
