#include "pfc/ir/kernel.hpp"

#include <algorithm>
#include <unordered_map>

#include "pfc/sym/cse.hpp"
#include "pfc/sym/subs.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::ir {

using sym::Expr;
using sym::Kind;

namespace {

/// Bitmask of loop coordinates an expression depends on (bit d = coord d);
/// field accesses depend on every spatial coordinate.
unsigned coord_deps(const Expr& e, int dims,
                    const std::unordered_map<std::string, unsigned>& temps) {
  switch (e->kind()) {
    case Kind::Number: return 0;
    case Kind::Symbol: {
      switch (e->builtin()) {
        case sym::Builtin::Coord0: return 1u << 0;
        case sym::Builtin::Coord1: return 1u << 1;
        case sym::Builtin::Coord2: return 1u << 2;
        default: break;
      }
      auto it = temps.find(e->name());
      return it != temps.end() ? it->second : 0;
    }
    case Kind::FieldRef:
    case Kind::Random: return (1u << dims) - 1u;
    case Kind::Call:
      if (e->func() == sym::Func::PhiloxUniform) return (1u << dims) - 1u;
      [[fallthrough]];
    default: {
      unsigned m = 0;
      for (const auto& a : e->args()) m |= coord_deps(a, dims, temps);
      return m;
    }
  }
}

Level level_from_deps(unsigned deps) {
  if (deps == 0) return Level::Invariant;
  if ((deps & 0b011) == 0) return Level::PerZ;   // depends only on z
  if ((deps & 0b001) == 0) return Level::PerY;   // depends on y (and z)
  return Level::Body;
}

bool is_builtin_symbol(const Expr& s) {
  return s->kind() == Kind::Symbol && s->builtin() != sym::Builtin::None;
}

}  // namespace

std::array<int, 3> Kernel::access_radius() const {
  std::array<int, 3> r{0, 0, 0};
  for (const auto& sa : body) {
    for (const auto& fr : sym::field_refs(sa.assign.rhs)) {
      for (int d = 0; d < 3; ++d) {
        r[std::size_t(d)] = std::max(r[std::size_t(d)],
                                     std::abs(fr->offset()[std::size_t(d)]));
      }
    }
  }
  return r;
}

std::vector<const ScheduledAssignment*> Kernel::at_level(Level l) const {
  std::vector<const ScheduledAssignment*> out;
  for (const auto& sa : body) {
    if (sa.level == l) out.push_back(&sa);
  }
  return out;
}

std::size_t Kernel::num_temps() const {
  std::size_t n = 0;
  for (const auto& sa : body) {
    if (sa.assign.lhs->kind() == Kind::Symbol) ++n;
  }
  return n;
}

Kernel build_kernel(const fd::StencilKernel& sk, const BuildOptions& opts) {
  Kernel k;
  k.name = sk.name;
  k.dims = opts.dims;
  k.extent_plus = sk.extent_plus;

  // 0. Inline any pre-existing Symbol-lhs assignments (e.g. the simplex
  // renormalization temps of the discretizer) so the global CSE below sees
  // one flat set of store expressions and re-extracts sharing in correct
  // topological order.
  std::vector<fd::Assignment> stores;
  sym::SubsMap predefined;
  for (const auto& a : sk.assignments) {
    const Expr rhs = sym::substitute(a.rhs, predefined);
    if (a.lhs->kind() == Kind::Symbol) {
      predefined.emplace_back(a.lhs, rhs);
    } else {
      stores.push_back({a.lhs, rhs});
    }
  }

  // 1. CSE across all store right-hand sides.
  std::vector<Expr> roots;
  roots.reserve(stores.size());
  for (const auto& a : stores) roots.push_back(a.rhs);

  std::vector<fd::Assignment> flat;
  if (opts.cse) {
    sym::CseResult r = sym::cse(roots, sk.name + "_t");
    for (auto& [s, def] : r.temps) flat.push_back({s, def});
    for (std::size_t i = 0; i < stores.size(); ++i) {
      flat.push_back({stores[i].lhs, r.roots[i]});
    }
  } else {
    for (const auto& a : stores) flat.push_back(a);
  }

  // 2. Loop-level classification (temps only; stores are always Body).
  std::unordered_map<std::string, unsigned> temp_deps;
  for (const auto& a : flat) {
    const bool is_temp = a.lhs->kind() == Kind::Symbol;
    unsigned deps = coord_deps(a.rhs, opts.dims, temp_deps);
    Level lvl = Level::Body;
    if (is_temp) {
      temp_deps[a.lhs->name()] = deps;
      if (opts.hoist_invariants) lvl = level_from_deps(deps);
    }
    k.body.push_back({a, lvl});
  }

  // 3. Field and scalar-parameter discovery.
  const auto push_field = [&](std::vector<FieldPtr>& v, const FieldPtr& f) {
    for (const auto& x : v) {
      if (x->id() == f->id()) return;
    }
    v.push_back(f);
  };
  std::vector<Expr> seen_params;
  for (const auto& sa : k.body) {
    if (sa.assign.lhs->kind() == Kind::FieldRef) {
      push_field(k.writes, sa.assign.lhs->field());
      push_field(k.fields, sa.assign.lhs->field());
    }
    for (const auto& fr : sym::field_refs(sa.assign.rhs)) {
      push_field(k.reads, fr->field());
      push_field(k.fields, fr->field());
    }
    for (const auto& s : sym::symbols(sa.assign.rhs)) {
      if (s->builtin() == sym::Builtin::Time ||
          s->builtin() == sym::Builtin::TimeStep) {
        k.uses_time = true;
        continue;
      }
      if (s->builtin() == sym::Builtin::Coord0) k.uses_coord[0] = true;
      if (s->builtin() == sym::Builtin::Coord1) k.uses_coord[1] = true;
      if (s->builtin() == sym::Builtin::Coord2) k.uses_coord[2] = true;
      if (is_builtin_symbol(s)) continue;
      if (temp_deps.count(s->name()) != 0) continue;
      bool dup = false;
      for (const auto& p : seen_params) {
        if (sym::equals(p, s)) {
          dup = true;
          break;
        }
      }
      if (!dup) seen_params.push_back(s);
    }
  }
  // deterministic parameter order by name
  std::sort(seen_params.begin(), seen_params.end(),
            [](const Expr& a, const Expr& b) { return a->name() < b->name(); });
  k.scalar_params = std::move(seen_params);
  return k;
}

}  // namespace pfc::ir
