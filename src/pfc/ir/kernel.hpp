// Intermediate representation layer (paper §3.4).
//
// A Kernel is a loop nest over the block interior with a static-single-
// assignment body: temporaries (Symbols, assigned exactly once) followed by
// field stores. Construction from the stencil representation performs
//   * global CSE across all assignments,
//   * loop-invariant classification: every temporary gets the innermost
//     loop level it genuinely depends on. With the fixed zyx loop order
//     (x innermost, matching the fzyx memory layout), subexpressions that
//     depend only on the z coordinate and time — the analytic temperature
//     T(z, t) of the paper — are hoisted out of the two inner loops,
//   * parameter discovery: free symbols become runtime scalar arguments.
#pragma once

#include <string>
#include <vector>

#include "pfc/fd/stencil.hpp"

namespace pfc::ir {

/// Loop level a computation lives at. Loop order is fixed as z (outermost),
/// y, x (innermost, unit stride).
enum class Level : int {
  Invariant = -1,  ///< computed once per kernel launch
  PerZ = 2,        ///< once per z iteration
  PerY = 1,        ///< once per (z, y) iteration
  Body = 0,        ///< per cell
};

struct ScheduledAssignment {
  fd::Assignment assign;
  Level level = Level::Body;
};

struct BuildOptions {
  bool cse = true;
  bool hoist_invariants = true;
  int dims = 3;
};

class Kernel {
 public:
  std::string name;
  int dims = 3;
  std::array<int, 3> extent_plus{0, 0, 0};

  /// All assignments in execution order; temps before their uses. The
  /// backends emit each at its loop level.
  std::vector<ScheduledAssignment> body;

  /// Deterministic argument order for the generated function.
  std::vector<FieldPtr> fields;        ///< union of reads and writes
  std::vector<sym::Expr> scalar_params;  ///< free symbols (excl. builtins)

  std::vector<FieldPtr> reads, writes;

  /// True if any expression references the time-step counter or time symbol
  /// (fluctuations, analytic temperature).
  bool uses_time = false;

  /// Per-dimension: true if any expression references that loop coordinate
  /// (Philox counters, analytic T(z)). The emitters materialize the
  /// int→double coordinate conversions only when these are set.
  std::array<bool, 3> uses_coord{false, false, false};

  /// Positions (body indices) of modelled __threadfence() barriers inserted
  /// by the GPU register transformations; consumed by the GPU perf model.
  std::vector<std::size_t> fence_positions;

  /// Ghost layers this kernel requires.
  std::array<int, 3> access_radius() const;

  /// Assignments at a given level, in order.
  std::vector<const ScheduledAssignment*> at_level(Level l) const;

  /// Number of temporaries (Symbol lhs) in the body.
  std::size_t num_temps() const;
};

/// Lowers a stencil kernel into the IR.
Kernel build_kernel(const fd::StencilKernel& sk, const BuildOptions& opts = {});

}  // namespace pfc::ir
