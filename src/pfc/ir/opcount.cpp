#include "pfc/ir/opcount.hpp"

#include <sstream>

#include "pfc/support/assert.hpp"

namespace pfc::ir {

using sym::Expr;
using sym::Kind;

namespace {

void count_expr(const Expr& e, OpCounts& c);

/// Counts a Pow factor the way the backends render it. Returns true if the
/// factor is a reciprocal (contributes to a combined denominator).
bool count_pow(const Expr& base, const Expr& exp, OpCounts& c) {
  long n = 0;
  if (exp->integer_value(&n)) {
    const long a = std::abs(n);
    PFC_ASSERT(a >= 1);
    c.muls += a - 1;  // repeated multiplication
    count_expr(base, c);
    return n < 0;
  }
  if (exp->is_number(0.5)) {
    ++c.sqrts;
    count_expr(base, c);
    return false;
  }
  if (exp->is_number(-0.5)) {
    ++c.rsqrts;  // emitted as (approximate) reciprocal square root
    count_expr(base, c);
    return false;
  }
  if (exp->is_number(1.5) || exp->is_number(-1.5)) {
    ++c.sqrts;
    ++c.muls;
    count_expr(base, c);
    return exp->number() < 0;
  }
  ++c.transcendental;  // general pow
  count_expr(base, c);
  count_expr(exp, c);
  return false;
}

void count_expr(const Expr& e, OpCounts& c) {
  switch (e->kind()) {
    case Kind::Number:
    case Kind::Symbol:
    case Kind::FieldRef:
    case Kind::Random: return;

    case Kind::Add: {
      c.adds += long(e->arity()) - 1;
      for (const auto& a : e->args()) {
        // a term -1 * x costs no multiply: it folds into a subtraction
        if (a->kind() == Kind::Mul && a->arg(0)->is_number(-1.0)) {
          std::vector<Expr> rest(a->args().begin() + 1, a->args().end());
          count_expr(sym::mul(std::move(rest)), c);
        } else {
          count_expr(a, c);
        }
      }
      return;
    }

    case Kind::Mul: {
      long plain = 0;
      long recip = 0;
      for (const auto& f : e->args()) {
        if (f->kind() == Kind::Number) {
          if (!f->is_number(1.0) && !f->is_number(-1.0)) ++plain;
          continue;
        }
        if (f->kind() == Kind::Pow) {
          if (count_pow(f->arg(0), f->arg(1), c)) {
            ++recip;
          } else {
            ++plain;
          }
          continue;
        }
        count_expr(f, c);
        ++plain;
      }
      // numerator multiplies
      if (plain >= 1) c.muls += plain - 1;
      // reciprocals combine into one denominator product + one division
      if (recip >= 1) {
        c.muls += recip - 1;
        ++c.divs;
      }
      return;
    }

    case Kind::Pow: {
      (void)count_pow(e->arg(0), e->arg(1), c);
      // a bare reciprocal pow is a division
      long n = 0;
      if ((e->arg(1)->integer_value(&n) && n < 0) ||
          e->arg(1)->is_number(-1.5)) {
        ++c.divs;
      }
      return;
    }

    case Kind::Call: {
      for (const auto& a : e->args()) count_expr(a, c);
      switch (e->func()) {
        case sym::Func::Sqrt: ++c.sqrts; break;
        case sym::Func::RSqrt: ++c.rsqrts; break;
        case sym::Func::Exp:
        case sym::Func::Log:
        case sym::Func::Sin:
        case sym::Func::Cos:
        case sym::Func::Tanh: ++c.transcendental; break;
        case sym::Func::Abs:
        case sym::Func::Min:
        case sym::Func::Max:
        case sym::Func::Select:
        case sym::Func::Less:
        case sym::Func::Greater:
        case sym::Func::LessEq:
        case sym::Func::GreaterEq: ++c.blends; break;
        case sym::Func::PhiloxUniform: ++c.rng_calls; break;
      }
      return;
    }

    case Kind::Diff:
    case Kind::Dt:
      PFC_REQUIRE(false, "op counting on undiscretized expression");
  }
}

}  // namespace

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  adds += o.adds;
  muls += o.muls;
  divs += o.divs;
  sqrts += o.sqrts;
  rsqrts += o.rsqrts;
  blends += o.blends;
  transcendental += o.transcendental;
  rng_calls += o.rng_calls;
  loads += o.loads;
  stores += o.stores;
  return *this;
}

std::string OpCounts::to_string() const {
  std::ostringstream os;
  os << "loads=" << loads << " stores=" << stores << " adds=" << adds
     << " muls=" << muls << " divs=" << divs << " sqrts=" << sqrts
     << " rsqrts=" << rsqrts << " blends=" << blends
     << " norm_flops=" << normalized_flops();
  return os.str();
}

OpCounts count_ops(const sym::Expr& e) {
  OpCounts c;
  count_expr(e, c);
  return c;
}

OpCounts count_ops(const Kernel& k) {
  OpCounts c;
  std::vector<Expr> distinct_loads;
  for (const auto& sa : k.body) {
    if (sa.level != Level::Body) continue;  // hoisted work is amortized
    count_expr(sa.assign.rhs, c);
    if (sa.assign.lhs->kind() == Kind::FieldRef) ++c.stores;
    for (const auto& fr : sym::field_refs(sa.assign.rhs)) {
      bool seen = false;
      for (const auto& x : distinct_loads) {
        if (sym::equals(x, fr)) {
          seen = true;
          break;
        }
      }
      if (!seen) distinct_loads.push_back(fr);
    }
  }
  c.loads = long(distinct_loads.size());
  return c;
}

}  // namespace pfc::ir
