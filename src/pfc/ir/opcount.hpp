// Floating-point operation counting (paper Table 1).
//
// Counts are taken on the fully optimized IR — after constant folding, CSE
// and loop-invariant hoisting — exactly as the paper does ("FLOPs are
// counted by traversing the fully optimized intermediate representation").
// Only per-cell (Level::Body) work is counted; hoisted subexpressions are
// exactly the savings the paper attributes to the analytic temperature.
#pragma once

#include <string>

#include "pfc/ir/kernel.hpp"

namespace pfc::ir {

struct OpCounts {
  long adds = 0;
  long muls = 0;
  long divs = 0;
  long sqrts = 0;
  long rsqrts = 0;
  long blends = 0;      ///< min/max/abs/select/compare (vector blend class)
  long transcendental = 0;  ///< exp/log/sin/cos/tanh/general pow
  long rng_calls = 0;   ///< Philox invocations (counted separately)
  long loads = 0;       ///< distinct double values read per cell
  long stores = 0;      ///< double values written per cell

  /// Weighted sum with the paper's Skylake throughput weights:
  /// add/mul = 1, div = 16, sqrt = 10, rsqrt = 2 (blend = 1,
  /// transcendental = 20 — not present in the paper's kernels).
  long normalized_flops() const {
    return adds + muls + blends + 16 * divs + 10 * sqrts + 2 * rsqrts +
           20 * transcendental;
  }

  OpCounts& operator+=(const OpCounts& o);
  std::string to_string() const;
};

/// Counts one expression tree (temps referenced by Symbol are *not*
/// expanded — they were counted at their definition).
OpCounts count_ops(const sym::Expr& e);

/// Counts the per-cell work of a kernel: all Level::Body assignments plus
/// load/store counts.
OpCounts count_ops(const Kernel& k);

}  // namespace pfc::ir
