#include "pfc/ir/passes.hpp"

#include <algorithm>

#include "pfc/sym/simplify.hpp"
#include "pfc/sym/subs.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::ir {

using sym::Expr;
using sym::Kind;

namespace {

std::size_t count_uses(const Kernel& k, const Expr& temp_sym) {
  std::size_t uses = 0;
  for (const auto& sa : k.body) {
    sym::for_each(sa.assign.rhs, [&](const Expr& e) {
      if (e->kind() == Kind::Symbol && sym::equals(e, temp_sym)) ++uses;
    });
  }
  return uses;
}

}  // namespace

std::size_t rematerialize(Kernel& k, const RematOptions& opts) {
  std::size_t inlined = 0;
  // iterate until fixpoint: inlining one temp can make another eligible
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < k.body.size(); ++i) {
      const auto& sa = k.body[i];
      if (sa.level != Level::Body) continue;
      if (sa.assign.lhs->kind() != Kind::Symbol) continue;
      if (sym::operation_count(sa.assign.rhs) > opts.max_cost) continue;
      const std::size_t uses = count_uses(k, sa.assign.lhs);
      if (uses == 0 || uses > opts.max_uses) continue;
      // substitute the definition into every later statement
      const Expr pat = sa.assign.lhs;
      const Expr def = sa.assign.rhs;
      for (std::size_t j = i + 1; j < k.body.size(); ++j) {
        k.body[j].assign.rhs = sym::substitute(k.body[j].assign.rhs, pat, def);
      }
      k.body.erase(k.body.begin() + std::ptrdiff_t(i));
      ++inlined;
      changed = true;
      break;  // indices shifted; restart scan
    }
  }
  return inlined;
}

std::size_t eliminate_dead_code(Kernel& k) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < k.body.size(); ++i) {
      const auto& sa = k.body[i];
      if (sa.assign.lhs->kind() != Kind::Symbol) continue;
      if (count_uses(k, sa.assign.lhs) == 0) {
        k.body.erase(k.body.begin() + std::ptrdiff_t(i));
        ++removed;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

std::size_t insert_thread_fences(Kernel& k, std::size_t stride) {
  PFC_REQUIRE(stride >= 1, "fence stride must be >= 1");
  k.fence_positions.clear();
  std::size_t body_count = 0;
  for (std::size_t i = 0; i < k.body.size(); ++i) {
    if (k.body[i].level != Level::Body) continue;
    ++body_count;
    if (body_count % stride == 0) k.fence_positions.push_back(i);
  }
  return k.fence_positions.size();
}

void fold_parameters(Kernel& k,
                     const std::unordered_map<std::string, double>& values) {
  sym::SubsMap map;
  std::vector<Expr> remaining;
  for (const auto& p : k.scalar_params) {
    auto it = values.find(p->name());
    if (it != values.end()) {
      map.emplace_back(p, sym::num(it->second));
    } else {
      remaining.push_back(p);
    }
  }
  if (map.empty()) return;
  for (auto& sa : k.body) {
    sa.assign.rhs = sym::substitute(sa.assign.rhs, map);
  }
  k.scalar_params = std::move(remaining);
}

}  // namespace pfc::ir
