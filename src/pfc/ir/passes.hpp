// IR-level optimization passes (paper §3.4–3.5): rematerialization of cheap
// CSE temporaries ("dupl"), modelled thread fences ("fence"), dead-code
// elimination and runtime-parameter folding (the §5.1 ablation of
// compile-time vs runtime model parameters).
#pragma once

#include <unordered_map>

#include "pfc/ir/kernel.hpp"

namespace pfc::ir {

struct RematOptions {
  /// Inline temps whose definition costs at most this many operations.
  std::size_t max_cost = 3;
  /// Only inline temps with at most this many uses (re-computation grows
  /// code size linearly in the use count).
  std::size_t max_uses = 4;
};

/// Takes back part of the CSE: temporaries that are cheap to recompute are
/// substituted back into their users and removed, trading FLOPs for live
/// range (paper: "rematerializing expressions that are cheap to compute").
/// Returns the number of temps inlined.
std::size_t rematerialize(Kernel& k, const RematOptions& opts = {});

/// Removes temporaries that are never read. Returns the number removed.
std::size_t eliminate_dead_code(Kernel& k);

/// Inserts a modelled __threadfence() after every `stride` Body statements;
/// the GPU performance model interprets these as limits on compiler
/// reordering. Returns the number of fences recorded.
std::size_t insert_thread_fences(Kernel& k, std::size_t stride = 32);

/// Substitutes numeric values for runtime scalar parameters (by name) and
/// re-canonicalizes; parameters disappear from scalar_params. The inverse of
/// the paper's "keep a set of parameters symbolic at runtime".
void fold_parameters(Kernel& k,
                     const std::unordered_map<std::string, double>& values);

}  // namespace pfc::ir
