#include "pfc/ir/schedule.hpp"

#include <algorithm>
#include <unordered_map>

#include "pfc/support/assert.hpp"

namespace pfc::ir {

using sym::Expr;
using sym::Kind;

namespace {

/// Collects the names of temp symbols read by an expression.
void collect_symbol_uses(const Expr& e, std::vector<std::string>& out) {
  if (e->kind() == Kind::Symbol && e->builtin() == sym::Builtin::None) {
    out.push_back(e->name());
    return;
  }
  for (const auto& a : e->args()) collect_symbol_uses(a, out);
}

}  // namespace

DependencyGraph build_dependency_graph(const Kernel& k) {
  DependencyGraph g;
  std::unordered_map<std::string, std::size_t> def_of;  // temp name -> node
  for (std::size_t bi = 0; bi < k.body.size(); ++bi) {
    if (k.body[bi].level != Level::Body) continue;
    const std::size_t node = g.body_index.size();
    g.body_index.push_back(bi);
    g.deps.emplace_back();
    g.users.emplace_back();
    const auto& a = k.body[bi].assign;
    std::vector<std::string> uses;
    collect_symbol_uses(a.rhs, uses);
    for (const auto& u : uses) {
      auto it = def_of.find(u);
      if (it == def_of.end()) continue;  // scalar param or hoisted temp
      auto& d = g.deps[node];
      if (std::find(d.begin(), d.end(), it->second) == d.end()) {
        d.push_back(it->second);
        g.users[it->second].push_back(node);
      }
    }
    if (a.lhs->kind() == Kind::Symbol) def_of[a.lhs->name()] = node;
  }
  return g;
}

std::size_t max_live_temps(const Kernel& k) {
  const DependencyGraph g = build_dependency_graph(k);
  const std::size_t n = g.deps.size();
  // remaining-use counters per node; a temp dies when its last user runs
  std::vector<std::size_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = g.users[i].size();
  std::size_t live = 0, max_live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = k.body[g.body_index[i]].assign;
    // operands that die at this statement
    for (std::size_t d : g.deps[i]) {
      PFC_ASSERT(remaining[d] > 0);
      if (--remaining[d] == 0) --live;
    }
    if (a.lhs->kind() == Kind::Symbol && !g.users[i].empty()) {
      ++live;
      max_live = std::max(max_live, live);
    }
  }
  return max_live;
}

namespace {

struct BeamState {
  std::vector<std::uint64_t> scheduled;  // bitset
  std::vector<std::uint32_t> pending_deps;  // unscheduled dep count per node
  std::vector<std::uint32_t> remaining_uses;
  std::vector<std::size_t> order;
  std::size_t live = 0;
  std::size_t max_live = 0;

  bool is_scheduled(std::size_t i) const {
    return (scheduled[i >> 6] >> (i & 63)) & 1u;
  }
  void mark(std::size_t i) { scheduled[i >> 6] |= 1ull << (i & 63); }

  std::size_t set_hash() const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (auto w : scheduled) {
      h ^= w;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

}  // namespace

namespace {

/// Demand-driven order: emit each store's dependency subtree depth-first,
/// so temporaries materialize immediately before their consumers
/// (Sethi–Ullman-style). Often a strong starting point that the beam search
/// cannot find through local expansion.
std::vector<std::size_t> dfs_order(const Kernel& k,
                                   const DependencyGraph& g) {
  const std::size_t n = g.deps.size();
  std::vector<bool> emitted(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  const std::function<void(std::size_t)> emit = [&](std::size_t node) {
    if (emitted[node]) return;
    emitted[node] = true;  // mark first: deps form a DAG, no cycles
    for (std::size_t d : g.deps[node]) emit(d);
    order.push_back(node);
  };
  // stores (and any sinks) in original program order
  for (std::size_t i = 0; i < n; ++i) {
    if (g.users[i].empty()) emit(i);
  }
  for (std::size_t i = 0; i < n; ++i) emit(i);  // leftovers
  return order;
}

std::size_t live_of_order(const Kernel& k, const DependencyGraph& g,
                          const std::vector<std::size_t>& order) {
  const std::size_t n = g.deps.size();
  std::vector<std::size_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = g.users[i].size();
  std::size_t live = 0, max_live = 0;
  for (std::size_t node : order) {
    for (std::size_t d : g.deps[node]) {
      if (--remaining[d] == 0) --live;
    }
    if (k.body[g.body_index[node]].assign.lhs->kind() == Kind::Symbol &&
        !g.users[node].empty()) {
      ++live;
      max_live = std::max(max_live, live);
    }
  }
  return max_live;
}

}  // namespace

ScheduleResult schedule_min_register(Kernel& k, const ScheduleOptions& opts) {
  ScheduleResult result;
  result.max_live_before = max_live_temps(k);

  const DependencyGraph g = build_dependency_graph(k);
  const std::size_t n = g.deps.size();
  if (n == 0) {
    result.max_live_after = 0;
    return result;
  }

  BeamState init;
  init.scheduled.assign((n + 63) / 64, 0);
  init.pending_deps.resize(n);
  init.remaining_uses.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    init.pending_deps[i] = std::uint32_t(g.deps[i].size());
    init.remaining_uses[i] = std::uint32_t(g.users[i].size());
  }
  init.order.reserve(n);

  std::vector<BeamState> beam{std::move(init)};
  for (std::size_t step = 0; step < n; ++step) {
    std::vector<BeamState> next;
    std::unordered_map<std::size_t, std::size_t> dedup;  // set hash -> index
    for (const auto& s : beam) {
      // Preselect the most promising ready nodes by immediate live-count
      // delta (consumed operands that die minus a new live temp). Bounding
      // the fan-out keeps the beam search tractable for kernels with
      // thousands of statements.
      constexpr std::size_t kMaxExpand = 8;
      std::vector<std::pair<int, std::size_t>> ready;  // (delta, node)
      for (std::size_t cand = 0; cand < n; ++cand) {
        if (s.is_scheduled(cand) || s.pending_deps[cand] != 0) continue;
        int delta = 0;
        for (std::size_t d : g.deps[cand]) {
          if (s.remaining_uses[d] == 1) --delta;
        }
        if (k.body[g.body_index[cand]].assign.lhs->kind() == Kind::Symbol &&
            !g.users[cand].empty()) {
          ++delta;
        }
        ready.emplace_back(delta, cand);
      }
      std::sort(ready.begin(), ready.end());
      if (ready.size() > kMaxExpand) ready.resize(kMaxExpand);
      for (const auto& [delta, cand] : ready) {
        (void)delta;
        BeamState ns = s;
        ns.mark(cand);
        ns.order.push_back(cand);
        for (std::size_t d : g.deps[cand]) {
          if (--ns.remaining_uses[d] == 0) --ns.live;
        }
        for (std::size_t u : g.users[cand]) --ns.pending_deps[u];
        const bool defines_live_temp =
            k.body[g.body_index[cand]].assign.lhs->kind() == Kind::Symbol &&
            !g.users[cand].empty();
        if (defines_live_temp) {
          ++ns.live;
          ns.max_live = std::max(ns.max_live, ns.live);
        }
        // deduplicate states with the same scheduled set: the path forward
        // is identical, keep the better prefix (Kessler's key insight)
        const std::size_t h = ns.set_hash();
        auto it = dedup.find(h);
        if (it != dedup.end()) {
          BeamState& old = next[it->second];
          if (ns.max_live < old.max_live ||
              (ns.max_live == old.max_live && ns.live < old.live)) {
            old = std::move(ns);
          }
          continue;
        }
        dedup.emplace(h, next.size());
        next.push_back(std::move(ns));
      }
    }
    PFC_ASSERT(!next.empty(), "scheduling deadlock — dependency cycle?");
    // keep the best `beam_width` partial schedules
    std::sort(next.begin(), next.end(),
              [](const BeamState& a, const BeamState& b) {
                if (a.max_live != b.max_live) return a.max_live < b.max_live;
                return a.live < b.live;
              });
    if (next.size() > opts.beam_width) next.resize(opts.beam_width);
    // dedup map indexes into next before the sort; rebuild each step
    beam = std::move(next);
  }

  const BeamState& best = beam.front();
  PFC_ASSERT(best.order.size() == n);

  // Compare against the demand-driven DFS order and keep the better one.
  std::vector<std::size_t> order = best.order;
  std::size_t best_live = best.max_live;
  {
    const std::vector<std::size_t> dfs = dfs_order(k, g);
    const std::size_t dfs_live = live_of_order(k, g, dfs);
    if (dfs_live < best_live) {
      order = dfs;
      best_live = dfs_live;
    }
  }

  // Rebuild the kernel body: hoisted assignments keep their positions,
  // Body-level ones are permuted by the found order.
  std::vector<ScheduledAssignment> new_body;
  new_body.reserve(k.body.size());
  std::size_t next_sched = 0;
  for (std::size_t bi = 0; bi < k.body.size(); ++bi) {
    if (k.body[bi].level != Level::Body) {
      new_body.push_back(k.body[bi]);
    } else {
      new_body.push_back(k.body[g.body_index[order[next_sched]]]);
      ++next_sched;
    }
  }
  k.body = std::move(new_body);

  result.max_live_after = max_live_temps(k);
  return result;
}

}  // namespace pfc::ir
