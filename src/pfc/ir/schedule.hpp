// Register-pressure-aware statement scheduling (paper §3.5, GPU backend).
//
// Implements the Kessler (1998) expression-DAG scheduling approach adapted
// exactly the way the paper describes: a breadth-first enumeration of
// topological orders that deduplicates states with identical "path forward"
// and is truncated to a fixed number of best partial schedules per step —
// a tunable beam between greedy (width 1) and full breadth-first search.
#pragma once

#include <cstddef>

#include "pfc/ir/kernel.hpp"

namespace pfc::ir {

/// Dependency graph over the Body-level assignments of a kernel.
struct DependencyGraph {
  /// deps[i] = indices of assignments whose lhs symbol assignment i reads.
  std::vector<std::vector<std::size_t>> deps;
  /// users[i] = inverse edges.
  std::vector<std::vector<std::size_t>> users;
  /// body index of each node (graph covers Level::Body only).
  std::vector<std::size_t> body_index;
};

DependencyGraph build_dependency_graph(const Kernel& k);

/// Maximum number of simultaneously live temporaries for the kernel's
/// current body order ("alive intermediates" of Fig. 2 right).
std::size_t max_live_temps(const Kernel& k);

struct ScheduleOptions {
  /// Beam width: 1 = greedy, larger explores more schedules. The paper saw
  /// no consistent improvement above 20.
  std::size_t beam_width = 20;
};

struct ScheduleResult {
  std::size_t max_live_before = 0;
  std::size_t max_live_after = 0;
};

/// Reorders the Body-level assignments (in place) to minimize the number of
/// simultaneously live temporaries. Hoisted assignments are untouched.
ScheduleResult schedule_min_register(Kernel& k, const ScheduleOptions& opts = {});

}  // namespace pfc::ir
