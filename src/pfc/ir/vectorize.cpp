#include "pfc/ir/vectorize.hpp"

#include <unordered_map>
#include <unordered_set>

#include "pfc/ir/opcount.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::ir {

using sym::Expr;
using sym::Kind;

bool vector_width_supported(int width) {
  return width == 1 || width == 2 || width == 4 || width == 8;
}

VectorPlan plan_vectorize(const Kernel& k, const VectorizeOptions& opts) {
  PFC_REQUIRE(vector_width_supported(opts.width),
              "unsupported vector width " + std::to_string(opts.width) +
                  " (expected 1, 2, 4 or 8)");
  VectorPlan plan;
  const OpCounts ops = count_ops(k);
  plan.flops_per_cell_scalar = ops.normalized_flops();
  // Nothing to widen without a destination; interpreter-only synthetic
  // kernels with no writes stay scalar.
  if (opts.width <= 1 || k.writes.empty()) return plan;
  plan.width = opts.width;

  // Definition level of every temp, by name (temps are SSA: one def each).
  std::unordered_map<std::string, Level> temp_level;
  for (const auto& sa : k.body) {
    if (sa.assign.lhs->kind() == Kind::Symbol) {
      temp_level.emplace(sa.assign.lhs->name(), sa.level);
    }
  }

  std::unordered_set<std::string> seen_broadcast;
  const auto classify_symbol = [&](const Expr& s) {
    switch (s->builtin()) {
      case sym::Builtin::Coord0: plan.body_uses_coord[0] = true; return;
      case sym::Builtin::Coord1: plan.body_uses_coord[1] = true; return;
      case sym::Builtin::Coord2: plan.body_uses_coord[2] = true; return;
      case sym::Builtin::Time: plan.body_uses_time = true; return;
      case sym::Builtin::TimeStep: plan.body_uses_timestep = true; return;
      case sym::Builtin::None: break;
    }
    const auto it = temp_level.find(s->name());
    const Level lvl = it != temp_level.end() ? it->second : Level::Invariant;
    if (lvl == Level::Body) return;  // already a vector temp in the body
    if (seen_broadcast.insert(s->name()).second) {
      plan.broadcasts.emplace_back(s, lvl);
    }
  };
  for (const auto& sa : k.body) {
    if (sa.level != Level::Body) continue;
    for (const auto& s : sym::symbols(sa.assign.rhs)) classify_symbol(s);
  }

  // Streaming candidates: written fields the kernel never reads (their old
  // values cannot be wanted in cache). The emitter only streams the primary
  // write — the one the alignment peel targets.
  for (const auto& w : k.writes) {
    bool read = false;
    for (const auto& r : k.reads) read = read || r->id() == w->id();
    if (read) continue;
    for (std::size_t i = 0; i < k.fields.size(); ++i) {
      if (k.fields[i]->id() == w->id()) {
        if (opts.streaming_stores) plan.streamed_fields.push_back(i);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < k.fields.size(); ++i) {
    if (k.fields[i]->id() == k.writes.front()->id()) {
      plan.primary_write = i;
      break;
    }
  }

  // Widened cost model: one vector instruction covers `width` cells for the
  // vectorizable op classes; transcendentals and RNG stay one scalar call
  // per lane and do not amortize.
  plan.lane_serial_calls = ops.transcendental + ops.rng_calls;
  const double lane_cost = 20.0 * double(ops.transcendental);
  plan.flops_per_cell_vector =
      (double(plan.flops_per_cell_scalar) - lane_cost) / double(plan.width) +
      lane_cost;
  return plan;
}

}  // namespace pfc::ir
