// Explicit SIMD vectorization of the innermost (x) loop (paper §3.5,
// "C + OpenMP + SIMD"): instead of relying on the autovectorizer, the
// backend widens every Level::Body assignment to a configurable vector
// width. This header holds the planning half of the pass; the C emitter
// consumes the plan and renders vector lanes through GCC/Clang vector
// extensions.
//
// The plan classifies every value the body touches:
//   * contiguous  — FieldRef accesses; unit stride along x in the fzyx
//                   layout, rendered as (un)aligned vector loads/stores,
//   * broadcast   — scalars defined above Body level (hoisted temps,
//                   runtime parameters, y/z coordinates, time); widened
//                   once at their definition level, not per cell,
//   * lane-serial — operations with no vector form (Philox, libm
//                   transcendentals); executed per lane inside the vector
//                   body, so they do not amortize with the width.
//
// The x loop itself is split into a scalar alignment peel (so the primary
// destination row reaches a full-vector boundary), an aligned vector main
// loop, and a scalar remainder.
#pragma once

#include <utility>

#include "pfc/ir/kernel.hpp"

namespace pfc::ir {

struct VectorizeOptions {
  /// Doubles per vector: 1 (disabled), 2, 4 or 8.
  int width = 8;
  /// Use non-temporal stores for write-only destination fields (bypasses
  /// the cache hierarchy; pays off once the destination exceeds the LLC).
  bool streaming_stores = false;
};

/// True for the widths the backend can lower (power of two, at most one
/// 512-bit register of doubles).
bool vector_width_supported(int width);

/// The lowering decisions for one kernel at one width.
struct VectorPlan {
  /// Chosen width; 1 means the kernel stays scalar.
  int width = 1;
  bool enabled() const { return width > 1; }

  /// Scalars defined outside the body but read inside it, with the loop
  /// level of their definition: the emitter hoists one stride-0 broadcast
  /// (`<name>_v = set1(<name>)`) to exactly that level.
  std::vector<std::pair<sym::Expr, Level>> broadcasts;

  /// Builtin scalars the body reads directly (coordinates get an iota /
  /// broadcast vector mirror, time a function-scope broadcast).
  std::array<bool, 3> body_uses_coord{false, false, false};
  bool body_uses_time = false;
  bool body_uses_timestep = false;

  /// Indices into kernel.fields of write-only fields (never read by this
  /// kernel) — the candidates for non-temporal streaming stores.
  std::vector<std::size_t> streamed_fields;
  /// Index into kernel.fields of the first written field; the alignment
  /// peel targets its rows, so its stores use aligned (or streaming) form.
  std::size_t primary_write = std::size_t(-1);

  /// Per-cell normalized FLOPs of the scalar body (pre-widening) and the
  /// effective per-cell cost after widening: vectorizable work divides by
  /// the width, lane-serial calls do not.
  long long flops_per_cell_scalar = 0;
  double flops_per_cell_vector = 0.0;
  /// Lane-serial calls per cell (transcendentals + RNG).
  long long lane_serial_calls = 0;

  bool is_streamed(std::size_t field_index) const {
    for (std::size_t i : streamed_fields) {
      if (i == field_index) return true;
    }
    return false;
  }
};

/// Plans the vector lowering of `k`. Returns a scalar plan (width 1) when
/// opts.width <= 1 or the kernel writes nothing; throws pfc::Error for an
/// unsupported width.
VectorPlan plan_vectorize(const Kernel& k, const VectorizeOptions& opts);

}  // namespace pfc::ir
