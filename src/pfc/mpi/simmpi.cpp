#include "pfc/mpi/simmpi.hpp"

#include <cstring>
#include <thread>

#include "pfc/support/assert.hpp"

namespace pfc::mpi {

class World {
 public:
  explicit World(int n) : size_(n), reduce_vals_(std::size_t(n), 0.0) {}

  int size() const { return size_; }

  void post(int source, int dest, int tag, const void* data,
            std::size_t bytes) {
    PFC_REQUIRE(dest >= 0 && dest < size_, "send: bad destination rank");
    std::vector<char> msg(bytes);
    std::memcpy(msg.data(), data, bytes);
    {
      std::lock_guard lock(mutex_);
      mailbox_[key(source, dest, tag)].push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  void fetch(int source, int dest, int tag, void* data, std::size_t bytes) {
    PFC_REQUIRE(source >= 0 && source < size_, "recv: bad source rank");
    std::vector<char> msg;
    {
      std::unique_lock lock(mutex_);
      auto& q = mailbox_[key(source, dest, tag)];
      cv_.wait(lock, [&] { return !q.empty(); });
      msg = std::move(q.front());
      q.pop_front();
    }
    PFC_REQUIRE(msg.size() == bytes,
                "recv: message size mismatch (got " +
                    std::to_string(msg.size()) + ", want " +
                    std::to_string(bytes) + ")");
    std::memcpy(data, msg.data(), bytes);
  }

  void barrier() {
    std::unique_lock lock(mutex_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == size_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return barrier_gen_ != gen; });
  }

  double allreduce(int rank, double v, bool is_max) {
    // two-phase: deposit values, then everyone reads the combined result
    {
      std::unique_lock lock(mutex_);
      reduce_vals_[std::size_t(rank)] = v;
    }
    barrier();
    double result;
    {
      std::lock_guard lock(mutex_);
      result = reduce_vals_[0];
      for (int i = 1; i < size_; ++i) {
        result = is_max ? std::max(result, reduce_vals_[std::size_t(i)])
                        : result + reduce_vals_[std::size_t(i)];
      }
    }
    barrier();  // nobody may overwrite reduce_vals_ before all have read
    return result;
  }

 private:
  static std::uint64_t key(int source, int dest, int tag) {
    return (std::uint64_t(std::uint16_t(source)) << 48) |
           (std::uint64_t(std::uint16_t(dest)) << 32) |
           std::uint64_t(std::uint32_t(tag));
  }

  int size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<std::vector<char>>> mailbox_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::vector<double> reduce_vals_;
};

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  world_->post(rank_, dest, tag, data, bytes);
}

void Comm::recv(int source, int tag, void* data, std::size_t bytes) {
  world_->fetch(source, rank_, tag, data, bytes);
}

Comm::Request Comm::isend(int dest, int tag, const void* data,
                          std::size_t bytes) {
  // buffered: completes immediately
  send(dest, tag, data, bytes);
  Request r;
  r.done = true;
  return r;
}

Comm::Request Comm::irecv(int source, int tag, void* data,
                          std::size_t bytes) {
  Request r;
  r.source = source;
  r.tag = tag;
  r.data = data;
  r.bytes = bytes;
  r.is_recv = true;
  return r;
}

void Comm::wait(Request& r) {
  if (r.done) return;
  PFC_ASSERT(r.is_recv);
  recv(r.source, r.tag, r.data, r.bytes);
  r.done = true;
}

void Comm::wait_all(std::vector<Request>& rs) {
  for (auto& r : rs) wait(r);
}

void Comm::barrier() { world_->barrier(); }

double Comm::allreduce_sum(double v) {
  return world_->allreduce(rank_, v, /*is_max=*/false);
}

double Comm::allreduce_max(double v) {
  return world_->allreduce(rank_, v, /*is_max=*/true);
}

void run(int num_ranks, const std::function<void(Comm&)>& fn) {
  PFC_REQUIRE(num_ranks >= 1, "need at least one rank");
  World world(num_ranks);

  std::mutex err_mutex;
  std::exception_ptr first_error;
  const auto rank_main = [&](int r) {
    Comm comm(&world, r);
    try {
      fn(comm);
    } catch (...) {
      std::lock_guard lock(err_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(std::size_t(num_ranks - 1));
  for (int r = 1; r < num_ranks; ++r) {
    threads.emplace_back(rank_main, r);
  }
  rank_main(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pfc::mpi
