// In-process message passing (DESIGN.md §2): ranks are threads inside one
// process, messages are copied through mailboxes. The subset implemented is
// what the distributed phase-field runtime needs — point-to-point send/recv
// (blocking and nonblocking), barrier and allreduce — with MPI-like
// matching semantics (FIFO per (source, tag) channel).
//
// This substitutes for MPI on the machines of the paper; the *functional*
// behaviour of ghost-layer exchange (ordering, matching, concurrency) is
// exercised for real, while large-scale timing comes from perf::netmodel.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace pfc::mpi {

class World;

/// Per-rank communicator handle (value-semantic view onto the World).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking buffered send (returns when the message is enqueued).
  void send(int dest, int tag, const void* data, std::size_t bytes);
  /// Blocking receive; byte count must match the incoming message.
  void recv(int source, int tag, void* data, std::size_t bytes);

  /// Nonblocking pair: isend enqueues immediately; irecv registers the
  /// destination buffer and is completed by wait().
  struct Request {
    int source = -1;
    int tag = 0;
    void* data = nullptr;
    std::size_t bytes = 0;
    bool is_recv = false;
    bool done = false;
  };
  Request isend(int dest, int tag, const void* data, std::size_t bytes);
  Request irecv(int source, int tag, void* data, std::size_t bytes);
  void wait(Request& r);
  void wait_all(std::vector<Request>& rs);

  void barrier();
  double allreduce_sum(double v);
  double allreduce_max(double v);

  /// Convenience typed wrappers.
  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& v) {
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void recv_vec(int source, int tag, std::vector<T>& v) {
    recv(source, tag, v.data(), v.size() * sizeof(T));
  }

 private:
  friend class World;
  friend void run(int, const std::function<void(Comm&)>&);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Runs `fn(comm)` on `num_ranks` concurrent ranks; returns when all have
/// finished. Exceptions thrown by any rank are collected and the first one
/// is rethrown after all ranks joined.
void run(int num_ranks, const std::function<void(Comm&)>& fn);

}  // namespace pfc::mpi
