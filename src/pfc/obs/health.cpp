#include "pfc/obs/health.hpp"

#include <cmath>
#include <cstdio>

#include "pfc/field/array.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::obs {

const char* health_policy_name(HealthPolicy p) {
  switch (p) {
    case HealthPolicy::Ignore: return "ignore";
    case HealthPolicy::Warn: return "warn";
    case HealthPolicy::Throw: return "throw";
    case HealthPolicy::Recover: return "recover";
  }
  return "?";
}

HealthPolicy parse_health_policy(const std::string& name) {
  if (name == "ignore") return HealthPolicy::Ignore;
  if (name == "warn") return HealthPolicy::Warn;
  if (name == "throw") return HealthPolicy::Throw;
  if (name == "recover") return HealthPolicy::Recover;
  throw Error("pfc: unknown health policy \"" + name +
              "\" (expected ignore, warn, throw or recover)");
}

Json HealthStats::to_json() const {
  return Json::object()
      .set("checks", Json(std::uint64_t(checks)))
      .set("nonfinite_values", Json(nonfinite_values))
      .set("phase_sum_violations", Json(phase_sum_violations))
      .set("simplex_violations", Json(simplex_violations))
      .set("mu_blowups", Json(mu_blowups))
      .set("max_phase_sum_error", Json(max_phase_sum_error))
      .set("conservation_drift", Json(conservation_drift));
}

HealthStats HealthStats::from_json(const Json& j) {
  const auto num = [&j](const char* key) {
    const Json* v = j.find(key);
    return v != nullptr && v->is_number() ? v->number() : 0.0;
  };
  HealthStats s;
  s.checks = (long long)num("checks");
  s.nonfinite_values = (std::uint64_t)num("nonfinite_values");
  s.phase_sum_violations = (std::uint64_t)num("phase_sum_violations");
  s.simplex_violations = (std::uint64_t)num("simplex_violations");
  s.mu_blowups = (std::uint64_t)num("mu_blowups");
  s.max_phase_sum_error = num("max_phase_sum_error");
  s.conservation_drift = num("conservation_drift");
  return s;
}

HealthMonitor::HealthMonitor(const HealthOptions& opts, Registry* registry)
    : opts_(opts), registry_(registry) {
  PFC_REQUIRE(opts.every_n_steps >= 1,
              "health: every_n_steps must be >= 1, got " +
                  std::to_string(opts.every_n_steps));
}

void HealthMonitor::scan_block(const Array& phi, const Array* mu) {
  if (!opts_.enabled) return;
  const auto& n = phi.size();
  const int comps = phi.components();
  const double lo = -opts_.simplex_tol, hi = 1.0 + opts_.simplex_tol;
  for (std::int64_t z = 0; z < n[2]; ++z) {
    for (std::int64_t y = 0; y < n[1]; ++y) {
      for (std::int64_t x = 0; x < n[0]; ++x) {
        double sum = 0.0;
        bool cell_finite = true;
        for (int c = 0; c < comps; ++c) {
          const double v = phi.at(x, y, z, c);
          if (!std::isfinite(v)) {
            ++scan_nonfinite_;
            cell_finite = false;
            continue;
          }
          if (v < lo || v > hi) ++scan_simplex_;
          sum += v;
        }
        if (cell_finite) {
          const double err = std::abs(sum - 1.0);
          if (err > opts_.phase_sum_tol) ++scan_phase_sum_;
          if (err > stats_.max_phase_sum_error) {
            stats_.max_phase_sum_error = err;
          }
          scan_phase_total_ += sum;
        }
        ++scan_cells_;
      }
    }
  }
  if (mu != nullptr) {
    const auto& m = mu->size();
    for (int c = 0; c < mu->components(); ++c) {
      for (std::int64_t z = 0; z < m[2]; ++z) {
        for (std::int64_t y = 0; y < m[1]; ++y) {
          for (std::int64_t x = 0; x < m[0]; ++x) {
            const double v = mu->at(x, y, z, c);
            if (!std::isfinite(v)) {
              ++scan_nonfinite_;
            } else if (std::abs(v) > opts_.mu_limit) {
              ++scan_mu_;
            }
          }
        }
      }
    }
  }
}

std::uint64_t HealthMonitor::finish_scan(long long step) {
  if (!opts_.enabled) return 0;
  ++stats_.checks;
  stats_.nonfinite_values += scan_nonfinite_;
  stats_.phase_sum_violations += scan_phase_sum_;
  stats_.simplex_violations += scan_simplex_;
  stats_.mu_blowups += scan_mu_;
  if (scan_cells_ > 0) {
    const double drift =
        std::abs(scan_phase_total_ / double(scan_cells_) - 1.0);
    if (drift > stats_.conservation_drift) {
      stats_.conservation_drift = drift;
    }
  }
  if (registry_ != nullptr) {
    registry_->counter("health/checks").add(1);
    if (scan_nonfinite_ > 0) {
      registry_->counter("health/nonfinite_values").add(scan_nonfinite_);
    }
    if (scan_phase_sum_ > 0) {
      registry_->counter("health/phase_sum_violations").add(scan_phase_sum_);
    }
    if (scan_simplex_ > 0) {
      registry_->counter("health/simplex_violations").add(scan_simplex_);
    }
    if (scan_mu_ > 0) {
      registry_->counter("health/mu_blowups").add(scan_mu_);
    }
  }

  const std::uint64_t found =
      scan_nonfinite_ + scan_phase_sum_ + scan_simplex_ + scan_mu_;
  char detail[160];
  if (found > 0) {
    std::snprintf(detail, sizeof detail,
                  "step %lld: %llu non-finite, %llu phase-sum, %llu simplex, "
                  "%llu mu-blowup violations",
                  step, (unsigned long long)scan_nonfinite_,
                  (unsigned long long)scan_phase_sum_,
                  (unsigned long long)scan_simplex_,
                  (unsigned long long)scan_mu_);
  }
  scan_nonfinite_ = scan_phase_sum_ = scan_simplex_ = scan_mu_ = 0;
  scan_phase_total_ = 0.0;
  scan_cells_ = 0;

  if (found == 0) return 0;
  switch (opts_.policy) {
    case HealthPolicy::Ignore:
      break;
    case HealthPolicy::Warn:
      std::fprintf(stderr, "pfc health warning: %s\n", detail);
      break;
    case HealthPolicy::Throw:
      throw Error(std::string("pfc health check failed: ") + detail);
    case HealthPolicy::Recover:
      // the driver rolls back; the monitor only reports
      std::fprintf(stderr, "pfc health (recovering): %s\n", detail);
      break;
  }
  return found;
}

}  // namespace pfc::obs
