// In-situ physics health monitoring: periodic scans of the φ/µ state that
// answer "is the simulation still producing physically meaningful numbers"
// while it runs (the conservation/validation checks SymPhas builds into its
// generated solvers; waLBerla production runs do the same with per-block
// sanity sweeps).
//
// Checks per scan:
//   * non-finite values (NaN/Inf) in φ and µ,
//   * the phase-sum invariant Σ_α φ_α ≈ 1 per cell (Gibbs simplex),
//   * obstacle-potential bound violations: φ outside [−tol, 1+tol],
//   * µ blow-up: |µ| beyond a configurable limit,
//   * conservation drift of the integrated phase sum (Σ_cells Σ_α φ_α must
//     stay at exactly one per cell whatever the dynamics do).
//
// Violations accumulate as obs counters ("health/..."), surface in
// RunReport, and are acted on per HealthPolicy: production runs degrade
// gracefully (warn) instead of silently producing garbage, CI turns the
// screw to throw.
#pragma once

#include <cstdint>
#include <string>

#include "pfc/obs/json.hpp"
#include "pfc/obs/registry.hpp"

namespace pfc {
class Array;  // field/array.hpp — scanned, never mutated
}

namespace pfc::obs {

/// What to do when a scan finds violations. Recover tells the driver's
/// resilience layer to roll back to the last good checkpoint (bounded
/// retries, optional dt shrink) instead of warning or aborting.
enum class HealthPolicy { Ignore, Warn, Throw, Recover };

const char* health_policy_name(HealthPolicy p);
/// Parses "ignore" / "warn" / "throw" / "recover" (throws pfc::Error
/// listing the accepted values otherwise).
HealthPolicy parse_health_policy(const std::string& name);

/// Driver-level health knobs (lives on app::DomainOptions).
struct HealthOptions {
  bool enabled = false;
  int every_n_steps = 1;  ///< scan after every N-th completed step
  HealthPolicy policy = HealthPolicy::Warn;
  double phase_sum_tol = 1e-6;  ///< |Σφ − 1| allowed per cell
  double simplex_tol = 1e-9;    ///< φ may stray this far outside [0, 1]
  double mu_limit = 1e6;        ///< |µ| beyond this counts as blow-up

  HealthOptions& enable(bool on = true) {
    enabled = on;
    return *this;
  }
  HealthOptions& every(int n) {
    every_n_steps = n;
    return *this;
  }
  HealthOptions& with_policy(HealthPolicy p) {
    policy = p;
    return *this;
  }
  HealthOptions& with_mu_limit(double m) {
    mu_limit = m;
    return *this;
  }
};

/// Cumulative findings of all scans (a RunReport section).
struct HealthStats {
  long long checks = 0;  ///< completed scans
  std::uint64_t nonfinite_values = 0;
  std::uint64_t phase_sum_violations = 0;  ///< cells with |Σφ−1| > tol
  std::uint64_t simplex_violations = 0;    ///< φ values outside [−tol,1+tol]
  std::uint64_t mu_blowups = 0;            ///< µ values beyond mu_limit
  double max_phase_sum_error = 0.0;        ///< worst |Σφ − 1| ever seen
  /// Worst |⟨Σφ⟩ − 1| of the cell-averaged phase sum (integrated
  /// conservation drift; cancellation-insensitive systematic drift).
  double conservation_drift = 0.0;

  std::uint64_t total_violations() const {
    return nonfinite_values + phase_sum_violations + simplex_violations +
           mu_blowups;
  }
  Json to_json() const;
  /// Inverse of to_json (checkpoint manifests carry the stats so restart
  /// resumes the accumulated accounting). Missing keys read as zero.
  static HealthStats from_json(const Json& j);
};

/// Scans fields on the steps its options select and applies the policy.
/// One monitor per driver; multi-block drivers feed every block into the
/// same scan before finishing it.
class HealthMonitor {
 public:
  /// `registry` (optional) receives "health/..." counters.
  explicit HealthMonitor(const HealthOptions& opts,
                         Registry* registry = nullptr);

  const HealthOptions& options() const { return opts_; }
  bool enabled() const { return opts_.enabled; }
  /// True when a scan is due after completing `step`.
  bool due(long long step) const {
    return opts_.enabled && step > 0 &&
           step % std::max(1, opts_.every_n_steps) == 0;
  }

  /// Accumulates one block's φ/µ interiors into the current scan.
  /// `mu` may be nullptr (φ-only models/tests).
  void scan_block(const Array& phi, const Array* mu);

  /// Closes the scan opened by scan_block() calls: updates drift, bumps
  /// counters and applies the policy (Warn/Recover print one stderr line;
  /// Throw raises pfc::Error naming the step and findings). Returns the
  /// number of violations this scan found — under Recover the driver acts
  /// on it (rollback), the monitor itself never mutates simulation state.
  std::uint64_t finish_scan(long long step);

  const HealthStats& stats() const { return stats_; }
  /// Seeds the cumulative stats (checkpoint restart).
  void restore_stats(const HealthStats& s) { stats_ = s; }

 private:
  HealthOptions opts_;
  Registry* registry_;
  HealthStats stats_;
  // current-scan accumulators (reset by finish_scan)
  std::uint64_t scan_nonfinite_ = 0;
  std::uint64_t scan_phase_sum_ = 0;
  std::uint64_t scan_simplex_ = 0;
  std::uint64_t scan_mu_ = 0;
  double scan_phase_total_ = 0.0;
  std::uint64_t scan_cells_ = 0;
};

}  // namespace pfc::obs
