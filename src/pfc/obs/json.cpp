#include "pfc/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pfc::obs {

Json& Json::set(const std::string& key, Json v) {
  kind_ = Kind::Object;
  for (auto& [k, val] : members_) {
    if (k == key) {
      val = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::push(Json v) {
  kind_ = Kind::Array;
  elems_.push_back(std::move(v));
  return *this;
}

bool Json::operator==(const Json& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == o.bool_;
    case Kind::Number: return num_ == o.num_;
    case Kind::String: return str_ == o.str_;
    case Kind::Object: return members_ == o.members_;
    case Kind::Array: return elems_ == o.elems_;
  }
  return false;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  const double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(r));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(std::size_t(indent) * std::size_t(d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: append_number(out, num_); break;
    case Kind::String: append_escaped(out, str_); break;
    case Kind::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        append_escaped(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
    case Kind::Array: {
      if (elems_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : elems_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      out = Json(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      out = Json(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      out = Json();
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("bad escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("bad \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') v |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= unsigned(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // ASCII only (reports never emit more); others become '?'
          out += v < 0x80 ? char(v) : '?';
          break;
        }
        default: return fail("bad escape");
      }
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;
    return true;
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    try {
      out = Json(std::stod(text.substr(start, pos - start)));
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }

  bool parse_object(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Json v;
      if (!parse_value(v)) return false;
      out.set(key, std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json v;
      if (!parse_value(v)) return false;
      out.push(std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }
};

}  // namespace

Json Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out)) {
    if (error != nullptr) *error = p.error;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing characters";
    return Json();
  }
  if (error != nullptr) error->clear();
  return out;
}

}  // namespace pfc::obs
