// Minimal JSON value: enough for the observability exporters, the schema
// checker and report round-trips. Objects preserve insertion order so the
// emitted reports are deterministic and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pfc::obs {

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Object, Array };

  Json() = default;
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double v) : kind_(Kind::Number), num_(v) {}
  Json(int v) : kind_(Kind::Number), num_(double(v)) {}
  Json(long long v) : kind_(Kind::Number), num_(double(v)) {}
  Json(std::uint64_t v) : kind_(Kind::Number), num_(double(v)) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}

  static Json object() { Json j; j.kind_ = Kind::Object; return j; }
  static Json array() { Json j; j.kind_ = Kind::Array; return j; }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }

  double number() const { return num_; }
  bool boolean() const { return bool_; }
  const std::string& str() const { return str_; }

  /// Object: sets (or replaces) a key. Returns *this for chaining.
  Json& set(const std::string& key, Json v);
  /// Object: member lookup, nullptr if absent (or not an object).
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& items() const {
    return members_;
  }

  /// Array: appends an element. Returns *this for chaining.
  Json& push(Json v);
  const std::vector<Json>& elements() const { return elems_; }

  bool operator==(const Json& o) const;

  /// Serializes with 2-space indentation (indent < 0: compact one-liner).
  std::string dump(int indent = 2) const;

  /// Recursive-descent parse; returns Null and sets *error on failure.
  static Json parse(const std::string& text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;  // Object
  std::vector<Json> elems_;                            // Array
};

}  // namespace pfc::obs
