#include "pfc/obs/log.hpp"

#include <chrono>

#include "pfc/support/assert.hpp"

namespace pfc::obs::log {

Level level_from_string(const std::string& s) {
  if (s == "debug") return Level::Debug;
  if (s == "info") return Level::Info;
  if (s == "warn") return Level::Warn;
  if (s == "error") return Level::Error;
  throw Error("log: unknown level \"" + s +
              "\" (valid: debug, info, warn, error)");
}

const char* level_name(Level l) {
  switch (l) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
  }
  return "info";
}

Logger& Logger::shared() {
  static Logger instance;
  return instance;
}

Logger::~Logger() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

void Logger::configure(Level min_level, const std::string& json_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  min_level_.store(int(min_level), std::memory_order_relaxed);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!json_path.empty()) {
    file_ = std::fopen(json_path.c_str(), "a");
    PFC_REQUIRE(file_ != nullptr, "log: cannot open " + json_path);
  }
  records_.store(0, std::memory_order_relaxed);
}

void Logger::write(Level level, const std::string& component,
                   const std::string& msg,
                   const std::vector<Field>& fields) {
  if (!enabled(level)) return;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::lock_guard<std::mutex> lock(mutex_);
  records_.fetch_add(1, std::memory_order_relaxed);
  if (file_ != nullptr) {
    Json rec = Json::object()
                   .set("ts", Json(ts))
                   .set("level", Json(level_name(level)))
                   .set("component", Json(component))
                   .set("msg", Json(msg));
    for (const Field& f : fields) rec.set(f.key, f.value);
    const std::string line = rec.dump(-1);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    return;
  }
  // Human-readable stderr: "component [level] msg key=value ...".
  std::string line = component;
  line += " [";
  line += level_name(level);
  line += "] ";
  line += msg;
  for (const Field& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += f.value.is_string() ? f.value.str() : f.value.dump(-1);
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

void debug(const std::string& component, const std::string& msg,
           const std::vector<Field>& fields) {
  Logger::shared().write(Level::Debug, component, msg, fields);
}
void info(const std::string& component, const std::string& msg,
          const std::vector<Field>& fields) {
  Logger::shared().write(Level::Info, component, msg, fields);
}
void warn(const std::string& component, const std::string& msg,
          const std::vector<Field>& fields) {
  Logger::shared().write(Level::Warn, component, msg, fields);
}
void error(const std::string& component, const std::string& msg,
           const std::vector<Field>& fields) {
  Logger::shared().write(Level::Error, component, msg, fields);
}

}  // namespace pfc::obs::log
