// Structured logging for the daemon tier (pfc::obs::log): leveled records
// with typed key/value fields, written either as human-readable lines to
// stderr (the default) or as JSON-lines to a file (--log-file on
// pfc_served). Every record carries a timestamp, level, component and any
// fields the call site attaches — the serve daemon stamps each job's
// correlation id ("job-<id>") on every record it emits for that job, so
// one grep reconstructs a job's whole lifecycle from a shared log.
//
// JSON-lines record shape (one compact object per line):
//
//   {"ts": 1754650000.123, "level": "info", "component": "pfc_served",
//    "msg": "job finished", "correlation_id": "job-3", "job": 3, ...}
//
// The logger is deliberately small: a global instance (Logger::shared()),
// a level gate read lock-free, and a mutex only around the actual write,
// so concurrent workers interleave whole lines, never bytes.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "pfc/obs/json.hpp"

namespace pfc::obs::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// "debug" | "info" | "warn" | "error"; throws pfc::Error otherwise.
Level level_from_string(const std::string& s);
const char* level_name(Level l);

/// One typed key/value attachment of a record.
struct Field {
  std::string key;
  Json value;
};

class Logger {
 public:
  Logger() = default;
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The process-wide logger the daemon (and anything else) writes to.
  static Logger& shared();

  /// min_level gates records; json_path selects the JSON-lines file sink
  /// (empty = human-readable stderr). Reconfiguring closes a previous
  /// file sink. Throws pfc::Error if the file cannot be opened.
  void configure(Level min_level, const std::string& json_path = "");

  bool enabled(Level l) const {
    return int(l) >= min_level_.load(std::memory_order_relaxed);
  }

  /// Writes one record (no-op below the configured level).
  void write(Level level, const std::string& component,
             const std::string& msg, const std::vector<Field>& fields = {});

  /// Records written since construction/configure (test visibility).
  std::uint64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> min_level_{int(Level::Info)};
  std::atomic<std::uint64_t> records_{0};
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;  ///< owned JSON-lines sink (null = stderr)
};

// Convenience funnels onto Logger::shared().
void debug(const std::string& component, const std::string& msg,
           const std::vector<Field>& fields = {});
void info(const std::string& component, const std::string& msg,
          const std::vector<Field>& fields = {});
void warn(const std::string& component, const std::string& msg,
          const std::vector<Field>& fields = {});
void error(const std::string& component, const std::string& msg,
           const std::vector<Field>& fields = {});

}  // namespace pfc::obs::log
