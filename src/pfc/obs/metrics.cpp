#include "pfc/obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "pfc/support/assert.hpp"

namespace pfc::obs {

// --- Gauge -------------------------------------------------------------------

std::uint64_t Gauge::pack(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::unpack(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    PFC_REQUIRE(bounds_[i] < bounds_[i + 1],
                "histogram bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  // Lower-bound search over the (short, fixed) edge list; the overflow
  // bucket catches everything past the last edge, NaN included.
  std::size_t b = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      b = i;
      break;
    }
  }
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  double s;
  std::uint64_t next;
  do {
    std::memcpy(&s, &old, sizeof s);
    s += value;
    std::memcpy(&next, &s, sizeof next);
  } while (!sum_bits_.compare_exchange_weak(old, next,
                                            std::memory_order_relaxed));
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  std::memcpy(&s.sum, &bits, sizeof s.sum);
  return s;
}

std::vector<double> Histogram::duration_bounds() {
  return {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
          2.5,  5.0,   10.0, 30.0, 60.0, 120.0, 300.0};
}

// --- MetricsRegistry ---------------------------------------------------------

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto ok_first = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!ok_first(name[0])) return false;
  for (const char c : name) {
    if (!ok_first(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

MetricsRegistry& MetricsRegistry::shared() {
  static MetricsRegistry instance;
  return instance;
}

namespace {

std::string label_key(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string render_labels(const MetricLabels& labels,
                          const std::string& extra_key = "",
                          const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label(v) + '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + '"';
  }
  out += '}';
  return out;
}

std::string format_number(double v) {
  if (v == (long long)(v) && std::fabs(v) < 1e15) {
    return std::to_string((long long)(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 Kind kind) {
  PFC_REQUIRE(valid_metric_name(name),
              "invalid metric name \"" + name + '"');
  PFC_REQUIRE(!help.empty(), "metric \"" + name + "\" needs help text");
  Family& f = families_[name];
  if (f.help.empty()) {
    f.kind = kind;
    f.help = help;
    return f;
  }
  PFC_REQUIRE(f.kind == kind, "metric \"" + name +
                                  "\" re-registered with a different kind");
  return f;
}

MetricsRegistry::Series& MetricsRegistry::series(Family& f,
                                                 const MetricLabels& labels) {
  Series& s = f.series[label_key(labels)];
  s.labels = labels;
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, Kind::Counter), labels);
  if (s.counter == nullptr) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::counter_double(const std::string& name,
                                       const std::string& help,
                                       const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, Kind::CounterDouble), labels);
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, Kind::Gauge), labels);
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, Kind::Histogram), labels);
  if (s.histogram == nullptr) {
    s.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *s.histogram;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json metrics = Json::object();
  for (const auto& [name, f] : families_) {
    const char* type = f.kind == Kind::Histogram ? "histogram"
                       : f.kind == Kind::Gauge   ? "gauge"
                                                 : "counter";
    Json values = Json::array();
    for (const auto& [key, s] : f.series) {
      (void)key;
      Json labels = Json::object();
      for (const auto& [k, v] : s.labels) labels.set(k, Json(v));
      Json entry = Json::object().set("labels", std::move(labels));
      if (f.kind == Kind::Histogram) {
        const Histogram::Snapshot snap = s.histogram->snapshot();
        Json buckets = Json::array();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          Json b = Json::object();
          if (i < snap.bounds.size()) {
            b.set("le", Json(snap.bounds[i]));
          } else {
            b.set("le", Json("+Inf"));
          }
          b.set("count", Json(cumulative));
          buckets.push(std::move(b));
        }
        entry.set("count", Json(snap.count))
            .set("sum", Json(snap.sum))
            .set("buckets", std::move(buckets));
      } else if (f.kind == Kind::Counter) {
        entry.set("value", Json(s.counter->value()));
      } else {
        entry.set("value", Json(s.gauge->value()));
      }
      values.push(std::move(entry));
    }
    metrics.set(name, Json::object()
                          .set("type", Json(type))
                          .set("help", Json(f.help))
                          .set("values", std::move(values)));
  }
  return Json::object()
      .set("schema", Json(kMetricsSchema))
      .set("metrics", std::move(metrics));
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, f] : families_) {
    // CounterDouble is a Prometheus counter; the distinction is only which
    // in-process primitive backs it.
    const char* type = f.kind == Kind::Histogram ? "histogram"
                       : f.kind == Kind::Gauge   ? "gauge"
                                                 : "counter";
    out += "# HELP " + name + ' ' + f.help + '\n';
    out += "# TYPE " + name + ' ' + type + '\n';
    for (const auto& [key, s] : f.series) {
      (void)key;
      if (f.kind == Kind::Histogram) {
        const Histogram::Snapshot snap = s.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          const std::string le = i < snap.bounds.size()
                                     ? format_number(snap.bounds[i])
                                     : "+Inf";
          out += name + "_bucket" + render_labels(s.labels, "le", le) + ' ' +
                 std::to_string(cumulative) + '\n';
        }
        out += name + "_sum" + render_labels(s.labels) + ' ' +
               format_number(snap.sum) + '\n';
        out += name + "_count" + render_labels(s.labels) + ' ' +
               std::to_string(snap.count) + '\n';
      } else if (f.kind == Kind::Counter) {
        out += name + render_labels(s.labels) + ' ' +
               std::to_string(s.counter->value()) + '\n';
      } else {
        out += name + render_labels(s.labels) + ' ' +
               format_number(s.gauge->value()) + '\n';
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
}

}  // namespace pfc::obs
