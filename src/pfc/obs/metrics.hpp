// Live metrics for long-running services (the serve daemon above all): a
// process-wide registry of counters, gauges and fixed-bucket histograms,
// written lock-free from any thread and snapshot-able without stopping
// writers.
//
// This complements the per-run obs::Registry: that one accumulates the
// timers of a single driver and dies with it; MetricsRegistry outlives
// every job and answers "what is this process doing *right now*" —
// queue depth, jobs in flight, job-duration distribution, kernel-cache
// hit counts — in two exposition formats:
//
//   * to_json()        — the pfc-serve-metrics-v1 snapshot the daemon's
//                        "metrics" request returns (validated by
//                        report_check --metrics),
//   * to_prometheus()  — Prometheus text exposition (# HELP / # TYPE +
//                        samples; histograms as cumulative _bucket/_sum/
//                        _count series), linted by report_check --prom.
//
// Concurrency contract: metric handles returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime and may be updated
// from any thread without locks (relaxed atomics; Gauge::add and
// Histogram sum use a CAS loop). Snapshots lock only the family index,
// never the writers, so a snapshot taken mid-update is "torn-free" at
// the level tests can assert: a histogram's total count always equals
// the sum of its bucket counts, and cumulative bucket counts are
// monotone.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "pfc/obs/json.hpp"
#include "pfc/obs/registry.hpp"

namespace pfc::obs {

/// Instantaneous level (queue depth, resident bytes, current MLUPS).
/// set()/add() are wait-free / lock-free from any thread.
class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double delta) {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, pack(unpack(old) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return unpack(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};  // pack(0.0) == 0
};

/// Fixed-bucket histogram of nonnegative samples (durations, sizes).
/// Bounds are the inclusive upper edges of the finite buckets; one
/// overflow (+Inf) bucket is implicit. observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper edges
    std::vector<std::uint64_t> counts;   ///< per-bucket, bounds+1 entries
    std::uint64_t count = 0;             ///< == sum of counts, always
    double sum = 0.0;                    ///< sum of observed values
  };
  /// Consistent by construction: count is derived from the bucket counts
  /// read in one pass, so it can never disagree with them.
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Duration buckets the serve metrics use: 10 ms .. 5 min, roughly
  /// geometric.
  static std::vector<double> duration_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> sum_bits_{0};  // packed double, CAS-added
};

/// One metric's labels, e.g. {{"preset", "two_phase"}}. Order is kept as
/// given (exposition is deterministic); equality is by exact sequence.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Valid Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*)?
bool valid_metric_name(const std::string& name);

inline constexpr const char* kMetricsSchema = "pfc-serve-metrics-v1";

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance the daemon exposes. Library code (kernel
  /// cache, serve workers) records here so one scrape sees everything.
  static MetricsRegistry& shared();

  /// Returns the metric for (name, labels), creating the family on first
  /// use. A family's kind and help are fixed by the first call; a
  /// conflicting re-registration throws pfc::Error. References stay valid
  /// for the registry's lifetime — look up once, update lock-free.
  Counter& counter(const std::string& name, const std::string& help,
                   const MetricLabels& labels = {});
  /// A monotonically increasing float quantity exposed as a Prometheus
  /// counter (busy seconds); backed by Gauge::add.
  Gauge& counter_double(const std::string& name, const std::string& help,
                        const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds,
                       const MetricLabels& labels = {});

  /// pfc-serve-metrics-v1 snapshot:
  ///   {"schema": "...", "metrics": {"<name>": {"type", "help",
  ///     "values": [{"labels": {...}, "value": x} |
  ///                {"labels": {...}, "count": n, "sum": s,
  ///                 "buckets": [{"le": b|"+Inf", "count": cumulative}]}]}}}
  Json to_json() const;

  /// Prometheus text exposition format (one # HELP and # TYPE line per
  /// family, histogram series as cumulative _bucket{le=...}/_sum/_count).
  std::string to_prometheus() const;

  /// Test hook: drops every family (handed-out references become stale —
  /// only use between test cases).
  void reset();

 private:
  enum class Kind { Counter, CounterDouble, Gauge, Histogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::Counter;
    std::string help;
    /// Keyed by canonical label serialization; insertion-ordered values
    /// are kept in the map (std::map sorts by key — deterministic).
    std::map<std::string, Series> series;
  };

  Family& family(const std::string& name, const std::string& help, Kind kind);
  Series& series(Family& f, const MetricLabels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace pfc::obs
