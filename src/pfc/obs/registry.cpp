#include "pfc/obs/registry.hpp"

#include <cmath>

namespace pfc::obs {

double safe_rate(double numerator, double denominator) {
  if (!(denominator > 0.0) || !std::isfinite(denominator) ||
      !std::isfinite(numerator)) {
    return 0.0;
  }
  return numerator / denominator;
}

Registry::Registry(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

Counter& Registry::counter(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[path];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

std::uint64_t Registry::counter_value(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(path);
  return it == counters_.end() ? 0 : it->second->value();
}

void Registry::add_time(const std::string& path, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  TimerStat& t = timers_[path];
  t.seconds += seconds;
  t.count += 1;
}

TimerStat Registry::timer(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(path);
  return it == timers_.end() ? TimerStat{} : it->second;
}

std::map<std::string, TimerStat> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timers_;
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [k, c] : counters_) out[k] = c->value();
  return out;
}

double Registry::per_second(const std::string& counter_path,
                            const std::string& timer_path) const {
  return safe_rate(double(counter_value(counter_path)),
                   timer(timer_path).seconds);
}

void Registry::push_step(const StepStats& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(s);
  } else {
    ring_[ring_next_] = s;
  }
  ring_next_ = (ring_next_ + 1) % ring_capacity_;
  ++steps_recorded_;
}

std::vector<StepStats> Registry::recent_steps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StepStats> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return out;
}

long long Registry::steps_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steps_recorded_;
}

Json Registry::to_json() const {
  Json timers = Json::object();
  for (const auto& [path, t] : this->timers()) {
    timers.set(path, Json::object()
                         .set("seconds", Json(t.seconds))
                         .set("count", Json(t.count)));
  }
  Json counters = Json::object();
  for (const auto& [path, v] : this->counters()) counters.set(path, Json(v));
  return Json::object()
      .set("timers", std::move(timers))
      .set("counters", std::move(counters));
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  timers_.clear();
  counters_.clear();
  ring_.clear();
  ring_next_ = 0;
  steps_recorded_ = 0;
}

namespace {

struct ScopeFrame {
  const Registry* registry;
  const std::string* path;
};

thread_local std::vector<ScopeFrame> g_scope_stack;

}  // namespace

ScopedTimer::ScopedTimer(Registry& registry, std::string name)
    : registry_(&registry) {
  if (!g_scope_stack.empty() && g_scope_stack.back().registry == &registry) {
    path_ = *g_scope_stack.back().path + "/" + name;
  } else {
    path_ = std::move(name);
  }
  g_scope_stack.push_back({&registry, &path_});
  timer_.reset();
}

ScopedTimer::~ScopedTimer() {
  const double s = timer_.seconds();
  // Scopes strictly nest per thread (stack objects), so the top frame is
  // ours; tolerate a mismatch silently rather than throw from a destructor.
  if (!g_scope_stack.empty() && g_scope_stack.back().path == &path_) {
    g_scope_stack.pop_back();
  }
  registry_->add_time(path_, s);
}

}  // namespace pfc::obs
