// Observability core (the measurement spine behind every paper figure we
// reproduce): a hierarchical scoped-timer + monotonic-counter registry, and
// a per-step ring buffer of StepStats.
//
// Design constraints, in order:
//   * low overhead — a timed kernel run costs two steady_clock reads and one
//     map accumulate; counters are lock-free relaxed atomics so generated
//     kernels / pool workers can bump them concurrently and still sum
//     deterministically,
//   * hierarchy — nested ScopedTimers compose slash-separated paths
//     ("step/kernel/phi_full") via a per-thread scope stack, so call sites
//     never spell out their ancestry,
//   * one place for guarded math — safe_rate() is the single spot where
//     empty-timer / zero-step divisions are handled; every MLUP/s or
//     bytes/s figure goes through it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pfc/obs/json.hpp"
#include "pfc/support/timer.hpp"

namespace pfc::obs {

/// numerator/denominator with division-by-zero (and non-finite) guarded to
/// 0. All derived throughput stats (MLUP/s, bytes/s, imbalance) route
/// through here so `run(0)` and empty timers are handled consistently.
double safe_rate(double numerator, double denominator);

/// Accumulated wall-clock of one timer path.
struct TimerStat {
  double seconds = 0.0;
  std::uint64_t count = 0;  ///< number of timed intervals
};

/// Monotonic event counter; add() is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// One time step's signals, kept in the registry's ring buffer.
struct StepStats {
  long long step = -1;          ///< step index after the step completed
  double kernel_seconds = 0.0;  ///< compute-kernel time within the step
  double exchange_seconds = 0.0;
  std::uint64_t exchange_bytes = 0;
  std::uint64_t cell_updates = 0;  ///< lattice updates (Heun substeps = 1)
};

class Registry {
 public:
  explicit Registry(std::size_t ring_capacity = 256);

  // -- counters --------------------------------------------------------
  /// Returns the counter at `path`, creating it on first use. The
  /// reference stays valid for the registry's lifetime, so hot loops can
  /// look it up once and add() lock-free.
  Counter& counter(const std::string& path);
  std::uint64_t counter_value(const std::string& path) const;  // 0 if absent

  // -- timers ----------------------------------------------------------
  /// Accumulates one timed interval (ScopedTimer calls this; manual timing
  /// may too).
  void add_time(const std::string& path, double seconds);
  TimerStat timer(const std::string& path) const;  // zero stat if absent

  /// Snapshots (copies) for reporting.
  std::map<std::string, TimerStat> timers() const;
  std::map<std::string, std::uint64_t> counters() const;

  /// counter(path) / timer(path).seconds, guarded by safe_rate().
  double per_second(const std::string& counter_path,
                    const std::string& timer_path) const;

  // -- per-step ring buffer --------------------------------------------
  void push_step(const StepStats& s);
  /// Retained steps, oldest first (at most ring_capacity).
  std::vector<StepStats> recent_steps() const;
  long long steps_recorded() const;

  /// Timers + counters as one JSON object (the "timers"/"counters"
  /// sections of the report schema).
  Json to_json() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TimerStat> timers_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::vector<StepStats> ring_;
  std::size_t ring_capacity_;
  std::size_t ring_next_ = 0;
  long long steps_recorded_ = 0;
};

/// RAII timer: accumulates its lifetime into `registry` under a path formed
/// by joining the names of all enclosing ScopedTimers on this thread with
/// '/'. Scopes of different registries do not nest into each other.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  const std::string& path() const { return path_; }
  double seconds_so_far() const { return timer_.seconds(); }

 private:
  Registry* registry_;
  std::string path_;
  Timer timer_;
};

}  // namespace pfc::obs
