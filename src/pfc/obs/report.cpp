#include "pfc/obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "pfc/support/assert.hpp"

namespace pfc::obs {

double RunReport::mlups() const {
  return safe_rate(double(cell_updates), kernel_seconds_total) / 1e6;
}

double RunReport::kernel_seconds(const std::string& kernel_name) const {
  const auto it = kernel_timers.find(kernel_name);
  return it == kernel_timers.end() ? 0.0 : it->second.seconds;
}

double RunReport::exchange_bytes_per_second() const {
  return safe_rate(double(exchange_bytes), exchange_seconds);
}

double RunReport::worst_model_drift() const {
  double worst = 0.0;
  for (const auto& [target, a] : model_accuracy) {
    if (a.predicted_seconds <= 0.0) continue;
    worst = std::max(worst, std::abs(a.ratio - 1.0));
  }
  return worst;
}

Json ResilienceStats::to_json() const {
  return Json::object()
      .set("checkpoints", Json(checkpoints))
      .set("checkpoint_files", Json(checkpoint_files))
      .set("last_checkpoint_step", Json(double(last_checkpoint_step)))
      .set("rollbacks", Json(rollbacks))
      .set("dt_shrinks", Json(dt_shrinks))
      .set("faults_injected", Json(faults_injected))
      .set("restarted", Json(restarted))
      .set("restart_step", Json(double(restart_step)))
      .set("dt_current", Json(dt_current));
}

Json OverlapStats::to_json() const {
  return Json::object()
      .set("enabled", Json(enabled))
      .set("pack_seconds", Json(pack_seconds))
      .set("wait_seconds", Json(wait_seconds))
      .set("interior_seconds", Json(interior_seconds))
      .set("frontier_seconds", Json(frontier_seconds))
      .set("interior_cells", Json(double(interior_cells)))
      .set("frontier_cells", Json(double(frontier_cells)))
      .set("hidden_seconds", Json(hidden_seconds))
      .set("hidden_fraction", Json(hidden_fraction));
}

Json ThreadingStats::to_json() const {
  return Json::object()
      .set("threads", Json(double(threads)))
      .set("pin_policy", Json(pin_policy))
      .set("dispatch", Json(dispatch))
      .set("first_touch", Json(first_touch))
      .set("cpus", Json(double(cpus)))
      .set("cores", Json(double(cores)))
      .set("packages", Json(double(packages)))
      .set("numa_nodes", Json(double(numa_nodes)))
      .set("blocking",
           Json::object()
               .set("enabled", Json(blocking_enabled))
               .set("tile_rows", Json(double(blocking_tile_rows)))
               .set("lookahead", Json(double(blocking_lookahead)))
               .set("fused_stages", Json(double(fused_stages)))
               .set("fused_substeps", Json(double(fused_substeps)))
               .set("reason", Json(blocking_reason))
               .set("bytes_per_update_unfused",
                    Json(bytes_per_update_unfused))
               .set("bytes_per_update_fused", Json(bytes_per_update_fused)));
}

Json TuningRankEntry::to_json() const {
  return Json::object()
      .set("config", Json(config))
      .set("predicted_mlups", Json(predicted_mlups))
      .set("measured_mlups", Json(measured_mlups));
}

Json TuningStats::to_json() const {
  Json rank = Json::array();
  for (const auto& r : ranking) rank.push(r.to_json());
  return Json::object()
      .set("enabled", Json(enabled))
      .set("mode", Json(mode))
      .set("cache_hit", Json(cache_hit))
      .set("cache_key", Json(cache_key))
      .set("machine", Json(machine))
      .set("candidates", Json(double(candidates)))
      .set("measured_runs", Json(double(measured_runs)))
      .set("search_seconds", Json(search_seconds))
      .set("baseline_mlups", Json(baseline_mlups))
      .set("best_mlups", Json(best_mlups))
      .set("best_config", Json(best_config))
      .set("ranking", std::move(rank));
}

Json RunReport::to_json() const {
  std::map<std::string, TimerStat> timers;
  for (const auto& [k, t] : kernel_timers) timers["kernel/" + k] = t;
  if (exchange_seconds > 0.0) {
    timers["exchange"] = TimerStat{exchange_seconds, std::uint64_t(steps)};
  }
  const std::map<std::string, std::uint64_t> counters{
      {"steps", std::uint64_t(steps)},
      {"cell_updates", cell_updates},
      {"exchange_bytes", exchange_bytes},
  };
  const std::map<std::string, double> derived{
      {"mlups", mlups()},
      {"kernel_seconds_total", kernel_seconds_total},
      {"cells_per_step", double(cells_per_step)},
      {"num_blocks", double(num_blocks)},
      {"block_imbalance", block_imbalance},
      {"exchange_bytes_per_second", exchange_bytes_per_second()},
      {"worst_model_drift", worst_model_drift()},
  };
  Json j = make_report_json("run", name, timers, counters, derived);
  if (!model_accuracy.empty()) {
    Json ma = Json::object();
    for (const auto& [target, a] : model_accuracy) {
      ma.set(target, Json::object()
                         .set("predicted_seconds", Json(a.predicted_seconds))
                         .set("measured_seconds", Json(a.measured_seconds))
                         .set("ratio", Json(a.ratio)));
    }
    j.set("model_accuracy", std::move(ma));
  }
  Json h = health.to_json();
  h.set("policy", Json(health_policy_name(health_policy)));
  j.set("health", std::move(h));
  j.set("resilience", resilience.to_json());
  if (overlap.enabled) j.set("overlap", overlap.to_json());
  j.set("threading", threading.to_json());
  if (tuning.enabled) j.set("tuning", tuning.to_json());
  return j;
}

void CompileReport::add_stage(const std::string& stage, double seconds) {
  TimerStat& t = stage_timers[stage];
  t.seconds += seconds;
  t.count += 1;
}

double CompileReport::generation_seconds() const {
  double s = 0.0;
  for (const auto& [stage, t] : stage_timers) {
    if (stage != "jit") s += t.seconds;
  }
  return s;
}

double CompileReport::compile_seconds() const {
  const auto it = stage_timers.find("jit");
  return it == stage_timers.end() ? 0.0 : it->second.seconds;
}

Json CompileReport::to_json() const {
  std::map<std::string, TimerStat> timers;
  for (const auto& [k, t] : stage_timers) timers["stage/" + k] = t;
  const std::map<std::string, std::uint64_t> counters{
      {"ops_per_cell_pre", std::uint64_t(ops_per_cell_pre)},
      {"ops_per_cell_post", std::uint64_t(ops_per_cell_post)},
      {"num_kernels", std::uint64_t(kernel_names.size())},
      {"vector_width", std::uint64_t(vector_width)},
  };
  const std::map<std::string, double> derived{
      {"generation_seconds", generation_seconds()},
      {"compile_seconds", compile_seconds()},
      {"ops_per_cell_widened", ops_per_cell_widened},
  };
  Json j = make_report_json("compile", name, timers, counters, derived);
  Json names = Json::array();
  for (const auto& n : kernel_names) names.push(Json(n));
  j.set("kernels", std::move(names));
  j.set("backend_tier", Json(backend_tier));
  j.set("fallback_reason", Json(fallback_reason));
  j.set("fallback_attempts", Json(std::uint64_t(fallback_attempts)));
  if (cache_used) {
    j.set("cache", Json::object()
                       .set("hit", Json(cache_hit))
                       .set("key", Json(cache_key))
                       .set("hits", Json(cache_hits))
                       .set("misses", Json(cache_misses))
                       .set("evictions", Json(cache_evictions))
                       .set("bytes", Json(cache_bytes)));
  }
  return j;
}

Json make_report_json(const std::string& kind, const std::string& name,
                      const std::map<std::string, TimerStat>& timers,
                      const std::map<std::string, std::uint64_t>& counters,
                      const std::map<std::string, double>& derived) {
  Json jt = Json::object();
  for (const auto& [path, t] : timers) {
    jt.set(path, Json::object()
                     .set("seconds", Json(t.seconds))
                     .set("count", Json(t.count)));
  }
  Json jc = Json::object();
  for (const auto& [path, v] : counters) jc.set(path, Json(v));
  Json jd = Json::object();
  for (const auto& [path, v] : derived) jd.set(path, Json(v));
  return Json::object()
      .set("schema", Json(kReportSchema))
      .set("kind", Json(kind))
      .set("name", Json(name))
      .set("timers", std::move(jt))
      .set("counters", std::move(jc))
      .set("derived", std::move(jd));
}

void write_json(const std::string& path, const Json& j) {
  write_text(path, j.dump(2) + "\n");
}

void write_text(const std::string& path, const std::string& text) {
  // Atomic publish: a reader either sees the previous complete file or the
  // new complete file, never a torn write (rename(2) is atomic within a
  // filesystem, and the tmp file lives next to its target).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  PFC_REQUIRE(f != nullptr, "obs::write_text: cannot open " + tmp);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != text.size() || !flushed) {
    std::remove(tmp.c_str());
    throw Error("obs::write_text: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("obs::write_text: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace pfc::obs
