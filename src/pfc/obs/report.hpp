// The redesigned reporting API: drivers return a RunReport from run(), the
// compiler exposes a CompileReport, and both (plus the bench harness) emit
// one JSON schema:
//
//   {
//     "schema":   "pfc-obs-report-v2",
//     "kind":     "run" | "compile" | "bench",
//     "name":     "<producer>",
//     "timers":   { "<path>": {"seconds": s, "count": n}, ... },
//     "counters": { "<path>": n, ... },
//     "derived":  { "<stat>": x, ... }
//   }
//
// v2 added two optional run-report sections (validated when present):
//
//     "model_accuracy": { "<target>": {"predicted_seconds": p,
//                                      "measured_seconds": m,
//                                      "ratio": m/p}, ... }
//     "health":         HealthStats::to_json() + "policy"
//
// where <target> is "kernel/<ir name>" (ECM prediction, paper Fig. 2) or
// "exchange" (network model, Table 2).
//
// v3 adds the resilience accounting:
//
//     "resilience":     ResilienceStats::to_json() — checkpoints captured/
//                       written, rollbacks, dt shrinks, injected faults,
//                       restart provenance (run reports), and
//     "backend_tier" / "fallback_reason" on compile reports — which rung of
//     the JIT fallback chain (vector → scalar → interpreter) actually runs.
//
// v4 adds the communication-hiding accounting of the overlapped distributed
// step (OverlapMode::InteriorFrontier):
//
//     "overlap":        OverlapStats::to_json() — pack/wait/interior/
//                       frontier seconds, interior/frontier cell counts,
//                       and the netmodel-derived hidden-seconds /
//                       hidden-fraction. Emitted only when the run
//                       overlapped; synchronous runs stay v3-shaped (plus
//                       the bumped schema string).
//
// v5 adds the kernel-cache provenance of a compile (pfc-jobspec-v1 /
// pfc::serve era — the content-addressed shared-object cache):
//
//     "cache":          on compile reports whose JIT consulted the cache —
//                       {"hit", "key", "hits", "misses", "evictions",
//                        "bytes"}: whether *this* compile was served from
//                       the cache, its SHA-256 content address, and the
//                       process-wide cache counters after the request.
//                       Uncached compiles omit the section.
//
// v6 adds the execution-resources accounting of the NUMA-aware threading
// layer (DESIGN.md §11):
//
//     "threading":      ThreadingStats::to_json() on every run report —
//                       pool width, pin policy, dispatch mode, first-touch
//                       placement, the topology the process saw (cpus/
//                       cores/packages/numa_nodes after the affinity mask)
//                       and the temporal-blocking decision (enabled, tile
//                       rows, lookahead, fused stage/substep counts, sizing
//                       rationale, modeled bytes-per-update with and
//                       without fusion).
//
// v7 adds the measured-autotuning decision (perf/autotune.hpp):
//
//     "tuning":         TuningStats::to_json() on run reports whose driver
//                       ran with tune != off — mode (cached/full), tuning-
//                       cache key + hit/miss, machine signature, candidates
//                       enumerated vs. measured, search seconds, the
//                       winning configuration and the prior-vs-measured
//                       ranking of every measured candidate. Untuned runs
//                       omit the section (overlap-style).
//
// Producers may add extra keys (e.g. quickstart embeds its CompileReport
// under "compile"); validators require only the six core sections. See
// tools/report_check.cpp for the machine check run by ctest.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "pfc/obs/health.hpp"
#include "pfc/obs/registry.hpp"

namespace pfc::obs {

inline constexpr const char* kReportSchema = "pfc-obs-report-v7";
/// Previous schema revisions; validators still accept them for stored
/// reports.
inline constexpr const char* kReportSchemaV6 = "pfc-obs-report-v6";
inline constexpr const char* kReportSchemaV5 = "pfc-obs-report-v5";
inline constexpr const char* kReportSchemaV4 = "pfc-obs-report-v4";
inline constexpr const char* kReportSchemaV3 = "pfc-obs-report-v3";
inline constexpr const char* kReportSchemaV2 = "pfc-obs-report-v2";
inline constexpr const char* kReportSchemaV1 = "pfc-obs-report-v1";

/// Model-vs-measured drift of one prediction target: how long the
/// performance model said a component should have taken over the whole run
/// vs. what the timers measured (the paper's Fig. 2 validation, tracked on
/// every run instead of only in benches).
struct ModelAccuracy {
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;
  /// measured/predicted, safe_rate-guarded (1.0 = model exact, > 1 = slower
  /// than predicted, 0 = no prediction available).
  double ratio = 0.0;
};

/// Resilience accounting of one run (the v3 "resilience" report section):
/// how often the run checkpointed, rolled back, shrank dt or absorbed an
/// injected fault, and whether it was restored from disk. All-zero when the
/// resilience layer never acted.
struct ResilienceStats {
  std::uint64_t checkpoints = 0;       ///< in-memory snapshot captures
  std::uint64_t checkpoint_files = 0;  ///< on-disk manifests written
  long long last_checkpoint_step = 0;
  std::uint64_t rollbacks = 0;         ///< health-driven recoveries
  std::uint64_t dt_shrinks = 0;
  std::uint64_t faults_injected = 0;   ///< FaultPlan activations
  bool restarted = false;              ///< restored from disk at startup
  long long restart_step = 0;          ///< step the restore resumed at
  double dt_current = 0.0;             ///< dt after any shrinks

  Json to_json() const;
};

/// Communication-hiding accounting of one run (the v4 "overlap" report
/// section): phase timings of the split distributed step and the
/// netmodel-derived hidden-communication estimate. All-zero with
/// enabled == false when the driver ran the synchronous exchange.
struct OverlapStats {
  bool enabled = false;
  double pack_seconds = 0.0;      ///< begin(): pack + post (exposed)
  double wait_seconds = 0.0;      ///< finish(): wait + unpack + later axes
  double interior_seconds = 0.0;  ///< interior compute (hides the wait)
  double frontier_seconds = 0.0;  ///< frontier-shell compute (exposed)
  long long interior_cells = 0;   ///< per-step local interior cells
  long long frontier_cells = 0;   ///< per-step local frontier-shell cells
  /// Communication time the netmodel says was hidden behind interior
  /// compute: min(interior_seconds, predicted comm seconds).
  double hidden_seconds = 0.0;
  /// hidden_seconds / predicted comm seconds, clamped to [0, 1].
  double hidden_fraction = 0.0;

  Json to_json() const;
};

/// Execution-resources accounting of one run (the v6 "threading" section):
/// pool geometry, worker placement policy and the temporal-blocking
/// decision. Always serialized, so consumers can read how a run used the
/// node even for single-threaded runs (the all-default shape).
struct ThreadingStats {
  int threads = 1;
  std::string pin_policy = "none";  ///< "none" | "compact" | "scatter"
  std::string dispatch = "static";  ///< "dynamic" | "static"
  bool first_touch = false;         ///< arrays placed by the pinned pool
  /// Topology as visible to the process (after the affinity mask).
  int cpus = 0;
  int cores = 0;
  int packages = 0;
  int numa_nodes = 0;
  /// Temporal-blocking (wavefront) decision.
  bool blocking_enabled = false;
  long long blocking_tile_rows = 0;
  long long blocking_lookahead = 0;
  int fused_stages = 0;          ///< kernels in the fused chain (0 = unfused)
  long long fused_substeps = 0;  ///< substeps that actually ran fused
  std::string blocking_reason;   ///< sizing rationale / why disabled
  /// Modeled memory traffic per cell update over the chain (bytes).
  double bytes_per_update_unfused = 0.0;
  double bytes_per_update_fused = 0.0;

  Json to_json() const;
};

/// One row of the autotuner's prior-vs-measured ranking: a candidate
/// configuration with the ECM-model prediction that ordered it and the
/// short-run measurement that judged it.
struct TuningRankEntry {
  std::string config;            ///< canonical candidate label
  double predicted_mlups = 0.0;  ///< ECM/layer-condition prior
  double measured_mlups = 0.0;   ///< short measured run (ground truth)

  Json to_json() const;
};

/// Measured-autotuning decision of one run (the v7 "tuning" section):
/// whether the winning configuration came from the per-machine tuning cache
/// or a fresh measured search, what the search cost, and how the analytic
/// prior ranked against reality. enabled == false (tune = off, the default)
/// omits the section.
struct TuningStats {
  bool enabled = false;
  std::string mode;            ///< "cached" | "full"
  bool cache_hit = false;      ///< winner came from the persisted cache
  std::string cache_key;       ///< SHA-256 over (model hash, machine sig)
  std::string machine;         ///< machine signature the key embeds
  int candidates = 0;          ///< configurations enumerated
  int measured_runs = 0;       ///< short runs executed (0 on a cache hit)
  double search_seconds = 0.0; ///< wall time of the measured search
  double baseline_mlups = 0.0; ///< the spec's own configuration, measured
  double best_mlups = 0.0;     ///< the winner, measured
  std::string best_config;     ///< canonical label of the winner
  std::vector<TuningRankEntry> ranking;  ///< measured candidates, search order

  Json to_json() const;
};

/// Cumulative signals of a (possibly distributed) simulation run. Returned
/// by Simulation::run() / DistributedSimulation::run(); totals cover the
/// simulation's whole lifetime, not just the last run() call, so the
/// deprecated accessors and the report always agree.
struct RunReport {
  std::string name = "run";
  long long steps = 0;
  long long cells_per_step = 0;     ///< interior cells of one lattice update
  std::uint64_t cell_updates = 0;   ///< Heun's two substeps count as one
  std::map<std::string, TimerStat> kernel_timers;  ///< by kernel IR name
  double kernel_seconds_total = 0.0;
  double exchange_seconds = 0.0;    ///< ghost exchange (distributed runs)
  std::uint64_t exchange_bytes = 0; ///< bytes sent to remote ranks, total
  int num_blocks = 1;
  /// max/mean of per-block kernel seconds (1.0 = perfectly balanced; 0 if
  /// nothing ran yet).
  double block_imbalance = 0.0;
  std::vector<StepStats> recent_steps;  ///< ring-buffer tail, oldest first

  /// Model-vs-measured drift by target ("kernel/<name>", "exchange");
  /// filled by the drivers via perf::fill_model_accuracy. Empty when no
  /// kernel ran yet.
  std::map<std::string, ModelAccuracy> model_accuracy;
  /// In-situ health findings (all-zero when monitoring is disabled).
  HealthStats health;
  /// Policy the run's health monitor applied (serialized with health).
  HealthPolicy health_policy = HealthPolicy::Warn;
  /// Checkpoint/rollback/restart accounting (v3 "resilience" section).
  ResilienceStats resilience;
  /// Communication-hiding accounting (v4 "overlap" section; serialized
  /// only when enabled).
  OverlapStats overlap;
  /// Execution-resources accounting (v6 "threading" section).
  ThreadingStats threading;
  /// Measured-autotuning decision (v7 "tuning" section; serialized only
  /// when enabled).
  TuningStats tuning;
  /// Worst measured/predicted ratio distance from 1.0 across all targets
  /// with a prediction (0.0 when model_accuracy is empty).
  double worst_model_drift() const;

  /// Million lattice-cell updates per second over kernel time only — the
  /// paper's MLUP/s metric. Guarded: 0.0 before any step ran.
  double mlups() const;
  /// Seconds accumulated by one kernel (0.0 if it never ran).
  double kernel_seconds(const std::string& kernel_name) const;
  /// Exchange bandwidth in bytes/s (0.0 for node-level runs).
  double exchange_bytes_per_second() const;

  Json to_json() const;
};

/// Per-stage timings and op counts of one ModelCompiler::compile() (paper
/// Table 1 / "generation vs compile time" discussion).
struct CompileReport {
  std::string name = "compile";
  /// Pipeline stages: "discretize", "ir_build" (CSE + hoisting),
  /// "schedule", "emit", "jit" (external compiler).
  std::map<std::string, TimerStat> stage_timers;
  /// Normalized per-cell FLOPs summed over kernels, before (raw stencil
  /// RHS) and after (optimized IR body) CSE/hoisting.
  long long ops_per_cell_pre = 0;
  long long ops_per_cell_post = 0;
  /// SIMD width (doubles per lane vector) the C backend emitted with; 1 for
  /// scalar code and the interpreter backend.
  int vector_width = 1;
  /// Per-cell FLOPs after widening: packable ops amortize over the vector
  /// width, lane-serial calls (transcendentals, RNG) do not. Equals
  /// ops_per_cell_post at width 1.
  double ops_per_cell_widened = 0.0;
  std::vector<std::string> kernel_names;  ///< IR names, execution order
  /// Which rung of the degradation chain actually executes: "vector"
  /// (JIT, SIMD width > 1), "scalar" (JIT, width 1) or "interpreter".
  std::string backend_tier = "interpreter";
  /// First failure that forced a downgrade (empty when the requested
  /// backend compiled cleanly).
  std::string fallback_reason;
  /// External-compiler invocations that failed before the surviving tier.
  int fallback_attempts = 0;
  /// Kernel-cache provenance (v5 "cache" section). cache_used is false
  /// when no cache was configured; the section is emitted only when true.
  bool cache_used = false;
  bool cache_hit = false;        ///< this compile was served from the cache
  std::string cache_key;         ///< SHA-256 content address (64 hex chars)
  std::uint64_t cache_hits = 0;  ///< process-wide counters after this call
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;  ///< resident cached shared-object bytes

  void add_stage(const std::string& stage, double seconds);
  /// Symbolic-pipeline time: every stage except the external compiler.
  double generation_seconds() const;
  /// External ("jit") compiler time; 0.0 for the interpreter backend.
  double compile_seconds() const;

  Json to_json() const;
};

/// Assembles the shared report schema from raw sections. RunReport,
/// CompileReport and the bench harness all funnel through this so every
/// producer emits the same shape.
Json make_report_json(const std::string& kind, const std::string& name,
                      const std::map<std::string, TimerStat>& timers,
                      const std::map<std::string, std::uint64_t>& counters,
                      const std::map<std::string, double>& derived);

/// Writes `j` to `path` with a trailing newline; throws pfc::Error on I/O
/// failure.
void write_json(const std::string& path, const Json& j);

/// Writes raw text to `path`; throws pfc::Error on I/O failure. (The trace
/// exporter uses this for compact one-line JSON dumps.)
void write_text(const std::string& path, const std::string& text);

}  // namespace pfc::obs
