#include "pfc/obs/trace.hpp"

#include <algorithm>
#include <unordered_map>

#include "pfc/obs/report.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::obs {

namespace {

/// Recorder ids are never reused, so a stale entry in a thread's cache can
/// never alias a live recorder.
std::atomic<std::uint64_t> g_next_recorder_id{1};

}  // namespace

/// Per-thread ring of events. Created lazily on a thread's first record and
/// owned by the recorder; threads only keep a non-owning cache entry.
struct TraceRecorder::Buffer {
  int tid = 0;
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::size_t next = 0;          ///< overwrite position once full
  std::uint64_t recorded = 0;    ///< total events ever pushed

  void push(const TraceEvent& e) {
    ++recorded;
    if (ring.size() < capacity) {
      ring.push_back(e);
      return;
    }
    ring[next] = e;  // ring full: overwrite oldest
    next = (next + 1) % capacity;
  }
};

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::configure(const TraceOptions& opts, int pid) {
  PFC_REQUIRE(opts.sample_every >= 1,
              "trace: sample_every must be >= 1, got " +
                  std::to_string(opts.sample_every));
  PFC_REQUIRE(opts.max_events >= 1, "trace: max_events must be >= 1");
  opts_ = opts;
  pid_ = pid;
  epoch_ = std::chrono::steady_clock::now();
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  // One cache per thread mapping recorder id -> buffer. Entries of dead
  // recorders stay behind as inert id keys (ids are unique), bounded by the
  // number of recorders a thread ever records into.
  thread_local std::unordered_map<std::uint64_t, Buffer*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return *it->second;

  std::lock_guard<std::mutex> lock(mutex_);
  auto buf = std::make_unique<Buffer>();
  buf->tid = static_cast<int>(buffers_.size());
  buf->capacity = opts_.max_events;
  buf->ring.reserve(std::min<std::size_t>(opts_.max_events, 4096));
  buffers_.push_back(std::move(buf));
  cache[id_] = buffers_.back().get();
  return *buffers_.back();
}

void TraceRecorder::complete(const char* name, const char* cat, double ts_us,
                             double dur_us, long long step, int block) {
  if (!opts_.enabled) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.step = step;
  e.block = block;
  Buffer& b = local_buffer();
  e.tid = b.tid;
  b.push(e);
}

void TraceRecorder::instant(const char* name, const char* cat,
                            long long step, double value) {
  if (!opts_.enabled) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = now_us();
  e.step = step;
  e.value = value;
  Buffer& b = local_buffer();
  e.tid = b.tid;
  b.push(e);
}

const char* TraceRecorder::intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& known : interned_) {
    if (*known == s) return known->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

std::uint64_t TraceRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->recorded;
  return n;
}

std::uint64_t TraceRecorder::events_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t kept = 0, recorded = 0;
  for (const auto& b : buffers_) {
    kept += b->ring.size();
    recorded += b->recorded;
  }
  return recorded - std::min(recorded, kept);
}

Json TraceRecorder::to_chrome_json() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& b : buffers_) {
      all.insert(all.end(), b->ring.begin(), b->ring.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  if (all.size() > opts_.max_events) {
    // global cap: keep the newest window
    all.erase(all.begin(),
              all.begin() + static_cast<std::ptrdiff_t>(all.size() -
                                                        opts_.max_events));
  }

  Json events = Json::array();
  for (const TraceEvent& e : all) {
    Json je = Json::object()
                  .set("name", Json(e.name))
                  .set("cat", Json(e.cat))
                  .set("ph", Json(std::string(1, e.ph)))
                  .set("ts", Json(e.ts_us))
                  .set("pid", Json(pid_))
                  .set("tid", Json(e.tid));
    if (e.ph == 'X') je.set("dur", Json(e.dur_us));
    if (e.ph == 'i') je.set("s", Json("t"));  // thread-scoped instant
    Json args = Json::object();
    if (e.step >= 0) args.set("step", Json(e.step));
    if (e.block >= 0) args.set("block", Json(e.block));
    if (e.value >= 0.0) args.set("seconds", Json(e.value));
    if (!args.items().empty()) je.set("args", std::move(args));
    events.push(std::move(je));
  }
  return Json::object()
      .set("traceEvents", std::move(events))
      .set("displayTimeUnit", Json("ms"))
      .set("otherData",
           Json::object()
               .set("producer", Json("pfc::obs::trace"))
               .set("rank", Json(pid_))
               .set("dropped_events", Json(events_dropped())));
}

void TraceRecorder::write(const std::string& path) const {
  if (!opts_.enabled) return;
  write_text(path, to_chrome_json().dump(-1) + "\n");
}

std::string rank_trace_path(const std::string& path, int rank) {
  const std::string suffix = ".rank" + std::to_string(rank);
  const std::size_t slash = path.rfind('/');
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;  // no extension: append
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace pfc::obs
