// Trace timelines: a low-overhead span recorder behind the paper's
// "where does a time step go" analyses (kernel vs. ghost exchange vs.
// staggered-flux pass — Fig. 3 / Table 2 discussions).
//
// Design:
//   * recording a span is two steady_clock reads plus an append into a
//     thread-local ring buffer — no locks on the hot path, so the pool
//     workers of the backend can emit per-slab spans concurrently;
//   * buffers are drained only on flush (write()/to_chrome_json()), merged,
//     time-sorted and truncated to `max_events` (newest kept);
//   * output is chrome://tracing / Perfetto-compatible JSON ("traceEvents"
//     array of "X" complete and "i" instant events). pid encodes the rank,
//     tid the recording thread, args carry step / block id.
//
// Drivers own one TraceRecorder each and configure it from
// TraceOptions on DomainOptions; a default-constructed recorder is disabled
// and every record call is a cheap early-out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pfc/obs/json.hpp"

namespace pfc::obs {

/// Driver-level tracing knobs (lives on app::DomainOptions).
struct TraceOptions {
  bool enabled = false;
  /// Record spans only on steps where step % sample_every == 0 (1 = all).
  int sample_every = 1;
  /// Retained event cap across all threads; oldest events are dropped.
  std::size_t max_events = 1 << 20;
  std::string path = "trace.json";

  TraceOptions& enable(bool on = true) {
    enabled = on;
    return *this;
  }
  TraceOptions& every(int n) {
    sample_every = n;
    return *this;
  }
  TraceOptions& with_max_events(std::size_t n) {
    max_events = n;
    return *this;
  }
  TraceOptions& with_path(std::string p) {
    path = std::move(p);
    return *this;
  }
};

/// One recorded event. ph 'X' = complete span, 'i' = instant.
struct TraceEvent {
  const char* name = "";  ///< static string or interned by the recorder
  const char* cat = "";
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  long long step = -1;   ///< simulation step (< 0: not step-scoped)
  int block = -1;        ///< block linear id (< 0: not block-scoped)
  double value = -1.0;   ///< extra payload (args.seconds), < 0 = absent
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Applies the options and tags all events with `pid` (the rank).
  void configure(const TraceOptions& opts, int pid = 0);
  const TraceOptions& options() const { return opts_; }

  bool enabled() const { return opts_.enabled; }
  /// True when `step` falls on the sampling grid (step % sample_every == 0).
  bool sampled(long long step) const {
    return opts_.enabled &&
           (opts_.sample_every <= 1 || step % opts_.sample_every == 0);
  }

  /// Microseconds since this recorder's epoch (construction/configure).
  double now_us() const;

  /// Records a complete span. `name`/`cat` must outlive the recorder
  /// (string literals and kernel IR names owned by the model both do) or be
  /// passed through intern().
  void complete(const char* name, const char* cat, double ts_us,
                double dur_us, long long step = -1, int block = -1);
  /// Records an instant event (compile stages, health flags).
  void instant(const char* name, const char* cat, long long step = -1,
               double value = -1.0);

  /// Copies `s` into recorder-owned storage and returns a stable pointer.
  const char* intern(const std::string& s);

  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  /// Drains all thread-local buffers into one chrome://tracing document.
  Json to_chrome_json() const;
  /// to_chrome_json() serialized to `path` (no-op when disabled).
  void write(const std::string& path) const;

 private:
  struct Buffer;
  Buffer& local_buffer();

  TraceOptions opts_;
  int pid_ = 0;
  std::uint64_t id_ = 0;  ///< unique per recorder; keys thread-local lookup
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  ///< guards buffers_/interned_ registration
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: measures its lifetime and records a complete event into the
/// recorder (if any). Pass nullptr to compile the span out of a code path.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* rec, const char* name, const char* cat,
            long long step = -1, int block = -1)
      : rec_(rec != nullptr && rec->enabled() ? rec : nullptr),
        name_(name),
        cat_(cat),
        step_(step),
        block_(block),
        t0_us_(rec_ != nullptr ? rec_->now_us() : 0.0) {}

  ~TraceSpan() {
    if (rec_ != nullptr) {
      rec_->complete(name_, cat_, t0_us_, rec_->now_us() - t0_us_, step_,
                     block_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* rec_;
  const char* name_;
  const char* cat_;
  long long step_;
  int block_;
  double t0_us_;
};

/// Inserts ".rank<r>" before the extension ("trace.json" ->
/// "trace.rank2.json") so concurrent ranks never clobber one file.
std::string rank_trace_path(const std::string& path, int rank);

}  // namespace pfc::obs
