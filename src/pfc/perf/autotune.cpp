#include "pfc/perf/autotune.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pfc/obs/report.hpp"
#include "pfc/support/assert.hpp"
#include "pfc/support/sha256.hpp"
#include "pfc/support/timer.hpp"

namespace fs = std::filesystem;

namespace pfc::perf {

using Json = obs::Json;

namespace {

bool valid_width(int w) { return w == 1 || w == 2 || w == 4 || w == 8; }

bool one_of(const std::string& v, std::initializer_list<const char*> opts) {
  for (const char* o : opts) {
    if (v == o) return true;
  }
  return false;
}

const Json* require_key(const Json& j, const std::string& key,
                        const std::string& where) {
  const Json* v = j.find(key);
  PFC_REQUIRE(v != nullptr, where + ": missing key \"" + key + "\"");
  return v;
}

}  // namespace

std::string TuneCandidate::label() const {
  std::ostringstream s;
  s << "split=" << (split ? 1 : 0) << " w=" << vector_width
    << " nt=" << (streaming_stores ? 1 : 0) << " dispatch=" << dispatch
    << " blocking=" << blocking << " tile=" << blocking_tile_rows
    << " pin=" << pin;
  return s.str();
}

Json TuneCandidate::to_json() const {
  return Json::object()
      .set("split", Json(split))
      .set("vector_width", Json(double(vector_width)))
      .set("streaming_stores", Json(streaming_stores))
      .set("dispatch", Json(dispatch))
      .set("blocking", Json(blocking))
      .set("blocking_tile_rows", Json(double(blocking_tile_rows)))
      .set("pin", Json(pin));
}

TuneCandidate TuneCandidate::from_json(const Json& j,
                                       const std::string& where) {
  PFC_REQUIRE(j.is_object(), where + ": expected an object");
  for (const auto& [key, value] : j.items()) {
    (void)value;
    PFC_REQUIRE(one_of(key, {"split", "vector_width", "streaming_stores",
                             "dispatch", "blocking", "blocking_tile_rows",
                             "pin"}),
                where + ": unknown key \"" + key + "\"");
  }
  TuneCandidate c;
  c.split = require_key(j, "split", where)->boolean();
  const Json* w = require_key(j, "vector_width", where);
  PFC_REQUIRE(w->is_number() && valid_width(int(w->number())),
              where + ": vector_width must be 1, 2, 4 or 8");
  c.vector_width = int(w->number());
  c.streaming_stores = require_key(j, "streaming_stores", where)->boolean();
  c.dispatch = require_key(j, "dispatch", where)->str();
  PFC_REQUIRE(one_of(c.dispatch, {"static", "dynamic"}),
              where + ": dispatch must be \"static\" or \"dynamic\"");
  c.blocking = require_key(j, "blocking", where)->str();
  PFC_REQUIRE(one_of(c.blocking, {"off", "auto", "fixed"}),
              where + ": blocking must be \"off\", \"auto\" or \"fixed\"");
  const Json* tile = require_key(j, "blocking_tile_rows", where);
  PFC_REQUIRE(tile->is_number() && tile->number() >= 0.0,
              where + ": blocking_tile_rows must be a non-negative number");
  c.blocking_tile_rows = (long long)(tile->number());
  c.pin = require_key(j, "pin", where)->str();
  PFC_REQUIRE(one_of(c.pin, {"none", "compact", "scatter"}),
              where + ": pin must be \"none\", \"compact\" or \"scatter\"");
  return c;
}

std::vector<TuneCandidate> enumerate_candidates(const TuneOptions& o) {
  // Fixed nested loops, innermost varying fastest — the order (and thereby
  // every prior tie-break) is a pure function of TuneOptions.
  const std::vector<int> widths = [&] {
    std::vector<int> ws;
    for (int w = 1; w <= o.max_vector_width; w *= 2) ws.push_back(w);
    return ws;
  }();
  const std::vector<std::string> dispatches =
      o.multi_threaded ? std::vector<std::string>{"static", "dynamic"}
                       : std::vector<std::string>{"static"};
  const std::vector<std::string> pins =
      o.multi_threaded ? std::vector<std::string>{"none", "compact", "scatter"}
                       : std::vector<std::string>{"none"};
  // One fixed tile height: the Auto mode already sizes tiles from the
  // blocking model, Fixed probes whether a small constant beats it.
  constexpr long long kFixedTileRows = 16;

  std::vector<TuneCandidate> out;
  for (const bool split : {false, true}) {
    for (const int w : widths) {
      for (const bool nt : {false, true}) {
        if (nt && w == 1) continue;  // scalar loops ignore streaming stores
        for (const char* blocking : {"off", "auto", "fixed"}) {
          for (const std::string& dispatch : dispatches) {
            for (const std::string& pin : pins) {
              TuneCandidate c;
              c.split = split;
              c.vector_width = w;
              c.streaming_stores = nt;
              c.dispatch = dispatch;
              c.blocking = blocking;
              c.blocking_tile_rows =
                  std::string(blocking) == "fixed" ? kFixedTileRows : 0;
              c.pin = pin;
              out.push_back(std::move(c));
            }
          }
        }
      }
    }
  }
  return out;
}

TuneResult tune(const TuneOptions& o, const PriorFn& prior,
                const MeasureFn& measure) {
  PFC_REQUIRE(o.budget >= 1, "autotune: budget must be >= 1");
  Timer wall;

  std::vector<TuneCandidate> cands = enumerate_candidates(o);
  // The baseline is always position 0: measured first, wins exact ties.
  std::vector<TuneMeasurement> order;
  order.reserve(cands.size() + 1);
  order.push_back(TuneMeasurement{o.baseline, prior(o.baseline), 0.0, false});
  std::vector<TuneMeasurement> rest;
  rest.reserve(cands.size());
  for (const TuneCandidate& c : cands) {
    if (c == o.baseline) continue;
    rest.push_back(TuneMeasurement{c, prior(c), 0.0, false});
  }
  // stable_sort keeps enumeration order within equal priors — the only
  // tie-break, so the search order is reproducible run to run.
  std::stable_sort(rest.begin(), rest.end(),
                   [](const TuneMeasurement& a, const TuneMeasurement& b) {
                     return a.predicted_mlups > b.predicted_mlups;
                   });
  order.insert(order.end(), rest.begin(), rest.end());

  TuneResult r;
  r.candidates = int(order.size());
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (int(r.measured_runs) >= o.budget) break;
    order[i].measured_mlups = measure(order[i].config);
    order[i].measured = true;
    ++r.measured_runs;
    // strict >: the earlier measurement (ultimately the baseline) keeps
    // exact ties.
    if (order[i].measured_mlups > order[best_idx].measured_mlups) {
      best_idx = i;
    }
  }
  r.baseline_mlups = order[0].measured_mlups;
  r.best = order[best_idx].config;
  r.best_mlups = order[best_idx].measured_mlups;
  r.ranking = std::move(order);
  r.search_seconds = wall.seconds();
  return r;
}

std::string machine_signature(const support::Topology& t,
                              const MachineModel& m) {
  std::ostringstream s;
  s << "cpus=" << t.cpus.size() << ";cores=" << t.cores
    << ";packages=" << t.packages << ";nodes=" << t.nodes
    << ";model=" << m.name << ";freq_ghz=" << m.freq_ghz
    << ";model_cores=" << m.cores << ";simd=" << m.simd_doubles
    << ";mem_bw=" << m.mem_bw_gbytes;
  return s.str();
}

std::string tune_cache_key(const std::string& model_hash,
                           const std::string& machine_sig) {
  return support::sha256_hex(model_hash + "\n" + machine_sig + "\n" +
                             kTuneCacheSchema);
}

std::string tune_cache_path(const std::string& dir, const std::string& key) {
  return (fs::path(dir) / ("tune-" + key + ".json")).string();
}

std::optional<TuneCacheEntry> load_tuned(const std::string& dir,
                                         const std::string& key) {
  if (dir.empty()) return std::nullopt;
  std::ifstream in(tune_cache_path(dir, key));
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const Json j = Json::parse(buf.str(), &err);
  if (!err.empty() || !j.is_object()) return std::nullopt;
  const Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str() != kTuneCacheSchema) {
    return std::nullopt;  // stale revision: re-tune rather than trust it
  }
  const Json* keyj = j.find("key");
  if (keyj == nullptr || !keyj->is_string() || keyj->str() != key) {
    return std::nullopt;  // entry content does not match its address
  }
  try {
    TuneCacheEntry e;
    const Json* best = j.find("best");
    if (best == nullptr) return std::nullopt;
    e.best = TuneCandidate::from_json(*best, "tune-cache best");
    const Json* bm = j.find("best_mlups");
    const Json* bl = j.find("baseline_mlups");
    const Json* mr = j.find("measured_runs");
    const Json* ss = j.find("search_seconds");
    if (bm == nullptr || !bm->is_number() || bl == nullptr ||
        !bl->is_number() || mr == nullptr || !mr->is_number() ||
        ss == nullptr || !ss->is_number()) {
      return std::nullopt;
    }
    e.best_mlups = bm->number();
    e.baseline_mlups = bl->number();
    e.measured_runs = int(mr->number());
    e.search_seconds = ss->number();
    return e;
  } catch (const Error&) {
    return std::nullopt;  // corrupt candidate: costs a re-tune, nothing else
  }
}

void store_tuned(const std::string& dir, const std::string& key,
                 const TuneCacheEntry& entry) {
  PFC_REQUIRE(!dir.empty(), "store_tuned: empty cache directory");
  std::error_code ec;
  fs::create_directories(dir, ec);
  PFC_REQUIRE(!ec, "store_tuned: cannot create " + dir + ": " + ec.message());
  const Json j = Json::object()
                     .set("schema", Json(kTuneCacheSchema))
                     .set("key", Json(key))
                     .set("best", entry.best.to_json())
                     .set("best_mlups", Json(entry.best_mlups))
                     .set("baseline_mlups", Json(entry.baseline_mlups))
                     .set("measured_runs", Json(double(entry.measured_runs)))
                     .set("search_seconds", Json(entry.search_seconds));
  obs::write_json(tune_cache_path(dir, key), j);
}

}  // namespace pfc::perf
