// Measured autotuner over the codegen/driver knob space (ROADMAP item 3,
// paper §5's search story brought to the CPU path): the ECM/layer-condition
// model orders the candidates as a *prior*, short measured runs are the
// ground truth, and the winner persists in a per-(model, machine) tuning
// cache next to the kernel cache so a warm daemon compiles the fastest
// configuration on first submit.
//
// The layer split mirrors the rest of the repo: this file knows the knob
// space, the deterministic search order and the cache format, but cannot
// see app types — the driver-level glue (app/tuning.hpp) injects the prior
// and the measurement as std::function hooks and maps TuneCandidate onto
// SimulationOptions.
//
// Determinism guarantees (DESIGN.md §13):
//   * enumerate_candidates() is a fixed nested loop — no wall clock, no
//     randomness, no hardware probing inside the decision path;
//   * the measurement order is (baseline, then prior-descending with
//     enumeration order as the tie-break), truncated to a fixed budget;
//   * the winner is the best *measured* candidate, ties resolved toward the
//     earlier measurement — so the baseline wins exact ties and the tuned
//     configuration is never slower than the default by construction.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pfc/obs/json.hpp"
#include "pfc/perf/machine.hpp"
#include "pfc/support/topology.hpp"

namespace pfc::perf {

/// Schema tag of one persisted tuning-cache entry. Any other value (or a
/// parse failure) makes the entry stale: loads miss and the caller re-runs
/// the measured search.
inline constexpr const char* kTuneCacheSchema = "pfc-tune-v1";

/// One point of the knob space. Driver-level spellings ("static"/"dynamic",
/// "off"/"auto"/"fixed", pin-policy names) keep this layer free of app
/// enums and make the JSON form self-describing.
struct TuneCandidate {
  bool split = false;            ///< split staggered-flux kernels (φ and µ)
  int vector_width = 1;          ///< emitted SIMD width: 1/2/4/8
  bool streaming_stores = false; ///< non-temporal stores (width > 1 only)
  std::string dispatch = "static";  ///< "static" | "dynamic"
  std::string blocking = "off";     ///< "off" | "auto" | "fixed"
  long long blocking_tile_rows = 0; ///< rows for blocking == "fixed"
  std::string pin = "none";         ///< "none" | "compact" | "scatter"

  /// Canonical one-line label ("split=1 w=4 nt=0 dispatch=static
  /// blocking=auto tile=0 pin=none") — the identity two candidates are
  /// compared by and the spelling reports/caches use.
  std::string label() const;

  obs::Json to_json() const;
  /// Strict decode (unknown keys, wrong types and out-of-range widths
  /// throw pfc::Error naming `where`).
  static TuneCandidate from_json(const obs::Json& j, const std::string& where);
};

inline bool operator==(const TuneCandidate& a, const TuneCandidate& b) {
  return a.label() == b.label();
}

/// One search step: the candidate, the prior that ordered it, and (when the
/// budget reached it) its measurement.
struct TuneMeasurement {
  TuneCandidate config;
  double predicted_mlups = 0.0;
  double measured_mlups = 0.0;
  bool measured = false;
};

struct TuneOptions {
  /// Maximum measured runs, baseline included. Candidates beyond the budget
  /// are pruned by the prior alone.
  int budget = 8;
  /// Widest SIMD width to enumerate (the jit-vector tier's capability
  /// intersected with the probed ISA).
  int max_vector_width = 8;
  /// false collapses the driver placement knobs (dispatch/pin) to their
  /// single-thread defaults — they cannot matter without a pool.
  bool multi_threaded = false;
  /// The caller's own configuration: always measured first, so the winner
  /// is ≥ the default by construction.
  TuneCandidate baseline;
};

struct TuneResult {
  TuneCandidate best;
  double best_mlups = 0.0;
  double baseline_mlups = 0.0;
  std::vector<TuneMeasurement> ranking;  ///< search order; measured first
  int candidates = 0;      ///< enumerated configurations
  int measured_runs = 0;   ///< measurements actually executed
  double search_seconds = 0.0;
};

/// ECM-model MLUPS of a candidate (higher = tried earlier).
using PriorFn = std::function<double(const TuneCandidate&)>;
/// Short measured run of a candidate; returns MLUPS (ground truth).
using MeasureFn = std::function<double(const TuneCandidate&)>;

/// The fixed, deterministic candidate enumeration: split × vector_width
/// (1..max, powers of two) × streaming_stores (vector widths only) ×
/// blocking (off/auto/fixed-16) × — when multi_threaded — dispatch and pin
/// policy. Single-thread enumerations keep dispatch "static" and pin
/// "none".
std::vector<TuneCandidate> enumerate_candidates(const TuneOptions& o);

/// Runs the budgeted search: enumerate, order by (baseline, prior desc,
/// enumeration order), measure the first `budget`, pick the best measured.
/// A baseline outside the enumeration is prepended rather than lost.
TuneResult tune(const TuneOptions& o, const PriorFn& prior,
                const MeasureFn& measure);

// --- persistent per-machine tuning cache -----------------------------------

/// What persists for one (model, machine) pair.
struct TuneCacheEntry {
  TuneCandidate best;
  double best_mlups = 0.0;
  double baseline_mlups = 0.0;
  int measured_runs = 0;        ///< search cost when the entry was written
  double search_seconds = 0.0;
};

/// Deterministic signature of the machine the measurements are valid on:
/// topology extents (cpus/cores/packages/NUMA nodes after the affinity
/// mask) plus the analytic machine model's identity.
std::string machine_signature(const support::Topology& t,
                              const MachineModel& m);

/// Content address of one cache entry: SHA-256 over (model hash, machine
/// signature). Stable across runs and processes by construction.
std::string tune_cache_key(const std::string& model_hash,
                           const std::string& machine_sig);

/// File the entry lives in: `<dir>/tune-<key>.json`, beside the kernel
/// cache's shared objects.
std::string tune_cache_path(const std::string& dir, const std::string& key);

/// Loads the persisted winner. Missing file, parse failure, wrong schema or
/// a malformed candidate all return nullopt — the caller falls back to a
/// full measured search (a corrupt cache can cost time, never correctness).
std::optional<TuneCacheEntry> load_tuned(const std::string& dir,
                                         const std::string& key);

/// Atomically publishes the winner (tmp + rename, the obs::write_text
/// discipline); creates `dir` if needed. Throws pfc::Error on I/O failure.
void store_tuned(const std::string& dir, const std::string& key,
                 const TuneCacheEntry& entry);

}  // namespace pfc::perf
