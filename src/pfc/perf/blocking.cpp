#include "pfc/perf/blocking.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "pfc/perf/layer_condition.hpp"

namespace pfc::perf {

namespace {

/// Distinct (field, component) planes any chain kernel touches — each is
/// one row-sized stream the wavefront keeps live per tile row.
long long chain_stream_count(const std::vector<const ir::Kernel*>& chain) {
  std::set<std::uint64_t> touched;
  long long streams = 0;
  for (const ir::Kernel* k : chain) {
    for (const auto& f : k->fields) {
      if (touched.insert(f->id()).second) streams += f->components();
    }
  }
  return streams;
}

/// Components of fields produced by one chain kernel and read by a later
/// one — the traffic fusion keeps cache-resident.
long long internal_component_count(const std::vector<const ir::Kernel*>& chain) {
  std::set<std::uint64_t> written;
  std::set<std::uint64_t> internal;
  long long comps = 0;
  for (const ir::Kernel* k : chain) {
    for (const auto& r : k->reads) {
      if (written.count(r->id()) != 0 && internal.insert(r->id()).second) {
        comps += r->components();
      }
    }
    for (const auto& w : k->writes) written.insert(w->id());
  }
  return comps;
}

}  // namespace

BlockingPlan blocking_plan(const std::vector<const ir::Kernel*>& chain,
                           const std::array<long long, 3>& cells,
                           const MachineModel& m, int threads,
                           long long lookahead, int ghost) {
  BlockingPlan plan;
  plan.lookahead = lookahead;
  if (chain.empty()) {
    plan.reason = "empty kernel chain";
    return plan;
  }
  int dims = 1;
  for (const ir::Kernel* k : chain) dims = std::max(dims, k->dims);
  if (dims < 2) {
    plan.reason = "1-D sweep: the outer axis is the vector axis";
    return plan;
  }

  // Memory-boundary traffic per update, with and without fusion.
  for (const ir::Kernel* k : chain) {
    const auto t = layer_condition_traffic(*k, cells, m);
    if (!t.bytes_per_update.empty()) {
      plan.bytes_per_update_unfused += t.bytes_per_update.back();
    }
  }
  // Fusion credit: each internal (produced-then-consumed) component skips
  // one memory write-back plus one reload of 8 bytes per update when the
  // tile keeps it cache-resident.
  plan.bytes_per_update_fused =
      std::max(0.0, plan.bytes_per_update_unfused -
                        16.0 * double(internal_component_count(chain)));

  // Live rows per tile: tile_rows + lookahead fronts, each holding every
  // (field, component) row of N0 (x N1 in 3D) cells.
  const long long n0 = cells[0];
  const long long n1 = dims == 3 ? cells[1] : 1;
  const long long n_outer = cells[std::size_t(dims - 1)];
  const double bytes_per_row =
      double(chain_stream_count(chain)) * double(n0) * double(n1) * 8.0;

  // Budget: the last-level cache shared by the active workers, at half
  // occupancy (the other half absorbs the non-blocked streams).
  const double llc =
      m.caches.empty() ? 0.0 : double(m.caches.back().size_bytes);
  const double budget = 0.5 * llc / double(std::max(1, threads));
  if (bytes_per_row <= 0.0 || budget <= 0.0) {
    plan.reason = "no cache model to size the tile against";
    return plan;
  }

  const long long span = lookahead + 2 * std::max(0, ghost);
  long long tile = static_cast<long long>(budget / bytes_per_row) - span;
  const long long min_tile = std::max<long long>(4, lookahead + 1);
  if (tile < min_tile) {
    std::ostringstream os;
    os << "tile of " << tile << " rows (budget " << budget / 1024.0
       << " KiB / row " << bytes_per_row / 1024.0
       << " KiB) below minimum " << min_tile;
    plan.reason = os.str();
    return plan;
  }
  tile = std::min(tile, std::max<long long>(1, n_outer));
  plan.enabled = true;
  plan.tile_rows = tile;
  std::ostringstream os;
  os << "tile " << tile << " rows x " << bytes_per_row / 1024.0
     << " KiB/row fits " << budget / 1024.0 << " KiB per-worker "
     << (m.caches.empty() ? "cache" : m.caches.back().name)
     << " share (lookahead " << lookahead << ")";
  plan.reason = os.str();
  return plan;
}

}  // namespace pfc::perf
