// Temporal-blocking tile sizing driven by the layer-condition traffic
// model (DESIGN.md §11). The wavefront schedule fuses the φ and µ sweeps
// of one step over outer-axis tiles; a tile is only profitable when the
// rows it keeps live (tile + the dependency lookahead of the fused chain)
// fit in cache, so intermediate fields are consumed before they are
// evicted instead of making a round trip through memory.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "pfc/ir/kernel.hpp"
#include "pfc/perf/machine.hpp"

namespace pfc::perf {

struct BlockingPlan {
  bool enabled = false;
  /// Outer-axis tile height of the wavefront (rows advanced per front).
  long long tile_rows = 0;
  /// Dependency depth of the fused chain along the outer axis: how many
  /// rows a stage may run ahead of the final stage (max over stages of
  /// ext_hi - ext_lo, provided by the schedule builder).
  long long lookahead = 0;
  /// Modeled memory-boundary traffic (bytes per cell update, summed over
  /// the chain) without and with fusion. The fused figure credits fields
  /// produced and consumed inside the chain with staying cache-resident.
  double bytes_per_update_unfused = 0.0;
  double bytes_per_update_fused = 0.0;
  /// Human-readable sizing rationale (or why blocking is disabled).
  std::string reason;
};

/// Sizes the wavefront tile for `chain` (the kernels of one fused step, in
/// execution order) on a per-worker slab of `cells`, assuming `threads`
/// workers share the last-level cache. `lookahead` and `ghost` come from
/// the dependency analysis (app::build_wavefront). Returns a disabled plan
/// (with reason) for 1-D models or when no tile fits.
BlockingPlan blocking_plan(const std::vector<const ir::Kernel*>& chain,
                           const std::array<long long, 3>& cells,
                           const MachineModel& m, int threads,
                           long long lookahead, int ghost);

}  // namespace pfc::perf
