#include "pfc/perf/cachesim.hpp"

#include <algorithm>

#include "pfc/support/assert.hpp"

namespace pfc::perf {

CacheSim::CacheSim(std::vector<LevelConfig> levels) {
  PFC_REQUIRE(!levels.empty(), "cache sim needs at least one level");
  for (const auto& cfg : levels) {
    Level l;
    l.cfg = cfg;
    const long lines = cfg.size_bytes / cfg.line_bytes;
    PFC_REQUIRE(cfg.associativity >= 1 && lines >= cfg.associativity,
                "bad cache geometry");
    l.num_sets = int(lines / cfg.associativity);
    l.sets.assign(std::size_t(l.num_sets), {});
    levels_.push_back(std::move(l));
  }
  hits_.assign(levels_.size(), 0);
}

void CacheSim::access(std::uint64_t address) {
  ++total_;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    Level& l = levels_[li];
    const std::uint64_t line = address / std::uint64_t(l.cfg.line_bytes);
    auto& set = l.sets[std::size_t(line % std::uint64_t(l.num_sets))];
    auto it = std::find(set.begin(), set.end(), line);
    if (it != set.end()) {
      // hit: move to MRU position
      set.erase(it);
      set.insert(set.begin(), line);
      ++hits_[li];
      return;
    }
    // miss: allocate here, continue to the next level
    set.insert(set.begin(), line);
    if (static_cast<int>(set.size()) > l.cfg.associativity) set.pop_back();
  }
  ++mem_accesses_;
}

void CacheSim::reset_counters() {
  std::fill(hits_.begin(), hits_.end(), 0);
  mem_accesses_ = 0;
  total_ = 0;
}

std::vector<double> simulate_kernel_traffic(
    const ir::Kernel& k, const std::array<long long, 3>& block,
    const MachineModel& m) {
  // hierarchy from the machine model; associativity 8 throughout is close
  // enough for LRU traffic estimates
  std::vector<CacheSim::LevelConfig> cfg;
  for (const auto& c : m.caches) {
    cfg.push_back({c.size_bytes, 8, int(m.line_bytes)});
  }
  CacheSim sim(std::move(cfg));

  // realistic fzyx strides with line padding
  struct FieldGeom {
    std::uint64_t base;
    long long sy, sz, sc;
  };
  std::vector<FieldGeom> geom;
  std::uint64_t next_base = 4096;
  const long long line_doubles = m.line_bytes / 8;
  for (const auto& f : k.fields) {
    FieldGeom g;
    const long long nx_pad =
        (block[0] + 2 + line_doubles - 1) / line_doubles * line_doubles;
    g.sy = nx_pad;
    g.sz = nx_pad * (block[1] + 2);
    g.sc = g.sz * (block[2] + 2);
    g.base = next_base;
    next_base += std::uint64_t(g.sc) * std::uint64_t(f->components()) * 8 +
                 4096;
    geom.push_back(g);
  }

  // collect the per-cell access stream (reads then the stores, in program
  // order)
  struct Access {
    std::size_t field;
    std::array<int, 3> off;
    int comp;
  };
  std::vector<Access> stream;
  for (const auto& sa : k.body) {
    if (sa.level != ir::Level::Body) continue;
    for (const auto& fr : sym::field_refs(sa.assign.rhs)) {
      std::size_t fi = 0;
      for (; fi < k.fields.size(); ++fi) {
        if (k.fields[fi]->id() == fr->field()->id()) break;
      }
      stream.push_back({fi, fr->offset(), fr->component()});
    }
    if (sa.assign.lhs->kind() == sym::Kind::FieldRef) {
      const auto& fr = sa.assign.lhs;
      std::size_t fi = 0;
      for (; fi < k.fields.size(); ++fi) {
        if (k.fields[fi]->id() == fr->field()->id()) break;
      }
      stream.push_back({fi, fr->offset(), fr->component()});
    }
  }

  const auto address = [&](const Access& a, long long x, long long y,
                           long long z) {
    const auto& g = geom[a.field];
    const long long idx = (x + a.off[0]) + g.sy * (y + a.off[1]) +
                          g.sz * (z + a.off[2]) + g.sc * a.comp;
    return g.base + std::uint64_t(idx + g.sz) * 8;  // shift past ghosts
  };

  const long long zmid = std::min<long long>(2, block[2] - 1);
  // warm-up plane(s)
  for (long long z = 0; z <= zmid; ++z) {
    if (z == zmid) sim.reset_counters();
    for (long long y = 0; y < block[1]; ++y) {
      for (long long x = 0; x < block[0]; ++x) {
        for (const auto& a : stream) sim.access(address(a, x, y, z));
      }
    }
  }

  const double updates = double(block[0]) * double(block[1]);
  std::vector<double> bytes(k.fields.empty() ? 0 : m.caches.size(), 0.0);
  // traffic crossing boundary i = accesses that missed all levels <= i
  long long missed_into = sim.total_accesses();
  for (std::size_t i = 0; i < m.caches.size(); ++i) {
    missed_into -= sim.hits()[i];
    // every miss at levels <= i moves one full line across boundary i
    bytes[i] = double(missed_into) * double(m.line_bytes) / updates;
  }
  return bytes;
}

}  // namespace pfc::perf
