// Cache hierarchy simulator (paper §3.6: "two approaches ... analytical
// layer conditions or a cache hierarchy simulator"). Set-associative LRU
// levels; an access missing level k is forwarded to k+1. Used both as an
// independent data-traffic estimator for the ECM model and as a test oracle
// for the layer-condition analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "pfc/ir/kernel.hpp"
#include "pfc/perf/machine.hpp"

namespace pfc::perf {

class CacheSim {
 public:
  struct LevelConfig {
    long size_bytes;
    int associativity;
    int line_bytes = 64;
  };

  explicit CacheSim(std::vector<LevelConfig> levels);

  /// Feeds one access; loads and stores both allocate (write-allocate).
  void access(std::uint64_t address);

  /// Hits at level i (0 = fastest); misses in the last level went to memory.
  const std::vector<long long>& hits() const { return hits_; }
  long long memory_accesses() const { return mem_accesses_; }
  long long total_accesses() const { return total_; }

  void reset_counters();

 private:
  struct Level {
    LevelConfig cfg;
    int num_sets;
    // tags per set, most recently used first
    std::vector<std::vector<std::uint64_t>> sets;
  };
  std::vector<Level> levels_;
  std::vector<long long> hits_;
  long long mem_accesses_ = 0;
  long long total_ = 0;
};

/// Replays the per-cell field-access stream of a kernel over one z-plane
/// sweep of the given block (after a warm-up plane) through a cache
/// hierarchy matching `m`, and returns the measured bytes per cell update
/// crossing each boundary (same layout as TrafficPrediction).
std::vector<double> simulate_kernel_traffic(
    const ir::Kernel& k, const std::array<long long, 3>& block,
    const MachineModel& m);

}  // namespace pfc::perf
