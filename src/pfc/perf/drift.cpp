#include "pfc/perf/drift.hpp"

#include <algorithm>
#include <cmath>

#include "pfc/support/assert.hpp"

namespace pfc::perf {

double predicted_kernel_mlups(const ir::Kernel& k,
                              const std::array<long long, 3>& block,
                              const MachineModel& m, int cores,
                              int vector_width) {
  try {
    const double mlups =
        ecm_predict(k, block, m, TrafficSource::LayerCondition, vector_width)
            .mlups(m, cores);
    return std::isfinite(mlups) && mlups > 0.0 ? mlups : 0.0;
  } catch (const Error&) {
    return 0.0;  // model limitation, not a run failure
  }
}

std::map<std::string, double> predicted_mlups_by_kernel(
    const std::vector<const ir::Kernel*>& kernels,
    const std::array<long long, 3>& block, const MachineModel& m, int cores,
    int vector_width) {
  std::map<std::string, double> out;
  for (const ir::Kernel* k : kernels) {
    out[k->name] = predicted_kernel_mlups(*k, block, m, cores, vector_width);
  }
  return out;
}

void fill_model_accuracy(obs::RunReport& rep,
                         const std::map<std::string, double>& predicted_mlups,
                         long long cells_per_launch, int dims,
                         const NetworkModel& net) {
  rep.model_accuracy.clear();
  for (const auto& [name, t] : rep.kernel_timers) {
    obs::ModelAccuracy a;
    a.measured_seconds = t.seconds;
    const auto it = predicted_mlups.find(name);
    const double mlups = it != predicted_mlups.end() ? it->second : 0.0;
    if (mlups > 0.0) {
      a.predicted_seconds = obs::safe_rate(
          double(t.count) * double(cells_per_launch), mlups * 1e6);
    }
    a.ratio = obs::safe_rate(a.measured_seconds, a.predicted_seconds);
    rep.model_accuracy["kernel/" + name] = a;
  }
  if (rep.exchange_bytes > 0 || rep.exchange_seconds > 0.0) {
    obs::ModelAccuracy a;
    a.measured_seconds = rep.exchange_seconds;
    // Per step the runtime exchanges both fields over all axes and both
    // directions (messages_per_step); volume comes from the measured bytes
    // so only the latency/bandwidth model itself is under test.
    const double comm_pred =
        net.latency_s * double(messages_per_step(dims)) * double(rep.steps) +
        double(rep.exchange_bytes) / (net.bandwidth_gbytes * 1e9);
    if (rep.overlap.enabled) {
      // The overlapped step hides wire time behind interior compute; the
      // measured exchange timer only sees the exposed part, so the honest
      // prediction is what max(T_interior, T_comm) leaves uncovered (with
      // the residual floor the Table 2 model also uses).
      rep.overlap.hidden_seconds =
          std::min(rep.overlap.interior_seconds, comm_pred);
      rep.overlap.hidden_fraction = std::clamp(
          obs::safe_rate(rep.overlap.hidden_seconds, comm_pred), 0.0, 1.0);
      a.predicted_seconds =
          std::max(comm_pred - rep.overlap.interior_seconds,
                   comm_pred * net.overlap_residual);
    } else {
      a.predicted_seconds = comm_pred;
    }
    a.ratio = obs::safe_rate(a.measured_seconds, a.predicted_seconds);
    rep.model_accuracy["exchange"] = a;
  }
}

}  // namespace pfc::perf
