// Model-vs-measured drift tracking (paper Fig. 2 / Table 2 validation, run
// on every simulation instead of only in the bench harness): compares the
// ECM-predicted per-kernel time and the network-model-predicted exchange
// time against the measured timers of a RunReport and fills its
// `model_accuracy` section.
//
// Drivers cache the per-kernel ECM predictions once at construction (block
// geometry and thread count are fixed there), so report() only does a few
// divisions per kernel.
#pragma once

#include <map>
#include <string>

#include "pfc/ir/kernel.hpp"
#include "pfc/obs/report.hpp"
#include "pfc/perf/ecm.hpp"
#include "pfc/perf/netmodel.hpp"

namespace pfc::perf {

/// ECM-predicted MLUP/s of one kernel at `block` on `cores` threads.
/// `vector_width` is the SIMD width of the generated code (0 = machine
/// width, see ecm_predict). Returns 0.0 (meaning "no prediction") instead
/// of throwing if the model cannot handle the kernel, so drift tracking
/// never kills a run.
double predicted_kernel_mlups(const ir::Kernel& k,
                              const std::array<long long, 3>& block,
                              const MachineModel& m, int cores,
                              int vector_width = 0);

/// Convenience: predictions for a set of kernels keyed by IR name.
std::map<std::string, double> predicted_mlups_by_kernel(
    const std::vector<const ir::Kernel*>& kernels,
    const std::array<long long, 3>& block, const MachineModel& m, int cores,
    int vector_width = 0);

/// Fills rep.model_accuracy from cached per-kernel predictions and the
/// measured kernel timers:
///   predicted_seconds = launches * cells_per_launch / (MLUP/s * 1e6)
///   ratio             = measured / predicted  (safe_rate-guarded)
/// Kernels without a prediction get predicted == ratio == 0. When the run
/// exchanged ghost bytes, an "exchange" entry compares the measured
/// exchange time with the network model's latency + bandwidth terms.
void fill_model_accuracy(obs::RunReport& rep,
                         const std::map<std::string, double>& predicted_mlups,
                         long long cells_per_launch, int dims,
                         const NetworkModel& net = {});

}  // namespace pfc::perf
