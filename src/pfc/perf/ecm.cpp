#include "pfc/perf/ecm.hpp"

#include <cmath>

#include "pfc/perf/cachesim.hpp"

namespace pfc::perf {

double EcmPrediction::cycles_single_core() const {
  // non-overlapping ECM composition: data transfers serialize with each
  // other; in-core execution overlaps with them only partially. We use the
  // pessimistic-but-robust max(Tcomp, sum Tdata) + small overlap correction.
  double data = 0;
  for (double t : t_data) data += t;
  return std::max(t_comp, data);
}

double EcmPrediction::mlups(const MachineModel& m, int cores) const {
  const double hz = m.freq_ghz * 1e9;
  const double single = double(m.simd_doubles) /
                        (cycles_single_core() / hz);  // updates/s
  // linear scaling until the memory boundary saturates
  const double scaled = single * double(cores);
  if (t_mem <= 0) return scaled / 1e6;
  const double mem_roof = double(m.simd_doubles) / (t_mem / hz);
  return std::min(scaled, mem_roof) / 1e6;
}

int EcmPrediction::saturation_cores(const MachineModel& m) const {
  (void)m;
  if (t_mem <= 0) return 1 << 20;
  return int(std::ceil(cycles_single_core() / t_mem));
}

EcmPrediction ecm_predict(const ir::Kernel& k,
                          const std::array<long long, 3>& block,
                          const MachineModel& m, TrafficSource source,
                          int vector_width) {
  EcmPrediction p;

  // --- in-core execution: instruction throughput of the vectorized body ---
  const ir::OpCounts ops = ir::count_ops(k);
  // per SIMD iteration (8 updates), one vector instruction per scalar op
  double t = double(ops.adds) * m.add_rtp + double(ops.muls) * m.mul_rtp +
             double(ops.divs) * m.div_rtp + double(ops.sqrts) * m.sqrt_rtp +
             double(ops.rsqrts) * m.rsqrt_rtp +
             double(ops.blends) * m.blend_rtp +
             double(ops.transcendental) * 20.0 +
             double(ops.rng_calls) * 40.0;
  // L1 load/store port pressure
  t = std::max(t, double(ops.loads) * m.load_rtp +
                      double(ops.stores) * m.store_rtp);
  // Code emitted at less than the machine's full SIMD width needs
  // simd_doubles/width instructions to produce one cache line of results.
  const int width = vector_width <= 0 ? m.simd_doubles : vector_width;
  t *= double(m.simd_doubles) / double(width);
  p.t_comp = t;

  // --- data transfers ---
  std::vector<double> bytes;
  if (source == TrafficSource::LayerCondition) {
    bytes = layer_condition_traffic(k, block, m).bytes_per_update;
  } else {
    bytes = simulate_kernel_traffic(k, block, m);
  }
  const double hz = m.freq_ghz * 1e9;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const double bytes_per_cl = bytes[i] * double(m.simd_doubles);
    double cycles;
    if (i + 1 < bytes.size()) {
      // inter-cache: lines at the level's per-line cost
      cycles = bytes_per_cl / double(m.line_bytes) *
               m.caches[i + 1].cycles_per_line;
    } else {
      // memory boundary: limited by measured bandwidth
      cycles = bytes_per_cl / (m.mem_bw_gbytes * 1e9) * hz;
    }
    p.t_data.push_back(cycles);
  }
  if (!p.t_data.empty()) p.t_mem = p.t_data.back();
  return p;
}

}  // namespace pfc::perf
