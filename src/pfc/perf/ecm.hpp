// The Execution-Cache-Memory model (paper §3.6, Stengel et al. / Kerncraft):
// predicts single-core cycles per cache line of results (8 lattice updates)
// from an in-core execution estimate plus the data-transfer times through
// the memory hierarchy, and multi-core scaling up to memory-bandwidth
// saturation.
#pragma once

#include "pfc/ir/opcount.hpp"
#include "pfc/perf/layer_condition.hpp"

namespace pfc::perf {

enum class TrafficSource { LayerCondition, CacheSimulator };

struct EcmPrediction {
  double t_comp = 0;            ///< in-core cycles per 8 updates
  std::vector<double> t_data;   ///< transfer cycles per boundary
  double t_mem = 0;             ///< the memory-boundary share (last entry)

  double cycles_single_core() const;
  /// MLUP/s for `cores` active cores on one socket.
  double mlups(const MachineModel& m, int cores) const;
  /// cores needed to saturate memory bandwidth (paper: µ-split ~32,
  /// µ-full ~83)
  int saturation_cores(const MachineModel& m) const;
};

/// Builds the ECM prediction for one kernel at the given block size.
/// `vector_width` is the SIMD width (doubles) the generated code actually
/// uses: a width-w loop needs simd_doubles/w instructions per cache line of
/// results, so t_comp scales accordingly. 0 (default) assumes the machine's
/// full width — the seed model's behavior.
EcmPrediction ecm_predict(const ir::Kernel& k,
                          const std::array<long long, 3>& block,
                          const MachineModel& m,
                          TrafficSource source = TrafficSource::LayerCondition,
                          int vector_width = 0);

}  // namespace pfc::perf
