#include "pfc/perf/evotune.hpp"

#include <algorithm>

#include "pfc/ir/passes.hpp"
#include "pfc/ir/schedule.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::perf {

namespace {

/// Small deterministic PRNG (xorshift*), independent of std::rand state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed * 2685821657736338717ull + 1) {}
  std::uint64_t next() {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    return s_ * 2685821657736338717ull;
  }
  int uniform(int lo, int hi) {  // inclusive
    return lo + int(next() % std::uint64_t(hi - lo + 1));
  }
  bool coin() { return (next() & 1) != 0; }

 private:
  std::uint64_t s_;
};

TuneGenome random_genome(Rng& rng) {
  TuneGenome g;
  g.schedule = rng.coin();
  g.remat = rng.coin();
  g.fences = rng.coin();
  g.fast_math = rng.coin();
  g.beam_width = std::size_t(rng.uniform(1, 32));
  g.remat_max_cost = std::size_t(rng.uniform(1, 6));
  g.remat_max_uses = std::size_t(rng.uniform(1, 8));
  g.fence_stride = std::size_t(rng.uniform(8, 64));
  return g;
}

TuneGenome mutate(TuneGenome g, Rng& rng) {
  switch (rng.uniform(0, 7)) {
    case 0: g.schedule = !g.schedule; break;
    case 1: g.remat = !g.remat; break;
    case 2: g.fences = !g.fences; break;
    case 3: g.fast_math = !g.fast_math; break;
    case 4: g.beam_width = std::size_t(rng.uniform(1, 32)); break;
    case 5: g.remat_max_cost = std::size_t(rng.uniform(1, 6)); break;
    case 6: g.remat_max_uses = std::size_t(rng.uniform(1, 8)); break;
    case 7: g.fence_stride = std::size_t(rng.uniform(8, 64)); break;
  }
  return g;
}

TuneGenome crossover(const TuneGenome& a, const TuneGenome& b, Rng& rng) {
  TuneGenome g;
  g.schedule = rng.coin() ? a.schedule : b.schedule;
  g.remat = rng.coin() ? a.remat : b.remat;
  g.fences = rng.coin() ? a.fences : b.fences;
  g.fast_math = rng.coin() ? a.fast_math : b.fast_math;
  g.beam_width = rng.coin() ? a.beam_width : b.beam_width;
  g.remat_max_cost = rng.coin() ? a.remat_max_cost : b.remat_max_cost;
  g.remat_max_uses = rng.coin() ? a.remat_max_uses : b.remat_max_uses;
  g.fence_stride = rng.coin() ? a.fence_stride : b.fence_stride;
  return g;
}

}  // namespace

GpuKernelStats evaluate_genome(const ir::Kernel& k, const TuneGenome& g,
                               const GpuModel& gpu, double cells) {
  return evaluate_gpu_kernel(k, g, gpu, cells);
}

TuneResult evolve_transform_sequence(const ir::Kernel& k, const GpuModel& gpu,
                                     const TuneOptions& opts) {
  PFC_REQUIRE(opts.population >= 2 && opts.elite >= 1 &&
                  opts.elite < opts.population,
              "bad evolution parameters");
  Rng rng(opts.seed);

  struct Scored {
    TuneGenome genome;
    GpuKernelStats stats;
  };
  std::vector<Scored> pop;
  TuneResult result;

  const auto score = [&](const TuneGenome& g) {
    ++result.evaluations;
    return Scored{g, evaluate_genome(k, g, gpu, opts.cells)};
  };

  // seed the population with the identity genome plus random ones
  pop.push_back(score(TuneGenome{}));
  for (int i = 1; i < opts.population; ++i) {
    pop.push_back(score(random_genome(rng)));
  }

  for (int gen = 0; gen < opts.generations; ++gen) {
    std::sort(pop.begin(), pop.end(), [](const Scored& a, const Scored& b) {
      return a.stats.runtime_ms < b.stats.runtime_ms;
    });
    result.history_ms.push_back(pop.front().stats.runtime_ms);

    std::vector<Scored> next(pop.begin(), pop.begin() + opts.elite);
    while (static_cast<int>(next.size()) < opts.population) {
      const Scored& pa = pop[std::size_t(rng.uniform(0, opts.elite - 1))];
      const Scored& pb = pop[std::size_t(
          rng.uniform(0, int(pop.size()) - 1))];
      TuneGenome child = crossover(pa.genome, pb.genome, rng);
      if (rng.coin()) child = mutate(child, rng);
      next.push_back(score(child));
    }
    pop = std::move(next);
  }

  std::sort(pop.begin(), pop.end(), [](const Scored& a, const Scored& b) {
    return a.stats.runtime_ms < b.stats.runtime_ms;
  });
  result.history_ms.push_back(pop.front().stats.runtime_ms);
  result.best = pop.front().genome;
  result.best_stats = pop.front().stats;
  return result;
}

}  // namespace pfc::perf
