// Evolutionary tuning of the GPU transformation sequence (paper §3.5):
// "the effects of multiple transformations do not add up linearly ... to
// deal with this non-convex, multi-dimensional, non-smooth fitness
// landscape, we use an evolutionary optimization algorithm to tune a
// sequence of transformations with their parameters for each kernel."
//
// Genome: the full transformation configuration (schedule on/off + beam
// width, rematerialization on/off + cost/use thresholds, fences on/off +
// stride, fast math). Fitness: the modelled kernel runtime.
#pragma once

#include "pfc/perf/gpu_model.hpp"

namespace pfc::perf {

/// The genome is exactly the transformation configuration (including the
/// parameterized thresholds of the passes).
using TuneGenome = GpuTransformConfig;

struct TuneOptions {
  int population = 12;
  int generations = 8;
  int elite = 3;           ///< genomes kept unchanged per generation
  std::uint64_t seed = 1;
  double cells = 64.0 * 64 * 64;
};

struct TuneResult {
  TuneGenome best;
  GpuKernelStats best_stats;
  /// best fitness per generation (monotone non-increasing runtime)
  std::vector<double> history_ms;
  int evaluations = 0;
};

/// Evaluates a genome: applies its transformations and runs the GPU model.
GpuKernelStats evaluate_genome(const ir::Kernel& k, const TuneGenome& g,
                               const GpuModel& gpu, double cells);

/// Runs the evolutionary search. Deterministic for a fixed seed.
TuneResult evolve_transform_sequence(const ir::Kernel& k, const GpuModel& gpu,
                                     const TuneOptions& opts = {});

}  // namespace pfc::perf
