#include "pfc/perf/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "pfc/perf/layer_condition.hpp"

namespace pfc::perf {

GpuKernelStats evaluate_gpu_kernel(ir::Kernel kernel,
                                   const GpuTransformConfig& cfg,
                                   const GpuModel& gpu, double cells) {
  GpuKernelStats st;

  // --- apply the transformation sequence -------------------------------
  if (cfg.remat) {
    ir::rematerialize(kernel, {.max_cost = cfg.remat_max_cost,
                               .max_uses = cfg.remat_max_uses});
  }
  if (cfg.schedule) {
    ir::ScheduleOptions so;
    so.beam_width = cfg.beam_width;
    ir::schedule_min_register(kernel, so);
  }
  if (cfg.fences) ir::insert_thread_fences(kernel, cfg.fence_stride);

  // --- register model ----------------------------------------------------
  st.analysis_live = ir::max_live_temps(kernel);
  st.analysis_registers = int(st.analysis_live) * 2;  // doubles = 2x32 bit

  // The compiler's own scheduling inflates pressure: it hoists loads and
  // reorders aggressively. Fences restrain that (paper: "reduces the amount
  // of reordering of instructions by the compiler"); an explicit good
  // schedule is partially preserved ("we assume some of this order is
  // preserved in the internal representation of nvcc").
  // calibrated against the paper's Fig. 2 (right) behaviour: untransformed
  // kernels spill, rescheduling alone reaches < 256, fences push further
  double inflation = 1.45;
  if (cfg.schedule) inflation -= 0.68;
  if (cfg.fences) inflation -= 0.25;
  inflation = std::max(inflation, 0.5);
  const int raw = int(std::lround(16.0 + double(st.analysis_registers) *
                                             inflation));
  st.nvcc_registers = std::min(raw, gpu.max_regs_per_thread);
  st.spills = raw > gpu.max_regs_per_thread;

  // --- occupancy -----------------------------------------------------------
  const int per_thread = std::max(32, st.nvcc_registers);
  int resident =
      int(std::min<long>(gpu.threads_per_sm, gpu.regs_per_sm / per_thread));
  resident = resident / gpu.warp_size * gpu.warp_size;  // whole warps
  st.occupancy = double(resident) / double(gpu.threads_per_sm);

  // --- runtime roofline ---------------------------------------------------
  const ir::OpCounts ops = ir::count_ops(kernel);
  double flops = double(ops.adds + ops.muls + ops.blends) +
                 double(ops.rng_calls) * 40.0 +
                 double(ops.transcendental) * 20.0;
  if (cfg.fast_math) {
    // fdividef / frsqrt / fsqrt in single precision: roughly 4x cheaper
    flops += 4.0 * double(ops.divs) + 2.5 * double(ops.sqrts) +
             1.0 * double(ops.rsqrts);
  } else {
    flops += 16.0 * double(ops.divs) + 10.0 * double(ops.sqrts) +
             2.0 * double(ops.rsqrts);
  }
  // memory traffic: compulsory streams only (GPU caches serve the stencil
  // neighbourhood reuse just like the CPU hierarchy)
  const StreamInfo streams = analyze_streams(kernel);
  const double bytes =
      8.0 * double(streams.compulsory_streams) + 16.0 * streams.store_streams;

  const double t_flop =
      cells * flops / (gpu.dp_gflops * gpu.achievable_dp_fraction * 1e9);
  const double t_mem = cells * bytes / (gpu.mem_bw_gbytes * 1e9);
  double t = std::max(t_flop, t_mem);

  // latency hiding degrades below the critical occupancy
  const double hiding =
      std::min(1.0, st.occupancy / gpu.latency_hiding_occupancy);
  t /= std::max(hiding, 0.05);
  if (st.spills) t *= gpu.spill_penalty;

  st.runtime_ms = t * 1e3;
  // utilizations reported against raw peaks (as nvprof does)
  st.dp_utilization = t_flop * gpu.achievable_dp_fraction / t;
  st.mem_utilization = t_mem / t;
  return st;
}

double gpu_step_mlups(const std::vector<ir::Kernel>& kernels,
                      const GpuTransformConfig& cfg, const GpuModel& gpu,
                      const std::array<long long, 3>& block) {
  const double cells =
      double(block[0]) * double(block[1]) * double(block[2]);
  double seconds = 0;
  for (const auto& k : kernels) {
    seconds += evaluate_gpu_kernel(k, cfg, gpu, cells).runtime_ms * 1e-3;
  }
  return cells / seconds / 1e6;
}

}  // namespace pfc::perf
