// GPU performance substrate (DESIGN.md §2): analytic register / occupancy /
// runtime model of the CUDA backend's kernels on a P100-class device.
//
// This reproduces the *mechanisms* behind the paper's Fig. 2 (right) and
// §6.2: the register-minimizing schedule removes spilling (+50 %), and the
// combination with rematerialization and thread fences pushes the count
// below 128, doubling occupancy for a total 2x; approximate divisions and
// square roots buy another 25–35 % on division-heavy µ kernels.
#pragma once

#include "pfc/ir/opcount.hpp"
#include "pfc/ir/passes.hpp"
#include "pfc/ir/schedule.hpp"
#include "pfc/perf/machine.hpp"

namespace pfc::perf {

/// The GPU register transformation sequence under evaluation.
struct GpuTransformConfig {
  bool schedule = false;   ///< Kessler beam scheduling ("sched")
  bool remat = false;      ///< rematerialize cheap temporaries ("dupl")
  bool fences = false;     ///< __threadfence() reordering barriers ("fence")
  bool fast_math = false;  ///< approximate div/sqrt intrinsics
  std::size_t beam_width = 20;
  std::size_t remat_max_cost = 3;   ///< rematerialization thresholds
  std::size_t remat_max_uses = 4;
  std::size_t fence_stride = 32;    ///< statements between fences
};

struct GpuKernelStats {
  std::size_t analysis_live = 0;   ///< alive intermediates (x2 = registers)
  int analysis_registers = 0;      ///< live * 2 (doubles = 2x 32-bit regs)
  int nvcc_registers = 0;          ///< modelled compiler allocation
  bool spills = false;
  double occupancy = 0.0;          ///< fraction of max resident threads
  double runtime_ms = 0.0;         ///< for the given domain
  double dp_utilization = 0.0;     ///< fraction of peak DP throughput
  double mem_utilization = 0.0;    ///< fraction of peak bandwidth
};

/// Applies the transformation sequence to (a copy of) the kernel and
/// evaluates the model for a domain of `cells` lattice cells.
GpuKernelStats evaluate_gpu_kernel(ir::Kernel kernel,
                                   const GpuTransformConfig& cfg,
                                   const GpuModel& gpu, double cells);

/// MLUP/s of one full time step (all kernels) on one GPU.
double gpu_step_mlups(const std::vector<ir::Kernel>& kernels,
                      const GpuTransformConfig& cfg, const GpuModel& gpu,
                      const std::array<long long, 3>& block);

}  // namespace pfc::perf
