#include "pfc/perf/layer_condition.hpp"

#include <cmath>
#include <set>
#include <tuple>

namespace pfc::perf {

StreamInfo analyze_streams(const ir::Kernel& k) {
  StreamInfo s;
  // key: (field id, component, y, z) — the x offset only shifts within a
  // line and never creates a new stream
  std::set<std::tuple<std::uint64_t, int, int, int>> yz_streams;
  std::set<std::tuple<std::uint64_t, int, int>> z_streams;
  std::set<std::pair<std::uint64_t, int>> fields_read, fields_written;

  for (const auto& sa : k.body) {
    for (const auto& fr : sym::field_refs(sa.assign.rhs)) {
      const auto id = fr->field()->id();
      yz_streams.emplace(id, fr->component(), fr->offset()[1],
                         fr->offset()[2]);
      z_streams.emplace(id, fr->component(), fr->offset()[2]);
      fields_read.emplace(id, fr->component());
    }
    if (sa.assign.lhs->kind() == sym::Kind::FieldRef) {
      fields_written.emplace(sa.assign.lhs->field()->id(),
                             sa.assign.lhs->component());
    }
  }
  s.total_read_streams = static_cast<int>(yz_streams.size());
  s.per_layer_streams = static_cast<int>(z_streams.size());
  s.compulsory_streams = static_cast<int>(fields_read.size());
  s.store_streams = static_cast<int>(fields_written.size());

  // 3D LC: all z-layers touched by the stencil must stay resident while the
  // sweep advances one z step -> one N^2 plane (8 B doubles) per distinct
  // (field, comp, z) offset; stores add their own planes (write-allocate).
  s.layer3d_bytes_per_n2 =
      8L * (long(s.per_layer_streams) + long(s.store_streams));
  // 2D LC: rows of the current and neighbouring y offsets must stay in
  // cache -> one N row per distinct (field, comp, y, z) offset.
  s.layer2d_bytes_per_n =
      8L * (long(s.total_read_streams) + long(s.store_streams));
  return s;
}

TrafficPrediction layer_condition_traffic(
    const ir::Kernel& k, const std::array<long long, 3>& block,
    const MachineModel& m) {
  const StreamInfo s = analyze_streams(k);
  TrafficPrediction tp;

  const double n = double(block[0]);  // assume near-cubic inner sizes
  // write traffic: write-allocate + write-back at every level
  const double store_bytes = 16.0 * s.store_streams;

  for (const auto& level : m.caches) {
    // what reuse survives in a cache of this size (half usable: the rest is
    // working set of other data / replacement imperfection)?
    const double usable = double(level.size_bytes) * 0.5;
    double read_bytes;
    if (double(s.layer3d_bytes_per_n2) * n * n <= usable) {
      // full stencil reuse: each value loaded once from below
      read_bytes = 8.0 * s.compulsory_streams;
    } else if (double(s.layer2d_bytes_per_n) * n <= usable) {
      // rows reused within a plane, z-neighbours reloaded
      read_bytes = 8.0 * s.per_layer_streams;
    } else {
      // only in-row reuse
      read_bytes = 8.0 * s.total_read_streams;
    }
    tp.bytes_per_update.push_back(read_bytes + store_bytes);
  }

  if (s.layer3d_bytes_per_n2 > 0 && !m.caches.empty()) {
    // paper sizes blocks against L2 (index 1 if present, else last)
    const auto& lc_cache =
        m.caches.size() > 1 ? m.caches[1] : m.caches.back();
    tp.max_block_for_3d_lc = long(std::sqrt(
        double(lc_cache.size_bytes) / double(s.layer3d_bytes_per_n2)));
  }
  return tp;
}

}  // namespace pfc::perf
