// Layer-condition analysis (paper §3.6 / Kerncraft): given a kernel's
// field-access pattern and the inner loop lengths, decide for each cache
// level which reuse distance fits, and derive the data volume that must
// cross each memory-hierarchy boundary per cell update.
#pragma once

#include <array>

#include "pfc/ir/kernel.hpp"
#include "pfc/perf/machine.hpp"

namespace pfc::perf {

/// Stream structure of a kernel: how many independent read streams exist at
/// each reuse level.
struct StreamInfo {
  /// one entry per (field, component): data for the classification
  int total_read_streams = 0;     ///< distinct (field, comp, y, z) offsets
  int per_layer_streams = 0;      ///< distinct (field, comp, z) offsets
  int compulsory_streams = 0;     ///< distinct (field, comp) pairs read
  int store_streams = 0;          ///< distinct (field, comp) written
  /// cache demand (bytes) for the 3D layer condition with inner sizes N:
  /// demand = layer_bytes_per_n2 * N^2
  long layer3d_bytes_per_n2 = 0;
  /// demand for the 2D layer condition: demand = layer2d_bytes_per_n * N
  long layer2d_bytes_per_n = 0;
};

StreamInfo analyze_streams(const ir::Kernel& k);

/// Bytes crossing each hierarchy boundary per lattice-cell update.
/// boundaries[0] = L1<-L2, boundaries[1] = L2<-L3, ..., last = <-memory.
struct TrafficPrediction {
  std::vector<double> bytes_per_update;  ///< one per cache level
  /// largest inner block size N (cubic blocking) that still satisfies the
  /// 3D layer condition in the given cache (paper: N < 67 for 1 MB L2)
  long max_block_for_3d_lc = 0;
};

TrafficPrediction layer_condition_traffic(
    const ir::Kernel& k, const std::array<long long, 3>& block,
    const MachineModel& m);

}  // namespace pfc::perf
