#include "pfc/perf/machine.hpp"

namespace pfc::perf {

MachineModel MachineModel::skylake_sp() {
  MachineModel m;
  m.name = "Skylake-SP (SuperMUC-NG socket)";
  m.freq_ghz = 2.3;  // AVX-512 heavy frequency
  m.cores = 24;
  m.simd_doubles = 8;
  m.caches = {
      {"L1", 32 * 1024, 2.0},
      {"L2", 1024 * 1024, 4.0},
      {"L3", 33 * 1024 * 1024 / 24, 8.0},  // non-inclusive victim, per core
  };
  m.mem_bw_gbytes = 110.0;
  return m;
}

GpuModel GpuModel::p100() {
  GpuModel g;
  g.name = "Tesla P100 (Piz Daint)";
  g.dp_gflops = 4700.0;
  g.mem_bw_gbytes = 550.0;
  return g;
}

}  // namespace pfc::perf
