#include "pfc/perf/machine.hpp"

#include <cstdlib>

#include "pfc/support/assert.hpp"

namespace pfc::perf {

MachineModel MachineModel::skylake_sp() {
  MachineModel m;
  m.name = "Skylake-SP (SuperMUC-NG socket)";
  m.freq_ghz = 2.3;  // AVX-512 heavy frequency
  m.cores = 24;
  m.simd_doubles = 8;
  m.caches = {
      {"L1", 32 * 1024, 2.0},
      {"L2", 1024 * 1024, 4.0},
      {"L3", 33 * 1024 * 1024 / 24, 8.0},  // non-inclusive victim, per core
  };
  m.mem_bw_gbytes = 110.0;
  return m;
}

MachineModel MachineModel::haswell_ep() {
  MachineModel m;
  m.name = "Haswell-EP (Piz Daint multicore socket)";
  m.freq_ghz = 2.6;
  m.cores = 12;
  m.simd_doubles = 4;  // AVX2
  m.add_rtp = 0.5;
  m.mul_rtp = 0.5;
  m.div_rtp = 16.0;    // vdivpd ymm
  m.sqrt_rtp = 21.0;
  m.rsqrt_rtp = 5.0;   // no vrsqrt14pd: NR from vrsqrtps
  m.blend_rtp = 0.5;
  m.load_rtp = 0.5;
  m.store_rtp = 1.0;
  m.caches = {
      {"L1", 32 * 1024, 2.0},
      {"L2", 256 * 1024, 2.0},
      {"L3", 30 * 1024 * 1024 / 12, 6.0},
  };
  m.mem_bw_gbytes = 60.0;
  return m;
}

MachineModel MachineModel::zen2() {
  MachineModel m;
  m.name = "Zen 2 (EPYC 7742 socket)";
  m.freq_ghz = 2.25;
  m.cores = 64;
  m.simd_doubles = 4;  // AVX2 datapath
  m.add_rtp = 0.5;
  m.mul_rtp = 0.5;
  m.div_rtp = 13.0;
  m.sqrt_rtp = 20.0;
  m.rsqrt_rtp = 5.0;
  m.blend_rtp = 0.5;
  m.load_rtp = 0.5;
  m.store_rtp = 1.0;
  m.caches = {
      {"L1", 32 * 1024, 2.0},
      {"L2", 512 * 1024, 3.0},
      {"L3", 16 * 1024 * 1024 / 4, 8.0},  // 16 MiB per 4-core CCX
  };
  m.mem_bw_gbytes = 190.0;  // 8 channels DDR4-3200
  return m;
}

MachineModel MachineModel::by_name(const std::string& key) {
  if (key == "skylake_sp" || key == "skx") return skylake_sp();
  if (key == "haswell_ep" || key == "hsw") return haswell_ep();
  if (key == "zen2" || key == "rome") return zen2();
  throw Error("unknown machine model '" + key +
              "' (valid: skylake_sp/skx, haswell_ep/hsw, zen2/rome)");
}

MachineModel default_machine() {
  const char* env = std::getenv("PFC_MACHINE");
  if (env != nullptr && *env != '\0') return MachineModel::by_name(env);
  return MachineModel::skylake_sp();
}

GpuModel GpuModel::p100() {
  GpuModel g;
  g.name = "Tesla P100 (Piz Daint)";
  g.dp_gflops = 4700.0;
  g.mem_bw_gbytes = 550.0;
  return g;
}

}  // namespace pfc::perf
