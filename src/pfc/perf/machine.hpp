// Machine models for the automatic performance modelling layer (paper §3.6).
// The CPU description follows the ECM model's needs: instruction reciprocal
// throughputs for SIMD double-precision operations, cache sizes and
// inter-level bandwidths; defaults approximate the Skylake-SP sockets of
// SuperMUC-NG. The GPU description covers what the register/occupancy model
// needs; defaults approximate the P100 of Piz Daint.
#pragma once

#include <string>
#include <vector>

namespace pfc::perf {

struct CacheLevel {
  std::string name;
  long size_bytes = 0;
  /// cycles to move one 64-byte line from this level into the next-faster
  /// one (per-core view)
  double cycles_per_line = 2.0;
};

struct MachineModel {
  std::string name;
  double freq_ghz = 2.3;
  int cores = 24;          ///< per socket
  int simd_doubles = 8;    ///< AVX-512
  long line_bytes = 64;

  /// reciprocal throughput in cycles per SIMD instruction (8 doubles)
  double add_rtp = 0.5;    ///< 2 FMA ports
  double mul_rtp = 0.5;
  double div_rtp = 8.0;    ///< vdivpd zmm
  double sqrt_rtp = 12.0;
  double rsqrt_rtp = 1.0;  ///< vrsqrt14pd + one Newton step
  double blend_rtp = 0.5;
  double load_rtp = 0.5;   ///< 2 loads/cycle
  double store_rtp = 1.0;

  /// caches fastest-to-slowest, then main memory bandwidth
  std::vector<CacheLevel> caches;
  double mem_bw_gbytes = 110.0;  ///< per socket, saturated

  /// Skylake-SP (Xeon Platinum 8174-like, SuperMUC-NG node socket).
  static MachineModel skylake_sp();
  /// Haswell-EP (Xeon E5-2690 v3-like, Piz Daint multicore socket): AVX2,
  /// so 4-wide doubles and no dedicated rsqrt14pd.
  static MachineModel haswell_ep();
  /// Zen 2 (EPYC 7742-like socket): AVX2 with 8 memory channels.
  static MachineModel zen2();

  /// Looks a CPU preset up by key: "skylake_sp" (also "skx"), "haswell_ep"
  /// (also "hsw"), "zen2" (also "rome"). Throws pfc::Error on unknown keys,
  /// listing the valid ones.
  static MachineModel by_name(const std::string& key);
};

/// The machine the drivers model against when the caller does not pick one:
/// the PFC_MACHINE env var interpreted via by_name(), else skylake_sp().
/// An invalid PFC_MACHINE value throws (surfacing the typo) rather than
/// silently falling back.
MachineModel default_machine();

struct GpuModel {
  std::string name;
  double dp_gflops = 4700.0;    ///< peak double precision
  double mem_bw_gbytes = 550.0; ///< HBM2 effective
  int max_regs_per_thread = 255;
  long regs_per_sm = 65536;     ///< 32-bit registers
  int threads_per_sm = 2048;
  int warp_size = 32;
  double spill_penalty = 1.5;   ///< runtime factor once registers spill
  /// fraction of peak DP reachable by real stencil code (imperfect FMA
  /// pairing, integer address arithmetic)
  double achievable_dp_fraction = 0.7;
  /// occupancy needed to hide latency fully; below this, performance scales
  /// roughly linearly with occupancy
  double latency_hiding_occupancy = 0.25;

  /// Tesla P100 (Piz Daint).
  static GpuModel p100();
};

}  // namespace pfc::perf
