#include "pfc/perf/netmodel.hpp"

#include <algorithm>
#include <cmath>

namespace pfc::perf {

double ghost_bytes_per_step(const std::array<long long, 3>& block,
                            int phi_components, int mu_components,
                            int ghost) {
  const double nx = double(block[0]), ny = double(block[1]),
               nz = double(block[2]);
  const double faces = 2.0 * (nx * ny + nx * nz + ny * nz) * double(ghost);
  // phi_dst and mu_dst are exchanged every step (Algorithm 1 lines 2 and 4)
  return faces * 8.0 * double(phi_components + mu_components);
}

int messages_per_step(int dims) {
  // two fields, `dims` axes, two directions each
  return 2 * dims * 2;
}

double step_time(double compute_s, double comm_bytes, int messages,
                 const CommConfig& cfg, const NetworkModel& net) {
  const double wire_s = net.latency_s * double(messages) +
                        comm_bytes / (net.bandwidth_gbytes * 1e9);
  // without CUDA-aware MPI, buffers take an extra PCIe round trip that is
  // never hidden (it competes with the kernels for the copy engines)
  const double staging_s =
      cfg.gpudirect ? 0.0 : comm_bytes / (net.host_staging_gbytes * 1e9);
  if (!cfg.overlap) return compute_s + wire_s + staging_s;
  // overlapped: wire time hides behind compute except for the residual
  const double exposed = std::max(wire_s * net.overlap_residual,
                                  wire_s - compute_s);
  return compute_s + std::max(0.0, exposed) + staging_s;
}

double overlapped_step_time(double interior_s, double frontier_s,
                            double comm_bytes, int messages,
                            const NetworkModel& net) {
  const double wire_s = net.latency_s * double(messages) +
                        comm_bytes / (net.bandwidth_gbytes * 1e9);
  return std::max(interior_s, wire_s) + frontier_s;
}

double scaled_mlups_per_rank(double block_cells, double compute_s,
                             double comm_bytes, int messages, int ranks,
                             const CommConfig& cfg, const NetworkModel& net) {
  NetworkModel scaled = net;
  // sync/latency degradation grows slowly with machine size (tree depth)
  scaled.latency_s *= 1.0 + 0.15 * std::log2(std::max(1, ranks));
  const double t = step_time(compute_s, comm_bytes, messages, cfg, scaled);
  return block_cells / t / 1e6;
}

}  // namespace pfc::perf
