// Analytic network / communication model (DESIGN.md §2): reproduces the
// paper's Table 2 (communication-hiding and GPUDirect options) and the
// Fig. 3 scaling studies on top of measured or modelled per-node compute
// times. Ghost-layer message volumes come from block geometry.
#pragma once

#include <array>

#include "pfc/ir/kernel.hpp"

namespace pfc::perf {

struct NetworkModel {
  double latency_s = 1.5e-6;        ///< per message (Aries/OmniPath-class)
  double bandwidth_gbytes = 10.0;   ///< per NIC, large-message
  /// staging the buffers through host memory when CUDA-aware MPI is absent:
  /// extra PCIe copy per byte
  double host_staging_gbytes = 12.5;  ///< PCIe gen3 x16 effective
  /// fraction of communication that overlapping can hide behind compute
  /// (phi exchange hides fully behind mu; mu exchange needs the inner/outer
  /// split, leaving the outer-shell recompute exposed)
  double overlap_residual = 0.08;
};

struct CommConfig {
  bool overlap = false;
  bool gpudirect = false;
};

/// Ghost-exchange bytes per time step for one block (both fields, all six
/// faces, `ghost` layers, doubles).
double ghost_bytes_per_step(const std::array<long long, 3>& block,
                            int phi_components, int mu_components,
                            int ghost = 1);

/// Number of point-to-point messages per step (axis-sequential exchange of
/// two fields over `dims` axes, both directions).
int messages_per_step(int dims);

/// One time step's duration given per-step compute seconds and the comm
/// configuration (paper Table 2 structure).
double step_time(double compute_s, double comm_bytes, int messages,
                 const CommConfig& cfg, const NetworkModel& net);

/// Step time of the interior/frontier-split overlapped step the runtime
/// actually executes: the wire time runs concurrently with interior
/// compute, and the frontier shell is computed outside the overlap window —
///   max(T_interior, T_comm) + T_frontier.
/// Unlike step_time's `overlap` flag (a modelled residual), this form takes
/// the measured or modelled interior/frontier split explicitly, so
/// model-drift tracking can compare it against the runtime's phase timers.
double overlapped_step_time(double interior_s, double frontier_s,
                            double comm_bytes, int messages,
                            const NetworkModel& net);

/// Weak/strong scaling efficiency: per-rank MLUP/s when `ranks` ranks each
/// compute their block in `compute_s` and exchange `comm_bytes`.
/// Includes a mild log-scale latency growth for collective-style sync.
double scaled_mlups_per_rank(double block_cells, double compute_s,
                             double comm_bytes, int messages, int ranks,
                             const CommConfig& cfg, const NetworkModel& net);

}  // namespace pfc::perf
