#include "pfc/resilience/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "pfc/field/array.hpp"
#include "pfc/obs/json.hpp"
#include "pfc/obs/report.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::resilience {

namespace fs = std::filesystem;

namespace {

std::string rank_file(const std::string& stem, const std::string& ext,
                      int rank) {
  if (rank < 0) return stem + ext;
  return stem + ".rank" + std::to_string(rank) + ext;
}

std::string state_name(int rank) { return rank_file("state", ".bin", rank); }

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex64(const std::string& s, const std::string& where) {
  PFC_REQUIRE(s.rfind("0x", 0) == 0 && s.size() == 18,
              "checkpoint: malformed checksum in " + where);
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw Error("pfc checkpoint: malformed checksum in " + where);
    v = (v << 4) | std::uint64_t(d);
  }
  return v;
}

const obs::Json& need(const obs::Json& j, const std::string& key,
                      const std::string& where) {
  const obs::Json* v = j.find(key);
  PFC_REQUIRE(v != nullptr,
              "checkpoint manifest: missing \"" + key + "\" in " + where);
  return *v;
}

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string manifest_path(const std::string& dir, int rank) {
  return dir + "/" + rank_file("manifest", ".json", rank);
}

void write_checkpoint(const std::string& dir, const CheckpointMeta& meta,
                      const std::vector<CheckpointArray>& arrays, int rank,
                      bool truncate_fault) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  PFC_REQUIRE(!ec, "checkpoint: cannot create directory " + dir);

  const std::string data_path = dir + "/" + state_name(rank);
  const std::string tmp_path = data_path + ".tmp";

  obs::Json entries = obs::Json::array();
  std::uint64_t total_doubles = 0;
  {
    std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
    PFC_REQUIRE(f != nullptr, "checkpoint: cannot open " + tmp_path);
    FileCloser closer{f};
    std::vector<double> buf;
    for (const auto& a : arrays) {
      PFC_REQUIRE(a.array != nullptr, "checkpoint: null array " + a.name);
      const std::int64_t count = a.array->interior_count();
      buf.resize(std::size_t(count));
      a.array->copy_interior_out(buf.data());
      const std::size_t bytes = std::size_t(count) * sizeof(double);
      const std::uint64_t sum = fnv1a64(buf.data(), bytes);
      PFC_REQUIRE(std::fwrite(buf.data(), 1, bytes, f) == bytes,
                  "checkpoint: short write to " + tmp_path);
      const auto& n = a.array->size();
      entries.push(obs::Json::object()
                       .set("name", obs::Json(a.name))
                       .set("components", obs::Json(a.array->components()))
                       .set("size", obs::Json::array()
                                        .push(obs::Json((long long)n[0]))
                                        .push(obs::Json((long long)n[1]))
                                        .push(obs::Json((long long)n[2])))
                       .set("offset", obs::Json(total_doubles))
                       .set("count", obs::Json(std::uint64_t(count)))
                       .set("fnv1a64", obs::Json(hex64(sum))));
      total_doubles += std::uint64_t(count);
    }
  }
  if (truncate_fault) {
    // deliberately corrupt the state file so reader validation is testable
    fs::resize_file(tmp_path, total_doubles * sizeof(double) / 2, ec);
  }
  fs::rename(tmp_path, data_path, ec);
  PFC_REQUIRE(!ec, "checkpoint: cannot rename " + tmp_path);

  obs::Json counters = obs::Json::object();
  for (const auto& [k, v] : meta.counters) counters.set(k, obs::Json(v));
  obs::Json manifest =
      obs::Json::object()
          .set("schema", obs::Json(kCheckpointSchema))
          .set("step", obs::Json(meta.step))
          .set("time", obs::Json(meta.time))
          .set("dt", obs::Json(meta.dt))
          .set("rng_seed", obs::Json(meta.rng_seed))
          .set("layout", obs::Json(meta.layout))
          .set("data_file", obs::Json(state_name(rank)))
          .set("arrays", std::move(entries))
          .set("counters", std::move(counters))
          .set("health", meta.health.to_json());
  // written last, atomically: a readable manifest implies a complete state
  obs::write_json(manifest_path(dir, rank), manifest);
}

CheckpointMeta read_checkpoint(const std::string& dir,
                               const std::vector<RestoreArray>& arrays,
                               const std::string& expect_layout, int rank) {
  const std::string mpath = manifest_path(dir, rank);
  std::string text;
  {
    std::FILE* f = std::fopen(mpath.c_str(), "rb");
    PFC_REQUIRE(f != nullptr, "checkpoint: no manifest at " + mpath);
    FileCloser closer{f};
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  }
  std::string err;
  const obs::Json j = obs::Json::parse(text, &err);
  PFC_REQUIRE(err.empty(), "checkpoint: manifest parse error in " + mpath +
                               ": " + err);
  PFC_REQUIRE(need(j, "schema", mpath).str() == kCheckpointSchema,
              "checkpoint: unsupported schema in " + mpath + " (expected " +
                  kCheckpointSchema + ")");

  CheckpointMeta meta;
  meta.step = (long long)need(j, "step", mpath).number();
  meta.time = need(j, "time", mpath).number();
  meta.dt = need(j, "dt", mpath).number();
  meta.rng_seed = (std::uint64_t)need(j, "rng_seed", mpath).number();
  meta.layout = need(j, "layout", mpath).str();
  PFC_REQUIRE(expect_layout.empty() || meta.layout == expect_layout,
              "checkpoint: layout mismatch — checkpoint is \"" +
                  meta.layout + "\", this run is \"" + expect_layout + '"');
  if (const obs::Json* c = j.find("counters"); c != nullptr) {
    for (const auto& [k, v] : c->items()) {
      meta.counters[k] = (std::uint64_t)v.number();
    }
  }
  if (const obs::Json* h = j.find("health"); h != nullptr) {
    meta.health = obs::HealthStats::from_json(*h);
  }

  const obs::Json& entries = need(j, "arrays", mpath);
  PFC_REQUIRE(entries.is_array(), "checkpoint: \"arrays\" must be an array");
  std::uint64_t total_doubles = 0;
  for (const auto& e : entries.elements()) {
    total_doubles += (std::uint64_t)need(e, "count", mpath).number();
  }

  const std::string data_path =
      dir + "/" + need(j, "data_file", mpath).str();
  std::FILE* f = std::fopen(data_path.c_str(), "rb");
  PFC_REQUIRE(f != nullptr, "checkpoint: missing state file " + data_path);
  FileCloser closer{f};
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  PFC_REQUIRE(std::uint64_t(fsize) == total_doubles * sizeof(double),
              "checkpoint: state file " + data_path +
                  " is truncated or corrupt (" + std::to_string(fsize) +
                  " bytes, manifest expects " +
                  std::to_string(total_doubles * sizeof(double)) + ")");

  // validate everything before touching any array: a bad checkpoint is
  // rejected whole, never half-applied
  std::vector<std::vector<double>> staged(arrays.size());
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const RestoreArray& ra = arrays[i];
    PFC_REQUIRE(ra.array != nullptr, "checkpoint: null array " + ra.name);
    const obs::Json* entry = nullptr;
    for (const auto& e : entries.elements()) {
      if (need(e, "name", mpath).str() == ra.name) {
        entry = &e;
        break;
      }
    }
    PFC_REQUIRE(entry != nullptr,
                "checkpoint: manifest has no array \"" + ra.name + '"');
    const auto& size = need(*entry, "size", mpath);
    const auto& n = ra.array->size();
    const bool shape_ok =
        (int)need(*entry, "components", mpath).number() ==
            ra.array->components() &&
        size.is_array() && size.elements().size() == 3 &&
        (std::int64_t)size.elements()[0].number() == n[0] &&
        (std::int64_t)size.elements()[1].number() == n[1] &&
        (std::int64_t)size.elements()[2].number() == n[2];
    PFC_REQUIRE(shape_ok, "checkpoint: shape mismatch for \"" + ra.name +
                              "\" (checkpoint and run were configured "
                              "differently)");
    const std::uint64_t offset =
        (std::uint64_t)need(*entry, "offset", mpath).number();
    const std::uint64_t count =
        (std::uint64_t)need(*entry, "count", mpath).number();
    PFC_REQUIRE(std::int64_t(count) == ra.array->interior_count(),
                "checkpoint: element count mismatch for \"" + ra.name + '"');
    staged[i].resize(std::size_t(count));
    std::fseek(f, long(offset * sizeof(double)), SEEK_SET);
    const std::size_t bytes = std::size_t(count) * sizeof(double);
    PFC_REQUIRE(std::fread(staged[i].data(), 1, bytes, f) == bytes,
                "checkpoint: short read from " + data_path);
    const std::uint64_t sum = fnv1a64(staged[i].data(), bytes);
    const std::uint64_t want =
        parse_hex64(need(*entry, "fnv1a64", mpath).str(), ra.name);
    PFC_REQUIRE(sum == want, "checkpoint: checksum mismatch for \"" +
                                 ra.name + "\" in " + data_path +
                                 " — refusing to restore corrupt state");
  }
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    arrays[i].array->copy_interior_in(staged[i].data());
  }
  return meta;
}

void Snapshot::capture(const Meta& meta,
                       const std::vector<const Array*>& arrays) {
  bufs_.resize(arrays.size());
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    bufs_[i].resize(std::size_t(arrays[i]->interior_count()));
    arrays[i]->copy_interior_out(bufs_[i].data());
  }
  meta_ = meta;
  valid_ = true;
}

void Snapshot::restore(const std::vector<Array*>& arrays) const {
  PFC_REQUIRE(valid_, "snapshot: restore before any capture");
  PFC_REQUIRE(arrays.size() == bufs_.size(),
              "snapshot: array list changed since capture");
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    PFC_REQUIRE(std::size_t(arrays[i]->interior_count()) == bufs_[i].size(),
                "snapshot: array shape changed since capture");
    arrays[i]->copy_interior_in(bufs_[i].data());
  }
}

}  // namespace pfc::resilience
