// Deterministic checkpoint/restart (the tentpole of pfc::resilience).
//
// On-disk format: a directory holding one binary state file (the interior
// cells of every registered array, concatenated as raw doubles) plus a JSON
// manifest recording the schema version, step/time/dt/seed, a driver layout
// signature, and per-array shapes, offsets and FNV-1a 64 checksums. Both
// files are written atomically (tmp + rename, the same helper every JSON
// artifact uses), and the manifest is written last — a readable manifest
// therefore implies a complete state file. waLBerla's block-structured
// checkpointing works the same way; unlike monolithic frameworks, restart
// here is bitwise: raw double bytes round-trip exactly, and the Philox
// noise stream is keyed on (cell, step), so a restored step counter replays
// the identical fluctuations.
//
// Multi-rank drivers write one manifest/state pair per rank
// ("manifest.rank<r>.json" / "state.rank<r>.bin"); single-block drivers use
// rank −1 ("manifest.json" / "state.bin").
//
// Snapshot is the in-memory equivalent used for health-driven rollback:
// capture() copies interiors into private buffers, restore() copies them
// back (the caller refreshes ghosts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pfc/obs/health.hpp"

namespace pfc {
class Array;  // field/array.hpp
}

namespace pfc::resilience {

inline constexpr const char* kCheckpointSchema = "pfc-checkpoint-v1";

/// Everything a restart needs besides the field data.
struct CheckpointMeta {
  long long step = 0;
  double time = 0.0;
  double dt = 0.0;               ///< current dt (may differ after shrinks)
  std::uint64_t rng_seed = 0;    ///< Philox key — fluctuation stream id
  std::string layout;            ///< driver signature; must match on restore
  obs::HealthStats health;       ///< accumulated in-situ findings
  std::map<std::string, std::uint64_t> counters;  ///< obs counters to carry
};

/// One named array to serialize ("phi", "mu/block3", ...).
struct CheckpointArray {
  std::string name;
  const Array* array;
};
struct RestoreArray {
  std::string name;
  Array* array;
};

/// "manifest.json" (rank < 0) or "manifest.rank<r>.json" inside `dir`.
std::string manifest_path(const std::string& dir, int rank = -1);

/// Writes state + manifest atomically into `dir` (created if missing).
/// `truncate_fault` deliberately truncates the state file after writing —
/// fault injection for reader-validation tests.
void write_checkpoint(const std::string& dir, const CheckpointMeta& meta,
                      const std::vector<CheckpointArray>& arrays,
                      int rank = -1, bool truncate_fault = false);

/// Restores every array in `arrays` from the checkpoint in `dir`. Validates
/// the manifest schema, the layout signature (when `expect_layout` is
/// non-empty), per-array shapes, the state-file size and every checksum;
/// throws pfc::Error on any mismatch (truncated or corrupt checkpoints are
/// rejected, never half-applied: arrays are only written after all
/// validation passed). Ghost layers are the caller's job.
CheckpointMeta read_checkpoint(const std::string& dir,
                               const std::vector<RestoreArray>& arrays,
                               const std::string& expect_layout = "",
                               int rank = -1);

/// FNV-1a 64 over raw bytes (the manifest's per-array checksum).
std::uint64_t fnv1a64(const void* data, std::size_t bytes);

/// In-memory rollback target for health-driven recovery.
class Snapshot {
 public:
  struct Meta {
    long long step = 0;
    double time = 0.0;
    double dt = 0.0;
  };

  bool valid() const { return valid_; }
  const Meta& meta() const { return meta_; }

  /// Copies the interiors of `arrays` (fixed order, same list every time).
  void capture(const Meta& meta, const std::vector<const Array*>& arrays);
  /// Copies the captured interiors back; array list must match capture().
  void restore(const std::vector<Array*>& arrays) const;

 private:
  bool valid_ = false;
  Meta meta_;
  std::vector<std::vector<double>> bufs_;
};

}  // namespace pfc::resilience
