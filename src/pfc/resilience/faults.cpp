#include "pfc/resilience/resilience.hpp"

#include <cstdlib>

#include "pfc/support/assert.hpp"

namespace pfc::resilience {

namespace {

constexpr const char* kGrammar =
    "expected ';'-separated tokens: nan@<step>[:x,y,z], jit[=N], truncate";

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

long long parse_ll(const std::string& s, const std::string& where) {
  PFC_REQUIRE(!s.empty(), "fault plan: empty number in " + where + " (" +
                              kGrammar + ")");
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  PFC_REQUIRE(end != nullptr && *end == '\0' && v >= 0,
              "fault plan: bad number '" + s + "' in " + where + " (" +
                  kGrammar + ")");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t sep = spec.find(';', pos);
    const std::string raw =
        spec.substr(pos, sep == std::string::npos ? sep : sep - pos);
    pos = sep == std::string::npos ? spec.size() + 1 : sep + 1;
    const std::string tok = trim(raw);
    if (tok.empty()) continue;
    if (tok == "truncate") {
      p.truncate_checkpoint = true;
    } else if (tok == "jit") {
      p.fail_jit_attempts = 1 << 20;  // fail every attempt -> interpreter
    } else if (tok.rfind("jit=", 0) == 0) {
      p.fail_jit_attempts = int(parse_ll(tok.substr(4), "jit=N"));
    } else if (tok.rfind("nan@", 0) == 0) {
      const std::string body = tok.substr(4);
      const std::size_t colon = body.find(':');
      p.nan_step = parse_ll(body.substr(0, colon), "nan@<step>");
      if (colon != std::string::npos) {
        const std::string cells = body.substr(colon + 1);
        std::size_t c0 = cells.find(','), c1 = std::string::npos;
        if (c0 != std::string::npos) c1 = cells.find(',', c0 + 1);
        PFC_REQUIRE(c0 != std::string::npos && c1 != std::string::npos,
                    "fault plan: nan cell needs x,y,z (" +
                        std::string(kGrammar) + ")");
        p.nan_cell = {parse_ll(cells.substr(0, c0), "nan cell x"),
                      parse_ll(cells.substr(c0 + 1, c1 - c0 - 1),
                               "nan cell y"),
                      parse_ll(cells.substr(c1 + 1), "nan cell z")};
      }
    } else {
      throw Error("pfc: unknown fault token '" + tok + "' (" + kGrammar +
                  ")");
    }
  }
  return p;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("PFC_FAULT");
  if (env == nullptr || *env == '\0') return FaultPlan{};
  return parse(env);
}

FaultPlan effective_faults(const ResilienceOptions& opts) {
  const char* env = std::getenv("PFC_FAULT");
  if (env != nullptr && *env != '\0') return FaultPlan::parse(env);
  return opts.faults;
}

}  // namespace pfc::resilience
