// pfc::resilience — surviving failures at scale (DESIGN.md §7).
//
// The paper's headline runs occupy entire machines for hours; at that scale
// node failure, compiler breakage and physics blow-ups are the expected
// case, not the exception. This subsystem makes a run survivable end to
// end:
//
//   * deterministic checkpoint/restart (checkpoint.hpp): binary snapshots
//     of the full simulation state with a checksummed JSON manifest,
//     written atomically; restart continues bitwise-identically, including
//     the Philox fluctuation stream (counter-based RNG — position, not
//     state, so rolling the step counter back replays the same noise);
//   * health-driven recovery: HealthPolicy::Recover rolls the run back to
//     the last good snapshot when an in-situ check fires, optionally
//     shrinking dt for a bounded number of retries;
//   * compile-path degradation: a JIT failure retries down
//     vector → scalar → interpreter instead of killing the run
//     (app/compiler.cpp);
//   * deterministic fault injection (FaultPlan) so every recovery path is
//     exercised by ctest rather than trusted on faith.
#pragma once

#include <array>
#include <string>

namespace pfc::resilience {

/// Deterministic fault injection, driven by options or the PFC_FAULT env
/// var. Every fault fires at a precisely defined point so the recovery
/// machinery can be tested reproducibly.
struct FaultPlan {
  /// Inject one quiet NaN into φ (component 0, cell nan_cell) right after
  /// this step completes; −1 disables. Fires once per driver.
  long long nan_step = -1;
  std::array<long long, 3> nan_cell{0, 0, 0};
  /// Force the first N external-compiler invocations to fail (exercises
  /// the vector → scalar → interpreter fallback chain).
  int fail_jit_attempts = 0;
  /// Truncate checkpoint state files after writing them, so reader-side
  /// validation (size + checksums) is exercised.
  bool truncate_checkpoint = false;

  bool any() const {
    return nan_step >= 0 || fail_jit_attempts > 0 || truncate_checkpoint;
  }

  /// Parses a ';'-separated spec: "nan@<step>[:x,y,z]", "jit[=N]" (N
  /// defaults to all attempts), "truncate". Throws pfc::Error naming the
  /// accepted grammar on anything else.
  static FaultPlan parse(const std::string& spec);
  /// The PFC_FAULT env spec, or an empty plan when unset.
  static FaultPlan from_env();
};

/// Driver-level resilience knobs (lives on app::DomainOptions).
struct ResilienceOptions {
  /// Capture a rollback snapshot every N completed steps (0 = only the
  /// baseline snapshot HealthPolicy::Recover captures before stepping).
  int checkpoint_every = 0;
  /// Directory for on-disk checkpoints (manifest + state files); empty
  /// keeps snapshots in memory only.
  std::string directory;
  /// Restore from this checkpoint directory at driver construction; the
  /// caller should then skip its init_*() calls.
  std::string restart_from;
  /// Rollbacks allowed before a persistent violation escalates to throw.
  int max_retries = 3;
  /// dt multiplier applied on every rollback (< 1 shrinks; 1 retries with
  /// the same step size — right when faults are transient).
  double dt_shrink = 1.0;
  FaultPlan faults;

  ResilienceOptions& every(int n) {
    checkpoint_every = n;
    return *this;
  }
  ResilienceOptions& with_directory(const std::string& dir) {
    directory = dir;
    return *this;
  }
  ResilienceOptions& with_restart(const std::string& dir) {
    restart_from = dir;
    return *this;
  }
  ResilienceOptions& with_max_retries(int n) {
    max_retries = n;
    return *this;
  }
  ResilienceOptions& with_dt_shrink(double f) {
    dt_shrink = f;
    return *this;
  }
  ResilienceOptions& with_faults(const FaultPlan& f) {
    faults = f;
    return *this;
  }
};

/// The plan a driver should execute: PFC_FAULT overrides the options' plan
/// when set (so ctest can inject faults into unmodified binaries).
FaultPlan effective_faults(const ResilienceOptions& opts);

}  // namespace pfc::resilience
