// Philox 4x32-10 counter-based random number generator (Salmon et al.,
// SC'11), used for the fluctuation term (paper §3.3): stateless, keyed on
// the global cell index and time step, so cell updates stay independent and
// the stream is reproducible across runs, thread counts and backends.
//
// The generated C code embeds a textual copy of exactly this algorithm
// (see backend/codegen_common.cpp); tests pin both to the reference known-
// answer vectors from the Random123 distribution.
#pragma once

#include <array>
#include <cstdint>

namespace pfc::rng {

namespace detail {
inline void mulhilo32(std::uint32_t a, std::uint32_t b, std::uint32_t* hi,
                      std::uint32_t* lo) {
  const std::uint64_t p = std::uint64_t(a) * std::uint64_t(b);
  *hi = std::uint32_t(p >> 32);
  *lo = std::uint32_t(p);
}
}  // namespace detail

/// One Philox 4x32 block with 10 rounds.
inline std::array<std::uint32_t, 4> philox4x32(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) {
  constexpr std::uint32_t kM0 = 0xD2511F53u;
  constexpr std::uint32_t kM1 = 0xCD9E8D57u;
  constexpr std::uint32_t kW0 = 0x9E3779B9u;  // golden ratio
  constexpr std::uint32_t kW1 = 0xBB67AE85u;  // sqrt(3) - 1
  for (int round = 0; round < 10; ++round) {
    std::uint32_t hi0, lo0, hi1, lo1;
    detail::mulhilo32(kM0, ctr[0], &hi0, &lo0);
    detail::mulhilo32(kM1, ctr[2], &hi1, &lo1);
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kW0;
    key[1] += kW1;
  }
  return ctr;
}

/// Uniform double in [-1, 1) keyed on cell index, time step, seed and
/// stream id. Matches pfc_philox_uniform in generated code bit for bit.
inline double philox_uniform(std::uint64_t x, std::uint64_t y,
                             std::uint64_t z, std::uint64_t t_step,
                             std::uint64_t seed, std::uint64_t stream) {
  const std::array<std::uint32_t, 4> ctr = {
      std::uint32_t(x), std::uint32_t(y), std::uint32_t(z),
      std::uint32_t(t_step)};
  const std::array<std::uint32_t, 2> key = {
      std::uint32_t(seed ^ (stream * 0x9E3779B9u)),
      std::uint32_t((seed >> 32) + stream)};
  const auto r = philox4x32(ctr, key);
  const std::uint64_t bits = (std::uint64_t(r[0]) << 32) | r[1];
  // map [0, 2^64) -> [-1, 1)
  return double(bits) * (2.0 / 18446744073709551616.0) - 1.0;
}

}  // namespace pfc::rng
