#include "pfc/serve/admission.hpp"

namespace pfc::serve {

AdmissionControl::AdmissionControl(AdmissionLimits limits) : limits_(limits) {}

AdmissionControl::Tenant& AdmissionControl::tenant_slot(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    Tenant t;
    t.inflight = &obs::MetricsRegistry::shared().gauge(
        "pfc_tenant_inflight",
        "Jobs queued or running per tenant (admission view)",
        {{"tenant", tenant}});
    it = tenants_.emplace(tenant, t).first;
  }
  return it->second;
}

void AdmissionControl::update_gauge(Tenant& t) {
  t.inflight->set(double(t.queued + t.running));
}

void AdmissionControl::touch(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  update_gauge(tenant_slot(tenant));
}

bool AdmissionControl::try_admit(const std::string& tenant,
                                 std::string* reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (limits_.max_queue > 0 && queued_ >= limits_.max_queue) {
    if (reason != nullptr) {
      *reason = "queue full (" + std::to_string(queued_) + "/" +
                std::to_string(limits_.max_queue) + ")";
    }
    return false;
  }
  Tenant& t = tenant_slot(tenant);
  if (limits_.tenant_max_queued > 0 && t.queued >= limits_.tenant_max_queued) {
    if (reason != nullptr) {
      *reason = "tenant \"" + tenant + "\" queued quota exhausted (" +
                std::to_string(t.queued) + "/" +
                std::to_string(limits_.tenant_max_queued) + ")";
    }
    return false;
  }
  ++queued_;
  ++t.queued;
  update_gauge(t);
  return true;
}

bool AdmissionControl::can_start(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (limits_.tenant_max_running <= 0) return true;
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ||
         it->second.running < limits_.tenant_max_running;
}

void AdmissionControl::on_start(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& t = tenant_slot(tenant);
  if (t.queued > 0) --t.queued;
  if (queued_ > 0) --queued_;
  ++t.running;
  ++running_;
  update_gauge(t);
}

void AdmissionControl::on_release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& t = tenant_slot(tenant);
  if (t.running > 0) --t.running;
  if (running_ > 0) --running_;
  update_gauge(t);
}

void AdmissionControl::on_discard(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& t = tenant_slot(tenant);
  if (t.queued > 0) --t.queued;
  if (queued_ > 0) --queued_;
  update_gauge(t);
}

long long AdmissionControl::queued_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

long long AdmissionControl::running_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

long long AdmissionControl::tenant_running(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.running;
}

long long AdmissionControl::tenant_queued(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queued;
}

}  // namespace pfc::serve
