// Admission control for the serve daemon: a bounded submit queue plus
// per-tenant quotas on queued and running jobs. Under overload the daemon
// sheds gracefully — a submit past a queue limit gets an explicit
// "rejected" event with the reason (the connection stays healthy) instead
// of an unbounded queue absorbing work it will never get to. The running
// quota gates *dispatch*: an admitted job whose tenant is at its
// concurrency limit waits in the queue until a slot releases.
//
// The admitted-job lifecycle the counters track:
//
//   try_admit ──ok──▶ queued ──can_start? on_start──▶ running ──on_release──▶ done
//       │               │
//       └─▶ rejected    └──on_discard──▶ cancelled/expired while queued
//
// Thread-safety: all methods lock an internal mutex; callers (dispatcher,
// workers, monitor) need no external coordination.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "pfc/obs/metrics.hpp"

namespace pfc::serve {

struct AdmissionLimits {
  long long max_queue = 64;          ///< total queued jobs (0 = unlimited)
  long long tenant_max_running = 0;  ///< concurrent jobs per tenant (0 = unlimited)
  long long tenant_max_queued = 0;   ///< queued jobs per tenant (0 = unlimited)
};

class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionLimits limits);

  /// Registers `tenant`'s pfc_tenant_inflight gauge (at 0) without
  /// admitting anything — the daemon touches "default" at start so the
  /// metric family exists before the first submit.
  void touch(const std::string& tenant);

  /// Admits a submit for `tenant` or fills `reason` ("queue full (64/64)",
  /// "tenant \"x\" queued quota exhausted (2/2)"). On success the job is
  /// counted as queued.
  bool try_admit(const std::string& tenant, std::string* reason);

  /// Whether a queued job of `tenant` may start now (running quota has a
  /// free slot). Workers skip over queued jobs whose tenant is saturated.
  bool can_start(const std::string& tenant) const;

  /// Queued → running (a worker picked the job up).
  void on_start(const std::string& tenant);
  /// Running → done (finished, failed, cancelled, watchdog-killed).
  void on_release(const std::string& tenant);
  /// Queued → gone without running (cancelled or expired in the queue).
  void on_discard(const std::string& tenant);

  long long queued_total() const;
  long long running_total() const;
  long long tenant_running(const std::string& tenant) const;
  long long tenant_queued(const std::string& tenant) const;

 private:
  struct Tenant {
    long long queued = 0;
    long long running = 0;
    obs::Gauge* inflight = nullptr;  ///< pfc_tenant_inflight{tenant=...}
  };

  Tenant& tenant_slot(const std::string& tenant);  // callers hold mutex_
  void update_gauge(Tenant& t);

  AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::map<std::string, Tenant> tenants_;
  long long queued_ = 0;
  long long running_ = 0;
};

}  // namespace pfc::serve
