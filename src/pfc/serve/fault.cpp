#include "pfc/serve/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "pfc/support/assert.hpp"

namespace pfc::serve {

namespace {

std::vector<std::string> split_clauses(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    std::string clause = spec.substr(start, end - start);
    // Trim surrounding spaces so "a, b" parses like "a,b".
    while (!clause.empty() && clause.front() == ' ') clause.erase(0, 1);
    while (!clause.empty() && clause.back() == ' ') clause.pop_back();
    if (!clause.empty()) out.push_back(clause);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

long long parse_count(const std::string& text, const std::string& clause) {
  PFC_REQUIRE(!text.empty() &&
                  text.find_first_not_of("0123456789") == std::string::npos,
              "fault clause needs a non-negative integer: \"" + clause + "\"");
  return std::stoll(text);
}

}  // namespace

ServeFaultPlan ServeFaultPlan::parse(const std::string& spec) {
  ServeFaultPlan plan;
  for (const std::string& clause : split_clauses(spec)) {
    if (clause == "hang-worker") {
      plan.hang_job = 1;  // first submitted job
    } else if (clause.rfind("hang-worker@", 0) == 0) {
      plan.hang_job = parse_count(clause.substr(12), clause);
    } else if (clause.rfind("delay-ms=", 0) == 0) {
      plan.delay_ms = parse_count(clause.substr(9), clause);
    } else if (clause.rfind("drop-connection@", 0) == 0) {
      plan.drop_after_writes = parse_count(clause.substr(16), clause);
    } else if (clause == "partial-write") {
      plan.partial_write = true;
    } else {
      throw Error("unknown fault clause \"" + clause +
                  "\" (want hang-worker[@N], delay-ms=N, drop-connection@N, "
                  "partial-write)");
    }
  }
  return plan;
}

ServeFaultPlan ServeFaultPlan::from_env() {
  const char* env = std::getenv("PFC_SERVE_FAULT");
  if (env == nullptr || *env == '\0') return {};
  return parse(env);
}

bool hang_until_cancelled(const app::CancelToken* token, double max_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(max_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (token != nullptr && token->requested()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return token != nullptr && token->requested();
}

}  // namespace pfc::serve
