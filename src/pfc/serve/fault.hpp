// Deterministic fault injection for the serve tier, in the spirit of
// resilience::FaultPlan (PR 4): every recovery path the hardened daemon
// claims — watchdog kill, mid-stream client loss, slow/partial writes —
// must be reproducible in a ctest without real bad luck.
//
// Plan grammar (PFC_SERVE_FAULT or ServeOptions::fault; comma-separated,
// each clause at most once):
//
//   hang-worker          worker hangs before running job 1 (no progress
//   hang-worker@N        heartbeat → the watchdog fires). The hang is
//                        cooperative: it sleeps in short ticks watching
//                        the job's cancel token, so a watchdog-killed
//                        worker recovers and the daemon stays joinable.
//   delay-ms=N           every job sleeps N ms before running (token-
//                        checked — a deadline shorter than the delay
//                        expires "during compile" deterministically)
//   drop-connection@N    the daemon closes a job's event stream after its
//                        N-th written event (client vanishing mid-stream)
//   partial-write        event lines are sent in two halves with a pause
//                        between (slow-writer / torn-packet framing test)
#pragma once

#include <string>

#include "pfc/app/cancel.hpp"

namespace pfc::serve {

struct ServeFaultPlan {
  long long hang_job = -1;          ///< job id to hang (-1 = off)
  long long delay_ms = 0;           ///< pre-run delay per job
  long long drop_after_writes = -1; ///< close stream after N events (-1 = off)
  bool partial_write = false;

  bool any() const {
    return hang_job >= 0 || delay_ms > 0 || drop_after_writes >= 0 ||
           partial_write;
  }

  /// Strict parse of the grammar above; throws pfc::Error naming the bad
  /// clause. Empty spec = no faults.
  static ServeFaultPlan parse(const std::string& spec);
  /// parse(getenv("PFC_SERVE_FAULT")).
  static ServeFaultPlan from_env();
};

/// Cooperative hang: sleeps in 5 ms ticks until the token fires or
/// `max_seconds` elapses. Returns true when the token ended the hang.
bool hang_until_cancelled(const app::CancelToken* token, double max_seconds);

}  // namespace pfc::serve
