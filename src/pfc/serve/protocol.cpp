#include "pfc/serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "pfc/serve/transport.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PFC_REQUIRE(path.size() < sizeof(addr.sun_path),
              "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PFC_REQUIRE(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  ::unlink(path.c_str());
  sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int e = errno;
    ::close(fd);
    throw Error("bind(" + path + "): " + std::strerror(e));
  }
  if (::listen(fd, backlog) != 0) {
    const int e = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw Error("listen(" + path + "): " + std::strerror(e));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PFC_REQUIRE(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    throw Error("connect(" + path + "): " + std::strerror(e));
  }
  return fd;
}

LineChannel::~LineChannel() {
  if (fd_ >= 0) ::close(fd_);
}

LineChannel::LineChannel(LineChannel&& o) noexcept
    : fd_(o.fd_), buf_(std::move(o.buf_)) {
  o.fd_ = -1;
}

LineChannel& LineChannel::operator=(LineChannel&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    buf_ = std::move(o.buf_);
    o.fd_ = -1;
  }
  return *this;
}

bool LineChannel::read_line(std::string& out) {
  PFC_REQUIRE(fd_ >= 0, "read_line on a closed channel");
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // EOF (any partial line is dropped)
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO elapsed: the peer holds the connection open but
        // sends nothing (slow loris). Distinct from EOF and from hard
        // socket errors so callers can drop just this connection.
        throw TimeoutError("recv(): read deadline elapsed");
      }
      throw Error(std::string("recv(): ") + std::strerror(errno));
    }
    buf_.append(chunk, std::size_t(n));
  }
}

obs::Json LineChannel::read_json() {
  std::string line;
  if (!read_line(line)) return obs::Json();
  std::string err;
  obs::Json j = obs::Json::parse(line, &err);
  if (!err.empty()) throw ProtocolError("protocol: bad JSON line: " + err);
  return j;
}

bool LineChannel::write_json(const obs::Json& j) {
  PFC_REQUIRE(fd_ >= 0, "write_json on a closed channel");
  std::string line = j.dump(-1);
  line += '\n';
  std::size_t off = 0;
  // Fault injection: stop after the first half of the line, pause, then
  // resume — the peer must reassemble on '\n', not on packet boundaries.
  const std::size_t pause_at =
      fault_partial_write_ ? std::max<std::size_t>(1, line.size() / 2)
                           : line.size();
  bool paused = false;
  while (off < line.size()) {
    const std::size_t limit = paused ? line.size() : pause_at;
    // MSG_NOSIGNAL: a vanished client must not SIGPIPE the daemon.
    const ssize_t n =
        ::send(fd_, line.data() + off, limit - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      // SO_SNDTIMEO elapsed: the peer stopped draining. Treat like a
      // vanished peer — the caller drops the stream, the job lives on.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      throw Error(std::string("send(): ") + std::strerror(errno));
    }
    off += std::size_t(n);
    if (!paused && off >= pause_at && off < line.size()) {
      paused = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return true;
}

obs::Json event_pong() {
  return obs::Json::object()
      .set("event", obs::Json("pong"))
      .set("protocol", obs::Json(kProtocolVersion));
}

obs::Json event_accepted(long long job, const std::string& name) {
  return obs::Json::object()
      .set("event", obs::Json("accepted"))
      .set("job", obs::Json(job))
      .set("name", obs::Json(name));
}

obs::Json event_started(long long job, double queued_seconds) {
  obs::Json e = obs::Json::object()
                    .set("event", obs::Json("started"))
                    .set("job", obs::Json(job));
  if (queued_seconds >= 0.0) {
    e.set("queued_seconds", obs::Json(queued_seconds));
  }
  return e;
}

obs::Json event_progress(long long job, const app::ProgressUpdate& u) {
  return obs::Json::object()
      .set("event", obs::Json("progress"))
      .set("job", obs::Json(job))
      .set("step", obs::Json(u.step))
      .set("steps_total", obs::Json(u.steps_total))
      .set("fraction", obs::Json(u.fraction))
      .set("mlups", obs::Json(u.mlups))
      .set("eta_seconds", obs::Json(u.eta_seconds))
      .set("health_violations", obs::Json(u.health_violations));
}

obs::Json event_finished(long long job, obs::Json result,
                         double duration_seconds, double queued_seconds) {
  obs::Json e = obs::Json::object()
                    .set("event", obs::Json("finished"))
                    .set("job", obs::Json(job))
                    .set("result", std::move(result));
  if (duration_seconds >= 0.0) {
    e.set("duration_seconds", obs::Json(duration_seconds));
  }
  if (queued_seconds >= 0.0) {
    e.set("queued_seconds", obs::Json(queued_seconds));
  }
  return e;
}

obs::Json event_rejected(const std::string& reason) {
  return obs::Json::object()
      .set("event", obs::Json("rejected"))
      .set("reason", obs::Json(reason));
}

namespace {

obs::Json terminal_with_reason(const char* kind, long long job,
                               const std::string& reason,
                               double duration_seconds,
                               double queued_seconds) {
  obs::Json e = obs::Json::object()
                    .set("event", obs::Json(kind))
                    .set("job", obs::Json(job))
                    .set("reason", obs::Json(reason));
  if (duration_seconds >= 0.0) {
    e.set("duration_seconds", obs::Json(duration_seconds));
  }
  if (queued_seconds >= 0.0) {
    e.set("queued_seconds", obs::Json(queued_seconds));
  }
  return e;
}

}  // namespace

obs::Json event_cancelled(long long job, const std::string& reason,
                          double duration_seconds, double queued_seconds) {
  return terminal_with_reason("cancelled", job, reason, duration_seconds,
                              queued_seconds);
}

obs::Json event_deadline_exceeded(long long job, const std::string& reason,
                                  double duration_seconds,
                                  double queued_seconds) {
  return terminal_with_reason("deadline_exceeded", job, reason,
                              duration_seconds, queued_seconds);
}

obs::Json event_cancel_ack(long long job, const std::string& state) {
  return obs::Json::object()
      .set("event", obs::Json("cancel_ack"))
      .set("job", obs::Json(job))
      .set("state", obs::Json(state));
}

obs::Json event_error(long long job, const std::string& message,
                      double duration_seconds, double queued_seconds) {
  obs::Json e = obs::Json::object()
                    .set("event", obs::Json("error"))
                    .set("job", obs::Json(job))
                    .set("message", obs::Json(message));
  if (duration_seconds >= 0.0) {
    e.set("duration_seconds", obs::Json(duration_seconds));
  }
  if (queued_seconds >= 0.0) {
    e.set("queued_seconds", obs::Json(queued_seconds));
  }
  return e;
}

obs::Json event_metrics(obs::Json snapshot) {
  return obs::Json::object()
      .set("event", obs::Json("metrics"))
      .set("snapshot", std::move(snapshot));
}

obs::Json event_metrics_text(const std::string& text) {
  return obs::Json::object()
      .set("event", obs::Json("metrics_text"))
      .set("text", obs::Json(text));
}

obs::Json event_bye() {
  return obs::Json::object().set("event", obs::Json("bye"));
}

}  // namespace pfc::serve
