// Wire protocol of the serve daemon (DESIGN.md §9): line-delimited JSON
// over a local Unix-domain stream socket. Every request is one line, every
// reply is a stream of one-line events; the connection closes when the
// request is fully answered.
//
// Requests:
//   {"op": "ping"}
//   {"op": "submit", "spec": { <pfc-jobspec-v1> }}
//   {"op": "list"}
//   {"op": "metrics"}       JSON metrics snapshot (pfc-serve-metrics-v1)
//   {"op": "metrics_text"}  Prometheus text exposition of the same registry
//   {"op": "shutdown"}
//
// Events:
//   {"event": "pong", "protocol": "pfc-serve-v1"}
//   {"event": "accepted", "job": N, "name": "..."}     submit: queued
//   {"event": "started",  "job": N, "queued_seconds": S}
//   {"event": "progress", "job": N, "step": K, "steps_total": T,
//    "fraction": F, "mlups": M, "eta_seconds": E,
//    "health_violations": V}                           periodic, while running
//   {"event": "finished", "job": N, "result": {...},   JobResult::to_json()
//    "duration_seconds": D, "queued_seconds": S}
//   {"event": "error",    "job": N, "message": "...",  (job = -1: request
//    "duration_seconds": D, "queued_seconds": S}        itself was invalid;
//                                                       durations omitted)
//   {"event": "jobs", "jobs": [{"job":N,"name":..,"state":..,
//    "preset":..,"submitted_unix":..,"fraction":..,...}, ...]}
//   {"event": "metrics", "snapshot": { <pfc-serve-metrics-v1> }}
//   {"event": "metrics_text", "text": "..."}
//   {"event": "bye"}                                   shutdown ack
#pragma once

#include <string>

#include "pfc/app/progress.hpp"
#include "pfc/obs/json.hpp"

namespace pfc::serve {

inline constexpr const char* kProtocolVersion = "pfc-serve-v1";

/// Creates a listening Unix-domain stream socket at `path` (unlinking any
/// stale file first). Throws pfc::Error on failure.
int listen_unix(const std::string& path, int backlog = 16);

/// Connects to the daemon's socket. Throws pfc::Error on failure.
int connect_unix(const std::string& path);

/// One connected socket with line framing. Owns the fd (closes on
/// destruction); movable, not copyable.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();
  LineChannel(LineChannel&& o) noexcept;
  LineChannel& operator=(LineChannel&& o) noexcept;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Reads until '\n' (stripped). Returns false on clean EOF; throws
  /// pfc::Error on socket errors.
  bool read_line(std::string& out);
  /// Reads one line and parses it; returns a Null Json on EOF.
  obs::Json read_json();

  /// Writes one compact JSON line. Returns false if the peer is gone
  /// (EPIPE/ECONNRESET) — event streams treat that as "client stopped
  /// listening", not an error.
  bool write_json(const obs::Json& j);

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned line
};

// --- event constructors (shared by server and client-side tests) -------------
// Durations are in wall seconds; pass a negative value to omit the key
// (request-level errors have no job timing to report).
obs::Json event_pong();
obs::Json event_accepted(long long job, const std::string& name);
obs::Json event_started(long long job, double queued_seconds = -1.0);
obs::Json event_progress(long long job, const app::ProgressUpdate& u);
obs::Json event_finished(long long job, obs::Json result,
                         double duration_seconds = -1.0,
                         double queued_seconds = -1.0);
obs::Json event_error(long long job, const std::string& message,
                      double duration_seconds = -1.0,
                      double queued_seconds = -1.0);
obs::Json event_metrics(obs::Json snapshot);
obs::Json event_metrics_text(const std::string& text);
obs::Json event_bye();

}  // namespace pfc::serve
