// Wire protocol of the serve daemon (DESIGN.md §9, hardened in §12):
// line-delimited JSON over a stream socket — the Unix-domain socket for
// local clients, or TCP via transport.hpp's Endpoint grammar. Every
// request is one line, every reply is a stream of one-line events; the
// connection closes when the request is fully answered.
//
// Requests:
//   {"op": "ping"}
//   {"op": "submit", "spec": { <pfc-jobspec-v1> }}
//   {"op": "cancel", "job": N}
//   {"op": "list"}
//   {"op": "metrics"}       JSON metrics snapshot (pfc-serve-metrics-v1)
//   {"op": "metrics_text"}  Prometheus text exposition of the same registry
//   {"op": "shutdown"}
//
// Events:
//   {"event": "pong", "protocol": "pfc-serve-v1"}
//   {"event": "accepted", "job": N, "name": "..."}     submit: queued
//   {"event": "rejected", "reason": "..."}             submit: shed by
//                                                       admission control
//   {"event": "started",  "job": N, "queued_seconds": S}
//   {"event": "progress", "job": N, "step": K, "steps_total": T,
//    "fraction": F, "mlups": M, "eta_seconds": E,
//    "health_violations": V}                           periodic, while running
//   {"event": "finished", "job": N, "result": {...},   JobResult::to_json()
//    "duration_seconds": D, "queued_seconds": S}
//   {"event": "cancelled", "job": N, "reason": "...",  cancel op / shutdown
//    "duration_seconds": D, "queued_seconds": S}        drain (terminal)
//   {"event": "deadline_exceeded", "job": N,           spec's deadline_seconds
//    "reason": "...", "duration_seconds": D,            elapsed (terminal)
//    "queued_seconds": S}
//   {"event": "error",    "job": N, "message": "...",  (job = -1: request
//    "duration_seconds": D, "queued_seconds": S}        itself was invalid;
//                                                       durations omitted)
//   {"event": "cancel_ack", "job": N, "state": "..."}  cancel op reply:
//                                                       "cancelled" (was
//                                                       queued), "cancelling"
//                                                       (running, stops at the
//                                                       next step), or the
//                                                       terminal state it
//                                                       already reached
//   {"event": "jobs", "jobs": [{"job":N,"name":..,"state":..,"tenant":..,
//    "preset":..,"submitted_unix":..,"fraction":..,...}, ...]}
//   {"event": "metrics", "snapshot": { <pfc-serve-metrics-v1> }}
//   {"event": "metrics_text", "text": "..."}
//   {"event": "bye"}                                   shutdown ack
#pragma once

#include <string>

#include "pfc/app/progress.hpp"
#include "pfc/obs/json.hpp"

namespace pfc::serve {

inline constexpr const char* kProtocolVersion = "pfc-serve-v1";

/// Creates a listening Unix-domain stream socket at `path` (unlinking any
/// stale file first). Throws pfc::Error on failure.
int listen_unix(const std::string& path, int backlog = 16);

/// Connects to the daemon's socket. Throws pfc::Error on failure.
int connect_unix(const std::string& path);

/// One connected socket with line framing. Owns the fd (closes on
/// destruction); movable, not copyable.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();
  LineChannel(LineChannel&& o) noexcept;
  LineChannel& operator=(LineChannel&& o) noexcept;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Reads until '\n' (stripped). Returns false on clean EOF; throws
  /// TimeoutError when an armed SO_RCVTIMEO deadline elapses (slow-loris
  /// peer), pfc::Error on other socket errors.
  bool read_line(std::string& out);
  /// Reads one line and parses it; returns a Null Json on EOF. A line
  /// that is not JSON throws ProtocolError.
  obs::Json read_json();

  /// Writes one compact JSON line. Returns false if the peer is gone
  /// (EPIPE/ECONNRESET) or too slow to keep up (SO_SNDTIMEO elapsed) —
  /// event streams treat both as "client stopped listening", not an
  /// error, so a dead or stalled client never takes a job down.
  bool write_json(const obs::Json& j);

  /// Fault injection ("partial-write"): send each line in two halves with
  /// a short pause between, exercising the peer's '\n' reassembly.
  void enable_partial_write() { fault_partial_write_ = true; }

 private:
  int fd_ = -1;
  bool fault_partial_write_ = false;
  std::string buf_;  // bytes read past the last returned line
};

// --- event constructors (shared by server and client-side tests) -------------
// Durations are in wall seconds; pass a negative value to omit the key
// (request-level errors have no job timing to report).
obs::Json event_pong();
obs::Json event_accepted(long long job, const std::string& name);
obs::Json event_rejected(const std::string& reason);
obs::Json event_started(long long job, double queued_seconds = -1.0);
obs::Json event_progress(long long job, const app::ProgressUpdate& u);
obs::Json event_finished(long long job, obs::Json result,
                         double duration_seconds = -1.0,
                         double queued_seconds = -1.0);
obs::Json event_cancelled(long long job, const std::string& reason,
                          double duration_seconds = -1.0,
                          double queued_seconds = -1.0);
obs::Json event_deadline_exceeded(long long job, const std::string& reason,
                                  double duration_seconds = -1.0,
                                  double queued_seconds = -1.0);
obs::Json event_error(long long job, const std::string& message,
                      double duration_seconds = -1.0,
                      double queued_seconds = -1.0);
obs::Json event_cancel_ack(long long job, const std::string& state);
obs::Json event_metrics(obs::Json snapshot);
obs::Json event_metrics_text(const std::string& text);
obs::Json event_bye();

}  // namespace pfc::serve
