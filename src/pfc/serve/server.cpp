#include "pfc/serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "pfc/support/assert.hpp"

namespace pfc::serve {

using obs::Json;

JobServer::~JobServer() { stop(); }

void JobServer::start() {
  PFC_REQUIRE(!started_, "JobServer::start() called twice");
  PFC_REQUIRE(opts_.workers >= 1, "need at least one worker");
  listen_fd_ = listen_unix(opts_.socket_path);
  started_ = true;
  pool_ = std::make_unique<ThreadPool>(opts_.workers);
  // run_on_all blocks its caller, so a dedicated thread hosts the pool;
  // every pool member (host thread included) becomes one job worker.
  pool_host_ = std::thread([this] {
    pool_->run_on_all([this](int) { worker_loop(); });
  });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void JobServer::wait() {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_stopped_.wait(lk, [this] { return stopping_; });
  }
  join_all();
}

void JobServer::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_stopped_.notify_all();
  // Break the accept loop out of its blocking accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  join_all();
}

void JobServer::join_all() {
  std::lock_guard<std::mutex> jl(join_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_host_.joinable()) pool_host_.join();
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
    listen_fd_ = -1;
  }
}

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<JobStatus> out;
  out.reserve(status_.size());
  for (const auto& [id, st] : status_) out.push_back(st);
  return out;
}

void JobServer::set_state(long long id, const std::string& state,
                          const std::string& error) {
  std::lock_guard<std::mutex> lk(mutex_);
  JobStatus& st = status_[id];
  st.state = state;
  if (!error.empty()) st.error = error;
}

void JobServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or broken beyond repair
    }
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) {
        ::close(fd);
        break;
      }
    }
    try {
      handle_connection(LineChannel(fd));
    } catch (const std::exception& e) {
      // A malformed connection must not take the dispatcher down.
      if (!opts_.quiet) {
        std::fprintf(stderr, "pfc_served: connection error: %s\n", e.what());
      }
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) break;
  }
}

void JobServer::handle_connection(LineChannel conn) {
  const Json req = conn.read_json();
  if (req.kind() == Json::Kind::Null) return;  // client connected, said nothing
  if (!req.is_object()) {
    conn.write_json(event_error(-1, "request must be a JSON object"));
    return;
  }
  const Json* op = req.find("op");
  if (op == nullptr || !op->is_string()) {
    conn.write_json(event_error(-1, "request needs a string \"op\""));
    return;
  }

  if (op->str() == "ping") {
    conn.write_json(event_pong());
    return;
  }

  if (op->str() == "list") {
    Json arr = Json::array();
    for (const JobStatus& st : jobs()) {
      Json e = Json::object()
                   .set("job", Json(st.id))
                   .set("name", Json(st.name))
                   .set("state", Json(st.state));
      if (!st.error.empty()) e.set("error", Json(st.error));
      arr.push(std::move(e));
    }
    conn.write_json(
        Json::object().set("event", Json("jobs")).set("jobs", std::move(arr)));
    return;
  }

  if (op->str() == "shutdown") {
    conn.write_json(event_bye());
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
    cv_work_.notify_all();
    cv_stopped_.notify_all();
    return;  // accept_loop exits on its post-connection stopping check
  }

  if (op->str() == "submit") {
    const Json* spec_json = req.find("spec");
    if (spec_json == nullptr) {
      conn.write_json(event_error(-1, "submit needs a \"spec\""));
      return;
    }
    PendingJob job{0, app::JobSpec{}, std::move(conn)};
    try {
      job.spec = app::JobSpec::from_json(*spec_json, "spec");
      job.spec.validate();
    } catch (const Error& e) {
      job.channel.write_json(event_error(-1, e.what()));
      return;
    }
    // The daemon's kernel cache is the default; an explicit cache_dir in
    // the spec wins (a job may opt into its own cache or out entirely).
    if (!opts_.cache.directory.empty()) {
      for (app::CompileOptions* co :
           {&job.spec.simulation.compile, &job.spec.distributed.compile}) {
        if (co->cache_dir.empty()) {
          co->cache_dir = opts_.cache.directory;
          co->cache_max_bytes = opts_.cache.max_bytes;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(mutex_);
      job.id = next_id_++;
      status_[job.id] = {job.id, job.spec.name, "queued", ""};
    }
    job.channel.write_json(event_accepted(job.id, job.spec.name));
    if (!opts_.quiet) {
      std::fprintf(stderr, "pfc_served: job %lld (%s) queued\n", job.id,
                   job.spec.name.c_str());
    }
    {
      std::lock_guard<std::mutex> lk(mutex_);
      queue_.push_back(std::move(job));
    }
    cv_work_.notify_one();
    return;
  }

  conn.write_json(event_error(-1, "unknown op \"" + op->str() + "\""));
}

void JobServer::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    // Graceful shutdown: drain jobs already accepted before exiting.
    if (queue_.empty()) return;
    PendingJob job = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    run_one(std::move(job));
  }
}

void JobServer::run_one(PendingJob job) {
  set_state(job.id, "running");
  job.channel.write_json(event_started(job.id));
  try {
    const app::JobResult result = app::run_job(job.spec);
    set_state(job.id, "finished");
    job.channel.write_json(event_finished(job.id, result.to_json()));
    if (!opts_.quiet) {
      std::fprintf(stderr,
                   "pfc_served: job %lld (%s) finished: %lld steps, "
                   "cache %s\n",
                   job.id, job.spec.name.c_str(), result.steps,
                   result.compile.cache_used
                       ? (result.compile.cache_hit ? "hit" : "miss")
                       : "off");
    }
  } catch (const std::exception& e) {
    // Per-job isolation: one failing job reports and dies alone.
    set_state(job.id, "failed", e.what());
    job.channel.write_json(event_error(job.id, e.what()));
    if (!opts_.quiet) {
      std::fprintf(stderr, "pfc_served: job %lld (%s) failed: %s\n", job.id,
                   job.spec.name.c_str(), e.what());
    }
  }
}

// --- client ------------------------------------------------------------------

Json Client::request_single(const Json& request) {
  LineChannel conn(connect_unix(path_));
  PFC_REQUIRE(conn.write_json(request), "daemon closed the connection");
  const Json reply = conn.read_json();
  PFC_REQUIRE(reply.is_object(), "daemon sent no reply");
  return reply;
}

Json Client::ping() { return request_single(Json::object().set("op", Json("ping"))); }

Json Client::list() { return request_single(Json::object().set("op", Json("list"))); }

Json Client::shutdown_server() {
  return request_single(Json::object().set("op", Json("shutdown")));
}

Json Client::submit(const Json& spec, std::vector<Json>* events) {
  LineChannel conn(connect_unix(path_));
  PFC_REQUIRE(conn.write_json(Json::object()
                                  .set("op", Json("submit"))
                                  .set("spec", spec)),
              "daemon closed the connection");
  for (;;) {
    const Json ev = conn.read_json();
    if (ev.kind() == Json::Kind::Null) {
      throw Error("daemon closed the stream before a terminal event");
    }
    const Json* kind = ev.find("event");
    PFC_REQUIRE(kind != nullptr && kind->is_string(),
                "malformed event from daemon: " + ev.dump(-1));
    if (kind->str() == "finished" || kind->str() == "error") return ev;
    if (events != nullptr) events->push_back(ev);
  }
}

}  // namespace pfc::serve
