#include "pfc/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "pfc/app/tuning.hpp"
#include "pfc/obs/log.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::serve {

using obs::Json;

namespace {

constexpr const char* kLogComponent = "pfc_served";

/// Terminal JobStatus entries beyond this are pruned oldest-first, so a
/// daemon fed by a flood of submits holds bounded state.
constexpr std::size_t kMaxStatusEntries = 1000;

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double unix_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The per-job correlation fields every log record of a job carries.
std::vector<obs::log::Field> job_fields(long long id,
                                        const std::string& name) {
  return {{"correlation_id", Json("job-" + std::to_string(id))},
          {"job", Json(id)},
          {"name", Json(name)}};
}

bool is_terminal_state(const std::string& s) {
  return s == "finished" || s == "failed" || s == "cancelled" ||
         s == "deadline_exceeded";
}

}  // namespace

// --- EventStream -------------------------------------------------------------

bool JobServer::EventStream::send(const Json& ev) {
  std::lock_guard<std::mutex> lock(mutex);
  if (peer_gone || !channel.valid()) return false;
  if (drop_after >= 0 && writes >= drop_after) {
    // Fault injection: the "client" vanishes after N events — close our
    // side so the worker exercises the peer-gone path mid-stream.
    channel = LineChannel(-1);
    peer_gone = true;
    return false;
  }
  if (!channel.write_json(ev)) {
    peer_gone = true;
    return false;
  }
  ++writes;
  return true;
}

// --- lifecycle ---------------------------------------------------------------

JobServer::~JobServer() { stop(); }

void JobServer::register_metrics() {
  auto& m = obs::MetricsRegistry::shared();
  m_submitted_ = &m.counter("pfc_jobs_submitted_total",
                            "Jobs accepted by the daemon");
  m_finished_ = &m.counter("pfc_jobs_finished_total",
                           "Jobs that completed successfully");
  m_failed_ = &m.counter("pfc_jobs_failed_total", "Jobs that failed");
  m_rejected_ = &m.counter(
      "pfc_jobs_rejected_total",
      "Submits shed by admission control (queue full or quota exhausted)");
  m_cancelled_ = &m.counter("pfc_jobs_cancelled_total",
                            "Jobs cancelled by a client or shutdown drain");
  m_deadline_ = &m.counter("pfc_jobs_deadline_exceeded_total",
                           "Jobs terminated by their deadline_seconds");
  m_watchdog_killed_ = &m.counter(
      "pfc_jobs_watchdog_killed_total",
      "Running jobs killed by the hung-worker watchdog (no progress "
      "heartbeat)");
  m_queue_depth_ =
      &m.gauge("pfc_queue_depth", "Jobs accepted but not yet started");
  m_inflight_ = &m.gauge("pfc_jobs_inflight", "Jobs currently running");
  m_duration_ = &m.histogram("pfc_job_duration_seconds",
                             "Wall time from started to terminal event",
                             obs::Histogram::duration_bounds());
  m_queue_seconds_ = &m.histogram("pfc_job_queue_seconds",
                                  "Wall time from accepted to started",
                                  obs::Histogram::duration_bounds());
  m_busy_seconds_ = &m.counter_double(
      "pfc_worker_busy_seconds_total",
      "Cumulative wall seconds workers spent running jobs");
  m_threads_clamped_ = &m.counter(
      "pfc_threads_clamped_total",
      "Jobs whose per-job thread count was clamped to the admission budget");
}

void JobServer::start() {
  PFC_REQUIRE(!started_, "JobServer::start() called twice");
  PFC_REQUIRE(opts_.workers >= 1, "need at least one worker");
  register_metrics();
  fault_ = opts_.fault.empty() ? ServeFaultPlan::from_env()
                               : ServeFaultPlan::parse(opts_.fault);
  admission_ = std::make_unique<AdmissionControl>(opts_.admission);
  admission_->touch("default");

  Endpoint un;
  un.path = opts_.socket_path;
  unix_fd_ = listen_endpoint(un);
  if (opts_.tcp_port >= 0) {
    Endpoint tcp;
    tcp.kind = Endpoint::Kind::Tcp;
    tcp.host = opts_.tcp_host;
    tcp.port = opts_.tcp_port;
    try {
      tcp_fd_ = listen_endpoint(tcp, 16, &tcp_bound_port_);
    } catch (...) {
      ::close(unix_fd_);
      ::unlink(opts_.socket_path.c_str());
      unix_fd_ = -1;
      throw;
    }
  }
  PFC_REQUIRE(::pipe(stop_pipe_) == 0,
              std::string("pipe(): ") + std::strerror(errno));

  started_ = true;
  if (fault_.any() && !opts_.quiet) {
    obs::log::warn(kLogComponent, "fault injection armed",
                   {{"hang_job", Json(fault_.hang_job)},
                    {"delay_ms", Json(fault_.delay_ms)},
                    {"drop_after_writes", Json(fault_.drop_after_writes)},
                    {"partial_write", Json(fault_.partial_write)}});
  }
  workers_.reserve(std::size_t(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  // The monitor runs whenever it has something to watch: deadlines are
  // per-spec, so any daemon needs the sweep; the hung-worker scan arms
  // only when watchdog_seconds > 0.
  monitor_.start(opts_.monitor_period_seconds, [this] { monitor_tick(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void JobServer::wait() {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_stopped_.wait(lk, [this] { return stopping_; });
  }
  join_all();
}

bool JobServer::wait_for(double seconds) {
  std::unique_lock<std::mutex> lk(mutex_);
  return cv_stopped_.wait_for(lk, std::chrono::duration<double>(seconds),
                              [this] { return stopping_; });
}

void JobServer::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
    accepting_ = false;
  }
  cv_work_.notify_all();
  cv_stopped_.notify_all();
  if (stop_pipe_[1] >= 0) {
    const char b = 's';
    (void)!::write(stop_pipe_[1], &b, 1);
  }
  join_all();
}

void JobServer::drain_and_stop() {
  if (!started_) return;
  // 1. Stop accepting: the dispatcher exits, listeners go quiet. Jobs
  //    already admitted keep their connections.
  {
    std::lock_guard<std::mutex> lk(mutex_);
    accepting_ = false;
  }
  if (stop_pipe_[1] >= 0) {
    const char b = 'd';
    (void)!::write(stop_pipe_[1], &b, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (!opts_.quiet) {
    obs::log::info(kLogComponent, "drain started",
                   {{"drain_seconds", Json(opts_.drain_seconds)}});
  }

  // 2. Give in-flight work its budget.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(std::max(0.0, opts_.drain_seconds));
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      bool live = !queue_.empty();
      for (const auto& [id, ctrl] : controls_) {
        live = live || (ctrl->running && !ctrl->terminal_sent);
      }
      if (!live) break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // 3. Budget spent: cancel stragglers. Queued jobs get their terminal
  //    event here; running jobs stop at the next step and their worker
  //    emits it.
  std::vector<std::pair<std::shared_ptr<EventStream>, long long>> drop;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    while (!queue_.empty()) {
      PendingJob pj = std::move(queue_.front());
      queue_.pop_front();
      auto it = controls_.find(pj.id);
      if (it == controls_.end() || it->second->terminal_sent) continue;
      it->second->terminal_sent = true;
      JobStatus& st = status_[pj.id];
      st.state = "cancelled";
      st.error = "daemon shutting down";
      drop.emplace_back(it->second->stream, pj.id);
      admission_->on_discard(it->second->tenant);
    }
    m_queue_depth_->set(double(queue_.size()));
    for (auto& [id, ctrl] : controls_) {
      if (ctrl->running && !ctrl->terminal_sent) {
        ctrl->token->request(app::CancelKind::Shutdown,
                             "daemon shutting down");
      }
    }
  }
  for (auto& [stream, id] : drop) {
    m_cancelled_->add(1);
    stream->send(event_cancelled(id, "daemon shutting down"));
  }

  // 4. stop() joins the workers, which finish (or cancel out of) their
  //    current job first — the drain's terminal events all flush.
  stop();
}

void JobServer::join_all() {
  std::lock_guard<std::mutex> jl(join_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  monitor_.stop();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    controls_.clear();  // closes any surviving submitter connections
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(opts_.socket_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

// --- bookkeeping -------------------------------------------------------------

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<JobStatus> out;
  out.reserve(status_.size());
  for (const auto& [id, st] : status_) out.push_back(st);
  return out;
}

void JobServer::set_state(long long id, const std::string& state,
                          const std::string& error) {
  std::lock_guard<std::mutex> lk(mutex_);
  JobStatus& st = status_[id];
  st.state = state;
  if (!error.empty()) st.error = error;
}

void JobServer::note_progress(long long id, const app::ProgressUpdate& u) {
  std::lock_guard<std::mutex> lk(mutex_);
  JobStatus& st = status_[id];
  st.step = u.step;
  st.steps_total = u.steps_total;
  st.fraction = u.fraction;
  st.mlups = u.mlups;
  const auto it = controls_.find(id);
  if (it != controls_.end()) {
    it->second->heartbeat_steady = steady_seconds();
  }
}

bool JobServer::try_mark_terminal(long long id) {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = controls_.find(id);
  if (it == controls_.end() || it->second->terminal_sent) return false;
  it->second->terminal_sent = true;
  return true;
}

bool JobServer::take_queued(long long id, PendingJob* out) {
  // Caller holds mutex_.
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [id](const PendingJob& p) { return p.id == id; });
  if (it == queue_.end()) return false;
  if (out != nullptr) *out = std::move(*it);
  queue_.erase(it);
  m_queue_depth_->set(double(queue_.size()));
  return true;
}

// --- dispatcher --------------------------------------------------------------

void JobServer::accept_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {stop_pipe_[0], POLLIN, 0};
    fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_ || !accepting_) break;
    }
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      if (opts_.io_timeout_seconds > 0.0) {
        set_io_timeout(fd, opts_.io_timeout_seconds);
      }
      try {
        handle_connection(LineChannel(fd));
      } catch (const std::exception& e) {
        // A malformed or stalled connection must not take the dispatcher
        // down (TimeoutError here = slow-loris request, dropped).
        obs::log::error(kLogComponent, "connection error",
                        {{"error", Json(e.what())}});
      }
    }
  }
}

void JobServer::handle_connection(LineChannel conn) {
  if (fault_.partial_write) conn.enable_partial_write();
  const Json req = conn.read_json();
  if (req.kind() == Json::Kind::Null) return;  // client connected, said nothing
  if (!req.is_object()) {
    conn.write_json(event_error(-1, "request must be a JSON object"));
    return;
  }
  const Json* op = req.find("op");
  if (op == nullptr || !op->is_string()) {
    conn.write_json(event_error(-1, "request needs a string \"op\""));
    return;
  }

  if (op->str() == "ping") {
    conn.write_json(event_pong());
    return;
  }

  if (op->str() == "list") {
    Json arr = Json::array();
    for (const JobStatus& st : jobs()) {
      Json e = Json::object()
                   .set("job", Json(st.id))
                   .set("name", Json(st.name))
                   .set("state", Json(st.state))
                   .set("preset", Json(st.preset))
                   .set("tenant", Json(st.tenant))
                   .set("submitted_unix", Json(st.submitted_unix))
                   .set("step", Json(st.step))
                   .set("steps_total", Json(st.steps_total))
                   .set("fraction", Json(st.fraction))
                   .set("mlups", Json(st.mlups));
      if (st.queued_seconds >= 0.0) {
        e.set("queued_seconds", Json(st.queued_seconds));
      }
      if (st.duration_seconds >= 0.0) {
        e.set("duration_seconds", Json(st.duration_seconds));
      }
      if (!st.error.empty()) e.set("error", Json(st.error));
      arr.push(std::move(e));
    }
    conn.write_json(
        Json::object().set("event", Json("jobs")).set("jobs", std::move(arr)));
    return;
  }

  if (op->str() == "metrics") {
    conn.write_json(event_metrics(obs::MetricsRegistry::shared().to_json()));
    return;
  }

  if (op->str() == "metrics_text") {
    conn.write_json(
        event_metrics_text(obs::MetricsRegistry::shared().to_prometheus()));
    return;
  }

  if (op->str() == "shutdown") {
    conn.write_json(event_bye());
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stopping_ = true;
      accepting_ = false;
    }
    cv_work_.notify_all();
    cv_stopped_.notify_all();
    if (stop_pipe_[1] >= 0) {
      const char b = 's';
      (void)!::write(stop_pipe_[1], &b, 1);
    }
    return;  // accept_loop exits on the stop pipe
  }

  if (op->str() == "cancel") {
    handle_cancel(conn, req);
    return;
  }

  if (op->str() == "submit") {
    handle_submit(std::move(conn), req);
    return;
  }

  if (op->str() == "tune") {
    handle_tune(std::move(conn), req);
    return;
  }

  conn.write_json(event_error(-1, "unknown op \"" + op->str() + "\""));
}

void JobServer::handle_submit(LineChannel conn, const Json& req) {
  const Json* spec_json = req.find("spec");
  if (spec_json == nullptr) {
    conn.write_json(event_error(-1, "submit needs a \"spec\""));
    return;
  }
  app::JobSpec spec;
  try {
    spec = app::JobSpec::from_json(*spec_json, "spec");
    spec.validate();
  } catch (const Error& e) {
    conn.write_json(event_error(-1, e.what()));
    return;
  }

  // Admission control: shed before any state is allocated — a rejected
  // submit leaves no trace beyond the counter and the event.
  std::string reason;
  if (!admission_->try_admit(spec.tenant, &reason)) {
    m_rejected_->add(1);
    conn.write_json(event_rejected(reason));
    obs::log::warn(kLogComponent, "submit rejected",
                   {{"tenant", Json(spec.tenant)},
                    {"name", Json(spec.name)},
                    {"reason", Json(reason)}});
    return;
  }

  // The daemon's kernel cache is the default; an explicit cache_dir in
  // the spec wins (a job may opt into its own cache or out entirely).
  if (!opts_.cache.directory.empty()) {
    for (app::CompileOptions* co :
         {&spec.simulation.compile, &spec.distributed.compile}) {
      if (co->cache_dir.empty()) {
        co->cache_dir = opts_.cache.directory;
        co->cache_max_bytes = opts_.cache.max_bytes;
      }
    }
  }
  // Daemon-level progress default: a spec that does not pin a cadence
  // samples at the daemon's configured one (run_job still falls back to
  // ~steps/8 when both are 0).
  if (spec.progress_every == 0 && opts_.progress_every > 0) {
    spec.progress_every = opts_.progress_every;
  }

  PendingJob job;
  job.spec = std::move(spec);
  job.submitted = std::chrono::steady_clock::now();
  auto stream = std::make_shared<EventStream>();
  stream->channel = std::move(conn);
  stream->drop_after = fault_.drop_after_writes;
  auto ctrl = std::make_shared<JobControl>();
  ctrl->token = std::make_shared<app::CancelToken>();
  ctrl->stream = stream;
  ctrl->tenant = job.spec.tenant;
  ctrl->name = job.spec.name;
  ctrl->deadline_seconds = job.spec.deadline_seconds;
  ctrl->submitted_steady = steady_seconds();
  ctrl->heartbeat_steady = ctrl->submitted_steady;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job.id = next_id_++;
    JobStatus st;
    st.id = job.id;
    st.name = job.spec.name;
    st.state = "queued";
    st.preset = job.spec.model.preset;
    st.tenant = job.spec.tenant;
    st.submitted_unix = unix_now();
    st.steps_total = job.spec.steps;
    status_[job.id] = std::move(st);
    controls_[job.id] = ctrl;
    // Bound daemon state: drop the oldest terminal records once past the
    // cap (live jobs are never pruned).
    if (status_.size() > kMaxStatusEntries) {
      for (auto it = status_.begin();
           it != status_.end() && status_.size() > kMaxStatusEntries;) {
        if (is_terminal_state(it->second.state)) {
          controls_.erase(it->first);
          it = status_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  stream->send(event_accepted(job.id, job.spec.name));
  m_submitted_->add(1);
  if (!opts_.quiet) {
    auto fields = job_fields(job.id, job.spec.name);
    fields.push_back({"preset", Json(job.spec.model.preset)});
    fields.push_back({"tenant", Json(job.spec.tenant)});
    fields.push_back({"steps", Json(job.spec.steps)});
    if (job.spec.deadline_seconds > 0.0) {
      fields.push_back({"deadline_seconds", Json(job.spec.deadline_seconds)});
    }
    obs::log::info(kLogComponent, "job queued", fields);
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(std::move(job));
    m_queue_depth_->set(double(queue_.size()));
  }
  // notify_all: with per-tenant quota gating, the woken worker is not
  // always one that can start this job.
  cv_work_.notify_all();
}

void JobServer::handle_tune(LineChannel conn, const Json& req) {
  const Json* spec_json = req.find("spec");
  if (spec_json == nullptr) {
    conn.write_json(event_error(-1, "tune needs a \"spec\""));
    return;
  }
  app::JobSpec spec;
  try {
    spec = app::JobSpec::from_json(*spec_json, "spec");
    spec.validate();
  } catch (const Error& e) {
    conn.write_json(event_error(-1, e.what()));
    return;
  }
  if (spec.mode != "single") {
    conn.write_json(
        event_error(-1, "tune supports only \"single\" mode specs"));
    return;
  }
  // Same cache-dir defaulting as submit, so the pre-warmed entry lands
  // where the later job will look for it.
  if (!opts_.cache.directory.empty() &&
      spec.simulation.compile.cache_dir.empty()) {
    spec.simulation.compile.cache_dir = opts_.cache.directory;
    spec.simulation.compile.cache_max_bytes = opts_.cache.max_bytes;
  }
  // A pre-warm request with tune left "off" means "run the search":
  // keeping "cached" (hit = instant reply) and "full" as given.
  if (spec.simulation.compile.tune == app::TuneMode::Off) {
    spec.simulation.compile.tune = app::TuneMode::Full;
  }
  if (!opts_.quiet) {
    obs::log::info(kLogComponent, "tune requested",
                   {{"name", Json(spec.name)},
                    {"preset", Json(spec.model.preset)}});
  }
  // The measured search runs for seconds; a detached thread keeps the
  // dispatcher accepting. Everything is captured by value — no `this` —
  // so daemon teardown cannot race a search still in flight (the thread
  // only touches its own spec copy and its own connection).
  std::thread([spec = std::move(spec), conn = std::move(conn)]() mutable {
    try {
      const app::GrandChemParams params = spec.make_params();
      app::GrandChemModel model(params);
      app::SimulationOptions tuned = spec.simulation;
      const obs::TuningStats stats = app::autotune_apply(model, tuned);
      conn.write_json(Json::object()
                          .set("event", Json("tuned"))
                          .set("name", Json(spec.name))
                          .set("tuning", stats.to_json()));
    } catch (const Error& e) {
      conn.write_json(event_error(-1, e.what()));
    }
  }).detach();
}

void JobServer::handle_cancel(LineChannel& conn, const Json& req) {
  const Json* job = req.find("job");
  if (job == nullptr || !job->is_number()) {
    conn.write_json(event_error(-1, "cancel needs a numeric \"job\""));
    return;
  }
  const long long id = (long long)(job->number());

  std::shared_ptr<EventStream> stream;
  std::string tenant;
  std::string ack_state;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto st = status_.find(id);
    if (st == status_.end()) {
      conn.write_json(
          event_error(id, "unknown job " + std::to_string(id)));
      return;
    }
    const auto it = controls_.find(id);
    if (it == controls_.end() || it->second->terminal_sent) {
      // Already terminal: cancelling a finished job is a no-op ack.
      conn.write_json(event_cancel_ack(id, st->second.state));
      return;
    }
    JobControl& ctrl = *it->second;
    if (!ctrl.running) {
      PendingJob pj;
      if (take_queued(id, &pj)) {
        ctrl.terminal_sent = true;
        st->second.state = "cancelled";
        st->second.error = "cancelled by client";
        stream = ctrl.stream;
        tenant = ctrl.tenant;
        ack_state = "cancelled";
      } else {
        // Between dequeue and the worker's running=true: the token is
        // armed, the worker notices before the first step.
        ctrl.token->request(app::CancelKind::Client, "cancelled by client");
        ack_state = "cancelling";
      }
    } else {
      ctrl.token->request(app::CancelKind::Client, "cancelled by client");
      ack_state = "cancelling";
    }
  }
  if (stream) {
    m_cancelled_->add(1);
    admission_->on_discard(tenant);
    cv_work_.notify_all();
    stream->send(event_cancelled(id, "cancelled by client"));
    if (!opts_.quiet) {
      obs::log::info(kLogComponent, "queued job cancelled",
                     job_fields(id, ""));
    }
  }
  conn.write_json(event_cancel_ack(id, ack_state));
}

// --- monitor -----------------------------------------------------------------

void JobServer::monitor_tick() {
  const double now = steady_seconds();
  struct Kill {
    long long id = 0;
    std::shared_ptr<EventStream> stream;
    std::string tenant;
    std::string name;
    std::string reason;
    double duration = -1.0;
    double queued = -1.0;
    bool watchdog = false;  ///< else: deadline expiry of a queued job
  };
  std::vector<Kill> kills;
  int replacements = 0;

  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) return;
    for (auto& [id, ctrl_ptr] : controls_) {
      JobControl& ctrl = *ctrl_ptr;
      if (ctrl.terminal_sent) continue;

      // Deadline sweep (wall budget measured from submit).
      if (ctrl.deadline_seconds > 0.0 &&
          now - ctrl.submitted_steady > ctrl.deadline_seconds) {
        const std::string reason =
            "deadline of " + std::to_string(ctrl.deadline_seconds) +
            " s exceeded";
        if (!ctrl.running) {
          PendingJob pj;
          if (take_queued(id, &pj)) {
            ctrl.terminal_sent = true;
            JobStatus& st = status_[id];
            st.state = "deadline_exceeded";
            st.error = reason;
            Kill k;
            k.id = id;
            k.stream = ctrl.stream;
            k.tenant = ctrl.tenant;
            k.name = ctrl.name;
            k.reason = reason;
            k.queued = now - ctrl.submitted_steady;
            kills.push_back(std::move(k));
          }
        } else {
          // Running: arm the token; the worker stops within one step
          // cadence and emits the terminal event itself.
          ctrl.token->request(app::CancelKind::Deadline, reason);
        }
        continue;
      }

      // Hung-worker watchdog: a running job with a stale heartbeat. The
      // monitor emits the terminal event itself — the client unblocks
      // even when the worker is wedged beyond recovery — and a fresh
      // worker restores the pool to full strength.
      if (opts_.watchdog_seconds > 0.0 && ctrl.running &&
          now - ctrl.heartbeat_steady > opts_.watchdog_seconds) {
        const std::string reason =
            "watchdog: no progress for " +
            std::to_string(opts_.watchdog_seconds) + " s";
        ctrl.terminal_sent = true;
        ctrl.watchdog_fired = true;
        ctrl.token->request(app::CancelKind::Watchdog, reason);
        JobStatus& st = status_[id];
        st.state = "failed";
        st.error = reason;
        st.duration_seconds = now - ctrl.started_steady;
        Kill k;
        k.id = id;
        k.stream = ctrl.stream;
        k.tenant = ctrl.tenant;
        k.name = ctrl.name;
        k.reason = reason;
        k.duration = now - ctrl.started_steady;
        k.queued = ctrl.started_steady - ctrl.submitted_steady;
        k.watchdog = true;
        kills.push_back(std::move(k));
        ++replacements;
        workers_.emplace_back([this] { worker_loop(); });
      }
    }
  }

  for (Kill& k : kills) {
    if (k.watchdog) {
      m_watchdog_killed_->add(1);
      m_failed_->add(1);
      m_inflight_->add(-1);
      if (k.duration >= 0.0) m_duration_->observe(k.duration);
      admission_->on_release(k.tenant);
      k.stream->send(event_error(k.id, k.reason, k.duration, k.queued));
      auto fields = job_fields(k.id, k.name);
      fields.push_back({"duration_seconds", Json(k.duration)});
      fields.push_back({"error", Json(k.reason)});
      obs::log::error(kLogComponent, "watchdog killed job", fields);
    } else {
      m_deadline_->add(1);
      admission_->on_discard(k.tenant);
      k.stream->send(event_deadline_exceeded(k.id, k.reason, -1.0, k.queued));
      auto fields = job_fields(k.id, k.name);
      fields.push_back({"error", Json(k.reason)});
      obs::log::warn(kLogComponent, "queued job past deadline", fields);
    }
  }
  if (!kills.empty()) cv_work_.notify_all();
}

// --- workers -----------------------------------------------------------------

void JobServer::worker_loop() {
  for (;;) {
    PendingJob job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      for (;;) {
        if (stopping_ && queue_.empty()) return;
        const auto it = std::find_if(
            queue_.begin(), queue_.end(), [this](const PendingJob& p) {
              return admission_->can_start(p.spec.tenant);
            });
        if (it != queue_.end()) {
          job = std::move(*it);
          queue_.erase(it);
          m_queue_depth_->set(double(queue_.size()));
          break;
        }
        cv_work_.wait(lk);
      }
    }
    if (!run_one(std::move(job))) return;
  }
}

bool JobServer::run_one(PendingJob job) {
  const auto started = std::chrono::steady_clock::now();
  const double queued = seconds_between(job.submitted, started);

  std::shared_ptr<JobControl> ctrl;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = controls_.find(job.id);
    if (it == controls_.end()) return true;  // pruned under our feet
    ctrl = it->second;
    if (ctrl->terminal_sent) return true;  // cancelled while dequeuing
    ctrl->running = true;
    ctrl->started_steady = steady_seconds();
    ctrl->heartbeat_steady = ctrl->started_steady;
    JobStatus& st = status_[job.id];
    st.state = "running";
    st.queued_seconds = queued;
  }
  admission_->on_start(ctrl->tenant);
  m_queue_seconds_->observe(queued);
  m_inflight_->add(1);
  ctrl->stream->send(event_started(job.id, queued));
  if (!opts_.quiet) {
    auto fields = job_fields(job.id, job.spec.name);
    fields.push_back({"queued_seconds", Json(queued)});
    obs::log::info(kLogComponent, "job started", fields);
  }

  // Admission clamp: `workers` jobs may run concurrently, so a job asking
  // for more threads than its share of the machine would oversubscribe
  // every core the moment the queue fills. Cap threads at
  // hardware_threads / workers (at least 1) instead of failing the job.
  {
    const int budget =
        std::max(1, ThreadPool::hardware_threads() / opts_.workers);
    int* threads = job.spec.mode == "distributed"
                       ? &job.spec.distributed.threads
                       : &job.spec.simulation.threads;
    if (*threads > budget) {
      m_threads_clamped_->add(1);
      auto fields = job_fields(job.id, job.spec.name);
      fields.push_back({"requested_threads", Json(*threads)});
      fields.push_back({"granted_threads", Json(budget)});
      fields.push_back({"workers", Json(opts_.workers)});
      obs::log::warn(kLogComponent, "thread request clamped", fields);
      *threads = budget;
    }
  }

  // The stepping thread is this worker, so the sink writes straight to the
  // submitter's stream. A vanished client (send == false) stops the event
  // stream but not the job — status/gauges keep updating.
  obs::Gauge& mlups_gauge = obs::MetricsRegistry::shared().gauge(
      "pfc_job_mlups", "Live throughput of the most recent progress sample",
      {{"preset", job.spec.model.preset}});
  const app::ProgressSink sink = [&](const app::ProgressUpdate& u) {
    note_progress(job.id, u);
    mlups_gauge.set(u.mlups);
    ctrl->stream->send(event_progress(job.id, u));
  };

  const auto finish = [&](const char* state) {
    const double duration =
        seconds_between(started, std::chrono::steady_clock::now());
    m_inflight_->add(-1);
    m_duration_->observe(duration);
    m_busy_seconds_->add(duration);
    admission_->on_release(ctrl->tenant);
    cv_work_.notify_all();  // quota slot freed: queued peers may start
    std::lock_guard<std::mutex> lk(mutex_);
    JobStatus& st = status_[job.id];
    st.state = state;
    st.duration_seconds = duration;
    return duration;
  };
  const auto drop_control = [&] {
    std::lock_guard<std::mutex> lk(mutex_);
    controls_.erase(job.id);  // closes the submitter's connection
  };

  try {
    // Fault injection rides the same cooperative-cancel path real code
    // does: a hung or delayed worker still honours its token, so deadline
    // and watchdog recovery are exercised without unjoinable threads.
    const app::CancelToken* token = ctrl->token.get();
    if (fault_.hang_job == job.id) {
      obs::log::warn(kLogComponent, "fault: hanging worker",
                     job_fields(job.id, job.spec.name));
      hang_until_cancelled(token, 120.0);
    }
    if (fault_.delay_ms > 0) {
      hang_until_cancelled(token, double(fault_.delay_ms) / 1000.0);
    }
    if (token->requested()) {
      throw app::JobCancelled(token->kind(), token->reason());
    }

    const app::JobResult result = app::run_job(job.spec, sink, token);
    const double duration = finish("finished");
    const double mlups = result.run.mlups();
    m_finished_->add(1);
    mlups_gauge.set(mlups);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      JobStatus& st = status_[job.id];
      st.step = result.steps;
      st.steps_total = result.steps;
      st.fraction = 1.0;
      st.mlups = mlups;
    }
    if (try_mark_terminal(job.id)) {
      ctrl->stream->send(
          event_finished(job.id, result.to_json(), duration, queued));
    }
    drop_control();
    if (!opts_.quiet) {
      auto fields = job_fields(job.id, job.spec.name);
      fields.push_back({"steps", Json(result.steps)});
      fields.push_back({"duration_seconds", Json(duration)});
      fields.push_back({"mlups", Json(mlups)});
      fields.push_back(
          {"cache", Json(result.compile.cache_used
                             ? (result.compile.cache_hit ? "hit" : "miss")
                             : "off")});
      obs::log::info(kLogComponent, "job finished", fields);
    }
  } catch (const app::JobCancelled& c) {
    const bool watchdog = c.kind() == app::CancelKind::Watchdog;
    if (!try_mark_terminal(job.id)) {
      // The monitor beat us to the terminal event (watchdog kill). Our
      // bookkeeping was already settled there; this thread just retires
      // so the replacement worker keeps the pool at configured strength.
      drop_control();
      if (!opts_.quiet) {
        obs::log::info(kLogComponent, "worker recovered after watchdog kill",
                       job_fields(job.id, job.spec.name));
      }
      return !watchdog;
    }
    const double duration = finish(
        c.kind() == app::CancelKind::Deadline ? "deadline_exceeded"
                                              : "cancelled");
    set_state(job.id,
              c.kind() == app::CancelKind::Deadline ? "deadline_exceeded"
                                                    : "cancelled",
              c.what());
    if (c.kind() == app::CancelKind::Deadline) {
      m_deadline_->add(1);
      ctrl->stream->send(event_deadline_exceeded(job.id, c.cancel_reason(),
                                                 duration, queued));
    } else {
      m_cancelled_->add(1);
      ctrl->stream->send(
          event_cancelled(job.id, c.cancel_reason(), duration, queued));
    }
    drop_control();
    if (!opts_.quiet) {
      auto fields = job_fields(job.id, job.spec.name);
      fields.push_back({"duration_seconds", Json(duration)});
      fields.push_back({"kind", Json(app::cancel_kind_name(c.kind()))});
      fields.push_back({"reason", Json(c.cancel_reason())});
      obs::log::info(kLogComponent, "job cancelled", fields);
    }
    return !watchdog;
  } catch (const std::exception& e) {
    // Per-job isolation: one failing job reports and dies alone.
    if (!try_mark_terminal(job.id)) {
      drop_control();
      std::lock_guard<std::mutex> lk(mutex_);
      const auto it = status_.find(job.id);
      return !(it != status_.end() && it->second.state == "failed" &&
               it->second.error.rfind("watchdog", 0) == 0);
    }
    const double duration = finish("failed");
    m_failed_->add(1);
    set_state(job.id, "failed", e.what());
    ctrl->stream->send(event_error(job.id, e.what(), duration, queued));
    drop_control();
    auto fields = job_fields(job.id, job.spec.name);
    fields.push_back({"duration_seconds", Json(duration)});
    fields.push_back({"error", Json(e.what())});
    obs::log::error(kLogComponent, "job failed", fields);
  }
  return true;
}

// --- client ------------------------------------------------------------------

Client::Client(const std::string& endpoint, ClientOptions opts)
    : endpoint_(parse_endpoint(endpoint)), opts_(opts) {}

LineChannel Client::open() {
  RetryPolicy policy;
  policy.attempts = std::max(1, opts_.retries);
  policy.backoff_initial_seconds = opts_.backoff_initial_seconds;
  policy.backoff_max_seconds = opts_.backoff_max_seconds;
  policy.timeout_seconds = opts_.timeout_seconds;
  const int fd = connect_with_retry(endpoint_, policy);
  if (opts_.timeout_seconds > 0.0) set_io_timeout(fd, opts_.timeout_seconds);
  return LineChannel(fd);
}

bool Client::is_terminal_event(const Json& ev) {
  const Json* kind = ev.find("event");
  if (kind == nullptr || !kind->is_string()) return false;
  const std::string& k = kind->str();
  return k == "finished" || k == "error" || k == "rejected" ||
         k == "cancelled" || k == "deadline_exceeded";
}

Json Client::request_single(const Json& request) {
  LineChannel conn = open();
  if (!conn.write_json(request)) {
    throw TransportError("daemon closed the connection");
  }
  const Json reply = conn.read_json();
  if (!reply.is_object()) throw ProtocolError("daemon sent no reply");
  return reply;
}

Json Client::ping() { return request_single(Json::object().set("op", Json("ping"))); }

Json Client::list() { return request_single(Json::object().set("op", Json("list"))); }

Json Client::cancel(long long job) {
  return request_single(
      Json::object().set("op", Json("cancel")).set("job", Json(job)));
}

Json Client::metrics() {
  const Json reply =
      request_single(Json::object().set("op", Json("metrics")));
  const Json* snap = reply.find("snapshot");
  if (snap == nullptr || !snap->is_object()) {
    throw ProtocolError("malformed metrics reply: " + reply.dump(-1));
  }
  return *snap;
}

std::string Client::metrics_text() {
  const Json reply =
      request_single(Json::object().set("op", Json("metrics_text")));
  const Json* text = reply.find("text");
  if (text == nullptr || !text->is_string()) {
    throw ProtocolError("malformed metrics_text reply: " + reply.dump(-1));
  }
  return text->str();
}

Json Client::shutdown_server() {
  return request_single(Json::object().set("op", Json("shutdown")));
}

Json Client::tune(const Json& spec) {
  return request_single(
      Json::object().set("op", Json("tune")).set("spec", spec));
}

Json Client::submit(const Json& spec, std::vector<Json>* events) {
  return submit(spec, [events](const Json& ev) {
    if (events != nullptr) events->push_back(ev);
  });
}

Json Client::submit(const Json& spec,
                    const std::function<void(const Json&)>& on_event) {
  LineChannel conn = open();
  if (!conn.write_json(
          Json::object().set("op", Json("submit")).set("spec", spec))) {
    throw TransportError("daemon closed the connection");
  }
  for (;;) {
    const Json ev = conn.read_json();
    if (ev.kind() == Json::Kind::Null) {
      throw ProtocolError("daemon closed the stream before a terminal event");
    }
    const Json* kind = ev.find("event");
    if (kind == nullptr || !kind->is_string()) {
      throw ProtocolError("malformed event from daemon: " + ev.dump(-1));
    }
    if (is_terminal_event(ev)) return ev;
    if (on_event) on_event(ev);
  }
}

}  // namespace pfc::serve
