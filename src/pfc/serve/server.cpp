#include "pfc/serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "pfc/obs/log.hpp"
#include "pfc/support/assert.hpp"

namespace pfc::serve {

using obs::Json;

namespace {

constexpr const char* kLogComponent = "pfc_served";

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double unix_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The per-job correlation fields every log record of a job carries.
std::vector<obs::log::Field> job_fields(long long id,
                                        const std::string& name) {
  return {{"correlation_id", Json("job-" + std::to_string(id))},
          {"job", Json(id)},
          {"name", Json(name)}};
}

}  // namespace

JobServer::~JobServer() { stop(); }

void JobServer::register_metrics() {
  auto& m = obs::MetricsRegistry::shared();
  m_submitted_ = &m.counter("pfc_jobs_submitted_total",
                            "Jobs accepted by the daemon");
  m_finished_ = &m.counter("pfc_jobs_finished_total",
                           "Jobs that completed successfully");
  m_failed_ = &m.counter("pfc_jobs_failed_total", "Jobs that failed");
  m_queue_depth_ =
      &m.gauge("pfc_queue_depth", "Jobs accepted but not yet started");
  m_inflight_ = &m.gauge("pfc_jobs_inflight", "Jobs currently running");
  m_duration_ = &m.histogram("pfc_job_duration_seconds",
                             "Wall time from started to terminal event",
                             obs::Histogram::duration_bounds());
  m_queue_seconds_ = &m.histogram("pfc_job_queue_seconds",
                                  "Wall time from accepted to started",
                                  obs::Histogram::duration_bounds());
  m_busy_seconds_ = &m.counter_double(
      "pfc_worker_busy_seconds_total",
      "Cumulative wall seconds workers spent running jobs");
  m_threads_clamped_ = &m.counter(
      "pfc_threads_clamped_total",
      "Jobs whose per-job thread count was clamped to the admission budget");
}

void JobServer::start() {
  PFC_REQUIRE(!started_, "JobServer::start() called twice");
  PFC_REQUIRE(opts_.workers >= 1, "need at least one worker");
  register_metrics();
  listen_fd_ = listen_unix(opts_.socket_path);
  started_ = true;
  pool_ = std::make_unique<ThreadPool>(opts_.workers);
  // run_on_all blocks its caller, so a dedicated thread hosts the pool;
  // every pool member (host thread included) becomes one job worker.
  pool_host_ = std::thread([this] {
    pool_->run_on_all([this](int) { worker_loop(); });
  });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void JobServer::wait() {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_stopped_.wait(lk, [this] { return stopping_; });
  }
  join_all();
}

void JobServer::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_stopped_.notify_all();
  // Break the accept loop out of its blocking accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  join_all();
}

void JobServer::join_all() {
  std::lock_guard<std::mutex> jl(join_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_host_.joinable()) pool_host_.join();
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
    listen_fd_ = -1;
  }
}

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<JobStatus> out;
  out.reserve(status_.size());
  for (const auto& [id, st] : status_) out.push_back(st);
  return out;
}

void JobServer::set_state(long long id, const std::string& state,
                          const std::string& error) {
  std::lock_guard<std::mutex> lk(mutex_);
  JobStatus& st = status_[id];
  st.state = state;
  if (!error.empty()) st.error = error;
}

void JobServer::note_progress(long long id, const app::ProgressUpdate& u) {
  std::lock_guard<std::mutex> lk(mutex_);
  JobStatus& st = status_[id];
  st.step = u.step;
  st.steps_total = u.steps_total;
  st.fraction = u.fraction;
  st.mlups = u.mlups;
}

void JobServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or broken beyond repair
    }
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) {
        ::close(fd);
        break;
      }
    }
    try {
      handle_connection(LineChannel(fd));
    } catch (const std::exception& e) {
      // A malformed connection must not take the dispatcher down.
      obs::log::error(kLogComponent, "connection error",
                      {{"error", Json(e.what())}});
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) break;
  }
}

void JobServer::handle_connection(LineChannel conn) {
  const Json req = conn.read_json();
  if (req.kind() == Json::Kind::Null) return;  // client connected, said nothing
  if (!req.is_object()) {
    conn.write_json(event_error(-1, "request must be a JSON object"));
    return;
  }
  const Json* op = req.find("op");
  if (op == nullptr || !op->is_string()) {
    conn.write_json(event_error(-1, "request needs a string \"op\""));
    return;
  }

  if (op->str() == "ping") {
    conn.write_json(event_pong());
    return;
  }

  if (op->str() == "list") {
    Json arr = Json::array();
    for (const JobStatus& st : jobs()) {
      Json e = Json::object()
                   .set("job", Json(st.id))
                   .set("name", Json(st.name))
                   .set("state", Json(st.state))
                   .set("preset", Json(st.preset))
                   .set("submitted_unix", Json(st.submitted_unix))
                   .set("step", Json(st.step))
                   .set("steps_total", Json(st.steps_total))
                   .set("fraction", Json(st.fraction))
                   .set("mlups", Json(st.mlups));
      if (st.queued_seconds >= 0.0) {
        e.set("queued_seconds", Json(st.queued_seconds));
      }
      if (st.duration_seconds >= 0.0) {
        e.set("duration_seconds", Json(st.duration_seconds));
      }
      if (!st.error.empty()) e.set("error", Json(st.error));
      arr.push(std::move(e));
    }
    conn.write_json(
        Json::object().set("event", Json("jobs")).set("jobs", std::move(arr)));
    return;
  }

  if (op->str() == "metrics") {
    conn.write_json(event_metrics(obs::MetricsRegistry::shared().to_json()));
    return;
  }

  if (op->str() == "metrics_text") {
    conn.write_json(
        event_metrics_text(obs::MetricsRegistry::shared().to_prometheus()));
    return;
  }

  if (op->str() == "shutdown") {
    conn.write_json(event_bye());
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
    cv_work_.notify_all();
    cv_stopped_.notify_all();
    return;  // accept_loop exits on its post-connection stopping check
  }

  if (op->str() == "submit") {
    const Json* spec_json = req.find("spec");
    if (spec_json == nullptr) {
      conn.write_json(event_error(-1, "submit needs a \"spec\""));
      return;
    }
    PendingJob job{0, app::JobSpec{}, std::move(conn), {}};
    try {
      job.spec = app::JobSpec::from_json(*spec_json, "spec");
      job.spec.validate();
    } catch (const Error& e) {
      job.channel.write_json(event_error(-1, e.what()));
      return;
    }
    // The daemon's kernel cache is the default; an explicit cache_dir in
    // the spec wins (a job may opt into its own cache or out entirely).
    if (!opts_.cache.directory.empty()) {
      for (app::CompileOptions* co :
           {&job.spec.simulation.compile, &job.spec.distributed.compile}) {
        if (co->cache_dir.empty()) {
          co->cache_dir = opts_.cache.directory;
          co->cache_max_bytes = opts_.cache.max_bytes;
        }
      }
    }
    // Daemon-level progress default: a spec that does not pin a cadence
    // samples at the daemon's configured one (run_job still falls back to
    // ~steps/8 when both are 0).
    if (job.spec.progress_every == 0 && opts_.progress_every > 0) {
      job.spec.progress_every = opts_.progress_every;
    }
    job.submitted = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lk(mutex_);
      job.id = next_id_++;
      JobStatus st;
      st.id = job.id;
      st.name = job.spec.name;
      st.state = "queued";
      st.preset = job.spec.model.preset;
      st.submitted_unix = unix_now();
      st.steps_total = job.spec.steps;
      status_[job.id] = std::move(st);
    }
    job.channel.write_json(event_accepted(job.id, job.spec.name));
    m_submitted_->add(1);
    if (!opts_.quiet) {
      auto fields = job_fields(job.id, job.spec.name);
      fields.push_back({"preset", Json(job.spec.model.preset)});
      fields.push_back({"steps", Json(job.spec.steps)});
      obs::log::info(kLogComponent, "job queued", fields);
    }
    {
      std::lock_guard<std::mutex> lk(mutex_);
      queue_.push_back(std::move(job));
      m_queue_depth_->set(double(queue_.size()));
    }
    cv_work_.notify_one();
    return;
  }

  conn.write_json(event_error(-1, "unknown op \"" + op->str() + "\""));
}

void JobServer::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    // Graceful shutdown: drain jobs already accepted before exiting.
    if (queue_.empty()) return;
    PendingJob job = std::move(queue_.front());
    queue_.pop_front();
    m_queue_depth_->set(double(queue_.size()));
    lk.unlock();
    run_one(std::move(job));
  }
}

void JobServer::run_one(PendingJob job) {
  const auto started = std::chrono::steady_clock::now();
  const double queued = seconds_between(job.submitted, started);
  m_queue_seconds_->observe(queued);
  m_inflight_->add(1);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    JobStatus& st = status_[job.id];
    st.state = "running";
    st.queued_seconds = queued;
  }
  job.channel.write_json(event_started(job.id, queued));
  if (!opts_.quiet) {
    auto fields = job_fields(job.id, job.spec.name);
    fields.push_back({"queued_seconds", Json(queued)});
    obs::log::info(kLogComponent, "job started", fields);
  }

  // Admission clamp: `workers` jobs may run concurrently, so a job asking
  // for more threads than its share of the machine would oversubscribe
  // every core the moment the queue fills. Cap threads at
  // hardware_threads / workers (at least 1) instead of failing the job.
  {
    const int budget =
        std::max(1, ThreadPool::hardware_threads() / opts_.workers);
    int* threads = job.spec.mode == "distributed"
                       ? &job.spec.distributed.threads
                       : &job.spec.simulation.threads;
    if (*threads > budget) {
      m_threads_clamped_->add(1);
      auto fields = job_fields(job.id, job.spec.name);
      fields.push_back({"requested_threads", Json(*threads)});
      fields.push_back({"granted_threads", Json(budget)});
      fields.push_back({"workers", Json(opts_.workers)});
      obs::log::warn(kLogComponent, "thread request clamped", fields);
      *threads = budget;
    }
  }

  // The stepping thread is this worker, so the sink writes straight to the
  // submitter's channel. A vanished client (write_json == false) stops the
  // event stream but not the job — status/gauges keep updating.
  obs::Gauge& mlups_gauge = obs::MetricsRegistry::shared().gauge(
      "pfc_job_mlups", "Live throughput of the most recent progress sample",
      {{"preset", job.spec.model.preset}});
  bool peer_gone = false;
  const app::ProgressSink sink = [&](const app::ProgressUpdate& u) {
    note_progress(job.id, u);
    mlups_gauge.set(u.mlups);
    if (!peer_gone) {
      peer_gone = !job.channel.write_json(event_progress(job.id, u));
    }
  };

  const auto finish = [&](const char* state) {
    const double duration =
        seconds_between(started, std::chrono::steady_clock::now());
    m_inflight_->add(-1);
    m_duration_->observe(duration);
    m_busy_seconds_->add(duration);
    std::lock_guard<std::mutex> lk(mutex_);
    JobStatus& st = status_[job.id];
    st.state = state;
    st.duration_seconds = duration;
    return duration;
  };

  try {
    const app::JobResult result = app::run_job(job.spec, sink);
    const double duration = finish("finished");
    const double mlups = result.run.mlups();
    m_finished_->add(1);
    mlups_gauge.set(mlups);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      JobStatus& st = status_[job.id];
      st.step = result.steps;
      st.steps_total = result.steps;
      st.fraction = 1.0;
      st.mlups = mlups;
    }
    job.channel.write_json(
        event_finished(job.id, result.to_json(), duration, queued));
    if (!opts_.quiet) {
      auto fields = job_fields(job.id, job.spec.name);
      fields.push_back({"steps", Json(result.steps)});
      fields.push_back({"duration_seconds", Json(duration)});
      fields.push_back({"mlups", Json(mlups)});
      fields.push_back(
          {"cache", Json(result.compile.cache_used
                             ? (result.compile.cache_hit ? "hit" : "miss")
                             : "off")});
      obs::log::info(kLogComponent, "job finished", fields);
    }
  } catch (const std::exception& e) {
    // Per-job isolation: one failing job reports and dies alone.
    const double duration = finish("failed");
    m_failed_->add(1);
    set_state(job.id, "failed", e.what());
    job.channel.write_json(event_error(job.id, e.what(), duration, queued));
    auto fields = job_fields(job.id, job.spec.name);
    fields.push_back({"duration_seconds", Json(duration)});
    fields.push_back({"error", Json(e.what())});
    obs::log::error(kLogComponent, "job failed", fields);
  }
}

// --- client ------------------------------------------------------------------

Json Client::request_single(const Json& request) {
  LineChannel conn(connect_unix(path_));
  PFC_REQUIRE(conn.write_json(request), "daemon closed the connection");
  const Json reply = conn.read_json();
  PFC_REQUIRE(reply.is_object(), "daemon sent no reply");
  return reply;
}

Json Client::ping() { return request_single(Json::object().set("op", Json("ping"))); }

Json Client::list() { return request_single(Json::object().set("op", Json("list"))); }

Json Client::metrics() {
  const Json reply =
      request_single(Json::object().set("op", Json("metrics")));
  const Json* snap = reply.find("snapshot");
  PFC_REQUIRE(snap != nullptr && snap->is_object(),
              "malformed metrics reply: " + reply.dump(-1));
  return *snap;
}

std::string Client::metrics_text() {
  const Json reply =
      request_single(Json::object().set("op", Json("metrics_text")));
  const Json* text = reply.find("text");
  PFC_REQUIRE(text != nullptr && text->is_string(),
              "malformed metrics_text reply: " + reply.dump(-1));
  return text->str();
}

Json Client::shutdown_server() {
  return request_single(Json::object().set("op", Json("shutdown")));
}

Json Client::submit(const Json& spec, std::vector<Json>* events) {
  return submit(spec, [events](const Json& ev) {
    if (events != nullptr) events->push_back(ev);
  });
}

Json Client::submit(const Json& spec,
                    const std::function<void(const Json&)>& on_event) {
  LineChannel conn(connect_unix(path_));
  PFC_REQUIRE(conn.write_json(Json::object()
                                  .set("op", Json("submit"))
                                  .set("spec", spec)),
              "daemon closed the connection");
  for (;;) {
    const Json ev = conn.read_json();
    if (ev.kind() == Json::Kind::Null) {
      throw Error("daemon closed the stream before a terminal event");
    }
    const Json* kind = ev.find("event");
    PFC_REQUIRE(kind != nullptr && kind->is_string(),
                "malformed event from daemon: " + ev.dump(-1));
    if (kind->str() == "finished" || kind->str() == "error") return ev;
    if (on_event) on_event(ev);
  }
}

}  // namespace pfc::serve
