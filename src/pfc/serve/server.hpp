// The serve daemon's core (DESIGN.md §9): accepts pfc-jobspec-v1 jobs over
// a Unix-domain socket, queues them, and runs them on a worker pool hosted
// by the existing ThreadPool. The dispatcher (accept loop) only parses and
// enqueues — every simulation runs on a worker, isolated by a per-job
// try/catch, streaming accepted/started/finished|error events back on the
// submitting connection. Identical jobs hitting the same daemon share the
// content-addressed kernel cache (backend::KernelCache), so the second
// submit of a spec reports cache_hit=true and near-zero external-compiler
// time in its compile report.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pfc/app/jobspec.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/obs/metrics.hpp"
#include "pfc/serve/protocol.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc::serve {

struct ServeOptions {
  std::string socket_path = "pfc_serve.sock";
  /// Concurrent jobs (each job may additionally thread its own sweep via
  /// its spec's threads option).
  int workers = 2;
  /// Kernel cache every job defaults to (a spec's own compile.cache_dir
  /// wins). Empty directory: per-job env/spec settings decide.
  backend::KernelCacheConfig cache;
  /// Suppress the per-job info-level log records (errors always log).
  bool quiet = false;
  /// Default progress cadence (steps between samples) for specs that
  /// leave progress_every at 0. 0 = run_job's own default (~steps / 8).
  long long progress_every = 0;
};

struct JobStatus {
  long long id = 0;
  std::string name;
  std::string state;   ///< "queued" | "running" | "finished" | "failed"
  std::string error;   ///< message when state == "failed"
  std::string preset;  ///< model preset of the spec
  double submitted_unix = 0.0;     ///< system clock at accept (unix seconds)
  double queued_seconds = -1.0;    ///< accept → started (-1 while queued)
  double duration_seconds = -1.0;  ///< started → terminal (-1 until then)
  long long step = 0;              ///< last progress sample
  long long steps_total = 0;
  double fraction = 0.0;  ///< live progress in [0, 1] (1 when finished)
  double mlups = 0.0;     ///< live throughput of the last sample
};

class JobServer {
 public:
  explicit JobServer(ServeOptions opts) : opts_(std::move(opts)) {}
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Binds the socket and launches the dispatcher + worker threads.
  /// Throws pfc::Error if the socket cannot be created.
  void start();
  /// Blocks until a shutdown request arrives (or stop() is called), then
  /// drains the queue and joins all threads.
  void wait();
  /// Initiates shutdown and joins (idempotent; also called by ~JobServer).
  void stop();

  const ServeOptions& options() const { return opts_; }
  /// Snapshot of every job this daemon has seen, in submission order.
  std::vector<JobStatus> jobs() const;

 private:
  struct PendingJob {
    long long id = 0;
    app::JobSpec spec;
    LineChannel channel;  ///< the submitter, kept open for event streaming
    std::chrono::steady_clock::time_point submitted;
  };

  void accept_loop();
  void handle_connection(LineChannel conn);
  void worker_loop();
  void run_one(PendingJob job);
  void join_all();
  void set_state(long long id, const std::string& state,
                 const std::string& error = "");
  /// Looks up the shared-registry instruments once (start()).
  void register_metrics();
  /// Folds one ProgressUpdate into status_[id] (worker threads).
  void note_progress(long long id, const app::ProgressUpdate& u);

  ServeOptions opts_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread pool_host_;  ///< hosts pool_->run_on_all(worker_loop)
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;     ///< queue push / stopping
  std::condition_variable cv_stopped_;  ///< wait()
  std::deque<PendingJob> queue_;
  std::map<long long, JobStatus> status_;
  long long next_id_ = 1;
  bool stopping_ = false;
  bool started_ = false;

  // Shared-registry instruments (obs::MetricsRegistry::shared(); valid for
  // the process lifetime, updated lock-free from dispatcher + workers).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_finished_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Histogram* m_duration_ = nullptr;
  obs::Histogram* m_queue_seconds_ = nullptr;
  obs::Gauge* m_busy_seconds_ = nullptr;  ///< counter_double
  obs::Counter* m_threads_clamped_ = nullptr;

  std::mutex join_mutex_;  ///< serializes join_all from wait()/stop()/dtor
};

/// Client side of the protocol — what pfc_servectl and the round-trip test
/// drive. One Client may issue many requests (each opens its own
/// connection).
class Client {
 public:
  explicit Client(std::string socket_path) : path_(std::move(socket_path)) {}

  /// Throws pfc::Error if the daemon is unreachable or replies garbage.
  obs::Json ping();
  /// Submits a spec and blocks streaming events until the terminal one
  /// ("finished" or "error"), which is returned. Non-terminal events are
  /// appended to *events when given.
  obs::Json submit(const obs::Json& spec,
                   std::vector<obs::Json>* events = nullptr);
  /// Like submit(), but invokes `on_event` for every non-terminal event
  /// as it arrives (what `pfc_servectl submit --follow` renders live).
  obs::Json submit(const obs::Json& spec,
                   const std::function<void(const obs::Json&)>& on_event);
  obs::Json list();
  /// The daemon's pfc-serve-metrics-v1 snapshot ("metrics" event's
  /// "snapshot" member).
  obs::Json metrics();
  /// The daemon's Prometheus text exposition.
  std::string metrics_text();
  /// Asks the daemon to exit; returns its "bye" ack.
  obs::Json shutdown_server();

 private:
  obs::Json request_single(const obs::Json& request);
  std::string path_;
};

}  // namespace pfc::serve
