// The serve daemon's core (DESIGN.md §9, hardened in §12): accepts
// pfc-jobspec-v1 jobs over a Unix-domain socket and/or TCP, runs them on a
// worker pool, and streams accepted/started/progress/terminal events back
// on the submitting connection. The dispatcher (accept loop) only parses,
// admits and enqueues — every simulation runs on a worker, isolated by a
// per-job try/catch. Identical jobs hitting the same daemon share the
// content-addressed kernel cache (backend::KernelCache).
//
// Robustness layer (§12):
//   * admission control — bounded queue + per-tenant quotas; overload gets
//     an explicit "rejected" event instead of an unbounded queue
//   * deadlines & cancellation — a cooperative CancelToken per job,
//     checked at step granularity; `cancel` op, spec deadline_seconds
//   * watchdog — a monitor thread kills jobs with no progress heartbeat,
//     emits the terminal event itself (the client unblocks even when the
//     worker is truly wedged) and spawns a replacement worker
//   * graceful drain — drain_and_stop() stops accepting, waits out
//     in-flight work, then cancels stragglers with CancelKind::Shutdown
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pfc/app/cancel.hpp"
#include "pfc/app/jobspec.hpp"
#include "pfc/backend/kernel_cache.hpp"
#include "pfc/obs/metrics.hpp"
#include "pfc/serve/admission.hpp"
#include "pfc/serve/fault.hpp"
#include "pfc/serve/protocol.hpp"
#include "pfc/serve/transport.hpp"
#include "pfc/serve/watchdog.hpp"
#include "pfc/support/thread_pool.hpp"

namespace pfc::serve {

struct ServeOptions {
  std::string socket_path = "pfc_serve.sock";
  /// TCP listener next to the Unix socket: -1 = no TCP, 0 = ephemeral
  /// port (the bound one is in tcp_bound_port() after start()).
  int tcp_port = -1;
  std::string tcp_host;  ///< "" = all interfaces
  /// Concurrent jobs (each job may additionally thread its own sweep via
  /// its spec's threads option).
  int workers = 2;
  /// Admission control: bounded queue + per-tenant quotas (0 = unlimited;
  /// see AdmissionLimits).
  AdmissionLimits admission;
  /// Kill running jobs with no progress heartbeat for this long (seconds;
  /// 0 = watchdog off). Note the heartbeat cadence is the job's progress
  /// cadence — set this comfortably above both the step interval and the
  /// worst cold-compile time, or pre-warm the kernel cache.
  double watchdog_seconds = 0.0;
  /// Monitor thread cadence for deadline + watchdog sweeps.
  double monitor_period_seconds = 0.25;
  /// Per-connection read/write deadline on accepted sockets (seconds;
  /// 0 = none). Bounds how long a slow-loris client can hold the
  /// dispatcher or stall an event stream.
  double io_timeout_seconds = 0.0;
  /// drain_and_stop(): how long in-flight jobs get before they are
  /// cancelled with CancelKind::Shutdown.
  double drain_seconds = 5.0;
  /// Fault-injection plan (tests; see fault.hpp). When empty,
  /// PFC_SERVE_FAULT is consulted at start().
  std::string fault;
  /// Kernel cache every job defaults to (a spec's own compile.cache_dir
  /// wins). Empty directory: per-job env/spec settings decide.
  backend::KernelCacheConfig cache;
  /// Suppress the per-job info-level log records (errors always log).
  bool quiet = false;
  /// Default progress cadence (steps between samples) for specs that
  /// leave progress_every at 0. 0 = run_job's own default (~steps / 8).
  long long progress_every = 0;
};

struct JobStatus {
  long long id = 0;
  std::string name;
  std::string state;   ///< "queued" | "running" | "finished" | "failed" |
                       ///< "cancelled" | "deadline_exceeded"
  std::string error;   ///< message when state == "failed"
  std::string preset;  ///< model preset of the spec
  std::string tenant;  ///< admission identity of the submitter
  double submitted_unix = 0.0;     ///< system clock at accept (unix seconds)
  double queued_seconds = -1.0;    ///< accept → started (-1 while queued)
  double duration_seconds = -1.0;  ///< started → terminal (-1 until then)
  long long step = 0;              ///< last progress sample
  long long steps_total = 0;
  double fraction = 0.0;  ///< live progress in [0, 1] (1 when finished)
  double mlups = 0.0;     ///< live throughput of the last sample
};

class JobServer {
 public:
  explicit JobServer(ServeOptions opts) : opts_(std::move(opts)) {}
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Binds the socket(s) and launches the dispatcher, worker and monitor
  /// threads. Throws pfc::Error if a socket cannot be created.
  void start();
  /// Blocks until a shutdown request arrives (or stop() is called), then
  /// drains the queue and joins all threads.
  void wait();
  /// Like wait() but gives up after `seconds`; returns true when the
  /// daemon is stopping (what pfc_served's signal loop polls).
  bool wait_for(double seconds);
  /// Initiates shutdown and joins (idempotent; also called by ~JobServer).
  /// Jobs already accepted still run to completion (legacy drain).
  void stop();
  /// Graceful shutdown: stop accepting, give in-flight jobs
  /// opts.drain_seconds to finish, cancel the rest with
  /// CancelKind::Shutdown, flush, join. Queued jobs that never started
  /// get a "cancelled" terminal event.
  void drain_and_stop();

  const ServeOptions& options() const { return opts_; }
  /// The TCP port actually bound (ephemeral port 0 resolves here);
  /// 0 when no TCP listener was requested.
  int tcp_bound_port() const { return tcp_bound_port_; }
  /// Snapshot of every job this daemon has seen, in submission order.
  std::vector<JobStatus> jobs() const;

 private:
  /// The submitter's connection, shared between the owning worker, the
  /// dispatcher (cancel of a queued job) and the monitor (watchdog /
  /// deadline terminal events). All writes go through send() — one mutex,
  /// one write counter (the drop-connection@N fault closes here).
  struct EventStream {
    std::mutex mutex;
    LineChannel channel{-1};
    bool peer_gone = false;
    long long writes = 0;
    long long drop_after = -1;  ///< fault: close after N successful writes

    bool send(const obs::Json& ev);
  };

  /// Everything the monitor and the cancel op need about a live job.
  /// Guarded by JobServer::mutex_ (heartbeat included — updates ride the
  /// existing note_progress lock).
  struct JobControl {
    std::shared_ptr<app::CancelToken> token;
    std::shared_ptr<EventStream> stream;
    std::string tenant;
    std::string name;
    double deadline_seconds = 0.0;  ///< 0 = none; measured from submit
    double submitted_steady = 0.0;  ///< steady_seconds() at accept
    double started_steady = -1.0;   ///< steady_seconds() at start (-1 queued)
    double heartbeat_steady = 0.0;  ///< last progress sample (or start)
    bool running = false;
    bool terminal_sent = false;  ///< exactly-once terminal event guard
    bool watchdog_fired = false; ///< tells the old worker to retire
  };

  struct PendingJob {
    long long id = 0;
    app::JobSpec spec;
    std::chrono::steady_clock::time_point submitted;
  };

  void accept_loop();
  void handle_connection(LineChannel conn);
  void handle_submit(LineChannel conn, const obs::Json& req);
  void handle_tune(LineChannel conn, const obs::Json& req);
  void handle_cancel(LineChannel& conn, const obs::Json& req);
  void worker_loop();
  /// Runs one job; returns false when this worker was watchdog-replaced
  /// and must retire (the replacement keeps the pool at full strength).
  bool run_one(PendingJob job);
  /// Monitor tick: deadline sweep (queued + running) and hung-worker scan.
  void monitor_tick();
  /// Claims the right to emit job `id`'s terminal event. Exactly one
  /// caller (worker, monitor, dispatcher, drain) wins.
  bool try_mark_terminal(long long id);
  /// Removes a job from queue_ by id; returns it (admission not touched).
  bool take_queued(long long id, PendingJob* out);
  void join_all();
  void set_state(long long id, const std::string& state,
                 const std::string& error = "");
  /// Looks up the shared-registry instruments once (start()).
  void register_metrics();
  /// Folds one ProgressUpdate into status_[id] and touches the watchdog
  /// heartbeat (worker threads).
  void note_progress(long long id, const app::ProgressUpdate& u);

  ServeOptions opts_;
  ServeFaultPlan fault_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_bound_port_ = 0;
  int stop_pipe_[2] = {-1, -1};  ///< self-pipe: stop() unblocks poll()
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  Watchdog monitor_;
  std::unique_ptr<AdmissionControl> admission_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;     ///< queue push / quota release / stop
  std::condition_variable cv_stopped_;  ///< wait()
  std::deque<PendingJob> queue_;
  std::map<long long, JobStatus> status_;
  std::map<long long, std::shared_ptr<JobControl>> controls_;
  long long next_id_ = 1;
  bool stopping_ = false;
  bool accepting_ = true;
  bool started_ = false;

  // Shared-registry instruments (obs::MetricsRegistry::shared(); valid for
  // the process lifetime, updated lock-free from dispatcher + workers).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_finished_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Counter* m_deadline_ = nullptr;
  obs::Counter* m_watchdog_killed_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Histogram* m_duration_ = nullptr;
  obs::Histogram* m_queue_seconds_ = nullptr;
  obs::Gauge* m_busy_seconds_ = nullptr;  ///< counter_double
  obs::Counter* m_threads_clamped_ = nullptr;

  std::mutex join_mutex_;  ///< serializes join_all from wait()/stop()/dtor
};

/// Per-request client knobs (pfc_servectl flags map straight onto these).
struct ClientOptions {
  /// Connect + read/write deadline per operation (seconds; 0 = none).
  double timeout_seconds = 0.0;
  /// Total connect attempts (1 = no retry). Only ConnectError retries —
  /// exponential backoff with deterministic jitter (transport.hpp).
  int retries = 1;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
};

/// Client side of the protocol — what pfc_servectl and the round-trip test
/// drive. One Client may issue many requests (each opens its own
/// connection). `endpoint` uses the transport grammar: a bare path or
/// "unix:path" for the Unix socket, "tcp:HOST:PORT" for TCP.
///
/// Error taxonomy (distinct pfc_servectl exit codes): ConnectError —
/// nothing listening; TimeoutError — listening but too slow;
/// ProtocolError — replied garbage.
class Client {
 public:
  explicit Client(const std::string& endpoint, ClientOptions opts = {});

  /// Throws TransportError/ProtocolError per the taxonomy above.
  obs::Json ping();
  /// Submits a spec and blocks streaming events until the terminal one
  /// ("finished", "error", "rejected", "cancelled" or
  /// "deadline_exceeded"), which is returned. Non-terminal events are
  /// appended to *events when given.
  obs::Json submit(const obs::Json& spec,
                   std::vector<obs::Json>* events = nullptr);
  /// Like submit(), but invokes `on_event` for every non-terminal event
  /// as it arrives (what `pfc_servectl submit --follow` renders live).
  obs::Json submit(const obs::Json& spec,
                   const std::function<void(const obs::Json&)>& on_event);
  /// Requests cancellation of a queued or running job; returns the
  /// daemon's "cancel_ack" (or "error" for an unknown id).
  obs::Json cancel(long long job);
  obs::Json list();
  /// The daemon's pfc-serve-metrics-v1 snapshot ("metrics" event's
  /// "snapshot" member).
  obs::Json metrics();
  /// The daemon's Prometheus text exposition.
  std::string metrics_text();
  /// Asks the daemon to exit; returns its "bye" ack.
  obs::Json shutdown_server();
  /// Pre-warms the tuning cache for a spec: the daemon runs the measured
  /// autotune search (or reports the cached winner) and replies with one
  /// "tuned" event carrying the v7 TuningStats shape. Blocks for the
  /// search duration on a cold cache.
  obs::Json tune(const obs::Json& spec);

  /// True when `ev` ends a submit stream.
  static bool is_terminal_event(const obs::Json& ev);

 private:
  LineChannel open();
  obs::Json request_single(const obs::Json& request);
  Endpoint endpoint_;
  ClientOptions opts_;
};

}  // namespace pfc::serve
