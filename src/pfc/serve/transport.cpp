#include "pfc/serve/transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace pfc::serve {

namespace {

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PFC_REQUIRE(path.size() < sizeof(addr.sun_path),
              "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[noreturn]] void throw_errno(const char* what, const std::string& where,
                              int e) {
  const std::string msg =
      std::string(what) + "(" + where + "): " + std::strerror(e);
  if (e == ECONNREFUSED || e == ENOENT || e == EHOSTUNREACH ||
      e == ENETUNREACH) {
    throw ConnectError(msg);
  }
  if (e == ETIMEDOUT || e == EAGAIN || e == EWOULDBLOCK || e == EINPROGRESS) {
    throw TimeoutError(msg);
  }
  throw TransportError(msg);
}

/// getaddrinfo for one numeric-or-named IPv4/IPv6 host. The caller frees
/// with freeaddrinfo.
addrinfo* resolve_tcp(const std::string& host, int port, bool listening) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listening) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const char* node = host.empty() ? (listening ? nullptr : "127.0.0.1")
                                  : host.c_str();
  const int rc = ::getaddrinfo(node, service.c_str(), &hints, &res);
  if (rc != 0) {
    throw ConnectError("resolve(" + (host.empty() ? "*" : host) + ":" +
                       service + "): " + ::gai_strerror(rc));
  }
  return res;
}

int tcp_port_of(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return 0;
  }
  if (ss.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&ss)->sin_port);
  }
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&ss)->sin6_port);
  }
  return 0;
}

/// connect() with an optional deadline via nonblocking + poll.
void connect_deadline(int fd, const sockaddr* addr, socklen_t len,
                      double timeout_seconds, const std::string& where) {
  if (timeout_seconds <= 0.0) {
    if (::connect(fd, addr, len) != 0) throw_errno("connect", where, errno);
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) throw_errno("connect", where, errno);
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, int(timeout_seconds * 1000.0));
    if (rc == 0) {
      throw TimeoutError("connect(" + where + "): timed out after " +
                         std::to_string(timeout_seconds) + " s");
    }
    if (rc < 0) throw_errno("connect", where, errno);
    int err = 0;
    socklen_t errlen = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
    if (err != 0) throw_errno("connect", where, err);
  }
  ::fcntl(fd, F_SETFL, flags);
}

/// Closes fd on scope exit unless released (exception safety around the
/// throw-happy connect paths).
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int f = fd;
    fd = -1;
    return f;
  }
};

}  // namespace

std::string Endpoint::describe() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("*") : host) + ":" +
         std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  PFC_REQUIRE(!spec.empty(), "endpoint must not be empty");
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.path = spec.substr(5);
    PFC_REQUIRE(!ep.path.empty(), "unix endpoint needs a path: " + spec);
    return ep;
  }
  if (spec.rfind("tcp:", 0) != 0) {
    ep.path = spec;  // bare strings stay Unix paths (back-compat)
    return ep;
  }
  ep.kind = Endpoint::Kind::Tcp;
  const std::string rest = spec.substr(4);
  const auto colon = rest.rfind(':');
  PFC_REQUIRE(colon != std::string::npos,
              "tcp endpoint needs tcp:HOST:PORT, got \"" + spec + "\"");
  ep.host = rest.substr(0, colon);
  const std::string port = rest.substr(colon + 1);
  PFC_REQUIRE(!port.empty() &&
                  port.find_first_not_of("0123456789") == std::string::npos,
              "tcp endpoint port must be a number, got \"" + spec + "\"");
  const long long p = std::stoll(port);
  PFC_REQUIRE(p >= 0 && p <= 65535,
              "tcp endpoint port out of range: " + port);
  ep.port = int(p);
  return ep;
}

int listen_endpoint(const Endpoint& ep, int backlog, int* bound_port) {
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket", ep.describe(), errno);
    FdGuard guard{fd};
    ::unlink(ep.path.c_str());
    sockaddr_un addr = unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw_errno("bind", ep.describe(), errno);
    }
    if (::listen(fd, backlog) != 0) {
      const int e = errno;
      ::unlink(ep.path.c_str());
      throw_errno("listen", ep.describe(), e);
    }
    if (bound_port != nullptr) *bound_port = 0;
    return guard.release();
  }

  addrinfo* res = resolve_tcp(ep.host, ep.port, /*listening=*/true);
  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    FdGuard guard{fd};
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last_errno = errno;
      continue;
    }
    if (bound_port != nullptr) *bound_port = tcp_port_of(fd);
    ::freeaddrinfo(res);
    return guard.release();
  }
  ::freeaddrinfo(res);
  throw_errno("listen", ep.describe(),
              last_errno != 0 ? last_errno : EADDRNOTAVAIL);
}

int connect_endpoint(const Endpoint& ep, double timeout_seconds) {
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket", ep.describe(), errno);
    FdGuard guard{fd};
    sockaddr_un addr = unix_addr(ep.path);
    connect_deadline(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr), timeout_seconds, ep.describe());
    return guard.release();
  }

  addrinfo* res = resolve_tcp(ep.host, ep.port, /*listening=*/false);
  std::exception_ptr last;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    FdGuard guard{fd};
    try {
      connect_deadline(fd, ai->ai_addr, ai->ai_addrlen, timeout_seconds,
                       ep.describe());
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return guard.release();
    } catch (...) {
      last = std::current_exception();
    }
  }
  ::freeaddrinfo(res);
  if (last) std::rethrow_exception(last);
  throw ConnectError("connect(" + ep.describe() + "): no usable address");
}

double retry_backoff_seconds(const RetryPolicy& policy, int attempt) {
  double base = policy.backoff_initial_seconds;
  for (int i = 0; i < attempt; ++i) base *= 2.0;
  base = std::min(base, policy.backoff_max_seconds);
  // Deterministic jitter in [1, 1.25): Knuth-hash the attempt index so
  // successive sleeps decorrelate without any global RNG state.
  const std::uint32_t h = std::uint32_t(attempt + 1) * 2654435761u;
  const double jitter = 1.0 + 0.25 * double((h >> 16) & 0xffu) / 256.0;
  return base * jitter;
}

int connect_with_retry(const Endpoint& ep, const RetryPolicy& policy) {
  const int attempts = std::max(1, policy.attempts);
  for (int attempt = 0;; ++attempt) {
    try {
      return connect_endpoint(ep, policy.timeout_seconds);
    } catch (const ConnectError&) {
      if (attempt + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        retry_backoff_seconds(policy, attempt)));
  }
}

void set_io_timeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = time_t(seconds);
    tv.tv_usec = suseconds_t((seconds - double(tv.tv_sec)) * 1e6);
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace pfc::serve
