// Transport layer of the serve daemon: one Endpoint grammar covering the
// Unix-domain socket (local clients, tests) and a TCP listener (remote
// clients), plus the client-side resilience the daemon's wire protocol
// relies on — connect retry with exponential backoff and deterministic
// jitter, per-connection I/O deadlines (slow-loris protection on the
// server, `--timeout-seconds` on the client), and an error taxonomy that
// lets pfc_servectl distinguish "nothing is listening" from "it is
// listening but too slow" from "it replied garbage" with distinct exit
// codes.
//
// Endpoint grammar:
//   "path/to/serve.sock"      Unix-domain stream socket (the default)
//   "unix:path/to/serve.sock" same, explicit
//   "tcp:HOST:PORT"           TCP stream socket (HOST may be a name,
//                             dotted quad, or empty for 0.0.0.0 when
//                             listening / 127.0.0.1 when connecting)
#pragma once

#include <string>

#include "pfc/support/assert.hpp"

namespace pfc::serve {

// --- error taxonomy ----------------------------------------------------------

/// Base of every transport-level failure.
class TransportError : public Error {
 public:
  using Error::Error;
};

/// The peer is unreachable: connection refused, socket file missing,
/// unresolvable host. Retryable.
class ConnectError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// An I/O deadline elapsed (connect, read or write). The peer exists but
/// did not answer in time.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// The peer answered, but not in the protocol's language (bad JSON line,
/// missing reply, malformed event).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

// --- endpoints ---------------------------------------------------------------

struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;  ///< Unix: socket file path
  std::string host;  ///< Tcp: host ("" = wildcard/loopback)
  int port = 0;      ///< Tcp: port (0 = ephemeral when listening)

  /// Canonical string form ("unix:..." / "tcp:host:port").
  std::string describe() const;
};

/// Parses the endpoint grammar above. Throws pfc::Error on junk (bad
/// port, empty spec).
Endpoint parse_endpoint(const std::string& spec);

/// Binds + listens. For TCP with port 0 the kernel picks a port;
/// `*bound_port` (when non-null) receives the actual one either way.
/// Throws TransportError on failure.
int listen_endpoint(const Endpoint& ep, int backlog = 16,
                    int* bound_port = nullptr);

/// One connect attempt. `timeout_seconds > 0` bounds the TCP connect
/// (nonblocking + poll); 0 = OS default. Throws ConnectError when nothing
/// is listening, TimeoutError when the deadline elapses.
int connect_endpoint(const Endpoint& ep, double timeout_seconds = 0.0);

/// Client-side connect resilience: `attempts` tries, exponential backoff
/// from `backoff_initial_seconds` doubling up to `backoff_max_seconds`,
/// each sleep scaled by a deterministic jitter in [1, 1.25) derived from
/// the attempt index (no global RNG — retry storms from many clients
/// still decorrelate because each is offset by its own attempt phase).
struct RetryPolicy {
  int attempts = 1;  ///< total tries (1 = no retry)
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  double timeout_seconds = 0.0;  ///< per-attempt connect deadline
};

/// The backoff the k-th failed attempt sleeps before attempt k+1
/// (k is 0-based). Exposed for tests: deterministic by design.
double retry_backoff_seconds(const RetryPolicy& policy, int attempt);

/// connect_endpoint with RetryPolicy semantics. Only ConnectError is
/// retried (a timeout means the peer exists — retrying would double the
/// caller's wait for nothing). Throws the last error when exhausted.
int connect_with_retry(const Endpoint& ep, const RetryPolicy& policy);

/// Arms SO_RCVTIMEO/SO_SNDTIMEO on a connected socket; subsequent reads/
/// writes past the deadline fail with EAGAIN, surfaced as TimeoutError by
/// LineChannel. seconds <= 0 clears the deadline.
void set_io_timeout(int fd, double seconds);

}  // namespace pfc::serve
