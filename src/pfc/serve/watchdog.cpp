#include "pfc/serve/watchdog.hpp"

#include <chrono>

namespace pfc::serve {

void Watchdog::start(double period_seconds, Tick tick) {
  if (thread_.joinable() || period_seconds <= 0.0 || !tick) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }
  tick_ = std::move(tick);
  thread_ = std::thread([this, period_seconds] { loop(period_seconds); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop(double period_seconds) {
  const auto period = std::chrono::duration<double>(period_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    lock.unlock();
    tick_();
    lock.lock();
  }
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace pfc::serve
