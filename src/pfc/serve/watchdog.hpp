// The daemon's monitor thread: a periodic ticker that runs the server's
// health scan (deadline sweep over queued+running jobs, hung-worker
// detection via progress heartbeats) on its own thread, decoupled from
// workers — a wedged worker cannot take the watchdog down with it.
//
// The class is deliberately dumb: it owns the thread and the cadence,
// the server owns the policy (what "hung" means, what to do about it).
// stop() is prompt (condition-variable sleep, not a plain sleep_for) so
// daemon shutdown never waits out a full period.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace pfc::serve {

class Watchdog {
 public:
  using Tick = std::function<void()>;

  Watchdog() = default;
  ~Watchdog() { stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts ticking `tick` every `period_seconds` (first tick after one
  /// period). No-op when already running or period <= 0.
  void start(double period_seconds, Tick tick);

  /// Stops and joins the ticker. Idempotent; safe when never started.
  void stop();

  bool running() const { return thread_.joinable(); }

 private:
  void loop(double period_seconds);

  Tick tick_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Monotonic seconds since an arbitrary epoch — the clock heartbeats and
/// deadlines are measured on (immune to wall-clock jumps).
double steady_seconds();

}  // namespace pfc::serve
