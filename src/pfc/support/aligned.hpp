// Cache-line/SIMD aligned allocation helpers used by runtime arrays.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace pfc {

inline constexpr std::size_t kDefaultAlignment = 64;  // AVX-512 / cache line

/// Allocates `n` objects of type T aligned to `alignment` bytes.
template <typename T>
T* aligned_alloc_n(std::size_t n, std::size_t alignment = kDefaultAlignment) {
  if (n == 0) return nullptr;
  std::size_t bytes = n * sizeof(T);
  // std::aligned_alloc requires size to be a multiple of alignment.
  bytes = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, bytes);
  if (p == nullptr) throw std::bad_alloc{};
  return static_cast<T*>(p);
}

struct AlignedFree {
  void operator()(void* p) const noexcept { std::free(p); }
};

/// Owning pointer for aligned allocations.
template <typename T>
using AlignedPtr = std::unique_ptr<T[], AlignedFree>;

template <typename T>
AlignedPtr<T> make_aligned(std::size_t n,
                           std::size_t alignment = kDefaultAlignment) {
  return AlignedPtr<T>(aligned_alloc_n<T>(n, alignment));
}

/// Rounds `n` up to the next multiple of `multiple` (for line padding).
constexpr std::size_t round_up(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

}  // namespace pfc
