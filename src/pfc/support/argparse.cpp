#include "pfc/support/argparse.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pfc/support/assert.hpp"

namespace pfc::support {

ArgParser::ArgParser(std::string prog, std::string usage)
    : prog_(std::move(prog)), usage_(std::move(usage)) {}

ArgParser& ArgParser::on_flag(const std::string& name,
                              std::function<void()> fn) {
  specs_.push_back(
      {name, Kind::Flag, [fn = std::move(fn)](const std::string*) { fn(); }});
  return *this;
}

ArgParser& ArgParser::on_value(const std::string& name,
                               std::function<void(const std::string&)> fn) {
  specs_.push_back({name, Kind::Value,
                    [fn = std::move(fn)](const std::string* v) { fn(*v); }});
  return *this;
}

ArgParser& ArgParser::on_optional_value(
    const std::string& name, std::function<void(const std::string*)> fn) {
  specs_.push_back({name, Kind::OptionalValue, std::move(fn)});
  return *this;
}

ArgParser& ArgParser::flag(const std::string& name, bool* out) {
  return on_flag(name, [out] { *out = true; });
}

ArgParser& ArgParser::value(const std::string& name, std::string* out) {
  return on_value(name, [out](const std::string& v) { *out = v; });
}

ArgParser& ArgParser::count(const std::string& name, long long* out) {
  return on_value(name, [name, out](const std::string& v) {
    *out = parse_count(v, "--" + name);
  });
}

ArgParser& ArgParser::positive(const std::string& name, int* out) {
  return on_value(name, [name, out](const std::string& v) {
    const long long n = parse_count(v, "--" + name);
    if (n < 1) {
      throw Error("invalid value \"" + v + "\" for --" + name +
                  " (expected a positive integer)");
    }
    *out = int(n);
  });
}

ArgParser& ArgParser::seconds(const std::string& name, double* out) {
  return on_value(name, [name, out](const std::string& v) {
    char* end = nullptr;
    const double s = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || !(s >= 0.0)) {
      throw Error("invalid value \"" + v + "\" for --" + name +
                  " (expected a non-negative number of seconds)");
    }
    *out = s;
  });
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const char*> ArgParser::parse(int argc, char** argv) const {
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      pos.push_back(arg);
      continue;
    }
    const char* eq = std::strchr(arg + 2, '=');
    const std::string name =
        eq != nullptr ? std::string(arg + 2, eq) : std::string(arg + 2);
    const Spec* spec = find(name);
    if (spec == nullptr) fail(std::string("unknown flag \"") + arg + '"');
    if (spec->kind == Kind::Flag && eq != nullptr) {
      fail("--" + name + " takes no value (got \"" + arg + "\")");
    }
    if (spec->kind == Kind::Value && eq == nullptr) {
      fail("--" + name + " needs a value (--" + name + "=...)");
    }
    try {
      if (eq != nullptr) {
        const std::string value(eq + 1);
        spec->fn(&value);
      } else {
        spec->fn(nullptr);
      }
    } catch (const Error& e) {
      fail(e.what());
    }
  }
  return pos;
}

void ArgParser::fail(const std::string& msg) const {
  std::fprintf(stderr, "%s: %s\nusage: %s\n", prog_.c_str(), msg.c_str(),
               usage_.c_str());
  std::exit(2);
}

long long parse_count(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) {
    throw Error("invalid value \"" + text + "\" for " + what +
                " (expected a non-negative integer)");
  }
  return v;
}

}  // namespace pfc::support
