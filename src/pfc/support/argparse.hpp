// Fail-fast command-line parsing shared by the examples and the serve
// tools. Flags are registered with handlers; any unknown flag, malformed
// value or handler-thrown pfc::Error prints a one-line diagnostic plus the
// usage text and exits with status 2 — the behaviour the *_rejects_bad_*
// ctests pin. Three flag shapes cover every caller:
//
//   * bool flags:       --overlap            (a value like --overlap=yes is
//                                             rejected, not ignored)
//   * valued flags:     --threads=N          (the '=' and value are required)
//   * optional-valued:  --trace[=path]       (bare or with a value)
//
// Everything that is not a registered flag and does not start with "--" is
// collected as a positional argument, in order.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace pfc::support {

class ArgParser {
 public:
  /// `prog` names the binary in diagnostics; `usage` is the body printed
  /// after "usage: " (may span multiple lines).
  ArgParser(std::string prog, std::string usage);

  /// --name with no value allowed.
  ArgParser& on_flag(const std::string& name, std::function<void()> fn);
  /// --name=value (value required).
  ArgParser& on_value(const std::string& name,
                      std::function<void(const std::string&)> fn);
  /// --name or --name=value; the handler receives nullptr when bare.
  ArgParser& on_optional_value(
      const std::string& name,
      std::function<void(const std::string*)> fn);

  // Convenience binders over the handler hooks.
  ArgParser& flag(const std::string& name, bool* out);
  ArgParser& value(const std::string& name, std::string* out);
  /// Non-negative integer value (rejects junk, minus signs, trailing text).
  ArgParser& count(const std::string& name, long long* out);
  /// Integer value >= 1.
  ArgParser& positive(const std::string& name, int* out);
  /// Non-negative real value ("0.5", "30"); what timeout/deadline flags use.
  ArgParser& seconds(const std::string& name, double* out);

  /// Parses argv; returns the positional arguments. Exits(2) with a usage
  /// message on any error (including pfc::Error thrown by a handler).
  std::vector<const char*> parse(int argc, char** argv) const;

  /// Prints "<prog>: <msg>" plus the usage text and exits(2).
  [[noreturn]] void fail(const std::string& msg) const;

 private:
  enum class Kind { Flag, Value, OptionalValue };
  struct Spec {
    std::string name;  // without the leading "--"
    Kind kind;
    std::function<void(const std::string*)> fn;
  };

  const Spec* find(const std::string& name) const;

  std::string prog_;
  std::string usage_;
  std::vector<Spec> specs_;
};

/// Parses a non-negative integer or fails with a message naming `what`
/// (shared by ArgParser::count and ad-hoc positional parsing).
long long parse_count(const std::string& text, const std::string& what);

}  // namespace pfc::support
