// Error handling primitives.
//
// The library throws pfc::Error for user-facing misuse (bad model
// configuration, malformed expressions) and uses PFC_ASSERT for internal
// invariants that indicate a bug in the pipeline itself.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pfc {

/// Exception type thrown by all pfc components on invalid input or state.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "pfc internal assertion failed: " << cond << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pfc

/// Internal invariant check; throws pfc::Error (never aborts) so that tests
/// can assert on failures and long-running simulations can recover.
#define PFC_ASSERT(cond, ...)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pfc::detail::assert_fail(#cond, __FILE__, __LINE__,               \
                                 ::std::string{"" __VA_ARGS__});          \
    }                                                                     \
  } while (0)

/// User-facing precondition check.
#define PFC_REQUIRE(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::pfc::Error(::std::string{"pfc: "} + (msg));                 \
    }                                                                     \
  } while (0)
