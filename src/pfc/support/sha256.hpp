// SHA-256 (FIPS 180-4): the content-addressing hash of the kernel cache.
// Kernel sources are a few tens of kilobytes and hashed once per compile
// request, so a straightforward portable implementation is plenty; what
// matters is that equivalent job specs map to the same key on every
// machine, which a cryptographic digest guarantees and a seeded fast hash
// would not.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace pfc::support {

/// Streaming SHA-256 context. Typical one-shot use: sha256_hex(text).
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Finalizes and returns the 32-byte digest. The context must not be
  /// updated afterwards.
  std::array<std::uint8_t, 32> digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// Lower-case hex digest of `text` (64 characters).
std::string sha256_hex(const std::string& text);

}  // namespace pfc::support
