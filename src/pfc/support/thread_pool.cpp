#include "pfc/support/thread_pool.hpp"

#include <algorithm>
#include <cstring>

#include "pfc/support/assert.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace pfc {

namespace {

#ifdef __linux__
void bind_current_thread(int cpu) {
  if (cpu < 0 || cpu >= CPU_SETSIZE) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best effort: a shrunken cpuset or racing affinity change is not fatal.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}
#else
void bind_current_thread(int) {}
#endif

}  // namespace

SlabPlan SlabPlan::make(std::int64_t begin, std::int64_t end, int workers,
                        std::int64_t align) {
  SlabPlan plan;
  plan.begin = begin;
  plan.end = end;
  plan.workers = std::max(1, workers);
  const std::int64_t n = std::max<std::int64_t>(0, end - begin);
  const std::int64_t a = std::max<std::int64_t>(1, align);
  std::int64_t chunk = (n + plan.workers - 1) / plan.workers;
  chunk = (chunk + a - 1) / a * a;
  plan.chunk = std::max<std::int64_t>(chunk, a);
  return plan;
}

std::pair<std::int64_t, std::int64_t> SlabPlan::slab(
    int w, std::int64_t lo_limit, std::int64_t hi_limit) const {
  std::int64_t lo = begin + chunk * w;
  std::int64_t hi = begin + chunk * (w + 1);
  if (w == 0) lo = lo_limit;
  if (w == workers - 1) hi = hi_limit;
  lo = std::max(lo, lo_limit);
  hi = std::min(hi, hi_limit);
  return {lo, hi};
}

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool(ThreadPoolOptions{num_threads, support::PinPolicy::None}) {}

ThreadPool::ThreadPool(const ThreadPoolOptions& opts) : pin_(opts.pin) {
  const int num_threads = opts.num_threads;
  PFC_REQUIRE(num_threads >= 1, "thread pool needs at least one thread");
  if (pin_ != support::PinPolicy::None) {
    const auto order = support::Topology::detect().pin_order(pin_);
    if (!order.empty()) {
      worker_cpu_.resize(static_cast<std::size_t>(num_threads));
      for (int i = 0; i < num_threads; ++i) {
        worker_cpu_[static_cast<std::size_t>(i)] =
            order[static_cast<std::size_t>(i) % order.size()];
      }
    } else {
      pin_ = support::PinPolicy::None;
    }
  }
  apply_pinning();  // bind the caller (worker 0) before spawning
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void ThreadPool::apply_pinning() {
  if (worker_cpu_.empty()) return;
#ifdef __linux__
  cpu_set_t saved;
  CPU_ZERO(&saved);
  if (pthread_getaffinity_np(pthread_self(), sizeof(saved), &saved) == 0) {
    saved_affinity_.resize(sizeof(saved));
    std::memcpy(saved_affinity_.data(), &saved, sizeof(saved));
    restore_affinity_ = true;
  }
#endif
  bind_current_thread(worker_cpu_[0]);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
#ifdef __linux__
  if (restore_affinity_) {
    cpu_set_t saved;
    std::memcpy(&saved, saved_affinity_.data(), sizeof(saved));
    (void)pthread_setaffinity_np(pthread_self(), sizeof(saved), &saved);
  }
#endif
}

int ThreadPool::worker_cpu(int index) const {
  if (index < 0 || static_cast<std::size_t>(index) >= worker_cpu_.size()) {
    return -1;
  }
  return worker_cpu_[static_cast<std::size_t>(index)];
}

void ThreadPool::worker_main(int index) {
  if (!worker_cpu_.empty()) {
    bind_current_thread(worker_cpu_[static_cast<std::size_t>(index)]);
  }
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void(int)> fn;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = current_;
    }
    fn(index);
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    current_ = fn;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0);
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t chunk_align) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int nt = num_threads();
  if (nt == 1 || n == 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t align = std::max<std::int64_t>(1, chunk_align);
  std::int64_t chunk = (n + nt - 1) / nt;
  chunk = (chunk + align - 1) / align * align;
  run_on_all([&](int t) {
    const std::int64_t lo = begin + chunk * t;
    const std::int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  });
}

int ThreadPool::hardware_threads() {
  // The affinity mask (cpuset/taskset) is the real budget in containers
  // and under `ctest -j`; raw hardware_concurrency over-counts there.
  return support::allowed_cpu_count();
}

}  // namespace pfc
