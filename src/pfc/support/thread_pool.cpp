#include "pfc/support/thread_pool.hpp"

#include <algorithm>

#include "pfc/support/assert.hpp"

namespace pfc {

ThreadPool::ThreadPool(int num_threads) {
  PFC_REQUIRE(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void(int)> fn;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = current_;
    }
    fn(index);
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    current_ = fn;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0);
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t chunk_align) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int nt = num_threads();
  if (nt == 1 || n == 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t align = std::max<std::int64_t>(1, chunk_align);
  std::int64_t chunk = (n + nt - 1) / nt;
  chunk = (chunk + align - 1) / align * align;
  run_on_all([&](int t) {
    const std::int64_t lo = begin + chunk * t;
    const std::int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  });
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace pfc
