// A small work-sharing thread pool.
//
// Used (a) by the backend to run generated kernels in parallel over slabs of
// the iteration space (the role OpenMP plays in the paper's generated C code)
// and (b) by the in-process message-passing layer's rank driver.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfc {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(chunk_begin, chunk_end) across the pool covering [begin, end).
  /// Blocks until all chunks are done. The calling thread participates.
  /// `chunk_align` rounds the chunk size up to a multiple (interior chunk
  /// boundaries land on multiples of begin + k*align; the last chunk takes
  /// the remainder) — the backend uses it to keep SIMD slab splits aligned.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn,
                    std::int64_t chunk_align = 1);

  /// Runs fn(thread_index) once on every pool member (including the caller,
  /// which gets index 0). Blocks until done.
  void run_on_all(const std::function<void(int)>& fn);

  /// Number of hardware threads, at least 1.
  static int hardware_threads();

 private:
  struct Task {
    std::function<void(int)> fn;  // receives worker index (1-based)
    std::uint64_t generation = 0;
  };

  void worker_main(int index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::function<void(int)> current_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace pfc
