// A small work-sharing thread pool.
//
// Used (a) by the backend to run generated kernels in parallel over slabs of
// the iteration space (the role OpenMP plays in the paper's generated C code)
// and (b) by the in-process message-passing layer's rank driver.
//
// Workers are persistent and have stable indices (0 = the caller), so a
// pinned pool gives each worker a fixed CPU for the lifetime of the pool —
// the basis for NUMA first-touch placement and static slab ownership
// (DESIGN.md §11).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "pfc/support/topology.hpp"

namespace pfc {

/// A static partition of an outer-axis iteration range into per-worker
/// slabs, matching ThreadPool::parallel_for's chunk math exactly (ceil
/// division rounded up to `align`). Sharing one plan between first-touch
/// initialization and every kernel launch keeps each worker's slab on the
/// pages that worker faulted in.
struct SlabPlan {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  int workers = 1;
  std::int64_t chunk = 0;

  static SlabPlan make(std::int64_t begin, std::int64_t end, int workers,
                       std::int64_t align = 1);

  /// Worker w's slab clipped to [lo_limit, hi_limit). Worker 0 extends
  /// down to lo_limit and the last worker up to hi_limit, so a caller may
  /// pass a box larger than [begin, end) (ghost-extended kernel ranges)
  /// and still get a complete disjoint cover. Returns an empty range
  /// (lo >= hi) when the worker has no rows.
  std::pair<std::int64_t, std::int64_t> slab(int w, std::int64_t lo_limit,
                                             std::int64_t hi_limit) const;
};

struct ThreadPoolOptions {
  int num_threads = 1;
  /// Binding of workers to CPUs (support::Topology::pin_order). None
  /// leaves placement to the OS scheduler.
  support::PinPolicy pin = support::PinPolicy::None;
};

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1), unpinned.
  explicit ThreadPool(int num_threads);
  /// Creates a pool, binding each worker (including the calling thread,
  /// worker 0) to the CPUs selected by opts.pin. The caller's original
  /// affinity is restored by the destructor.
  explicit ThreadPool(const ThreadPoolOptions& opts);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// The pinning policy this pool was built with.
  support::PinPolicy pin_policy() const { return pin_; }
  /// CPU worker `index` is bound to, or -1 when unpinned.
  int worker_cpu(int index) const;

  /// Runs fn(chunk_begin, chunk_end) across the pool covering [begin, end).
  /// Blocks until all chunks are done. The calling thread participates.
  /// `chunk_align` rounds the chunk size up to a multiple (interior chunk
  /// boundaries land on multiples of begin + k*align; the last chunk takes
  /// the remainder) — the backend uses it to keep SIMD slab splits aligned.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn,
                    std::int64_t chunk_align = 1);

  /// Runs fn(thread_index) once on every pool member (including the caller,
  /// which gets index 0). Blocks until done.
  void run_on_all(const std::function<void(int)>& fn);

  /// Number of usable hardware threads, at least 1. Respects the process
  /// CPU affinity mask (cpuset/taskset), so containerized runs and
  /// `ctest -j` don't oversubscribe.
  static int hardware_threads();

 private:
  struct Task {
    std::function<void(int)> fn;  // receives worker index (1-based)
    std::uint64_t generation = 0;
  };

  void worker_main(int index);
  void apply_pinning();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::function<void(int)> current_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;

  support::PinPolicy pin_ = support::PinPolicy::None;
  std::vector<int> worker_cpu_;   ///< per worker index; empty when unpinned
  bool restore_affinity_ = false;
  std::vector<unsigned char> saved_affinity_;  ///< caller's mask (opaque)
};

}  // namespace pfc
