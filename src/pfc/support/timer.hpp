// Wall-clock timing used by benchmarks and the measurement side of the
// performance-model comparisons (the paper used likwid; see DESIGN.md §2).
#pragma once

#include <chrono>

namespace pfc {

class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace pfc
