#include "pfc/support/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "pfc/support/assert.hpp"

#ifdef __linux__
#include <sched.h>
#endif

namespace pfc::support {

const char* pin_policy_name(PinPolicy p) {
  switch (p) {
    case PinPolicy::None:
      return "none";
    case PinPolicy::Compact:
      return "compact";
    case PinPolicy::Scatter:
      return "scatter";
  }
  return "none";
}

PinPolicy parse_pin_policy(const std::string& name) {
  if (name == "none") return PinPolicy::None;
  if (name == "compact") return PinPolicy::Compact;
  if (name == "scatter") return PinPolicy::Scatter;
  throw Error("pfc: unknown pin policy '" + name +
              "' (expected none|compact|scatter)");
}

namespace {

/// Parses a sysfs cpu list like "0-3,8,10-11" into cpu ids. Malformed
/// pieces are skipped (probe code must never throw).
std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto dash = item.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(item));
      } else {
        const int lo = std::stoi(item.substr(0, dash));
        const int hi = std::stoi(item.substr(dash + 1));
        for (int c = lo; c <= hi && c - lo < 1 << 20; ++c) cpus.push_back(c);
      }
    } catch (const std::exception&) {
      // skip malformed entry
    }
  }
  return cpus;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

/// Reads a small integer file (e.g. topology/core_id); def on failure.
int read_int(const std::string& path, int def) {
  std::string text;
  if (!read_file(path, &text)) return def;
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    return def;
  }
}

std::vector<int> affinity_cpus() {
  std::vector<int> cpus;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
#endif
  return cpus;
}

}  // namespace

int allowed_cpu_count() {
  const auto cpus = affinity_cpus();
  if (!cpus.empty()) return static_cast<int>(cpus.size());
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Topology Topology::detect() {
  const char* root = std::getenv("PFC_SYSFS_ROOT");
  return detect(root != nullptr && *root != '\0' ? root : "/sys", true);
}

Topology Topology::detect(const std::string& sysfs_root,
                          bool respect_affinity) {
  Topology topo;
  const std::string cpu_dir = sysfs_root + "/devices/system/cpu";

  std::vector<int> online;
  std::string text;
  if (read_file(cpu_dir + "/online", &text)) online = parse_cpu_list(text);

  std::vector<int> allowed = respect_affinity ? affinity_cpus()
                                              : std::vector<int>{};
  if (online.empty()) {
    // No sysfs tree: fall back to the affinity mask (or one flat cpu set).
    online = allowed;
    if (online.empty()) {
      const int n = allowed_cpu_count();
      for (int c = 0; c < n; ++c) online.push_back(c);
    }
  }
  if (!allowed.empty()) {
    const std::set<int> mask(allowed.begin(), allowed.end());
    online.erase(std::remove_if(online.begin(), online.end(),
                                [&](int c) { return mask.count(c) == 0; }),
                 online.end());
    if (online.empty()) online = allowed;  // mask disjoint from sysfs: trust it
  }
  std::sort(online.begin(), online.end());
  online.erase(std::unique(online.begin(), online.end()), online.end());

  // NUMA node of each cpu from devices/system/node/node*/cpulist.
  std::map<int, int> cpu_node;
  for (int node = 0; node < 1024; ++node) {
    const std::string list_path = sysfs_root + "/devices/system/node/node" +
                                  std::to_string(node) + "/cpulist";
    if (!read_file(list_path, &text)) {
      if (node > 0) break;  // node0 may be absent on fake trees; keep probing
      continue;
    }
    for (int c : parse_cpu_list(text)) cpu_node[c] = node;
  }

  std::set<std::pair<int, int>> seen_cores;  // (package, core)
  std::set<int> packages, nodes;
  for (int c : online) {
    const std::string base = cpu_dir + "/cpu" + std::to_string(c);
    CpuSlot slot;
    slot.cpu = c;
    slot.package = read_int(base + "/topology/physical_package_id", 0);
    slot.core = read_int(base + "/topology/core_id", c);
    const auto it = cpu_node.find(c);
    slot.node = it != cpu_node.end() ? it->second : 0;
    slot.smt = !seen_cores.insert({slot.package, slot.core}).second;
    packages.insert(slot.package);
    nodes.insert(slot.node);
    topo.cpus.push_back(slot);
  }
  if (topo.cpus.empty()) {
    topo.cpus.push_back(CpuSlot{});  // degenerate but never empty
    packages.insert(0);
    nodes.insert(0);
    seen_cores.insert({0, 0});
  }
  topo.packages = static_cast<int>(packages.size());
  topo.nodes = static_cast<int>(nodes.size());
  topo.cores = static_cast<int>(seen_cores.size());
  return topo;
}

std::vector<int> Topology::pin_order(PinPolicy policy) const {
  std::vector<int> order;
  if (policy == PinPolicy::None || cpus.empty()) return order;
  order.reserve(cpus.size());

  auto emit = [&](bool smt_pass) {
    if (policy == PinPolicy::Compact) {
      // Package-major, core-minor: saturate one socket before the next.
      std::vector<CpuSlot> sorted(cpus);
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const CpuSlot& a, const CpuSlot& b) {
                         if (a.package != b.package) return a.package < b.package;
                         if (a.node != b.node) return a.node < b.node;
                         if (a.core != b.core) return a.core < b.core;
                         return a.cpu < b.cpu;
                       });
      for (const auto& s : sorted) {
        if (s.smt == smt_pass) order.push_back(s.cpu);
      }
    } else {
      // Scatter: round-robin across NUMA nodes so every memory controller
      // is engaged even at low thread counts.
      std::map<int, std::vector<int>> by_node;
      for (const auto& s : cpus) {
        if (s.smt == smt_pass) by_node[s.node].push_back(s.cpu);
      }
      bool more = true;
      for (std::size_t i = 0; more; ++i) {
        more = false;
        for (auto& [node, list] : by_node) {
          (void)node;
          if (i < list.size()) {
            order.push_back(list[i]);
            more = true;
          }
        }
      }
    }
  };
  emit(false);  // physical cores first
  emit(true);   // then SMT siblings
  return order;
}

}  // namespace pfc::support
