// CPU topology probe for NUMA-aware thread placement (DESIGN.md §11).
//
// Reads the Linux sysfs tree (packages, cores, SMT siblings, NUMA nodes)
// and intersects it with the process CPU affinity mask, so pinning decisions
// respect cpusets/taskset the same way hardware_threads() does. A fake
// sysfs root can be injected (PFC_SYSFS_ROOT or the explicit overload) for
// deterministic unit tests on any machine.
#pragma once

#include <string>
#include <vector>

namespace pfc::support {

/// How ThreadPool workers are bound to CPUs.
enum class PinPolicy {
  /// No binding; the OS scheduler places threads (the seed behaviour).
  None,
  /// Fill one package before the next: physical cores first (package
  /// major, core minor), SMT siblings only once every physical core of
  /// every package carries a worker. Best for cache sharing.
  Compact,
  /// Round-robin across NUMA nodes, physical cores first. Best for
  /// memory-bandwidth-bound sweeps: every node's controllers are engaged
  /// even at low thread counts.
  Scatter,
};

const char* pin_policy_name(PinPolicy p);
/// Parses "none" | "compact" | "scatter" (throws pfc::Error otherwise).
PinPolicy parse_pin_policy(const std::string& name);

/// One logical CPU the process may run on.
struct CpuSlot {
  int cpu = 0;      ///< logical cpu id (sysfs cpuN)
  int core = 0;     ///< topology/core_id (unique within a package)
  int package = 0;  ///< topology/physical_package_id
  int node = 0;     ///< NUMA node owning this cpu
  bool smt = false; ///< true if an earlier cpu shares this (package, core)
};

/// The machine as visible to this process: only CPUs inside the affinity
/// mask appear (unless detection is told not to restrict).
struct Topology {
  std::vector<CpuSlot> cpus;  ///< sorted by logical cpu id
  int packages = 1;
  int nodes = 1;
  int cores = 1;  ///< distinct physical cores across packages

  /// Probes /sys (or $PFC_SYSFS_ROOT when set) restricted to the process
  /// affinity mask. Never throws: unreadable trees degrade to a flat
  /// single-package, single-node topology over the allowed CPUs.
  static Topology detect();
  /// Probes `sysfs_root` (a directory containing devices/system/...).
  /// `respect_affinity` intersects with sched_getaffinity.
  static Topology detect(const std::string& sysfs_root, bool respect_affinity);

  /// CPU ids in worker-binding order for `policy` (empty for None).
  /// Worker i binds to order[i % order.size()].
  std::vector<int> pin_order(PinPolicy policy) const;
};

/// Number of CPUs the process may run on (sched_getaffinity), at least 1.
/// Falls back to std::thread::hardware_concurrency off Linux.
int allowed_cpu_count();

}  // namespace pfc::support
