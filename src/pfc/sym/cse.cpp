#include "pfc/sym/cse.hpp"

#include <unordered_map>

#include "pfc/support/assert.hpp"

namespace pfc::sym {

namespace {

bool is_leaf(const Expr& e) {
  switch (e->kind()) {
    case Kind::Number:
    case Kind::Symbol:
    case Kind::FieldRef:
    case Kind::Random: return true;
    default: return false;
  }
}

/// number * leaf — not worth a register.
bool is_trivial(const Expr& e) {
  if (is_leaf(e)) return true;
  if (e->kind() == Kind::Mul && e->arity() == 2 &&
      e->arg(0)->kind() == Kind::Number && is_leaf(e->arg(1))) {
    return true;
  }
  return false;
}

/// Structural deduplication: every distinct structure maps to exactly one
/// representative node, and representatives' children are representatives.
class Dedup {
 public:
  Expr canon(const Expr& e) {
    auto mit = memo_.find(e.get());
    if (mit != memo_.end()) return mit->second;

    Expr rep;
    if (e->arity() == 0) {
      rep = intern(e);
    } else {
      std::vector<Expr> args;
      args.reserve(e->arity());
      bool changed = false;
      for (const auto& a : e->args()) {
        Expr c = canon(a);
        changed = changed || c.get() != a.get();
        args.push_back(std::move(c));
      }
      rep = intern(changed ? with_args(e, std::move(args)) : e);
    }
    memo_.emplace(e.get(), rep);
    return rep;
  }

 private:
  Expr intern(const Expr& e) {
    auto& bucket = table_[e->hash()];
    for (const auto& x : bucket) {
      if (equals(x, e)) return x;
    }
    bucket.push_back(e);
    return e;
  }

  std::unordered_map<const Node*, Expr> memo_;
  std::unordered_map<std::size_t, std::vector<Expr>> table_;
};

}  // namespace

CseResult cse(const std::vector<Expr>& roots, const std::string& prefix) {
  Dedup dedup;
  std::vector<Expr> croots;
  croots.reserve(roots.size());
  for (const auto& r : roots) croots.push_back(dedup.canon(r));

  // Collect unique nodes in post-order (children before parents) and count
  // uses: one per parent edge in the deduplicated DAG plus one per root.
  std::vector<Expr> order;
  std::unordered_map<const Node*, int> uses;
  std::unordered_map<const Node*, bool> visited;
  const std::function<void(const Expr&)> visit = [&](const Expr& e) {
    if (visited[e.get()]) return;
    visited[e.get()] = true;
    for (const auto& a : e->args()) {
      visit(a);
      ++uses[a.get()];
    }
    order.push_back(e);
  };
  for (const auto& r : croots) {
    visit(r);
    ++uses[r.get()];
  }

  // Decide which nodes become temporaries.
  std::unordered_map<const Node*, Expr> temp_symbol;
  CseResult result;
  int counter = 0;
  // `order` is post-order, so children are decided before parents and the
  // emitted temp list is automatically topologically sorted.
  std::unordered_map<const Node*, Expr> rewritten;
  const auto rewrite = [&](const Expr& e) -> Expr {
    if (e->arity() == 0) return e;
    std::vector<Expr> args;
    args.reserve(e->arity());
    bool changed = false;
    for (const auto& a : e->args()) {
      auto ts = temp_symbol.find(a.get());
      if (ts != temp_symbol.end()) {
        args.push_back(ts->second);
        changed = true;
        continue;
      }
      auto rw = rewritten.find(a.get());
      PFC_ASSERT(rw != rewritten.end());
      changed = changed || rw->second.get() != a.get();
      args.push_back(rw->second);
    }
    return changed ? with_args(e, std::move(args)) : e;
  };

  for (const auto& e : order) {
    const Expr body = rewrite(e);
    rewritten.emplace(e.get(), body);
    if (uses[e.get()] >= 2 && !is_trivial(e)) {
      Expr s = symbol(prefix + "_" + std::to_string(counter++));
      result.temps.emplace_back(s, body);
      temp_symbol.emplace(e.get(), std::move(s));
    }
  }

  result.roots.reserve(croots.size());
  for (const auto& r : croots) {
    auto ts = temp_symbol.find(r.get());
    if (ts != temp_symbol.end()) {
      result.roots.push_back(ts->second);
    } else {
      result.roots.push_back(rewritten.at(r.get()));
    }
  }
  return result;
}

}  // namespace pfc::sym
