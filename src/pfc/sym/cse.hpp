// Global common subexpression elimination (paper §3.3: "a global common
// subexpression elimination step is done across all terms").
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "pfc/sym/expr.hpp"

namespace pfc::sym {

struct CseResult {
  /// Temporaries in definition order (each may reference earlier temps).
  std::vector<std::pair<Expr, Expr>> temps;  // (symbol, definition)
  /// Input roots rewritten in terms of the temporaries.
  std::vector<Expr> roots;
};

/// Extracts every non-trivial compound subexpression used at least twice
/// across `roots` into a fresh temporary symbol `<prefix>_<i>`.
/// "Trivial" = leaves and `number * leaf` products (cheaper to recompute
/// than to hold in a register).
CseResult cse(const std::vector<Expr>& roots,
              const std::string& prefix = "cse");

}  // namespace pfc::sym
