#include "pfc/sym/diff.hpp"

#include "pfc/support/assert.hpp"

namespace pfc::sym {

Expr diff(const Expr& e, const Expr& var) {
  PFC_REQUIRE(var->kind() == Kind::Symbol || var->kind() == Kind::FieldRef ||
                  var->kind() == Kind::Diff || var->kind() == Kind::Dt,
              "diff: variable must be Symbol, FieldRef, Diff or Dt");
  if (equals(e, var)) return num(1.0);

  switch (e->kind()) {
    case Kind::Number:
    case Kind::Symbol:
    case Kind::FieldRef:
    case Kind::Random: return num(0.0);

    case Kind::Diff:
    case Kind::Dt:
      // Opaque unless it *is* the variable (handled above): the variational
      // calculus convention treats the field value and its derivatives as
      // independent variables of the integrand, so d(Diff(phi))/d(phi) = 0.
      return num(0.0);

    case Kind::Add: {
      std::vector<Expr> terms;
      terms.reserve(e->arity());
      for (const auto& a : e->args()) terms.push_back(diff(a, var));
      return add(std::move(terms));
    }

    case Kind::Mul: {
      // n-ary product rule: sum over i of a_i' * prod_{j != i} a_j
      std::vector<Expr> terms;
      terms.reserve(e->arity());
      for (std::size_t i = 0; i < e->arity(); ++i) {
        Expr di = diff(e->arg(i), var);
        if (di->is_zero()) continue;
        std::vector<Expr> factors{di};
        for (std::size_t j = 0; j < e->arity(); ++j) {
          if (j != i) factors.push_back(e->arg(j));
        }
        terms.push_back(mul(std::move(factors)));
      }
      return add(std::move(terms));
    }

    case Kind::Pow: {
      const Expr& b = e->arg(0);
      const Expr& p = e->arg(1);
      const Expr db = diff(b, var);
      const Expr dp = diff(p, var);
      if (dp->is_zero()) {
        // p * b^(p-1) * b'
        return mul({p, pow(b, sub(p, num(1.0))), db});
      }
      // general: b^p * (p' log b + p b'/b)
      return mul({e, add({mul({dp, log_(b)}), mul({p, db, pow(b, -1)})})});
    }

    case Kind::Call: {
      const auto& a = e->args();
      const auto d = [&](int i) { return diff(a[std::size_t(i)], var); };
      switch (e->func()) {
        case Func::Sqrt:
          return mul({num(0.5), pow(a[0], num(-0.5)), d(0)});
        case Func::RSqrt:
          return mul({num(-0.5), pow(a[0], num(-1.5)), d(0)});
        case Func::Exp: return mul({e, d(0)});
        case Func::Log: return mul({pow(a[0], -1), d(0)});
        case Func::Sin: return mul({call(Func::Cos, {a[0]}), d(0)});
        case Func::Cos: return neg(mul({call(Func::Sin, {a[0]}), d(0)}));
        case Func::Tanh:
          return mul({sub(num(1.0), pow(e, 2)), d(0)});
        case Func::Abs:
          return mul({select(call(Func::GreaterEq, {a[0], num(0.0)}),
                              num(1.0), num(-1.0)),
                      d(0)});
        case Func::Min:
          return select(call(Func::Less, {a[0], a[1]}), d(0), d(1));
        case Func::Max:
          return select(call(Func::Greater, {a[0], a[1]}), d(0), d(1));
        case Func::Select: return select(a[0], d(1), d(2));
        case Func::Less:
        case Func::Greater:
        case Func::LessEq:
        case Func::GreaterEq: return num(0.0);  // a.e. zero
        case Func::PhiloxUniform: return num(0.0);
      }
      break;
    }
  }
  PFC_ASSERT(false, "unreachable");
}

}  // namespace pfc::sym
