// Symbolic differentiation.
//
// diff(e, var) differentiates w.r.t. `var`, which may be a Symbol, a
// FieldRef, or a continuous Diff/Dt node. The last case is what makes
// *variational* derivatives expressible: the integrand of an energy
// functional treats the field value and its gradient components as
// independent variables (see pfc::continuum::variational_derivative).
#pragma once

#include "pfc/sym/expr.hpp"

namespace pfc::sym {

/// d e / d var. Nodes other than `var` that cannot depend on it (symbols,
/// field accesses, random numbers, opaque Diff/Dt) differentiate to zero;
/// differentiating *through* a Diff/Dt node that contains `var` is an error
/// (the continuum layer never needs it and silently returning something
/// would hide modelling mistakes).
Expr diff(const Expr& e, const Expr& var);

}  // namespace pfc::sym
