#include "pfc/sym/expr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "pfc/support/assert.hpp"

namespace pfc::sym {

namespace {

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  // boost::hash_combine-style mixing
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

int kind_rank(Kind k) {
  switch (k) {
    case Kind::Number: return 0;
    case Kind::Symbol: return 1;
    case Kind::FieldRef: return 2;
    case Kind::Random: return 3;
    case Kind::Diff: return 4;
    case Kind::Dt: return 5;
    case Kind::Call: return 6;
    case Kind::Pow: return 7;
    case Kind::Mul: return 8;
    case Kind::Add: return 9;
  }
  return 10;
}

std::uint64_t next_symbol_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* func_name(Func f) {
  switch (f) {
    case Func::Sqrt: return "sqrt";
    case Func::RSqrt: return "rsqrt";
    case Func::Exp: return "exp";
    case Func::Log: return "log";
    case Func::Sin: return "sin";
    case Func::Cos: return "cos";
    case Func::Tanh: return "tanh";
    case Func::Abs: return "fabs";
    case Func::Min: return "fmin";
    case Func::Max: return "fmax";
    case Func::Select: return "select";
    case Func::Less: return "less";
    case Func::Greater: return "greater";
    case Func::LessEq: return "less_eq";
    case Func::GreaterEq: return "greater_eq";
    case Func::PhiloxUniform: return "philox_uniform";
  }
  return "?";
}

int func_arity(Func f) {
  switch (f) {
    case Func::Sqrt:
    case Func::RSqrt:
    case Func::Exp:
    case Func::Log:
    case Func::Sin:
    case Func::Cos:
    case Func::Tanh:
    case Func::Abs: return 1;
    case Func::Min:
    case Func::Max:
    case Func::Less:
    case Func::Greater:
    case Func::LessEq:
    case Func::GreaterEq: return 2;
    case Func::Select: return 3;
    case Func::PhiloxUniform: return 6;
  }
  return -1;
}

// --- Node small helpers ------------------------------------------------------

bool Node::is_number(double v) const {
  return kind_ == Kind::Number && num_ == v;
}

bool Node::integer_value(long* out) const {
  if (kind_ != Kind::Number) return false;
  const double r = std::round(num_);
  if (std::abs(num_ - r) > 1e-12 || std::abs(r) > 1e15) return false;
  *out = static_cast<long>(r);
  return true;
}

// --- NodeFactory --------------------------------------------------------------

class NodeFactory {
 public:
  static Expr make_number(double v) {
    auto n = blank(Kind::Number);
    if (v == 0.0) v = 0.0;  // normalize -0
    n->num_ = v;
    n->hash_ = hash_combine(0x11, std::hash<double>{}(v));
    return n;
  }

  static Expr make_symbol(std::string name, Builtin b) {
    auto n = blank(Kind::Symbol);
    n->name_ = std::move(name);
    n->symbol_id_ = next_symbol_id();
    n->builtin_ = b;
    n->hash_ = hash_combine(0x22, std::hash<std::string>{}(n->name_));
    n->hash_ = hash_combine(n->hash_, n->symbol_id_);
    return n;
  }

  static Expr make_field_ref(FieldPtr f, std::array<int, 3> off, int comp) {
    auto n = blank(Kind::FieldRef);
    n->field_ = std::move(f);
    n->offset_ = off;
    n->component_ = comp;
    std::size_t h = hash_combine(0x33, n->field_->id());
    for (int d = 0; d < 3; ++d) h = hash_combine(h, std::size_t(off[d] + 512));
    n->hash_ = hash_combine(h, std::size_t(comp));
    return n;
  }

  static Expr make_nary(Kind k, std::vector<Expr> args) {
    auto n = blank(k);
    std::size_t h = hash_combine(0x44, std::size_t(kind_rank(k)));
    for (const auto& a : args) h = hash_combine(h, a->hash());
    n->args_ = std::move(args);
    n->hash_ = h;
    return n;
  }

  static Expr make_call(Func f, std::vector<Expr> args) {
    auto n = blank(Kind::Call);
    n->func_ = f;
    std::size_t h = hash_combine(0x55, std::size_t(f));
    for (const auto& a : args) h = hash_combine(h, a->hash());
    n->args_ = std::move(args);
    n->hash_ = h;
    return n;
  }

  static Expr make_diff(Expr e, int dim) {
    auto n = blank(Kind::Diff);
    n->diff_dim_ = dim;
    n->hash_ = hash_combine(hash_combine(0x66, e->hash()), std::size_t(dim));
    n->args_ = {std::move(e)};
    return n;
  }

  static Expr make_dt(Expr e) {
    auto n = blank(Kind::Dt);
    n->hash_ = hash_combine(0x77, e->hash());
    n->args_ = {std::move(e)};
    return n;
  }

  static Expr make_random(int stream) {
    auto n = blank(Kind::Random);
    n->diff_dim_ = stream;
    n->hash_ = hash_combine(0x88, std::size_t(stream));
    return n;
  }

 private:
  static std::shared_ptr<Node> blank(Kind k) {
    auto n = std::shared_ptr<Node>(new Node);
    n->kind_ = k;
    return n;
  }
};

// --- equality / ordering -------------------------------------------------------

int compare(const Expr& a, const Expr& b) {
  if (a.get() == b.get()) return 0;
  const int ra = kind_rank(a->kind()), rb = kind_rank(b->kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a->kind()) {
    case Kind::Number: {
      if (a->number() < b->number()) return -1;
      if (a->number() > b->number()) return 1;
      return 0;
    }
    case Kind::Symbol: {
      const int c = a->name().compare(b->name());
      if (c != 0) return c;
      if (a->symbol_id() != b->symbol_id())
        return a->symbol_id() < b->symbol_id() ? -1 : 1;
      return 0;
    }
    case Kind::FieldRef: {
      if (a->field()->id() != b->field()->id())
        return a->field()->id() < b->field()->id() ? -1 : 1;
      if (a->component() != b->component())
        return a->component() < b->component() ? -1 : 1;
      for (int d = 0; d < 3; ++d) {
        if (a->offset()[d] != b->offset()[d])
          return a->offset()[d] < b->offset()[d] ? -1 : 1;
      }
      return 0;
    }
    case Kind::Random: {
      if (a->random_stream() != b->random_stream())
        return a->random_stream() < b->random_stream() ? -1 : 1;
      return 0;
    }
    case Kind::Call: {
      if (a->func() != b->func())
        return static_cast<int>(a->func()) < static_cast<int>(b->func()) ? -1
                                                                         : 1;
      break;
    }
    case Kind::Diff: {
      if (a->diff_dim() != b->diff_dim())
        return a->diff_dim() < b->diff_dim() ? -1 : 1;
      break;
    }
    default: break;
  }
  if (a->arity() != b->arity()) return a->arity() < b->arity() ? -1 : 1;
  for (std::size_t i = 0; i < a->arity(); ++i) {
    const int c = compare(a->arg(i), b->arg(i));
    if (c != 0) return c;
  }
  return 0;
}

bool equals(const Expr& a, const Expr& b) {
  if (a.get() == b.get()) return true;
  if (a->hash() != b->hash()) return false;
  return compare(a, b) == 0;
}

// --- factories --------------------------------------------------------------

Expr num(double v) { return NodeFactory::make_number(v); }

Expr symbol(const std::string& name) {
  return NodeFactory::make_symbol(name, Builtin::None);
}

Expr symbol(const std::string& name, Builtin b) {
  return NodeFactory::make_symbol(name, b);
}

Expr coord(int dim) {
  PFC_REQUIRE(dim >= 0 && dim < 3, "coord dim out of range");
  static const Expr c[3] = {
      NodeFactory::make_symbol("x0", Builtin::Coord0),
      NodeFactory::make_symbol("x1", Builtin::Coord1),
      NodeFactory::make_symbol("x2", Builtin::Coord2)};
  return c[dim];
}

Expr time_step() {
  static const Expr t = NodeFactory::make_symbol("t_step", Builtin::TimeStep);
  return t;
}

Expr time() {
  static const Expr t = NodeFactory::make_symbol("t", Builtin::Time);
  return t;
}

Expr field_ref(const FieldPtr& f, std::array<int, 3> offset, int component) {
  PFC_REQUIRE(f != nullptr, "null field");
  PFC_REQUIRE(component >= 0 && component < f->components(),
              "field component out of range for " + f->name());
  return NodeFactory::make_field_ref(f, offset, component);
}

Expr at(const FieldPtr& f, int c) { return field_ref(f, {0, 0, 0}, c); }

Expr shifted(const Expr& e, int dim, int shift) {
  PFC_REQUIRE(e->kind() == Kind::FieldRef, "shifted() needs a FieldRef");
  auto off = e->offset();
  off[std::size_t(dim)] += shift;
  return field_ref(e->field(), off, e->component());
}

namespace {

void flatten_into(Kind k, const Expr& e, std::vector<Expr>& out) {
  if (e->kind() == k) {
    for (const auto& a : e->args()) flatten_into(k, a, out);
  } else {
    out.push_back(e);
  }
}

Expr rebuild_term(double coeff, const Expr& base) {
  if (coeff == 0.0) return num(0.0);
  if (coeff == 1.0) return base;
  return mul({num(coeff), base});
}

}  // namespace

Expr add(std::vector<Expr> in) {
  std::vector<Expr> flat;
  flat.reserve(in.size());
  for (const auto& e : in) {
    PFC_ASSERT(e != nullptr);
    flatten_into(Kind::Add, e, flat);
  }

  double constant = 0.0;
  // (base, coeff) pairs for like-term collection
  std::vector<std::pair<Expr, double>> terms;
  terms.reserve(flat.size());
  for (const auto& t : flat) {
    if (t->kind() == Kind::Number) {
      constant += t->number();
    } else if (t->kind() == Kind::Mul && !t->args().empty() &&
               t->arg(0)->kind() == Kind::Number) {
      const double c = t->arg(0)->number();
      std::vector<Expr> rest(t->args().begin() + 1, t->args().end());
      terms.emplace_back(mul(std::move(rest)), c);
    } else {
      terms.emplace_back(t, 1.0);
    }
  }

  std::stable_sort(terms.begin(), terms.end(),
                   [](const auto& a, const auto& b) {
                     return compare(a.first, b.first) < 0;
                   });

  std::vector<Expr> out;
  out.reserve(terms.size() + 1);
  std::size_t i = 0;
  while (i < terms.size()) {
    double coeff = terms[i].second;
    std::size_t j = i + 1;
    while (j < terms.size() && equals(terms[j].first, terms[i].first)) {
      coeff += terms[j].second;
      ++j;
    }
    // A collected base may itself be a Number (e.g. when mul(rest) folded).
    if (terms[i].first->kind() == Kind::Number) {
      constant += coeff * terms[i].first->number();
    } else if (coeff != 0.0) {
      out.push_back(rebuild_term(coeff, terms[i].first));
    }
    i = j;
  }
  if (constant != 0.0) out.insert(out.begin(), num(constant));

  if (out.empty()) return num(0.0);
  if (out.size() == 1) return out[0];
  return NodeFactory::make_nary(Kind::Add, std::move(out));
}

Expr mul(std::vector<Expr> in) {
  std::vector<Expr> flat;
  flat.reserve(in.size());
  for (const auto& e : in) {
    PFC_ASSERT(e != nullptr);
    flatten_into(Kind::Mul, e, flat);
  }

  double coeff = 1.0;
  // (base, exponent) pairs for power collection
  std::vector<std::pair<Expr, Expr>> factors;
  factors.reserve(flat.size());
  for (const auto& f : flat) {
    if (f->kind() == Kind::Number) {
      coeff *= f->number();
    } else if (f->kind() == Kind::Pow) {
      factors.emplace_back(f->arg(0), f->arg(1));
    } else {
      factors.emplace_back(f, num(1.0));
    }
  }
  if (coeff == 0.0) return num(0.0);

  std::stable_sort(factors.begin(), factors.end(),
                   [](const auto& a, const auto& b) {
                     return compare(a.first, b.first) < 0;
                   });

  std::vector<Expr> out;
  out.reserve(factors.size() + 1);
  std::size_t i = 0;
  while (i < factors.size()) {
    std::vector<Expr> exps{factors[i].second};
    std::size_t j = i + 1;
    while (j < factors.size() && equals(factors[j].first, factors[i].first)) {
      exps.push_back(factors[j].second);
      ++j;
    }
    Expr p = pow(factors[i].first, add(std::move(exps)));
    if (p->kind() == Kind::Number) {
      coeff *= p->number();
    } else {
      out.push_back(std::move(p));
    }
    i = j;
  }
  if (coeff == 0.0) return num(0.0);

  // Distribute a numeric coefficient over a lone Add so that e.g.
  // -(x + y) and -x - y share one canonical form (sympy does the same).
  if (coeff != 1.0 && out.size() == 1 && out[0]->kind() == Kind::Add) {
    std::vector<Expr> terms;
    terms.reserve(out[0]->arity());
    for (const auto& t : out[0]->args()) {
      terms.push_back(mul({num(coeff), t}));
    }
    return add(std::move(terms));
  }
  if (coeff != 1.0) out.insert(out.begin(), num(coeff));

  if (out.empty()) return num(1.0);
  if (out.size() == 1) return out[0];
  return NodeFactory::make_nary(Kind::Mul, std::move(out));
}

Expr pow(const Expr& base, const Expr& exponent) {
  PFC_ASSERT(base != nullptr && exponent != nullptr);
  if (exponent->is_zero()) return num(1.0);
  if (exponent->is_one()) return base;
  if (base->is_one()) return num(1.0);
  long e_int = 0;
  const bool e_is_int = exponent->integer_value(&e_int);
  if (base->is_zero() && e_is_int && e_int > 0) return num(0.0);
  if (base->kind() == Kind::Number && exponent->kind() == Kind::Number) {
    const double v = std::pow(base->number(), exponent->number());
    if (std::isfinite(v)) return num(v);
  }
  // (b^a)^n -> b^(a n) for integer n (always valid)
  if (base->kind() == Kind::Pow && e_is_int) {
    return pow(base->arg(0), mul({base->arg(1), exponent}));
  }
  // (c * rest)^n -> c^n * rest^n for integer n: keeps numeric coefficients
  // out of Pow bases so like terms collect properly.
  if (base->kind() == Kind::Mul && e_is_int &&
      base->arg(0)->kind() == Kind::Number) {
    std::vector<Expr> rest(base->args().begin() + 1, base->args().end());
    const double c = std::pow(base->arg(0)->number(), double(e_int));
    return mul({num(c), pow(mul(std::move(rest)), exponent)});
  }
  return NodeFactory::make_nary(Kind::Pow, {base, exponent});
}

Expr pow(const Expr& base, long exponent) {
  return pow(base, num(static_cast<double>(exponent)));
}

Expr call(Func f, std::vector<Expr> args) {
  PFC_REQUIRE(static_cast<int>(args.size()) == func_arity(f),
              std::string{"wrong arity for "} + func_name(f));
  // numeric folding for pure scalar functions
  bool all_num = true;
  for (const auto& a : args) {
    if (a->kind() != Kind::Number) {
      all_num = false;
      break;
    }
  }
  if (all_num && f != Func::PhiloxUniform) {
    const auto v = [&](int i) { return args[std::size_t(i)]->number(); };
    switch (f) {
      case Func::Sqrt: return num(std::sqrt(v(0)));
      case Func::RSqrt: return num(1.0 / std::sqrt(v(0)));
      case Func::Exp: return num(std::exp(v(0)));
      case Func::Log: return num(std::log(v(0)));
      case Func::Sin: return num(std::sin(v(0)));
      case Func::Cos: return num(std::cos(v(0)));
      case Func::Tanh: return num(std::tanh(v(0)));
      case Func::Abs: return num(std::abs(v(0)));
      case Func::Min: return num(std::min(v(0), v(1)));
      case Func::Max: return num(std::max(v(0), v(1)));
      case Func::Select: return num(v(0) != 0.0 ? v(1) : v(2));
      case Func::Less: return num(v(0) < v(1) ? 1.0 : 0.0);
      case Func::Greater: return num(v(0) > v(1) ? 1.0 : 0.0);
      case Func::LessEq: return num(v(0) <= v(1) ? 1.0 : 0.0);
      case Func::GreaterEq: return num(v(0) >= v(1) ? 1.0 : 0.0);
      default: break;
    }
  }
  if (f == Func::Select && args[0]->kind() == Kind::Number) {
    return args[0]->number() != 0.0 ? args[1] : args[2];
  }
  return NodeFactory::make_call(f, std::move(args));
}

Expr neg(const Expr& a) { return mul({num(-1.0), a}); }
Expr sub(const Expr& a, const Expr& b) { return add({a, neg(b)}); }
Expr div(const Expr& a, const Expr& b) { return mul({a, pow(b, -1)}); }

Expr sqrt_(const Expr& a) { return call(Func::Sqrt, {a}); }
Expr rsqrt(const Expr& a) { return call(Func::RSqrt, {a}); }
Expr exp_(const Expr& a) { return call(Func::Exp, {a}); }
Expr log_(const Expr& a) { return call(Func::Log, {a}); }
Expr tanh_(const Expr& a) { return call(Func::Tanh, {a}); }
Expr abs_(const Expr& a) { return call(Func::Abs, {a}); }
Expr min_(const Expr& a, const Expr& b) { return call(Func::Min, {a, b}); }
Expr max_(const Expr& a, const Expr& b) { return call(Func::Max, {a, b}); }
Expr select(const Expr& c, const Expr& a, const Expr& b) {
  return call(Func::Select, {c, a, b});
}
Expr less(const Expr& a, const Expr& b) { return call(Func::Less, {a, b}); }
Expr greater(const Expr& a, const Expr& b) {
  return call(Func::Greater, {a, b});
}

Expr diff_op(const Expr& e, int dim) {
  PFC_REQUIRE(dim >= 0 && dim < 3, "diff_op dim out of range");
  if (e->kind() == Kind::Number) return num(0.0);
  return NodeFactory::make_diff(e, dim);
}

Expr dt_op(const Expr& e) { return NodeFactory::make_dt(e); }

Expr random_uniform(int stream) { return NodeFactory::make_random(stream); }

// --- traversal ---------------------------------------------------------------

void for_each(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& a : e->args()) for_each(a, fn);
}

bool contains(const Expr& e, const Expr& target) {
  if (equals(e, target)) return true;
  for (const auto& a : e->args()) {
    if (contains(a, target)) return true;
  }
  return false;
}

namespace {
void collect_kind(const Expr& e, Kind k, std::vector<Expr>& out) {
  if (e->kind() == k) {
    bool seen = false;
    for (const auto& o : out) {
      if (equals(o, e)) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(e);
  }
  for (const auto& a : e->args()) collect_kind(a, k, out);
}
}  // namespace

std::vector<Expr> field_refs(const Expr& e) {
  std::vector<Expr> out;
  collect_kind(e, Kind::FieldRef, out);
  return out;
}

std::vector<Expr> symbols(const Expr& e) {
  std::vector<Expr> out;
  collect_kind(e, Kind::Symbol, out);
  return out;
}

std::size_t node_count(const Expr& e) {
  std::size_t n = 1;
  for (const auto& a : e->args()) n += node_count(a);
  return n;
}

Expr with_args(const Expr& e, std::vector<Expr> new_args) {
  switch (e->kind()) {
    case Kind::Number:
    case Kind::Symbol:
    case Kind::FieldRef:
    case Kind::Random: return e;
    case Kind::Add: return add(std::move(new_args));
    case Kind::Mul: return mul(std::move(new_args));
    case Kind::Pow:
      PFC_ASSERT(new_args.size() == 2);
      return pow(new_args[0], new_args[1]);
    case Kind::Call: return call(e->func(), std::move(new_args));
    case Kind::Diff:
      PFC_ASSERT(new_args.size() == 1);
      return diff_op(new_args[0], e->diff_dim());
    case Kind::Dt:
      PFC_ASSERT(new_args.size() == 1);
      return dt_op(new_args[0]);
  }
  PFC_ASSERT(false, "unreachable");
}

}  // namespace pfc::sym
