// The symbolic expression system (the role sympy plays in the paper).
//
// Expressions are immutable DAG nodes behind shared_ptr. All construction
// goes through factory functions that canonicalize on the fly:
//   * Add/Mul are flattened n-ary with numeric folding and like-term
//     collection, children deterministically ordered;
//   * Pow folds numeric bases/exponents;
//   * structural hashing enables O(1)-ish equality pre-checks.
//
// Besides plain algebra the node set covers what the phase-field pipeline
// needs: FieldRef (lattice access with integer offsets), continuous Diff /
// Dt operators for the PDE layer, loop-coordinate and time symbols, and a
// Random node that the discretization layer lowers to Philox calls.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pfc/field/field.hpp"

namespace pfc::sym {

enum class Kind : std::uint8_t {
  Number,
  Symbol,
  FieldRef,
  Add,
  Mul,
  Pow,
  Call,
  Diff,    ///< continuous spatial derivative d/dx_dim (PDE layer only)
  Dt,      ///< continuous time derivative (PDE layer only)
  Random,  ///< uniform random in [-1, 1], lowered to Philox by the fd layer
};

/// Built-in scalar functions understood by every backend.
enum class Func : std::uint8_t {
  Sqrt,
  RSqrt,  ///< 1/sqrt(x); may be emitted approximately (paper §3.5)
  Exp,
  Log,
  Sin,
  Cos,
  Tanh,
  Abs,
  Min,
  Max,
  Select,  ///< Select(c, a, b) = c != 0 ? a : b (maps to vector blend)
  Less,
  Greater,
  LessEq,
  GreaterEq,
  PhiloxUniform,  ///< PhiloxUniform(x,y,z,t, seed, stream) in [-1,1]
};

const char* func_name(Func f);
int func_arity(Func f);

/// Special meaning attached to a Symbol.
enum class Builtin : std::uint8_t {
  None,
  Coord0,    ///< innermost loop coordinate (global cell index, x)
  Coord1,
  Coord2,
  TimeStep,  ///< integer time step counter
  Time,      ///< physical time t = step * dt
};

class Node;
using Expr = std::shared_ptr<const Node>;

class Node {
 public:
  Kind kind() const { return kind_; }
  std::size_t hash() const { return hash_; }

  // --- Number ---
  double number() const { return num_; }
  bool is_number(double v) const;
  bool is_zero() const { return is_number(0.0); }
  bool is_one() const { return is_number(1.0); }
  /// True if Number with (near-)integral value; sets *out.
  bool integer_value(long* out) const;

  // --- Symbol ---
  const std::string& name() const { return name_; }
  std::uint64_t symbol_id() const { return symbol_id_; }
  Builtin builtin() const { return builtin_; }

  // --- FieldRef ---
  const FieldPtr& field() const { return field_; }
  const std::array<int, 3>& offset() const { return offset_; }
  int component() const { return component_; }

  // --- Add/Mul/Pow/Call/Diff/Dt ---
  const std::vector<Expr>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }
  const Expr& arg(std::size_t i) const { return args_[i]; }
  Func func() const { return func_; }
  int diff_dim() const { return diff_dim_; }

  // --- Random ---
  int random_stream() const { return diff_dim_; }

 private:
  friend class NodeFactory;
  Node() = default;

  Kind kind_ = Kind::Number;
  double num_ = 0.0;
  std::string name_;
  std::uint64_t symbol_id_ = 0;
  Builtin builtin_ = Builtin::None;
  FieldPtr field_;
  std::array<int, 3> offset_{0, 0, 0};
  int component_ = 0;
  std::vector<Expr> args_;
  Func func_ = Func::Sqrt;
  int diff_dim_ = 0;
  std::size_t hash_ = 0;
};

// --- structural comparison ------------------------------------------------

/// Structural equality (hash early-out).
bool equals(const Expr& a, const Expr& b);

/// Deterministic total order used for canonical child ordering: returns
/// <0, 0, >0 like strcmp.
int compare(const Expr& a, const Expr& b);

// --- factories (canonicalizing) --------------------------------------------

Expr num(double v);
Expr symbol(const std::string& name);
Expr symbol(const std::string& name, Builtin builtin);

/// The loop coordinate along `dim` (0 = x, 1 = y, 2 = z) as a global cell
/// index. All calls return the same node per dim.
Expr coord(int dim);
/// Integer time-step counter symbol.
Expr time_step();
/// Physical time symbol (t = step * dt, provided by the runtime).
Expr time();

Expr field_ref(const FieldPtr& f, std::array<int, 3> offset = {0, 0, 0},
               int component = 0);
/// Center access of component `c`.
Expr at(const FieldPtr& f, int c = 0);
/// Neighbour access: center shifted by `shift` along `dim`.
Expr shifted(const Expr& field_ref_expr, int dim, int shift);

Expr add(std::vector<Expr> args);
Expr mul(std::vector<Expr> args);
Expr pow(const Expr& base, const Expr& exponent);
Expr pow(const Expr& base, long exponent);
Expr call(Func f, std::vector<Expr> args);

Expr neg(const Expr& a);
Expr sub(const Expr& a, const Expr& b);
Expr div(const Expr& a, const Expr& b);

Expr sqrt_(const Expr& a);
Expr rsqrt(const Expr& a);
Expr exp_(const Expr& a);
Expr log_(const Expr& a);
Expr tanh_(const Expr& a);
Expr abs_(const Expr& a);
Expr min_(const Expr& a, const Expr& b);
Expr max_(const Expr& a, const Expr& b);
Expr select(const Expr& cond, const Expr& if_true, const Expr& if_false);
Expr less(const Expr& a, const Expr& b);
Expr greater(const Expr& a, const Expr& b);

/// Continuous spatial derivative (PDE layer); discretized by pfc::fd.
Expr diff_op(const Expr& e, int dim);
/// Continuous time derivative (PDE layer).
Expr dt_op(const Expr& e);
/// Fluctuation placeholder: uniform random in [-1,1], one independent stream
/// per `stream` id. Lowered to PhiloxUniform at discretization.
Expr random_uniform(int stream);

// --- operators --------------------------------------------------------------

inline Expr operator+(const Expr& a, const Expr& b) { return add({a, b}); }
inline Expr operator-(const Expr& a, const Expr& b) { return sub(a, b); }
inline Expr operator*(const Expr& a, const Expr& b) { return mul({a, b}); }
inline Expr operator/(const Expr& a, const Expr& b) { return div(a, b); }
inline Expr operator-(const Expr& a) { return neg(a); }

inline Expr operator+(const Expr& a, double b) { return add({a, num(b)}); }
inline Expr operator+(double a, const Expr& b) { return add({num(a), b}); }
inline Expr operator-(const Expr& a, double b) { return sub(a, num(b)); }
inline Expr operator-(double a, const Expr& b) { return sub(num(a), b); }
inline Expr operator*(const Expr& a, double b) { return mul({a, num(b)}); }
inline Expr operator*(double a, const Expr& b) { return mul({num(a), b}); }
inline Expr operator/(const Expr& a, double b) { return div(a, num(b)); }
inline Expr operator/(double a, const Expr& b) { return div(num(a), b); }

// --- traversal helpers -------------------------------------------------------

/// Calls fn on every node (pre-order, each distinct shared node possibly
/// multiple times — no dedup).
void for_each(const Expr& e, const std::function<void(const Expr&)>& fn);

/// True if `target` occurs as a subexpression of `e` (structural equality).
bool contains(const Expr& e, const Expr& target);

/// All distinct FieldRef nodes in `e` (deterministic order of first
/// occurrence).
std::vector<Expr> field_refs(const Expr& e);

/// All distinct Symbols in `e`.
std::vector<Expr> symbols(const Expr& e);

/// Number of nodes in the expression tree (counting repeats).
std::size_t node_count(const Expr& e);

/// Rebuilds `e` with args replaced; re-canonicalizes.
Expr with_args(const Expr& e, std::vector<Expr> new_args);

}  // namespace pfc::sym
