#include "pfc/sym/printer.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "pfc/support/assert.hpp"

namespace pfc::sym {

namespace {

// precedence levels: Add < Mul < unary/Pow < atom
constexpr int kPrecAdd = 1;
constexpr int kPrecMul = 2;
constexpr int kPrecUnary = 3;
constexpr int kPrecAtom = 4;

bool is_comparison(Func f) {
  return f == Func::Less || f == Func::Greater || f == Func::LessEq ||
         f == Func::GreaterEq;
}

const char* comparison_op(Func f) {
  switch (f) {
    case Func::Less: return "<";
    case Func::Greater: return ">";
    case Func::LessEq: return "<=";
    case Func::GreaterEq: return ">=";
    default: PFC_ASSERT(false);
  }
}

const char* comparison_helper(Func f) {
  switch (f) {
    case Func::Less: return "pfc_vd_lt";
    case Func::Greater: return "pfc_vd_gt";
    case Func::LessEq: return "pfc_vd_le";
    case Func::GreaterEq: return "pfc_vd_ge";
    default: PFC_ASSERT(false);
  }
}

class Printer {
 public:
  explicit Printer(const PrintOptions& opts) : opts_(opts) {}

  std::string print(const Expr& e, int parent_prec) {
    std::string s;
    int prec = kPrecAtom;
    switch (e->kind()) {
      case Kind::Number: {
        s = number_atom(e->number());
        prec = !vec() && e->number() < 0 ? kPrecUnary : kPrecAtom;
        break;
      }
      case Kind::Symbol: {
        s = opts_.symbol_printer ? opts_.symbol_printer(e) : e->name();
        break;
      }
      case Kind::FieldRef: {
        if (opts_.field_printer) {
          s = opts_.field_printer(e);
        } else {
          std::ostringstream os;
          os << e->field()->name();
          if (e->field()->components() > 1) os << '@' << e->component();
          const auto& o = e->offset();
          if (o[0] != 0 || o[1] != 0 || o[2] != 0) {
            os << '[' << o[0] << ',' << o[1] << ',' << o[2] << ']';
          }
          s = os.str();
        }
        break;
      }
      case Kind::Random: {
        s = "rand" + std::to_string(e->random_stream()) + "()";
        break;
      }
      case Kind::Add: {
        std::ostringstream os;
        for (std::size_t i = 0; i < e->arity(); ++i) {
          std::string term = print(e->arg(i), kPrecAdd);
          if (i == 0) {
            os << term;
          } else if (!term.empty() && term[0] == '-') {
            os << " - " << term.substr(1);
          } else {
            os << " + " << term;
          }
        }
        s = os.str();
        prec = kPrecAdd;
        break;
      }
      case Kind::Mul: {
        s = print_mul(e);
        prec = (!s.empty() && s[0] == '-') ? kPrecAdd : kPrecMul;
        break;
      }
      case Kind::Pow: {
        s = print_pow(e->arg(0), e->arg(1));
        prec = kPrecMul;  // may expand to x*x or a/b
        break;
      }
      case Kind::Call: {
        s = print_call(e);
        if (is_comparison(e->func()) || e->func() == Func::Select) {
          // already fully parenthesized in C dialects
          prec = kPrecAtom;
        }
        break;
      }
      case Kind::Diff: {
        s = "D" + std::to_string(e->diff_dim()) + "(" +
            print(e->arg(0), 0) + ")";
        break;
      }
      case Kind::Dt: {
        s = "dt(" + print(e->arg(0), 0) + ")";
        break;
      }
    }
    if (prec < parent_prec) return "(" + s + ")";
    return s;
  }

 private:
  bool c_like() const { return opts_.dialect != Dialect::Pretty; }
  bool vec() const { return opts_.dialect == Dialect::CVec; }

  /// A number as an atomic term: broadcast through set1 in the vector
  /// dialect (GCC vector extensions reject mixed scalar/vector operands).
  std::string number_atom(double v) const {
    if (vec()) return "pfc_vd_set1(" + number_string(v) + ")";
    return number_string(v);
  }

  static std::string number_string(double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", v);
      return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string sqrt_of(const std::string& arg) const {
    if (vec()) {
      return (opts_.fast_math ? "pfc_vd_sqrt_fast(" : "pfc_vd_sqrt(") + arg +
             ")";
    }
    if (opts_.fast_math) {
      if (opts_.dialect == Dialect::Cuda) {
        return "(double)__fsqrt_rn((float)(" + arg + "))";
      }
      if (opts_.dialect == Dialect::C) {
        return "(double)sqrtf((float)(" + arg + "))";
      }
    }
    return "sqrt(" + arg + ")";
  }

  std::string rsqrt_of(const std::string& arg) const {
    if (vec()) {
      return (opts_.fast_math ? "pfc_vd_rsqrt_fast(" : "pfc_vd_rsqrt(") +
             arg + ")";
    }
    if (opts_.fast_math) {
      if (opts_.dialect == Dialect::Cuda) {
        return "__frsqrt_rn(" + arg + ")";
      }
      if (opts_.dialect == Dialect::C) {
        return "pfc_rsqrt_fast(" + arg + ")";
      }
    }
    if (c_like()) return "(1.0 / sqrt(" + arg + "))";
    return "rsqrt(" + arg + ")";
  }

  std::string divide(const std::string& numer, const std::string& denom) const {
    if (opts_.fast_math && opts_.dialect == Dialect::Cuda) {
      return "fdividef(" + numer + ", " + denom + ")";
    }
    return numer + " / " + denom;
  }

  std::string print_call(const Expr& e) {
    const Func f = e->func();
    if (vec()) {
      if (is_comparison(f)) {
        return std::string(comparison_helper(f)) + "(" + print(e->arg(0), 0) +
               ", " + print(e->arg(1), 0) + ")";
      }
      if (f == Func::Select) {
        return "pfc_vd_sel(" + print(e->arg(0), 0) + ", " +
               print(e->arg(1), 0) + ", " + print(e->arg(2), 0) + ")";
      }
      if (f == Func::Sqrt) return sqrt_of(print(e->arg(0), 0));
      if (f == Func::RSqrt) return rsqrt_of(print(e->arg(0), 0));
      // Lane-serial helpers: Philox and the libm functions have no packed
      // form; the preamble loops over lanes calling the scalar routine.
      std::ostringstream os;
      os << "pfc_vd_" << (f == Func::PhiloxUniform ? "philox" : func_name(f))
         << '(';
      for (std::size_t i = 0; i < e->arity(); ++i) {
        if (i) os << ", ";
        os << print(e->arg(i), 0);
      }
      os << ')';
      return os.str();
    }
    if (c_like()) {
      if (is_comparison(f)) {
        return "((" + print(e->arg(0), 0) + " " + comparison_op(f) + " " +
               print(e->arg(1), 0) + ") ? 1.0 : 0.0)";
      }
      if (f == Func::Select) {
        const Expr& cond = e->arg(0);
        std::string cond_s;
        if (cond->kind() == Kind::Call && is_comparison(cond->func())) {
          cond_s = print(cond->arg(0), 0) + " " +
                   comparison_op(cond->func()) + " " + print(cond->arg(1), 0);
        } else {
          cond_s = print(cond, 0) + " != 0.0";
        }
        return "((" + cond_s + ") ? (" + print(e->arg(1), 0) + ") : (" +
               print(e->arg(2), 0) + "))";
      }
      if (f == Func::Sqrt) return sqrt_of(print(e->arg(0), 0));
      if (f == Func::RSqrt) return rsqrt_of(print(e->arg(0), 0));
      if (f == Func::PhiloxUniform) {
        std::ostringstream os;
        os << "pfc_philox_uniform(";
        for (int i = 0; i < 4; ++i) {
          os << "(unsigned long long)(" << print(e->arg(std::size_t(i)), 0)
             << "), ";
        }
        os << "(unsigned long long)(" << print(e->arg(4), 0) << "), "
           << "(unsigned long long)(" << print(e->arg(5), 0) << "))";
        return os.str();
      }
    }
    std::ostringstream os;
    os << func_name(f) << '(';
    for (std::size_t i = 0; i < e->arity(); ++i) {
      if (i) os << ", ";
      os << print(e->arg(i), 0);
    }
    os << ')';
    return os.str();
  }

  std::string print_pow(const Expr& base, const Expr& exp) {
    long n = 0;
    if (exp->integer_value(&n)) {
      if (n < 0) return divide(number_atom(1.0), print_pow_pos(base, -n));
      return print_pow_pos(base, n);
    }
    if (exp->is_number(0.5)) return sqrt_of(print(base, 0));
    if (exp->is_number(-0.5)) return rsqrt_of(print(base, 0));
    if (exp->is_number(1.5)) {
      const std::string b = print(base, 0);
      return "(" + b + " * " + sqrt_of(b) + ")";
    }
    if (exp->is_number(-1.5)) {
      const std::string b = print(base, 0);
      return divide(number_atom(1.0), "(" + b + " * " + sqrt_of(b) + ")");
    }
    return pow_call(print(base, 0), print(exp, 0));
  }

  std::string pow_call(const std::string& base, const std::string& exp) const {
    if (vec()) return "pfc_vd_pow(" + base + ", " + exp + ")";
    return "pow(" + base + ", " + exp + ")";
  }

  std::string print_pow_pos(const Expr& base, long n) {
    PFC_ASSERT(n >= 1);
    if (n == 1) return print(base, kPrecMul + 1);
    if (n <= opts_.unroll_pow_limit) {
      const std::string b = print(base, kPrecMul + 1);
      std::string s = b;
      for (long i = 1; i < n; ++i) s += "*" + b;
      return "(" + s + ")";
    }
    if (vec()) return pow_call(print(base, 0), number_atom(double(n)));
    return "pow(" + print(base, 0) + ", " + std::to_string(n) + ")";
  }

  std::string print_mul(const Expr& e) {
    // split numerator / denominator by sign of numeric exponents
    std::vector<std::string> numer, denom;
    double coeff = 1.0;
    for (const auto& f : e->args()) {
      if (f->kind() == Kind::Number) {
        coeff *= f->number();
        continue;
      }
      long n = 0;
      if (f->kind() == Kind::Pow && f->arg(1)->integer_value(&n) && n < 0) {
        denom.push_back(print_pow_pos(f->arg(0), -n));
        continue;
      }
      numer.push_back(print(f, kPrecMul));
    }
    std::ostringstream os;
    bool have_num = false;
    if (coeff == -1.0 && !numer.empty()) {
      os << '-';  // unary minus is valid on GCC vector operands too
    } else if (coeff != 1.0 || numer.empty()) {
      os << number_atom(coeff);
      have_num = true;
    }
    for (const auto& s : numer) {
      if (have_num || &s != &numer.front()) os << '*';
      os << s;
      have_num = true;
    }
    if (denom.empty()) return os.str();
    std::string den;
    if (denom.size() == 1) {
      den = denom[0];
    } else {
      den = "(";
      for (std::size_t i = 0; i < denom.size(); ++i) {
        if (i) den += '*';
        den += denom[i];
      }
      den += ')';
    }
    return divide(os.str(), den);
  }

  const PrintOptions& opts_;
};

}  // namespace

std::string to_string(const Expr& e, const PrintOptions& opts) {
  return Printer(opts).print(e, 0);
}

}  // namespace pfc::sym
