// Expression rendering for diagnostics and for the code emitters.
//
// The same precedence-aware renderer serves three dialects:
//   * Pretty — symbolic form for tests/logs (select(...), phi@2[0,1,0], D0(..))
//   * C      — compilable C/C++ scalar code (ternaries, fmin, comparisons)
//   * Cuda   — like C but can use device intrinsics for the operations the
//              user marked for approximate evaluation (paper §3.5:
//              fdividef, __frsqrt_rn)
//   * CVec   — like C but every value is a `pfc_vd` SIMD vector of doubles
//              (GCC/Clang vector extensions): numbers broadcast through
//              pfc_vd_set1, comparisons/select/sqrt/libm calls go through
//              the pfc_vd_* helpers of the vector runtime preamble, while
//              +,-,*,/ stay infix so the compiler can contract to FMAs
#pragma once

#include <functional>
#include <string>

#include "pfc/sym/expr.hpp"

namespace pfc::sym {

enum class Dialect { Pretty, C, Cuda, CVec };

struct PrintOptions {
  Dialect dialect = Dialect::Pretty;
  /// Emit approximate fast-math forms for divisions and (r)sqrt (paper
  /// §3.5: "costly operations ... evaluated in a faster but approximate
  /// way"). Only meaningful for C/Cuda dialects.
  bool fast_math = false;
  /// Print `pow(x, 3)` as `x*x*x` up to this exponent (0 disables).
  int unroll_pow_limit = 4;
  /// Custom rendering of FieldRef nodes (the emitters supply array indexing
  /// here); defaults to the symbolic `name@c[dx,dy,dz]` form.
  std::function<std::string(const Expr&)> field_printer;
  /// Custom rendering of Symbol nodes (emitters map builtins to loop
  /// counters); defaults to the symbol name.
  std::function<std::string(const Expr&)> symbol_printer;
};

std::string to_string(const Expr& e, const PrintOptions& opts = {});

}  // namespace pfc::sym
