#include "pfc/sym/simplify.hpp"

#include <cmath>

#include "pfc/support/assert.hpp"

namespace pfc::sym {

namespace {

/// Multiplies out a list of (already expanded) factors term-wise. Each
/// factor is split into its Add terms *before* multiplication, which avoids
/// the canonicalizer re-collecting equal Add factors into a Pow and hiding
/// them from distribution.
Expr distribute_product(const std::vector<Expr>& factors) {
  std::vector<Expr> acc{num(1.0)};
  for (const auto& f : factors) {
    const std::vector<Expr> terms =
        f->kind() == Kind::Add ? f->args() : std::vector<Expr>{f};
    std::vector<Expr> next;
    next.reserve(acc.size() * terms.size());
    for (const auto& a : acc) {
      for (const auto& t : terms) {
        next.push_back(mul({a, t}));
      }
    }
    acc = std::move(next);
  }
  return add(std::move(acc));
}

}  // namespace

Expr expand(const Expr& e) {
  // bottom-up
  if (e->arity() > 0) {
    std::vector<Expr> new_args;
    new_args.reserve(e->arity());
    bool changed = false;
    for (const auto& a : e->args()) {
      Expr x = expand(a);
      changed = changed || x.get() != a.get();
      new_args.push_back(std::move(x));
    }
    Expr rebuilt = changed ? with_args(e, std::move(new_args)) : e;

    if (rebuilt->kind() == Kind::Pow) {
      long n = 0;
      if (rebuilt->arg(1)->integer_value(&n) && n >= 2 && n <= 8 &&
          rebuilt->arg(0)->kind() == Kind::Add) {
        return distribute_product(
            std::vector<Expr>(std::size_t(n), rebuilt->arg(0)));
      }
    }
    if (rebuilt->kind() == Kind::Mul) {
      // expand Pow(Add, n) factors first so they participate in the product
      std::vector<Expr> factors;
      factors.reserve(rebuilt->arity());
      bool any_add = false;
      for (const auto& f : rebuilt->args()) {
        long n = 0;
        if (f->kind() == Kind::Pow && f->arg(1)->integer_value(&n) &&
            n >= 2 && n <= 8 && f->arg(0)->kind() == Kind::Add) {
          factors.insert(factors.end(), std::size_t(n), f->arg(0));
          any_add = true;
        } else {
          any_add = any_add || f->kind() == Kind::Add;
          factors.push_back(f);
        }
      }
      if (any_add) return distribute_product(factors);
      return rebuilt;
    }
    return rebuilt;
  }
  return e;
}

double evaluate(const Expr& e, const EvalContext& ctx) {
  switch (e->kind()) {
    case Kind::Number: return e->number();
    case Kind::Symbol: {
      auto it = ctx.symbols.find(e->name());
      PFC_REQUIRE(it != ctx.symbols.end(),
                  "evaluate: unbound symbol " + e->name());
      return it->second;
    }
    case Kind::FieldRef: {
      PFC_REQUIRE(static_cast<bool>(ctx.field_value),
                  "evaluate: no field_value callback for " +
                      e->field()->name());
      return ctx.field_value(e);
    }
    case Kind::Random:
      return ctx.random_value ? ctx.random_value(e->random_stream()) : 0.0;
    case Kind::Add: {
      double s = 0.0;
      for (const auto& a : e->args()) s += evaluate(a, ctx);
      return s;
    }
    case Kind::Mul: {
      double p = 1.0;
      for (const auto& a : e->args()) p *= evaluate(a, ctx);
      return p;
    }
    case Kind::Pow:
      return std::pow(evaluate(e->arg(0), ctx), evaluate(e->arg(1), ctx));
    case Kind::Call: {
      const auto v = [&](int i) { return evaluate(e->arg(std::size_t(i)), ctx); };
      switch (e->func()) {
        case Func::Sqrt: return std::sqrt(v(0));
        case Func::RSqrt: return 1.0 / std::sqrt(v(0));
        case Func::Exp: return std::exp(v(0));
        case Func::Log: return std::log(v(0));
        case Func::Sin: return std::sin(v(0));
        case Func::Cos: return std::cos(v(0));
        case Func::Tanh: return std::tanh(v(0));
        case Func::Abs: return std::abs(v(0));
        case Func::Min: return std::fmin(v(0), v(1));
        case Func::Max: return std::fmax(v(0), v(1));
        case Func::Select: return v(0) != 0.0 ? v(1) : v(2);
        case Func::Less: return v(0) < v(1) ? 1.0 : 0.0;
        case Func::Greater: return v(0) > v(1) ? 1.0 : 0.0;
        case Func::LessEq: return v(0) <= v(1) ? 1.0 : 0.0;
        case Func::GreaterEq: return v(0) >= v(1) ? 1.0 : 0.0;
        case Func::PhiloxUniform:
          PFC_REQUIRE(false, "evaluate: PhiloxUniform needs the interpreter");
      }
      break;
    }
    case Kind::Diff:
    case Kind::Dt:
      PFC_REQUIRE(false, "evaluate: continuous Diff/Dt has no point value");
  }
  PFC_ASSERT(false, "unreachable");
}

std::size_t operation_count(const Expr& e) {
  switch (e->kind()) {
    case Kind::Number:
    case Kind::Symbol:
    case Kind::FieldRef:
    case Kind::Random: return 0;
    case Kind::Add:
    case Kind::Mul: {
      std::size_t n = e->arity() - 1;
      for (const auto& a : e->args()) n += operation_count(a);
      return n;
    }
    case Kind::Pow: {
      return 1 + operation_count(e->arg(0)) + operation_count(e->arg(1));
    }
    case Kind::Call:
    case Kind::Diff:
    case Kind::Dt: {
      std::size_t n = 1;
      for (const auto& a : e->args()) n += operation_count(a);
      return n;
    }
  }
  return 0;
}

}  // namespace pfc::sym
