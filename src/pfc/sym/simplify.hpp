// Expression rewriting beyond the always-on canonicalization: expansion of
// products over sums (the paper's per-term "simplified individually by
// expansion" step, §3.3) and a numeric evaluator used heavily in tests to
// validate algebraic transformations against direct computation.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "pfc/sym/expr.hpp"

namespace pfc::sym {

/// Distributes Mul over Add and expands integer powers of sums (exponent in
/// [2, 8]); recurses bottom-up. Combined with the canonicalizing factories
/// this collects like terms across the whole expression.
Expr expand(const Expr& e);

/// Bindings for numeric evaluation.
struct EvalContext {
  /// Values for free symbols, keyed by symbol name.
  std::unordered_map<std::string, double> symbols;
  /// Callback resolving field accesses; required if the expression contains
  /// FieldRef nodes.
  std::function<double(const Expr& field_ref)> field_value;
  /// Callback for Random nodes (defaults to 0 if unset).
  std::function<double(int stream)> random_value;
};

/// Evaluates `e` numerically. Throws pfc::Error on unbound symbols or on
/// continuous Diff/Dt nodes (those have no pointwise value).
double evaluate(const Expr& e, const EvalContext& ctx);

/// Total number of leaf-level arithmetic operations (adds+muls+divs+calls)
/// that evaluating `e` as a tree would take; a crude cost metric used by
/// tests and the rematerialization heuristic.
std::size_t operation_count(const Expr& e);

}  // namespace pfc::sym
