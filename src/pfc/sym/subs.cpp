#include "pfc/sym/subs.hpp"

#include <unordered_map>

namespace pfc::sym {

namespace {

class Substituter {
 public:
  explicit Substituter(const SubsMap& map) : map_(map) {}

  Expr run(const Expr& e) {
    auto it = memo_.find(e.get());
    if (it != memo_.end()) return it->second;

    Expr result;
    const Expr* hit = lookup(e);
    if (hit != nullptr) {
      result = *hit;
    } else if (e->arity() == 0) {
      result = e;
    } else {
      std::vector<Expr> new_args;
      new_args.reserve(e->arity());
      bool changed = false;
      for (const auto& a : e->args()) {
        Expr x = run(a);
        changed = changed || x.get() != a.get();
        new_args.push_back(std::move(x));
      }
      result = changed ? with_args(e, std::move(new_args)) : e;
      // canonicalization may have produced a new structural match
      if (changed) {
        const Expr* hit2 = lookup(result);
        if (hit2 != nullptr) result = *hit2;
      }
    }
    memo_.emplace(e.get(), result);
    return result;
  }

 private:
  const Expr* lookup(const Expr& e) const {
    for (const auto& [pat, rep] : map_) {
      if (equals(e, pat)) return &rep;
    }
    return nullptr;
  }

  const SubsMap& map_;
  std::unordered_map<const Node*, Expr> memo_;
};

}  // namespace

Expr substitute(const Expr& e, const SubsMap& map) {
  if (map.empty()) return e;
  return Substituter(map).run(e);
}

Expr substitute(const Expr& e, const Expr& pattern, const Expr& replacement) {
  return substitute(e, SubsMap{{pattern, replacement}});
}

}  // namespace pfc::sym
