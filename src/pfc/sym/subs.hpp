// Structural substitution with DAG memoization.
#pragma once

#include <utility>
#include <vector>

#include "pfc/sym/expr.hpp"

namespace pfc::sym {

/// Ordered list of (pattern, replacement) pairs; whole-subtree structural
/// matches only (no unification).
using SubsMap = std::vector<std::pair<Expr, Expr>>;

/// Replaces every subexpression of `e` structurally equal to a pattern by
/// the corresponding replacement (innermost-last: a node is checked before
/// its rebuilt children are re-checked, i.e. replacements are not themselves
/// rewritten). Results are re-canonicalized.
Expr substitute(const Expr& e, const SubsMap& map);

/// Convenience: single substitution.
Expr substitute(const Expr& e, const Expr& pattern, const Expr& replacement);

}  // namespace pfc::sym
